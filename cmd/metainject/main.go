// Command metainject runs the HDF5 metadata fault-injection study:
// the byte-by-byte campaign of Table III, the directed per-field study of
// Table IV, and a demonstration of the Section V-A detection + correction
// methodology.
//
// Usage:
//
//	metainject                 # full study at the default grid size
//	metainject -stride 4       # sample every 4th metadata byte
//	metainject -all-bits       # 8 flips per byte instead of 1
package main

import (
	"flag"
	"fmt"
	"os"

	"ffis/internal/apps/nyx"
	"ffis/internal/metainject"
)

func main() {
	var (
		gridSize = flag.Int("n", 48, "Nyx grid edge")
		halos    = flag.Int("halos", 12, "number of seeded halos")
		stride   = flag.Int("stride", 1, "byte stride (1 = exhaustive)")
		allBits  = flag.Bool("all-bits", false, "flip all 8 bits per byte")
		seed     = flag.Uint64("seed", 2021, "bit-choice seed")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "metainject: %v\n", err)
		os.Exit(1)
	}

	sim := nyx.DefaultSim()
	sim.N = *gridSize
	sim.NumHalos = *halos

	res, err := metainject.Run(metainject.CampaignConfig{
		Sim:     sim,
		Halo:    nyx.DefaultHalo(),
		Stride:  *stride,
		AllBits: *allBits,
		Seed:    *seed,
	})
	if err != nil {
		die(err)
	}
	fmt.Println(metainject.RenderTable3(res))

	effects, err := metainject.FieldStudy(sim, nyx.DefaultHalo())
	if err != nil {
		die(err)
	}
	fmt.Println(metainject.RenderTable4(effects))

	// Detection + correction demo on the Exponent Bias fault.
	field := sim.Generate()
	img, err := nyx.BuildImage(field, sim.N)
	if err != nil {
		die(err)
	}
	raw := img.Bytes()
	rs := img.Fields.Find("exponentBias")
	raw[rs[0].Offset] ^= 0x04
	diag, err := metainject.Diagnose(raw, nyx.DatasetName)
	if err != nil {
		die(err)
	}
	fmt.Printf("detection demo: corrupted Exponent Bias diagnosed as %q\n", diag)
	if _, diag, err := metainject.Correct(raw, nyx.DatasetName); err != nil {
		die(err)
	} else {
		fmt.Printf("correction demo: %s fault repaired and verified\n", diag)
	}
}
