// Command ffis runs a single fault-injection campaign cell: one application
// (nyx, qmcpack, MT1..MT4) under one registered fault model, named by its
// long name, short code, or alias — mirroring the paper's per-cell
// methodology (profile, N randomized injections, outcome classification).
// `ffis -list-models` (or `-model list`) prints the registry: any model
// added there, including the misdirected-write and short-read extensions,
// is immediately runnable with no CLI changes.
//
// Usage:
//
//	ffis -app nyx -model dw -runs 1000
//	ffis -app MT2 -model sw -runs 200 -csv
//	ffis -app MT2 -model latent -runs 200
//	ffis -app MT2 -model misdirected-write -runs 200
//	ffis -list-models
//
// Tiered storage: -mount builds a multi-backend world (repeatable, syntax
// PATH[=BACKEND]; campaigns require hermetic backends — mem, object[:lag=N],
// latency[:bb|:pfs] — while os:DIR is rejected) and -arm restricts injection
// to the I/O routed to the named mounts, leaving every other tier clean.
// Without -mount, -backend swaps the whole flat world's storage backend:
//
//	ffis -app nyx -model bf -mount /plt00000 -mount /out -arm /plt00000
//	ffis -app nyx -model bf -mount /plt00000=latency:bb -arm /plt00000
//	ffis -app MT2 -model dw -backend object:lag=2
//
// Persistent results: -out streams every run record to a JSONL store as it
// completes, so a killed campaign loses nothing and the stored records can
// be re-rendered later. -resume continues an interrupted store from the
// first missing run, -shard i/n executes only that slice of the run indices
// (run each shard on its own machine into its own -out, then -merge them),
// and -report re-renders a store without re-running anything. All of it is
// seed-deterministic: resumed and merged stores are byte-identical to an
// uninterrupted single-process run.
//
//	ffis -app MT2 -model bf -runs 1000 -out ./res          # durable campaign
//	ffis -app MT2 -model bf -runs 1000 -out ./res -resume  # continue after a crash
//	ffis -app MT2 -model bf -runs 1000 -out ./s0 -shard 0/2
//	ffis -app MT2 -model bf -runs 1000 -out ./s1 -shard 1/2
//	ffis -merge ./s0 -merge ./s1 -out ./res                # reassemble shards
//	ffis -out ./res -report markdown                       # re-render from disk
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/experiments"
	progressui "ffis/internal/progress"
	"ffis/internal/results"
	"ffis/internal/stats"
	"ffis/internal/trace"
	"ffis/internal/vfs"
)

// stringList is a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		app      = flag.String("app", "nyx", "campaign cell: nyx, qmcpack, MT1, MT2, MT3, MT4")
		model    = flag.String("model", "bf", "fault model name, short code, or alias (see -list-models); 'list' prints the registry")
		listOnly = flag.Bool("list-models", false, "print the fault-model registry table and exit")
		runs     = flag.Int("runs", 1000, "fault-injection runs (the paper uses 1000)")
		seed     = flag.Uint64("seed", 2021, "campaign seed")
		workers  = flag.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		jobs     = flag.Int("jobs", 0, "campaign engine pool width (0 = -workers, then GOMAXPROCS)")
		progress = flag.Bool("progress", false, "stream campaign progress to stderr")
		nyxN     = flag.Int("nyx-n", 0, "override the Nyx grid edge (0 = default 48)")
		useAvg   = flag.Bool("avg-detector", false, "apply the Nyx average-value detection method")
		asCSV    = flag.Bool("csv", false, "emit CSV instead of a table")
		asJSON   = flag.Bool("json", false, "emit the machine-readable JSON result")
		ioTrace  = flag.Bool("iotrace", false, "print the workload's fault-free I/O pattern profile first")
		traceOut = flag.String("trace", "", "stream per-run lifecycle events (spec_start, run_done with stage timings, barriers, spec_done) as JSONL to this file")
		adaptive = flag.Float64("adaptive", 0, "adaptive stopping: halt when every outcome rate's Wilson 95% half-width is under this target (-runs becomes the budget cap; 0 = fixed budget)")
		showCI   = flag.Bool("ci", false, "render outcome columns as rate ±halfwidth (Wilson 95%)")
		shots    = flag.Int("shots", 0, "override the fault model's shot budget (0 = model default; >1 only affects multi-shot models)")
		backend  = flag.String("backend", "mem", "storage backend of the flat world: mem, object[:lag=N], latency[:bb|:pfs] (with -mount, set backends per mount instead)")
	)
	var (
		outDir    = flag.String("out", "", "stream run records to a JSONL results store at this directory")
		resume    = flag.Bool("resume", false, "resume the interrupted store at -out, skipping persisted runs")
		shardSpec = flag.String("shard", "", "execute only shard i/n of the run indices (requires -out; e.g. 0/4)")
		reportFmt = flag.String("report", "", "re-render the store at -out (text, csv, json, markdown) and exit without running")
	)
	var mountSpecs, armMounts, mergeSrcs stringList
	flag.Var(&mountSpecs, "mount", "mount a backend at PATH[=BACKEND] (repeatable; BACKEND: mem, object[:lag=N], latency[:bb|:pfs], os:DIR)")
	flag.Var(&armMounts, "arm", "arm the injector only on this mount point (repeatable; requires -mount)")
	flag.Var(&mergeSrcs, "merge", "merge this shard store into -out (repeatable) and exit without running")
	flag.Parse()

	if *listOnly || strings.EqualFold(*model, "list") {
		fmt.Print(core.ModelTable())
		return
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "ffis: %v\n", err)
		os.Exit(1)
	}
	if (*resume || *shardSpec != "" || *reportFmt != "" || len(mergeSrcs) > 0) && *outDir == "" {
		fmt.Fprintln(os.Stderr, "ffis: -resume, -shard, -report, and -merge all operate on a results store; add -out DIR")
		os.Exit(2)
	}
	if len(mergeSrcs) > 0 {
		if err := results.Merge(*outDir, mergeSrcs...); err != nil {
			fail(err)
		}
		fmt.Printf("merged %d shard stores into %s\n", len(mergeSrcs), *outDir)
		return
	}
	if *reportFmt != "" {
		st, err := results.Open(*outDir)
		if err != nil {
			fail(err)
		}
		out, err := results.Report(st, *reportFmt)
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
		return
	}
	fm, err := core.ParseModel(*model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffis: %v\n", err)
		os.Exit(2)
	}

	mounts, err := experiments.ParseMountSpecs(mountSpecs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffis: %v\n", err)
		os.Exit(2)
	}
	for _, m := range mounts {
		// A campaign's statistics assume a fresh, hermetic world per run;
		// an os: backend is one shared host directory mutated by every
		// (possibly parallel) run. Reject it here rather than tally noise.
		if !experiments.HermeticBackend(m.Backend) {
			fmt.Fprintf(os.Stderr, "ffis: mount %s=%s: campaigns need hermetic per-run state; use a hermetic backend (os: backends are for library-level one-shot inspection)\n", m.Path, m.Backend)
			os.Exit(2)
		}
	}
	if err := experiments.ValidateBackend(*backend); err != nil {
		fmt.Fprintf(os.Stderr, "ffis: %v\n", err)
		os.Exit(2)
	}
	if !experiments.HermeticBackend(*backend) {
		fmt.Fprintf(os.Stderr, "ffis: -backend %s: campaigns need hermetic per-run state; use mem, object, or latency\n", *backend)
		os.Exit(2)
	}
	if *backend != "mem" && len(mounts) > 0 {
		fmt.Fprintln(os.Stderr, "ffis: -backend applies to the flat world only; with -mount, name backends per mount (PATH=BACKEND)")
		os.Exit(2)
	}
	if len(armMounts) > 0 && len(mounts) == 0 {
		fmt.Fprintln(os.Stderr, "ffis: -arm needs a mounted world; add -mount flags")
		os.Exit(2)
	}
	opts := experiments.Options{
		Runs:           *runs,
		Seed:           *seed,
		Workers:        *workers,
		Jobs:           *jobs,
		NyxN:           *nyxN,
		UseAvgDetector: *useAvg,
		Mounts:         mounts,
		Backend:        *backend,
		ArmMounts:      armMounts,
		Shots:          *shots,
		CI:             *showCI,
	}
	if *adaptive > 0 {
		if *shardSpec != "" {
			// A shard owns every n-th run index, never a complete prefix, so
			// an adaptive rule cannot evaluate its barriers on one.
			fmt.Fprintln(os.Stderr, "ffis: -adaptive cannot run under -shard (a shard never holds a complete run prefix); drop one of them")
			os.Exit(2)
		}
		opts.Stop = &stats.StopRule{TargetHalfWidth: *adaptive}
	}
	var progressTo io.Writer
	if *progress {
		progressTo = os.Stderr
	}
	bus, finishEvents, err := progressui.Wire(progressTo, *traceOut, os.Stderr)
	if err != nil {
		fail(err)
	}
	opts.Events = bus
	// One engine for everything this invocation runs, so world snapshots
	// and profile passes memoize across grids instead of per call.
	opts.Engine = opts.NewEngine()
	if *outDir != "" {
		shard, err := results.ParseShard(*shardSpec)
		if err != nil {
			fail(err)
		}
		manBackend := *backend
		if manBackend == "mem" {
			manBackend = ""
		}
		st, err := results.CreateOrResume(*outDir, *resume, results.Manifest{
			Seed: *seed, Runs: *runs, Shard: shard.String(), Backend: manBackend,
		})
		if err != nil {
			fail(err)
		}
		opts.RunGrid = func(e *core.Engine, specs []core.CampaignSpec) ([]core.GridResult, error) {
			return results.RunGrid(e, st, shard, specs)
		}
	}
	if *ioTrace {
		w, err := experiments.NewWorkload(*app, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ffis: %v\n", err)
			os.Exit(1)
		}
		// Trace on the same world the campaign will run on, so the printed
		// profile matches what ProfileMounts is about to count.
		world := vfs.FS(vfs.NewMemFS())
		if w.NewFS != nil {
			world, err = w.NewFS()
			if err != nil {
				fmt.Fprintf(os.Stderr, "ffis: trace world: %v\n", err)
				os.Exit(1)
			}
		}
		rec := trace.NewRecorder(world)
		if w.Setup != nil {
			if err := w.Setup(rec); err != nil {
				fmt.Fprintf(os.Stderr, "ffis: trace setup: %v\n", err)
				os.Exit(1)
			}
			rec.Reset() // profile only the instrumented phase
		}
		if err := w.Run(rec); err != nil {
			fmt.Fprintf(os.Stderr, "ffis: trace run: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(trace.Analyze(rec.Log()).Render())
	}

	res, err := experiments.Fig7Cell(*app, fm, opts)
	// Flush the event subscribers before rendering: the trace file must be
	// complete (and its drop count reported) whether the campaign
	// succeeded or not.
	if ferr := finishEvents(); ferr != nil {
		fmt.Fprintf(os.Stderr, "ffis: trace: %v\n", ferr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffis: %v\n", err)
		os.Exit(1)
	}
	if len(armMounts) > 0 {
		fmt.Printf("injector armed on mounts: %s (all other tiers stay clean)\n",
			strings.Join(armMounts, ", "))
	}
	if *outDir != "" {
		note := ""
		if *shardSpec != "" {
			note = fmt.Sprintf(" (shard %s)", *shardSpec)
		}
		fmt.Printf("run records persisted to %s%s; re-render any time with -out %s -report FORMAT\n",
			*outDir, note, *outDir)
	}
	fmt.Printf("fault signature: %s\n", res.Signature)
	fmt.Printf("profiled %d dynamic executions of the target primitive\n", res.ProfileCount)
	if res.StopIndex > 0 {
		fmt.Printf("adaptive stop at run %d of the %d-run budget (target half-width %.3g)\n",
			res.StopIndex, *runs, *adaptive)
	}
	if res.SimNanos > 0 {
		fmt.Printf("simulated I/O time: %.3fms across all runs\n", float64(res.SimNanos)/1e6)
	}
	executed := res.Tally.Total()
	switch {
	case *asJSON:
		if err := core.WriteResultsJSON(os.Stdout, []core.CampaignResult{res}); err != nil {
			fmt.Fprintf(os.Stderr, "ffis: %v\n", err)
			os.Exit(1)
		}
	case *asCSV && *showCI:
		fmt.Print(classify.CSVCI([]classify.Cell{res.Cell()}))
	case *asCSV:
		fmt.Print(classify.CSV([]classify.Cell{res.Cell()}))
	case *showCI:
		fmt.Print(classify.TableCI(fmt.Sprintf("campaign %s (%d runs)", res.Cell().Label, executed),
			[]classify.Cell{res.Cell()}))
	default:
		fmt.Print(classify.Table(fmt.Sprintf("campaign %s (%d runs)", res.Cell().Label, executed),
			[]classify.Cell{res.Cell()}))
	}
}
