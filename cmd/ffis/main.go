// Command ffis runs a single fault-injection campaign cell: one application
// (nyx, qmcpack, MT1..MT4) under one fault model — a write-path model (bf,
// sw, dw) or a read-path model (read-bit-flip, unreadable, latent) —
// mirroring the paper's per-cell methodology (profile, N randomized
// injections, outcome classification).
//
// Usage:
//
//	ffis -app nyx -model dw -runs 1000
//	ffis -app MT2 -model sw -runs 200 -csv
//	ffis -app MT2 -model latent -runs 200
//
// Tiered storage: -mount builds a multi-backend world (repeatable, syntax
// PATH[=BACKEND]; campaigns require the hermetic mem backend) and -arm
// restricts injection to the I/O routed to the named mounts, leaving every
// other tier clean:
//
//	ffis -app nyx -model bf -mount /plt00000 -mount /out -arm /plt00000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/experiments"
	"ffis/internal/trace"
	"ffis/internal/vfs"
)

// stringList is a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		app       = flag.String("app", "nyx", "campaign cell: nyx, qmcpack, MT1, MT2, MT3, MT4")
		model     = flag.String("model", "bf", "fault model: bf (bit flip), sw (shorn write), dw (dropped write), read-bit-flip, unreadable, latent")
		runs      = flag.Int("runs", 1000, "fault-injection runs (the paper uses 1000)")
		seed      = flag.Uint64("seed", 2021, "campaign seed")
		workers   = flag.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		jobs      = flag.Int("jobs", 0, "campaign engine pool width (0 = -workers, then GOMAXPROCS)")
		progress  = flag.Bool("progress", false, "stream campaign progress to stderr")
		nyxN      = flag.Int("nyx-n", 0, "override the Nyx grid edge (0 = default 48)")
		useAvg    = flag.Bool("avg-detector", false, "apply the Nyx average-value detection method")
		asCSV     = flag.Bool("csv", false, "emit CSV instead of a table")
		asJSON    = flag.Bool("json", false, "emit the machine-readable JSON result")
		showTrace = flag.Bool("trace", false, "print the workload's fault-free I/O pattern profile first")
	)
	var mountSpecs, armMounts stringList
	flag.Var(&mountSpecs, "mount", "mount a backend at PATH[=BACKEND] (repeatable; BACKEND: mem, os:DIR)")
	flag.Var(&armMounts, "arm", "arm the injector only on this mount point (repeatable; requires -mount)")
	flag.Parse()

	var fm core.FaultModel
	switch strings.ToLower(*model) {
	case "bf", "bitflip", "bit-flip":
		fm = core.BitFlip
	case "sw", "shorn", "shorn-write":
		fm = core.ShornWrite
	case "dw", "dropped", "dropped-write":
		fm = core.DroppedWrite
	case "rb", "read-bit-flip", "read-bitflip":
		fm = core.ReadBitFlip
	case "ur", "unreadable", "unreadable-sector":
		fm = core.UnreadableSector
	case "lc", "latent", "latent-corruption":
		fm = core.LatentCorruption
	default:
		fmt.Fprintf(os.Stderr, "ffis: unknown fault model %q\n", *model)
		os.Exit(2)
	}

	mounts, err := experiments.ParseMountSpecs(mountSpecs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffis: %v\n", err)
		os.Exit(2)
	}
	for _, m := range mounts {
		// A campaign's statistics assume a fresh, hermetic world per run;
		// an os: backend is one shared host directory mutated by every
		// (possibly parallel) run. Reject it here rather than tally noise.
		if m.Backend != "mem" {
			fmt.Fprintf(os.Stderr, "ffis: mount %s=%s: campaigns need hermetic per-run state; use the mem backend (os: backends are for library-level one-shot inspection)\n", m.Path, m.Backend)
			os.Exit(2)
		}
	}
	if len(armMounts) > 0 && len(mounts) == 0 {
		fmt.Fprintln(os.Stderr, "ffis: -arm needs a mounted world; add -mount flags")
		os.Exit(2)
	}
	opts := experiments.Options{
		Runs:           *runs,
		Seed:           *seed,
		Workers:        *workers,
		Jobs:           *jobs,
		NyxN:           *nyxN,
		UseAvgDetector: *useAvg,
		Mounts:         mounts,
		ArmMounts:      armMounts,
	}
	if *progress {
		opts.Progress = experiments.ProgressPrinter(os.Stderr)
	}
	if *showTrace {
		w, err := experiments.NewWorkload(*app, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ffis: %v\n", err)
			os.Exit(1)
		}
		// Trace on the same world the campaign will run on, so the printed
		// profile matches what ProfileMounts is about to count.
		world := vfs.FS(vfs.NewMemFS())
		if w.NewFS != nil {
			world, err = w.NewFS()
			if err != nil {
				fmt.Fprintf(os.Stderr, "ffis: trace world: %v\n", err)
				os.Exit(1)
			}
		}
		rec := trace.NewRecorder(world)
		if w.Setup != nil {
			if err := w.Setup(rec); err != nil {
				fmt.Fprintf(os.Stderr, "ffis: trace setup: %v\n", err)
				os.Exit(1)
			}
			rec.Reset() // profile only the instrumented phase
		}
		if err := w.Run(rec); err != nil {
			fmt.Fprintf(os.Stderr, "ffis: trace run: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(trace.Analyze(rec.Log()).Render())
	}

	res, err := experiments.Fig7Cell(*app, fm, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffis: %v\n", err)
		os.Exit(1)
	}
	if len(armMounts) > 0 {
		fmt.Printf("injector armed on mounts: %s (all other tiers stay clean)\n",
			strings.Join(armMounts, ", "))
	}
	fmt.Printf("fault signature: %s\n", res.Signature)
	fmt.Printf("profiled %d dynamic executions of the target primitive\n", res.ProfileCount)
	switch {
	case *asJSON:
		if err := core.WriteResultsJSON(os.Stdout, []core.CampaignResult{res}); err != nil {
			fmt.Fprintf(os.Stderr, "ffis: %v\n", err)
			os.Exit(1)
		}
	case *asCSV:
		fmt.Print(classify.CSV([]classify.Cell{res.Cell()}))
	default:
		fmt.Print(classify.Table(fmt.Sprintf("campaign %s (%d runs)", res.Cell().Label, *runs),
			[]classify.Cell{res.Cell()}))
	}
}
