// Command ffis runs a single fault-injection campaign cell: one application
// (nyx, qmcpack, MT1..MT4) under one fault model (bf, sw, dw), mirroring the
// paper's per-cell methodology (profile, N randomized injections, outcome
// classification).
//
// Usage:
//
//	ffis -app nyx -model dw -runs 1000
//	ffis -app MT2 -model sw -runs 200 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/experiments"
	"ffis/internal/trace"
	"ffis/internal/vfs"
)

func main() {
	var (
		app       = flag.String("app", "nyx", "campaign cell: nyx, qmcpack, MT1, MT2, MT3, MT4")
		model     = flag.String("model", "bf", "fault model: bf (bit flip), sw (shorn write), dw (dropped write)")
		runs      = flag.Int("runs", 1000, "fault-injection runs (the paper uses 1000)")
		seed      = flag.Uint64("seed", 2021, "campaign seed")
		workers   = flag.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		nyxN      = flag.Int("nyx-n", 0, "override the Nyx grid edge (0 = default 48)")
		useAvg    = flag.Bool("avg-detector", false, "apply the Nyx average-value detection method")
		asCSV     = flag.Bool("csv", false, "emit CSV instead of a table")
		asJSON    = flag.Bool("json", false, "emit the machine-readable JSON result")
		showTrace = flag.Bool("trace", false, "print the workload's fault-free I/O pattern profile first")
	)
	flag.Parse()

	var fm core.FaultModel
	switch strings.ToLower(*model) {
	case "bf", "bitflip", "bit-flip":
		fm = core.BitFlip
	case "sw", "shorn", "shorn-write":
		fm = core.ShornWrite
	case "dw", "dropped", "dropped-write":
		fm = core.DroppedWrite
	default:
		fmt.Fprintf(os.Stderr, "ffis: unknown fault model %q\n", *model)
		os.Exit(2)
	}

	opts := experiments.Options{
		Runs:           *runs,
		Seed:           *seed,
		Workers:        *workers,
		NyxN:           *nyxN,
		UseAvgDetector: *useAvg,
	}
	if *showTrace {
		w, err := experiments.NewWorkload(*app, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ffis: %v\n", err)
			os.Exit(1)
		}
		rec := trace.NewRecorder(vfs.NewMemFS())
		if w.Setup != nil {
			if err := w.Setup(rec); err != nil {
				fmt.Fprintf(os.Stderr, "ffis: trace setup: %v\n", err)
				os.Exit(1)
			}
			rec.Reset() // profile only the instrumented phase
		}
		if err := w.Run(rec); err != nil {
			fmt.Fprintf(os.Stderr, "ffis: trace run: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(trace.Analyze(rec.Log()).Render())
	}

	res, err := experiments.Fig7Cell(*app, fm, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffis: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("fault signature: %s\n", res.Signature)
	fmt.Printf("profiled %d dynamic executions of the target primitive\n", res.ProfileCount)
	switch {
	case *asJSON:
		if err := core.WriteResultsJSON(os.Stdout, []core.CampaignResult{res}); err != nil {
			fmt.Fprintf(os.Stderr, "ffis: %v\n", err)
			os.Exit(1)
		}
	case *asCSV:
		fmt.Print(classify.CSV([]classify.Cell{res.Cell()}))
	default:
		fmt.Print(classify.Table(fmt.Sprintf("campaign %s (%d runs)", res.Cell().Label, *runs),
			[]classify.Cell{res.Cell()}))
	}
}
