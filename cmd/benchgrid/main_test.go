package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestAppendPointGrowsArray: appending into a missing file starts a fresh
// one-element array; appending again grows it to two with the first point
// intact.
func TestAppendPointGrowsArray(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_grid.json")
	first := point{Date: "2026-01-01T00:00:00Z", Go: "go1.24", Runs: 24, Seed: 2021,
		Adaptive: adaptivePoint{Cell: "MT2", Budget: 1000, RunsSpent: 100, RunsSaved: 900}}
	if err := appendPoint(path, first); err != nil {
		t.Fatal(err)
	}
	second := first
	second.Date = "2026-02-01T00:00:00Z"
	second.Fig7EngineMS = 1234
	if err := appendPoint(path, second); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var pts []point
	if err := json.Unmarshal(raw, &pts); err != nil {
		t.Fatalf("trajectory is not a point array: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0] != first || pts[1] != second {
		t.Fatalf("points round-tripped wrong:\n  got  %+v\n       %+v\n  want %+v\n       %+v",
			pts[0], pts[1], first, second)
	}
	if pts[0].Adaptive.RunsSaved != 900 {
		t.Fatalf("runs_saved = %d, want 900", pts[0].Adaptive.RunsSaved)
	}
}

// TestAppendPointPreservesUnknownFields: a point written by a newer (or
// older) schema must survive an append untouched apart from re-indentation
// — the trajectory is append-only history, not a normalized table.
func TestAppendPointPreservesUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_grid.json")
	legacy := `[{"date":"2025-12-01T00:00:00Z","exotic_future_metric_ms":42}]`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendPoint(path, point{Date: "2026-01-01T00:00:00Z"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var pts []map[string]any
	if err := json.Unmarshal(raw, &pts); err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if v, ok := pts[0]["exotic_future_metric_ms"]; !ok || v != float64(42) {
		t.Fatalf("unknown field dropped or mangled: %v", pts[0])
	}
}

// TestAppendPointRejectsNonArray: a corrupt trajectory file must fail the
// append loudly instead of being overwritten.
func TestAppendPointRejectsNonArray(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_grid.json")
	if err := os.WriteFile(path, []byte(`{"not":"an array"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendPoint(path, point{}); err == nil {
		t.Fatal("appendPoint accepted a non-array file")
	}
	raw, _ := os.ReadFile(path)
	if string(raw) != `{"not":"an array"}` {
		t.Fatalf("corrupt file was modified: %s", raw)
	}
}
