package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestAppendPointGrowsArray: appending into a missing file starts a fresh
// one-element array; appending again grows it to two with the first point
// intact.
func TestAppendPointGrowsArray(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_grid.json")
	first := point{Date: "2026-01-01T00:00:00Z", Go: "go1.24", Runs: 24, Seed: 2021,
		Adaptive: adaptivePoint{Cell: "MT2", Budget: 1000, RunsSpent: 100, RunsSaved: 900}}
	if err := appendPoint(path, first); err != nil {
		t.Fatal(err)
	}
	second := first
	second.Date = "2026-02-01T00:00:00Z"
	second.Fig7EngineMS = 1234
	if err := appendPoint(path, second); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var pts []point
	if err := json.Unmarshal(raw, &pts); err != nil {
		t.Fatalf("trajectory is not a point array: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0] != first || pts[1] != second {
		t.Fatalf("points round-tripped wrong:\n  got  %+v\n       %+v\n  want %+v\n       %+v",
			pts[0], pts[1], first, second)
	}
	if pts[0].Adaptive.RunsSaved != 900 {
		t.Fatalf("runs_saved = %d, want 900", pts[0].Adaptive.RunsSaved)
	}
}

// TestAppendPointPreservesUnknownFields: a point written by a newer (or
// older) schema must survive an append untouched apart from re-indentation
// — the trajectory is append-only history, not a normalized table.
func TestAppendPointPreservesUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_grid.json")
	legacy := `[{"date":"2025-12-01T00:00:00Z","exotic_future_metric_ms":42}]`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendPoint(path, point{Date: "2026-01-01T00:00:00Z"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var pts []map[string]any
	if err := json.Unmarshal(raw, &pts); err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if v, ok := pts[0]["exotic_future_metric_ms"]; !ok || v != float64(42) {
		t.Fatalf("unknown field dropped or mangled: %v", pts[0])
	}
}

// TestAppendPointRejectsNonArray: a corrupt trajectory file must fail the
// append loudly instead of being overwritten.
func TestAppendPointRejectsNonArray(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_grid.json")
	if err := os.WriteFile(path, []byte(`{"not":"an array"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendPoint(path, point{}); err == nil {
		t.Fatal("appendPoint accepted a non-array file")
	}
	raw, _ := os.ReadFile(path)
	if string(raw) != `{"not":"an array"}` {
		t.Fatalf("corrupt file was modified: %s", raw)
	}
}

// TestCheckRegression: the CI gate compares the fresh point's gated wall
// times against the newest committed entry and tolerates -max-regress.
func TestCheckRegression(t *testing.T) {
	mk := func(engine, cow int64) json.RawMessage {
		raw, err := json.Marshal(point{Fig7EngineMS: engine, MT4CowMS: cow})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	cases := []struct {
		name    string
		prior   []json.RawMessage
		fresh   point
		wantErr bool
	}{
		{"no history", nil, point{Fig7EngineMS: 9999, MT4CowMS: 9999}, false},
		{"within threshold", []json.RawMessage{mk(2000, 70)}, point{Fig7EngineMS: 2500, MT4CowMS: 90}, false},
		{"faster is fine", []json.RawMessage{mk(2000, 70)}, point{Fig7EngineMS: 900, MT4CowMS: 30}, false},
		{"engine regressed", []json.RawMessage{mk(2000, 70)}, point{Fig7EngineMS: 2700, MT4CowMS: 70}, true},
		{"cow regressed", []json.RawMessage{mk(2000, 70)}, point{Fig7EngineMS: 2000, MT4CowMS: 100}, true},
		{"only newest entry gates", []json.RawMessage{mk(100, 5), mk(2000, 70)}, point{Fig7EngineMS: 2500, MT4CowMS: 80}, false},
		{"zero metric in history skipped", []json.RawMessage{mk(0, 0)}, point{Fig7EngineMS: 9999, MT4CowMS: 9999}, false},
		// The harness-overhead gate is an absolute ceiling, enforced even
		// with no history at all, and tolerant of the negative noise an
		// unloaded machine can report.
		{"overhead within ceiling", nil, point{MT2HarnessOverheadPct: 9.9}, false},
		{"overhead negative noise ok", []json.RawMessage{mk(2000, 70)}, point{Fig7EngineMS: 2000, MT4CowMS: 70, MT2HarnessOverheadPct: -1.2}, false},
		{"overhead beyond ceiling", nil, point{MT2HarnessOverheadPct: 10.1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkRegression(tc.prior, tc.fresh, 0.30, 10)
			if (err != nil) != tc.wantErr {
				t.Fatalf("checkRegression = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

// TestCheckRegressionRejectsCorruptHistory: a last entry that does not
// parse must fail the gate loudly rather than passing by default.
func TestCheckRegressionRejectsCorruptHistory(t *testing.T) {
	prior := []json.RawMessage{json.RawMessage(`"not a point"`)}
	if err := checkRegression(prior, point{}, 0.30, 10); err == nil {
		t.Fatal("corrupt history accepted")
	}
}
