// Command benchgrid appends one data point to the repository's performance
// trajectory file (BENCH_grid.json at the repo root). Each point records,
// for a reduced-scale configuration:
//
//   - wall-clock time of the Figure 7 grid on the campaign engine vs the
//     pre-engine sequential path (the headline engine speedup);
//   - wall-clock time of one MT4 campaign under COW world clones vs
//     rebuilt-per-run worlds (the world-lifecycle speedup);
//   - the runs an adaptive MT2 campaign saves against its fixed budget
//     (budget − executed runs at the target Wilson half-width);
//   - wall-clock time of a tiered MT2 placement sweep across the three
//     hermetic backends (mem, object, latency) — the cost of re-running a
//     placement grid under every backend the mount table can host;
//   - wall-clock time of a small MT1 grid through the campaignd
//     coordinator with three loopback workers vs the same grid run
//     locally — the protocol overhead of the distributed campaign path;
//   - the run-event harness overhead: one 10,000-run MT2 campaign with
//     the event stream off vs on with both standard subscribers (line
//     renderer + JSONL trace writer) aimed at io.Discard, as a percent.
//     -check enforces an absolute ceiling (-max-overhead) on it, so event
//     emission can never quietly become a tax on the run pool.
//
// CI's bench-smoke job runs it on every push and uploads the refreshed
// file as a build artifact; committed points form the long-term trajectory
// reviewers diff against. The file is an append-only JSON array — existing
// points are preserved byte-for-byte (modulo re-indentation), so a point
// written by an older schema survives newer tools.
//
// Usage:
//
//	benchgrid                      # append a point to ./BENCH_grid.json
//	benchgrid -out ./BENCH.json -runs 48
//	benchgrid -dry-run             # print the point, write nothing
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"ffis/internal/campaignd"
	"ffis/internal/core"
	"ffis/internal/experiments"
	"ffis/internal/progress"
	"ffis/internal/results"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// point is one trajectory sample. Times are integer milliseconds: coarse
// enough to be honest about run-to-run noise, fine enough to see a 2×
// regression.
type point struct {
	Date string `json:"date"` // UTC, RFC 3339
	Go   string `json:"go"`   // toolchain that produced the point
	Note string `json:"note,omitempty"`

	// Reduced-scale grid configuration the times were measured at.
	Runs int    `json:"runs"`
	Seed uint64 `json:"seed"`
	NyxN int    `json:"nyx_n"`

	Fig7EngineMS     int64 `json:"fig7_grid_engine_ms"`
	Fig7SequentialMS int64 `json:"fig7_grid_sequential_ms"`
	MT4CowMS         int64 `json:"mt4_campaign_cow_ms"`
	MT4FreshMS       int64 `json:"mt4_campaign_fresh_ms"`

	// Clone + one 4 KiB first write against file size: with extent-backed
	// COW the two numbers stay within the same order of magnitude — the
	// divergence cost is O(bytes written), not O(file size). omitempty
	// keeps points written before the metric existed decodable as zero.
	CloneWrite1MiBUS  int64 `json:"cow_clone_write4k_1mib_us,omitempty"`
	CloneWrite64MiBUS int64 `json:"cow_clone_write4k_64mib_us,omitempty"`

	// One MT2 placement sweep under each hermetic backend (mem, object,
	// latency) — times the whole-object RMW and simulated-clock overhead the
	// backend capability model added to the tiered path. omitempty keeps
	// older points decodable as zero and excluded from the -check gate.
	TieredBackendSweepMS int64 `json:"tiered_backend_sweep_ms,omitempty"`

	// The same small grid run once locally and once through the campaignd
	// coordinator with three loopback workers — the HTTP leasing, strict-
	// order ingest, and re-marshal overhead of the distributed path. The
	// distributed time is the gated metric; the local time rides along for
	// the ratio. omitempty keeps older points decodable as zero.
	Distributed3WorkerMS int64 `json:"distributed_3worker_vs_local_ms,omitempty"`
	DistributedLocalMS   int64 `json:"distributed_local_ms,omitempty"`

	// Percent wall-clock added to a 10,000-run MT2 campaign by the event
	// bus with both standard subscribers attached (vs no bus at all). Can
	// be slightly negative on a noisy machine — the true cost per run is
	// sub-microsecond — which is exactly why -check gates it with an
	// absolute ceiling rather than against the previous point.
	MT2HarnessOverheadPct float64 `json:"mt2_10k_harness_overhead_pct"`

	Adaptive adaptivePoint `json:"adaptive"`
}

// adaptivePoint records the runs-saved-by-adaptive counter: one cell run
// under a sequential stopping rule, compared against its fixed budget.
type adaptivePoint struct {
	Cell            string  `json:"cell"`
	Model           string  `json:"model"`
	TargetHalfWidth float64 `json:"target_half_width"`
	Budget          int     `json:"budget"`
	RunsSpent       int     `json:"runs_spent"`
	RunsSaved       int     `json:"runs_saved"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_grid.json", "trajectory file to append to")
		runs     = flag.Int("runs", 24, "runs per grid cell for the timing measurements")
		seed     = flag.Uint64("seed", 2021, "campaign seed")
		nyxN     = flag.Int("nyx-n", 24, "Nyx grid edge for the timing measurements")
		target   = flag.Float64("adaptive", 0.02, "target Wilson half-width for the runs-saved measurement")
		budget   = flag.Int("budget", 1000, "fixed run budget the adaptive campaign is measured against")
		note     = flag.String("note", "", "free-form annotation stored with the point")
		dry      = flag.Bool("dry-run", false, "print the measured point without touching -out")
		check    = flag.Bool("check", false, "fail (exit 1) when the fresh point regresses more than -max-regress against the last entry in -out, or mt2_10k_harness_overhead_pct exceeds -max-overhead")
		regress  = flag.Float64("max-regress", 0.30, "fractional regression of fig7_grid_engine_ms, mt4_campaign_cow_ms, tiered_backend_sweep_ms, or distributed_3worker_vs_local_ms tolerated by -check")
		overhead = flag.Float64("max-overhead", 10, "absolute ceiling (percent) -check enforces on mt2_10k_harness_overhead_pct")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "benchgrid: %v\n", err)
		os.Exit(1)
	}

	p, err := measure(*runs, *seed, *nyxN, *target, *budget)
	if err != nil {
		die(err)
	}
	p.Date = time.Now().UTC().Format(time.RFC3339)
	p.Go = runtime.Version()
	p.Note = *note

	enc, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		die(err)
	}
	fmt.Printf("%s\n", enc)
	if *check {
		prior, err := loadPoints(*out)
		if err != nil && !os.IsNotExist(err) {
			die(err)
		}
		if err := checkRegression(prior, p, *regress, *overhead); err != nil {
			die(err)
		}
		fmt.Printf("within %d%% of the last committed point\n", int(*regress*100))
	}
	if *dry {
		return
	}
	if err := appendPoint(*out, p); err != nil {
		die(err)
	}
	fmt.Printf("appended to %s\n", *out)
}

// checkRegression compares the fresh point against the newest prior entry
// on the hot-path wall times the ROADMAP trajectory gates: the Figure 7
// engine grid, the MT4 COW campaign, and the tiered backend sweep. A fresh
// time more than frac above
// the committed one fails, so the trajectory is enforced in CI, not just
// recorded. Prior points missing a metric (older schema, zero value) are
// not compared on it. The harness-overhead percent is gated against the
// absolute maxOverhead ceiling instead — the metric hovers around zero,
// so a fraction-of-last-point comparison would be pure noise.
func checkRegression(prior []json.RawMessage, p point, frac, maxOverhead float64) error {
	if p.MT2HarnessOverheadPct > maxOverhead {
		return fmt.Errorf("event harness overhead %.1f%% exceeds the %.0f%% ceiling: emission is taxing the run pool",
			p.MT2HarnessOverheadPct, maxOverhead)
	}
	if len(prior) == 0 {
		return nil
	}
	var last point
	if err := json.Unmarshal(prior[len(prior)-1], &last); err != nil {
		return fmt.Errorf("last committed point does not parse: %w", err)
	}
	var bad []string
	for _, m := range []struct {
		name       string
		last, this int64
	}{
		{"fig7_grid_engine_ms", last.Fig7EngineMS, p.Fig7EngineMS},
		{"mt4_campaign_cow_ms", last.MT4CowMS, p.MT4CowMS},
		{"tiered_backend_sweep_ms", last.TieredBackendSweepMS, p.TieredBackendSweepMS},
		{"distributed_3worker_vs_local_ms", last.Distributed3WorkerMS, p.Distributed3WorkerMS},
	} {
		// Prior points written before a metric existed decode it as zero;
		// skip rather than compare against nothing.
		if m.last <= 0 {
			continue
		}
		if limit := float64(m.last) * (1 + frac); float64(m.this) > limit {
			bad = append(bad, fmt.Sprintf("%s: %d ms vs committed %d ms (limit %.0f ms)",
				m.name, m.this, m.last, limit))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("performance regression beyond %d%%:\n  %s",
			int(frac*100), strings.Join(bad, "\n  "))
	}
	return nil
}

// measure runs the reduced grid and campaign configurations and times them.
// Grid times use a single-threaded pool (Jobs: 1) so the engine-vs-
// sequential ratio reflects the COW/memoization win, not core count; the
// adaptive measurement is run-count arithmetic, so it uses the default pool.
func measure(runs int, seed uint64, nyxN int, target float64, budget int) (point, error) {
	o := experiments.Options{Runs: runs, Seed: seed, NyxN: nyxN, Jobs: 1}
	p := point{Runs: runs, Seed: seed, NyxN: nyxN}

	t0 := time.Now()
	if _, _, err := experiments.Fig7(o); err != nil {
		return p, fmt.Errorf("fig7 engine: %w", err)
	}
	p.Fig7EngineMS = time.Since(t0).Milliseconds()

	t0 = time.Now()
	if _, _, err := experiments.Fig7Sequential(o); err != nil {
		return p, fmt.Errorf("fig7 sequential: %w", err)
	}
	p.Fig7SequentialMS = time.Since(t0).Milliseconds()

	w, err := experiments.NewWorkload("MT4", o)
	if err != nil {
		return p, fmt.Errorf("MT4 workload: %w", err)
	}
	// The MT4 campaign wall times are tens of milliseconds — a one-shot
	// timing sits on the scheduler's noise floor and would trip the -check
	// gate on transient load. Take the minimum of three repetitions (the
	// usual "how fast can this code go" estimator); the seconds-long grid
	// times above are stable enough single-shot.
	const mtReps = 3
	for _, fresh := range []bool{false, true} {
		var best int64
		for r := 0; r < mtReps; r++ {
			t0 = time.Now()
			if _, err := core.Campaign(core.CampaignConfig{
				Fault:       core.Config{Model: core.BitFlip},
				Runs:        runs,
				Seed:        seed,
				FreshWorlds: fresh,
			}, w); err != nil {
				return p, fmt.Errorf("MT4 campaign (fresh=%v): %w", fresh, err)
			}
			if ms := time.Since(t0).Milliseconds(); r == 0 || ms < best {
				best = ms
			}
		}
		if fresh {
			p.MT4FreshMS = best
		} else {
			p.MT4CowMS = best
		}
	}

	// COW divergence cost vs file size: Clone a world holding one large
	// file, then write 4 KiB into the clone. Extent-backed storage keeps
	// the two sizes comparable (only the touched block is copied).
	for _, mib := range []int{1, 64} {
		us, err := cloneFirstWriteUS(mib)
		if err != nil {
			return p, fmt.Errorf("clone+first-write %dMiB: %w", mib, err)
		}
		if mib == 1 {
			p.CloneWrite1MiBUS = us
		} else {
			p.CloneWrite64MiBUS = us
		}
	}

	// The backend sweep: one MT2 placement grid re-run under each hermetic
	// backend. DroppedWrite keeps every placement's injection live, so the
	// timing covers ObjectFS whole-object commits and LatencyFS clock
	// charges on real traffic, not no-target short circuits.
	t0 = time.Now()
	if _, _, err := experiments.Tiered([]string{"MT2"}, core.DroppedWrite, experiments.Options{
		Runs: runs, Seed: seed, Jobs: 1,
		Backends: []string{"mem", "object", "latency"},
	}); err != nil {
		return p, fmt.Errorf("tiered backend sweep: %w", err)
	}
	p.TieredBackendSweepMS = time.Since(t0).Milliseconds()

	// The distributed overhead: the same small grid once on the local
	// engine and once through a loopback coordinator with three workers.
	if local, dist, err := measureDistributed(runs, seed); err != nil {
		return p, fmt.Errorf("distributed grid: %w", err)
	} else {
		p.DistributedLocalMS = local
		p.Distributed3WorkerMS = dist
	}

	if p.MT2HarnessOverheadPct, err = harnessOverheadPct(seed); err != nil {
		return p, fmt.Errorf("harness overhead: %w", err)
	}

	// The runs-saved counter, on the acceptance-criterion cell: MT2 under
	// unreadable-sector converges at the first barrier, so the saving is
	// large and stable; balanced write-model cells would report zero saved
	// at this target (they honestly need more than the budget for ±2%).
	model := core.MustModel("unreadable-sector")
	res, err := experiments.Fig7Cell("MT2", model, experiments.Options{
		Runs: budget, Seed: seed,
		Stop: &stats.StopRule{TargetHalfWidth: target},
	})
	if err != nil {
		return p, fmt.Errorf("adaptive MT2 cell: %w", err)
	}
	spent := res.Tally.Total()
	p.Adaptive = adaptivePoint{
		Cell:            "MT2",
		Model:           model.Name(),
		TargetHalfWidth: target,
		Budget:          budget,
		RunsSpent:       spent,
		RunsSaved:       budget - spent,
	}
	return p, nil
}

// harnessOverheadPct times one 10,000-run MT2 campaign twice on the same
// single-slot engine: event stream fully off (Events nil — emission is
// skipped, not just unobserved), then on with both standard subscribers
// aimed at io.Discard. The percent difference is the whole harness tax a
// -progress -trace invocation pays: event construction, the non-blocking
// publish, queue handoff, rendering, and JSON encoding. The run count is
// fixed at paper scale rather than tied to -runs so the committed metric
// is comparable across points.
func harnessOverheadPct(seed uint64) (float64, error) {
	const overheadRuns = 10_000
	w, err := experiments.NewWorkload("MT2", experiments.Options{})
	if err != nil {
		return 0, err
	}
	run := func(bus *core.EventBus) (int64, error) {
		t0 := time.Now()
		grid := (&core.Engine{Jobs: 1, Events: bus}).Run([]core.CampaignSpec{{
			Key:      "MT2/overhead",
			Workload: w,
			Config:   core.CampaignConfig{Fault: core.Config{Model: core.BitFlip}, Runs: overheadRuns, Seed: seed},
		}})
		if grid[0].Err != nil {
			return 0, grid[0].Err
		}
		if bus != nil {
			bus.Close() // flush before stopping the clock: the tax includes delivery
		}
		return time.Since(t0).Milliseconds(), nil
	}
	plainMS, err := run(nil)
	if err != nil {
		return 0, err
	}
	bus := core.NewEventBus()
	bus.Subscribe(0, progress.Renderer(io.Discard))
	bus.Subscribe(4096, progress.WriteTrace(io.Discard))
	withMS, err := run(bus)
	if err != nil {
		return 0, err
	}
	pct := float64(withMS-plainMS) / float64(plainMS) * 100
	return math.Round(pct*10) / 10, nil
}

// measureDistributed times one small MT1 grid (three fault models) run
// locally against the same grid run through a campaignd coordinator with
// three in-process workers over loopback HTTP. Both paths go through the
// same canonical spec builder, so the difference is pure protocol
// overhead: leasing, heartbeats, batched uploads, strict-order ingest and
// canonical re-marshal on the coordinator.
func measureDistributed(runs int, seed uint64) (localMS, distMS int64, err error) {
	var specs []experiments.WireSpec
	for _, model := range []string{"bit-flip", "shorn-write", "dropped-write"} {
		specs = append(specs, experiments.WireSpec{Cell: "MT1", Model: model, Runs: runs, Seed: seed})
	}
	man, err := campaignd.ManifestFor(specs)
	if err != nil {
		return 0, 0, err
	}

	localDir, err := os.MkdirTemp("", "benchgrid-local-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(localDir)
	st, err := results.Create(localDir, man)
	if err != nil {
		return 0, 0, err
	}
	cspecs := make([]core.CampaignSpec, len(specs))
	for i, ws := range specs {
		if cspecs[i], err = ws.CampaignSpec(); err != nil {
			return 0, 0, err
		}
	}
	t0 := time.Now()
	grid, err := results.RunGrid(&core.Engine{Jobs: 1}, st, results.Shard{}, cspecs)
	if err != nil {
		return 0, 0, err
	}
	for _, r := range grid {
		if r.Err != nil {
			return 0, 0, fmt.Errorf("local %s: %w", r.Spec.Key, r.Err)
		}
	}
	localMS = time.Since(t0).Milliseconds()

	distDir, err := os.MkdirTemp("", "benchgrid-dist-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(distDir)
	dst, err := results.Create(distDir, man)
	if err != nil {
		return 0, 0, err
	}
	coord, err := campaignd.NewCoordinator(dst, specs, time.Minute)
	if err != nil {
		return 0, 0, err
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	t0 = time.Now()
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := range errs {
		w := &campaignd.Worker{
			ID:          fmt.Sprintf("bench-w%d", i+1),
			Coordinator: srv.URL,
			Jobs:        1,
			Poll:        10 * time.Millisecond,
			Heartbeat:   100 * time.Millisecond,
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			return 0, 0, fmt.Errorf("worker %d: %w", i+1, werr)
		}
	}
	if !coord.Done() {
		return 0, 0, fmt.Errorf("distributed grid did not complete")
	}
	distMS = time.Since(t0).Milliseconds()
	return localMS, distMS, nil
}

// cloneFirstWriteUS times MemFS.Clone plus one 4 KiB write on the clone,
// averaged over enough iterations to be stable at microsecond scale.
func cloneFirstWriteUS(mib int) (int64, error) {
	fs := vfs.NewMemFS()
	if err := vfs.WriteFile(fs, "/big", make([]byte, mib<<20)); err != nil {
		return 0, err
	}
	buf := make([]byte, 4096)
	const iters = 64
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		c := fs.Clone()
		f, err := c.Append("/big")
		if err != nil {
			return 0, err
		}
		if _, err := f.WriteAt(buf, 0); err != nil {
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
	}
	return time.Since(t0).Microseconds() / iters, nil
}

// loadPoints reads the JSON point array at path as raw messages. A missing
// file returns the os.IsNotExist error with a nil slice.
func loadPoints(path string) ([]json.RawMessage, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prior []json.RawMessage
	if err := json.Unmarshal(raw, &prior); err != nil {
		return nil, fmt.Errorf("benchgrid: %s is not a JSON array of points: %w", path, err)
	}
	return prior, nil
}

// appendPoint appends p to the JSON array at path, creating the file if
// absent. Prior points pass through as raw JSON so points written under an
// older schema are preserved rather than re-parsed and stripped.
func appendPoint(path string, p point) error {
	prior, err := loadPoints(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	enc, err := json.Marshal(p)
	if err != nil {
		return err
	}
	prior = append(prior, enc)

	out, err := json.MarshalIndent(prior, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
