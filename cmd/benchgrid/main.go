// Command benchgrid appends one data point to the repository's performance
// trajectory file (BENCH_grid.json at the repo root). Each point records,
// for a reduced-scale configuration:
//
//   - wall-clock time of the Figure 7 grid on the campaign engine vs the
//     pre-engine sequential path (the headline engine speedup);
//   - wall-clock time of one MT4 campaign under COW world clones vs
//     rebuilt-per-run worlds (the world-lifecycle speedup);
//   - the runs an adaptive MT2 campaign saves against its fixed budget
//     (budget − executed runs at the target Wilson half-width).
//
// CI's bench-smoke job runs it on every push and uploads the refreshed
// file as a build artifact; committed points form the long-term trajectory
// reviewers diff against. The file is an append-only JSON array — existing
// points are preserved byte-for-byte (modulo re-indentation), so a point
// written by an older schema survives newer tools.
//
// Usage:
//
//	benchgrid                      # append a point to ./BENCH_grid.json
//	benchgrid -out ./BENCH.json -runs 48
//	benchgrid -dry-run             # print the point, write nothing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ffis/internal/core"
	"ffis/internal/experiments"
	"ffis/internal/stats"
)

// point is one trajectory sample. Times are integer milliseconds: coarse
// enough to be honest about run-to-run noise, fine enough to see a 2×
// regression.
type point struct {
	Date string `json:"date"` // UTC, RFC 3339
	Go   string `json:"go"`   // toolchain that produced the point
	Note string `json:"note,omitempty"`

	// Reduced-scale grid configuration the times were measured at.
	Runs int    `json:"runs"`
	Seed uint64 `json:"seed"`
	NyxN int    `json:"nyx_n"`

	Fig7EngineMS     int64 `json:"fig7_grid_engine_ms"`
	Fig7SequentialMS int64 `json:"fig7_grid_sequential_ms"`
	MT4CowMS         int64 `json:"mt4_campaign_cow_ms"`
	MT4FreshMS       int64 `json:"mt4_campaign_fresh_ms"`

	Adaptive adaptivePoint `json:"adaptive"`
}

// adaptivePoint records the runs-saved-by-adaptive counter: one cell run
// under a sequential stopping rule, compared against its fixed budget.
type adaptivePoint struct {
	Cell            string  `json:"cell"`
	Model           string  `json:"model"`
	TargetHalfWidth float64 `json:"target_half_width"`
	Budget          int     `json:"budget"`
	RunsSpent       int     `json:"runs_spent"`
	RunsSaved       int     `json:"runs_saved"`
}

func main() {
	var (
		out    = flag.String("out", "BENCH_grid.json", "trajectory file to append to")
		runs   = flag.Int("runs", 24, "runs per grid cell for the timing measurements")
		seed   = flag.Uint64("seed", 2021, "campaign seed")
		nyxN   = flag.Int("nyx-n", 24, "Nyx grid edge for the timing measurements")
		target = flag.Float64("adaptive", 0.02, "target Wilson half-width for the runs-saved measurement")
		budget = flag.Int("budget", 1000, "fixed run budget the adaptive campaign is measured against")
		note   = flag.String("note", "", "free-form annotation stored with the point")
		dry    = flag.Bool("dry-run", false, "print the measured point without touching -out")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "benchgrid: %v\n", err)
		os.Exit(1)
	}

	p, err := measure(*runs, *seed, *nyxN, *target, *budget)
	if err != nil {
		die(err)
	}
	p.Date = time.Now().UTC().Format(time.RFC3339)
	p.Go = runtime.Version()
	p.Note = *note

	enc, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		die(err)
	}
	fmt.Printf("%s\n", enc)
	if *dry {
		return
	}
	if err := appendPoint(*out, p); err != nil {
		die(err)
	}
	fmt.Printf("appended to %s\n", *out)
}

// measure runs the reduced grid and campaign configurations and times them.
// Grid times use a single-threaded pool (Jobs: 1) so the engine-vs-
// sequential ratio reflects the COW/memoization win, not core count; the
// adaptive measurement is run-count arithmetic, so it uses the default pool.
func measure(runs int, seed uint64, nyxN int, target float64, budget int) (point, error) {
	o := experiments.Options{Runs: runs, Seed: seed, NyxN: nyxN, Jobs: 1}
	p := point{Runs: runs, Seed: seed, NyxN: nyxN}

	t0 := time.Now()
	if _, _, err := experiments.Fig7(o); err != nil {
		return p, fmt.Errorf("fig7 engine: %w", err)
	}
	p.Fig7EngineMS = time.Since(t0).Milliseconds()

	t0 = time.Now()
	if _, _, err := experiments.Fig7Sequential(o); err != nil {
		return p, fmt.Errorf("fig7 sequential: %w", err)
	}
	p.Fig7SequentialMS = time.Since(t0).Milliseconds()

	w, err := experiments.NewWorkload("MT4", o)
	if err != nil {
		return p, fmt.Errorf("MT4 workload: %w", err)
	}
	for _, fresh := range []bool{false, true} {
		t0 = time.Now()
		if _, err := core.Campaign(core.CampaignConfig{
			Fault:       core.Config{Model: core.BitFlip},
			Runs:        runs,
			Seed:        seed,
			FreshWorlds: fresh,
		}, w); err != nil {
			return p, fmt.Errorf("MT4 campaign (fresh=%v): %w", fresh, err)
		}
		if fresh {
			p.MT4FreshMS = time.Since(t0).Milliseconds()
		} else {
			p.MT4CowMS = time.Since(t0).Milliseconds()
		}
	}

	// The runs-saved counter, on the acceptance-criterion cell: MT2 under
	// unreadable-sector converges at the first barrier, so the saving is
	// large and stable; balanced write-model cells would report zero saved
	// at this target (they honestly need more than the budget for ±2%).
	model := core.MustModel("unreadable-sector")
	res, err := experiments.Fig7Cell("MT2", model, experiments.Options{
		Runs: budget, Seed: seed,
		Stop: &stats.StopRule{TargetHalfWidth: target},
	})
	if err != nil {
		return p, fmt.Errorf("adaptive MT2 cell: %w", err)
	}
	spent := res.Tally.Total()
	p.Adaptive = adaptivePoint{
		Cell:            "MT2",
		Model:           model.Name(),
		TargetHalfWidth: target,
		Budget:          budget,
		RunsSpent:       spent,
		RunsSaved:       budget - spent,
	}
	return p, nil
}

// appendPoint appends p to the JSON array at path, creating the file if
// absent. Prior points pass through as raw JSON so points written under an
// older schema are preserved rather than re-parsed and stripped.
func appendPoint(path string, p point) error {
	var prior []json.RawMessage
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &prior); err != nil {
			return fmt.Errorf("benchgrid: %s is not a JSON array of points: %w", path, err)
		}
	case os.IsNotExist(err):
		// first point: start a fresh array
	default:
		return err
	}
	enc, err := json.Marshal(p)
	if err != nil {
		return err
	}
	prior = append(prior, enc)

	out, err := json.MarshalIndent(prior, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
