// Command ffis-worker is the compute side of the distributed campaign
// service: it polls a campaignd coordinator for work leases, rebuilds
// each leased spec's world from its wire form (same cell registry, same
// backend grammar, same seed discipline as a local run), executes the
// leased run indices on the local campaign engine, and streams finished
// records back in strict index order. When the coordinator reports the
// grid complete, the worker exits 0.
//
// Usage:
//
//	ffis-worker -coordinator http://head-node:8080
//	ffis-worker -coordinator http://head-node:8080 -id node7 -jobs 16
//	ffis-worker -coordinator http://head-node:8080 -token S3CR3T -trace runs.jsonl
//
// Determinism makes workers interchangeable: every record is a pure
// function of (spec, seed, run index), so it does not matter which worker
// runs which indices, how many workers there are, or how often one dies —
// the coordinator's store always converges to the single-machine bytes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ffis/internal/campaignd"
	progressui "ffis/internal/progress"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "http://localhost:8080", "campaignd base URL")
		id          = flag.String("id", "", "worker id shown in coordinator progress (default host-pid)")
		jobs        = flag.Int("jobs", 0, "engine pool width (0 = GOMAXPROCS)")
		pollEvery   = flag.Duration("poll", 500*time.Millisecond, "wait between lease polls when no work is available")
		heartbeat   = flag.Duration("heartbeat", 0, "lease renewal interval (0 = a third of the granted TTL)")
		batch       = flag.Int("batch", 64, "records per upload batch")
		token       = flag.String("token", "", "shared bearer secret; must match the coordinator's -token")
		prefetch    = flag.Bool("prefetch", true, "fetch the next lease while the current spec still executes")
		progress    = flag.Bool("progress", false, "stream per-spec run progress to stderr alongside lease logs")
		traceOut    = flag.String("trace", "", "stream per-run lifecycle events (spec_start, run_done with stage timings, barriers, spec_done) as JSONL to this file")
		quiet       = flag.Bool("quiet", false, "suppress per-lease progress lines")
	)
	flag.Parse()

	if *id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	var progressTo io.Writer
	if *progress {
		progressTo = os.Stderr
	}
	bus, finishEvents, err := progressui.Wire(progressTo, *traceOut, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffis-worker: %v\n", err)
		os.Exit(1)
	}
	w := &campaignd.Worker{
		ID:          *id,
		Coordinator: *coordinator,
		Jobs:        *jobs,
		Poll:        *pollEvery,
		Heartbeat:   *heartbeat,
		Batch:       *batch,
		Token:       *token,
		Prefetch:    *prefetch,
		Events:      bus,
	}
	if !*quiet {
		w.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	runErr := w.Run(context.Background())
	if err := finishEvents(); err != nil {
		fmt.Fprintf(os.Stderr, "ffis-worker: trace: %v\n", err)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "ffis-worker: %v\n", runErr)
		os.Exit(1)
	}
}
