// Command h5inspect dumps the structure of an HDF5 file written by this
// library: superblock fields, datatype floating-point properties, data
// layout, and (in demo mode) the byte-level field attribution map used by
// the metadata injection campaigns.
//
// Usage:
//
//	h5inspect file.h5          # inspect a file on disk
//	h5inspect -demo            # build and inspect a sample Nyx dataset
//	h5inspect -demo -fields    # also dump the field attribution map
//	h5inspect -demo -corrupt exponentBias -bit 2
package main

import (
	"flag"
	"fmt"
	"os"

	"ffis/internal/apps/nyx"
	"ffis/internal/hdf5"
)

func main() {
	var (
		demo     = flag.Bool("demo", false, "generate and inspect a sample Nyx dataset")
		fields   = flag.Bool("fields", false, "dump the metadata field map (demo mode)")
		corrupt  = flag.String("corrupt", "", "demo mode: corrupt the named field before inspecting")
		bit      = flag.Int("bit", 0, "bit to flip in the corrupted field's first byte")
		gridSize = flag.Int("n", 24, "demo grid edge")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "h5inspect: %v\n", err)
		os.Exit(1)
	}

	var raw []byte
	var img *hdf5.FileImage
	switch {
	case *demo:
		sim := nyx.DefaultSim()
		sim.N = *gridSize
		sim.NumHalos = 4
		field := sim.Generate()
		var err error
		img, err = nyx.BuildImage(field, sim.N)
		if err != nil {
			die(err)
		}
		raw = img.Bytes()
		if *corrupt != "" {
			rs := img.Fields.Find(*corrupt)
			if len(rs) == 0 {
				die(fmt.Errorf("no field matches %q", *corrupt))
			}
			raw[rs[0].Offset] ^= 1 << uint(*bit&7)
			fmt.Printf("corrupted %s (offset %d, bit %d)\n\n", rs[0].Name, rs[0].Offset, *bit&7)
		}
	case flag.NArg() == 1:
		var err error
		raw, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			die(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	f, err := hdf5.Parse(raw)
	if err != nil {
		fmt.Printf("file rejected by the library (crash class): %v\n", err)
		os.Exit(1)
	}
	fmt.Print(hdf5.Inspect(f))
	for _, d := range f.Datasets {
		vals, err := f.ReadValues(d)
		if err != nil {
			fmt.Printf("  dataset %q unreadable: %v\n", d.Name, err)
			continue
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		fmt.Printf("  dataset %q: %d values, mean %.6g\n", d.Name, len(vals), sum/float64(len(vals)))
	}
	if *fields && img != nil {
		fmt.Println()
		fmt.Print(hdf5.DumpFields(img, nil))
	}
}
