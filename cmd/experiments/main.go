// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -all -runs 1000            # everything, paper scale
//	experiments -table 3                   # just the metadata campaign
//	experiments -fig 7 -runs 200           # the characterization, reduced
//	experiments -fig 5 -outdir ./artifacts # writes PGM visualizations
//	experiments -tiered -runs 200          # fault placement across storage tiers
//	experiments -tiered -backend mem -backend object -backend latency
//	                                       # ...swept across storage backends too
//	experiments -readwrite -runs 200       # read-path vs write-path fault families
//	experiments -fig 7 -jobs 8 -progress   # 8-wide engine pool, streamed progress
//
// Campaign grids (-fig 7, -ablation, -detector-study, -tiered, -readwrite)
// run on the campaign engine: each cell's Setup executes once and every
// injection run gets a copy-on-write clone of that snapshot, with all cells
// drawing from one bounded worker pool (-jobs).
//
// Persistent results: -out streams every grid cell's run records to a JSONL
// store, -resume continues an interrupted store (finalized cells load from
// disk, partial cells pick up at the first missing run), -shard i/n
// executes only that slice of every cell's run indices (merge shard stores
// with -merge), and -report re-renders a store as text, CSV, JSON, or
// Markdown without re-running anything:
//
//	experiments -fig 7 -runs 1000 -out ./fig7
//	experiments -fig 7 -runs 1000 -out ./fig7 -resume   # after a crash
//	experiments -out ./fig7 -report markdown
//	experiments -merge ./s0 -merge ./s1 -out ./fig7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ffis/internal/core"
	"ffis/internal/experiments"
	progressui "ffis/internal/progress"
	"ffis/internal/results"
	"ffis/internal/stats"
)

// stringList is a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate one table (1-4)")
		fig      = flag.Int("fig", 0, "regenerate one figure (5-9)")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		runs     = flag.Int("runs", 1000, "runs per Figure 7 campaign cell")
		seed     = flag.Uint64("seed", 2021, "campaign seed")
		workers  = flag.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		jobs     = flag.Int("jobs", 0, "campaign engine pool width shared across the whole grid (0 = -workers, then GOMAXPROCS)")
		progress = flag.Bool("progress", false, "stream per-campaign progress to stderr while grids run")
		nyxN     = flag.Int("nyx-n", 0, "override the Nyx grid edge")
		stride   = flag.Int("meta-stride", 1, "Table III byte stride (1 = exhaustive)")
		useAvg   = flag.Bool("avg-detector", false, "apply the Nyx average-value method in Figure 7")
		ablation = flag.Bool("ablation", false, "run the design-choice ablation sweeps")
		detector = flag.Bool("detector-study", false, "run the Nyx with/without average-value comparison")
		tiered   = flag.Bool("tiered", false, "run the tiered-storage placement sweep (fault tier vs clean tiers)")
		rw       = flag.Bool("readwrite", false, "run the read-path vs write-path fault grid over every registered model")
		model    = flag.String("model", "", "restrict the -tiered sweep to one fault model (name, short code, or alias; default: the Table I write family)")
		listOnly = flag.Bool("list-models", false, "print the fault-model registry table and exit")
		outdir   = flag.String("outdir", "", "directory for image artifacts (Figures 5 and 9)")
		adaptive = flag.Float64("adaptive", 0, "adaptive stopping: each cell halts when every outcome rate's Wilson 95% half-width is under this target (-runs becomes the budget cap; 0 = fixed budget)")
		showCI   = flag.Bool("ci", false, "render campaign tables as rate ±halfwidth (Wilson 95%) columns")
		traceOut = flag.String("trace", "", "stream per-run lifecycle events (spec_start, run_done with stage timings, barriers, spec_done) as JSONL to this file")
		storeDir = flag.String("out", "", "stream grid run records to a JSONL results store at this directory")
		resume   = flag.Bool("resume", false, "resume the interrupted store at -out, skipping persisted work")
		shardStr = flag.String("shard", "", "execute only shard i/n of every cell's run indices (requires -out)")
		report   = flag.String("report", "", "re-render the store at -out (text, csv, json, markdown) and exit without running")
	)
	var mergeSrcs, backends stringList
	flag.Var(&mergeSrcs, "merge", "merge this shard store into -out (repeatable) and exit without running")
	flag.Var(&backends, "backend", "storage backend the -tiered sweep runs every placement under (repeatable: mem, object[:lag=N], latency[:bb|:pfs]; default mem)")
	flag.Parse()

	if *listOnly || strings.EqualFold(*model, "list") {
		fmt.Print(core.ModelTable())
		return
	}

	o := experiments.Options{
		Runs:           *runs,
		Seed:           *seed,
		Workers:        *workers,
		Jobs:           *jobs,
		NyxN:           *nyxN,
		MetaStride:     *stride,
		UseAvgDetector: *useAvg,
		CI:             *showCI,
		Backends:       backends,
	}
	for _, b := range backends {
		if err := experiments.ValidateBackend(b); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		if !experiments.HermeticBackend(b) {
			fmt.Fprintf(os.Stderr, "experiments: -backend %s: campaigns need hermetic per-run state; use mem, object, or latency\n", b)
			os.Exit(2)
		}
	}
	var progressTo io.Writer
	if *progress {
		progressTo = os.Stderr
	}
	bus, finishEvents, err := progressui.Wire(progressTo, *traceOut, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	o.Events = bus
	// Share one engine across every sweep this invocation runs (-all runs
	// several), so each distinct world's Setup and profile pass execute
	// once per process instead of once per sweep.
	o.Engine = o.NewEngine()
	if *adaptive > 0 {
		if *shardStr != "" {
			// A shard owns every n-th run index, never a complete prefix, so
			// an adaptive rule cannot evaluate its barriers on one.
			fmt.Fprintln(os.Stderr, "experiments: -adaptive cannot run under -shard (a shard never holds a complete run prefix); drop one of them")
			os.Exit(2)
		}
		o.Stop = &stats.StopRule{TargetHalfWidth: *adaptive}
	}

	die := func(err error) {
		// Flush the trace subscribers so a failed grid still leaves a
		// complete event file behind.
		if ferr := finishEvents(); ferr != nil {
			fmt.Fprintf(os.Stderr, "experiments: trace: %v\n", ferr)
		}
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	if (*resume || *shardStr != "" || *report != "" || len(mergeSrcs) > 0) && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume, -shard, -report, and -merge all operate on a results store; add -out DIR")
		os.Exit(2)
	}
	if len(mergeSrcs) > 0 {
		if err := results.Merge(*storeDir, mergeSrcs...); err != nil {
			die(err)
		}
		fmt.Printf("merged %d shard stores into %s\n", len(mergeSrcs), *storeDir)
		return
	}
	if *report != "" {
		st, err := results.Open(*storeDir)
		if err != nil {
			die(err)
		}
		out, err := results.Report(st, *report)
		if err != nil {
			die(err)
		}
		fmt.Print(out)
		return
	}
	if *storeDir != "" {
		shard, err := results.ParseShard(*shardStr)
		if err != nil {
			die(err)
		}
		st, err := results.CreateOrResume(*storeDir, *resume, results.Manifest{
			Seed: *seed, Runs: *runs, Shard: shard.String(),
		})
		if err != nil {
			die(err)
		}
		o.RunGrid = func(e *core.Engine, specs []core.CampaignSpec) ([]core.GridResult, error) {
			return results.RunGrid(e, st, shard, specs)
		}
	}
	saveImages := func(prefix string, images map[string][]byte) {
		if *outdir == "" {
			return
		}
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			die(err)
		}
		for name, data := range images {
			p := filepath.Join(*outdir, fmt.Sprintf("%s_%s.pgm", prefix, name))
			if err := os.WriteFile(p, data, 0o644); err != nil {
				die(err)
			}
			fmt.Printf("  wrote %s\n", p)
		}
	}

	wantTable := func(n int) bool { return *all || *table == n }
	wantFig := func(n int) bool { return *all || *fig == n }
	ranSomething := false

	if wantTable(1) {
		fmt.Println(experiments.Table1())
		ranSomething = true
	}
	if wantTable(2) {
		fmt.Println(experiments.Table2())
		ranSomething = true
	}
	if wantTable(3) {
		out, _, err := experiments.Table3(o)
		if err != nil {
			die(err)
		}
		fmt.Println(out)
		ranSomething = true
	}
	if wantTable(4) {
		out, _, err := experiments.Table4(o)
		if err != nil {
			die(err)
		}
		fmt.Println(out)
		ranSomething = true
	}
	if wantFig(5) {
		out, images, err := experiments.Fig5(o)
		if err != nil {
			die(err)
		}
		fmt.Println(out)
		saveImages("fig5", images)
		ranSomething = true
	}
	if wantFig(6) {
		out, err := experiments.Fig6(o)
		if err != nil {
			die(err)
		}
		fmt.Println(out)
		ranSomething = true
	}
	if wantFig(7) {
		out, _, err := experiments.Fig7(o)
		if err != nil {
			die(err)
		}
		fmt.Println(out)
		ranSomething = true
	}
	if wantFig(8) {
		out, err := experiments.Fig8(o)
		if err != nil {
			die(err)
		}
		fmt.Println(out)
		ranSomething = true
	}
	if wantFig(9) {
		out, images, err := experiments.Fig9(o)
		if err != nil {
			die(err)
		}
		fmt.Println(out)
		saveImages("fig9", images)
		ranSomething = true
	}
	if *ablation || *all {
		out, err := experiments.Ablations(o)
		if err != nil {
			die(err)
		}
		fmt.Println(out)
		ranSomething = true
	}
	if *detector || *all {
		out, err := experiments.Fig7WithDetector(o)
		if err != nil {
			die(err)
		}
		fmt.Println(out)
		ranSomething = true
	}
	if *tiered || *all {
		models := experiments.Fig7Models()
		if *model != "" {
			m, err := core.ParseModel(*model)
			if err != nil {
				die(err)
			}
			models = []core.Model{m}
		}
		for _, m := range models {
			out, _, err := experiments.Tiered(nil, m, o)
			if err != nil {
				die(err)
			}
			fmt.Println(out)
		}
		ranSomething = true
	}
	if *rw || *all {
		out, _, err := experiments.ReadWriteGrid(o)
		if err != nil {
			die(err)
		}
		fmt.Println(out)
		ranSomething = true
	}
	if err := finishEvents(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: trace: %v\n", err)
	}
	if !ranSomething {
		flag.Usage()
		os.Exit(2)
	}
}
