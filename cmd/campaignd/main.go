// Command campaignd is the distributed campaign coordinator: it owns a
// results store, decomposes a grid of campaign specs into work leases,
// serves them to ffis-worker processes over HTTP, ingests their record
// streams in strict index order, and re-queues any lease whose heartbeats
// lapse. The final store is byte-identical to a single-machine run of the
// same grid at the same seed — workers contribute compute, never state.
//
// Usage:
//
//	campaignd -out ./res -addr :8080                 # default Figure 7 grid
//	campaignd -out ./res -specs grid.json            # explicit spec grid
//	campaignd -out ./res -resume -specs grid.json    # continue after restart
//	campaignd -out ./res -gen > grid.json            # print the default grid
//
// The spec file is either a JSON array of wire specs or JSONL, one spec
// object per line:
//
//	{"cell": "MT2", "model": "bit-flip", "runs": 1000, "seed": 2021}
//
// Watch progress with GET /progress, live operational metrics (ingest
// throughput, lease churn, per-run stage latency averages) with
// GET /metrics, and render live tables with GET /report?format=markdown.
// With -token set, every route requires the matching bearer token.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"ffis/internal/campaignd"
	"ffis/internal/experiments"
	"ffis/internal/results"
)

func main() {
	var (
		specFile = flag.String("specs", "", "spec grid file (JSON array or JSONL of wire specs); empty serves the default Figure 7 grid")
		outDir   = flag.String("out", "", "results store directory (required)")
		resume   = flag.Bool("resume", false, "resume the existing store at -out instead of creating a fresh one")
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		leaseTTL = flag.Duration("lease-ttl", campaignd.DefaultLeaseTTL, "lease expiry without a heartbeat; lapsed leases re-queue from the first missing run index")
		token    = flag.String("token", "", "shared bearer secret; with it set, every route requires \"Authorization: Bearer <token>\"")
		runs     = flag.Int("runs", 1000, "runs per cell for the default grid (ignored with -specs)")
		seed     = flag.Uint64("seed", 2021, "campaign seed for the default grid (ignored with -specs)")
		gen      = flag.Bool("gen", false, "print the default Figure 7 spec grid as JSON and exit")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
		os.Exit(1)
	}

	var specs []experiments.WireSpec
	if *specFile != "" {
		f, err := os.Open(*specFile)
		if err != nil {
			die(err)
		}
		specs, err = experiments.ParseWireSpecs(f)
		f.Close()
		if err != nil {
			die(err)
		}
	} else {
		specs = experiments.Fig7WireGrid(*runs, *seed)
	}
	if *gen {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(specs); err != nil {
			die(err)
		}
		return
	}
	if *outDir == "" {
		fmt.Fprintln(os.Stderr, "campaignd: -out DIR is required")
		os.Exit(2)
	}
	man, err := campaignd.ManifestFor(specs)
	if err != nil {
		die(err)
	}
	st, err := results.CreateOrResume(*outDir, *resume, man)
	if err != nil {
		die(err)
	}
	coord, err := campaignd.NewCoordinator(st, specs, *leaseTTL)
	if err != nil {
		die(err)
	}
	defer coord.Close()
	coord.AuthToken = *token

	fmt.Printf("campaignd: serving %d specs (seed %d, %d runs per cell) on %s, lease TTL %s\n",
		len(specs), man.Seed, man.Runs, *addr, *leaseTTL)
	fmt.Printf("campaignd: store %s; watch GET /progress, render GET /report?format=markdown\n", st.Dir())
	srv := &http.Server{Addr: *addr, Handler: coord.Handler(), ReadHeaderTimeout: 10 * time.Second}
	if err := srv.ListenAndServe(); err != nil {
		die(err)
	}
}
