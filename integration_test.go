// Cross-module integration tests: end-to-end flows that span the vfs,
// core, hdf5, trace, and application layers together, including a campaign
// run against real storage (OSFS) to validate the MemFS substitution.
package ffis

import (
	"bytes"
	"strings"
	"testing"

	"ffis/internal/apps/nyx"
	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/hdf5"
	"ffis/internal/metainject"
	"ffis/internal/stats"
	"ffis/internal/trace"
	"ffis/internal/vfs"
)

func integrationSim() nyx.SimConfig {
	sim := nyx.DefaultSim()
	sim.N = 24
	sim.NumHalos = 4
	return sim
}

// TestCampaignOnRealStorage runs a small Nyx campaign where each injection
// writes through OSFS onto a real temporary directory instead of MemFS —
// the backends must classify identically for identical fault targets.
func TestCampaignOnRealStorage(t *testing.T) {
	app, err := nyx.NewApp(integrationSim(), nyx.DefaultHalo())
	if err != nil {
		t.Fatal(err)
	}
	sig := core.Config{Model: core.DroppedWrite}.Signature()
	count, err := core.Profile(app.Workload(), sig)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int64{0, count / 2, count - 1} {
		memFS := vfs.NewMemFS()
		osFS := vfs.NewOSFS(t.TempDir())

		memInj := core.NewInjector(sig, target, stats.NewRNG(1))
		osInj := core.NewInjector(sig, target, stats.NewRNG(1))

		memErr := app.Run(memInj.Wrap(memFS))
		osErr := app.Run(osInj.Wrap(osFS))
		if (memErr == nil) != (osErr == nil) {
			t.Fatalf("target %d: run errors disagree: mem=%v os=%v", target, memErr, osErr)
		}
		memOut := app.Classify(memFS, memErr)
		osOut := app.Classify(osFS, osErr)
		if memOut != osOut {
			t.Fatalf("target %d: outcomes disagree: mem=%s os=%s", target, memOut, osOut)
		}
		// The persisted bytes must be identical too.
		memRaw, _ := vfs.ReadFile(memFS, nyx.OutputPath)
		osRaw, _ := vfs.ReadFile(osFS, nyx.OutputPath)
		if !bytes.Equal(memRaw, osRaw) {
			t.Fatalf("target %d: stored bytes differ between backends", target)
		}
	}
}

// TestTracedInjectionCampaign stacks the full FFIS sandwich — trace
// recorder over injector over MemFS — and checks that the trace shows
// exactly the write stream the profiler predicted.
func TestTracedInjectionCampaign(t *testing.T) {
	app, err := nyx.NewApp(integrationSim(), nyx.DefaultHalo())
	if err != nil {
		t.Fatal(err)
	}
	sig := core.Config{Model: core.BitFlip}.Signature()
	count, err := core.Profile(app.Workload(), sig)
	if err != nil {
		t.Fatal(err)
	}

	base := vfs.NewMemFS()
	inj := core.NewInjector(sig, 3, stats.NewRNG(9))
	rec := trace.NewRecorder(inj.Wrap(base))
	if err := app.Run(rec); err != nil {
		t.Fatal(err)
	}
	profile := trace.Analyze(rec.Log())
	if got := int64(profile.ByPrim[vfs.PrimWrite]); got != count {
		t.Fatalf("trace saw %d writes, profiler predicted %d", got, count)
	}
	if _, fired := inj.Fired(); !fired {
		t.Fatal("injector never fired under the recorder")
	}
	if profile.Errors != 0 {
		t.Fatalf("trace recorded %d errors", profile.Errors)
	}
}

// TestMetadataCorruptionToRepairPipeline walks the complete §V-A story:
// build → corrupt a repairable field → halo finder degrades → diagnose →
// correct → halo finder restored bit-exactly.
func TestMetadataCorruptionToRepairPipeline(t *testing.T) {
	sim := integrationSim()
	field := sim.Generate()
	img, err := nyx.BuildImage(field, sim.N)
	if err != nil {
		t.Fatal(err)
	}
	golden := nyx.FindHalos(field, sim.N, nyx.DefaultHalo()).Render()

	raw := img.Bytes()
	raw[img.Fields.Find("exponentBias")[0].Offset] ^= 0x02 // bias-2: scale 4

	runFinder := func(content []byte) (string, error) {
		fs := vfs.NewMemFS()
		fs.MkdirAll("/plt00000")
		if err := vfs.WriteFile(fs, nyx.OutputPath, content); err != nil {
			return "", err
		}
		cat, err := nyx.RunHaloFinder(fs, nyx.OutputPath, nyx.DefaultHalo())
		if err != nil {
			return "", err
		}
		return cat.Render(), nil
	}

	corrupted, err := runFinder(raw)
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == golden {
		t.Fatal("corruption had no effect")
	}
	fixed, diag, err := metainject.Correct(raw, nyx.DatasetName)
	if err != nil {
		t.Fatal(err)
	}
	if diag != metainject.DiagExponentBias {
		t.Fatalf("diagnosis = %s", diag)
	}
	repaired, err := runFinder(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != golden {
		t.Fatalf("repair did not restore the golden catalog:\n%s\nvs\n%s", repaired, golden)
	}
}

// TestHDF5FileSurvivesTraceReplayStructure writes a dataset, replays its
// recorded write pattern onto a second FS, and confirms the replayed file
// has the same size and write layout (content differs by design).
func TestHDF5FileSurvivesTraceReplayStructure(t *testing.T) {
	sim := integrationSim()
	field := sim.Generate()

	rec := trace.NewRecorder(vfs.NewMemFS())
	rec.MkdirAll("/plt00000")
	if err := nyx.WriteDataset(rec, nyx.OutputPath, field, sim.N); err != nil {
		t.Fatal(err)
	}

	dst := vfs.NewMemFS()
	if err := trace.ReplayWrites(rec.Log(), dst); err != nil {
		t.Fatal(err)
	}
	srcInfo, err := rec.Stat(nyx.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	dstInfo, err := dst.Stat(nyx.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	if srcInfo.Size != dstInfo.Size {
		t.Fatalf("replayed size %d != original %d", dstInfo.Size, srcInfo.Size)
	}
}

// TestSweepAcrossFlipWidthsOnNyx exercises the ablation path end-to-end
// and exports it as JSON.
func TestSweepAcrossFlipWidthsOnNyx(t *testing.T) {
	app, err := nyx.NewApp(integrationSim(), nyx.DefaultHalo())
	if err != nil {
		t.Fatal(err)
	}
	results, err := core.Sweep(core.FlipWidthSweep(), core.CampaignConfig{Runs: 6, Seed: 11}, app.Workload())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	// Footnote 3: the Nyx SDC rate stays minimal at wider flips.
	for _, r := range results {
		if rate := r.Tally.Rate(classify.SDC).P(); rate > 0.5 {
			t.Fatalf("%s: SDC rate %.2f implausibly high", r.Workload, rate)
		}
	}
	var buf bytes.Buffer
	if err := core.WriteResultsJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nyx/flip4") {
		t.Fatalf("JSON missing sweep label:\n%s", buf.String())
	}
}

// TestInspectAfterInjectedMetadataWrite drives h5inspect's code path: a
// shorn write aimed exactly at the metadata write leaves a file the parser
// must reject (the metadata block loses its tail sectors).
func TestInspectAfterInjectedMetadataWrite(t *testing.T) {
	sim := integrationSim()
	field := sim.Generate()
	img, err := nyx.BuildImage(field, sim.N)
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewMemFS()
	fs.MkdirAll("/plt00000")
	sig := core.Config{Model: core.DroppedWrite}.Signature()
	inj := core.NewInjector(sig, img.MetadataWriteIndex(), stats.NewRNG(3))
	if err := img.WriteTo(inj.Wrap(fs), nyx.OutputPath); err != nil {
		t.Fatal(err)
	}
	raw, err := vfs.ReadFile(fs, nyx.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hdf5.Parse(raw); err == nil {
		t.Fatal("dropped metadata write produced a parseable file")
	}
}
