// Nyx end-to-end: simulate a baryon density field, persist it as HDF5,
// inject a dropped write into the I/O path, run the Friends-of-Friends halo
// finder, and show that the corruption is an SDC for the halo catalog yet
// is caught by the paper's average-value detection method.
package main

import (
	"fmt"
	"log"

	"ffis/internal/apps/nyx"
	"ffis/internal/core"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

func main() {
	sim := nyx.DefaultSim()
	sim.N = 32
	sim.NumHalos = 6
	app, err := nyx.NewApp(sim, nyx.DefaultHalo())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden halo catalog:\n%s\n", app.Golden())

	// Inject a dropped write into the middle of the data stream.
	sig := core.Config{Model: core.MustModel("dropped-write")}.Signature()
	count, err := core.Profile(app.Workload(), sig)
	if err != nil {
		log.Fatal(err)
	}
	target := count / 2
	fs := vfs.NewMemFS()
	inj := core.NewInjector(sig, target, stats.NewRNG(7))
	if err := app.Run(inj.Wrap(fs)); err != nil {
		log.Fatal(err)
	}
	mut, _ := inj.Fired()
	fmt.Printf("injected: %s (write %d of %d)\n\n", mut, target, count)

	cat, err := nyx.RunHaloFinder(fs, nyx.OutputPath, nyx.DefaultHalo())
	if err != nil {
		log.Fatalf("halo finder crashed: %v", err)
	}
	fmt.Printf("faulty halo catalog:\n%s\n", cat.Render())

	if cat.Render() == app.Golden() {
		fmt.Println("outcome: benign")
	} else if len(cat.Halos) == 0 {
		fmt.Println("outcome: detected (no halos found)")
	} else {
		fmt.Println("outcome: SDC — the catalog silently changed")
	}
	fmt.Printf("average-value method: mean=%.6f, flagged=%v (tolerance %.1f%%)\n",
		cat.Mean, nyx.DetectByAverage(cat.Mean), 100*nyx.AvgTolerance)
}
