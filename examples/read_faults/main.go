// Read-path faults: a producer stage writes a data file, a consumer stage
// reads it back — and the fault surfaces at *read* time, not write time.
// The walkthrough contrasts the three read-side models: a transient
// read bit flip (only one read sees it), an unreadable sector (the read
// fails with EIO), and latent corruption (the at-rest bytes are mutated, so
// every subsequent reader sees the same damage).
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	"ffis/internal/core"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

const path = "/pipeline/stage1.out"

// produce is the producing stage: it writes 4 KiB of 0x5A records.
func produce(fs vfs.FS) error {
	if err := fs.MkdirAll("/pipeline"); err != nil {
		return err
	}
	return vfs.WriteFile(fs, path, bytes.Repeat([]byte{0x5A}, 4096))
}

// consume is the consuming stage: it reads the file in 1 KiB chunks and
// reports how many bytes deviate from the expected pattern.
func consume(fs vfs.FS) (corrupted int, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	buf := make([]byte, 1024)
	for off := 0; off < 4096; off += len(buf) {
		if _, err := f.ReadAt(buf, int64(off)); err != nil {
			return corrupted, err
		}
		for _, b := range buf {
			if b != 0x5A {
				corrupted++
			}
		}
	}
	return corrupted, nil
}

func main() {
	for _, model := range core.ReadModels() {
		sig := core.Config{Model: model}.Signature()
		fmt.Printf("=== %s ===\n", sig)

		// Producer runs fault-free; the injector arms the consumer's reads.
		base := vfs.NewMemFS()
		if err := produce(base); err != nil {
			log.Fatal(err)
		}
		inj := core.NewInjector(sig, 1, stats.NewRNG(7)) // corrupt the 2nd read
		corrupted, err := consume(inj.Wrap(base))
		switch {
		case errors.Is(err, vfs.ErrUnreadable):
			fmt.Printf("consumer died: %v\n", err)
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("consumer saw %d corrupted byte(s)\n", corrupted)
		}
		if mut, fired := inj.Fired(); fired {
			fmt.Printf("mutation: %s\n", mut)
		}

		// Re-run the consumer on the bare storage: transient faults are
		// gone, latent corruption is still there.
		corrupted, err = consume(base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("re-read from clean view: %d corrupted byte(s) at rest\n\n", corrupted)
	}
}
