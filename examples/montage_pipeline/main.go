// Montage pipeline: build the 10-tile m101 mosaic, then inject a shorn
// write into each of the four I/O-intensive stages in turn, showing how
// each stage bounds its own faults (the paper's stage-decoupling
// observation).
package main

import (
	"fmt"
	"log"

	"ffis/internal/apps/montage"
	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

func main() {
	cfg := montage.DefaultConfig()
	cfg.Tiles = 6
	cfg.TileW, cfg.TileH = 48, 48
	cfg.MosaicW, cfg.MosaicH = 110, 110

	for _, stage := range montage.Stages() {
		app, err := montage.NewApp(cfg, stage)
		if err != nil {
			log.Fatal(err)
		}
		sig := core.Config{Model: core.MustModel("shorn-write")}.Signature()
		count, err := core.Profile(app.Workload(), sig)
		if err != nil {
			log.Fatal(err)
		}

		// Inject into three spots of the stage's write stream.
		var tally classify.Tally
		for _, frac := range []int64{4, 2, 4 * 3} {
			target := count * frac / 16
			if target >= count {
				target = count - 1
			}
			fs := vfs.NewMemFS()
			if err := app.Setup(fs); err != nil {
				log.Fatal(err)
			}
			inj := core.NewInjector(sig, target, stats.NewRNG(uint64(stage)))
			runErr := app.Run(inj.Wrap(fs))
			tally.Add(app.Classify(fs, runErr))
		}
		fmt.Printf("%-10s %3d writes profiled | shorn-write outcomes: %s | golden min=%.5f\n",
			stage, count, tally.String(), app.GoldenMin())
	}
	fmt.Println("\neach stage re-reads its inputs from storage, so faults stay bounded within the stage's products")
}
