// Tiered storage: mount separate backends for the scratch and output tiers
// of an HPC storage hierarchy, aim a fault signature at ONE tier, and watch
// the other tiers stay clean — then run the full tiered placement sweep for
// two of the paper's workloads, and finally cross placements with backend
// *types*: the same grid re-run under an object store (whole-object RMW,
// eventual consistency) and under latency-modeled tiers whose simulated
// clock prices every operation.
//
// This is the scenario the paper's flat FFISFS mount cannot express: real
// systems put plotfiles on a burst buffer and final products on the
// parallel file system, and a dying SSD corrupts only the I/O routed to it.
package main

import (
	"fmt"
	"log"

	"ffis/internal/core"
	"ffis/internal/experiments"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

func main() {
	// --- Part 1: the mount table, by hand. ---------------------------------
	// A three-tier world: home directories on the root backend, a burst
	// buffer at /scratch, campaign storage at /out.
	world := vfs.NewMountFS(vfs.NewMemFS())
	for _, tier := range []string{"/scratch", "/out"} {
		if err := world.Mount(tier, vfs.NewMemFS()); err != nil {
			log.Fatal(err)
		}
	}
	for _, mp := range world.Mounts() {
		fmt.Printf("mounted backend at %s\n", mp.Path)
	}

	// The application sees one namespace (transparency, R1) ...
	app := func(fs vfs.FS) error {
		if err := vfs.WriteFile(fs, "/scratch/checkpoint.dat", make([]byte, 4096)); err != nil {
			return err
		}
		return vfs.WriteFile(fs, "/out/result.dat", []byte("final answer: 42\n"))
	}

	// ... but the injector is armed on the scratch tier only: the view
	// `armed` shares storage with `world`, differing only in the wrapper.
	sig := core.Config{Model: core.MustModel("bit-flip")}.Signature()
	inj := core.NewInjector(sig, 0, stats.NewRNG(2021))
	armed, err := world.WithInterposed("/scratch", inj.Wrap)
	if err != nil {
		log.Fatal(err)
	}
	if err := app(armed); err != nil {
		log.Fatal(err)
	}
	if mut, fired := inj.Fired(); fired {
		fmt.Printf("fault fired on the scratch tier: %s\n", mut)
	}
	result, err := vfs.ReadFile(world, "/out/result.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output tier untouched: %q\n", result)

	// Cross-mount renames fail like EXDEV on real tiered storage.
	if err := world.Rename("/scratch/checkpoint.dat", "/out/checkpoint.dat"); err != nil {
		fmt.Printf("cross-tier rename rejected: %v\n", err)
	}

	// --- Part 2: the placement sweep. --------------------------------------
	// Sweep dropped-write faults across {all, scratch-only, output-only}
	// placements for Nyx (writes plotfiles to scratch) and Montage stage 4
	// (writes the mosaic to the output tier), at demo scale.
	fmt.Println()
	table, _, err := experiments.Tiered([]string{"nyx", "MT4"}, core.MustModel("dropped-write"), experiments.Options{
		Runs: 40,
		Seed: 2021,
		NyxN: 24,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table)

	// --- Part 3: backend × placement. --------------------------------------
	// The same placement grid for Montage stage 2, re-run under each hermetic
	// backend type. The capability model makes the differences visible in the
	// table itself: ObjectFS pays whole-object read-modify-write commits for
	// every fault the injector lands, and the latency backend's simulated
	// clock (burst-buffer pricing on scratch mounts, parallel-FS pricing
	// elsewhere) reports per-cell simulated I/O time in the sim-ms column —
	// all at zero wall-clock cost, and bit-identically across worker counts.
	fmt.Println()
	table, _, err = experiments.Tiered([]string{"MT2"}, core.MustModel("dropped-write"), experiments.Options{
		Runs:     40,
		Seed:     2021,
		Backends: []string{"mem", "object", "latency"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table)

	// A taste of what the object backend models, by hand: overwriting a key
	// with a consistency lag serves the previous version to the next opens
	// while Stat already answers from the new generation — the LIST/HEAD vs
	// GET divergence of a real object store, as a deterministic open-count.
	obj := vfs.NewObjectFS()
	obj.SetConsistencyLag(1)
	if err := obj.MkdirAll("/bucket"); err != nil {
		log.Fatal(err)
	}
	for _, v := range []string{"v1", "v2-longer"} {
		if err := vfs.WriteFile(obj, "/bucket/key", []byte(v)); err != nil {
			log.Fatal(err)
		}
	}
	stale, _ := vfs.ReadFile(obj, "/bucket/key")
	info, _ := obj.Stat("/bucket/key")
	fresh, _ := vfs.ReadFile(obj, "/bucket/key")
	fmt.Printf("\nobject store after overwrite (lag 1): GET %q, HEAD size %d, next GET %q\n",
		stale, info.Size, fresh)
	fmt.Printf("bytes rewritten by whole-object commits: %d\n", obj.RewrittenBytes())
}
