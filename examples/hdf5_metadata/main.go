// HDF5 metadata resilience: corrupt the SDC-prone fields of a dataset's
// datatype/layout messages (Exponent Bias and Address of Raw Data), show
// their silent effect on the decoded data, then apply the paper's
// detection + auto-correction methodology (Section V-A).
package main

import (
	"fmt"
	"log"

	"ffis/internal/apps/nyx"
	"ffis/internal/hdf5"
	"ffis/internal/metainject"
	"ffis/internal/stats"
)

func main() {
	sim := nyx.DefaultSim()
	sim.N = 24
	sim.NumHalos = 4
	field := sim.Generate()
	img, err := nyx.BuildImage(field, sim.N)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built HDF5 image: %d metadata bytes + %d data bytes\n",
		len(img.Meta), len(img.Data))
	fmt.Printf("ARD = %d == metadata size (the correction invariant)\n\n",
		img.Datasets[0].DataOffset)

	show := func(title string, raw []byte) {
		f, err := hdf5.Parse(raw)
		if err != nil {
			fmt.Printf("%-22s library exception: %v\n", title, err)
			return
		}
		vals, err := f.ReadValues(f.Datasets[0])
		if err != nil {
			fmt.Printf("%-22s read error: %v\n", title, err)
			return
		}
		fmt.Printf("%-22s mean=%.6g  bias=%#x  ARD=%d\n",
			title, stats.Mean(vals), f.Datasets[0].Spec.ExpBias, f.Datasets[0].DataOffset)
	}

	pristine := img.Bytes()
	show("original:", pristine)

	// Fault 1: Exponent Bias bit flip — scales every value by 2^4.
	biasFault := append([]byte(nil), pristine...)
	biasFault[img.Fields.Find("exponentBias")[0].Offset] ^= 0x04
	show("faulty exponent bias:", biasFault)
	diag, err := metainject.Diagnose(biasFault, nyx.DatasetName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %s\n", "diagnosis:", diag)
	fixed, _, err := metainject.Correct(biasFault, nyx.DatasetName)
	if err != nil {
		log.Fatal(err)
	}
	show("after correction:", fixed)
	fmt.Println()

	// Fault 2: ARD bit flip — shifts the data window; the average stays 1
	// so only the metadata-size invariant reveals it.
	ardFault := append([]byte(nil), pristine...)
	ardFault[img.Fields.Find("addressOfRawData")[0].Offset] ^= 0x40
	show("faulty ARD:", ardFault)
	diag, err = metainject.Diagnose(ardFault, nyx.DatasetName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %s\n", "diagnosis:", diag)
	fixed, _, err = metainject.Correct(ardFault, nyx.DatasetName)
	if err != nil {
		log.Fatal(err)
	}
	show("after correction:", fixed)
}
