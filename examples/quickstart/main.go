// Quickstart: arm FFIS with a bit-flip fault signature, profile a tiny
// workload, inject into one randomly chosen write, and observe the
// corruption — the minimal end-to-end use of the public pieces.
package main

import (
	"fmt"
	"log"

	"ffis/internal/core"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

func main() {
	// The workload: an "application" that writes four 32-byte records.
	workload := func(fs vfs.FS) error {
		f, err := fs.Create("/out/records.bin")
		if err != nil {
			return err
		}
		defer f.Close()
		for rec := 0; rec < 4; rec++ {
			buf := make([]byte, 32)
			for i := range buf {
				buf[i] = byte(rec)
			}
			if _, err := f.Write(buf); err != nil {
				return err
			}
		}
		return nil
	}

	// 1. Fault generator: build the fault signature (bit flip @ write).
	sig := core.Config{Model: core.MustModel("bit-flip")}.Signature()
	fmt.Printf("fault signature: %s (flip %d consecutive bits)\n", sig, sig.Feature.FlipBits)

	// 2. I/O profiler: count dynamic executions of the target primitive.
	count, err := core.Profile(core.Workload{
		Name:  "quickstart",
		Setup: func(fs vfs.FS) error { return fs.MkdirAll("/out") },
		Run:   workload,
	}, sig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiler: workload performs %d writes\n", count)

	// 3. Fault injector: corrupt one uniformly chosen write instance.
	rng := stats.NewRNG(42)
	target := int64(rng.Intn(int(count)))
	fs := vfs.NewMemFS()
	fs.MkdirAll("/out")
	inj := core.NewInjector(sig, target, rng)
	if err := workload(inj.Wrap(fs)); err != nil {
		log.Fatal(err)
	}
	mut, fired := inj.Fired()
	fmt.Printf("injector: targeted write #%d, fired=%v\n", target, fired)
	fmt.Printf("mutation: %s\n", mut)

	// Observe the corruption.
	data, err := vfs.ReadFile(fs, "/out/records.bin")
	if err != nil {
		log.Fatal(err)
	}
	for rec := 0; rec < 4; rec++ {
		diff := 0
		for i := 0; i < 32; i++ {
			if data[rec*32+i] != byte(rec) {
				diff++
			}
		}
		marker := ""
		if diff > 0 {
			marker = fmt.Sprintf("   <-- %d corrupted byte(s)", diff)
		}
		fmt.Printf("record %d: %d bytes differ from golden%s\n", rec, diff, marker)
	}
}
