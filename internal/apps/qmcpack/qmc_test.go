package qmcpack

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

func TestLocalEnergyAtExactPoints(t *testing.T) {
	// For a bare hydrogenic product (A=0) with Z=2 the local energy is
	// E_L = -Z² + 1/r12 (kinetic+nuclear terms are exact for the
	// exponential orbital).
	trial := trialWavefunction{Z: 2, A: 0, B: 0.35}
	w := walker{r: [6]float64{1, 0, 0, -1, 0, 0}} // r1=r2=1, r12=2
	e, _ := trial.localEnergy(w)
	want := -4.0 + 0.5
	if math.Abs(e-want) > 1e-9 {
		t.Fatalf("E_L = %v, want %v", e, want)
	}
}

func TestLocalEnergyFiniteEverywhere(t *testing.T) {
	trial := defaultTrial()
	rng := stats.NewRNG(3)
	for i := 0; i < 10000; i++ {
		var w walker
		for k := 0; k < 6; k++ {
			w.r[k] = rng.NormFloat64() * 2
		}
		e, drift := trial.localEnergy(w)
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("E_L = %v at %v", e, w.r)
		}
		for _, d := range drift {
			if math.IsNaN(d) || math.IsInf(d, 0) {
				t.Fatalf("drift = %v at %v", drift, w.r)
			}
		}
	}
}

func TestLocalEnergyCuspStability(t *testing.T) {
	// Near the electron-nucleus coalescence the cusp condition keeps E_L
	// finite; verify no blow-up at tiny r1.
	trial := defaultTrial()
	w := walker{r: [6]float64{1e-7, 0, 0, 0.7, 0.1, -0.3}}
	e, _ := trial.localEnergy(w)
	if math.IsNaN(e) || math.IsInf(e, 0) {
		t.Fatalf("E_L = %v at nucleus", e)
	}
}

func TestVMCEnergyPlausible(t *testing.T) {
	cfg := DefaultQMC()
	cfg.VMCSteps = 200
	rows, _ := RunVMC(cfg, defaultTrial())
	if len(rows) != 200 {
		t.Fatalf("rows = %d", len(rows))
	}
	var sum float64
	for _, r := range rows {
		sum += r.Energy
	}
	mean := sum / float64(len(rows))
	// The Padé-Jastrow VMC energy for He sits between the bare
	// Hartree product (-2.85) and the exact energy (-2.90372).
	if mean > -2.80 || mean < -2.95 {
		t.Fatalf("VMC energy = %v, implausible for He", mean)
	}
	for _, r := range rows {
		if r.Variance < 0 || r.Weight <= 0 {
			t.Fatalf("bad row: %+v", r)
		}
	}
}

func TestDMCImprovesOnVMC(t *testing.T) {
	cfg := DefaultQMC()
	trial := defaultTrial()
	vmcRows, ensemble := RunVMC(cfg, trial)
	dmcRows := RunDMC(cfg, trial, ensemble)
	vmcA, err := Analyze(FormatRows(vmcRows))
	if err != nil {
		t.Fatal(err)
	}
	dmcA, err := Analyze(FormatRows(dmcRows))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dmcA.Energy-ExactEnergy) > math.Abs(vmcA.Energy-ExactEnergy) {
		t.Fatalf("DMC (%.5f) further from exact %.5f than VMC (%.5f)",
			dmcA.Energy, ExactEnergy, vmcA.Energy)
	}
}

func TestDMCPopulationControlled(t *testing.T) {
	cfg := DefaultQMC()
	cfg.DMCSteps = 200
	trial := defaultTrial()
	_, ensemble := RunVMC(cfg, trial)
	rows := RunDMC(cfg, trial, ensemble)
	for i, r := range rows {
		if r.Weight < float64(cfg.PopTarget)/4 || r.Weight > float64(cfg.PopTarget)*4 {
			t.Fatalf("step %d: population %v escaped control", i, r.Weight)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	v1, d1 := RunAll(DefaultQMC())
	v2, d2 := RunAll(DefaultQMC())
	if FormatRows(v1) != FormatRows(v2) || FormatRows(d1) != FormatRows(d2) {
		t.Fatal("Monte Carlo not deterministic for fixed seed")
	}
}

func TestFormatAndAnalyzeRoundTrip(t *testing.T) {
	rows := []Row{
		{0, -2.9, 0.3, 100},
		{1, -2.91, 0.31, 101},
		{2, -2.89, 0.29, 99},
		{3, -2.90, 0.30, 100},
		{4, -2.905, 0.30, 100},
	}
	content := FormatRows(rows)
	if !strings.HasPrefix(content, "#") {
		t.Fatal("missing header")
	}
	a, err := Analyze(content)
	if err != nil {
		t.Fatal(err)
	}
	// 20% equilibration discards the first row.
	if a.Rows != 4 {
		t.Fatalf("rows = %d, want 4", a.Rows)
	}
	if a.Energy > -2.89 || a.Energy < -2.92 {
		t.Fatalf("energy = %v", a.Energy)
	}
	if a.Skipped != 0 {
		t.Fatalf("skipped = %d", a.Skipped)
	}
}

func TestAnalyzeSkipsCorruptRows(t *testing.T) {
	content := header +
		"0  -2.9  0.3  100\n" +
		"1  -2.9  0.3  100\n" +
		"garbage line here x\n" +
		"2  -2.9q  0.3  100\n" + // unparseable energy
		"3  -2.9  0.3  -5\n" + // non-positive weight
		"4  -2.9  0.3  100\n" +
		"5  -2.9  0.3  100\n"
	a, err := Analyze(content)
	if err != nil {
		t.Fatal(err)
	}
	if a.Skipped != 3 {
		t.Fatalf("skipped = %d, want 3", a.Skipped)
	}
	if math.Abs(a.Energy+2.9) > 1e-9 {
		t.Fatalf("energy = %v", a.Energy)
	}
}

func TestAnalyzeFailsOnEmpty(t *testing.T) {
	if _, err := Analyze(""); err == nil {
		t.Fatal("empty content accepted")
	}
	if _, err := Analyze(header); err == nil {
		t.Fatal("header-only content accepted")
	}
	if _, err := Analyze("all\ngarbage\nrows\n"); err == nil {
		t.Fatal("all-garbage content accepted")
	}
}

func TestWriteScalarFileBlockWrites(t *testing.T) {
	fs := vfs.NewCountingFS(vfs.NewMemFS())
	content := strings.Repeat("x", 10000)
	if err := WriteScalarFile(fs, "/f", content); err != nil {
		t.Fatal(err)
	}
	if got := fs.Count(vfs.PrimWrite); got != 3 { // ceil(10000/4096)
		t.Fatalf("writes = %d, want 3", got)
	}
	raw, _ := vfs.ReadFile(fs, "/f")
	if string(raw) != content {
		t.Fatal("content mismatch")
	}
}

func newTestApp(t *testing.T) *App {
	t.Helper()
	app, err := NewApp(DefaultQMC())
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestGoldenEnergyInWindow(t *testing.T) {
	app := newTestApp(t)
	e := app.GoldenEnergy()
	if e < SDCWindowLo || e > SDCWindowHi {
		t.Fatalf("golden energy %.5f outside [%g, %g]", e, SDCWindowLo, SDCWindowHi)
	}
	// And close to the exact non-relativistic value.
	if math.Abs(e-ExactEnergy) > 0.006 {
		t.Fatalf("golden energy %.5f too far from exact %.5f", e, ExactEnergy)
	}
}

func TestAppGoldenClassifiesBenign(t *testing.T) {
	app := newTestApp(t)
	fs := vfs.NewMemFS()
	if err := app.Run(fs); err != nil {
		t.Fatal(err)
	}
	if got := app.Classify(fs, nil); got != classify.Benign {
		t.Fatalf("golden run classified %s", got)
	}
}

func TestAppClassifyVMCCorruptionBenign(t *testing.T) {
	// Faults that land in the VMC series file leave the DMC series
	// untouched: benign, per the paper's classification.
	app := newTestApp(t)
	fs := vfs.NewMemFS()
	if err := app.Run(fs); err != nil {
		t.Fatal(err)
	}
	raw, _ := vfs.ReadFile(fs, VMCPath)
	raw[100] ^= 0xFF
	vfs.WriteFile(fs, VMCPath, raw)
	if got := app.Classify(fs, nil); got != classify.Benign {
		t.Fatalf("VMC-file corruption classified %s", got)
	}
}

func TestAppClassifySmallDigitFlipIsSDC(t *testing.T) {
	app := newTestApp(t)
	fs := vfs.NewMemFS()
	app.Run(fs)
	raw, _ := vfs.ReadFile(fs, DMCPath)
	// Flip a low-order decimal digit of an energy in a mid-file row:
	// tiny change, energy stays within the window. The energy column is
	// the first "." on a row; its 6th decimal is well inside the
	// 10-digit fraction.
	content := string(raw)
	idx := strings.Index(content[len(content)/2:], ".") + len(content)/2
	raw[idx+6] = flipDigit(raw[idx+6])
	vfs.WriteFile(fs, DMCPath, raw)
	if got := app.Classify(fs, nil); got != classify.SDC {
		t.Fatalf("small digit flip classified %s, want SDC", got)
	}
}

func flipDigit(b byte) byte {
	if b == '9' {
		return '8'
	}
	if b >= '0' && b < '9' {
		return b + 1
	}
	return '1'
}

func TestAppClassifyBigCorruptionDetected(t *testing.T) {
	app := newTestApp(t)
	fs := vfs.NewMemFS()
	app.Run(fs)
	raw, _ := vfs.ReadFile(fs, DMCPath)
	// Corrupt the integer part of many energies: -2.xx -> -7.xx.
	content := strings.ReplaceAll(string(raw), " -2.9", " -7.9")
	vfs.WriteFile(fs, DMCPath, []byte(content))
	if got := app.Classify(fs, nil); got != classify.Detected {
		t.Fatalf("gross corruption classified %s, want detected", got)
	}
}

func TestAppClassifyMissingFileCrash(t *testing.T) {
	app := newTestApp(t)
	fs := vfs.NewMemFS()
	app.Run(fs)
	fs.Remove(DMCPath)
	if got := app.Classify(fs, nil); got != classify.Crash {
		t.Fatalf("missing file classified %s", got)
	}
}

func TestAppClassifyZeroFilledCrash(t *testing.T) {
	app := newTestApp(t)
	fs := vfs.NewMemFS()
	app.Run(fs)
	info, _ := fs.Stat(DMCPath)
	vfs.WriteFile(fs, DMCPath, make([]byte, info.Size))
	if got := app.Classify(fs, nil); got != classify.Crash {
		t.Fatalf("zero-filled file classified %s", got)
	}
}

func TestCampaignShapeBitFlip(t *testing.T) {
	// The QMCPACK phenomenology: a large fraction of bit flips are SDC
	// (any flip in the DMC file that keeps the energy plausible), with
	// benign runs from flips landing in the VMC file.
	app := newTestApp(t)
	res, err := core.Campaign(core.CampaignConfig{
		Fault: core.Config{Model: core.BitFlip},
		Runs:  30,
		Seed:  5,
	}, app.Workload())
	if err != nil {
		t.Fatal(err)
	}
	sdc := res.Tally.Rate(classify.SDC).P()
	if sdc < 0.2 {
		t.Fatalf("bit-flip SDC rate = %.2f, want QMCPACK-like (high): %s", sdc, res.Tally.String())
	}
	if res.Tally.Count(classify.Benign) == 0 {
		t.Fatalf("expected some benign runs from VMC-file hits: %s", res.Tally.String())
	}
}

func TestDescribe(t *testing.T) {
	if !strings.Contains(Describe(), "QMCPACK") {
		t.Fatal("describe missing app name")
	}
}

func TestBlockingUncorrelatedData(t *testing.T) {
	// For i.i.d. data the reblocked error bar stays flat.
	rng := stats.NewRNG(17)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	blocking := Blocking(xs)
	if len(blocking) < 8 {
		t.Fatalf("levels = %d", len(blocking))
	}
	first := blocking[0].ErrorBar
	for _, b := range blocking {
		if b.Blocks < 64 {
			break
		}
		if b.ErrorBar < first*0.7 || b.ErrorBar > first*1.5 {
			t.Fatalf("iid data error bar drifted: level %d = %v vs %v", b.BlockSize, b.ErrorBar, first)
		}
	}
	if tau := CorrelationTime(blocking); tau > 2.5 {
		t.Fatalf("iid correlation time = %v, want ~1", tau)
	}
}

func TestBlockingCorrelatedData(t *testing.T) {
	// An AR(1) series with strong autocorrelation must show the error
	// bar growing under reblocking and a correlation time >> 1.
	rng := stats.NewRNG(19)
	xs := make([]float64, 8192)
	x := 0.0
	for i := range xs {
		x = 0.95*x + rng.NormFloat64()
		xs[i] = x
	}
	blocking := Blocking(xs)
	if blocking[len(blocking)-1].ErrorBar <= blocking[0].ErrorBar {
		t.Fatal("reblocking did not grow the error bar on correlated data")
	}
	if tau := CorrelationTime(blocking); tau < 5 {
		t.Fatalf("correlation time = %v, want >> 1", tau)
	}
}

func TestBlockingOnRealDMCSeries(t *testing.T) {
	app := newTestApp(t)
	a, err := Analyze(app.dmcContent)
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	// Extract the raw energies for blocking.
	var energies []float64
	for _, line := range strings.Split(app.dmcContent, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		e, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		energies = append(energies, e)
	}
	blocking := Blocking(energies)
	tau := CorrelationTime(blocking)
	if tau < 1 {
		t.Fatalf("tau = %v", tau)
	}
	t.Logf("DMC series: %d steps, correlation time %.1f, plateau error %.5f",
		len(energies), tau, blocking[len(blocking)-1].ErrorBar)
}
