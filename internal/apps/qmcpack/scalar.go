package qmcpack

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"ffis/internal/vfs"
)

// Output paths, mirroring QMCPACK's series naming: series 000 is the VMC
// stage, series 001 the DMC stage. Classification examines only the DMC
// file, as in the paper.
const (
	VMCPath = "/He.s000.scalar.dat"
	DMCPath = "/He.s001.scalar.dat"
)

// header is the scalar.dat column header line.
const header = "#      index        LocalEnergy           Variance         Weight\n"

// FormatRows renders rows in the fixed-width scalar.dat layout.
func FormatRows(rows []Row) string {
	var b strings.Builder
	b.WriteString(header)
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d  %18.10f  %18.10f  %14.6f\n", r.Index, r.Energy, r.Variance, r.Weight)
	}
	return b.String()
}

// flushBytes is the write granularity of the scalar writer: rows accumulate
// in a buffer that is flushed in ~4 KiB device-block-sized writes, giving
// fault injection realistic write targets.
const flushBytes = 4096

// WriteScalarFile streams content to path in flushBytes-sized writes.
func WriteScalarFile(fs vfs.FS, path, content string) error {
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	data := []byte(content)
	for off := 0; off < len(data); off += flushBytes {
		end := off + flushBytes
		if end > len(data) {
			end = len(data)
		}
		if _, err := f.Write(data[off:end]); err != nil {
			return err
		}
	}
	return f.Sync()
}

// Analysis is the QMCA-style summary of a scalar.dat file.
type Analysis struct {
	Rows      int     // parsed data rows
	Skipped   int     // unparseable rows (corrupted text)
	Energy    float64 // weighted mean of LocalEnergy after equilibration
	ErrorBar  float64 // naive standard error of the mean
	TotalRows int     // lines that looked like data (parsed + skipped)
}

// EquilibrationFraction is the leading fraction of rows QMCA discards.
const EquilibrationFraction = 0.2

// Analyze parses a scalar.dat content and computes the equilibrated
// weighted mean energy, tolerating isolated corrupted rows (they are
// skipped and counted) the way a numpy-based analysis chain skips
// malformed lines. It fails only when the file yields no usable data —
// the condition the paper classifies as crash.
func Analyze(content string) (Analysis, error) {
	var a Analysis
	lines := strings.Split(content, "\n")
	type parsed struct{ e, w float64 }
	var data []parsed
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		a.TotalRows++
		fields := strings.Fields(trimmed)
		if len(fields) < 4 {
			a.Skipped++
			continue
		}
		e, err1 := strconv.ParseFloat(fields[1], 64)
		w, err2 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil || math.IsNaN(e) || math.IsNaN(w) || w <= 0 {
			a.Skipped++
			continue
		}
		data = append(data, parsed{e, w})
	}
	if len(data) == 0 {
		return a, fmt.Errorf("qmcpack: no parseable rows in scalar file")
	}
	skip := int(float64(len(data)) * EquilibrationFraction)
	data = data[skip:]
	if len(data) == 0 {
		return a, fmt.Errorf("qmcpack: no rows left after equilibration")
	}
	var sumWE, sumW, sumWE2 float64
	for _, d := range data {
		sumWE += d.w * d.e
		sumW += d.w
		sumWE2 += d.w * d.e * d.e
	}
	a.Rows = len(data)
	a.Energy = sumWE / sumW
	variance := sumWE2/sumW - a.Energy*a.Energy
	if variance < 0 {
		variance = 0
	}
	a.ErrorBar = math.Sqrt(variance / float64(len(data)))
	return a, nil
}

// AnalyzeFile runs Analyze on a file in the virtual file system.
func AnalyzeFile(fs vfs.FS, path string) (Analysis, error) {
	raw, err := vfs.ReadFile(fs, path)
	if err != nil {
		return Analysis{}, err
	}
	return Analyze(string(raw))
}

// BlockingResult is one row of a reblocking analysis: the standard error of
// the mean estimated at a given block size.
type BlockingResult struct {
	BlockSize int
	ErrorBar  float64
	Blocks    int
}

// Blocking performs Flyvbjerg–Petersen reblocking on the (equilibrated)
// energy series: the data is repeatedly pair-averaged, and the naive
// standard error at each level is reported. Serially correlated Monte Carlo
// data (DMC steps are strongly correlated) shows the error bar growing with
// block size until it plateaus at the true statistical error — the analysis
// the real QMCA tool performs.
func Blocking(energies []float64) []BlockingResult {
	data := append([]float64(nil), energies...)
	var out []BlockingResult
	blockSize := 1
	for len(data) >= 4 {
		n := float64(len(data))
		var sum, sumsq float64
		for _, e := range data {
			sum += e
			sumsq += e * e
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		out = append(out, BlockingResult{
			BlockSize: blockSize,
			ErrorBar:  math.Sqrt(variance / (n - 1)),
			Blocks:    len(data),
		})
		// Pair-average into the next level.
		next := make([]float64, len(data)/2)
		for i := range next {
			next[i] = (data[2*i] + data[2*i+1]) / 2
		}
		data = next
		blockSize *= 2
	}
	return out
}

// CorrelationTime estimates the integrated autocorrelation time from a
// reblocking curve: the ratio of the plateau variance to the naive
// variance. It returns at least 1.
func CorrelationTime(blocking []BlockingResult) float64 {
	if len(blocking) < 2 {
		return 1
	}
	naive := blocking[0].ErrorBar
	if naive == 0 {
		return 1
	}
	plateau := blocking[0].ErrorBar
	for _, b := range blocking {
		// Ignore the noisy last levels (too few blocks).
		if b.Blocks < 16 {
			break
		}
		if b.ErrorBar > plateau {
			plateau = b.ErrorBar
		}
	}
	tau := (plateau / naive) * (plateau / naive)
	if tau < 1 {
		return 1
	}
	return tau
}
