package qmcpack

import (
	"fmt"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/vfs"
)

// SDC window from the paper (decided with the QMCPACK developers): a final
// energy inside [−2.91, −2.90] Hartree is plausible enough to pass silently;
// outside it the corruption is detected.
const (
	SDCWindowLo = -2.91
	SDCWindowHi = -2.90
)

// CrashSkipFraction: when more than this fraction of data rows are
// unusable, the analysis chain aborts — the crash outcome.
const CrashSkipFraction = 0.5

// App bundles a finished Monte Carlo computation with its I/O replay and
// outcome classification. The Monte Carlo runs once at construction; each
// campaign run replays only the write path, exactly where the paper's
// faults land.
type App struct {
	Cfg QMCConfig

	vmcContent string
	dmcContent string
	goldenE    float64
}

// NewApp runs VMC+DMC and prepares the golden outputs.
func NewApp(cfg QMCConfig) (*App, error) {
	vmcRows, dmcRows := RunAll(cfg)
	a := &App{
		Cfg:        cfg,
		vmcContent: FormatRows(vmcRows),
		dmcContent: FormatRows(dmcRows),
	}
	golden, err := Analyze(a.dmcContent)
	if err != nil {
		return nil, fmt.Errorf("qmcpack: golden analysis failed: %w", err)
	}
	a.goldenE = golden.Energy
	if a.goldenE > SDCWindowHi || a.goldenE < SDCWindowLo {
		return nil, fmt.Errorf("qmcpack: golden DMC energy %.5f outside the SDC window [%g, %g]; adjust QMCConfig",
			a.goldenE, SDCWindowLo, SDCWindowHi)
	}
	return a, nil
}

// GoldenEnergy returns the fault-free DMC energy.
func (a *App) GoldenEnergy() float64 { return a.goldenE }

// Run writes the two scalar files through the (possibly fault-injected)
// file system.
func (a *App) Run(fs vfs.FS) error {
	if err := WriteScalarFile(fs, VMCPath, a.vmcContent); err != nil {
		return err
	}
	return WriteScalarFile(fs, DMCPath, a.dmcContent)
}

// Classify implements the paper's QMCPACK outcome rules: a bit-wise
// identical He.s001.scalar.dat is benign; otherwise the QMCA energy decides
// between SDC (inside the window) and detected (outside); an unusable file
// is a crash.
func (a *App) Classify(fs vfs.FS, runErr error) classify.Outcome {
	if runErr != nil {
		return classify.Crash
	}
	raw, err := vfs.ReadFile(fs, DMCPath)
	if err != nil {
		return classify.Crash
	}
	if string(raw) == a.dmcContent {
		return classify.Benign
	}
	analysis, err := Analyze(string(raw))
	if err != nil {
		return classify.Crash
	}
	if analysis.TotalRows > 0 &&
		float64(analysis.Skipped) > CrashSkipFraction*float64(analysis.TotalRows) {
		return classify.Crash
	}
	if analysis.Energy >= SDCWindowLo && analysis.Energy <= SDCWindowHi {
		return classify.SDC
	}
	return classify.Detected
}

// Workload adapts the app to the campaign runner.
func (a *App) Workload() core.Workload {
	return core.Workload{Name: "qmcpack", Run: a.Run, Classify: a.Classify}
}

// Describe returns the Table II row for QMCPACK.
func Describe() string {
	return "QMCPACK | Quantum Chemistry | Quantum Monte Carlo simulation for electronic structures of molecules | post-analysis: QMCA energy estimate of the DMC series"
}
