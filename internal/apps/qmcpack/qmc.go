// Package qmcpack is the QMCPACK proxy application: a working Variational +
// Diffusion Monte Carlo code for the helium atom — the exact single-atom
// benchmark the paper injects faults into ("He" with ground-state energy
// −2.90372 Hartree) — together with the scalar.dat output files and the
// QMCA-style post-analysis used for outcome classification.
package qmcpack

import (
	"math"

	"ffis/internal/stats"
)

// ExactEnergy is the non-relativistic helium ground-state energy in Hartree
// that DMC is supposed to reproduce (Section IV-C2 of the paper).
const ExactEnergy = -2.90372

// walker is one two-electron configuration.
type walker struct {
	r [6]float64 // electron 1 xyz, electron 2 xyz
}

// trialWavefunction is the Padé–Jastrow trial state
// ψ = exp(−Z·r1 − Z·r2 + a·r12/(1+b·r12)).
// With Z matching the nuclear charge the electron-nucleus cusp is exact,
// and a = 1/2 satisfies the opposite-spin electron-electron cusp.
type trialWavefunction struct {
	Z, A, B float64
}

func defaultTrial() trialWavefunction { return trialWavefunction{Z: 2.0, A: 0.5, B: 0.35} }

const rEps = 1e-9

func norm3(x, y, z float64) float64 { return math.Sqrt(x*x + y*y + z*z) }

// geometry returns the interparticle distances, guarded away from zero.
func (w walker) geometry() (r1, r2, r12 float64, d12 [3]float64) {
	r1 = norm3(w.r[0], w.r[1], w.r[2])
	r2 = norm3(w.r[3], w.r[4], w.r[5])
	d12 = [3]float64{w.r[0] - w.r[3], w.r[1] - w.r[4], w.r[2] - w.r[5]}
	r12 = norm3(d12[0], d12[1], d12[2])
	if r1 < rEps {
		r1 = rEps
	}
	if r2 < rEps {
		r2 = rEps
	}
	if r12 < rEps {
		r12 = rEps
	}
	return r1, r2, r12, d12
}

// logPsi evaluates log ψ(R).
func (t trialWavefunction) logPsi(w walker) float64 {
	r1, r2, r12, _ := w.geometry()
	return -t.Z*(r1+r2) + t.A*r12/(1+t.B*r12)
}

// localEnergy evaluates E_L = (Hψ)/ψ analytically, together with the drift
// velocity ∇logψ used by DMC importance sampling.
//
// With g_i = ∇_i logψ:
//
//	g1 = −Z r̂1 + u'(r12) r̂12        g2 = −Z r̂2 − u'(r12) r̂12
//	∇²_i logψ = −2Z/r_i + u'' + 2u'/r12
//	E_L = −½ Σ_i (∇²_i logψ + |g_i|²) − Z/r1 − Z/r2 + 1/r12
func (t trialWavefunction) localEnergy(w walker) (eL float64, drift [6]float64) {
	r1, r2, r12, d12 := w.geometry()
	br := 1 + t.B*r12
	uP := t.A / (br * br)
	uPP := -2 * t.A * t.B / (br * br * br)

	var g1, g2 [3]float64
	for k := 0; k < 3; k++ {
		rhat1 := w.r[k] / r1
		rhat2 := w.r[3+k] / r2
		rhat12 := d12[k] / r12
		g1[k] = -t.Z*rhat1 + uP*rhat12
		g2[k] = -t.Z*rhat2 - uP*rhat12
	}
	lap1 := -2*t.Z/r1 + uPP + 2*uP/r12
	lap2 := -2*t.Z/r2 + uPP + 2*uP/r12
	g1sq := g1[0]*g1[0] + g1[1]*g1[1] + g1[2]*g1[2]
	g2sq := g2[0]*g2[0] + g2[1]*g2[1] + g2[2]*g2[2]

	kinetic := -0.5 * (lap1 + g1sq + lap2 + g2sq)
	potential := -t.Z/r1 - t.Z/r2 + 1/r12
	drift = [6]float64{g1[0], g1[1], g1[2], g2[0], g2[1], g2[2]}
	return kinetic + potential, drift
}

// Row is one line of a scalar.dat file: per-step block statistics.
type Row struct {
	Index    int
	Energy   float64 // block-averaged local energy
	Variance float64 // block variance of the local energy
	Weight   float64 // block weight (walker population)
}

// QMCConfig controls the Monte Carlo runs.
type QMCConfig struct {
	Seed        uint64
	Walkers     int
	VMCEquil    int // discarded VMC steps
	VMCSteps    int // recorded VMC steps (rows in s000)
	VMCStepSize float64
	DMCSteps    int     // recorded DMC steps (rows in s001)
	TimeStep    float64 // DMC imaginary-time step τ
	PopTarget   int     // DMC population control target
}

// DefaultQMC returns the configuration used by experiments: large enough
// for the DMC mean to land within the paper's SDC window [−2.91, −2.90]
// around the exact energy, small enough that a 1,000-run campaign remains
// cheap (the Monte Carlo itself runs once; campaigns only replay its I/O).
func DefaultQMC() QMCConfig {
	return QMCConfig{
		Seed:        4, // calibrated: golden DMC energy -2.9037, mid SDC window
		Walkers:     400,
		VMCEquil:    150,
		VMCSteps:    400,
		VMCStepSize: 0.45,
		DMCSteps:    1000,
		TimeStep:    0.01,
		PopTarget:   400,
	}
}

// RunVMC performs Metropolis variational Monte Carlo, returning one Row per
// recorded step and the final walker ensemble (which seeds DMC).
func RunVMC(cfg QMCConfig, t trialWavefunction) ([]Row, []walker) {
	rng := stats.NewRNG(cfg.Seed)
	walkers := make([]walker, cfg.Walkers)
	logs := make([]float64, cfg.Walkers)
	for i := range walkers {
		for k := 0; k < 6; k++ {
			walkers[i].r[k] = rng.NormFloat64()
		}
		logs[i] = t.logPsi(walkers[i])
	}
	rows := make([]Row, 0, cfg.VMCSteps)
	for step := 0; step < cfg.VMCEquil+cfg.VMCSteps; step++ {
		var sumE, sumE2 float64
		for i := range walkers {
			trialW := walkers[i]
			for k := 0; k < 6; k++ {
				trialW.r[k] += cfg.VMCStepSize * rng.NormFloat64()
			}
			lp := t.logPsi(trialW)
			if math.Log(rng.Float64()+1e-300) < 2*(lp-logs[i]) {
				walkers[i] = trialW
				logs[i] = lp
			}
			e, _ := t.localEnergy(walkers[i])
			sumE += e
			sumE2 += e * e
		}
		if step >= cfg.VMCEquil {
			n := float64(cfg.Walkers)
			mean := sumE / n
			rows = append(rows, Row{
				Index:    step - cfg.VMCEquil,
				Energy:   mean,
				Variance: sumE2/n - mean*mean,
				Weight:   n,
			})
		}
	}
	return rows, walkers
}

// capDrift applies the Umrigar–Nightingale–Runge smooth drift limiter so
// that the divergent drift near particle coalescences cannot throw walkers
// across the configuration space in one step.
func capDrift(drift [6]float64, tau float64) [6]float64 {
	v2 := 0.0
	for _, d := range drift {
		v2 += d * d
	}
	if v2*tau < 1e-12 {
		return drift
	}
	scale := (-1 + math.Sqrt(1+2*v2*tau)) / (v2 * tau)
	for k := range drift {
		drift[k] *= scale
	}
	return drift
}

// RunDMC performs importance-sampled diffusion Monte Carlo with Metropolis
// accept/reject (to suppress time-step bias), branching, and population
// control, starting from the supplied ensemble. It returns one Row per
// step; their weighted mean is the DMC total energy.
func RunDMC(cfg QMCConfig, t trialWavefunction, initial []walker) []Row {
	rng := stats.NewRNG(cfg.Seed ^ 0xD31C)
	tau := cfg.TimeStep
	sqrtTau := math.Sqrt(tau)

	type state struct {
		w     walker
		logP  float64
		eL    float64
		drift [6]float64
	}
	pop := make([]state, len(initial))
	for i, w := range initial {
		e, d := t.localEnergy(w)
		pop[i] = state{w: w, logP: t.logPsi(w), eL: e, drift: capDrift(d, tau)}
	}
	eTrial := ExactEnergy // initial guess; adapted by population control
	rows := make([]Row, 0, cfg.DMCSteps)

	for step := 0; step < cfg.DMCSteps; step++ {
		next := make([]state, 0, len(pop)+16)
		var sumE, sumE2, sumW float64
		for _, s := range pop {
			// Drift-diffusion proposal.
			var moved walker
			var chi [6]float64
			for k := 0; k < 6; k++ {
				chi[k] = rng.NormFloat64()
				moved.r[k] = s.w.r[k] + tau*s.drift[k] + sqrtTau*chi[k]
			}
			eNew, dRaw := t.localEnergy(moved)
			dNew := capDrift(dRaw, tau)
			logPNew := t.logPsi(moved)

			// Metropolis accept/reject with the Green's-function ratio
			// ln[G(R'→R)/G(R→R')] = Σ (|R'−R−τF|² − |R−R'−τF'|²) / 2τ.
			var lnG float64
			for k := 0; k < 6; k++ {
				fwd := moved.r[k] - s.w.r[k] - tau*s.drift[k]
				bwd := s.w.r[k] - moved.r[k] - tau*dNew[k]
				lnG += (fwd*fwd - bwd*bwd) / (2 * tau)
			}
			lnAccept := 2*(logPNew-s.logP) + lnG
			cur := s
			if math.Log(rng.Float64()+1e-300) < lnAccept {
				cur = state{w: moved, logP: logPNew, eL: eNew, drift: dNew}
			}

			// Branching on the trial-energy offset; clamp pathological
			// local energies so one walker near a coalescence cannot
			// blow up the weight.
			eClamped := clamp(cur.eL, eTrial-20, eTrial+20)
			eOld := clamp(s.eL, eTrial-20, eTrial+20)
			weight := math.Exp(-tau * ((eClamped+eOld)/2 - eTrial))
			copies := int(weight + rng.Float64())
			if copies > 3 {
				copies = 3
			}
			for c := 0; c < copies; c++ {
				next = append(next, cur)
			}
			sumE += weight * cur.eL
			sumE2 += weight * cur.eL * cur.eL
			sumW += weight
		}
		if len(next) == 0 {
			// Population extinction (can only happen with absurd τ);
			// reseed from the previous ensemble.
			next = pop
		}
		pop = next
		mean := sumE / sumW
		rows = append(rows, Row{
			Index:    step,
			Energy:   mean,
			Variance: sumE2/sumW - mean*mean,
			Weight:   sumW,
		})
		// Population control: steer E_T to hold the population near the
		// target.
		eTrial = mean - 0.1*math.Log(float64(len(pop))/float64(cfg.PopTarget))
	}
	return rows
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RunAll runs VMC then DMC, returning both row sets.
func RunAll(cfg QMCConfig) (vmc, dmc []Row) {
	t := defaultTrial()
	vmcRows, ensemble := RunVMC(cfg, t)
	dmcRows := RunDMC(cfg, t, ensemble)
	return vmcRows, dmcRows
}

// TrialForBench exposes the default trial wavefunction for benchmarks that
// want to time the sampler without exporting the internal type.
func TrialForBench() trialWavefunction { return defaultTrial() }
