// Package montage is the Montage proxy application: a four-stage
// astronomical image mosaic pipeline (reprojection, overlap differencing,
// background matching, co-addition) over synthetic 2MASS-like tiles of an
// m101-style target, with the per-stage fault-injection campaigns and the
// min-statistic outcome classification the paper uses.
package montage

import (
	"fmt"
	"math"

	"ffis/internal/fits"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// Config describes the synthetic observation and mosaic geometry.
type Config struct {
	Seed    uint64
	Tiles   int // number of overlapping input tiles
	TileW   int
	TileH   int
	MosaicW int
	MosaicH int
	// Noise is the per-pixel Gaussian noise level of the detector.
	Noise float64
}

// DefaultConfig returns the experiment geometry: ten 64×64 tiles covering a
// 160×160 mosaic of an m101-like field, as in the paper's 10-image 2MASS
// mosaic.
func DefaultConfig() Config {
	return Config{
		Seed:    101, // m101
		Tiles:   10,
		TileW:   64,
		TileH:   64,
		MosaicW: 160,
		MosaicH: 160,
		Noise:   0.4,
	}
}

// skyTruth evaluates the noiseless sky surface brightness at mosaic
// coordinates: a flat background with a mild gradient, the m101-like galaxy
// (broad Gaussian with a bright core), and a handful of stars.
func (c Config) skyTruth(x, y float64) float64 {
	v := 83.0 + 0.01*x + 0.006*y // background with the "min" sitting near 83
	gx := x - float64(c.MosaicW)/2
	gy := y - float64(c.MosaicH)/2
	r2 := gx*gx + gy*gy
	v += 320 * math.Exp(-r2/(2*22*22)) // galaxy disk
	v += 180 * math.Exp(-r2/(2*4*4))   // galaxy core
	// Fixed star field (positions derived from the mosaic geometry so
	// they are stable across runs).
	stars := [...][3]float64{
		{24, 30, 140}, {130, 40, 210}, {40, 120, 95},
		{120, 132, 160}, {84, 20, 120}, {20, 84, 75},
	}
	for _, s := range stars {
		dx, dy := x-s[0], y-s[1]
		v += s[2] * math.Exp(-(dx*dx+dy*dy)/(2*1.5*1.5))
	}
	return v
}

// TileSpec is one raw observation: its mosaic-frame offset and additive
// background error (what mBgExec must solve for).
type TileSpec struct {
	X0, Y0  float64 // fractional offsets force real resampling
	BgConst float64
	BgX     float64
	BgY     float64
}

// TileSpecs derives deterministic tile placements covering the mosaic with
// generous overlaps, plus per-tile background errors.
func (c Config) TileSpecs() []TileSpec {
	rng := stats.NewRNG(c.Seed)
	specs := make([]TileSpec, c.Tiles)
	// Place tiles on a jittered grid guaranteeing overlap: ~2 columns,
	// rows to cover the mosaic.
	cols := 3
	for i := range specs {
		col := i % cols
		row := i / cols
		maxX := float64(c.MosaicW - c.TileW - 1)
		maxY := float64(c.MosaicH - c.TileH - 1)
		x := float64(col)*float64(c.MosaicW-c.TileW)/float64(cols-1) +
			rng.Float64()*8 - 4
		y := float64(row)*38 + rng.Float64()*8 - 4
		specs[i] = TileSpec{
			X0:      clampF(x, 0, maxX),
			Y0:      clampF(y, 0, maxY),
			BgConst: rng.NormFloat64() * 4,
			BgX:     rng.NormFloat64() * 0.02,
			BgY:     rng.NormFloat64() * 0.02,
		}
	}
	return specs
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Observe renders the raw detector image for one tile: sky truth plus the
// tile's background error plus pixel noise.
func (c Config) Observe(spec TileSpec, tileIdx int) *fits.Image {
	rng := stats.NewRNG(c.Seed ^ (uint64(tileIdx)+1)*0x9E3779B97F4A7C15)
	im := fits.New(c.TileW, c.TileH)
	im.CRVAL1, im.CRVAL2 = spec.X0, spec.Y0
	for y := 0; y < c.TileH; y++ {
		for x := 0; x < c.TileW; x++ {
			sx := spec.X0 + float64(x)
			sy := spec.Y0 + float64(y)
			v := c.skyTruth(sx, sy) +
				spec.BgConst + spec.BgX*float64(x) + spec.BgY*float64(y) +
				c.Noise*rng.NormFloat64()
			im.Set(x, y, v)
		}
	}
	return im
}

// Paths used by the pipeline stages.
const (
	RawDir    = "/raw"
	ProjDir   = "/proj"
	DiffDir   = "/diff"
	CorrDir   = "/corr"
	MosaicDir = "/mosaic"

	FitsTablePath = DiffDir + "/fits.txt"
	MosaicPath    = MosaicDir + "/mosaic.fits"
	ImagePath     = MosaicDir + "/m101_mosaic.pgm"
	StatsPath     = MosaicDir + "/stats.txt"
)

func rawPath(i int) string  { return fmt.Sprintf("%s/tile%02d.fits", RawDir, i) }
func projPath(i int) string { return fmt.Sprintf("%s/p%02d.fits", ProjDir, i) }
func areaPath(i int) string { return fmt.Sprintf("%s/a%02d.fits", ProjDir, i) }
func diffPath(i, j int) string {
	return fmt.Sprintf("%s/d%02d_%02d.fits", DiffDir, i, j)
}
func corrPath(i int) string { return fmt.Sprintf("%s/c%02d.fits", CorrDir, i) }

// WriteRawTiles synthesizes and persists the raw observations (the
// campaign's fault-free input data).
func (c Config) WriteRawTiles(fs vfs.FS) error {
	if err := fs.MkdirAll(RawDir); err != nil {
		return err
	}
	for i, spec := range c.TileSpecs() {
		if err := fits.Write(fs, rawPath(i), c.Observe(spec, i)); err != nil {
			return err
		}
	}
	return nil
}
