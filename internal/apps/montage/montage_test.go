package montage

import (
	"math"
	"strings"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/fits"
	"ffis/internal/vfs"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.Tiles = 6
	c.TileW, c.TileH = 48, 48
	c.MosaicW, c.MosaicH = 110, 110
	return c
}

func TestTileSpecsDeterministicAndInBounds(t *testing.T) {
	cfg := smallConfig()
	a := cfg.TileSpecs()
	b := cfg.TileSpecs()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tile specs not deterministic")
		}
		if a[i].X0 < 0 || a[i].X0 > float64(cfg.MosaicW-cfg.TileW) {
			t.Fatalf("tile %d X0 out of bounds: %v", i, a[i].X0)
		}
		if a[i].Y0 < 0 || a[i].Y0 > float64(cfg.MosaicH-cfg.TileH) {
			t.Fatalf("tile %d Y0 out of bounds: %v", i, a[i].Y0)
		}
	}
}

func TestObserveDeterministic(t *testing.T) {
	cfg := smallConfig()
	spec := cfg.TileSpecs()[0]
	a := cfg.Observe(spec, 0)
	b := cfg.Observe(spec, 0)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("observation not deterministic")
		}
	}
	c := cfg.Observe(spec, 1)
	same := 0
	for i := range a.Data {
		if a.Data[i] == c.Data[i] {
			same++
		}
	}
	if same > len(a.Data)/10 {
		t.Fatal("different tiles share noise")
	}
}

func TestFullPipelineProducesMosaic(t *testing.T) {
	cfg := smallConfig()
	fs := vfs.NewMemFS()
	if err := cfg.WriteRawTiles(fs); err != nil {
		t.Fatal(err)
	}
	if err := cfg.RunPipeline(fs, StageProject, StageAdd); err != nil {
		t.Fatal(err)
	}
	img, err := vfs.ReadFile(fs, ImagePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(img), "P5\n110 110\n255\n") {
		t.Fatalf("pgm header: %q", img[:20])
	}
	minV, err := ReadMin(fs)
	if err != nil {
		t.Fatal(err)
	}
	// The synthetic background sits near 83; the background-matched
	// mosaic min must be in that neighbourhood (not at a star or the
	// galaxy).
	if minV < 70 || minV > 95 {
		t.Fatalf("mosaic min = %v, implausible", minV)
	}
	mosaic, err := fits.Read(fs, MosaicPath)
	if err != nil {
		t.Fatal(err)
	}
	if mosaic.Width != 110 || mosaic.Height != 110 {
		t.Fatalf("mosaic dims %dx%d", mosaic.Width, mosaic.Height)
	}
}

func TestBackgroundMatchingReducesSeams(t *testing.T) {
	// Compare overlap disagreement before and after mBgExec: the plane
	// corrections must shrink the inter-tile background differences.
	cfg := smallConfig()
	fs := vfs.NewMemFS()
	if err := cfg.WriteRawTiles(fs); err != nil {
		t.Fatal(err)
	}
	if err := cfg.RunPipeline(fs, StageProject, StageBg); err != nil {
		t.Fatal(err)
	}
	disagreement := func(pathOf func(int) string) float64 {
		var total float64
		var n int
		imgs := make([]*fits.Image, cfg.Tiles)
		for i := 0; i < cfg.Tiles; i++ {
			im, err := fits.Read(fs, pathOf(i))
			if err != nil {
				t.Fatal(err)
			}
			imgs[i] = im
		}
		for i := 0; i < cfg.Tiles; i++ {
			for j := i + 1; j < cfg.Tiles; j++ {
				x0, y0, x1, y1, ok := overlap(imgs[i], imgs[j])
				if !ok {
					continue
				}
				for y := y0; y < y1; y++ {
					for x := x0; x < x1; x++ {
						vi := imgs[i].At(x-int(imgs[i].CRVAL1), y-int(imgs[i].CRVAL2))
						vj := imgs[j].At(x-int(imgs[j].CRVAL1), y-int(imgs[j].CRVAL2))
						if vi == 0 || vj == 0 {
							continue
						}
						total += math.Abs(vi - vj)
						n++
					}
				}
			}
		}
		return total / float64(n)
	}
	before := disagreement(projPath)
	after := disagreement(corrPath)
	if after >= before {
		t.Fatalf("background matching did not help: before=%.3f after=%.3f", before, after)
	}
}

func TestPlaneFitExact(t *testing.T) {
	// planeFit must recover an exact plane.
	var xs, ys, ds []float64
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			xs = append(xs, float64(x))
			ys = append(ys, float64(y))
			ds = append(ds, 3.5+0.25*float64(x)-0.75*float64(y))
		}
	}
	p, err := planeFit(xs, ys, ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-3.5) > 1e-9 || math.Abs(p[1]-0.25) > 1e-9 || math.Abs(p[2]+0.75) > 1e-9 {
		t.Fatalf("plane = %v", p)
	}
}

func TestSolve3Singular(t *testing.T) {
	_, err := solve3([3][3]float64{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}}, [3]float64{1, 2, 3})
	if err == nil {
		t.Fatal("singular system solved")
	}
}

func TestStageStrings(t *testing.T) {
	names := map[Stage]string{
		StageProject: "mProjExec",
		StageDiff:    "mDiffExec",
		StageBg:      "mBgExec",
		StageAdd:     "mAdd",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if len(Stages()) != 4 {
		t.Fatal("stage list")
	}
}

func TestAppGoldenClassifiesBenignAllStages(t *testing.T) {
	cfg := smallConfig()
	for _, stage := range Stages() {
		app, err := NewApp(cfg, stage)
		if err != nil {
			t.Fatal(err)
		}
		fs := vfs.NewMemFS()
		if err := app.Setup(fs); err != nil {
			t.Fatal(err)
		}
		if err := app.Run(fs); err != nil {
			t.Fatal(err)
		}
		if got := app.Classify(fs, nil); got != classify.Benign {
			t.Fatalf("stage %s golden classified %s", stage, got)
		}
	}
}

func TestAppClassifyCrashOnMissingStageOutput(t *testing.T) {
	app, err := NewApp(smallConfig(), StageProject)
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewMemFS()
	if err := app.Setup(fs); err != nil {
		t.Fatal(err)
	}
	// Stage never ran: downstream stages cannot find inputs.
	if got := app.Classify(fs, nil); got != classify.Crash {
		t.Fatalf("classified %s, want crash", got)
	}
}

func TestAppClassifyDetectedOnBlackStripe(t *testing.T) {
	// The Figure 9 scenario: a dropped block zeroes part of a corrected
	// image; the stripe drags the mosaic min far below golden.
	app, err := NewApp(smallConfig(), StageAdd)
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewMemFS()
	if err := app.Setup(fs); err != nil {
		t.Fatal(err)
	}
	// Corrupt a corrected tile before mAdd runs: zero a band of pixels.
	im, err := fits.Read(fs, corrPath(2))
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < im.Width; x++ {
		for y := 20; y < 28; y++ {
			im.Set(x, y, 0)
		}
	}
	if err := fits.Write(fs, corrPath(2), im); err != nil {
		t.Fatal(err)
	}
	if err := app.Run(fs); err != nil {
		t.Fatal(err)
	}
	if got := app.Classify(fs, nil); got != classify.Detected {
		t.Fatalf("black stripe classified %s, want detected", got)
	}
}

func TestAppClassifySmallPerturbationSDC(t *testing.T) {
	// A sub-threshold brightness tweak away from the minimum changes the
	// image but keeps the min statistic within tolerance: SDC.
	app, err := NewApp(smallConfig(), StageAdd)
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewMemFS()
	if err := app.Setup(fs); err != nil {
		t.Fatal(err)
	}
	im, err := fits.Read(fs, corrPath(1))
	if err != nil {
		t.Fatal(err)
	}
	// Brighten one bright (galaxy) pixel noticeably — image changes, min
	// does not.
	maxIdx := 0
	for i, v := range im.Data {
		if v > im.Data[maxIdx] {
			maxIdx = i
		}
	}
	im.Data[maxIdx] += 40
	if err := fits.Write(fs, corrPath(1), im); err != nil {
		t.Fatal(err)
	}
	if err := app.Run(fs); err != nil {
		t.Fatal(err)
	}
	if got := app.Classify(fs, nil); got != classify.SDC {
		t.Fatalf("bright-pixel tweak classified %s, want SDC", got)
	}
}

func TestCampaignStage1BitFlip(t *testing.T) {
	app, err := NewApp(smallConfig(), StageProject)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Campaign(core.CampaignConfig{
		Fault: core.Config{Model: core.BitFlip},
		Runs:  15,
		Seed:  3,
	}, app.Workload())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Total() != 15 {
		t.Fatalf("tally: %s", res.Tally.String())
	}
	if res.ProfileCount == 0 {
		t.Fatal("no writes profiled in stage 1")
	}
	// Benign should exist (mantissa flips below the 8-bit quantization).
	if res.Tally.Count(classify.Benign) == 0 {
		t.Fatalf("no benign outcomes: %s", res.Tally.String())
	}
}

func TestCampaignStage4DroppedWriteNotBenign(t *testing.T) {
	app, err := NewApp(smallConfig(), StageAdd)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Campaign(core.CampaignConfig{
		Fault: core.Config{Model: core.DroppedWrite},
		Runs:  10,
		Seed:  11,
	}, app.Workload())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Count(classify.Benign) == 10 {
		t.Fatalf("all dropped writes benign in mAdd: %s", res.Tally.String())
	}
}

func TestReadMinErrors(t *testing.T) {
	fs := vfs.NewMemFS()
	if _, err := ReadMin(fs); err == nil {
		t.Fatal("missing stats accepted")
	}
	vfs.WriteFile(fs, StatsPath, []byte("nonsense"))
	if _, err := ReadMin(fs); err == nil {
		t.Fatal("garbage stats accepted")
	}
}

func TestDescribe(t *testing.T) {
	if !strings.Contains(Describe(), "Montage") {
		t.Fatal("describe missing app name")
	}
}
