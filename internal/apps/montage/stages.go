package montage

import (
	"fmt"
	"math"
	"strings"

	"ffis/internal/fits"
	"ffis/internal/vfs"
)

// Stage identifies one of the four I/O-intensive Montage stages the paper
// injects into (Section V-B-c).
type Stage int

// The four instrumented pipeline stages.
const (
	StageProject Stage = iota + 1 // mProjExec: reproject each image
	StageDiff                     // mDiffExec: difference overlapping pairs
	StageBg                       // mBgExec: apply background matching
	StageAdd                      // mAdd (+ image generation): co-add mosaic
)

func (s Stage) String() string {
	switch s {
	case StageProject:
		return "mProjExec"
	case StageDiff:
		return "mDiffExec"
	case StageBg:
		return "mBgExec"
	case StageAdd:
		return "mAdd"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Stages lists the instrumented stages in execution order.
func Stages() []Stage { return []Stage{StageProject, StageDiff, StageBg, StageAdd} }

// RunStage executes one pipeline stage, reading its inputs from and writing
// its outputs to fs.
func (c Config) RunStage(fs vfs.FS, s Stage) error {
	switch s {
	case StageProject:
		return c.runProject(fs)
	case StageDiff:
		return c.runDiff(fs)
	case StageBg:
		return c.runBg(fs)
	case StageAdd:
		return c.runAdd(fs)
	default:
		return fmt.Errorf("montage: unknown stage %d", int(s))
	}
}

// RunPipeline executes stages [from, to] inclusive.
func (c Config) RunPipeline(fs vfs.FS, from, to Stage) error {
	for _, s := range Stages() {
		if s < from || s > to {
			continue
		}
		if err := c.RunStage(fs, s); err != nil {
			return fmt.Errorf("montage: %s: %w", s, err)
		}
	}
	return nil
}

// runProject resamples each raw tile onto the integer mosaic grid
// (bilinear), producing a projected image and a fractional-coverage area
// image per tile.
func (c Config) runProject(fs vfs.FS) error {
	if err := fs.MkdirAll(ProjDir); err != nil {
		return err
	}
	for i := 0; i < c.Tiles; i++ {
		raw, err := fits.Read(fs, rawPath(i))
		if err != nil {
			return err
		}
		x0 := int(math.Ceil(raw.CRVAL1))
		y0 := int(math.Ceil(raw.CRVAL2))
		w := raw.Width - 1 // resampling loses up to one boundary pixel
		h := raw.Height - 1
		proj := fits.New(w, h)
		proj.CRVAL1, proj.CRVAL2 = float64(x0), float64(y0)
		area := fits.New(w, h)
		area.CRVAL1, area.CRVAL2 = float64(x0), float64(y0)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				tx := float64(x0+x) - raw.CRVAL1
				ty := float64(y0+y) - raw.CRVAL2
				if v, ok := raw.Bilinear(tx, ty); ok {
					proj.Set(x, y, v)
					area.Set(x, y, 1)
				}
			}
		}
		if err := fits.Write(fs, projPath(i), proj); err != nil {
			return err
		}
		if err := fits.Write(fs, areaPath(i), area); err != nil {
			return err
		}
	}
	return nil
}

// overlap computes the intersection of two projected tiles in mosaic
// coordinates.
func overlap(a, b *fits.Image) (x0, y0, x1, y1 int, ok bool) {
	ax0, ay0 := int(a.CRVAL1), int(a.CRVAL2)
	bx0, by0 := int(b.CRVAL1), int(b.CRVAL2)
	x0 = maxInt(ax0, bx0)
	y0 = maxInt(ay0, by0)
	x1 = minInt(ax0+a.Width, bx0+b.Width)
	y1 = minInt(ay0+a.Height, by0+b.Height)
	return x0, y0, x1, y1, x1 > x0 && y1 > y0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// planeFit fits d ≈ p[0] + p[1]·x + p[2]·y by least squares over the
// samples; x,y are mosaic coordinates.
func planeFit(xs, ys, ds []float64) ([3]float64, error) {
	var m [3][3]float64
	var rhs [3]float64
	for i := range ds {
		v := [3]float64{1, xs[i], ys[i]}
		for r := 0; r < 3; r++ {
			for cc := 0; cc < 3; cc++ {
				m[r][cc] += v[r] * v[cc]
			}
			rhs[r] += v[r] * ds[i]
		}
	}
	return solve3(m, rhs)
}

// solve3 solves a 3×3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(m [3][3]float64, rhs [3]float64) ([3]float64, error) {
	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return [3]float64{}, fmt.Errorf("montage: singular plane-fit system")
		}
		m[col], m[pivot] = m[pivot], m[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for cc := col; cc < 3; cc++ {
				m[r][cc] -= f * m[col][cc]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	return [3]float64{rhs[0] / m[0][0], rhs[1] / m[1][1], rhs[2] / m[2][2]}, nil
}

// runDiff differences every overlapping pair of projected images, writing
// the difference image, and then — as Montage's mFitExec does — re-reads
// each difference image from storage to calculate its plane-fitting
// coefficients ("to calculate plane-fitting coefficients for each
// difference image through the second stage", Section V-B-c). The
// read-back is what lets storage faults in the difference images propagate
// into the background model, while the fitting step mitigates most of
// them — the paper's explanation for mDiffExec's low SDC rate.
func (c Config) runDiff(fs vfs.FS) error {
	if err := fs.MkdirAll(DiffDir); err != nil {
		return err
	}
	imgs := make([]*fits.Image, c.Tiles)
	areas := make([]*fits.Image, c.Tiles)
	for i := 0; i < c.Tiles; i++ {
		var err error
		if imgs[i], err = fits.Read(fs, projPath(i)); err != nil {
			return err
		}
		if areas[i], err = fits.Read(fs, areaPath(i)); err != nil {
			return err
		}
	}
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < c.Tiles; i++ {
		for j := i + 1; j < c.Tiles; j++ {
			x0, y0, x1, y1, ok := overlap(imgs[i], imgs[j])
			if !ok {
				continue
			}
			diff := fits.New(x1-x0, y1-y0)
			diff.CRVAL1, diff.CRVAL2 = float64(x0), float64(y0)
			valid := 0
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					ix, iy := x-int(imgs[i].CRVAL1), y-int(imgs[i].CRVAL2)
					jx, jy := x-int(imgs[j].CRVAL1), y-int(imgs[j].CRVAL2)
					if areas[i].At(ix, iy) == 0 || areas[j].At(jx, jy) == 0 {
						diff.Set(x-x0, y-y0, math.NaN()) // no coverage
						continue
					}
					diff.Set(x-x0, y-y0, imgs[i].At(ix, iy)-imgs[j].At(jx, jy))
					valid++
				}
			}
			if valid < 16 {
				continue
			}
			if err := fits.Write(fs, diffPath(i, j), diff); err != nil {
				return err
			}
			pairs = append(pairs, pair{i, j})
		}
	}
	// Fitting pass: read every difference image back and fit its plane.
	var table strings.Builder
	table.WriteString("# i j a b c npix\n")
	for _, pr := range pairs {
		diff, err := fits.Read(fs, diffPath(pr.i, pr.j))
		if err != nil {
			return err
		}
		var xs, ys, ds []float64
		for y := 0; y < diff.Height; y++ {
			for x := 0; x < diff.Width; x++ {
				d := diff.At(x, y)
				if math.IsNaN(d) {
					continue
				}
				xs = append(xs, diff.CRVAL1+float64(x))
				ys = append(ys, diff.CRVAL2+float64(y))
				ds = append(ds, d)
			}
		}
		if len(ds) < 16 {
			continue
		}
		p, err := planeFit(xs, ys, ds)
		if err != nil {
			return err
		}
		fmt.Fprintf(&table, "%d %d %.8f %.8f %.8f %d\n", pr.i, pr.j, p[0], p[1], p[2], len(ds))
	}
	return vfs.WriteFile(fs, FitsTablePath, []byte(table.String()))
}

// readFitsTable parses the plane-fit table written by runDiff.
type pairFit struct {
	i, j int
	p    [3]float64
	n    int
}

func readFitsTable(fs vfs.FS) ([]pairFit, error) {
	raw, err := vfs.ReadFile(fs, FitsTablePath)
	if err != nil {
		return nil, err
	}
	var out []pairFit
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var pf pairFit
		if _, err := fmt.Sscanf(line, "%d %d %f %f %f %d",
			&pf.i, &pf.j, &pf.p[0], &pf.p[1], &pf.p[2], &pf.n); err != nil {
			// A corrupted table row: the real mBgModel would reject the
			// table; skip rows it cannot parse, fail if nothing parses.
			continue
		}
		out = append(out, pf)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("montage: fits table has no usable rows")
	}
	return out, nil
}

// runBg solves for per-image plane corrections from the pairwise fits
// (iterative relaxation with image 0 as the gauge anchor) and writes
// background-corrected images.
func (c Config) runBg(fs vfs.FS) error {
	if err := fs.MkdirAll(CorrDir); err != nil {
		return err
	}
	pairs, err := readFitsTable(fs)
	if err != nil {
		return err
	}
	corr := make([][3]float64, c.Tiles)
	// Relaxation: correction_i − correction_j should approach fit_ij.
	for iter := 0; iter < 200; iter++ {
		for idx := 0; idx < c.Tiles; idx++ {
			if idx == 0 {
				continue // gauge anchor
			}
			var sum [3]float64
			n := 0
			for _, pf := range pairs {
				switch {
				case pf.i == idx:
					for k := 0; k < 3; k++ {
						sum[k] += corr[pf.j][k] + pf.p[k]
					}
					n++
				case pf.j == idx:
					for k := 0; k < 3; k++ {
						sum[k] += corr[pf.i][k] - pf.p[k]
					}
					n++
				}
			}
			if n == 0 {
				continue
			}
			for k := 0; k < 3; k++ {
				corr[idx][k] = 0.5*corr[idx][k] + 0.5*sum[k]/float64(n)
			}
		}
	}
	for i := 0; i < c.Tiles; i++ {
		im, err := fits.Read(fs, projPath(i))
		if err != nil {
			return err
		}
		out := fits.New(im.Width, im.Height)
		out.CRVAL1, out.CRVAL2 = im.CRVAL1, im.CRVAL2
		for y := 0; y < im.Height; y++ {
			for x := 0; x < im.Width; x++ {
				mx := im.CRVAL1 + float64(x)
				my := im.CRVAL2 + float64(y)
				out.Set(x, y, im.At(x, y)-(corr[i][0]+corr[i][1]*mx+corr[i][2]*my))
			}
		}
		if err := fits.Write(fs, corrPath(i), out); err != nil {
			return err
		}
	}
	return nil
}

// runAdd co-adds the corrected images into the mosaic (area-weighted mean),
// renders the grayscale image, and records the min/max statistics the
// paper's classification keys on.
func (c Config) runAdd(fs vfs.FS) error {
	if err := fs.MkdirAll(MosaicDir); err != nil {
		return err
	}
	mosaic := fits.New(c.MosaicW, c.MosaicH)
	weight := fits.New(c.MosaicW, c.MosaicH)
	for i := 0; i < c.Tiles; i++ {
		im, err := fits.Read(fs, corrPath(i))
		if err != nil {
			return err
		}
		area, err := fits.Read(fs, areaPath(i))
		if err != nil {
			return err
		}
		x0, y0 := int(im.CRVAL1), int(im.CRVAL2)
		for y := 0; y < im.Height; y++ {
			for x := 0; x < im.Width; x++ {
				a := 0.0
				if x < area.Width && y < area.Height {
					a = area.At(x, y)
				}
				if a == 0 {
					continue
				}
				mx, my := x0+x, y0+y
				if mx < 0 || my < 0 || mx >= c.MosaicW || my >= c.MosaicH {
					continue
				}
				mosaic.Set(mx, my, mosaic.At(mx, my)+a*im.At(x, y))
				weight.Set(mx, my, weight.At(mx, my)+a)
			}
		}
	}
	for i := range mosaic.Data {
		if weight.Data[i] > 0 {
			mosaic.Data[i] /= weight.Data[i]
		} else {
			mosaic.Data[i] = math.NaN() // blank pixel, like Montage's NaN fill
		}
	}
	if err := fits.Write(fs, MosaicPath, mosaic); err != nil {
		return err
	}

	// Image generation step (the mViewer/shrink stage): re-read the
	// mosaic from storage — the real pipeline hands a file, not memory,
	// to the image generator, so storage faults in the mosaic FITS are
	// visible here — and stretch covered pixels to 8-bit grayscale.
	mosaic, err := fits.Read(fs, MosaicPath)
	if err != nil {
		return err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range mosaic.Data {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !(hi > lo) {
		return fmt.Errorf("montage: mosaic has no covered pixels")
	}
	pgm := []byte(fmt.Sprintf("P5\n%d %d\n255\n", c.MosaicW, c.MosaicH))
	for _, v := range mosaic.Data {
		if math.IsNaN(v) {
			pgm = append(pgm, 0)
			continue
		}
		g := (v - lo) / (hi - lo)
		pgm = append(pgm, byte(g*255))
	}
	if err := vfs.WriteFile(fs, ImagePath, pgm); err != nil {
		return err
	}
	statsTxt := fmt.Sprintf("min %.5f\nmax %.5f\n", lo, hi)
	return vfs.WriteFile(fs, StatsPath, []byte(statsTxt))
}

// ReadMin extracts the min statistic recorded by the final stage.
func ReadMin(fs vfs.FS) (float64, error) {
	raw, err := vfs.ReadFile(fs, StatsPath)
	if err != nil {
		return 0, err
	}
	var minV, maxV float64
	if _, err := fmt.Sscanf(string(raw), "min %f\nmax %f\n", &minV, &maxV); err != nil {
		return 0, fmt.Errorf("montage: unparseable stats file: %w", err)
	}
	return minV, nil
}
