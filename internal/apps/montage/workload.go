package montage

import (
	"fmt"
	"math"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/vfs"
)

// MinTolerance is the acceptance band around the golden "min" statistic:
// within it a changed image counts as SDC, outside it the corruption is
// detected (the paper uses a 10⁻² threshold on the min value).
const MinTolerance = 1e-2

// App is a Montage campaign target: the full pipeline with fault injection
// confined to one stage, mirroring the paper's MT1..MT4 cells.
type App struct {
	Cfg   Config
	Stage Stage

	goldenImage []byte
	goldenMin   float64
}

// NewApp prepares the golden pipeline products for the given stage.
func NewApp(cfg Config, stage Stage) (*App, error) {
	if stage < StageProject || stage > StageAdd {
		return nil, fmt.Errorf("montage: invalid stage %d", int(stage))
	}
	a := &App{Cfg: cfg, Stage: stage}
	fs := vfs.NewMemFS()
	if err := cfg.WriteRawTiles(fs); err != nil {
		return nil, err
	}
	if err := cfg.RunPipeline(fs, StageProject, StageAdd); err != nil {
		return nil, fmt.Errorf("montage: golden pipeline: %w", err)
	}
	img, err := vfs.ReadFile(fs, ImagePath)
	if err != nil {
		return nil, err
	}
	a.goldenImage = img
	if a.goldenMin, err = ReadMin(fs); err != nil {
		return nil, err
	}
	return a, nil
}

// GoldenMin returns the fault-free min statistic.
func (a *App) GoldenMin() float64 { return a.goldenMin }

// Setup provides the campaign's fault-free preamble: raw tiles plus every
// stage before the instrumented one.
func (a *App) Setup(fs vfs.FS) error {
	if err := a.Cfg.WriteRawTiles(fs); err != nil {
		return err
	}
	if a.Stage > StageProject {
		return a.Cfg.RunPipeline(fs, StageProject, a.Stage-1)
	}
	return nil
}

// Run executes only the instrumented stage — the phase whose writes are
// fault-injected.
func (a *App) Run(fs vfs.FS) error {
	return a.Cfg.RunStage(fs, a.Stage)
}

// Classify finishes the pipeline fault-free and applies the paper's rules:
// identical final image → benign; missing/unbuildable products → crash;
// min statistic within tolerance of golden → SDC; otherwise detected.
func (a *App) Classify(fs vfs.FS, runErr error) classify.Outcome {
	if runErr != nil {
		return classify.Crash
	}
	if a.Stage < StageAdd {
		if err := a.Cfg.RunPipeline(fs, a.Stage+1, StageAdd); err != nil {
			return classify.Crash
		}
	}
	img, err := vfs.ReadFile(fs, ImagePath)
	if err != nil {
		return classify.Crash
	}
	if string(img) == string(a.goldenImage) {
		return classify.Benign
	}
	minV, err := ReadMin(fs)
	if err != nil {
		return classify.Crash
	}
	if math.Abs(minV-a.goldenMin) <= MinTolerance {
		return classify.SDC
	}
	return classify.Detected
}

// Workload adapts the app to the campaign runner, labelled MT1..MT4 as in
// Figure 7.
func (a *App) Workload() core.Workload {
	return core.Workload{
		Name:     fmt.Sprintf("MT%d", int(a.Stage)),
		Setup:    a.Setup,
		Run:      a.Run,
		Classify: a.Classify,
	}
}

// Describe returns the Table II row for Montage.
func Describe() string {
	return "Montage | Astronomy | astronomical image mosaic of 10 2MASS-like tiles around m101 | post-analysis: mosaic image comparison + min-statistic window"
}
