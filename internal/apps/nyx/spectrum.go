package nyx

import (
	"fmt"
	"math"
	"strings"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/fft"
	"ffis/internal/vfs"
)

// The paper names two Nyx post-analyses — the halo finder (used for the
// headline results) and the power spectrum, "statistically describing the
// amount of the Universe at each physical scale". This file implements the
// power-spectrum analysis as the alternative classification channel,
// enabling the per-post-analysis error-masking comparison the paper
// motivates ("to measure such ability of each phase of an application").

// Spectrum is the radially binned matter power spectrum P(k), k = 1..N/2.
type Spectrum []float64

// PowerSpectrum computes the density-contrast power spectrum of the field.
// The grid edge must be a power of two (use N = 32 or 64 for this
// analysis; the halo finder has no such restriction).
func PowerSpectrum(field []float64, n int) (Spectrum, error) {
	p, err := fft.PowerSpectrum3D(field, n)
	if err != nil {
		return nil, fmt.Errorf("nyx: power spectrum: %w", err)
	}
	return Spectrum(p), nil
}

// Render prints the spectrum at the 4-significant-digit resolution used for
// bit-wise outcome comparison; like the halo catalog, it is deliberately
// insensitive to sub-ULP noise while resolving physically meaningful power
// shifts.
func (s Spectrum) Render() string {
	var b strings.Builder
	b.WriteString("# P(k), k = 1..N/2\n")
	for k, p := range s {
		fmt.Fprintf(&b, "%3d %.4g\n", k+1, p)
	}
	return b.String()
}

// RelDistance returns the maximum relative per-bin deviation between two
// spectra (Inf for mismatched lengths), the quantity used to decide whether
// a corrupted dataset still yields science-grade statistics.
func (s Spectrum) RelDistance(o Spectrum) float64 {
	if len(s) != len(o) {
		return math.Inf(1)
	}
	worst := 0.0
	for k := range s {
		denom := math.Abs(s[k])
		if denom < 1e-300 {
			denom = 1e-300
		}
		d := math.Abs(s[k]-o[k]) / denom
		if d > worst {
			worst = d
		}
	}
	return worst
}

// SpectrumApp is the power-spectrum variant of the Nyx campaign workload.
type SpectrumApp struct {
	Sim SimConfig

	field  []float64
	golden Spectrum
}

// NewSpectrumApp generates the field and the golden spectrum. The grid
// edge must be a power of two.
func NewSpectrumApp(sim SimConfig) (*SpectrumApp, error) {
	if !fft.IsPow2(sim.N) {
		return nil, fmt.Errorf("nyx: power spectrum needs a power-of-two grid, got %d", sim.N)
	}
	a := &SpectrumApp{Sim: sim}
	a.field = sim.Generate()
	var err error
	a.golden, err = PowerSpectrum(a.field, sim.N)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Golden returns the fault-free spectrum.
func (a *SpectrumApp) Golden() Spectrum { return a.golden }

// Run persists the field through the supplied file system (same I/O as the
// halo-finder variant; only the post-analysis differs).
func (a *SpectrumApp) Run(fs vfs.FS) error {
	if err := fs.MkdirAll("/plt00000"); err != nil {
		return err
	}
	return WriteDataset(fs, OutputPath, a.field, a.Sim.N)
}

// DetectedRelDeviation is the spectrum deviation beyond which the
// post-analysis itself flags the run (a grossly wrong spectrum is obvious
// to a domain scientist; small distortions pass silently).
const DetectedRelDeviation = 10.0

// Classify applies the outcome rules through the power-spectrum channel:
// bit-wise identical rendered spectrum → benign; unreadable file → crash;
// relative deviation beyond DetectedRelDeviation (or a spectrum that cannot
// be computed) → detected; otherwise SDC.
func (a *SpectrumApp) Classify(fs vfs.FS, runErr error) classify.Outcome {
	if runErr != nil {
		return classify.Crash
	}
	field, n, err := ReadDataset(fs, OutputPath)
	if err != nil {
		return classify.Crash
	}
	spec, err := PowerSpectrum(field, n)
	if err != nil {
		return classify.Detected // degenerate data: mean NaN/zero
	}
	if spec.Render() == a.golden.Render() {
		return classify.Benign
	}
	if a.golden.RelDistance(spec) > DetectedRelDeviation {
		return classify.Detected
	}
	return classify.SDC
}

// Workload adapts the spectrum app to the campaign runner.
func (a *SpectrumApp) Workload() core.Workload {
	return core.Workload{
		Name:     "nyx-spectrum",
		Run:      a.Run,
		Classify: a.Classify,
	}
}
