package nyx

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

func smallSim() SimConfig {
	c := DefaultSim()
	c.N = 24
	c.NumHalos = 4
	return c
}

func TestGenerateMeanIsOne(t *testing.T) {
	field := smallSim().Generate()
	if m := stats.Mean(field); math.Abs(m-1) > 1e-12 {
		t.Fatalf("mean = %v, want exactly 1 (mass conservation)", m)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := smallSim().Generate()
	b := smallSim().Generate()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("field diverges at %d", i)
		}
	}
	c := smallSim()
	c.Seed++
	d := c.Generate()
	same := 0
	for i := range a {
		if a[i] == d[i] {
			same++
		}
	}
	if same > len(a)/100 {
		t.Fatalf("different seeds share %d/%d cells", same, len(a))
	}
}

func TestGenerateHasHaloPeaks(t *testing.T) {
	field := smallSim().Generate()
	_, hi := stats.MinMax(field)
	if hi < 82 {
		t.Fatalf("max density %v below halo threshold 81.66", hi)
	}
}

func TestFindHalosOnGolden(t *testing.T) {
	cfg := smallSim()
	field := cfg.Generate()
	cat := FindHalos(field, cfg.N, DefaultHalo())
	if len(cat.Halos) == 0 {
		t.Fatal("no halos found in golden field")
	}
	if cat.Candidates < cat.Halos[0].Cells {
		t.Fatal("candidate census inconsistent")
	}
	if math.Abs(cat.Mean-1) > 1e-12 {
		t.Fatalf("catalog mean = %v", cat.Mean)
	}
	// Halos sorted by descending mass.
	for i := 1; i < len(cat.Halos); i++ {
		if cat.Halos[i].Mass > cat.Halos[i-1].Mass {
			t.Fatal("halos not sorted by mass")
		}
	}
	// Centers within grid bounds.
	for _, h := range cat.Halos {
		for _, c := range h.Center {
			if c < 0 || c >= float64(cfg.N) {
				t.Fatalf("center out of bounds: %v", h.Center)
			}
		}
	}
}

func TestFindHalosEmptyOnFlatField(t *testing.T) {
	field := make([]float64, 8*8*8)
	for i := range field {
		field[i] = 1
	}
	cat := FindHalos(field, 8, DefaultHalo())
	if len(cat.Halos) != 0 || cat.Candidates != 0 {
		t.Fatalf("flat field produced candidates: %+v", cat)
	}
}

func TestFindHalosNaNMean(t *testing.T) {
	field := make([]float64, 8*8*8)
	field[0] = math.NaN()
	cat := FindHalos(field, 8, DefaultHalo())
	if len(cat.Halos) != 0 {
		t.Fatal("NaN-poisoned field produced halos")
	}
}

func TestFindHalosMassConservesCandidates(t *testing.T) {
	// Property: total halo mass never exceeds total candidate mass, and
	// member cells never exceed candidates.
	f := func(seed uint64) bool {
		cfg := smallSim()
		cfg.Seed = seed
		field := cfg.Generate()
		cat := FindHalos(field, cfg.N, DefaultHalo())
		cells := 0
		for _, h := range cat.Halos {
			cells += h.Cells
			if h.Cells < DefaultHalo().MinCells {
				return false
			}
		}
		return cells <= cat.Candidates
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestFoFMergesTouchingClusters(t *testing.T) {
	// Two overlapping high-density boxes must form one halo, not two.
	n := 16
	field := make([]float64, n*n*n)
	for i := range field {
		field[i] = 0.5
	}
	put := func(x, y, z int, v float64) { field[(z*n+y)*n+x] = v }
	for x := 2; x < 8; x++ {
		put(x, 4, 4, 500)
	}
	for x := 7; x < 13; x++ {
		put(x, 4, 4, 500)
	}
	cat := FindHalos(field, n, HaloConfig{ThresholdFactor: 81.66, MinCells: 5})
	if len(cat.Halos) != 1 {
		t.Fatalf("found %d halos, want 1 merged", len(cat.Halos))
	}
	if cat.Halos[0].Cells != 11 {
		t.Fatalf("merged halo has %d cells, want 11", cat.Halos[0].Cells)
	}
}

func TestRenderStableAndSensitive(t *testing.T) {
	cfg := smallSim()
	field := cfg.Generate()
	a := FindHalos(field, cfg.N, DefaultHalo()).Render()
	b := FindHalos(field, cfg.N, DefaultHalo()).Render()
	if a != b {
		t.Fatal("render not deterministic")
	}
	if !strings.Contains(a, "# NVB integral 24") || !strings.Contains(a, "nhalos") {
		t.Fatalf("render format:\n%s", a)
	}
	// A 0.2% mass deficit (one dropped 4 KiB block) must change the
	// rendered integral.
	faulty := append([]float64(nil), field...)
	for i := 0; i < 512; i++ {
		faulty[i] = 0
	}
	if FindHalos(faulty, cfg.N, DefaultHalo()).Render() == a {
		t.Fatal("dropped-block corruption invisible in rendered output")
	}
	// A last-bit flip of one background cell must NOT change it.
	tweaked := append([]float64(nil), field...)
	tweaked[7] = math.Nextafter(tweaked[7], 2)
	if FindHalos(tweaked, cfg.N, DefaultHalo()).Render() != a {
		t.Fatal("one-ulp perturbation visible in rendered output")
	}
}

func TestWriteReadDatasetRoundTrip(t *testing.T) {
	fs := vfs.NewMemFS()
	cfg := smallSim()
	field := cfg.Generate()
	if err := WriteDataset(fs, "/d.h5", field, cfg.N); err != nil {
		t.Fatal(err)
	}
	got, n, err := ReadDataset(fs, "/d.h5")
	if err != nil {
		t.Fatal(err)
	}
	if n != cfg.N {
		t.Fatalf("n = %d", n)
	}
	for i := range field {
		if got[i] != field[i] {
			t.Fatalf("value %d differs", i)
		}
	}
}

func TestAppGoldenClassifiesBenign(t *testing.T) {
	app, err := NewApp(smallSim(), DefaultHalo())
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewMemFS()
	if err := app.Run(fs); err != nil {
		t.Fatal(err)
	}
	if got := app.Classify(fs, nil); got != classify.Benign {
		t.Fatalf("golden run classified %s", got)
	}
}

func TestAppClassifyCrashOnRunError(t *testing.T) {
	app, err := NewApp(smallSim(), DefaultHalo())
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Classify(vfs.NewMemFS(), errForTest); got != classify.Crash {
		t.Fatalf("run error classified %s", got)
	}
}

var errForTest = &vfs.PathError{Op: "write", Path: "/x", Err: vfs.ErrClosed}

func TestAppClassifyCrashOnMissingOutput(t *testing.T) {
	app, err := NewApp(smallSim(), DefaultHalo())
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Classify(vfs.NewMemFS(), nil); got != classify.Crash {
		t.Fatalf("missing output classified %s", got)
	}
}

func TestDetectByAverage(t *testing.T) {
	if DetectByAverage(1.0) {
		t.Error("exact mean flagged")
	}
	if DetectByAverage(1.0005) {
		t.Error("within-tolerance mean flagged")
	}
	if !DetectByAverage(0.9983) {
		t.Error("paper's 0.9983 example not flagged")
	}
	if !DetectByAverage(4096) {
		t.Error("power-of-two scaling not flagged")
	}
	if !DetectByAverage(math.NaN()) {
		t.Error("NaN mean not flagged")
	}
}

func TestDroppedWriteCampaignIsAllSDC(t *testing.T) {
	// The Figure 7 Nyx/DW cell: every dropped write zeroes a 4 KiB block
	// of density data, shifting the mass integral — 100% SDC.
	app, err := NewApp(smallSim(), DefaultHalo())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Campaign(core.CampaignConfig{
		Fault: core.Config{Model: core.DroppedWrite},
		Runs:  12,
		Seed:  99,
	}, app.Workload())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Count(classify.Benign) != 0 {
		t.Fatalf("dropped writes produced benign runs: %s", res.Tally.String())
	}
	sdcPlusCrash := res.Tally.Count(classify.SDC) + res.Tally.Count(classify.Crash) + res.Tally.Count(classify.Detected)
	if sdcPlusCrash != 12 {
		t.Fatalf("unexpected tally: %s", res.Tally.String())
	}
}

func TestDroppedWriteDetectedByAverage(t *testing.T) {
	// With the average-value method every dropped-write SDC becomes
	// detected (the paper's recommendation).
	app, err := NewApp(smallSim(), DefaultHalo())
	if err != nil {
		t.Fatal(err)
	}
	app.UseAvgDetector = true
	res, err := core.Campaign(core.CampaignConfig{
		Fault: core.Config{Model: core.DroppedWrite},
		Runs:  12,
		Seed:  99,
	}, app.Workload())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tally.Count(classify.SDC); got != 0 {
		t.Fatalf("avg detector missed %d SDCs: %s", got, res.Tally.String())
	}
}

func TestBitFlipCampaignMostlyBenign(t *testing.T) {
	app, err := NewApp(smallSim(), DefaultHalo())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Campaign(core.CampaignConfig{
		Fault: core.Config{Model: core.BitFlip},
		Runs:  40,
		Seed:  7,
	}, app.Workload())
	if err != nil {
		t.Fatal(err)
	}
	if benign := res.Tally.Rate(classify.Benign).P(); benign < 0.5 {
		t.Fatalf("bit-flip benign rate = %.2f, want Nyx-like dominance: %s",
			benign, res.Tally.String())
	}
}

func TestSlicePGM(t *testing.T) {
	cfg := smallSim()
	field := cfg.Generate()
	img := SlicePGM(field, cfg.N, cfg.N/2)
	if !strings.HasPrefix(string(img), "P5\n24 24\n255\n") {
		t.Fatalf("PGM header: %q", img[:20])
	}
	wantLen := len("P5\n24 24\n255\n") + 24*24
	if len(img) != wantLen {
		t.Fatalf("PGM length = %d, want %d", len(img), wantLen)
	}
}

func TestCandidateCensusDropsUnderScaling(t *testing.T) {
	cfg := smallSim()
	field := cfg.Generate()
	cat := FindHalos(field, cfg.N, DefaultHalo())
	center := cat.Halos[0].Center
	orig := CandidateCensus(field, cfg.N, DefaultHalo(), center, 4)
	if orig == 0 {
		t.Fatal("no candidates near largest halo")
	}
	// Simulate a mantissa-size-style corruption: non-halo structure
	// flattened, halo contrast squashed.
	squashed := make([]float64, len(field))
	for i, v := range field {
		squashed[i] = math.Sqrt(v) // compress dynamic range
	}
	after := CandidateCensus(squashed, cfg.N, DefaultHalo(), center, 4)
	if after >= orig {
		t.Fatalf("census did not drop: %d -> %d", orig, after)
	}
}

func TestMassHistogram(t *testing.T) {
	cfg := smallSim()
	field := cfg.Generate()
	cat := FindHalos(field, cfg.N, DefaultHalo())
	h := cat.MassHistogram(0, 1e5, 20)
	if h.Total() != len(cat.Halos) {
		t.Fatalf("histogram total = %d, want %d", h.Total(), len(cat.Halos))
	}
}

func TestDescribe(t *testing.T) {
	if !strings.Contains(Describe(), "Nyx") {
		t.Fatal("describe missing app name")
	}
}
