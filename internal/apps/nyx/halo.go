package nyx

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// HaloConfig parameterizes the Friends-of-Friends halo finder.
type HaloConfig struct {
	// ThresholdFactor is the candidate criterion: a cell is a halo-cell
	// candidate when its density exceeds ThresholdFactor times the mean
	// density of the whole dataset. The paper quotes 81.66.
	ThresholdFactor float64
	// MinCells is the minimum number of connected candidates that form a
	// halo ("there must be enough halo cell candidates in a certain area
	// to form a halo").
	MinCells int
}

// DefaultHalo returns the paper's halo-finder parameters.
func DefaultHalo() HaloConfig {
	return HaloConfig{ThresholdFactor: 81.66, MinCells: 10}
}

// Halo is one identified dark-matter halo.
type Halo struct {
	Mass   float64    // sum of member cell densities
	Cells  int        // number of member cells
	Center [3]float64 // mass-weighted center of mass (cell coordinates)
}

// Catalog is the halo finder's output: the quantities Nyx's post-analysis
// prints (positions, cell counts, masses) plus the integral statistics the
// NVB output carries.
type Catalog struct {
	GridN      int
	Mean       float64 // average density of the input (≈1 by construction)
	Integral   float64 // total mass (mean × cell count)
	Candidates int     // cells above threshold
	Halos      []Halo
}

// FindHalos runs Friends-of-Friends on the density field: cells above the
// threshold are candidates, candidates are linked by 6-connectivity, and
// components with at least MinCells cells become halos.
func FindHalos(field []float64, n int, cfg HaloConfig) Catalog {
	mean := stats.Mean(field)
	cat := Catalog{GridN: n, Mean: mean, Integral: mean * float64(len(field))}
	threshold := cfg.ThresholdFactor * mean
	if math.IsNaN(threshold) || math.IsInf(threshold, 0) {
		// A corrupted dataset can push the mean to NaN/Inf; no finite
		// cell clears such a threshold — the "no halos found" outcome.
		return cat
	}

	// Collect candidate cells. NaN densities never satisfy the
	// comparison, so they simply drop out.
	candidate := make(map[int]int, 1024) // cell index -> candidate id
	var cells []int
	for i, v := range field {
		if v >= threshold {
			candidate[i] = len(cells)
			cells = append(cells, i)
		}
	}
	cat.Candidates = len(cells)
	if len(cells) == 0 {
		return cat
	}

	// Union-find over 6-connected candidate neighbours.
	parent := make([]int, len(cells))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for id, idx := range cells {
		x := idx % n
		y := (idx / n) % n
		z := idx / (n * n)
		// Only look at +x/+y/+z neighbours; the -direction link is made
		// when the neighbour itself is visited.
		if x+1 < n {
			if nid, ok := candidate[idx+1]; ok {
				union(id, nid)
			}
		}
		if y+1 < n {
			if nid, ok := candidate[idx+n]; ok {
				union(id, nid)
			}
		}
		if z+1 < n {
			if nid, ok := candidate[idx+n*n]; ok {
				union(id, nid)
			}
		}
	}

	// Accumulate component statistics.
	type accum struct {
		mass  float64
		cells int
		cx    float64
		cy    float64
		cz    float64
	}
	groups := map[int]*accum{}
	for id, idx := range cells {
		root := find(id)
		g := groups[root]
		if g == nil {
			g = &accum{}
			groups[root] = g
		}
		v := field[idx]
		x := float64(idx % n)
		y := float64((idx / n) % n)
		z := float64(idx / (n * n))
		g.mass += v
		g.cells++
		g.cx += v * x
		g.cy += v * y
		g.cz += v * z
	}
	for _, g := range groups {
		if g.cells < cfg.MinCells || g.mass <= 0 {
			continue
		}
		cat.Halos = append(cat.Halos, Halo{
			Mass:   g.mass,
			Cells:  g.cells,
			Center: [3]float64{g.cx / g.mass, g.cy / g.mass, g.cz / g.mass},
		})
	}
	// Deterministic order: by descending mass, then by center.
	sort.Slice(cat.Halos, func(i, j int) bool {
		if cat.Halos[i].Mass != cat.Halos[j].Mass {
			return cat.Halos[i].Mass > cat.Halos[j].Mass
		}
		return cat.Halos[i].Center[0] < cat.Halos[j].Center[0]
	})
	return cat
}

// Render produces the textual halo-finder output (the paper's "NVB
// integral" file) that outcome classification compares bit-wise. The mean
// density integral is printed at 10⁻³ resolution: a dropped device block
// (≥0.1% mass deficit, the paper's observation) always shows, while the
// ~10⁻⁵ jitter of a shorn write's same-magnitude remnants and single
// low-order mantissa flips vanish — exactly the sensitivity the paper's
// Nyx outcome spectrum implies.
func (c Catalog) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# NVB integral %d\n", c.GridN)
	fmt.Fprintf(&b, "mean_density %.3f\n", c.Mean)
	fmt.Fprintf(&b, "candidates %d\n", c.Candidates)
	fmt.Fprintf(&b, "nhalos %d\n", len(c.Halos))
	for i, h := range c.Halos {
		fmt.Fprintf(&b, "halo %d mass=%.5g cells=%d center=(%.3f,%.3f,%.3f)\n",
			i, h.Mass, h.Cells, h.Center[0], h.Center[1], h.Center[2])
	}
	return b.String()
}

// RunHaloFinder reads the density dataset from the file system and runs the
// halo finder on it.
func RunHaloFinder(fs vfs.FS, path string, cfg HaloConfig) (Catalog, error) {
	field, n, err := ReadDataset(fs, path)
	if err != nil {
		return Catalog{}, err
	}
	return FindHalos(field, n, cfg), nil
}

// MassHistogram bins the halo masses of a catalog, reproducing the Figure 8
// comparison between golden and faulty mass distributions.
func (c Catalog) MassHistogram(lo, hi float64, bins int) *stats.Histogram {
	h := stats.NewHistogram(lo, hi, bins)
	for _, halo := range c.Halos {
		h.Add(halo.Mass)
	}
	return h
}
