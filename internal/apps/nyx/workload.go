package nyx

import (
	"fmt"
	"math"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/hdf5"
	"ffis/internal/vfs"
)

// OutputPath is where the simulation deposits its plotfile.
const OutputPath = "/plt00000/baryon_density.h5"

// AvgTolerance is the relative deviation of the dataset average from 1 at
// which the average-value method flags corruption. The paper observes that
// every dropped-write SDC moves the average by at least 0.1%.
const AvgTolerance = 1e-3

// DetectByAverage implements the paper's average-value detector: under mass
// conservation the mean baryon density must be 1; a deviation beyond the
// tolerance reveals storage corruption that the halo finder alone might
// miss.
func DetectByAverage(mean float64) bool {
	return math.IsNaN(mean) || math.Abs(mean-1) > AvgTolerance
}

// App bundles the simulation and analysis configuration used in campaigns.
type App struct {
	Sim  SimConfig
	Halo HaloConfig

	field  []float64 // generated once; identical in every run
	golden string    // golden halo-finder output
	// UseAvgDetector additionally applies the average-value method during
	// classification, turning detectable SDCs into detected outcomes
	// (the "after using the average-value-based method" variant of
	// Figure 7).
	UseAvgDetector bool
}

// NewApp generates the simulation data and the golden catalog.
func NewApp(sim SimConfig, halo HaloConfig) (*App, error) {
	a := &App{Sim: sim, Halo: halo}
	a.field = sim.Generate()
	cat := FindHalos(a.field, sim.N, halo)
	if len(cat.Halos) == 0 {
		return nil, fmt.Errorf("nyx: configuration produced no halos (candidates=%d)", cat.Candidates)
	}
	a.golden = cat.Render()
	return a, nil
}

// Golden returns the fault-free halo-finder output.
func (a *App) Golden() string { return a.golden }

// GoldenCatalog recomputes the golden catalog (for histogram comparisons).
func (a *App) GoldenCatalog() Catalog { return FindHalos(a.field, a.Sim.N, a.Halo) }

// Field exposes the generated density field (read-only use).
func (a *App) Field() []float64 { return a.field }

// Run executes the application's I/O: it persists the (precomputed) field
// through the supplied file system. This is the phase fault injection
// targets.
func (a *App) Run(fs vfs.FS) error {
	if err := fs.MkdirAll("/plt00000"); err != nil {
		return err
	}
	return WriteDataset(fs, OutputPath, a.field, a.Sim.N)
}

// Classify implements the paper's Nyx outcome rules: bit-wise identical
// halo-finder output is benign; an HDF5 exception or unreadable output is a
// crash; an empty catalog is detected; anything else is SDC — unless the
// average-value detector is enabled and flags it, in which case it is
// detected.
func (a *App) Classify(fs vfs.FS, runErr error) classify.Outcome {
	if runErr != nil {
		return classify.Crash
	}
	cat, err := RunHaloFinder(fs, OutputPath, a.Halo)
	if err != nil {
		if hdf5.IsFormatError(err) {
			return classify.Crash
		}
		return classify.Crash
	}
	out := cat.Render()
	if out == a.golden {
		return classify.Benign
	}
	if len(cat.Halos) == 0 {
		return classify.Detected
	}
	if a.UseAvgDetector && DetectByAverage(cat.Mean) {
		return classify.Detected
	}
	return classify.SDC
}

// Workload adapts the app to the campaign runner.
func (a *App) Workload() core.Workload {
	return core.Workload{
		Name:     "nyx",
		Run:      a.Run,
		Classify: a.Classify,
	}
}

// Describe returns the Table II row for Nyx.
func Describe() string {
	return "Nyx | Astrophysics | adaptive mesh refinement (AMR) based cosmological simulation | post-analysis: Friends-of-Friends halo finder on the baryon_density field"
}
