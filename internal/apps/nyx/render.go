package nyx

import (
	"fmt"
	"math"
	"strings"
)

// SlicePGM renders the z=k plane of the field as a binary PGM image with a
// logarithmic stretch, the visualization used for Figure 5 (original vs
// scaled vs shifted density) and Figure 6 (halo candidate loss).
func SlicePGM(field []float64, n, k int) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "P5\n%d %d\n255\n", n, n)
	out := []byte(b.String())
	lo, hi := math.Inf(1), math.Inf(-1)
	plane := field[k*n*n : (k+1)*n*n]
	for _, v := range plane {
		if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
			l := math.Log10(v)
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
	}
	if !(hi > lo) {
		lo, hi = 0, 1
	}
	for _, v := range plane {
		var g float64
		if v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
			g = (math.Log10(v) - lo) / (hi - lo)
		}
		if g < 0 {
			g = 0
		}
		if g > 1 {
			g = 1
		}
		out = append(out, byte(g*255))
	}
	return out
}

// CandidateCensus counts halo-cell candidates in the neighbourhood of a
// point, the Figure 6 quantity ("the number of halo cell candidates is
// reduced compared to the original case").
func CandidateCensus(field []float64, n int, cfg HaloConfig, center [3]float64, radius int) int {
	mean := 0.0
	for _, v := range field {
		mean += v
	}
	mean /= float64(len(field))
	threshold := cfg.ThresholdFactor * mean
	count := 0
	cx, cy, cz := int(center[0]), int(center[1]), int(center[2])
	for dz := -radius; dz <= radius; dz++ {
		for dy := -radius; dy <= radius; dy++ {
			for dx := -radius; dx <= radius; dx++ {
				x, y, z := cx+dx, cy+dy, cz+dz
				if x < 0 || y < 0 || z < 0 || x >= n || y >= n || z >= n {
					continue
				}
				if field[(z*n+y)*n+x] >= threshold {
					count++
				}
			}
		}
	}
	return count
}
