// Package nyx is the Nyx proxy application: an adaptive-mesh cosmology code
// stand-in that produces a 3-D baryon density field, persists it as an HDF5
// dataset through the vfs layer, and analyses it with the Friends-of-Friends
// halo finder the paper uses as Nyx's post-analysis.
//
// The proxy preserves the two properties the paper's Nyx results hinge on:
//
//   - mass conservation — the density field has mean exactly 1, which powers
//     the average-value SDC detector of Section V;
//   - a mean-relative halo threshold (81.66 × the dataset average), which is
//     what masks small data corruptions and amplifies large ones.
package nyx

import (
	"math"

	"ffis/internal/hdf5"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// DatasetName is the HDF5 link name of the density field, matching the
// field the paper's halo finder consumes.
const DatasetName = "baryon_density"

// SimConfig parameterizes the synthetic cosmology run.
type SimConfig struct {
	// N is the grid edge: the field has N³ cells.
	N int
	// Seed drives all synthetic randomness; identical seeds give
	// bit-identical fields.
	Seed uint64
	// NumHalos is the number of seeded overdensities.
	NumHalos int
	// Sigma is the log-normal width of the background field.
	Sigma float64
	// PeakMin/PeakMax bound the halo peak amplitudes (in units of the
	// mean density; the halo threshold is 81.66).
	PeakMin, PeakMax float64
	// RadiusMin/RadiusMax bound the halo Gaussian radii in cells.
	RadiusMin, RadiusMax float64
}

// DefaultSim returns the configuration used by the experiments: a 48³ grid
// (≈0.9 MB of float64 payload, 221 device blocks) with a dozen halos.
func DefaultSim() SimConfig {
	return SimConfig{
		N:         48,
		Seed:      20210802, // the paper's arXiv v2 date
		NumHalos:  12,
		Sigma:     0.45,
		PeakMin:   150,
		PeakMax:   420,
		RadiusMin: 0.9,
		RadiusMax: 1.3,
	}
}

// Generate synthesizes the baryon density field. The background is
// log-normal; halo overdensities are Gaussian blobs whose peaks clear the
// halo-finder threshold. The background is scaled down so that the combined
// field has mean 1 without squashing the halo peaks, then the exact mean is
// pinned to 1 — honouring the law of mass conservation the average-value
// detector relies on.
func (c SimConfig) Generate() []float64 {
	rng := stats.NewRNG(c.Seed)
	n := c.N
	cells := n * n * n
	bg := make([]float64, cells)
	adj := -c.Sigma * c.Sigma / 2
	for i := range bg {
		bg[i] = math.Exp(c.Sigma*rng.NormFloat64() + adj)
	}
	// Seeded halos on a separate layer: keep centers away from the
	// boundary so a halo's cells stay contiguous in index space.
	halo := make([]float64, cells)
	for h := 0; h < c.NumHalos; h++ {
		cx := float64(rng.Intn(n-8) + 4)
		cy := float64(rng.Intn(n-8) + 4)
		cz := float64(rng.Intn(n-8) + 4)
		peak := c.PeakMin + rng.Float64()*(c.PeakMax-c.PeakMin)
		radius := c.RadiusMin + rng.Float64()*(c.RadiusMax-c.RadiusMin)
		// Only cells within 4 radii matter.
		reach := int(4 * radius)
		for dz := -reach; dz <= reach; dz++ {
			for dy := -reach; dy <= reach; dy++ {
				for dx := -reach; dx <= reach; dx++ {
					x, y, z := int(cx)+dx, int(cy)+dy, int(cz)+dz
					if x < 0 || y < 0 || z < 0 || x >= n || y >= n || z >= n {
						continue
					}
					d2 := float64(dx*dx + dy*dy + dz*dz)
					halo[(z*n+y)*n+x] += peak * math.Exp(-d2/(2*radius*radius))
				}
			}
		}
	}
	// Scale the background so total mass equals the cell count (mean 1),
	// leaving halo peaks untouched. If halos alone exceed the mass
	// budget, keep a floor of background and let the final exact
	// renormalization absorb the rest.
	haloMass := stats.Mean(halo) * float64(cells)
	bgMass := stats.Mean(bg) * float64(cells)
	scale := (float64(cells) - haloMass) / bgMass
	if scale < 0.1 {
		scale = 0.1
	}
	field := bg
	for i := range field {
		field[i] = field[i]*scale + halo[i]
	}
	// Pin the mean to exactly 1 (a no-op scaling in the common case).
	inv := 1 / stats.Mean(field)
	for i := range field {
		field[i] *= inv
	}
	return field
}

// BuildImage packs the field into an HDF5 file image (metadata + raw data +
// field map), which both the plain writer and the metadata-injection
// campaigns consume.
func BuildImage(field []float64, n int) (*hdf5.FileImage, error) {
	return hdf5.NewBuilder().AddDataset(hdf5.DatasetSpec{
		Name:   DatasetName,
		Dims:   []uint64{uint64(n), uint64(n), uint64(n)},
		Values: field,
	}).Build()
}

// WriteDataset persists the field as an HDF5 file at path using the
// library's characteristic I/O sequence (raw data writes, then the packed
// metadata write, then the EOF stamp).
func WriteDataset(fs vfs.FS, path string, field []float64, n int) error {
	img, err := BuildImage(field, n)
	if err != nil {
		return err
	}
	return img.WriteTo(fs, path)
}

// ReadDataset loads the density field back. Any format violation surfaces
// as an hdf5.FormatError — the proxy for an HDF5 library exception.
func ReadDataset(fs vfs.FS, path string) ([]float64, int, error) {
	vals, dims, err := hdf5.ReadDataset(fs, path, DatasetName)
	if err != nil {
		return nil, 0, err
	}
	if len(dims) != 3 || dims[0] != dims[1] || dims[1] != dims[2] {
		return nil, 0, &hdf5.FormatError{Field: "dataspace", Msg: "expected cubic 3-D dataset"}
	}
	return vals, int(dims[0]), nil
}
