package nyx

import (
	"math"
	"strings"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/vfs"
)

func spectrumSim() SimConfig {
	c := DefaultSim()
	c.N = 32 // power of two, required by the FFT
	c.NumHalos = 5
	return c
}

func TestPowerSpectrumOfSim(t *testing.T) {
	cfg := spectrumSim()
	field := cfg.Generate()
	spec, err := PowerSpectrum(field, cfg.N)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != cfg.N/2 {
		t.Fatalf("spectrum bins = %d, want %d", len(spec), cfg.N/2)
	}
	var total float64
	for _, p := range spec {
		if p < 0 || math.IsNaN(p) {
			t.Fatalf("negative/NaN power: %v", spec)
		}
		total += p
	}
	if total <= 0 {
		t.Fatal("structured field has zero power")
	}
}

func TestPowerSpectrumRequiresPow2(t *testing.T) {
	if _, err := PowerSpectrum(make([]float64, 27), 3); err == nil {
		t.Fatal("non-pow2 grid accepted")
	}
	if _, err := NewSpectrumApp(DefaultSim()); err == nil { // N=48
		t.Fatal("N=48 accepted for spectrum app")
	}
}

func TestSpectrumRenderDeterministic(t *testing.T) {
	cfg := spectrumSim()
	field := cfg.Generate()
	a, _ := PowerSpectrum(field, cfg.N)
	b, _ := PowerSpectrum(field, cfg.N)
	if a.Render() != b.Render() {
		t.Fatal("spectrum render unstable")
	}
	if !strings.HasPrefix(a.Render(), "# P(k)") {
		t.Fatal("render format")
	}
}

func TestRelDistance(t *testing.T) {
	a := Spectrum{1, 2, 3}
	if d := a.RelDistance(Spectrum{1, 2, 3}); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	if d := a.RelDistance(Spectrum{2, 2, 3}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("distance = %v, want 1", d)
	}
	if d := a.RelDistance(Spectrum{1, 2}); !math.IsInf(d, 1) {
		t.Fatalf("mismatched lengths: %v", d)
	}
}

func TestSpectrumAppGoldenBenign(t *testing.T) {
	app, err := NewSpectrumApp(spectrumSim())
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewMemFS()
	if err := app.Run(fs); err != nil {
		t.Fatal(err)
	}
	if got := app.Classify(fs, nil); got != classify.Benign {
		t.Fatalf("golden classified %s", got)
	}
	if len(app.Golden()) != spectrumSim().N/2 {
		t.Fatal("golden spectrum missing")
	}
}

func TestSpectrumAppDroppedWriteVisible(t *testing.T) {
	// A dropped 4 KiB block zeroes 512 cells: a sharp real-space feature
	// spreads power across all k — never benign through this channel.
	app, err := NewSpectrumApp(spectrumSim())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Campaign(core.CampaignConfig{
		Fault: core.Config{Model: core.DroppedWrite},
		Runs:  10,
		Seed:  31,
	}, app.Workload())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Count(classify.Benign) != 0 {
		t.Fatalf("dropped writes benign through spectrum: %s", res.Tally.String())
	}
}

func TestSpectrumAppMasksSmallFlips(t *testing.T) {
	// The spectrum averages ~32k modes per shell: a one-ULP flip of a
	// single cell vanishes below the 4-digit render resolution.
	app, err := NewSpectrumApp(spectrumSim())
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewMemFS()
	app.Run(fs)
	raw, _ := vfs.ReadFile(fs, OutputPath)
	// Flip the lowest mantissa bit of one data element (past metadata).
	raw[len(raw)-4096] ^= 0x01
	vfs.WriteFile(fs, OutputPath, raw)
	if got := app.Classify(fs, nil); got != classify.Benign {
		t.Fatalf("one-ULP flip classified %s via spectrum", got)
	}
}

func TestSpectrumAppCrashOnMissingOutput(t *testing.T) {
	app, err := NewSpectrumApp(spectrumSim())
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Classify(vfs.NewMemFS(), nil); got != classify.Crash {
		t.Fatalf("missing output classified %s", got)
	}
}
