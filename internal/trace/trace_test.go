package trace

import (
	"strings"
	"testing"

	"ffis/internal/apps/nyx"
	"ffis/internal/vfs"
)

func TestRecorderCapturesSequence(t *testing.T) {
	rec := NewRecorder(vfs.NewMemFS())
	rec.MkdirAll("/d")
	f, err := rec.Create("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("hello"))
	f.WriteAt([]byte("HE"), 0)
	f.Close()
	vfs.ReadFile(rec, "/d/f")

	log := rec.Log()
	if len(log) < 5 {
		t.Fatalf("log too short: %d ops", len(log))
	}
	for i, op := range log {
		if op.Seq != i {
			t.Fatalf("sequence broken at %d: %+v", i, op)
		}
	}
	// First write is sequential at offset 0 with size 5.
	var w *Op
	for i := range log {
		if log[i].Primitive == vfs.PrimWrite {
			w = &log[i]
			break
		}
	}
	if w == nil || w.Offset != 0 || w.Size != 5 {
		t.Fatalf("first write: %+v", w)
	}
}

func TestRecorderRecordsErrors(t *testing.T) {
	rec := NewRecorder(vfs.NewMemFS())
	rec.Open("/missing")
	log := rec.Log()
	if len(log) != 1 || !log[0].Err {
		t.Fatalf("error not recorded: %+v", log)
	}
}

func TestRecorderReset(t *testing.T) {
	rec := NewRecorder(vfs.NewMemFS())
	rec.MkdirAll("/d")
	rec.Reset()
	if len(rec.Log()) != 0 {
		t.Fatal("reset did not clear log")
	}
}

func TestAnalyzeWritePattern(t *testing.T) {
	rec := NewRecorder(vfs.NewMemFS())
	f, _ := rec.Create("/f")
	f.Write(make([]byte, 512))         // offset 0, sequential by definition
	f.Write(make([]byte, 512))         // offset 512, sequential
	f.WriteAt(make([]byte, 100), 0)    // overwrite
	f.WriteAt(make([]byte, 100), 5000) // jump
	f.Close()

	p := Analyze(rec.Log())
	fileStats := p.Files["/f"]
	if fileStats.Writes != 4 {
		t.Fatalf("writes = %d", fileStats.Writes)
	}
	if fileStats.Sequential < 2 {
		t.Fatalf("sequential = %d, want >= 2", fileStats.Sequential)
	}
	if fileStats.OverwriteOps != 1 {
		t.Fatalf("overwrites = %d", fileStats.OverwriteOps)
	}
	if p.TotalWrite != 1224 {
		t.Fatalf("total write = %d", p.TotalWrite)
	}
	if p.ByPrim[vfs.PrimWrite] != 4 {
		t.Fatalf("write prim count = %d", p.ByPrim[vfs.PrimWrite])
	}
}

func TestProfileRender(t *testing.T) {
	rec := NewRecorder(vfs.NewMemFS())
	vfs.WriteFile(rec, "/x", []byte("abc"))
	out := Analyze(rec.Log()).Render()
	if !strings.Contains(out, "/x") || !strings.Contains(out, "writes=1") {
		t.Fatalf("render:\n%s", out)
	}
}

// TestProfileNyxWorkload profiles the real Nyx writer and checks the
// pattern the campaign design assumes: device-block-sized sequential data
// writes followed by one big metadata write.
func TestProfileNyxWorkload(t *testing.T) {
	sim := nyx.DefaultSim()
	sim.N = 24
	sim.NumHalos = 4
	field := sim.Generate()
	rec := NewRecorder(vfs.NewMemFS())
	rec.MkdirAll("/plt00000")
	if err := nyx.WriteDataset(rec, "/plt00000/d.h5", field, sim.N); err != nil {
		t.Fatal(err)
	}
	p := Analyze(rec.Log())
	fileStats := p.Files["/plt00000/d.h5"]
	wantData := 24 * 24 * 24 * 8
	if fileStats.WriteBytes < int64(wantData) {
		t.Fatalf("write bytes = %d, want >= %d", fileStats.WriteBytes, wantData)
	}
	// The dominant write size must be the 4 KiB device block.
	if p.WriteSizes.Counts[8] == 0 { // bin [4096,4608)
		t.Fatalf("no 4 KiB writes recorded: %v", p.WriteSizes.Counts)
	}
}

func TestReplayWritesReproducesShape(t *testing.T) {
	// Record a pattern, replay it onto a fresh FS, and compare file
	// sizes (payloads differ by design).
	src := NewRecorder(vfs.NewMemFS())
	src.MkdirAll("/a")
	f, _ := src.Create("/a/data")
	f.Write(make([]byte, 1000))
	f.WriteAt(make([]byte, 500), 2000)
	f.Close()

	dst := vfs.NewMemFS()
	if err := ReplayWrites(src.Log(), dst); err != nil {
		t.Fatal(err)
	}
	info, err := dst.Stat("/a/data")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 2500 {
		t.Fatalf("replayed size = %d, want 2500", info.Size)
	}
}

func TestReplayWithoutCreateUsesAppend(t *testing.T) {
	log := []Op{
		{Seq: 0, Primitive: vfs.PrimWrite, Path: "/implicit", Offset: -1, Size: 10},
	}
	dst := vfs.NewMemFS()
	if err := ReplayWrites(log, dst); err != nil {
		t.Fatal(err)
	}
	info, err := dst.Stat("/implicit")
	if err != nil || info.Size != 10 {
		t.Fatalf("%v %+v", err, info)
	}
}
