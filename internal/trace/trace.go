// Package trace implements the I/O pattern profiler of the FFIS stack
// (Figure 2 of the paper names "I/O pattern profiler" as one of the three
// FFIS components): a vfs wrapper that records every file-system operation
// an application performs, plus analyses over the recorded pattern — write
// size distributions, per-file access statistics, and the primitive counts
// the fault injector needs to aim campaigns.
//
// Traces also support replay: a recorded write pattern can be re-executed
// against any vfs.FS, which the test suite uses to cross-validate backends.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// Op is one recorded file-system operation.
type Op struct {
	Seq       int           // global sequence number
	Primitive vfs.Primitive // which primitive executed
	Path      string        // target path
	Offset    int64         // file offset (write/read ops; -1 if sequential position unknown)
	Size      int           // payload size in bytes
	Err       bool          // the operation returned an error
}

func (o Op) String() string {
	return fmt.Sprintf("#%d %s %s off=%d size=%d err=%v",
		o.Seq, o.Primitive, o.Path, o.Offset, o.Size, o.Err)
}

// Recorder wraps an FS and appends every operation to an in-memory log.
type Recorder struct {
	inner vfs.FS

	mu  sync.Mutex
	log []Op
}

// NewRecorder wraps inner with operation recording.
func NewRecorder(inner vfs.FS) *Recorder { return &Recorder{inner: inner} }

// Log returns a copy of the recorded operations in sequence order.
func (r *Recorder) Log() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Op(nil), r.log...)
}

// Reset clears the log.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = nil
}

func (r *Recorder) record(p vfs.Primitive, path string, off int64, size int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = append(r.log, Op{
		Seq:       len(r.log),
		Primitive: p,
		Path:      path,
		Offset:    off,
		Size:      size,
		Err:       err != nil,
	})
}

// Create delegates and records.
func (r *Recorder) Create(name string) (vfs.File, error) {
	f, err := r.inner.Create(name)
	r.record(vfs.PrimCreate, vfs.Clean(name), -1, 0, err)
	if err != nil {
		return nil, err
	}
	return &recFile{File: f, r: r}, nil
}

// Open delegates and records.
func (r *Recorder) Open(name string) (vfs.File, error) {
	f, err := r.inner.Open(name)
	r.record(vfs.PrimOpen, vfs.Clean(name), -1, 0, err)
	if err != nil {
		return nil, err
	}
	return &recFile{File: f, r: r}, nil
}

// Append delegates and records.
func (r *Recorder) Append(name string) (vfs.File, error) {
	f, err := r.inner.Append(name)
	r.record(vfs.PrimOpen, vfs.Clean(name), -1, 0, err)
	if err != nil {
		return nil, err
	}
	return &recFile{File: f, r: r}, nil
}

// Mkdir delegates and records.
func (r *Recorder) Mkdir(name string) error {
	err := r.inner.Mkdir(name)
	r.record(vfs.PrimMkdir, vfs.Clean(name), -1, 0, err)
	return err
}

// MkdirAll delegates and records.
func (r *Recorder) MkdirAll(name string) error {
	err := r.inner.MkdirAll(name)
	r.record(vfs.PrimMkdir, vfs.Clean(name), -1, 0, err)
	return err
}

// Remove delegates and records.
func (r *Recorder) Remove(name string) error {
	err := r.inner.Remove(name)
	r.record(vfs.PrimRemove, vfs.Clean(name), -1, 0, err)
	return err
}

// RemoveAll delegates and records.
func (r *Recorder) RemoveAll(name string) error {
	err := r.inner.RemoveAll(name)
	r.record(vfs.PrimRemove, vfs.Clean(name), -1, 0, err)
	return err
}

// Rename delegates and records.
func (r *Recorder) Rename(oldName, newName string) error {
	err := r.inner.Rename(oldName, newName)
	r.record(vfs.PrimRename, vfs.Clean(oldName)+" -> "+vfs.Clean(newName), -1, 0, err)
	return err
}

// Stat delegates and records.
func (r *Recorder) Stat(name string) (vfs.FileInfo, error) {
	info, err := r.inner.Stat(name)
	r.record(vfs.PrimStat, vfs.Clean(name), -1, 0, err)
	return info, err
}

// ReadDir delegates and records.
func (r *Recorder) ReadDir(name string) ([]vfs.FileInfo, error) {
	infos, err := r.inner.ReadDir(name)
	r.record(vfs.PrimReadDir, vfs.Clean(name), -1, 0, err)
	return infos, err
}

// Mknod delegates and records.
func (r *Recorder) Mknod(name string, mode uint32, dev uint64) error {
	err := r.inner.Mknod(name, mode, dev)
	r.record(vfs.PrimMknod, vfs.Clean(name), -1, 0, err)
	return err
}

// Chmod delegates and records.
func (r *Recorder) Chmod(name string, mode uint32) error {
	err := r.inner.Chmod(name, mode)
	r.record(vfs.PrimChmod, vfs.Clean(name), -1, 0, err)
	return err
}

// Truncate delegates and records.
func (r *Recorder) Truncate(name string, size int64) error {
	err := r.inner.Truncate(name, size)
	r.record(vfs.PrimTruncate, vfs.Clean(name), int64(size), 0, err)
	return err
}

type recFile struct {
	vfs.File
	r *Recorder
}

func (f *recFile) Write(p []byte) (int, error) {
	off, seekErr := f.File.Seek(0, 1) // io.SeekCurrent
	if seekErr != nil {
		off = -1
	}
	n, err := f.File.Write(p)
	f.r.record(vfs.PrimWrite, f.File.Name(), off, len(p), err)
	return n, err
}

func (f *recFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.File.WriteAt(p, off)
	f.r.record(vfs.PrimWrite, f.File.Name(), off, len(p), err)
	return n, err
}

func (f *recFile) Read(p []byte) (int, error) {
	n, err := f.File.Read(p)
	f.r.record(vfs.PrimRead, f.File.Name(), -1, n, err)
	return n, err
}

func (f *recFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.File.ReadAt(p, off)
	f.r.record(vfs.PrimRead, f.File.Name(), off, n, err)
	return n, err
}

var (
	_ vfs.FS   = (*Recorder)(nil)
	_ vfs.File = (*recFile)(nil)
)

// Profile is the analysed I/O pattern of a trace.
type Profile struct {
	Ops        int
	ByPrim     map[vfs.Primitive]int
	Files      map[string]FileStats
	WriteSizes *stats.Histogram // write payload sizes, bins of 512 B up to 8 KiB
	TotalWrite int64
	TotalRead  int64
	Errors     int
}

// FileStats aggregates accesses to a single path.
type FileStats struct {
	Writes       int
	WriteBytes   int64
	Reads        int
	ReadBytes    int64
	Sequential   int // writes whose offset continued the previous write
	OverwriteOps int // writes strictly below the previously seen max offset
}

// Analyze computes the I/O pattern profile of a trace.
func Analyze(log []Op) *Profile {
	p := &Profile{
		ByPrim:     map[vfs.Primitive]int{},
		Files:      map[string]FileStats{},
		WriteSizes: stats.NewHistogram(0, 8192, 16),
	}
	lastEnd := map[string]int64{}
	maxEnd := map[string]int64{}
	for _, op := range log {
		p.Ops++
		p.ByPrim[op.Primitive]++
		if op.Err {
			p.Errors++
		}
		switch op.Primitive {
		case vfs.PrimWrite:
			fsStats := p.Files[op.Path]
			fsStats.Writes++
			fsStats.WriteBytes += int64(op.Size)
			if op.Offset >= 0 {
				if op.Offset == lastEnd[op.Path] {
					fsStats.Sequential++
				}
				if op.Offset < maxEnd[op.Path] {
					fsStats.OverwriteOps++
				}
				end := op.Offset + int64(op.Size)
				lastEnd[op.Path] = end
				if end > maxEnd[op.Path] {
					maxEnd[op.Path] = end
				}
			}
			p.Files[op.Path] = fsStats
			p.WriteSizes.Add(float64(op.Size))
			p.TotalWrite += int64(op.Size)
		case vfs.PrimRead:
			fsStats := p.Files[op.Path]
			fsStats.Reads++
			fsStats.ReadBytes += int64(op.Size)
			p.Files[op.Path] = fsStats
			p.TotalRead += int64(op.Size)
		}
	}
	return p
}

// Render prints the profile in the report form used by cmd tools.
func (p *Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "I/O pattern profile: %d ops, %d B written, %d B read, %d errors\n",
		p.Ops, p.TotalWrite, p.TotalRead, p.Errors)
	prims := make([]string, 0, len(p.ByPrim))
	for prim, n := range p.ByPrim {
		prims = append(prims, fmt.Sprintf("%s=%d", prim, n))
	}
	sort.Strings(prims)
	fmt.Fprintf(&b, "  primitives: %s\n", strings.Join(prims, " "))
	paths := make([]string, 0, len(p.Files))
	for path := range p.Files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		fsStats := p.Files[path]
		fmt.Fprintf(&b, "  %-40s writes=%d (%d B, %d seq, %d overwrite) reads=%d (%d B)\n",
			path, fsStats.Writes, fsStats.WriteBytes, fsStats.Sequential,
			fsStats.OverwriteOps, fsStats.Reads, fsStats.ReadBytes)
	}
	return b.String()
}

// ReplayWrites re-executes the write operations of a trace against fs with
// synthetic payloads (the byte value cycles with the sequence number).
// Non-write operations needed for structure (mkdir, create) are re-executed
// too; reads are skipped.
func ReplayWrites(log []Op, fs vfs.FS) error {
	handles := map[string]vfs.File{}
	defer func() {
		for _, h := range handles {
			h.Close()
		}
	}()
	for _, op := range log {
		switch op.Primitive {
		case vfs.PrimMkdir:
			if err := fs.MkdirAll(op.Path); err != nil {
				return err
			}
		case vfs.PrimCreate:
			h, err := fs.Create(op.Path)
			if err != nil {
				return err
			}
			if old, ok := handles[op.Path]; ok {
				old.Close()
			}
			handles[op.Path] = h
		case vfs.PrimWrite:
			h, ok := handles[op.Path]
			if !ok {
				var err error
				h, err = fs.Append(op.Path)
				if err != nil {
					return err
				}
				handles[op.Path] = h
			}
			payload := make([]byte, op.Size)
			for i := range payload {
				payload[i] = byte(op.Seq)
			}
			if op.Offset >= 0 {
				if _, err := h.WriteAt(payload, op.Offset); err != nil {
					return err
				}
			} else if _, err := h.Write(payload); err != nil {
				return err
			}
		}
	}
	return nil
}
