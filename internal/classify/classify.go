// Package classify defines the outcome taxonomy of a fault-injection run and
// the tallying/rendering helpers campaigns use to report results.
//
// The taxonomy follows Section II of the paper: an application failure is a
// run whose outcome differs from the expected one. If the run terminates
// early it is a crash; if the corruption is caught by the application or its
// post-analysis it is detected; if it silently alters the result it is
// silent data corruption (SDC); and if the output is bit-identical to the
// golden run the fault was benign.
package classify

import (
	"fmt"
	"sort"
	"strings"

	"ffis/internal/stats"
)

// Outcome is the classification of a single fault-injection run.
type Outcome int

// The four outcome classes used throughout the paper's evaluation.
const (
	// Benign: output bit-wise identical to the fault-free (golden) run.
	Benign Outcome = iota
	// SDC: output differs from golden yet passes the application's own
	// plausibility checks — silent data corruption.
	SDC
	// Detected: the application or its post-analysis flagged the run as
	// wrong (error reported, implausible result, empty catalog, ...).
	Detected
	// Crash: the application terminated before finishing (I/O error,
	// library exception, panic, missing output file).
	Crash
)

// Outcomes lists all outcome values in presentation order.
func Outcomes() []Outcome { return []Outcome{Benign, SDC, Detected, Crash} }

func (o Outcome) String() string {
	switch o {
	case Benign:
		return "benign"
	case SDC:
		return "SDC"
	case Detected:
		return "detected"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// ParseOutcome inverts Outcome.String, case-insensitively: the decoder used
// when persisted run records are loaded back from disk.
func ParseOutcome(s string) (Outcome, error) {
	for _, o := range Outcomes() {
		if strings.EqualFold(s, o.String()) {
			return o, nil
		}
	}
	return 0, fmt.Errorf("classify: unknown outcome %q", s)
}

// Tally accumulates outcome counts for one campaign cell
// (one application × one fault model).
type Tally struct {
	counts [4]int
}

// Add records one run outcome.
func (t *Tally) Add(o Outcome) {
	if o < Benign || o > Crash {
		panic(fmt.Sprintf("classify: invalid outcome %d", int(o)))
	}
	t.counts[o]++
}

// Merge adds every count from other into t.
func (t *Tally) Merge(other Tally) {
	for i := range t.counts {
		t.counts[i] += other.counts[i]
	}
}

// Count returns the number of runs recorded with outcome o.
func (t *Tally) Count(o Outcome) int { return t.counts[o] }

// Total returns the number of runs recorded.
func (t *Tally) Total() int {
	n := 0
	for _, c := range t.counts {
		n += c
	}
	return n
}

// Rate returns the observed proportion of outcome o with its sample size,
// ready for confidence-interval math.
func (t *Tally) Rate(o Outcome) stats.Proportion {
	return stats.Proportion{Successes: t.counts[o], Trials: t.Total()}
}

// String renders the tally in the compact "benign 91.1% | SDC 0.8% | ..."
// form used by cmd/ffis.
func (t *Tally) String() string {
	if t.Total() == 0 {
		return "(no runs)"
	}
	parts := make([]string, 0, 4)
	for _, o := range Outcomes() {
		parts = append(parts, fmt.Sprintf("%s %.1f%%", o, 100*t.Rate(o).P()))
	}
	return strings.Join(parts, " | ")
}

// Cell is a named tally, one row of a results table.
type Cell struct {
	Label string
	Tally Tally
}

// Table renders a set of campaign cells as an aligned text table with
// percentage columns for each outcome plus the 95% error bar on the SDC
// rate, mirroring how Figure 7 and Table III present results.
func Table(title string, cells []Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-18s %8s %8s %8s %8s %8s %12s\n",
		"cell", "runs", "benign", "SDC", "detect", "crash", "SDC 95% CI")
	for _, c := range cells {
		tt := c.Tally
		sdcLo, sdcHi := tt.Rate(SDC).Wilson95()
		fmt.Fprintf(&b, "%-18s %8d %7.1f%% %7.1f%% %7.1f%% %7.1f%% [%4.1f,%4.1f]%%\n",
			c.Label, tt.Total(),
			100*tt.Rate(Benign).P(), 100*tt.Rate(SDC).P(),
			100*tt.Rate(Detected).P(), 100*tt.Rate(Crash).P(),
			100*sdcLo, 100*sdcHi)
	}
	return b.String()
}

// rateCI renders one outcome's cell in the "rate ±halfwidth" form the
// adaptive-stopping surfaces use: the observed percentage with the Wilson
// 95% half-width that the stopping rule itself evaluates, so a table read
// next to a StopRule target is in the rule's own units.
func rateCI(t Tally, o Outcome) string {
	p := t.Rate(o)
	return fmt.Sprintf("%.1f ±%.1f%%", 100*p.P(), 100*p.WilsonHalfWidth95())
}

// TableCI renders cells as an aligned text table with every outcome column
// in "rate ±halfwidth" form (Wilson 95%), plus the per-cell run count —
// which under adaptive stopping differs between cells, making the n column
// load-bearing rather than decorative.
func TableCI(title string, cells []Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-18s %6s %13s %13s %13s %13s\n",
		"cell", "runs", "benign", "SDC", "detect", "crash")
	for _, c := range cells {
		tt := c.Tally
		fmt.Fprintf(&b, "%-18s %6d %13s %13s %13s %13s\n",
			c.Label, tt.Total(),
			rateCI(tt, Benign), rateCI(tt, SDC), rateCI(tt, Detected), rateCI(tt, Crash))
	}
	return b.String()
}

// CSVCI renders cells as comma-separated rows carrying, per outcome, the
// raw count plus the rate and Wilson 95% half-width as fractions — the
// machine-readable twin of TableCI.
func CSVCI(cells []Cell) string {
	var b strings.Builder
	b.WriteString("label,runs")
	for _, o := range Outcomes() {
		name := strings.ToLower(o.String())
		fmt.Fprintf(&b, ",%s,%s_rate,%s_hw95", name, name, name)
	}
	b.WriteString("\n")
	for _, c := range cells {
		tt := c.Tally
		fmt.Fprintf(&b, "%s,%d", QuoteCSV(c.Label), tt.Total())
		for _, o := range Outcomes() {
			p := tt.Rate(o)
			fmt.Fprintf(&b, ",%d,%.6f,%.6f", tt.Count(o), p.P(), p.WilsonHalfWidth95())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MarkdownCI renders cells as a GitHub-flavored Markdown table with every
// outcome column in "rate ±halfwidth" form (Wilson 95%) and the per-cell
// run count.
func MarkdownCI(title string, cells []Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", title)
	b.WriteString("| cell | runs | benign | SDC | detected | crash |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|\n")
	for _, c := range cells {
		tt := c.Tally
		label := strings.ReplaceAll(c.Label, "|", `\|`)
		fmt.Fprintf(&b, "| %s | %d | %s | %s | %s | %s |\n",
			label, tt.Total(),
			rateCI(tt, Benign), rateCI(tt, SDC), rateCI(tt, Detected), rateCI(tt, Crash))
	}
	return b.String()
}

// QuoteCSV renders one field per RFC 4180: fields containing a comma, a
// double quote, or a line break are wrapped in double quotes with embedded
// quotes doubled; everything else passes through verbatim. Every CSV
// surface (CSV here, the results report generator) goes through it so a
// cell label like `nyx,tiered` or `MT"2"` can never desynchronize columns.
func QuoteCSV(field string) string {
	if !strings.ContainsAny(field, ",\"\n\r") {
		return field
	}
	return `"` + strings.ReplaceAll(field, `"`, `""`) + `"`
}

// CSV renders cells as machine-readable comma-separated rows
// (label,runs,benign,sdc,detected,crash), with RFC 4180 quoting on the
// label field.
func CSV(cells []Cell) string {
	var b strings.Builder
	b.WriteString("label,runs,benign,sdc,detected,crash\n")
	for _, c := range cells {
		tt := c.Tally
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d\n", QuoteCSV(c.Label), tt.Total(),
			tt.Count(Benign), tt.Count(SDC), tt.Count(Detected), tt.Count(Crash))
	}
	return b.String()
}

// Markdown renders cells as a GitHub-flavored Markdown table in the Figure
// 7 / Table III layout — percentage columns per outcome plus the Wilson 95%
// interval on the SDC rate — for dropping campaign results straight into a
// writeup. Pipes in labels are escaped so a label can never break the row.
func Markdown(title string, cells []Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", title)
	b.WriteString("| cell | runs | benign | SDC | detected | crash | SDC 95% CI |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---|\n")
	for _, c := range cells {
		tt := c.Tally
		sdcLo, sdcHi := tt.Rate(SDC).Wilson95()
		label := strings.ReplaceAll(c.Label, "|", `\|`)
		fmt.Fprintf(&b, "| %s | %d | %.1f%% | %.1f%% | %.1f%% | %.1f%% | [%.1f, %.1f]%% |\n",
			label, tt.Total(),
			100*tt.Rate(Benign).P(), 100*tt.Rate(SDC).P(),
			100*tt.Rate(Detected).P(), 100*tt.Rate(Crash).P(),
			100*sdcLo, 100*sdcHi)
	}
	return b.String()
}

// GroupCells sorts cells by label for deterministic output.
func GroupCells(cells []Cell) []Cell {
	out := append([]Cell(nil), cells...)
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}
