package classify

import (
	"strings"
	"testing"
)

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		Benign:   "benign",
		SDC:      "SDC",
		Detected: "detected",
		Crash:    "crash",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), s)
		}
	}
	if !strings.Contains(Outcome(9).String(), "outcome") {
		t.Error("unknown outcome should self-describe")
	}
}

func TestOutcomesOrder(t *testing.T) {
	os := Outcomes()
	if len(os) != 4 || os[0] != Benign || os[3] != Crash {
		t.Fatalf("Outcomes() = %v", os)
	}
}

func TestTallyAddAndRates(t *testing.T) {
	var tl Tally
	for i := 0; i < 857; i++ {
		tl.Add(Benign)
	}
	for i := 0; i < 2; i++ {
		tl.Add(SDC)
	}
	for i := 0; i < 141; i++ {
		tl.Add(Crash)
	}
	if tl.Total() != 1000 {
		t.Fatalf("total = %d", tl.Total())
	}
	if got := tl.Rate(Benign).P(); got != 0.857 {
		t.Fatalf("benign rate = %v", got)
	}
	if got := tl.Rate(SDC).P(); got != 0.002 {
		t.Fatalf("sdc rate = %v", got)
	}
	if tl.Count(Detected) != 0 {
		t.Fatalf("detected = %d", tl.Count(Detected))
	}
}

func TestTallyMerge(t *testing.T) {
	var a, b Tally
	a.Add(Benign)
	a.Add(SDC)
	b.Add(SDC)
	b.Add(Crash)
	a.Merge(b)
	if a.Total() != 4 || a.Count(SDC) != 2 {
		t.Fatalf("merge result: %s", a.String())
	}
}

func TestTallyInvalidOutcomePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var tl Tally
	tl.Add(Outcome(17))
}

func TestTallyStringEmpty(t *testing.T) {
	var tl Tally
	if tl.String() != "(no runs)" {
		t.Fatalf("empty tally string = %q", tl.String())
	}
}

func TestTableRendering(t *testing.T) {
	var tl Tally
	tl.Add(Benign)
	tl.Add(SDC)
	out := Table("Figure 7", []Cell{{Label: "nyx/BF", Tally: tl}})
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "nyx/BF") {
		t.Fatalf("table output:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") {
		t.Fatalf("missing rates:\n%s", out)
	}
}

func TestCSVRendering(t *testing.T) {
	var tl Tally
	tl.Add(Crash)
	out := CSV([]Cell{{Label: "qmc/DW", Tally: tl}})
	if !strings.HasPrefix(out, "label,runs,") {
		t.Fatalf("csv header: %q", out)
	}
	if !strings.Contains(out, "qmc/DW,1,0,0,0,1") {
		t.Fatalf("csv row missing: %q", out)
	}
}

func TestGroupCellsSortsWithoutMutating(t *testing.T) {
	in := []Cell{{Label: "z"}, {Label: "a"}}
	out := GroupCells(in)
	if out[0].Label != "a" || out[1].Label != "z" {
		t.Fatal("not sorted")
	}
	if in[0].Label != "z" {
		t.Fatal("input mutated")
	}
}
