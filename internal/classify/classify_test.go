package classify

import (
	"strings"
	"testing"
)

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		Benign:   "benign",
		SDC:      "SDC",
		Detected: "detected",
		Crash:    "crash",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), s)
		}
	}
	if !strings.Contains(Outcome(9).String(), "outcome") {
		t.Error("unknown outcome should self-describe")
	}
}

func TestOutcomesOrder(t *testing.T) {
	os := Outcomes()
	if len(os) != 4 || os[0] != Benign || os[3] != Crash {
		t.Fatalf("Outcomes() = %v", os)
	}
}

func TestTallyAddAndRates(t *testing.T) {
	var tl Tally
	for i := 0; i < 857; i++ {
		tl.Add(Benign)
	}
	for i := 0; i < 2; i++ {
		tl.Add(SDC)
	}
	for i := 0; i < 141; i++ {
		tl.Add(Crash)
	}
	if tl.Total() != 1000 {
		t.Fatalf("total = %d", tl.Total())
	}
	if got := tl.Rate(Benign).P(); got != 0.857 {
		t.Fatalf("benign rate = %v", got)
	}
	if got := tl.Rate(SDC).P(); got != 0.002 {
		t.Fatalf("sdc rate = %v", got)
	}
	if tl.Count(Detected) != 0 {
		t.Fatalf("detected = %d", tl.Count(Detected))
	}
}

func TestTallyMerge(t *testing.T) {
	var a, b Tally
	a.Add(Benign)
	a.Add(SDC)
	b.Add(SDC)
	b.Add(Crash)
	a.Merge(b)
	if a.Total() != 4 || a.Count(SDC) != 2 {
		t.Fatalf("merge result: %s", a.String())
	}
}

func TestTallyInvalidOutcomePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var tl Tally
	tl.Add(Outcome(17))
}

func TestTallyStringEmpty(t *testing.T) {
	var tl Tally
	if tl.String() != "(no runs)" {
		t.Fatalf("empty tally string = %q", tl.String())
	}
}

func TestTableRendering(t *testing.T) {
	var tl Tally
	tl.Add(Benign)
	tl.Add(SDC)
	out := Table("Figure 7", []Cell{{Label: "nyx/BF", Tally: tl}})
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "nyx/BF") {
		t.Fatalf("table output:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") {
		t.Fatalf("missing rates:\n%s", out)
	}
}

func TestCSVRendering(t *testing.T) {
	var tl Tally
	tl.Add(Crash)
	out := CSV([]Cell{{Label: "qmc/DW", Tally: tl}})
	if !strings.HasPrefix(out, "label,runs,") {
		t.Fatalf("csv header: %q", out)
	}
	if !strings.Contains(out, "qmc/DW,1,0,0,0,1") {
		t.Fatalf("csv row missing: %q", out)
	}
}

func TestGroupCellsSortsWithoutMutating(t *testing.T) {
	in := []Cell{{Label: "z"}, {Label: "a"}}
	out := GroupCells(in)
	if out[0].Label != "a" || out[1].Label != "z" {
		t.Fatal("not sorted")
	}
	if in[0].Label != "z" {
		t.Fatal("input mutated")
	}
}

func TestQuoteCSV(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"has,comma", `"has,comma"`},
		{`has"quote`, `"has""quote"`},
		{"has\nnewline", "\"has\nnewline\""},
		{`both,"of`, `"both,""of"`},
	}
	for _, c := range cases {
		if got := QuoteCSV(c.in); got != c.want {
			t.Errorf("QuoteCSV(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestCSVQuotesHostileLabels pins the RFC 4180 fix: a label containing a
// comma or quote must stay one field instead of shifting every count
// column.
func TestCSVQuotesHostileLabels(t *testing.T) {
	var tl Tally
	tl.Add(SDC)
	out := CSV([]Cell{{Label: `nyx,tiered "hot"`, Tally: tl}})
	want := `"nyx,tiered ""hot""",1,0,1,0,0`
	if !strings.Contains(out, want) {
		t.Fatalf("csv row %q missing quoted label row %q", out, want)
	}
	// Every data row must still parse to exactly 6 fields.
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if len(rows) != 2 {
		t.Fatalf("rows: %q", rows)
	}
}

func TestParseOutcome(t *testing.T) {
	for _, o := range Outcomes() {
		got, err := ParseOutcome(o.String())
		if err != nil || got != o {
			t.Fatalf("ParseOutcome(%q) = %v, %v", o.String(), got, err)
		}
	}
	if got, err := ParseOutcome("sdc"); err != nil || got != SDC {
		t.Fatalf("case-insensitive parse failed: %v, %v", got, err)
	}
	if _, err := ParseOutcome("mystery"); err == nil {
		t.Fatal("unknown outcome must error")
	}
}

func TestMarkdownRendering(t *testing.T) {
	var tl Tally
	tl.Add(Benign)
	tl.Add(SDC)
	out := Markdown("demo", []Cell{{Label: "a|b", Tally: tl}})
	if !strings.Contains(out, "### demo") || !strings.Contains(out, "| runs |") {
		t.Fatalf("markdown output:\n%s", out)
	}
	if !strings.Contains(out, `a\|b`) {
		t.Fatalf("pipe in label must be escaped:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") {
		t.Fatalf("missing rates:\n%s", out)
	}
}
