package fits

import (
	"math"
	"testing"
	"testing/quick"

	"ffis/internal/stats"
	"ffis/internal/vfs"
)

func testImage(w, h int) *Image {
	im := New(w, h)
	im.CRVAL1, im.CRVAL2 = 12.5, -3.25
	for i := range im.Data {
		im.Data[i] = float64(i)*0.5 - 7
	}
	return im
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	im := testImage(17, 9)
	got, err := Decode(im.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 17 || got.Height != 9 {
		t.Fatalf("dims %dx%d", got.Width, got.Height)
	}
	if got.CRVAL1 != 12.5 || got.CRVAL2 != -3.25 {
		t.Fatalf("crval %v %v", got.CRVAL1, got.CRVAL2)
	}
	for i := range im.Data {
		if got.Data[i] != im.Data[i] {
			t.Fatalf("pixel %d: %v != %v", i, got.Data[i], im.Data[i])
		}
	}
}

func TestEncodeBlockAligned(t *testing.T) {
	raw := testImage(64, 64).Encode()
	if len(raw)%BlockSize != 0 {
		t.Fatalf("encoded length %d not block-aligned", len(raw))
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		w, h := r.Intn(20)+1, r.Intn(20)+1
		im := New(w, h)
		im.CRVAL1 = r.Float64() * 100
		im.CRVAL2 = -r.Float64() * 100
		for i := range im.Data {
			im.Data[i] = r.NormFloat64() * 1e6
		}
		got, err := Decode(im.Encode())
		if err != nil {
			return false
		}
		for i := range im.Data {
			if got.Data[i] != im.Data[i] {
				return false
			}
		}
		return got.Width == w && got.Height == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsCorruptHeader(t *testing.T) {
	raw := testImage(8, 8).Encode()
	cases := []struct {
		name string
		mut  func([]byte)
	}{
		{"simple flag", func(b []byte) { b[10+19] = 'F' }},
		{"bitpix", func(b []byte) { copy(b[80+10:], "      8             ") }},
		{"naxis1 garbage", func(b []byte) { b[3*80+25] = 'x' }},
		{"end card destroyed", func(b []byte) { copy(b[7*80:], "XXX") }},
		{"truncated data", nil},
	}
	for _, c := range cases {
		cp := append([]byte(nil), raw...)
		if c.mut != nil {
			c.mut(cp)
		} else {
			cp = cp[:len(cp)-BlockSize]
		}
		if _, err := Decode(cp); err == nil {
			t.Errorf("%s: corruption accepted", c.name)
		} else if !IsFormatError(err) {
			t.Errorf("%s: err = %v, want FormatError", c.name, err)
		}
	}
}

func TestDecodeTooShort(t *testing.T) {
	if _, err := Decode([]byte("SIMPLE")); err == nil {
		t.Fatal("short stream accepted")
	}
}

func TestBilinear(t *testing.T) {
	im := New(3, 3)
	// f(x,y) = x + 10y, exactly reproduced by bilinear interpolation.
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			im.Set(x, y, float64(x)+10*float64(y))
		}
	}
	v, ok := im.Bilinear(0.5, 0.5)
	if !ok || math.Abs(v-5.5) > 1e-12 {
		t.Fatalf("bilinear(0.5,0.5) = %v %v", v, ok)
	}
	v, ok = im.Bilinear(2, 2)
	if !ok || v != 22 {
		t.Fatalf("corner = %v %v", v, ok)
	}
	if _, ok := im.Bilinear(-0.1, 1); ok {
		t.Fatal("out of range accepted")
	}
	if _, ok := im.Bilinear(1, 2.01); ok {
		t.Fatal("out of range accepted")
	}
}

func TestWriteReadVFS(t *testing.T) {
	fs := vfs.NewMemFS()
	fs.MkdirAll("/raw")
	im := testImage(32, 16)
	if err := Write(fs, "/raw/t.fits", im); err != nil {
		t.Fatal(err)
	}
	got, err := Read(fs, "/raw/t.fits")
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 32 || got.Data[5] != im.Data[5] {
		t.Fatal("content mismatch")
	}
}

func TestWriteUsesBlockWrites(t *testing.T) {
	fs := vfs.NewCountingFS(vfs.NewMemFS())
	im := testImage(64, 64) // 32768 B data + 2880 header
	if err := Write(fs, "/t.fits", im); err != nil {
		t.Fatal(err)
	}
	raw := im.Encode()
	want := int64((len(raw) + BlockSize - 1) / BlockSize)
	if got := fs.Count(vfs.PrimWrite); got != want {
		t.Fatalf("writes = %d, want %d", got, want)
	}
}

func TestDecodeSurvivesDataBitFlips(t *testing.T) {
	// Bit flips in the data section must decode fine (values change,
	// format does not) — data corruption is silent at the FITS layer.
	raw := testImage(8, 8).Encode()
	raw[BlockSize+17] ^= 0x40
	im, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if im.Width != 8 {
		t.Fatal("dims changed")
	}
}
