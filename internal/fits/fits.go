// Package fits implements the subset of the Flexible Image Transport System
// (FITS) format the Montage proxy pipeline uses: single-HDU files with
// 80-character header cards in 2,880-byte blocks and big-endian float64
// (BITPIX = -64) image data, written through the vfs layer in
// 2,880-byte-block writes so that storage faults land on realistic
// device-write boundaries.
package fits

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"ffis/internal/vfs"
)

// BlockSize is the FITS logical record length.
const BlockSize = 2880

const cardLen = 80

// Image is a 2-D float64 image with the world-coordinate offset of its
// (0,0) pixel — the minimal WCS the mosaic pipeline needs.
type Image struct {
	Width, Height int
	// CRVAL1/CRVAL2: sky coordinates of pixel (0,0); fractional values
	// mean the tile grid is offset from the mosaic grid and reprojection
	// must resample.
	CRVAL1, CRVAL2 float64
	Data           []float64 // row-major, len = Width*Height
}

// New allocates a zero image.
func New(w, h int) *Image {
	return &Image{Width: w, Height: h, Data: make([]float64, w*h)}
}

// At returns the pixel at (x, y); it panics on out-of-range access.
func (im *Image) At(x, y int) float64 { return im.Data[y*im.Width+x] }

// Set stores the pixel at (x, y).
func (im *Image) Set(x, y int, v float64) { im.Data[y*im.Width+x] = v }

// Bilinear samples the image at fractional coordinates with bilinear
// interpolation; the boolean is false outside the valid domain.
func (im *Image) Bilinear(x, y float64) (float64, bool) {
	if x < 0 || y < 0 || x > float64(im.Width-1) || y > float64(im.Height-1) {
		return 0, false
	}
	x0, y0 := int(x), int(y)
	x1, y1 := x0+1, y0+1
	if x1 >= im.Width {
		x1 = x0
	}
	if y1 >= im.Height {
		y1 = y0
	}
	fx, fy := x-float64(x0), y-float64(y0)
	v00 := im.At(x0, y0)
	v10 := im.At(x1, y0)
	v01 := im.At(x0, y1)
	v11 := im.At(x1, y1)
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy, true
}

func card(key string, value string) []byte {
	c := fmt.Sprintf("%-8s= %20s", key, value)
	for len(c) < cardLen {
		c += " "
	}
	return []byte(c[:cardLen])
}

func endCard() []byte {
	c := "END"
	for len(c) < cardLen {
		c += " "
	}
	return []byte(c)
}

// Encode renders the image as a complete FITS byte stream.
func (im *Image) Encode() []byte {
	var hdr []byte
	hdr = append(hdr, card("SIMPLE", "T")...)
	hdr = append(hdr, card("BITPIX", "-64")...)
	hdr = append(hdr, card("NAXIS", "2")...)
	hdr = append(hdr, card("NAXIS1", strconv.Itoa(im.Width))...)
	hdr = append(hdr, card("NAXIS2", strconv.Itoa(im.Height))...)
	hdr = append(hdr, card("CRVAL1", strconv.FormatFloat(im.CRVAL1, 'f', 6, 64))...)
	hdr = append(hdr, card("CRVAL2", strconv.FormatFloat(im.CRVAL2, 'f', 6, 64))...)
	hdr = append(hdr, endCard()...)
	for len(hdr)%BlockSize != 0 {
		hdr = append(hdr, ' ')
	}
	data := make([]byte, ((im.Width*im.Height*8)+BlockSize-1)/BlockSize*BlockSize)
	for i, v := range im.Data {
		bits := math.Float64bits(v)
		base := i * 8
		// FITS is big-endian.
		for b := 0; b < 8; b++ {
			data[base+b] = byte(bits >> (8 * uint(7-b)))
		}
	}
	return append(hdr, data...)
}

// FormatError reports a malformed FITS stream (the Montage crash class).
type FormatError struct{ Msg string }

func (e *FormatError) Error() string { return "fits: " + e.Msg }

// Decode parses a FITS byte stream produced by Encode (or corrupted en
// route). Violations return *FormatError.
func Decode(raw []byte) (*Image, error) {
	if len(raw) < BlockSize {
		return nil, &FormatError{Msg: "file shorter than one header block"}
	}
	hdr := map[string]string{}
	end := false
	blocks := 0
	for !end {
		if (blocks+1)*BlockSize > len(raw) {
			return nil, &FormatError{Msg: "header END card missing"}
		}
		block := raw[blocks*BlockSize : (blocks+1)*BlockSize]
		for c := 0; c < BlockSize/cardLen; c++ {
			line := string(block[c*cardLen : (c+1)*cardLen])
			key := strings.TrimSpace(line[:8])
			if key == "END" {
				end = true
				break
			}
			if key == "" {
				continue
			}
			if len(line) < 10 || line[8] != '=' {
				return nil, &FormatError{Msg: "malformed card: " + strings.TrimSpace(line)}
			}
			hdr[key] = strings.TrimSpace(line[10:])
		}
		blocks++
	}
	if hdr["SIMPLE"] != "T" {
		return nil, &FormatError{Msg: "not a SIMPLE FITS file"}
	}
	if hdr["BITPIX"] != "-64" {
		return nil, &FormatError{Msg: "unsupported BITPIX " + hdr["BITPIX"]}
	}
	if hdr["NAXIS"] != "2" {
		return nil, &FormatError{Msg: "unsupported NAXIS " + hdr["NAXIS"]}
	}
	w, err := strconv.Atoi(hdr["NAXIS1"])
	if err != nil || w <= 0 || w > 1<<16 {
		return nil, &FormatError{Msg: "bad NAXIS1 " + hdr["NAXIS1"]}
	}
	h, err := strconv.Atoi(hdr["NAXIS2"])
	if err != nil || h <= 0 || h > 1<<16 {
		return nil, &FormatError{Msg: "bad NAXIS2 " + hdr["NAXIS2"]}
	}
	crval1, err := strconv.ParseFloat(hdr["CRVAL1"], 64)
	if err != nil {
		return nil, &FormatError{Msg: "bad CRVAL1 " + hdr["CRVAL1"]}
	}
	crval2, err := strconv.ParseFloat(hdr["CRVAL2"], 64)
	if err != nil {
		return nil, &FormatError{Msg: "bad CRVAL2 " + hdr["CRVAL2"]}
	}
	need := blocks*BlockSize + w*h*8
	if len(raw) < need {
		return nil, &FormatError{Msg: fmt.Sprintf("data truncated: need %d bytes, have %d", need, len(raw))}
	}
	im := &Image{Width: w, Height: h, CRVAL1: crval1, CRVAL2: crval2, Data: make([]float64, w*h)}
	base := blocks * BlockSize
	for i := range im.Data {
		var bits uint64
		off := base + i*8
		for b := 0; b < 8; b++ {
			bits = bits<<8 | uint64(raw[off+b])
		}
		im.Data[i] = math.Float64frombits(bits)
	}
	return im, nil
}

// Write persists the image at path in BlockSize-sized writes — the
// realistic write pattern fault campaigns interpose on.
func Write(fs vfs.FS, path string, im *Image) error {
	raw := im.Encode()
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for off := 0; off < len(raw); off += BlockSize {
		endOff := off + BlockSize
		if endOff > len(raw) {
			endOff = len(raw)
		}
		if _, err := f.Write(raw[off:endOff]); err != nil {
			return err
		}
	}
	return f.Sync()
}

// Read loads and parses a FITS file from the file system.
func Read(fs vfs.FS, path string) (*Image, error) {
	raw, err := vfs.ReadFile(fs, path)
	if err != nil {
		return nil, err
	}
	return Decode(raw)
}

// IsFormatError reports whether err is a FITS format violation.
func IsFormatError(err error) bool {
	_, ok := err.(*FormatError)
	return ok
}
