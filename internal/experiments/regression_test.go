package experiments

import (
	"fmt"
	"sort"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/core"
)

// The fault-model API redesign (closed FaultModel enum → Model interface +
// registry) must not change a single campaign outcome: the goldens below
// are the tallies the pre-redesign enum implementation produced for the six
// original models on the MT2 pipeline workload under pinned seeds, on both
// a flat and a tiered world, at workers 1 and 8. Dispatching through the
// Model interface preserves the claim order and every RNG draw, so each
// row must stay bit-identical. If a deliberate behavior change ever
// invalidates these, re-capture them with the harness below — never adjust
// a single row by hand.
var enumGoldenTallies = []string{
	"BF flat workers=1 targets=100 benign=32 sdc=6 detected=1 crash=1",
	"BF flat workers=8 targets=100 benign=32 sdc=6 detected=1 crash=1",
	"BF tiered workers=1 targets=100 benign=32 sdc=6 detected=1 crash=1",
	"BF tiered workers=8 targets=100 benign=32 sdc=6 detected=1 crash=1",
	"SW flat workers=1 targets=100 benign=18 sdc=20 detected=2 crash=0",
	"SW flat workers=8 targets=100 benign=18 sdc=20 detected=2 crash=0",
	"SW tiered workers=1 targets=100 benign=18 sdc=20 detected=2 crash=0",
	"SW tiered workers=8 targets=100 benign=18 sdc=20 detected=2 crash=0",
	"DW flat workers=1 targets=100 benign=0 sdc=20 detected=2 crash=18",
	"DW flat workers=8 targets=100 benign=0 sdc=20 detected=2 crash=18",
	"DW tiered workers=1 targets=100 benign=0 sdc=20 detected=2 crash=18",
	"DW tiered workers=8 targets=100 benign=0 sdc=20 detected=2 crash=18",
	"RB flat workers=1 targets=44 benign=28 sdc=3 detected=6 crash=3",
	"RB flat workers=8 targets=44 benign=28 sdc=3 detected=6 crash=3",
	"RB tiered workers=1 targets=44 benign=28 sdc=3 detected=6 crash=3",
	"RB tiered workers=8 targets=44 benign=28 sdc=3 detected=6 crash=3",
	"UR flat workers=1 targets=44 benign=0 sdc=0 detected=0 crash=40",
	"UR flat workers=8 targets=44 benign=0 sdc=0 detected=0 crash=40",
	"UR tiered workers=1 targets=44 benign=0 sdc=0 detected=0 crash=40",
	"UR tiered workers=8 targets=44 benign=0 sdc=0 detected=0 crash=40",
	"LC flat workers=1 targets=44 benign=28 sdc=2 detected=7 crash=3",
	"LC flat workers=8 targets=44 benign=28 sdc=2 detected=7 crash=3",
	"LC tiered workers=1 targets=44 benign=28 sdc=2 detected=7 crash=3",
	"LC tiered workers=8 targets=44 benign=28 sdc=2 detected=7 crash=3",
}

// TestEnumEquivalenceRegression replays the pre-redesign capture: the six
// original models, resolved purely through the registry, must reproduce
// the enum implementation's tallies bit for bit.
func TestEnumEquivalenceRegression(t *testing.T) {
	o := Options{Runs: 40, Seed: 20260729}
	// The original Table I vocabulary plus its PR-3 read extension, in the
	// capture's row order, resolved by name — no compile-time model refs.
	modelNames := []string{
		"bit-flip", "shorn-write", "dropped-write",
		"read-bit-flip", "unreadable-sector", "latent-corruption",
	}
	layout, err := TierLayout("MT2")
	if err != nil {
		t.Fatal(err)
	}
	scratch := append([]string(nil), layout.Tiers[TierScratch]...)
	sort.Strings(scratch)

	var rows []string
	for _, name := range modelNames {
		m, err := core.ParseModel(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, placement := range []string{"flat", "tiered"} {
			for _, workers := range []int{1, 8} {
				w, err := NewPipelineWorkload("MT2", o)
				if err != nil {
					t.Fatal(err)
				}
				cfg := core.CampaignConfig{
					Fault:   core.Config{Model: m},
					Runs:    o.Runs,
					Seed:    o.Seed,
					Workers: workers,
				}
				if placement == "tiered" {
					w.NewFS = layout.NewFS
					cfg.ArmMounts = scratch
				}
				res, err := core.Campaign(cfg, w)
				if err != nil {
					t.Fatalf("%s/%s/w%d: %v", m.Short(), placement, workers, err)
				}
				rows = append(rows, fmt.Sprintf(
					"%s %s workers=%d targets=%d benign=%d sdc=%d detected=%d crash=%d",
					m.Short(), placement, workers, res.ProfileCount,
					res.Tally.Count(classify.Benign), res.Tally.Count(classify.SDC),
					res.Tally.Count(classify.Detected), res.Tally.Count(classify.Crash)))
			}
		}
	}
	if len(rows) != len(enumGoldenTallies) {
		t.Fatalf("produced %d rows, golden has %d", len(rows), len(enumGoldenTallies))
	}
	for i, row := range rows {
		if row != enumGoldenTallies[i] {
			t.Errorf("campaign diverged from the enum implementation:\n  got  %s\n  want %s", row, enumGoldenTallies[i])
		}
	}
}
