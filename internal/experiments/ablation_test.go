package experiments

import (
	"strings"
	"testing"
)

func TestAblationsRender(t *testing.T) {
	o := smallOpts()
	o.Runs = 4
	out, err := Ablations(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flip2", "flip4", "keep3of8", "keep7of8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation table missing %q:\n%s", want, out)
		}
	}
}

func TestFig7WithDetectorMovesSDCToDetected(t *testing.T) {
	o := smallOpts()
	o.Runs = 10
	out, err := Fig7WithDetector(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "nyx/DW") || !strings.Contains(out, "nyx/DW+avg") {
		t.Fatalf("table missing cells:\n%s", out)
	}
	// The DW+avg row must show 0.0% SDC (all flagged by the detector);
	// the plain DW row must show a dominant SDC share.
	var plainSDC, avgSDC string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "nyx/DW+avg") {
			avgSDC = line
		} else if strings.HasPrefix(line, "nyx/DW") {
			plainSDC = line
		}
	}
	if !strings.Contains(avgSDC, " 0.0%") {
		t.Fatalf("avg-detector row still has SDC: %s", avgSDC)
	}
	if strings.Contains(plainSDC, "   0.0%    0.0%") {
		t.Fatalf("plain DW row shows no corruption: %s", plainSDC)
	}
}
