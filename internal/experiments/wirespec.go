package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ffis/internal/core"
)

// WireSpec is the serializable form of one campaign cell: everything a
// remote worker needs to rebuild the exact core.CampaignSpec the
// coordinator is leasing out. Only statically nameable campaign identity
// crosses the wire — cell, model, run budget, seed, world shape — never
// live objects; both sides resolve the spec through the same
// CampaignSpec() builder, so a worker's world, profile pass, and record
// stream are bit-identical to a local run of the same grid.
//
// Adaptive stopping deliberately has no wire form: a stopping rule needs
// the complete outcome prefix to evaluate, which a re-leased spec only
// holds on the coordinator. Distributed campaigns are fixed-budget, the
// same restriction sharding already imposes.
type WireSpec struct {
	// Key names the spec inside the results store. Empty defaults to the
	// grid convention "<cell>/<model short name>".
	Key string `json:"key,omitempty"`
	// Cell is the Figure 7 cell name ("nyx", "qmcpack", "MT1".."MT4").
	Cell string `json:"cell"`
	// Model is the registered fault model name (e.g. "bit-flip").
	Model string `json:"model"`
	Runs  int    `json:"runs"`
	Seed  uint64 `json:"seed"`
	// Shots overrides the model's shot budget (0 = model default).
	Shots int `json:"shots,omitempty"`
	// NyxN overrides the Nyx grid edge (0 = DefaultSim).
	NyxN int `json:"nyx_n,omitempty"`
	// Backend is the flat world's storage backend grammar string
	// ("" = "mem"). Ignored when Mounts is set.
	Backend string `json:"backend,omitempty"`
	// Mounts, when non-empty, builds a MountFS world from these
	// "dir[=backend]" mount specs instead of a flat world.
	Mounts []string `json:"mounts,omitempty"`
	// ArmMounts restricts injection to I/O routed to these mount points.
	ArmMounts []string `json:"arm_mounts,omitempty"`
	// Pipeline selects the producer→consumer pipeline variant of the cell's
	// workload. Read-path models force it regardless: the standard phases
	// only write, so a read fault would have no instance to land on.
	Pipeline bool `json:"pipeline,omitempty"`
	// WorldKey groups specs that share a built world onto one snapshot and
	// one profile pass. Empty derives it from the cell and world shape.
	WorldKey string `json:"world_key,omitempty"`
}

// Normalized fills the derived fields (Key, WorldKey) from the grid
// conventions. Both the coordinator and the worker normalize before use,
// so the two sides always agree on store keys and world grouping.
func (ws WireSpec) Normalized() WireSpec {
	if ws.Key == "" {
		short := ws.Model
		if m, ok := core.Lookup(ws.Model); ok {
			short = m.Short()
		}
		ws.Key = ws.Cell + "/" + short
	}
	if ws.WorldKey == "" {
		ws.WorldKey = ws.Cell
		if ws.Pipeline {
			// A pipeline variant runs a different Setup than the standard
			// cell, so it must never share the standard cell's snapshot.
			ws.WorldKey += "@pipe"
		}
		if len(ws.Mounts) > 0 {
			for _, m := range ws.Mounts {
				ws.WorldKey += "+" + m
			}
		} else if ws.Backend != "" && ws.Backend != "mem" {
			ws.WorldKey += "@" + ws.Backend
		}
	}
	return ws
}

// Validate checks the statically checkable parts of the spec: registered
// model, parseable world grammar, positive run budget. World construction
// itself (unknown cells, bad Nyx geometry) surfaces from CampaignSpec.
func (ws WireSpec) Validate() error {
	if ws.Cell == "" {
		return fmt.Errorf("experiments: wire spec has no cell")
	}
	if _, ok := core.Lookup(ws.Model); !ok {
		return fmt.Errorf("experiments: wire spec %q: unregistered fault model %q", ws.Normalized().Key, ws.Model)
	}
	if ws.Runs <= 0 {
		return fmt.Errorf("experiments: wire spec %q: runs must be positive, got %d", ws.Normalized().Key, ws.Runs)
	}
	if ws.Backend != "" {
		if err := ValidateBackend(ws.Backend); err != nil {
			return fmt.Errorf("experiments: wire spec %q: %w", ws.Normalized().Key, err)
		}
	}
	if _, err := ParseMountSpecs(ws.Mounts); err != nil {
		return fmt.Errorf("experiments: wire spec %q: %w", ws.Normalized().Key, err)
	}
	return nil
}

// CampaignSpec rebuilds the executable campaign spec this wire form
// describes. This is the single canonical builder — the worker runs what
// it returns, and the coordinator validates incoming record headers
// against it — so "same WireSpec" means "same campaign" by construction.
func (ws WireSpec) CampaignSpec() (core.CampaignSpec, error) {
	if err := ws.Validate(); err != nil {
		return core.CampaignSpec{}, err
	}
	ws = ws.Normalized()
	model, _ := core.Lookup(ws.Model)
	o := Options{
		Runs:      ws.Runs,
		Seed:      ws.Seed,
		Shots:     ws.Shots,
		NyxN:      ws.NyxN,
		Backend:   ws.Backend,
		ArmMounts: ws.ArmMounts,
	}
	if len(ws.Mounts) > 0 {
		mounts, err := ParseMountSpecs(ws.Mounts)
		if err != nil {
			return core.CampaignSpec{}, err
		}
		o.Mounts = mounts
	}
	var w core.Workload
	var err error
	if ws.Pipeline || core.IsRead(model) {
		w, err = NewPipelineWorkload(ws.Cell, o)
		if err == nil {
			if newFS := o.worldFS(); newFS != nil {
				w.NewFS = newFS
			}
		}
	} else {
		w, err = NewWorkload(ws.Cell, o)
	}
	if err != nil {
		return core.CampaignSpec{}, fmt.Errorf("experiments: wire spec %q: %w", ws.Key, err)
	}
	spec := fig7Spec(ws.Cell, w, model, o)
	spec.Key = ws.Key
	spec.WorldKey = ws.WorldKey
	return spec, nil
}

// ParseWireSpecs reads a spec grid from r: either one JSON array of
// WireSpecs or a JSONL stream of one spec object per line. Specs are
// normalized and validated; duplicate keys are an error because the store
// keeps one record stream per key.
func ParseWireSpecs(r io.Reader) ([]WireSpec, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: read wire specs: %w", err)
	}
	var specs []WireSpec
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(trimmed, &specs); err != nil {
			return nil, fmt.Errorf("experiments: parse wire specs: %w", err)
		}
	} else {
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		for dec.More() {
			var ws WireSpec
			if err := dec.Decode(&ws); err != nil {
				return nil, fmt.Errorf("experiments: parse wire specs: %w", err)
			}
			specs = append(specs, ws)
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("experiments: wire spec input holds no specs")
	}
	seen := map[string]bool{}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
		specs[i] = specs[i].Normalized()
		if seen[specs[i].Key] {
			return nil, fmt.Errorf("experiments: duplicate wire spec key %q", specs[i].Key)
		}
		seen[specs[i].Key] = true
	}
	return specs, nil
}

// Fig7WireGrid generates the full Figure 7 characterization grid (every
// cell × every Table I write model) in wire form — the default campaign a
// coordinator serves when launched without a spec file.
func Fig7WireGrid(runs int, seed uint64) []WireSpec {
	var specs []WireSpec
	for _, cell := range Fig7Cells {
		for _, m := range Fig7Models() {
			specs = append(specs, WireSpec{
				Cell:  cell,
				Model: m.Name(),
				Runs:  runs,
				Seed:  seed,
			}.Normalized())
		}
	}
	return specs
}
