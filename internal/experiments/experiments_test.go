package experiments

import (
	"strings"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/core"
)

// smallOpts keeps the experiment harness tests fast: tiny grid, few runs,
// strided metadata sweep.
func smallOpts() Options {
	return Options{
		Runs:       6,
		Seed:       2021,
		NyxN:       24,
		MetaStride: 13,
	}
}

func TestTable1ListsAllModels(t *testing.T) {
	out := Table1()
	for _, want := range []string{"bit-flip", "shorn-write", "dropped-write", "FFIS_write", "FFIS_mknod"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTable2ListsAllApps(t *testing.T) {
	out := Table2()
	for _, want := range []string{"Nyx", "QMCPACK", "Montage"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestTable3Small(t *testing.T) {
	out, res, err := Table3(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table III") {
		t.Fatal("missing title")
	}
	if res.Tally.Total() == 0 {
		t.Fatal("no cases")
	}
}

func TestTable4Small(t *testing.T) {
	out, effects, err := Table4(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) != 6 || !strings.Contains(out, "Exponent Bias") {
		t.Fatalf("table 4: %d effects\n%s", len(effects), out)
	}
}

func TestNewWorkloadAllCells(t *testing.T) {
	for _, cell := range Fig7Cells {
		w, err := NewWorkload(cell, smallOpts())
		if err != nil {
			t.Fatalf("%s: %v", cell, err)
		}
		if w.Name == "" || w.Run == nil || w.Classify == nil {
			t.Fatalf("%s: incomplete workload", cell)
		}
	}
	if _, err := NewWorkload("bogus", smallOpts()); err == nil {
		t.Fatal("bogus cell accepted")
	}
}

func TestFig7CellNyxDW(t *testing.T) {
	res, err := Fig7Cell("nyx", core.DroppedWrite, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Count(classify.Benign) != 0 {
		t.Fatalf("nyx/DW produced benign: %s", res.Tally.String())
	}
}

func TestFig5Renders(t *testing.T) {
	out, images, err := Fig5(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"original", "exponent-bias", "ard-shift"} {
		img, ok := images[key]
		if !ok || len(img) == 0 {
			t.Fatalf("missing image %q", key)
		}
		if !strings.HasPrefix(string(img), "P5\n") {
			t.Fatalf("%s is not a PGM", key)
		}
	}
	if !strings.Contains(out, "exponent-bias") {
		t.Fatal("summary incomplete")
	}
}

func TestFig6Renders(t *testing.T) {
	out, err := Fig6(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "candidates") {
		t.Fatalf("summary: %s", out)
	}
}

func TestFig8Renders(t *testing.T) {
	out, err := Fig8(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 8", "original", "faulty", "average-value detector"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig9Renders(t *testing.T) {
	out, images, err := Fig9(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := images["faulty"]; !ok {
		t.Fatal("missing faulty mosaic")
	}
	if !strings.Contains(out, "detected") {
		t.Fatalf("summary: %s", out)
	}
}
