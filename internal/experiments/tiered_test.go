package experiments

import (
	"strings"
	"testing"

	"ffis/internal/core"
)

// TestTieredSweepTwoWorkloads is the scenario acceptance test: the sweep
// produces a per-placement outcome table for two workloads, and placements
// behave as the storage layout dictates — nyx writes plotfiles to scratch
// (so scratch-only has targets and output-only has none), while Montage's
// stage 4 writes the mosaic to the output tier (the reverse).
func TestTieredSweepTwoWorkloads(t *testing.T) {
	o := smallOpts()
	out, results, err := Tiered([]string{"nyx", "MT4"}, core.DroppedWrite, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*len(Placements) {
		t.Fatalf("got %d placement rows; want %d", len(results), 2*len(Placements))
	}
	byKey := map[string]PlacementResult{}
	for _, r := range results {
		byKey[r.Cell+"/"+r.Placement] = r
	}

	// All-armed placements must behave like classic campaigns: every run
	// tallied, targets available.
	for _, cell := range []string{"nyx", "MT4"} {
		r := byKey[cell+"/all-armed"]
		if r.NoTargets || r.Tally.Total() != o.Runs {
			t.Fatalf("%s all-armed: NoTargets=%v total=%d; want %d tallied runs",
				cell, r.NoTargets, r.Tally.Total(), o.Runs)
		}
	}

	// nyx: simulation writes route to the scratch tier only.
	if r := byKey["nyx/scratch-only"]; r.NoTargets || r.ProfileCount == 0 {
		t.Fatalf("nyx scratch-only should have injectable I/O: %+v", r)
	}
	if r := byKey["nyx/output-only"]; !r.NoTargets {
		t.Fatalf("nyx output-only should have no injectable I/O: %+v", r)
	}

	// MT4: the mosaic stage writes to the output tier only.
	if r := byKey["MT4/output-only"]; r.NoTargets || r.ProfileCount == 0 {
		t.Fatalf("MT4 output-only should have injectable I/O: %+v", r)
	}
	if r := byKey["MT4/scratch-only"]; !r.NoTargets {
		t.Fatalf("MT4 scratch-only should have no injectable I/O: %+v", r)
	}

	// The rendered table carries every placement row.
	for _, want := range []string{"workload", "all-armed", "scratch-only", "output-only",
		"nyx", "MT4", "no injectable I/O"} {
		if !strings.Contains(out, want) {
			t.Errorf("tiered table missing %q:\n%s", want, out)
		}
	}
}

// TestTieredScratchArmedMatchesAllForNyx pins the routing equivalence: for
// a workload whose entire instrumented I/O lives on one tier, arming that
// tier is the same experiment as arming the world — identical target
// counts, and with the same seed an identical tally.
func TestTieredScratchArmedMatchesAllForNyx(t *testing.T) {
	o := smallOpts()
	_, results, err := Tiered([]string{"nyx"}, core.BitFlip, o)
	if err != nil {
		t.Fatal(err)
	}
	var all, scratch PlacementResult
	for _, r := range results {
		switch r.Placement {
		case "all-armed":
			all = r
		case "scratch-only":
			scratch = r
		}
	}
	if all.ProfileCount != scratch.ProfileCount {
		t.Fatalf("profile counts differ: all=%d scratch=%d", all.ProfileCount, scratch.ProfileCount)
	}
	if all.Tally != scratch.Tally {
		t.Fatalf("tallies differ: all=%v scratch=%v", all.Tally, scratch.Tally)
	}
}

// TestTieredBackendSweepDeterminism is the backend-sweep acceptance test:
// one cell swept over {MemFS, ObjectFS, latency-modeled MemFS} runs through
// the engine with tallies — and simulated time — independent of the worker
// count, latency rows carry nonzero simulated time, and the unmodeled
// backends stay at zero so their persisted records keep their legacy bytes.
func TestTieredBackendSweepDeterminism(t *testing.T) {
	run := func(jobs int) []PlacementResult {
		o := smallOpts()
		o.Backends = []string{"mem", "object", "latency"}
		o.Jobs = jobs
		_, results, err := Tiered([]string{"MT2"}, core.DroppedWrite, o)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	serial, parallel := run(1), run(8)
	if len(serial) != 3*len(Placements) {
		t.Fatalf("got %d rows; want %d", len(serial), 3*len(Placements))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Backend != b.Backend || a.Placement != b.Placement ||
			a.ProfileCount != b.ProfileCount || a.Tally != b.Tally || a.SimNanos != b.SimNanos {
			t.Errorf("row %d diverges across worker counts:\n  1 worker:  %+v\n  8 workers: %+v", i, a, b)
		}
		switch {
		case a.Backend == "latency" && !a.NoTargets && a.SimNanos == 0:
			t.Errorf("latency row %s/%s has zero simulated time", a.Cell, a.Placement)
		case a.Backend != "latency" && a.SimNanos != 0:
			t.Errorf("%s row %s/%s has simulated time %d; want 0", a.Backend, a.Cell, a.Placement, a.SimNanos)
		}
	}
}

func TestParseMountSpec(t *testing.T) {
	for _, tc := range []struct {
		in      string
		path    string
		backend string
		wantErr bool
	}{
		{in: "/scratch", path: "/scratch", backend: "mem"},
		{in: "/scratch=mem", path: "/scratch", backend: "mem"},
		{in: "/data=os:/tmp/x", path: "/data", backend: "os:/tmp/x"},
		{in: "/a/b/../c", path: "/a/c", backend: "mem"},
		{in: "/obj=object", path: "/obj", backend: "object"},
		{in: "/obj=object:lag=2", path: "/obj", backend: "object:lag=2"},
		{in: "/bb=latency:bb", path: "/bb", backend: "latency:bb"},
		{in: "/pfs=latency", path: "/pfs", backend: "latency"},
		{in: "relative", wantErr: true},
		{in: "/x=floppy", wantErr: true},
		{in: "/x=os:", wantErr: true},
		{in: "/x=object:lag=", wantErr: true},
		{in: "/x=object:lag=-1", wantErr: true},
		{in: "/x=latency:ssd", wantErr: true},
		{in: "=mem", wantErr: true},
	} {
		ms, err := ParseMountSpec(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseMountSpec(%q) = %+v; want error", tc.in, ms)
			}
			continue
		}
		if err != nil || ms.Path != tc.path || ms.Backend != tc.backend {
			t.Errorf("ParseMountSpec(%q) = %+v, %v; want {%s %s}", tc.in, ms, err, tc.path, tc.backend)
		}
	}
}

// TestNewWorkloadWithMounts checks the cmd/ffis wiring end to end: a cell
// on a custom mounted world, armed on one mount, still campaigns cleanly.
func TestNewWorkloadWithMounts(t *testing.T) {
	o := smallOpts()
	o.Mounts = []MountSpec{{Path: "/plt00000", Backend: "mem"}}
	o.ArmMounts = []string{"/plt00000"}
	res, err := Fig7Cell("nyx", core.DroppedWrite, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Total() != o.Runs {
		t.Fatalf("tally total = %d; want %d", res.Tally.Total(), o.Runs)
	}
}
