package experiments

import (
	"strings"
	"testing"

	"ffis/internal/core"
)

// TestTieredSweepTwoWorkloads is the scenario acceptance test: the sweep
// produces a per-placement outcome table for two workloads, and placements
// behave as the storage layout dictates — nyx writes plotfiles to scratch
// (so scratch-only has targets and output-only has none), while Montage's
// stage 4 writes the mosaic to the output tier (the reverse).
func TestTieredSweepTwoWorkloads(t *testing.T) {
	o := smallOpts()
	out, results, err := Tiered([]string{"nyx", "MT4"}, core.DroppedWrite, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*len(Placements) {
		t.Fatalf("got %d placement rows; want %d", len(results), 2*len(Placements))
	}
	byKey := map[string]PlacementResult{}
	for _, r := range results {
		byKey[r.Cell+"/"+r.Placement] = r
	}

	// All-armed placements must behave like classic campaigns: every run
	// tallied, targets available.
	for _, cell := range []string{"nyx", "MT4"} {
		r := byKey[cell+"/all-armed"]
		if r.NoTargets || r.Tally.Total() != o.Runs {
			t.Fatalf("%s all-armed: NoTargets=%v total=%d; want %d tallied runs",
				cell, r.NoTargets, r.Tally.Total(), o.Runs)
		}
	}

	// nyx: simulation writes route to the scratch tier only.
	if r := byKey["nyx/scratch-only"]; r.NoTargets || r.ProfileCount == 0 {
		t.Fatalf("nyx scratch-only should have injectable I/O: %+v", r)
	}
	if r := byKey["nyx/output-only"]; !r.NoTargets {
		t.Fatalf("nyx output-only should have no injectable I/O: %+v", r)
	}

	// MT4: the mosaic stage writes to the output tier only.
	if r := byKey["MT4/output-only"]; r.NoTargets || r.ProfileCount == 0 {
		t.Fatalf("MT4 output-only should have injectable I/O: %+v", r)
	}
	if r := byKey["MT4/scratch-only"]; !r.NoTargets {
		t.Fatalf("MT4 scratch-only should have no injectable I/O: %+v", r)
	}

	// The rendered table carries every placement row.
	for _, want := range []string{"workload", "all-armed", "scratch-only", "output-only",
		"nyx", "MT4", "no injectable I/O"} {
		if !strings.Contains(out, want) {
			t.Errorf("tiered table missing %q:\n%s", want, out)
		}
	}
}

// TestTieredScratchArmedMatchesAllForNyx pins the routing equivalence: for
// a workload whose entire instrumented I/O lives on one tier, arming that
// tier is the same experiment as arming the world — identical target
// counts, and with the same seed an identical tally.
func TestTieredScratchArmedMatchesAllForNyx(t *testing.T) {
	o := smallOpts()
	_, results, err := Tiered([]string{"nyx"}, core.BitFlip, o)
	if err != nil {
		t.Fatal(err)
	}
	var all, scratch PlacementResult
	for _, r := range results {
		switch r.Placement {
		case "all-armed":
			all = r
		case "scratch-only":
			scratch = r
		}
	}
	if all.ProfileCount != scratch.ProfileCount {
		t.Fatalf("profile counts differ: all=%d scratch=%d", all.ProfileCount, scratch.ProfileCount)
	}
	if all.Tally != scratch.Tally {
		t.Fatalf("tallies differ: all=%v scratch=%v", all.Tally, scratch.Tally)
	}
}

func TestParseMountSpec(t *testing.T) {
	for _, tc := range []struct {
		in      string
		path    string
		backend string
		wantErr bool
	}{
		{in: "/scratch", path: "/scratch", backend: "mem"},
		{in: "/scratch=mem", path: "/scratch", backend: "mem"},
		{in: "/data=os:/tmp/x", path: "/data", backend: "os:/tmp/x"},
		{in: "/a/b/../c", path: "/a/c", backend: "mem"},
		{in: "relative", wantErr: true},
		{in: "/x=floppy", wantErr: true},
		{in: "/x=os:", wantErr: true},
		{in: "=mem", wantErr: true},
	} {
		ms, err := ParseMountSpec(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseMountSpec(%q) = %+v; want error", tc.in, ms)
			}
			continue
		}
		if err != nil || ms.Path != tc.path || ms.Backend != tc.backend {
			t.Errorf("ParseMountSpec(%q) = %+v, %v; want {%s %s}", tc.in, ms, err, tc.path, tc.backend)
		}
	}
}

// TestNewWorkloadWithMounts checks the cmd/ffis wiring end to end: a cell
// on a custom mounted world, armed on one mount, still campaigns cleanly.
func TestNewWorkloadWithMounts(t *testing.T) {
	o := smallOpts()
	o.Mounts = []MountSpec{{Path: "/plt00000", Backend: "mem"}}
	o.ArmMounts = []string{"/plt00000"}
	res, err := Fig7Cell("nyx", core.DroppedWrite, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Total() != o.Runs {
		t.Fatalf("tally total = %d; want %d", res.Tally.Total(), o.Runs)
	}
}
