package experiments

import (
	"fmt"
	"os"
	"strings"

	"ffis/internal/vfs"
)

// MountSpec is a parsed mount-table entry from the command line. The
// accepted syntax (cmd/ffis -mount, repeatable) is
//
//	PATH[=BACKEND]
//
// where PATH is the absolute mount point and BACKEND is one of
//
//	mem      a fresh in-memory backend per campaign run (the default, and
//	         the only hermetic choice for statistical campaigns)
//	os:DIR   the host directory DIR via vfs.OSFS — state persists across
//	         runs, so cmd/ffis rejects it for campaigns; it exists for
//	         library-level one-shot inspection
//
// Examples: "/scratch", "/scratch=mem", "/data=os:/tmp/ffis-data".
type MountSpec struct {
	Path    string
	Backend string // "mem" or "os:DIR"
}

// ParseMountSpec parses one -mount flag value.
func ParseMountSpec(s string) (MountSpec, error) {
	path, backend := s, "mem"
	if i := strings.IndexByte(s, '='); i >= 0 {
		path, backend = s[:i], s[i+1:]
	}
	if path == "" || !strings.HasPrefix(path, "/") {
		return MountSpec{}, fmt.Errorf("experiments: mount spec %q: path must be absolute", s)
	}
	if backend != "mem" && !strings.HasPrefix(backend, "os:") {
		return MountSpec{}, fmt.Errorf("experiments: mount spec %q: backend must be mem or os:DIR", s)
	}
	if backend == "os:" {
		return MountSpec{}, fmt.Errorf("experiments: mount spec %q: os backend needs a directory", s)
	}
	return MountSpec{Path: vfs.Clean(path), Backend: backend}, nil
}

// ParseMountSpecs parses a list of -mount flag values.
func ParseMountSpecs(specs []string) ([]MountSpec, error) {
	out := make([]MountSpec, 0, len(specs))
	for _, s := range specs {
		ms, err := ParseMountSpec(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ms)
	}
	return out, nil
}

// NewFSFromSpecs returns a world constructor (core.Workload.NewFS) building
// a MountFS with a MemFS root and one backend per spec. Mem backends are
// fresh per call; os backends hand out the same host directory every run —
// they break the fresh-world-per-run assumption statistical campaigns rely
// on (cmd/ffis therefore refuses them) and exist for one-shot inspection.
func NewFSFromSpecs(specs []MountSpec) func() (vfs.FS, error) {
	return func() (vfs.FS, error) {
		m := vfs.NewMountFS(vfs.NewMemFS())
		for _, s := range specs {
			var backend vfs.FS
			if dir, ok := strings.CutPrefix(s.Backend, "os:"); ok {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					return nil, fmt.Errorf("experiments: mount %s: %w", s.Path, err)
				}
				backend = vfs.NewOSFS(dir)
			} else {
				backend = vfs.NewMemFS()
			}
			if err := m.Mount(s.Path, backend); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
}
