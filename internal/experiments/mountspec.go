package experiments

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"ffis/internal/vfs"
)

// MountSpec is a parsed mount-table entry from the command line. The
// accepted syntax (cmd/ffis -mount, repeatable) is
//
//	PATH[=BACKEND]
//
// where PATH is the absolute mount point and BACKEND is one of
//
//	mem          a fresh in-memory backend per campaign run (the default)
//	object       a fresh flat-key object store (vfs.ObjectFS): whole-object
//	             read-modify-write semantics, strong consistency
//	object:lag=N the object store with an eventual-consistency window — the
//	             next N opens after an overwrite observe the old object
//	latency      a latency-modeled MemFS (vfs.LatencyFS) billing a simulated
//	             clock at parallel-file-system rates
//	latency:bb   latency-modeled at burst-buffer rates
//	latency:pfs  latency-modeled at parallel-file-system rates (alias of
//	             latency)
//	os:DIR       the host directory DIR via vfs.OSFS — state persists across
//	             runs, so cmd/ffis rejects it for campaigns; it exists for
//	             library-level one-shot inspection
//
// Every backend except os:DIR is hermetic: a fresh instance per campaign
// run. Examples: "/scratch", "/scratch=latency:bb", "/data=object:lag=2".
type MountSpec struct {
	Path    string
	Backend string // "mem", "object[:lag=N]", "latency[:bb|:pfs]", or "os:DIR"
}

// ValidateBackend checks a backend name against the mount-spec vocabulary.
func ValidateBackend(b string) error {
	switch {
	case b == "mem", b == "object", b == "latency", b == "latency:bb", b == "latency:pfs":
		return nil
	case strings.HasPrefix(b, "object:lag="):
		n, err := strconv.Atoi(strings.TrimPrefix(b, "object:lag="))
		if err != nil || n < 0 {
			return fmt.Errorf("experiments: backend %q: lag must be a non-negative integer", b)
		}
		return nil
	case b == "os:":
		return fmt.Errorf("experiments: backend %q: os backend needs a directory", b)
	case strings.HasPrefix(b, "os:"):
		return nil
	}
	return fmt.Errorf("experiments: unknown backend %q (want mem, object[:lag=N], latency[:bb|:pfs], or os:DIR)", b)
}

// HermeticBackend reports whether a backend hands out fresh per-run state —
// the property statistical campaigns rely on. Only os:DIR is non-hermetic:
// it is one shared host directory mutated by every run.
func HermeticBackend(b string) bool { return !strings.HasPrefix(b, "os:") }

// NewBackendFS constructs one fresh backend instance by name.
func NewBackendFS(backend string) (vfs.FS, error) {
	if err := ValidateBackend(backend); err != nil {
		return nil, err
	}
	switch {
	case backend == "mem":
		return vfs.NewMemFS(), nil
	case backend == "object":
		return vfs.NewObjectFS(), nil
	case strings.HasPrefix(backend, "object:lag="):
		lag, _ := strconv.Atoi(strings.TrimPrefix(backend, "object:lag="))
		o := vfs.NewObjectFS()
		o.SetConsistencyLag(lag)
		return o, nil
	case backend == "latency", backend == "latency:pfs":
		return vfs.NewLatencyFS(vfs.NewMemFS(), vfs.ParallelFSModel), nil
	case backend == "latency:bb":
		return vfs.NewLatencyFS(vfs.NewMemFS(), vfs.BurstBufferModel), nil
	default: // os:DIR — validated above
		dir := strings.TrimPrefix(backend, "os:")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("experiments: backend %s: %w", backend, err)
		}
		return vfs.NewOSFS(dir), nil
	}
}

// ParseMountSpec parses one -mount flag value.
func ParseMountSpec(s string) (MountSpec, error) {
	path, backend := s, "mem"
	if i := strings.IndexByte(s, '='); i >= 0 {
		path, backend = s[:i], s[i+1:]
	}
	if path == "" || !strings.HasPrefix(path, "/") {
		return MountSpec{}, fmt.Errorf("experiments: mount spec %q: path must be absolute", s)
	}
	if err := ValidateBackend(backend); err != nil {
		return MountSpec{}, fmt.Errorf("experiments: mount spec %q: %w", s, err)
	}
	return MountSpec{Path: vfs.Clean(path), Backend: backend}, nil
}

// ParseMountSpecs parses a list of -mount flag values.
func ParseMountSpecs(specs []string) ([]MountSpec, error) {
	out := make([]MountSpec, 0, len(specs))
	for _, s := range specs {
		ms, err := ParseMountSpec(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ms)
	}
	return out, nil
}

// NewFSFromSpecs returns a world constructor (core.Workload.NewFS) building
// a MountFS with a MemFS root and one backend per spec. Hermetic backends
// are fresh per call; os backends hand out the same host directory every
// run — they break the fresh-world-per-run assumption statistical campaigns
// rely on (cmd/ffis therefore refuses them) and exist for one-shot
// inspection.
func NewFSFromSpecs(specs []MountSpec) func() (vfs.FS, error) {
	return func() (vfs.FS, error) {
		m := vfs.NewMountFS(vfs.NewMemFS())
		for _, s := range specs {
			backend, err := NewBackendFS(s.Backend)
			if err != nil {
				return nil, fmt.Errorf("experiments: mount %s: %w", s.Path, err)
			}
			if err := m.Mount(s.Path, backend); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
}
