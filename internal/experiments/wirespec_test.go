package experiments

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestWireSpecNormalizedDerivesKeys(t *testing.T) {
	ws := WireSpec{Cell: "MT2", Model: "bit-flip", Runs: 10, Seed: 3}.Normalized()
	if ws.Key != "MT2/BF" {
		t.Fatalf("key: got %q, want MT2/BF", ws.Key)
	}
	if ws.WorldKey != "MT2" {
		t.Fatalf("world key: got %q, want MT2", ws.WorldKey)
	}

	// World-shape variants must not share the plain cell's snapshot key.
	pipe := WireSpec{Cell: "MT2", Model: "bit-flip", Runs: 10, Seed: 3, Pipeline: true}.Normalized()
	if pipe.WorldKey == ws.WorldKey {
		t.Fatalf("pipeline variant shares world key %q with the standard cell", pipe.WorldKey)
	}
	backed := WireSpec{Cell: "MT2", Model: "bit-flip", Runs: 10, Seed: 3, Backend: "object:lag=2"}.Normalized()
	if backed.WorldKey == ws.WorldKey {
		t.Fatalf("backend variant shares world key %q with the mem cell", backed.WorldKey)
	}
	if mem := (WireSpec{Cell: "MT2", Model: "bit-flip", Runs: 10, Seed: 3, Backend: "mem"}).Normalized(); mem.WorldKey != ws.WorldKey {
		t.Fatalf("explicit mem backend should normalize to the default world key, got %q", mem.WorldKey)
	}
}

func TestWireSpecValidateCatchesStaticErrors(t *testing.T) {
	for _, tc := range []struct {
		ws   WireSpec
		want string
	}{
		{WireSpec{Model: "bit-flip", Runs: 10}, "no cell"},
		{WireSpec{Cell: "MT2", Model: "no-such-model", Runs: 10}, "unregistered"},
		{WireSpec{Cell: "MT2", Model: "bit-flip"}, "runs"},
		{WireSpec{Cell: "MT2", Model: "bit-flip", Runs: 10, Backend: "floppy"}, "backend"},
		{WireSpec{Cell: "MT2", Model: "bit-flip", Runs: 10, Mounts: []string{"not-absolute"}}, "mount"},
	} {
		err := tc.ws.Validate()
		if err == nil || !strings.Contains(strings.ToLower(err.Error()), tc.want) {
			t.Errorf("Validate(%+v): got %v, want error containing %q", tc.ws, err, tc.want)
		}
	}
}

// The wire form and the local grid builder must agree exactly: a worker
// rebuilding a spec from its wire form has to produce the same key, world
// key, and campaign parameters the coordinator's grid declared.
func TestWireSpecCampaignSpecMatchesLocalBuilder(t *testing.T) {
	ws := WireSpec{Cell: "MT2", Model: "shorn-write", Runs: 25, Seed: 9, Shots: 2}
	spec, err := ws.CampaignSpec()
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Runs: 25, Seed: 9, Shots: 2}
	w, err := NewWorkload("MT2", o)
	if err != nil {
		t.Fatal(err)
	}
	want := fig7Spec("MT2", w, spec.Config.Fault.Model, o)
	if spec.Key != want.Key || spec.WorldKey != want.WorldKey {
		t.Fatalf("keys drifted: wire (%q, %q) vs local (%q, %q)", spec.Key, spec.WorldKey, want.Key, want.WorldKey)
	}
	if spec.Config.Runs != want.Config.Runs || spec.Config.Seed != want.Config.Seed ||
		spec.Config.Fault.Shots != want.Config.Fault.Shots {
		t.Fatalf("config drifted: wire %+v vs local %+v", spec.Config, want.Config)
	}
	if spec.Workload.Name != want.Workload.Name {
		t.Fatalf("workload drifted: %q vs %q", spec.Workload.Name, want.Workload.Name)
	}
}

func TestParseWireSpecsArrayAndJSONL(t *testing.T) {
	array := `[
		{"cell": "MT1", "model": "bit-flip", "runs": 10, "seed": 3},
		{"cell": "MT2", "model": "dropped-write", "runs": 10, "seed": 3}
	]`
	jsonl := `{"cell": "MT1", "model": "bit-flip", "runs": 10, "seed": 3}
{"cell": "MT2", "model": "dropped-write", "runs": 10, "seed": 3}`
	for _, input := range []string{array, jsonl} {
		specs, err := ParseWireSpecs(strings.NewReader(input))
		if err != nil {
			t.Fatal(err)
		}
		if len(specs) != 2 || specs[0].Key != "MT1/BF" || specs[1].Key != "MT2/DW" {
			t.Fatalf("parsed %+v", specs)
		}
	}
	if _, err := ParseWireSpecs(strings.NewReader(array + "\n" + array)); err == nil {
		t.Fatal("concatenated arrays with duplicate keys should be refused")
	}
	if _, err := ParseWireSpecs(strings.NewReader("")); err == nil {
		t.Fatal("empty input should be refused")
	}
}

func TestWireSpecJSONRoundTrip(t *testing.T) {
	ws := WireSpec{
		Cell: "nyx", Model: "misdirected-write", Runs: 100, Seed: 11,
		Shots: 3, NyxN: 24, Backend: "latency:bb",
		ArmMounts: []string{"/plt00000"}, Pipeline: true,
	}.Normalized()
	raw, err := json.Marshal(ws)
	if err != nil {
		t.Fatal(err)
	}
	var back WireSpec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ws) {
		t.Fatalf("round trip drifted:\n sent %+v\n got  %+v", ws, back)
	}
}

func TestFig7WireGridCoversEveryCellAndModel(t *testing.T) {
	specs := Fig7WireGrid(50, 4)
	want := len(Fig7Cells) * len(Fig7Models())
	if len(specs) != want {
		t.Fatalf("grid has %d specs, want %d", len(specs), want)
	}
	seen := map[string]bool{}
	for _, ws := range specs {
		if err := ws.Validate(); err != nil {
			t.Errorf("generated spec %q invalid: %v", ws.Key, err)
		}
		if ws.Runs != 50 || ws.Seed != 4 {
			t.Errorf("spec %q: runs=%d seed=%d", ws.Key, ws.Runs, ws.Seed)
		}
		seen[ws.Key] = true
	}
	if len(seen) != want {
		t.Fatalf("duplicate keys in generated grid")
	}
}
