package experiments

import (
	"strings"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/core"
)

// TestReadWriteGridSmall runs the full read-vs-write grid at reduced scale:
// every cell must complete for all six models on both the flat and the
// tiered world, and read-model cells must actually reach the read path
// (non-benign outcomes exist).
func TestReadWriteGridSmall(t *testing.T) {
	o := smallOpts()
	o.Runs = 4
	out, cells, err := ReadWriteGrid(o)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(ReadWriteCells) * 2 * len(core.AllModels())
	if len(cells) != wantCells {
		t.Fatalf("grid produced %d cells, want %d", len(cells), wantCells)
	}
	byLabel := map[string]classify.Tally{}
	for _, c := range cells {
		if c.Tally.Total() != o.Runs {
			t.Errorf("%s: tally total %d, want %d", c.Label, c.Tally.Total(), o.Runs)
		}
		byLabel[c.Label] = c.Tally
	}
	for _, cell := range ReadWriteCells {
		for _, placement := range []string{"flat", "tiered"} {
			for _, model := range core.AllModels() {
				label := cell + "." + placement + "/" + model.Short()
				if _, ok := byLabel[label]; !ok {
					t.Errorf("missing grid cell %s", label)
				}
				if !strings.Contains(out, label) {
					t.Errorf("rendered table missing %s", label)
				}
			}
		}
	}
	// Unreadable sectors kill the consumer: every UR cell must show
	// non-benign outcomes.
	for label, tally := range byLabel {
		if strings.HasSuffix(label, "/UR") && tally.Count(classify.Benign) == tally.Total() {
			t.Errorf("%s: unreadable-sector campaign tallied all benign", label)
		}
	}
}

// TestReadWriteGridDeterministic asserts the grid is independent of the
// engine pool width, the read-path analogue of the Fig7 determinism
// contract.
func TestReadWriteGridDeterministic(t *testing.T) {
	o := smallOpts()
	o.Runs = 3
	run := func(jobs int) []classify.Cell {
		o := o
		o.Jobs = jobs
		_, cells, err := ReadWriteGrid(o)
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	one, eight := run(1), run(8)
	if len(one) != len(eight) {
		t.Fatalf("cell counts differ: %d vs %d", len(one), len(eight))
	}
	for i := range one {
		if one[i].Label != eight[i].Label || one[i].Tally != eight[i].Tally {
			t.Fatalf("cell %s diverged across -jobs 1 vs 8: %s vs %s",
				one[i].Label, one[i].Tally.String(), eight[i].Tally.String())
		}
	}
}

// TestPipelineWorkloadsHaveReadTraffic pins the precondition of the whole
// grid: each pipeline cell's instrumented phase issues reads, so read-model
// signatures have targets.
func TestPipelineWorkloadsHaveReadTraffic(t *testing.T) {
	o := smallOpts()
	for _, cell := range ReadWriteCells {
		w, err := NewPipelineWorkload(cell, o)
		if err != nil {
			t.Fatal(err)
		}
		count, err := core.Profile(w, core.Config{Model: core.ReadBitFlip}.Signature())
		if err != nil {
			t.Fatalf("%s: %v", cell, err)
		}
		if count == 0 {
			t.Errorf("%s: pipeline workload performs no reads", cell)
		}
	}
}
