package experiments

import (
	"fmt"
	"strings"

	"ffis/internal/classify"
	"ffis/internal/core"
)

// Ablations runs the design-choice sweeps DESIGN.md calls out — flip width
// (paper footnote 3) on Nyx and shorn keep-fraction (Table I's two
// variants) on QMCPACK — and renders one table per sweep.
func Ablations(o Options) (string, error) {
	o = o.normalize()
	var b strings.Builder

	nyxW, err := NewWorkload("nyx", o)
	if err != nil {
		return "", err
	}
	flips, err := core.Sweep(core.FlipWidthSweep(), o.Runs, o.Seed, o.Workers, nyxW)
	if err != nil {
		return "", err
	}
	b.WriteString(renderSweep("Ablation: bit-flip width on Nyx (footnote 3: SDC stays minimal)", flips))
	b.WriteString("\n")

	qmcW, err := NewWorkload("qmcpack", o)
	if err != nil {
		return "", err
	}
	shorn, err := core.Sweep(core.ShornFractionSweep(), o.Runs, o.Seed, o.Workers, qmcW)
	if err != nil {
		return "", err
	}
	b.WriteString(renderSweep("Ablation: shorn-write keep fraction on QMCPACK (Table I: 3/8 vs 7/8)", shorn))
	return b.String(), nil
}

func renderSweep(title string, results []core.CampaignResult) string {
	cells := make([]classify.Cell, len(results))
	for i, r := range results {
		cells[i] = classify.Cell{Label: r.Workload, Tally: r.Tally}
	}
	return classify.Table(title, cells)
}

// Fig7WithDetector runs the Nyx column of Figure 7 twice — without and
// with the average-value method — rendering the paper's headline claim
// that "all SDC cases with Nyx will be changed to detected cases after
// using the average-value-based method".
func Fig7WithDetector(o Options) (string, error) {
	o = o.normalize()
	var cells []classify.Cell
	for _, useAvg := range []bool{false, true} {
		opts := o
		opts.UseAvgDetector = useAvg
		suffix := ""
		if useAvg {
			suffix = "+avg"
		}
		for _, model := range core.Models() {
			res, err := Fig7Cell("nyx", model, opts)
			if err != nil {
				return "", err
			}
			cell := res.Cell()
			cell.Label += suffix
			cells = append(cells, cell)
		}
	}
	out := classify.Table(
		fmt.Sprintf("Nyx outcome spectrum without vs with the average-value method (%d runs per cell)", o.Runs),
		cells)
	return out, nil
}
