package experiments

import (
	"fmt"
	"strings"

	"ffis/internal/classify"
	"ffis/internal/core"
)

// Ablations runs the design-choice sweeps DESIGN.md calls out — flip width
// (paper footnote 3) on Nyx and shorn keep-fraction (Table I's two
// variants) on QMCPACK — as one engine grid and renders one table per
// sweep. Options.ArmMounts carries through to every sweep point, so a
// tiered world keeps its fault placement instead of silently degrading to
// the flat whole-world arming.
func Ablations(o Options) (string, error) {
	o = o.normalize()
	nyxW, err := NewWorkload("nyx", o)
	if err != nil {
		return "", err
	}
	qmcW, err := NewWorkload("qmcpack", o)
	if err != nil {
		return "", err
	}

	spec := func(w core.Workload, pt core.SweepPoint) core.CampaignSpec {
		fault := pt.Fault
		fault.Shots = o.Shots
		return core.CampaignSpec{
			Key:      w.Name + "/" + pt.Label,
			WorldKey: w.Name,
			Workload: w,
			Config: core.CampaignConfig{
				Fault:     fault,
				Runs:      o.Runs,
				Seed:      o.Seed,
				ArmMounts: o.ArmMounts,
				Stop:      o.Stop,
			},
		}
	}
	flips := core.FlipWidthSweep()
	shorn := core.ShornFractionSweep()
	var specs []core.CampaignSpec
	for _, pt := range flips {
		specs = append(specs, spec(nyxW, pt))
	}
	for _, pt := range shorn {
		specs = append(specs, spec(qmcW, pt))
	}

	grid, err := o.runGrid(specs)
	if err != nil {
		return "", err
	}
	cells := make([]classify.Cell, len(grid))
	for i, r := range grid {
		if r.Err != nil {
			return "", fmt.Errorf("ablation %s: %w", r.Spec.Key, r.Err)
		}
		cells[i] = classify.Cell{Label: r.Spec.Key, Tally: r.Result.Tally}
	}

	var b strings.Builder
	b.WriteString(o.table("Ablation: bit-flip width on Nyx (footnote 3: SDC stays minimal)", cells[:len(flips)]))
	b.WriteString("\n")
	b.WriteString(o.table("Ablation: shorn-write keep fraction on QMCPACK (Table I: 3/8 vs 7/8)", cells[len(flips):]))
	return b.String(), nil
}

// Fig7WithDetector runs the Nyx column of Figure 7 twice — without and
// with the average-value method — rendering the paper's headline claim
// that "all SDC cases with Nyx will be changed to detected cases after
// using the average-value-based method". Both variants share one WorldKey:
// their worlds and I/O are identical (only Classify differs), so the engine
// snapshots and profiles Nyx once for all six campaigns.
func Fig7WithDetector(o Options) (string, error) {
	o = o.normalize()
	var specs []core.CampaignSpec
	for _, useAvg := range []bool{false, true} {
		opts := o
		opts.UseAvgDetector = useAvg
		w, err := NewWorkload("nyx", opts)
		if err != nil {
			return "", err
		}
		suffix := ""
		if useAvg {
			suffix = "+avg"
		}
		for _, model := range Fig7Models() {
			s := fig7Spec("nyx", w, model, opts)
			s.Key += suffix
			specs = append(specs, s)
		}
	}
	grid, err := o.runGrid(specs)
	if err != nil {
		return "", err
	}
	var cells []classify.Cell
	for _, r := range grid {
		if r.Err != nil {
			return "", fmt.Errorf("detector study %s: %w", r.Spec.Key, r.Err)
		}
		cells = append(cells, classify.Cell{Label: r.Spec.Key, Tally: r.Result.Tally})
	}
	out := o.table(
		fmt.Sprintf("Nyx outcome spectrum without vs with the average-value method (%d runs per cell)", o.Runs),
		cells)
	return out, nil
}
