package experiments

// The read-vs-write characterization. The paper's Figure 7 injects faults
// that surface on the write path; its own motivation (SSD UBER, data at
// rest corrupted between a producing and a consuming stage) describes
// faults that surface at *read* time. This file sweeps three applications
// under both model families — the Table I write models and the read-side
// models (read bit rot, unreadable sectors, latent corruption) — on both a
// flat single-device world and a tiered mount layout, as one engine grid.
//
// The Figure 7 cells only write during their instrumented phase (analysis
// happens in Classify, on the clean view), so read faults would have
// nowhere to land. The grid therefore runs producer→consumer pipeline
// variants: Nyx writes the plotfile and then the halo finder consumes it
// through the same (armed) file system, persisting its catalog; QMCPACK
// writes the scalar files and then the QMCA analysis reads the DMC series
// back and persists the energy estimate. Montage MT2 already consumes the
// projected tiles written by Setup, so it runs unchanged. Outcomes are
// classified on the consumer's own product — the artifact the science
// actually uses.

import (
	"fmt"
	"strconv"
	"strings"

	"ffis/internal/apps/montage"
	"ffis/internal/apps/nyx"
	"ffis/internal/apps/qmcpack"
	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/vfs"
)

// ReadWriteCells lists the applications of the read-vs-write grid: one
// pipeline variant per paper application.
var ReadWriteCells = []string{"nyx", "qmcpack", "MT2"}

// readWritePlacements names the two storage worlds every cell runs on.
var readWritePlacements = []string{"flat", "tiered"}

// NewPipelineWorkload builds the producer→consumer variant of a grid cell:
// the instrumented Run phase both writes the stage products and reads them
// back for post-analysis, so read-path fault signatures have dynamic
// instances to land on. The consumer persists its result, and Classify
// judges that artifact.
func NewPipelineWorkload(cell string, o Options) (core.Workload, error) {
	o = o.normalize()
	switch cell {
	case "nyx":
		app, err := nyx.NewApp(o.nyxSim(), nyx.DefaultHalo())
		if err != nil {
			return core.Workload{}, err
		}
		golden := app.Golden()
		return core.Workload{
			Name:  "nyx",
			Setup: func(fs vfs.FS) error { return fs.MkdirAll("/out") },
			Run: func(fs vfs.FS) error {
				if err := app.Run(fs); err != nil { // producer: plotfile
					return err
				}
				cat, err := nyx.RunHaloFinder(fs, nyx.OutputPath, app.Halo) // consumer
				if err != nil {
					return err
				}
				return vfs.WriteFile(fs, "/out/halos.txt", []byte(cat.Render()))
			},
			Classify: func(fs vfs.FS, runErr error) classify.Outcome {
				if runErr != nil {
					return classify.Crash
				}
				got, err := vfs.ReadFile(fs, "/out/halos.txt")
				if err != nil {
					return classify.Crash
				}
				switch {
				case string(got) == golden:
					return classify.Benign
				case strings.Contains(string(got), "nhalos 0"):
					return classify.Detected // empty catalog: visibly wrong
				default:
					return classify.SDC
				}
			},
		}, nil
	case "qmcpack", "qmc":
		app, err := qmcpack.NewApp(qmcpack.DefaultQMC())
		if err != nil {
			return core.Workload{}, err
		}
		goldenE := app.GoldenEnergy()
		return core.Workload{
			Name:  "qmcpack",
			Setup: func(fs vfs.FS) error { return fs.MkdirAll("/out") },
			Run: func(fs vfs.FS) error {
				if err := app.Run(fs); err != nil { // producer: scalar files
					return err
				}
				raw, err := vfs.ReadFile(fs, qmcpack.DMCPath) // consumer: QMCA
				if err != nil {
					return err
				}
				analysis, err := qmcpack.Analyze(string(raw))
				if err != nil {
					return err
				}
				return vfs.WriteFile(fs, "/out/energy.dat",
					[]byte(fmt.Sprintf("%.10f\n", analysis.Energy)))
			},
			Classify: func(fs vfs.FS, runErr error) classify.Outcome {
				if runErr != nil {
					return classify.Crash
				}
				raw, err := vfs.ReadFile(fs, "/out/energy.dat")
				if err != nil {
					return classify.Crash
				}
				e, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
				if err != nil {
					return classify.Crash
				}
				switch {
				case e == goldenE:
					return classify.Benign
				case e >= qmcpack.SDCWindowLo && e <= qmcpack.SDCWindowHi:
					return classify.SDC
				default:
					return classify.Detected
				}
			},
		}, nil
	case "MT1", "MT2", "MT3", "MT4", "mt1", "mt2", "mt3", "mt4":
		// Montage stages past the first already read their inputs during
		// Run; the standard cell is its own pipeline variant.
		stage := montage.Stage(cell[2] - '0')
		app, err := montage.NewApp(montage.DefaultConfig(), stage)
		if err != nil {
			return core.Workload{}, err
		}
		return app.Workload(), nil
	default:
		return core.Workload{}, fmt.Errorf("experiments: unknown read-write cell %q (want one of %v)", cell, ReadWriteCells)
	}
}

// readWriteLayout places each pipeline cell's paths on storage tiers for
// the grid's tiered placement, reusing the Figure 7 tier layouts.
func readWriteLayout(cell string) (StorageLayout, error) {
	switch cell {
	case "nyx":
		// Producer writes the plotfile to scratch; the consumer reads it
		// from there and lands its catalog on the output tier.
		return TierLayout("nyx")
	case "qmcpack", "qmc":
		return TierLayout("qmcpack")
	default:
		return TierLayout(cell)
	}
}

// ReadWriteGrid runs the read-vs-write characterization: every cell ×
// every registered fault model (write family ∪ read family) × {flat,
// tiered} world, as one engine grid. The model axis comes straight from
// the registry, so a newly registered model — misdirected-write and
// short-read ship this way — joins the grid with no edits here. It returns
// the rendered Figure 7-style table plus the raw cells in spec order.
func ReadWriteGrid(o Options) (string, []classify.Cell, error) {
	o = o.normalize()
	var specs []core.CampaignSpec
	for _, cellName := range ReadWriteCells {
		w, err := NewPipelineWorkload(cellName, o)
		if err != nil {
			return "", nil, fmt.Errorf("cell %s: %w", cellName, err)
		}
		layout, err := readWriteLayout(cellName)
		if err != nil {
			return "", nil, err
		}
		for _, placement := range readWritePlacements {
			w := w
			if placement == "tiered" {
				w.NewFS = layout.NewFS
			}
			for _, model := range core.AllModels() {
				specs = append(specs, core.CampaignSpec{
					Key:      cellName + "." + placement + "/" + model.Short(),
					WorldKey: cellName + "@rw-" + placement,
					Workload: w,
					Config: core.CampaignConfig{
						Fault: core.Config{Model: model, Shots: o.Shots},
						Runs:  o.Runs,
						Seed:  o.Seed,
						Stop:  o.Stop,
					},
				})
			}
		}
	}
	grid, err := o.runGrid(specs)
	if err != nil {
		return "", nil, err
	}
	var cells []classify.Cell
	for _, r := range grid {
		if r.Err != nil {
			return "", nil, fmt.Errorf("cell %s: %w", r.Spec.Key, r.Err)
		}
		cells = append(cells, classify.Cell{Label: r.Spec.Key, Tally: r.Result.Tally})
	}
	var shorts []string
	for _, m := range core.AllModels() {
		shorts = append(shorts, m.Short())
	}
	title := fmt.Sprintf("Read-path vs write-path faults (%d runs per cell; registered models %s)",
		o.Runs, strings.Join(shorts, "/"))
	return o.table(title, cells), cells, nil
}
