// Package experiments regenerates every table and figure of the paper's
// evaluation section. cmd/experiments drives it from the command line and
// the repository-root benchmarks call into it with reduced run counts.
//
// Each function returns the rendered artifact (text table or image bytes)
// plus the underlying measurements, so callers can both print
// paper-comparable output and assert on shapes.
package experiments

import (
	"fmt"
	"strings"

	"ffis/internal/apps/montage"
	"ffis/internal/apps/nyx"
	"ffis/internal/apps/qmcpack"
	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/metainject"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// Options scales the campaigns. Zero values select the paper-scale
// defaults.
type Options struct {
	// Runs per Figure 7 campaign cell (paper: 1,000).
	Runs int
	// Seed for all campaigns.
	Seed uint64
	// Workers caps campaign parallelism (0 = GOMAXPROCS).
	Workers int
	// NyxN overrides the Nyx grid edge (0 = DefaultSim).
	NyxN int
	// MetaStride samples the Table III byte sweep (1 = exhaustive).
	MetaStride int
	// UseAvgDetector applies the Nyx average-value method during
	// classification ("all SDC cases with Nyx will be changed to
	// detected cases after using the average-value-based method").
	UseAvgDetector bool
	// Mounts, when non-empty, runs the workload on a MountFS world with
	// these extra mount points instead of a flat MemFS (cmd/ffis -mount).
	Mounts []MountSpec
	// Backend selects the storage backend of the flat (mount-less) world:
	// "mem" (the default), "object[:lag=N]", or "latency[:bb|:pfs]"
	// (cmd/ffis -backend). Ignored when Mounts is set — per-mount backends
	// come from the specs there.
	Backend string
	// Backends lists the storage backends the tiered sweep runs every
	// placement under (cmd/experiments -backend, repeatable); empty sweeps
	// the default {"mem"}.
	Backends []string
	// ArmMounts restricts fault injection to the I/O routed to these
	// mount points of the world (cmd/ffis -arm); empty arms everything.
	ArmMounts []string
	// Jobs bounds the campaign engine's shared worker pool across a whole
	// grid (every cell of Fig7, Ablations, Fig7WithDetector, Tiered draws
	// runs from one pool). 0 falls back to Workers, then GOMAXPROCS
	// (cmd flag -jobs).
	Jobs int
	// Events, when set, is the event bus the engine publishes every
	// campaign's run-lifecycle stream to; the CLIs subscribe their
	// progress renderer (-progress) and trace writer (-trace) here.
	Events *core.EventBus
	// RunGrid, when set, replaces Engine.Run for every campaign grid in
	// this package: the persistence layer (internal/results.RunGrid via
	// the CLIs' -out/-resume/-shard flags) injects itself here to stream
	// records to disk, skip already-persisted work, and shard run indices
	// — without this package importing the store. Nil runs grids
	// in-memory, exactly as before.
	RunGrid func(e *core.Engine, specs []core.CampaignSpec) ([]core.GridResult, error)
	// Stop, when set, runs every campaign cell under the adaptive stopping
	// rule (cmd flag -adaptive): Runs becomes a budget cap and each cell
	// halts at the first barrier where every outcome rate's Wilson 95%
	// half-width is under the target. Nil keeps the fixed budget.
	Stop *stats.StopRule
	// Shots overrides every fault signature's shot budget (cmd/ffis
	// -shots); 0 keeps each model's own default (1 for the single-shot
	// family).
	Shots int
	// CI switches campaign tables to per-outcome "rate ±halfwidth" columns
	// (cmd flag -ci) — the units an adaptive stopping rule is stated in.
	CI bool
	// Engine, when set, is the campaign engine every grid in these options
	// runs on. The engine memoizes built worlds, snapshots, and profile
	// counts by WorldKey, so sharing one across sweeps (cmd -all, the
	// distributed worker's successive leases) means each distinct world's
	// Setup executes once per process instead of once per sweep. Nil builds
	// a fresh engine per grid, exactly as before.
	Engine *core.Engine
}

// NewEngine builds the shared grid scheduler for these options. Callers
// that run several grids (or hand specs to RunGrid themselves) should
// build one engine and set it on Options.Engine so world memoization
// spans every sweep.
func (o Options) NewEngine() *core.Engine {
	jobs := o.Jobs
	if jobs <= 0 {
		jobs = o.Workers
	}
	return &core.Engine{Jobs: jobs, Events: o.Events}
}

// engine resolves the engine grids run on: the shared one when set.
func (o Options) engine() *core.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return o.NewEngine()
}

// runGrid executes one engine grid through the configured runner: the
// durable RunGrid hook when set, the plain in-memory engine otherwise.
// Every grid in this package goes through here, so -out/-resume/-shard
// apply uniformly to Fig7, the ablations, the detector study, the tiered
// sweep, and the read/write grid.
func (o Options) runGrid(specs []core.CampaignSpec) ([]core.GridResult, error) {
	e := o.engine()
	if o.RunGrid != nil {
		return o.RunGrid(e, specs)
	}
	return e.Run(specs), nil
}

// table renders campaign cells in the configured style: the classic
// percentage columns, or — under CI — every outcome as "rate ±halfwidth"
// with the per-cell run count, which adaptive stopping makes non-uniform.
func (o Options) table(title string, cells []classify.Cell) string {
	if o.CI {
		return classify.TableCI(title, cells)
	}
	return classify.Table(title, cells)
}

// paper-scale defaults.
func (o Options) normalize() Options {
	if o.Runs <= 0 {
		o.Runs = 1000
	}
	if o.Seed == 0 {
		o.Seed = 2021
	}
	if o.MetaStride <= 0 {
		o.MetaStride = 1
	}
	if len(o.Backends) == 0 {
		o.Backends = []string{"mem"}
	}
	return o
}

// worldFS resolves the options' world constructor: the mounted world when
// Mounts is set, a flat single-backend world for a non-default Backend, and
// nil (the workload's own flat MemFS) otherwise.
func (o Options) worldFS() func() (vfs.FS, error) {
	if len(o.Mounts) > 0 {
		return NewFSFromSpecs(o.Mounts)
	}
	if o.Backend != "" && o.Backend != "mem" {
		backend := o.Backend
		return func() (vfs.FS, error) { return NewBackendFS(backend) }
	}
	return nil
}

func (o Options) nyxSim() nyx.SimConfig {
	sim := nyx.DefaultSim()
	if o.NyxN > 0 {
		sim.N = o.NyxN
		// Keep the halo mass budget proportional to the volume.
		sim.NumHalos = sim.N * sim.N * sim.N / 9216
		if sim.NumHalos < 3 {
			sim.NumHalos = 3
		}
	}
	return sim
}

// Fig7Models returns the paper's Table I write-model vocabulary (BF, SW,
// DW) the Figure 7 grids sweep, resolved through the model registry in the
// paper's presentation order.
func Fig7Models() []core.Model {
	return []core.Model{
		core.MustModel("bit-flip"),
		core.MustModel("shorn-write"),
		core.MustModel("dropped-write"),
	}
}

// Table1 renders the fault model specification: the Table I rows plus every
// further model the registry knows (the read-path family and any new
// registrations), so the table is regenerated rather than transcribed.
func Table1() string {
	var b strings.Builder
	b.WriteString("Table I: fault models supported by FFIS\n")
	fmt.Fprintf(&b, "%-18s %-45s %s\n", "fault model", "examples of affected FUSE primitives", "features")
	for _, m := range core.AllModels() {
		prims := m.Hosts()
		names := make([]string, len(prims))
		for i, p := range prims {
			names[i] = "FFIS_" + string(p)
		}
		fmt.Fprintf(&b, "%-18s %-45s %s\n", m.Name(), strings.Join(names, ", "), m.Describe())
	}
	return b.String()
}

// Table2 renders the application descriptions (Table II).
func Table2() string {
	var b strings.Builder
	b.WriteString("Table II: description of tested HPC applications\n")
	for _, d := range []string{nyx.Describe(), qmcpack.Describe(), montage.Describe()} {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// Table3 runs the byte-by-byte HDF5 metadata campaign.
func Table3(o Options) (string, *metainject.Result, error) {
	o = o.normalize()
	res, err := metainject.Run(metainject.CampaignConfig{
		Sim:    o.nyxSim(),
		Halo:   nyx.DefaultHalo(),
		Stride: o.MetaStride,
		Seed:   o.Seed,
	})
	if err != nil {
		return "", nil, err
	}
	return metainject.RenderTable3(res), res, nil
}

// Table4 runs the directed per-field study of the six SDC-prone fields.
func Table4(o Options) (string, []metainject.FieldEffect, error) {
	o = o.normalize()
	effects, err := metainject.FieldStudy(o.nyxSim(), nyx.DefaultHalo())
	if err != nil {
		return "", nil, err
	}
	return metainject.RenderTable4(effects), effects, nil
}

// Fig7CellName enumerates the Figure 7 campaign cells.
var Fig7Cells = []string{"nyx", "qmcpack", "MT1", "MT2", "MT3", "MT4"}

// NewWorkload constructs the campaign workload for a Figure 7 cell name.
// When Options.Mounts is set, the workload runs on a MountFS world with
// those mount points, making it armable per tier via Options.ArmMounts;
// Options.Backend swaps the flat world's storage backend.
func NewWorkload(cell string, o Options) (core.Workload, error) {
	w, err := newBareWorkload(cell, o)
	if err != nil {
		return core.Workload{}, err
	}
	if newFS := o.worldFS(); newFS != nil {
		w.NewFS = newFS
	}
	return w, nil
}

func newBareWorkload(cell string, o Options) (core.Workload, error) {
	o = o.normalize()
	switch cell {
	case "nyx":
		app, err := nyx.NewApp(o.nyxSim(), nyx.DefaultHalo())
		if err != nil {
			return core.Workload{}, err
		}
		app.UseAvgDetector = o.UseAvgDetector
		return app.Workload(), nil
	case "qmcpack", "qmc":
		app, err := qmcpack.NewApp(qmcpack.DefaultQMC())
		if err != nil {
			return core.Workload{}, err
		}
		return app.Workload(), nil
	case "MT1", "MT2", "MT3", "MT4", "mt1", "mt2", "mt3", "mt4":
		stage := montage.Stage(cell[2] - '0')
		app, err := montage.NewApp(montage.DefaultConfig(), stage)
		if err != nil {
			return core.Workload{}, err
		}
		return app.Workload(), nil
	default:
		return core.Workload{}, fmt.Errorf("experiments: unknown cell %q (want one of %v)", cell, Fig7Cells)
	}
}

// fig7Spec builds the engine spec for one (cell, model) grid entry. The
// WorldKey groups the cell's fault models onto one post-Setup snapshot and
// one memoized profile count.
func fig7Spec(cellName string, w core.Workload, model core.Model, o Options) core.CampaignSpec {
	return core.CampaignSpec{
		Key:      cellName + "/" + model.Short(),
		WorldKey: cellName,
		Workload: w,
		Config: core.CampaignConfig{
			Fault:     core.Config{Model: model, Shots: o.Shots},
			Runs:      o.Runs,
			Seed:      o.Seed,
			ArmMounts: o.ArmMounts,
			Stop:      o.Stop,
		},
	}
}

// Fig7Cell runs one campaign cell (application × fault model) on the
// engine, so cmd/ffis single-cell invocations get the same COW-snapshot
// fast path and progress stream as full grids. Read-path models run the
// cell's producer→consumer pipeline variant: the standard Figure 7 phases
// of nyx and qmcpack only write (analysis happens during classification),
// so a read fault would have no dynamic instance to land on.
func Fig7Cell(cell string, model core.Model, o Options) (core.CampaignResult, error) {
	o = o.normalize()
	var w core.Workload
	var err error
	if core.IsRead(model) {
		w, err = NewPipelineWorkload(cell, o)
		if newFS := o.worldFS(); err == nil && newFS != nil {
			w.NewFS = newFS
		}
	} else {
		w, err = NewWorkload(cell, o)
	}
	if err != nil {
		return core.CampaignResult{}, err
	}
	grid, err := o.runGrid([]core.CampaignSpec{fig7Spec(cell, w, model, o)})
	if err != nil {
		return core.CampaignResult{}, err
	}
	return grid[0].Result, grid[0].Err
}

// Fig7 runs the full characterization — every cell × every fault model — as
// one engine grid: all campaigns share a bounded worker pool, each cell's
// Setup executes once and is COW-cloned per run, and the per-cell profiling
// pass is shared by the three fault models.
func Fig7(o Options) (string, []classify.Cell, error) {
	o = o.normalize()
	models := Fig7Models()
	specs := make([]core.CampaignSpec, 0, len(Fig7Cells)*len(models))
	for _, cellName := range Fig7Cells {
		w, err := NewWorkload(cellName, o)
		if err != nil {
			return "", nil, fmt.Errorf("cell %s: %w", cellName, err)
		}
		for _, model := range models {
			specs = append(specs, fig7Spec(cellName, w, model, o))
		}
	}
	grid, err := o.runGrid(specs)
	if err != nil {
		return "", nil, err
	}
	var cells []classify.Cell
	for _, r := range grid {
		if r.Err != nil {
			return "", nil, fmt.Errorf("cell %s: %w", r.Spec.Key, r.Err)
		}
		cells = append(cells, r.Result.Cell())
	}
	title := fmt.Sprintf("Figure 7: characterization of I/O faults (%d runs per cell)", o.Runs)
	return o.table(title, cells), cells, nil
}

// Fig7Sequential is the pre-engine reference implementation of Fig7: cells
// run strictly one after another and every injection run rebuilds its world
// (NewFS + Setup) from scratch, the paper's literal remount-per-run
// procedure. Under the same seed it produces tallies identical to Fig7 —
// the equivalence tests assert it and the repository benchmarks measure the
// engine's speedup against it.
func Fig7Sequential(o Options) (string, []classify.Cell, error) {
	o = o.normalize()
	var cells []classify.Cell
	for _, cellName := range Fig7Cells {
		w, err := NewWorkload(cellName, o)
		if err != nil {
			return "", nil, fmt.Errorf("cell %s: %w", cellName, err)
		}
		for _, model := range Fig7Models() {
			res, err := core.Campaign(core.CampaignConfig{
				Fault:       core.Config{Model: model, Shots: o.Shots},
				Runs:        o.Runs,
				Seed:        o.Seed,
				Workers:     o.Workers,
				ArmMounts:   o.ArmMounts,
				FreshWorlds: true,
				Stop:        o.Stop,
			}, w)
			if err != nil {
				return "", nil, fmt.Errorf("cell %s/%s: %w", cellName, model.Short(), err)
			}
			cells = append(cells, res.Cell())
		}
	}
	title := fmt.Sprintf("Figure 7: characterization of I/O faults (%d runs per cell)", o.Runs)
	return o.table(title, cells), cells, nil
}

// Fig8 compares the halo-mass distribution of the golden Nyx run with a
// dropped-write SDC run.
func Fig8(o Options) (string, error) {
	o = o.normalize()
	app, err := nyx.NewApp(o.nyxSim(), nyx.DefaultHalo())
	if err != nil {
		return "", err
	}
	golden := app.GoldenCatalog()

	// Find a dropped-write run that produced SDC and recover its catalog.
	sig := core.Config{Model: core.DroppedWrite}.Signature()
	count, err := core.Profile(app.Workload(), sig)
	if err != nil {
		return "", err
	}
	var faulty nyx.Catalog
	found := false
	for i := 0; i < int(count); i++ {
		fs := vfs.NewMemFS()
		inj := core.NewInjector(sig, int64(i), stats.NewRNG(o.Seed))
		if err := app.Run(inj.Wrap(fs)); err != nil {
			continue
		}
		cat, err := nyx.RunHaloFinder(fs, nyx.OutputPath, nyx.DefaultHalo())
		if err != nil || len(cat.Halos) == 0 {
			continue
		}
		if cat.Render() == golden.Render() {
			continue
		}
		if !found {
			faulty = cat
			found = true
			continue
		}
		// Prefer an SDC whose halo masses visibly moved (the dropped
		// block struck halo cells), matching the Figure 8 panels where
		// the large-mass tail of the distribution shifts.
		if massCatalogDiffers(golden, cat) && !massCatalogDiffers(golden, faulty) {
			faulty = cat
		}
	}
	if !found {
		return "", fmt.Errorf("experiments: no dropped-write SDC found for Figure 8")
	}

	_, hiMass := massRange(golden)
	gh := golden.MassHistogram(0, hiMass*1.05, 12)
	fh := faulty.MassHistogram(0, hiMass*1.05, 12)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: halo-finder mass distribution, original vs dropped-write SDC\n")
	fmt.Fprintf(&b, "original (%d halos, mean density %.6f):\n%s", len(golden.Halos), golden.Mean, gh.Render(40))
	fmt.Fprintf(&b, "faulty   (%d halos, mean density %.6f):\n%s", len(faulty.Halos), faulty.Mean, fh.Render(40))
	fmt.Fprintf(&b, "L1 distance between distributions: %d\n", gh.L1Distance(fh))
	fmt.Fprintf(&b, "average-value detector flags the faulty run: %v (mean deviates by %.4f%%)\n",
		nyx.DetectByAverage(faulty.Mean), 100*abs(faulty.Mean-1))
	return b.String(), nil
}

// massCatalogDiffers reports whether any mass-rank-matched halo pair
// differs by more than 0.1% (or the halo counts differ).
func massCatalogDiffers(a, b nyx.Catalog) bool {
	if len(a.Halos) != len(b.Halos) {
		return true
	}
	for i := range a.Halos {
		if abs(a.Halos[i].Mass-b.Halos[i].Mass) > 1e-3*a.Halos[i].Mass {
			return true
		}
	}
	return false
}

func massRange(c nyx.Catalog) (lo, hi float64) {
	if len(c.Halos) == 0 {
		return 0, 1
	}
	lo, hi = c.Halos[0].Mass, c.Halos[0].Mass
	for _, h := range c.Halos {
		if h.Mass < lo {
			lo = h.Mass
		}
		if h.Mass > hi {
			hi = h.Mass
		}
	}
	return lo, hi
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Fig5 produces the density-slice visualizations for the original field,
// the Exponent Bias fault (scaled data), and the ARD fault (shifted data).
// It returns a textual summary and the three PGM images.
func Fig5(o Options) (string, map[string][]byte, error) {
	o = o.normalize()
	sim := o.nyxSim()
	field := sim.Generate()
	img, err := nyx.BuildImage(field, sim.N)
	if err != nil {
		return "", nil, err
	}
	pristine := img.Bytes()
	images := map[string][]byte{}
	var b strings.Builder
	b.WriteString("Figure 5: visualization of typical metadata SDC cases\n")

	slice := func(name string, raw []byte) error {
		fs := vfs.NewMemFS()
		fs.MkdirAll("/plt00000")
		if err := vfs.WriteFile(fs, nyx.OutputPath, raw); err != nil {
			return err
		}
		vals, n, err := nyx.ReadDataset(fs, nyx.OutputPath)
		if err != nil {
			return err
		}
		images[name] = nyx.SlicePGM(vals, n, n/2)
		fmt.Fprintf(&b, "  %-14s mean=%.6g\n", name, stats.Mean(vals))
		return nil
	}
	if err := slice("original", pristine); err != nil {
		return "", nil, err
	}
	biasFault := append([]byte(nil), pristine...)
	biasFault[img.Fields.Find("exponentBias")[0].Offset] ^= 0x04 // bias-4: scale 16
	if err := slice("exponent-bias", biasFault); err != nil {
		return "", nil, err
	}
	ardFault := append([]byte(nil), pristine...)
	ardFault[img.Fields.Find("addressOfRawData")[0].Offset] ^= 0x40 // shift 64 B
	if err := slice("ard-shift", ardFault); err != nil {
		return "", nil, err
	}
	b.WriteString("  (exponent-bias scales the input; ard-shift translates it)\n")
	return b.String(), images, nil
}

// Fig6 reports the halo-candidate loss under a Mantissa Size fault.
func Fig6(o Options) (string, error) {
	o = o.normalize()
	sim := o.nyxSim()
	field := sim.Generate()
	img, err := nyx.BuildImage(field, sim.N)
	if err != nil {
		return "", err
	}
	golden := nyx.FindHalos(field, sim.N, nyx.DefaultHalo())
	if len(golden.Halos) == 0 {
		return "", fmt.Errorf("experiments: no golden halos")
	}
	center := golden.Halos[0].Center

	raw := img.Bytes()
	raw[img.Fields.Find("float.mantissaSize")[0].Offset] ^= 0x08
	fs := vfs.NewMemFS()
	fs.MkdirAll("/plt00000")
	if err := vfs.WriteFile(fs, nyx.OutputPath, raw); err != nil {
		return "", err
	}
	vals, n, err := nyx.ReadDataset(fs, nyx.OutputPath)
	if err != nil {
		return "", err
	}
	origCount := nyx.CandidateCensus(field, sim.N, nyx.DefaultHalo(), center, 4)
	faultCount := nyx.CandidateCensus(vals, n, nyx.DefaultHalo(), center, 4)
	faultyCat := nyx.FindHalos(vals, n, nyx.DefaultHalo())
	var b strings.Builder
	b.WriteString("Figure 6: halo-cell candidates around the largest halo, original vs faulty Mantissa Size\n")
	fmt.Fprintf(&b, "  original: %d candidates within radius 4; %d halos total\n", origCount, len(golden.Halos))
	fmt.Fprintf(&b, "  faulty:   %d candidates within radius 4; %d halos total (avg=%.4g)\n",
		faultCount, len(faultyCat.Halos), faultyCat.Mean)
	return b.String(), nil
}

// Fig9 reproduces the dropped-write Montage mosaic: it returns a summary,
// the golden and faulty PGM images, and the min statistics.
func Fig9(o Options) (string, map[string][]byte, error) {
	o = o.normalize()
	app, err := montage.NewApp(montage.DefaultConfig(), montage.StageAdd)
	if err != nil {
		return "", nil, err
	}
	images := map[string][]byte{}

	// Golden run.
	fs := vfs.NewMemFS()
	if err := app.Setup(fs); err != nil {
		return "", nil, err
	}
	if err := app.Run(fs); err != nil {
		return "", nil, err
	}
	goldenImg, err := vfs.ReadFile(fs, montage.ImagePath)
	if err != nil {
		return "", nil, err
	}
	images["original"] = goldenImg
	goldenMin, _ := montage.ReadMin(fs)

	// Dropped-write run: scan injection targets for the Figure 9
	// black-stripe phenotype (detected: min escapes the window).
	sig := core.Config{Model: core.DroppedWrite}.Signature()
	w := app.Workload()
	count, err := core.Profile(w, sig)
	if err != nil {
		return "", nil, err
	}
	for i := 0; i < int(count); i++ {
		fs := vfs.NewMemFS()
		if err := app.Setup(fs); err != nil {
			return "", nil, err
		}
		inj := core.NewInjector(sig, int64(i), stats.NewRNG(o.Seed))
		if err := app.Run(inj.Wrap(fs)); err != nil {
			continue
		}
		img, err := vfs.ReadFile(fs, montage.ImagePath)
		if err != nil {
			continue
		}
		minV, err := montage.ReadMin(fs)
		if err != nil {
			continue
		}
		if abs(minV-goldenMin) > montage.MinTolerance {
			images["faulty"] = img
			var b strings.Builder
			b.WriteString("Figure 9: a typical faulty mosaic due to a dropped write\n")
			fmt.Fprintf(&b, "  golden min = %.5f\n", goldenMin)
			fmt.Fprintf(&b, "  faulty min = %.5f (outside ±%.2g: detected)\n", minV, montage.MinTolerance)
			fmt.Fprintf(&b, "  dropped write target: instance %d of %d stage-4 writes\n", i, count)
			return b.String(), images, nil
		}
	}
	return "", nil, fmt.Errorf("experiments: no detected dropped-write mosaic found for Figure 9")
}
