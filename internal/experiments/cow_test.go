package experiments

import (
	"bytes"
	"testing"

	"ffis/internal/core"
	"ffis/internal/vfs"
)

// cowCells covers all three applications: Nyx, QMCPACK, and Montage (MT2,
// a stage with a real multi-stage Setup preamble).
var cowCells = []string{"nyx", "qmcpack", "MT2"}

// freshWorld builds a workload's world the pre-snapshot way: NewFS (or a
// bare MemFS) plus a Setup execution.
func freshWorld(t *testing.T, w core.Workload) vfs.FS {
	t.Helper()
	fs := vfs.FS(vfs.NewMemFS())
	if w.NewFS != nil {
		var err error
		fs, err = w.NewFS()
		if err != nil {
			t.Fatal(err)
		}
	}
	if w.Setup != nil {
		if err := w.Setup(fs); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func diffSnapshots(t *testing.T, label string, want, got map[string][]byte) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d files vs %d files", label, len(want), len(got))
	}
	for p, data := range want {
		other, ok := got[p]
		if !ok {
			t.Fatalf("%s: missing %s", label, p)
		}
		if !bytes.Equal(data, other) {
			t.Fatalf("%s: %s differs (%d vs %d bytes)", label, p, len(data), len(other))
		}
	}
}

// TestClonedWorldsBitIdenticalToFresh is the COW equivalence guarantee the
// campaign engine rests on: for every application, a clone of the
// post-Setup snapshot is bit-identical (full snapshot diff over "/") to a
// world built from scratch — both before and after executing the
// application on it.
func TestClonedWorldsBitIdenticalToFresh(t *testing.T) {
	o := smallOpts()
	for _, cell := range cowCells {
		cell := cell
		t.Run(cell, func(t *testing.T) {
			w, err := NewWorkload(cell, o)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := core.NewWorldSnapshot(w)
			if err != nil {
				t.Fatal(err)
			}
			if !snap.COW() {
				t.Fatalf("%s world should support COW cloning", cell)
			}
			fresh, err := core.Snapshot(freshWorld(t, w), "/")
			if err != nil {
				t.Fatal(err)
			}
			clone, err := snap.World()
			if err != nil {
				t.Fatal(err)
			}
			cloneSnap, err := core.Snapshot(clone, "/")
			if err != nil {
				t.Fatal(err)
			}
			diffSnapshots(t, "post-setup clone vs fresh", fresh, cloneSnap)

			// Run the application on both and compare the final state too.
			freshRun := freshWorld(t, w)
			if err := w.Run(freshRun); err != nil {
				t.Fatal(err)
			}
			if err := w.Run(clone); err != nil {
				t.Fatal(err)
			}
			wantRun, err := core.Snapshot(freshRun, "/")
			if err != nil {
				t.Fatal(err)
			}
			gotRun, err := core.Snapshot(clone, "/")
			if err != nil {
				t.Fatal(err)
			}
			diffSnapshots(t, "post-run clone vs fresh", wantRun, gotRun)
		})
	}
}

// TestCloneMutationsNeverLeak runs the application inside one clone and
// asserts neither a sibling clone nor the pristine snapshot observes a
// single byte of it — for all three applications, including the tiered
// mount layouts.
func TestCloneMutationsNeverLeak(t *testing.T) {
	o := smallOpts()
	for _, cell := range cowCells {
		for _, tiered := range []bool{false, true} {
			cell, tiered := cell, tiered
			name := cell
			if tiered {
				name += "@tiered"
			}
			t.Run(name, func(t *testing.T) {
				w, err := NewWorkload(cell, o)
				if err != nil {
					t.Fatal(err)
				}
				if tiered {
					layout, err := TierLayout(cell)
					if err != nil {
						t.Fatal(err)
					}
					w.NewFS = layout.NewFS
				}
				snap, err := core.NewWorldSnapshot(w)
				if err != nil {
					t.Fatal(err)
				}
				pristineBefore, err := core.Snapshot(snap.Pristine(), "/")
				if err != nil {
					t.Fatal(err)
				}
				victim, err := snap.World()
				if err != nil {
					t.Fatal(err)
				}
				sibling, err := snap.World()
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Run(victim); err != nil {
					t.Fatal(err)
				}
				// Scribble over everything the run produced for good measure.
				if err := vfs.Walk(victim, "/", func(p string, info vfs.FileInfo) error {
					return vfs.WriteFile(victim, p, []byte("CLOBBERED"))
				}); err != nil {
					t.Fatal(err)
				}
				siblingSnap, err := core.Snapshot(sibling, "/")
				if err != nil {
					t.Fatal(err)
				}
				diffSnapshots(t, "sibling clone", pristineBefore, siblingSnap)
				pristineAfter, err := core.Snapshot(snap.Pristine(), "/")
				if err != nil {
					t.Fatal(err)
				}
				diffSnapshots(t, "pristine snapshot", pristineBefore, pristineAfter)
			})
		}
	}
}

// TestFig7EngineMatchesSequential is the acceptance gate for the engine
// rewrite: the engine-scheduled grid must reproduce the pre-engine
// sequential path's tallies exactly, cell for cell, under the same seed.
func TestFig7EngineMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig7 grid comparison")
	}
	o := smallOpts()
	seqTable, seqCells, err := Fig7Sequential(o)
	if err != nil {
		t.Fatal(err)
	}
	engTable, engCells, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqCells) != len(engCells) {
		t.Fatalf("%d vs %d cells", len(seqCells), len(engCells))
	}
	for i := range seqCells {
		if seqCells[i].Label != engCells[i].Label {
			t.Fatalf("cell %d label %q vs %q", i, seqCells[i].Label, engCells[i].Label)
		}
		if seqCells[i].Tally != engCells[i].Tally {
			t.Fatalf("cell %s: sequential %s vs engine %s",
				seqCells[i].Label, seqCells[i].Tally.String(), engCells[i].Tally.String())
		}
	}
	if seqTable != engTable {
		t.Fatalf("rendered tables differ:\n--- sequential\n%s\n--- engine\n%s", seqTable, engTable)
	}
}
