package experiments

import (
	"testing"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/stats"
)

// TestAdaptiveMT2SavesRuns is the PR's acceptance criterion at the
// experiments layer: an adaptive MT2 campaign with the paper's "1%~2% error
// bar" target (half-width 0.02) must spend measurably fewer runs than the
// fixed 1,000-run baseline, and every fixed-budget point estimate must fall
// inside the adaptive run's reported Wilson intervals — the early stop
// trades budget for width, never for correctness. The cell is MT2 under
// unreadable-sector, whose near-deterministic crash spectrum converges at
// the first barrier; the balanced write-model cells legitimately run to the
// cap at this target (their variance needs >1,000 runs for ±2%), which is
// the rule behaving honestly, not a failure.
func TestAdaptiveMT2SavesRuns(t *testing.T) {
	model := core.MustModel("unreadable-sector")
	adaptive, err := Fig7Cell("MT2", model, Options{
		Runs: 1000, Seed: 2021, Jobs: 8,
		Stop: &stats.StopRule{TargetHalfWidth: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Fig7Cell("MT2", model, Options{Runs: 1000, Seed: 2021, Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.StopIndex != 0 || fixed.Tally.Total() != 1000 {
		t.Fatalf("fixed baseline: stop=%d total=%d, want a full 1000-run fixed budget",
			fixed.StopIndex, fixed.Tally.Total())
	}
	spent := adaptive.Tally.Total()
	if adaptive.StopIndex == 0 || spent != adaptive.StopIndex {
		t.Fatalf("adaptive campaign: stop=%d but %d runs tallied", adaptive.StopIndex, spent)
	}
	if spent*2 > 1000 {
		t.Fatalf("adaptive campaign spent %d of 1000 runs — not a measurable saving", spent)
	}
	for _, o := range classify.Outcomes() {
		lo, hi := adaptive.Tally.Rate(o).Wilson95()
		p := fixed.Tally.Rate(o).P()
		// The interval bounds carry float rounding (Wilson's k=0 lower bound
		// computes to ~1e-17, not exactly 0); containment is up to epsilon.
		if p < lo-1e-12 || p > hi+1e-12 {
			t.Errorf("%s: fixed-budget estimate %.4f outside adaptive interval [%.4f, %.4f]",
				o, p, lo, hi)
		}
	}
}

// TestAdaptiveMT2WorkerIndependence is the experiments half of the
// determinism satellite: through the full engine stack (world snapshots,
// shared pool, barrier dispatch) an adaptive MT2 campaign must stop at the
// same index with identical tallies whether the pool is 1 or 8 wide.
func TestAdaptiveMT2WorkerIndependence(t *testing.T) {
	run := func(jobs int) core.CampaignResult {
		t.Helper()
		res, err := Fig7Cell("MT2", core.MustModel("unreadable-sector"), Options{
			Runs: 400, Seed: 7, Jobs: jobs,
			Stop: &stats.StopRule{TargetHalfWidth: 0.05},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, wide := run(1), run(8)
	if serial.StopIndex != wide.StopIndex {
		t.Fatalf("stop index depends on pool width: %d (jobs=1) vs %d (jobs=8)",
			serial.StopIndex, wide.StopIndex)
	}
	if serial.Tally != wide.Tally {
		t.Fatalf("tallies depend on pool width:\n  jobs=1: %v\n  jobs=8: %v",
			serial.Tally, wide.Tally)
	}
	if serial.StopIndex == 0 || serial.StopIndex >= 400 {
		t.Fatalf("stop index %d: expected an early adaptive stop under the 400-run budget", serial.StopIndex)
	}
}
