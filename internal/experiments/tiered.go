package experiments

// The tiered-storage scenario. The paper injects faults at the FUSE
// boundary between an application and *one* storage system; production HPC
// I/O is tiered (node-local burst buffer, scratch, campaign/output storage),
// and a device fault lives in exactly one tier. This file sweeps the
// Figure 7 workloads across fault placements — the same fault signature
// armed on the whole world, on the scratch tier only, or on the output tier
// only — and tallies outcomes per placement, answering a question the flat
// single-mount methodology cannot: which storage tier's faults actually
// reach the science?

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/vfs"
)

// TierScratch and TierOutput name the two armable storage tiers of a
// StorageLayout; the empty tier name arms the entire world.
const (
	TierScratch = "scratch"
	TierOutput  = "output"
)

// Placement is one arming choice of the tiered sweep.
type Placement struct {
	// Name labels the placement in reports.
	Name string
	// Tier selects which tier of the layout is armed; "" arms everything
	// (the paper's flat single-device setup).
	Tier string
}

// Placements is the standard sweep: the paper's whole-world baseline plus
// the two single-tier placements.
var Placements = []Placement{
	{Name: "all-armed", Tier: ""},
	{Name: "scratch-only", Tier: TierScratch},
	{Name: "output-only", Tier: TierOutput},
}

// StorageLayout describes the tiered storage world of one workload: which
// extra mounts exist and which mounts make up each tier. Every mount is
// backed by a fresh MemFS per run, so campaigns stay hermetic.
type StorageLayout struct {
	// Mounts lists the mount points of the world beyond the root backend.
	Mounts []string
	// Tiers maps a tier name to the mount points composing it. A tier may
	// be an idle mount the workload never writes — arming it then yields
	// a "no injectable I/O" placement, which is itself a result: faults in
	// that tier cannot reach this workload phase.
	Tiers map[string][]string
}

// NewFS builds the mounted world: a MountFS with a MemFS root and a fresh
// MemFS backend per mount. It satisfies core.Workload.NewFS.
func (l StorageLayout) NewFS() (vfs.FS, error) {
	m := vfs.NewMountFS(vfs.NewMemFS())
	for _, dir := range l.Mounts {
		if err := m.Mount(dir, vfs.NewMemFS()); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// TierLayout returns the storage layout of a Figure 7 cell, placing each
// application's real paths onto tiers the way an HPC site would:
//
//   - nyx: plotfiles (/plt00000) land on the burst-buffer scratch tier;
//     /out is the campaign-output tier, idle during the simulation phase.
//   - MT1..MT4 (Montage): raw tiles live on the input tier (/raw),
//     intermediate products (/proj, /diff, /corr) on scratch, and the final
//     mosaic (/mosaic) on the output tier.
//   - qmcpack: the scalar files are written beside the job script, so the
//     root mount doubles as its scratch tier and /out is idle — the
//     degenerate single-tier layout the paper's flat setup assumes.
func TierLayout(cell string) (StorageLayout, error) {
	switch cell {
	case "nyx":
		return StorageLayout{
			Mounts: []string{"/plt00000", "/out"},
			Tiers: map[string][]string{
				TierScratch: {"/plt00000"},
				TierOutput:  {"/out"},
			},
		}, nil
	case "qmcpack", "qmc":
		return StorageLayout{
			Mounts: []string{"/out"},
			Tiers: map[string][]string{
				TierScratch: {"/"},
				TierOutput:  {"/out"},
			},
		}, nil
	case "MT1", "MT2", "MT3", "MT4", "mt1", "mt2", "mt3", "mt4":
		return StorageLayout{
			Mounts: []string{"/raw", "/proj", "/diff", "/corr", "/mosaic"},
			Tiers: map[string][]string{
				TierScratch: {"/proj", "/diff", "/corr"},
				TierOutput:  {"/mosaic"},
			},
		}, nil
	default:
		return StorageLayout{}, fmt.Errorf("experiments: no tier layout for cell %q", cell)
	}
}

// PlacementResult is one row of the tiered sweep: a workload × placement
// campaign outcome tally.
type PlacementResult struct {
	Cell      string
	Placement string
	// ArmMounts are the mount points the injector was armed on (empty =
	// the whole world).
	ArmMounts []string
	// ProfileCount is the dynamic count of the target primitive routed to
	// the armed scope; zero when NoTargets.
	ProfileCount int64
	// NoTargets marks a placement whose armed tier receives none of the
	// instrumented phase's I/O: the fault has nowhere to land, so every
	// hypothetical run is vacuously clean.
	NoTargets bool
	Tally     classify.Tally
}

// TieredCells is the default workload set of the tiered sweep: two
// genuinely multi-tier applications (Nyx and the Montage stages that write
// to scratch and output respectively) — at least two distinct workloads as
// the scenario requires.
var TieredCells = []string{"nyx", "MT2", "MT4"}

// Tiered sweeps the given Figure 7 cells across the fault placements as one
// engine grid and returns the rendered per-placement outcome table plus the
// raw results. Empty cells selects TieredCells. All placements of a cell
// share one WorldKey — the mounted world is built and Setup once, profile
// counts are memoized per armed-mount set, and every placement's runs draw
// from the engine's shared pool.
func Tiered(cells []string, model core.Model, o Options) (string, []PlacementResult, error) {
	o = o.normalize()
	if len(cells) == 0 {
		cells = TieredCells
	}
	var specs []core.CampaignSpec
	var metas []PlacementResult
	for _, cell := range cells {
		layout, err := TierLayout(cell)
		if err != nil {
			return "", nil, err
		}
		w, err := NewWorkload(cell, o)
		if err != nil {
			return "", nil, err
		}
		w.NewFS = layout.NewFS
		for _, pl := range Placements {
			mounts := append([]string(nil), layout.Tiers[pl.Tier]...)
			sort.Strings(mounts)
			metas = append(metas, PlacementResult{Cell: cell, Placement: pl.Name, ArmMounts: mounts})
			specs = append(specs, core.CampaignSpec{
				Key: cell + "/" + pl.Name,
				// Distinct from the flat Fig7 world of the same cell name.
				WorldKey: cell + "@tiered",
				Workload: w,
				Config: core.CampaignConfig{
					Fault:     core.Config{Model: model, Shots: o.Shots},
					Runs:      o.Runs,
					Seed:      o.Seed,
					ArmMounts: mounts,
					Stop:      o.Stop,
				},
			})
		}
	}
	grid, err := o.runGrid(specs)
	if err != nil {
		return "", nil, err
	}
	results := metas
	for i, r := range grid {
		switch {
		case errors.Is(r.Err, core.ErrNoTargets):
			results[i].NoTargets = true
		case r.Err != nil:
			return "", nil, fmt.Errorf("tiered %s: %w", r.Spec.Key, r.Err)
		default:
			results[i].ProfileCount = r.Result.ProfileCount
			results[i].Tally = r.Result.Tally
		}
	}
	return RenderTiered(model, o.Runs, results), results, nil
}

// RenderTiered formats the sweep as a per-placement outcome table.
func RenderTiered(model core.Model, runs int, results []PlacementResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tiered storage: %s faults by placement (%d runs per armed cell)\n", model.Name(), runs)
	fmt.Fprintf(&b, "%-9s %-13s %-22s %8s %7s %7s %9s %7s\n",
		"workload", "placement", "armed mounts", "targets", "benign", "SDC", "detected", "crash")
	for _, r := range results {
		armed := "(entire file system)"
		if len(r.ArmMounts) > 0 {
			armed = strings.Join(r.ArmMounts, ",")
		}
		if r.NoTargets {
			fmt.Fprintf(&b, "%-9s %-13s %-22s %8d %s\n",
				r.Cell, r.Placement, armed, 0, "— no injectable I/O routed to this tier")
			continue
		}
		fmt.Fprintf(&b, "%-9s %-13s %-22s %8d %7d %7d %9d %7d\n",
			r.Cell, r.Placement, armed, r.ProfileCount,
			r.Tally.Count(classify.Benign), r.Tally.Count(classify.SDC),
			r.Tally.Count(classify.Detected), r.Tally.Count(classify.Crash))
	}
	return b.String()
}
