package experiments

// The tiered-storage scenario. The paper injects faults at the FUSE
// boundary between an application and *one* storage system; production HPC
// I/O is tiered (node-local burst buffer, scratch, campaign/output storage),
// and a device fault lives in exactly one tier. This file sweeps the
// Figure 7 workloads across fault placements — the same fault signature
// armed on the whole world, on the scratch tier only, or on the output tier
// only — and tallies outcomes per placement, answering a question the flat
// single-mount methodology cannot: which storage tier's faults actually
// reach the science?

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/vfs"
)

// TierScratch and TierOutput name the two armable storage tiers of a
// StorageLayout; the empty tier name arms the entire world.
const (
	TierScratch = "scratch"
	TierOutput  = "output"
)

// Placement is one arming choice of the tiered sweep.
type Placement struct {
	// Name labels the placement in reports.
	Name string
	// Tier selects which tier of the layout is armed; "" arms everything
	// (the paper's flat single-device setup).
	Tier string
}

// Placements is the standard sweep: the paper's whole-world baseline plus
// the two single-tier placements.
var Placements = []Placement{
	{Name: "all-armed", Tier: ""},
	{Name: "scratch-only", Tier: TierScratch},
	{Name: "output-only", Tier: TierOutput},
}

// StorageLayout describes the tiered storage world of one workload: which
// extra mounts exist and which mounts make up each tier. Every mount is
// backed by a fresh MemFS per run, so campaigns stay hermetic.
type StorageLayout struct {
	// Mounts lists the mount points of the world beyond the root backend.
	Mounts []string
	// Tiers maps a tier name to the mount points composing it. A tier may
	// be an idle mount the workload never writes — arming it then yields
	// a "no injectable I/O" placement, which is itself a result: faults in
	// that tier cannot reach this workload phase.
	Tiers map[string][]string
}

// NewFS builds the mounted world: a MountFS with a MemFS root and a fresh
// MemFS backend per mount. It satisfies core.Workload.NewFS.
func (l StorageLayout) NewFS() (vfs.FS, error) {
	return l.FSFactory("mem")()
}

// FSFactory returns a world constructor (core.Workload.NewFS) building the
// layout on the named backend: every mount — and the root — is a fresh
// instance of that backend per call, so campaigns stay hermetic regardless
// of backend. The plain "latency" backend is tier-aware: scratch-tier
// mounts bill at burst-buffer rates and everything else at parallel-file-
// system rates, the way an HPC site's tiers actually differ; latency:bb
// and latency:pfs force one cost model everywhere.
func (l StorageLayout) FSFactory(backend string) func() (vfs.FS, error) {
	return func() (vfs.FS, error) {
		root, err := l.tierBackend(backend, "/")
		if err != nil {
			return nil, err
		}
		m := vfs.NewMountFS(root)
		for _, dir := range l.Mounts {
			fs, err := l.tierBackend(backend, dir)
			if err != nil {
				return nil, err
			}
			if err := m.Mount(dir, fs); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
}

// tierBackend builds the backend instance for one mount point of the
// layout, resolving the tier-aware latency model.
func (l StorageLayout) tierBackend(backend, dir string) (vfs.FS, error) {
	if backend == "latency" {
		cost := vfs.ParallelFSModel
		for _, m := range l.Tiers[TierScratch] {
			if m == dir {
				cost = vfs.BurstBufferModel
			}
		}
		return vfs.NewLatencyFS(vfs.NewMemFS(), cost), nil
	}
	return NewBackendFS(backend)
}

// TierLayout returns the storage layout of a Figure 7 cell, placing each
// application's real paths onto tiers the way an HPC site would:
//
//   - nyx: plotfiles (/plt00000) land on the burst-buffer scratch tier;
//     /out is the campaign-output tier, idle during the simulation phase.
//   - MT1..MT4 (Montage): raw tiles live on the input tier (/raw),
//     intermediate products (/proj, /diff, /corr) on scratch, and the final
//     mosaic (/mosaic) on the output tier.
//   - qmcpack: the scalar files are written beside the job script, so the
//     root mount doubles as its scratch tier and /out is idle — the
//     degenerate single-tier layout the paper's flat setup assumes.
func TierLayout(cell string) (StorageLayout, error) {
	switch cell {
	case "nyx":
		return StorageLayout{
			Mounts: []string{"/plt00000", "/out"},
			Tiers: map[string][]string{
				TierScratch: {"/plt00000"},
				TierOutput:  {"/out"},
			},
		}, nil
	case "qmcpack", "qmc":
		return StorageLayout{
			Mounts: []string{"/out"},
			Tiers: map[string][]string{
				TierScratch: {"/"},
				TierOutput:  {"/out"},
			},
		}, nil
	case "MT1", "MT2", "MT3", "MT4", "mt1", "mt2", "mt3", "mt4":
		return StorageLayout{
			Mounts: []string{"/raw", "/proj", "/diff", "/corr", "/mosaic"},
			Tiers: map[string][]string{
				TierScratch: {"/proj", "/diff", "/corr"},
				TierOutput:  {"/mosaic"},
			},
		}, nil
	default:
		return StorageLayout{}, fmt.Errorf("experiments: no tier layout for cell %q", cell)
	}
}

// PlacementResult is one row of the tiered sweep: a workload × placement
// campaign outcome tally.
type PlacementResult struct {
	Cell string
	// Backend names the storage backend every mount of this row's world ran
	// on ("mem", "object[:lag=N]", "latency[:bb|:pfs]").
	Backend   string
	Placement string
	// ArmMounts are the mount points the injector was armed on (empty =
	// the whole world).
	ArmMounts []string
	// ProfileCount is the dynamic count of the target primitive routed to
	// the armed scope; zero when NoTargets.
	ProfileCount int64
	// NoTargets marks a placement whose armed tier receives none of the
	// instrumented phase's I/O: the fault has nowhere to land, so every
	// hypothetical run is vacuously clean.
	NoTargets bool
	Tally     classify.Tally
	// SimNanos is the total simulated I/O time over the placement's runs;
	// zero unless the backend is latency-modeled.
	SimNanos int64
}

// TieredCells is the default workload set of the tiered sweep: two
// genuinely multi-tier applications (Nyx and the Montage stages that write
// to scratch and output respectively) — at least two distinct workloads as
// the scenario requires.
var TieredCells = []string{"nyx", "MT2", "MT4"}

// Tiered sweeps the given Figure 7 cells across the fault placements — and,
// when Options.Backends names more than the default MemFS, across storage
// backends — as one engine grid, returning the rendered per-placement
// outcome table plus the raw results. Empty cells selects TieredCells. All
// placements of a (cell, backend) pair share one WorldKey — the mounted
// world is built and Setup once, profile counts are memoized per
// armed-mount set, and every placement's runs draw from the engine's shared
// pool. Distinct backends get distinct WorldKeys, so the engine never hands
// one backend's snapshot to another backend's runs. The default mem backend
// keeps its legacy spec keys (cell/placement), so stores written before the
// backend sweep existed resume unchanged.
func Tiered(cells []string, model core.Model, o Options) (string, []PlacementResult, error) {
	o = o.normalize()
	if len(cells) == 0 {
		cells = TieredCells
	}
	var specs []core.CampaignSpec
	var metas []PlacementResult
	for _, cell := range cells {
		layout, err := TierLayout(cell)
		if err != nil {
			return "", nil, err
		}
		w, err := NewWorkload(cell, o)
		if err != nil {
			return "", nil, err
		}
		for _, backend := range o.Backends {
			if err := ValidateBackend(backend); err != nil {
				return "", nil, err
			}
			if !HermeticBackend(backend) {
				return "", nil, fmt.Errorf("experiments: tiered sweep needs hermetic per-run state; backend %q is a shared host directory", backend)
			}
			wb := w
			wb.NewFS = layout.FSFactory(backend)
			key := cell
			// Distinct from the flat Fig7 world of the same cell name, and
			// per-backend so snapshots are never shared across backends.
			worldKey := cell + "@tiered"
			if backend != "mem" {
				key = cell + "/" + backend
				worldKey = cell + "@tiered-" + backend
			}
			for _, pl := range Placements {
				mounts := append([]string(nil), layout.Tiers[pl.Tier]...)
				sort.Strings(mounts)
				metas = append(metas, PlacementResult{
					Cell: cell, Backend: backend, Placement: pl.Name, ArmMounts: mounts,
				})
				specs = append(specs, core.CampaignSpec{
					Key:      key + "/" + pl.Name,
					WorldKey: worldKey,
					Workload: wb,
					Config: core.CampaignConfig{
						Fault:     core.Config{Model: model, Shots: o.Shots},
						Runs:      o.Runs,
						Seed:      o.Seed,
						ArmMounts: mounts,
						Stop:      o.Stop,
					},
				})
			}
		}
	}
	grid, err := o.runGrid(specs)
	if err != nil {
		return "", nil, err
	}
	results := metas
	for i, r := range grid {
		switch {
		case errors.Is(r.Err, core.ErrNoTargets):
			results[i].NoTargets = true
		case r.Err != nil:
			return "", nil, fmt.Errorf("tiered %s: %w", r.Spec.Key, r.Err)
		default:
			results[i].ProfileCount = r.Result.ProfileCount
			results[i].Tally = r.Result.Tally
			results[i].SimNanos = r.Result.SimNanos
		}
	}
	return RenderTiered(model, o.Runs, results), results, nil
}

// RenderTiered formats the sweep as a per-placement outcome table. A sweep
// over the default mem backend renders the classic placement table; once
// any row ran on another backend, a backend column and a simulated-time
// column (milliseconds, blank for unmodeled backends) join the layout.
func RenderTiered(model core.Model, runs int, results []PlacementResult) string {
	extended := false
	for _, r := range results {
		if r.Backend != "" && r.Backend != "mem" {
			extended = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tiered storage: %s faults by placement (%d runs per armed cell)\n", model.Name(), runs)
	if extended {
		fmt.Fprintf(&b, "%-9s %-12s %-13s %-22s %8s %7s %7s %9s %7s %10s\n",
			"workload", "backend", "placement", "armed mounts", "targets", "benign", "SDC", "detected", "crash", "sim-ms")
	} else {
		fmt.Fprintf(&b, "%-9s %-13s %-22s %8s %7s %7s %9s %7s\n",
			"workload", "placement", "armed mounts", "targets", "benign", "SDC", "detected", "crash")
	}
	for _, r := range results {
		armed := "(entire file system)"
		if len(r.ArmMounts) > 0 {
			armed = strings.Join(r.ArmMounts, ",")
		}
		if extended {
			backend := r.Backend
			if backend == "" {
				backend = "mem"
			}
			if r.NoTargets {
				fmt.Fprintf(&b, "%-9s %-12s %-13s %-22s %8d %s\n",
					r.Cell, backend, r.Placement, armed, 0, "— no injectable I/O routed to this tier")
				continue
			}
			sim := ""
			if r.SimNanos > 0 {
				sim = fmt.Sprintf("%.3f", float64(r.SimNanos)/1e6)
			}
			fmt.Fprintf(&b, "%-9s %-12s %-13s %-22s %8d %7d %7d %9d %7d %10s\n",
				r.Cell, backend, r.Placement, armed, r.ProfileCount,
				r.Tally.Count(classify.Benign), r.Tally.Count(classify.SDC),
				r.Tally.Count(classify.Detected), r.Tally.Count(classify.Crash), sim)
			continue
		}
		if r.NoTargets {
			fmt.Fprintf(&b, "%-9s %-13s %-22s %8d %s\n",
				r.Cell, r.Placement, armed, 0, "— no injectable I/O routed to this tier")
			continue
		}
		fmt.Fprintf(&b, "%-9s %-13s %-22s %8d %7d %7d %9d %7d\n",
			r.Cell, r.Placement, armed, r.ProfileCount,
			r.Tally.Count(classify.Benign), r.Tally.Count(classify.SDC),
			r.Tally.Count(classify.Detected), r.Tally.Count(classify.Crash))
	}
	return b.String()
}
