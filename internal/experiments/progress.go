package experiments

import (
	"fmt"
	"io"

	"ffis/internal/core"
)

// ProgressPrinter returns an engine progress callback that streams
// per-campaign progress lines to w (cmd flag -progress): roughly every
// tenth of a campaign's runs, plus a terminal line carrying the outcome
// tally — or the error, with the starved-placement ErrNoTargets spelled
// out the way the tiered table renders it. The engine serializes callback
// delivery, so w needs no locking of its own.
func ProgressPrinter(w io.Writer) func(core.EngineEvent) {
	return func(ev core.EngineEvent) {
		switch {
		case ev.Err != nil:
			fmt.Fprintf(w, "[%s] error: %v\n", ev.Key, ev.Err)
		case ev.Result != nil:
			fmt.Fprintf(w, "[%s] %d/%d done: %s\n", ev.Key, ev.Done, ev.Total, ev.Result.Tally.String())
		default:
			step := ev.Total / 10
			if step < 1 {
				step = 1
			}
			if ev.Done%step == 0 {
				fmt.Fprintf(w, "[%s] %d/%d\n", ev.Key, ev.Done, ev.Total)
			}
		}
	}
}
