package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"ffis/internal/stats"
)

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("%d should be a power of two", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("%d should not be a power of two", n)
		}
	}
}

func TestForwardRejectsNonPow2(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err == nil {
		t.Fatal("length 3 accepted")
	}
}

func TestForwardKnownValues(t *testing.T) {
	// FFT([1,0,0,0]) = [1,1,1,1]
	x := []complex128{1, 0, 0, 0}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
	// FFT of a pure tone lands in a single bin.
	n := 16
	tone := make([]complex128, n)
	for i := range tone {
		angle := 2 * math.Pi * 3 * float64(i) / float64(n)
		tone[i] = cmplx.Exp(complex(0, angle))
	}
	if err := Forward(tone); err != nil {
		t.Fatal(err)
	}
	for i, v := range tone {
		mag := cmplx.Abs(v)
		if i == 3 {
			if math.Abs(mag-float64(n)) > 1e-9 {
				t.Fatalf("tone bin magnitude = %v, want %d", mag, n)
			}
		} else if mag > 1e-9 {
			t.Fatalf("leakage into bin %d: %v", i, mag)
		}
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 1 << (uint(r.Intn(6)) + 1) // 2..64
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			orig[i] = x[i]
		}
		if Forward(x) != nil || Inverse(x) != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParseval(t *testing.T) {
	// Σ|x|² = (1/N) Σ|X|²
	r := stats.NewRNG(9)
	n := 64
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(r.NormFloat64(), 0)
		timeEnergy += real(x[i]) * real(x[i])
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy)/timeEnergy > 1e-9 {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestForward3DPlaneWave(t *testing.T) {
	// A plane wave exp(2πi·kx·x/n) concentrates all power in one 3-D bin.
	n := 8
	data := make([]complex128, n*n*n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				angle := 2 * math.Pi * 2 * float64(x) / float64(n)
				data[(z*n+y)*n+x] = cmplx.Exp(complex(0, angle))
			}
		}
	}
	if err := Forward3D(data, n); err != nil {
		t.Fatal(err)
	}
	peak := (0*n+0)*n + 2 // kz=0, ky=0, kx=2
	if cmplx.Abs(data[peak]) < float64(n*n*n)-1e-6 {
		t.Fatalf("plane-wave bin magnitude %v", cmplx.Abs(data[peak]))
	}
	var other float64
	for i, v := range data {
		if i != peak {
			other += cmplx.Abs(v)
		}
	}
	if other > 1e-6 {
		t.Fatalf("leakage %v", other)
	}
}

func TestForward3DErrors(t *testing.T) {
	if err := Forward3D(make([]complex128, 9), 2); err == nil {
		t.Fatal("bad length accepted")
	}
	if err := Forward3D(make([]complex128, 27), 3); err == nil {
		t.Fatal("non-pow2 edge accepted")
	}
}

func TestPowerSpectrumFlatFieldIsZero(t *testing.T) {
	n := 8
	field := make([]float64, n*n*n)
	for i := range field {
		field[i] = 2.5
	}
	p, err := PowerSpectrum3D(field, n)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range p {
		if v > 1e-18 {
			t.Fatalf("flat field has power %v at k=%d", v, k+1)
		}
	}
}

func TestPowerSpectrumSingleMode(t *testing.T) {
	// δ = ε·cos(2π·3x/n): all power at k=3.
	n := 16
	field := make([]float64, n*n*n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				field[(z*n+y)*n+x] = 1 + 0.01*math.Cos(2*math.Pi*3*float64(x)/float64(n))
			}
		}
	}
	p, err := PowerSpectrum3D(field, n)
	if err != nil {
		t.Fatal(err)
	}
	kPeak := 0
	for k := range p {
		if p[k] > p[kPeak] {
			kPeak = k
		}
	}
	if kPeak != 2 { // bins are k=1.. so index 2 is k=3
		t.Fatalf("power peak at k=%d, want k=3 (index 2): %v", kPeak+1, p)
	}
}

func TestPowerSpectrumDegenerateField(t *testing.T) {
	n := 4
	field := make([]float64, n*n*n) // all-zero mean
	if _, err := PowerSpectrum3D(field, n); err == nil {
		t.Fatal("zero-mean field accepted")
	}
	field[0] = math.NaN()
	if _, err := PowerSpectrum3D(field, n); err == nil {
		t.Fatal("NaN field accepted")
	}
	if _, err := PowerSpectrum3D(make([]float64, 10), 4); err == nil {
		t.Fatal("bad length accepted")
	}
}

func TestFoldFreq(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 4: 4, 5: -3, 7: -1}
	for i, want := range cases {
		if got := foldFreq(i, 8); got != want {
			t.Errorf("foldFreq(%d,8) = %d, want %d", i, got, want)
		}
	}
}
