// Package fft provides the radix-2 fast Fourier transform used by the Nyx
// power-spectrum post-analysis. The paper lists the power spectrum
// ("statistically describing the amount of the Universe at each physical
// scale") alongside the halo finder as Nyx's post-analysis programs; this
// package supplies the transform machinery for it from scratch.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Forward computes the in-place radix-2 decimation-in-time FFT of x.
// len(x) must be a power of two.
func Forward(x []complex128) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	bitReverse(x)
	for span := 2; span <= n; span <<= 1 {
		half := span >> 1
		// Principal root of unity for this stage.
		w := cmplx.Exp(complex(0, -2*math.Pi/float64(span)))
		for start := 0; start < n; start += span {
			tw := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * tw
				x[start+k] = a + b
				x[start+k+half] = a - b
				tw *= w
			}
		}
	}
	return nil
}

// Inverse computes the in-place inverse FFT (normalized by 1/N).
func Inverse(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := Forward(x); err != nil {
		return err
	}
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * scale
	}
	return nil
}

func bitReverse(x []complex128) {
	n := len(x)
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		mask := n >> 1
		for j&mask != 0 {
			j &^= mask
			mask >>= 1
		}
		j |= mask
	}
}

// Forward3D computes the 3-D FFT of an n×n×n cube stored row-major
// (index = (z·n + y)·n + x), transforming each axis in turn.
func Forward3D(data []complex128, n int) error {
	if len(data) != n*n*n {
		return fmt.Errorf("fft: data length %d does not match n³ = %d", len(data), n*n*n)
	}
	if !IsPow2(n) {
		return fmt.Errorf("fft: edge %d is not a power of two", n)
	}
	line := make([]complex128, n)
	// X lines.
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			base := (z*n + y) * n
			copy(line, data[base:base+n])
			if err := Forward(line); err != nil {
				return err
			}
			copy(data[base:base+n], line)
		}
	}
	// Y lines.
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				line[y] = data[(z*n+y)*n+x]
			}
			if err := Forward(line); err != nil {
				return err
			}
			for y := 0; y < n; y++ {
				data[(z*n+y)*n+x] = line[y]
			}
		}
	}
	// Z lines.
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			for z := 0; z < n; z++ {
				line[z] = data[(z*n+y)*n+x]
			}
			if err := Forward(line); err != nil {
				return err
			}
			for z := 0; z < n; z++ {
				data[(z*n+y)*n+x] = line[z]
			}
		}
	}
	return nil
}

// PowerSpectrum3D computes the radially binned power spectrum P(k) of a
// real n×n×n field: the density contrast δ = field/mean − 1 is transformed
// and |δ̂(k)|² is averaged over spherical shells of integer wavenumber.
// It returns the per-shell mean power for k = 1 .. n/2.
func PowerSpectrum3D(field []float64, n int) ([]float64, error) {
	if len(field) != n*n*n {
		return nil, fmt.Errorf("fft: field length %d does not match n³", len(field))
	}
	var mean float64
	for _, v := range field {
		mean += v
	}
	mean /= float64(len(field))
	if mean == 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return nil, fmt.Errorf("fft: degenerate field mean %v", mean)
	}
	data := make([]complex128, len(field))
	for i, v := range field {
		data[i] = complex(v/mean-1, 0)
	}
	if err := Forward3D(data, n); err != nil {
		return nil, err
	}
	bins := n / 2
	power := make([]float64, bins+1)
	counts := make([]int, bins+1)
	for z := 0; z < n; z++ {
		kz := foldFreq(z, n)
		for y := 0; y < n; y++ {
			ky := foldFreq(y, n)
			for x := 0; x < n; x++ {
				kx := foldFreq(x, n)
				k := int(math.Round(math.Sqrt(float64(kx*kx + ky*ky + kz*kz))))
				if k < 1 || k > bins {
					continue
				}
				c := data[(z*n+y)*n+x]
				power[k] += real(c)*real(c) + imag(c)*imag(c)
				counts[k]++
			}
		}
	}
	out := make([]float64, bins)
	norm := float64(len(field)) // FFT normalization
	for k := 1; k <= bins; k++ {
		if counts[k] > 0 {
			out[k-1] = power[k] / float64(counts[k]) / norm
		}
	}
	return out, nil
}

// foldFreq maps an FFT bin index to its signed frequency.
func foldFreq(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}
