package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
)

// OSFS implements FS on top of a real directory tree, the moral equivalent
// of the paper's FFISFS mount point backed by ext4/Lustre: campaigns can
// interpose the very same injector wrappers over real storage instead of
// MemFS. All paths are interpreted relative to Root and confined to it.
type OSFS struct {
	Root string
}

// NewOSFS returns a file system rooted at dir.
func NewOSFS(dir string) *OSFS { return &OSFS{Root: dir} }

// Capabilities declares OSFS's backend profile: byte-addressable, but not
// clonable — its state lives outside the process, so there is no cheap COW
// snapshot (see CloneFS) — and not latency-modeled (its latency is real).
func (o *OSFS) Capabilities() Capability { return CapByteAddressable }

// CloneFS implements Cloner by refusing: OSFS cannot snapshot a real
// directory tree as a copy-on-write clone. Implementing the interface
// anyway lets MountFS.Clone and core's snapshot probe surface the honest
// ErrNotClonable (callers then fall back to rebuild-per-run) instead of
// inferring it from a missing method.
func (o *OSFS) CloneFS() (FS, error) {
	return nil, &PathError{Op: "clone", Path: "/", Err: ErrNotClonable}
}

// osError pairs a host-OS error with the package sentinel it corresponds
// to: errors.Is matches either, and the message stays the host's.
type osError struct {
	err      error
	sentinel error
}

func (e *osError) Error() string   { return e.err.Error() }
func (e *osError) Unwrap() []error { return []error{e.err, e.sentinel} }

// osErr maps host-OS error shapes onto this package's sentinels so OSFS
// satisfies the same behavioral contract as the hermetic backends:
// errors.Is(err, ErrNotDir) holds whether the backend is MemFS or a real
// ext4 tree. ErrNotExist and ErrExist need no mapping (they alias io/fs,
// which the os package already wraps); the errno-shaped conditions do.
func osErr(err error) error {
	if err == nil {
		return nil
	}
	for _, m := range []struct {
		host     error
		sentinel error
	}{
		{os.ErrClosed, ErrClosed},
		{syscall.ENOTDIR, ErrNotDir},
		{syscall.ENOTEMPTY, ErrDirNotEmpty},
		{syscall.EISDIR, ErrIsDir},
	} {
		if errors.Is(err, m.host) {
			return &osError{err: err, sentinel: m.sentinel}
		}
	}
	return err
}

// resolve maps a virtual path onto the host file system, confining it to
// Root (".." escapes are squashed by Clean's rooted normalization).
func (o *OSFS) resolve(name string) string {
	clean := Clean(name) // rooted, ".." resolved against "/"
	return filepath.Join(o.Root, filepath.FromSlash(strings.TrimPrefix(clean, "/")))
}

// Create opens name for writing, creating or truncating it.
func (o *OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(o.resolve(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, osErr(err)
	}
	return &osFile{name: Clean(name), f: f}, nil
}

// Open opens name read-only.
func (o *OSFS) Open(name string) (File, error) {
	f, err := os.Open(o.resolve(name))
	if err != nil {
		return nil, osErr(err)
	}
	return &osFile{name: Clean(name), f: f, readOnly: true}, nil
}

// Append opens name for writing at end-of-file, creating it if needed.
func (o *OSFS) Append(name string) (File, error) {
	// O_APPEND would defeat WriteAt, so seek manually instead.
	f, err := os.OpenFile(o.resolve(name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, osErr(err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, osErr(err)
	}
	return &osFile{name: Clean(name), f: f}, nil
}

// Mkdir creates one directory level.
func (o *OSFS) Mkdir(name string) error { return osErr(os.Mkdir(o.resolve(name), 0o755)) }

// MkdirAll creates name and any missing parents.
func (o *OSFS) MkdirAll(name string) error { return osErr(os.MkdirAll(o.resolve(name), 0o755)) }

// Remove unlinks a file or empty directory.
func (o *OSFS) Remove(name string) error { return osErr(os.Remove(o.resolve(name))) }

// RemoveAll removes name recursively; absent names are not an error.
func (o *OSFS) RemoveAll(name string) error { return osErr(os.RemoveAll(o.resolve(name))) }

// Rename moves oldName to newName.
func (o *OSFS) Rename(oldName, newName string) error {
	return osErr(os.Rename(o.resolve(oldName), o.resolve(newName)))
}

// Stat returns metadata for name.
func (o *OSFS) Stat(name string) (FileInfo, error) {
	fi, err := os.Stat(o.resolve(name))
	if err != nil {
		return FileInfo{}, osErr(err)
	}
	return FileInfo{
		Name:  fi.Name(),
		Size:  fi.Size(),
		Mode:  uint32(fi.Mode().Perm()),
		IsDir: fi.IsDir(),
	}, nil
}

// ReadDir lists the children of name in sorted order.
func (o *OSFS) ReadDir(name string) ([]FileInfo, error) {
	entries, err := os.ReadDir(o.resolve(name))
	if err != nil {
		return nil, osErr(err)
	}
	out := make([]FileInfo, 0, len(entries))
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			return nil, err
		}
		out = append(out, FileInfo{
			Name:  e.Name(),
			Size:  fi.Size(),
			Mode:  uint32(fi.Mode().Perm()),
			IsDir: e.IsDir(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Mknod creates a regular marker file recording the mode (portable stand-in
// for device nodes, which require privileges).
func (o *OSFS) Mknod(name string, mode uint32, dev uint64) error {
	f, err := os.OpenFile(o.resolve(name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, os.FileMode(mode&0o777))
	if err != nil {
		return osErr(err)
	}
	return osErr(f.Close())
}

// Chmod changes the permission bits of name.
func (o *OSFS) Chmod(name string, mode uint32) error {
	return osErr(os.Chmod(o.resolve(name), os.FileMode(mode&0o777)))
}

// Truncate resizes name.
func (o *OSFS) Truncate(name string, size int64) error {
	return osErr(os.Truncate(o.resolve(name), size))
}

type osFile struct {
	name     string
	f        *os.File
	readOnly bool
}

func (f *osFile) Name() string { return f.name }

func (f *osFile) Read(p []byte) (int, error) {
	n, err := f.f.Read(p)
	return n, readErr(err)
}

func (f *osFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.f.ReadAt(p, off)
	return n, readErr(err)
}

// readErr normalizes read-path errors while leaving io.EOF untouched (it
// is a result, not a failure).
func readErr(err error) error {
	if err == io.EOF {
		return err
	}
	return osErr(err)
}

func (f *osFile) Write(p []byte) (int, error) {
	if f.readOnly {
		return 0, ErrReadOnly
	}
	n, err := f.f.Write(p)
	return n, osErr(err)
}

func (f *osFile) WriteAt(p []byte, off int64) (int, error) {
	if f.readOnly {
		return 0, ErrReadOnly
	}
	n, err := f.f.WriteAt(p, off)
	return n, osErr(err)
}

func (f *osFile) Seek(offset int64, whence int) (int64, error) {
	pos, err := f.f.Seek(offset, whence)
	return pos, osErr(err)
}

func (f *osFile) Truncate(size int64) error {
	if f.readOnly {
		return ErrReadOnly
	}
	return osErr(f.f.Truncate(size))
}

func (f *osFile) Size() (int64, error) {
	fi, err := f.f.Stat()
	if err != nil {
		return 0, osErr(err)
	}
	return fi.Size(), nil
}

func (f *osFile) Sync() error { return osErr(f.f.Sync()) }

func (f *osFile) Close() error { return osErr(f.f.Close()) }

var (
	_ FS                 = (*OSFS)(nil)
	_ File               = (*osFile)(nil)
	_ Cloner             = (*OSFS)(nil)
	_ CapabilityReporter = (*OSFS)(nil)
)
