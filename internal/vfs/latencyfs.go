package vfs

import (
	"sync/atomic"
	"time"
)

// CostModel prices the I/O of one storage tier for LatencyFS. Costs are
// charged to a simulated clock, never slept: a per-operation latency by
// class plus a bandwidth term proportional to the bytes moved. Zero
// bytes-per-second means infinite bandwidth (no byte term).
type CostModel struct {
	// ReadLatency is charged per read-class data operation (Read, ReadAt).
	ReadLatency time.Duration
	// WriteLatency is charged per write-class data operation (Write,
	// WriteAt, Truncate).
	WriteLatency time.Duration
	// MetaLatency is charged per namespace or metadata operation (Create,
	// Open, Mkdir, Stat, ReadDir, Rename, ...).
	MetaLatency time.Duration
	// ReadBytesPerSec and WriteBytesPerSec are the tier's bandwidth
	// budgets; each data operation additionally charges bytes/rate.
	ReadBytesPerSec  int64
	WriteBytesPerSec int64
}

// Canonical tier models for the burst-buffer-vs-PFS placement sweeps. The
// constants are plausible campaign-scale magnitudes, not measurements: what
// matters for the experiments is the ratio between tiers and that the
// numbers are deterministic.
var (
	// BurstBufferModel approximates a node-local NVMe burst buffer:
	// microsecond operations, multi-GiB/s streams.
	BurstBufferModel = CostModel{
		ReadLatency:      10 * time.Microsecond,
		WriteLatency:     20 * time.Microsecond,
		MetaLatency:      5 * time.Microsecond,
		ReadBytesPerSec:  8 << 30,
		WriteBytesPerSec: 4 << 30,
	}
	// ParallelFSModel approximates a shared parallel file system
	// (Lustre-class): high per-operation latency dominated by RPCs,
	// respectable streaming bandwidth.
	ParallelFSModel = CostModel{
		ReadLatency:      500 * time.Microsecond,
		WriteLatency:     800 * time.Microsecond,
		MetaLatency:      1 * time.Millisecond,
		ReadBytesPerSec:  2 << 30,
		WriteBytesPerSec: 1 << 30,
	}
)

// readCost prices a read of n bytes.
func (c CostModel) readCost(n int) int64 {
	ns := int64(c.ReadLatency)
	if c.ReadBytesPerSec > 0 {
		ns += int64(n) * int64(time.Second) / c.ReadBytesPerSec
	}
	return ns
}

// writeCost prices a write of n bytes.
func (c CostModel) writeCost(n int) int64 {
	ns := int64(c.WriteLatency)
	if c.WriteBytesPerSec > 0 {
		ns += int64(n) * int64(time.Second) / c.WriteBytesPerSec
	}
	return ns
}

// LatencyFS wraps a backend and charges every operation against a
// deterministic simulated clock, so placement sweeps produce *time*
// results — "this campaign moved X bytes over a PFS-class tier and would
// have taken T" — without sleeping. Charges are commutative atomic
// additions: the accumulated total depends only on the set of operations
// performed, not on goroutine interleaving or worker count, which is what
// keeps the campaign determinism harness green over latency-modeled
// worlds.
//
// CloneFS clones the inner backend (which must support it) and gives the
// clone a fresh clock; the campaign driver additionally resets clocks
// immediately before each run (ResetSim) so cloned and rebuilt worlds
// measure identically.
type LatencyFS struct {
	inner FS
	cost  CostModel
	ns    *atomic.Int64
}

// NewLatencyFS wraps inner with the given cost model.
func NewLatencyFS(inner FS, cost CostModel) *LatencyFS {
	return &LatencyFS{inner: inner, cost: cost, ns: new(atomic.Int64)}
}

// Inner returns the wrapped backend.
func (l *LatencyFS) Inner() FS { return l.inner }

// SimElapsed implements SimClocked.
func (l *LatencyFS) SimElapsed() time.Duration { return time.Duration(l.ns.Load()) }

// ResetSim implements SimClocked.
func (l *LatencyFS) ResetSim() { l.ns.Store(0) }

// Capabilities declares the inner backend's profile plus latency modeling.
func (l *LatencyFS) Capabilities() Capability {
	return CapabilitiesOf(l.inner) | CapLatencyModeled
}

// CloneFS implements Cloner when the inner backend does: the clone shares
// the cost model, snapshots the inner state, and starts a fresh clock.
func (l *LatencyFS) CloneFS() (FS, error) {
	c, ok := l.inner.(Cloner)
	if !ok {
		return nil, ErrNotClonable
	}
	inner, err := c.CloneFS()
	if err != nil {
		return nil, err
	}
	return NewLatencyFS(inner, l.cost), nil
}

func (l *LatencyFS) meta()       { l.ns.Add(int64(l.cost.MetaLatency)) }
func (l *LatencyFS) read(n int)  { l.ns.Add(l.cost.readCost(n)) }
func (l *LatencyFS) write(n int) { l.ns.Add(l.cost.writeCost(n)) }

func (l *LatencyFS) Create(name string) (File, error) {
	l.meta()
	f, err := l.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &latencyFile{File: f, fs: l}, nil
}

func (l *LatencyFS) Open(name string) (File, error) {
	l.meta()
	f, err := l.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &latencyFile{File: f, fs: l}, nil
}

func (l *LatencyFS) Append(name string) (File, error) {
	l.meta()
	f, err := l.inner.Append(name)
	if err != nil {
		return nil, err
	}
	return &latencyFile{File: f, fs: l}, nil
}

func (l *LatencyFS) Mkdir(name string) error    { l.meta(); return l.inner.Mkdir(name) }
func (l *LatencyFS) MkdirAll(name string) error { l.meta(); return l.inner.MkdirAll(name) }
func (l *LatencyFS) Remove(name string) error   { l.meta(); return l.inner.Remove(name) }
func (l *LatencyFS) RemoveAll(name string) error {
	l.meta()
	return l.inner.RemoveAll(name)
}

func (l *LatencyFS) Rename(oldName, newName string) error {
	l.meta()
	return l.inner.Rename(oldName, newName)
}

func (l *LatencyFS) Stat(name string) (FileInfo, error) { l.meta(); return l.inner.Stat(name) }
func (l *LatencyFS) ReadDir(name string) ([]FileInfo, error) {
	l.meta()
	return l.inner.ReadDir(name)
}

func (l *LatencyFS) Mknod(name string, mode uint32, dev uint64) error {
	l.meta()
	return l.inner.Mknod(name, mode, dev)
}

func (l *LatencyFS) Chmod(name string, mode uint32) error {
	l.meta()
	return l.inner.Chmod(name, mode)
}

func (l *LatencyFS) Truncate(name string, size int64) error {
	l.write(0)
	return l.inner.Truncate(name, size)
}

// latencyFile charges data operations on an open handle. Only the bytes
// actually transferred are billed, so a short read prices what moved.
type latencyFile struct {
	File
	fs *LatencyFS
}

func (f *latencyFile) Read(p []byte) (int, error) {
	n, err := f.File.Read(p)
	f.fs.read(n)
	return n, err
}

func (f *latencyFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.File.ReadAt(p, off)
	f.fs.read(n)
	return n, err
}

func (f *latencyFile) Write(p []byte) (int, error) {
	n, err := f.File.Write(p)
	f.fs.write(n)
	return n, err
}

func (f *latencyFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.File.WriteAt(p, off)
	f.fs.write(n)
	return n, err
}

func (f *latencyFile) Truncate(size int64) error {
	f.fs.write(0)
	return f.File.Truncate(size)
}

var (
	_ FS                 = (*LatencyFS)(nil)
	_ File               = (*latencyFile)(nil)
	_ Cloner             = (*LatencyFS)(nil)
	_ CapabilityReporter = (*LatencyFS)(nil)
	_ SimClocked         = (*LatencyFS)(nil)
)
