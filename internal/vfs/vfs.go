// Package vfs defines the file-system boundary that FFIS instruments.
//
// In the paper, FFIS interposes on the FUSE callback layer: applications
// issue POSIX calls, the kernel routes them to the user-space handlers, and
// the fault injector corrupts the arguments on their way to the backing
// store. This package is the Go equivalent of that boundary: an FS interface
// with FUSE-shaped primitives, an in-memory implementation (MemFS) standing
// in for the backing device, and wrapper implementations (CountingFS here;
// core.InjectorFS in package core) standing in for the FFIS instrumentation
// inserted between the application and the store.
//
// Where the paper has a single FFISFS mount point over one device, MountFS
// generalizes the boundary to tiered storage: a Unix-style mount table
// routes each path to the backend owning the longest matching segment
// prefix, and WithInterposed layers instrumentation over exactly one mount.
// That is the injection-routing contract used by core's
// CampaignConfig.ArmMounts — a fault signature armed on the burst-buffer
// tier corrupts only the I/O routed there, while every other tier stays
// clean.
//
// Everything the applications in internal/apps do to persistent state flows
// through this interface, exactly as the paper requires transparency (R1)
// and convenience (R2): applications never know whether they run on a bare
// MemFS, a counting profiler, an armed fault injector, or a mount table
// dispatching to several of each.
package vfs

import (
	"errors"
	"io"
	iofs "io/fs"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Sentinel errors. ErrNotExist and ErrExist alias the stdlib io/fs errors so
// callers can use errors.Is with either spelling.
var (
	ErrNotExist    = iofs.ErrNotExist
	ErrExist       = iofs.ErrExist
	ErrIsDir       = errors.New("vfs: is a directory")
	ErrNotDir      = errors.New("vfs: not a directory")
	ErrClosed      = errors.New("vfs: file already closed")
	ErrReadOnly    = errors.New("vfs: file opened read-only")
	ErrDirNotEmpty = errors.New("vfs: directory not empty")
	// ErrUnreadable is the EIO a device returns for an uncorrectable sector:
	// the read fails, the data is not delivered, and retrying does not help.
	// core's UnreadableSector fault model surfaces it through the armed read
	// path; applications test for it with errors.Is like the other sentinels.
	ErrUnreadable = errors.New("vfs: unreadable sector (EIO)")
	// ErrDeviceFailed is the EIO of a device that dropped off the bus
	// entirely: from some operation onward every read and write fails.
	// core's DeviceFailure fault model surfaces it on the armed mount.
	ErrDeviceFailed = errors.New("vfs: device failed (EIO)")
)

// FileInfo describes a file or directory.
type FileInfo struct {
	Name  string // base name
	Size  int64  // content length in bytes (0 for directories)
	Mode  uint32 // permission bits, POSIX style
	IsDir bool
}

// File is an open file handle. ReadAt/WriteAt mirror pread/pwrite — the
// primitives the paper's FFIS_write instrumentation feeds — while
// Read/Write/Seek provide the sequential interface applications typically
// use. Implementations must allow concurrent calls on distinct handles.
type File interface {
	// Name returns the cleaned absolute path this handle was opened with.
	Name() string
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// ReadAt is pread(2): it does not move the sequential offset.
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt is pwrite(2): it does not move the sequential offset.
	WriteAt(p []byte, off int64) (int, error)
	// Truncate changes the file size.
	Truncate(size int64) error
	// Size reports the current content length.
	Size() (int64, error)
	// Sync flushes buffered state. MemFS is always durable, so this is a
	// no-op there, but the interface keeps applications honest about where
	// their durability points are — the same points FFIS targets.
	Sync() error
}

// FS is the FUSE-shaped primitive set FFIS interposes on. The method set
// matches the callbacks named in Table I of the paper (write, mknod, chmod,
// ...) plus the read-side operations applications need.
type FS interface {
	Create(name string) (File, error)        // open for write, truncating
	Open(name string) (File, error)          // open read-only
	Append(name string) (File, error)        // open for write at end, creating
	Mkdir(name string) error                 // create one directory level
	MkdirAll(name string) error              // create a directory tree
	Remove(name string) error                // unlink a file or empty dir
	RemoveAll(name string) error             // recursive remove, nil if absent
	Rename(oldName, newName string) error    // atomic rename
	Stat(name string) (FileInfo, error)      // metadata lookup
	ReadDir(name string) ([]FileInfo, error) // sorted directory listing
	Mknod(name string, mode uint32, dev uint64) error
	Chmod(name string, mode uint32) error
	Truncate(name string, size int64) error
}

// Clean normalizes a path to the canonical rooted slash form used as map
// keys by MemFS and by the wrappers' accounting.
func Clean(name string) string {
	if name == "" {
		return "/"
	}
	if !strings.HasPrefix(name, "/") {
		name = "/" + name
	}
	return path.Clean(name)
}

// ReadFile reads the whole content of name.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	n, err := io.ReadFull(f, buf)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	return buf[:n], nil
}

// WriteFile writes data to name, creating or truncating it.
func WriteFile(fsys FS, name string, data []byte) error {
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Exists reports whether name exists in fsys.
func Exists(fsys FS, name string) bool {
	_, err := fsys.Stat(name)
	return err == nil
}

// CopyFile copies src to dst within fsys.
func CopyFile(fsys FS, dst, src string) error {
	data, err := ReadFile(fsys, src)
	if err != nil {
		return err
	}
	return WriteFile(fsys, dst, data)
}

// Walk calls fn for every file (not directory) under root, in sorted path
// order. It is used by test helpers and the experiment harness to snapshot
// file trees for golden comparison.
func Walk(fsys FS, root string, fn func(p string, info FileInfo) error) error {
	infos, err := fsys.ReadDir(root)
	if err != nil {
		return err
	}
	root = Clean(root)
	for _, info := range infos {
		child := path.Join(root, info.Name)
		if info.IsDir {
			if err := Walk(fsys, child, fn); err != nil {
				return err
			}
			continue
		}
		if err := fn(child, info); err != nil {
			return err
		}
	}
	return nil
}

// BlockSize is the extent granularity of MemFS file storage: content is
// held as a table of fixed-size blocks, and copy-on-write after a Clone
// operates per block. 64 KiB matches the transfer sizes of the paper's
// workloads closely enough that a first write after a clone touches one or
// two blocks, never the whole file.
const BlockSize = 64 << 10

// memBlock is one extent of file content. data holds the materialized
// bytes of the block (len(data) <= BlockSize); logical bytes past
// len(data) — and entire nil table entries — read as zero, so sparse
// regions and truncate-grown tails cost nothing until written.
//
// sealed marks the block immutable: Clone seals every block of every node
// it snapshots, after which the block may be referenced from any number of
// trees and its bytes must never change again. A writer that lands on a
// sealed block copies it into a fresh private block first (see
// memNode.ownBlock) — the per-extent copy-before-write that replaced the
// old whole-file ensureOwned. Sealing is monotonic (false→true once,
// never cleared), so concurrent readers in other trees can check it with
// a plain atomic load while holding only their own node's lock.
type memBlock struct {
	sealed atomic.Bool
	data   []byte
}

// memNode is a single entry (file or directory) in a MemFS tree. File
// content is size plus a block table; the table slice is private to the
// node (Clone copies it), while the blocks it points at may be sealed and
// shared across trees.
type memNode struct {
	mu     sync.RWMutex
	size   int64
	blocks []*memBlock
	mode   uint32
	isDir  bool
	dev    uint64 // mknod device number; kept so metadata faults have a target
}

// blockCount returns how many table entries a file of the given size needs.
func blockCount(size int64) int {
	return int((size + BlockSize - 1) / BlockSize)
}

// blockLen returns the valid in-block length of block bi under the node's
// current size: BlockSize for interior blocks, the remainder for the tail.
// Caller holds n.mu.
func (n *memNode) blockLen(bi int) int {
	l := n.size - int64(bi)*BlockSize
	if l > BlockSize {
		l = BlockSize
	}
	return int(l)
}

// readAt copies content at off into p, zero-filling holes (nil blocks and
// bytes past a block's materialized prefix). Caller holds n.mu for reading.
func (n *memNode) readAt(p []byte, off int64) (int, error) {
	if off >= n.size {
		return 0, io.EOF
	}
	total := 0
	for total < len(p) && off < n.size {
		bi := int(off / BlockSize)
		bo := int(off % BlockSize)
		want := n.blockLen(bi) - bo
		if rem := len(p) - total; want > rem {
			want = rem
		}
		dst := p[total : total+want]
		copied := 0
		if b := n.blocks[bi]; b != nil && bo < len(b.data) {
			copied = copy(dst, b.data[bo:])
		}
		clear(dst[copied:])
		total += want
		off += int64(want)
	}
	if total < len(p) {
		return total, io.EOF
	}
	return total, nil
}

// write copies p into the node at off, growing the file as needed. Only
// the blocks the write actually touches are materialized or copied, so the
// first write after a Clone costs O(touched extents), not O(file size).
// Caller holds n.mu for writing.
func (n *memNode) write(p []byte, off int64) {
	if end := off + int64(len(p)); end > n.size {
		n.grow(end)
	}
	for len(p) > 0 {
		bi := int(off / BlockSize)
		bo := int(off % BlockSize)
		nc := copy(n.ownBlock(bi)[bo:], p)
		p = p[nc:]
		off += int64(nc)
	}
}

// ownBlock returns block bi's bytes, private to this node and materialized
// to the block's full valid length: zero extents are allocated, sealed
// (clone-shared) blocks are copied, and an owned block whose materialized
// prefix is shorter than the file now requires is extended with zeros.
// Caller holds n.mu for writing.
func (n *memNode) ownBlock(bi int) []byte {
	bl := n.blockLen(bi)
	b := n.blocks[bi]
	switch {
	case b == nil:
		b = &memBlock{data: make([]byte, bl)}
		n.blocks[bi] = b
	case b.sealed.Load():
		data := make([]byte, bl)
		copy(data, b.data)
		b = &memBlock{data: data}
		n.blocks[bi] = b
	case len(b.data) < bl:
		if cap(b.data) >= bl {
			// Reslicing may expose bytes left over from before a shrink;
			// the logical content there is zero, so clear them.
			old := len(b.data)
			b.data = b.data[:bl]
			clear(b.data[old:])
		} else {
			data := make([]byte, bl)
			copy(data, b.data)
			b.data = data
		}
	}
	return b.data
}

// grow extends the file to size without materializing anything: new table
// entries are nil (all-zero) extents. Caller holds n.mu for writing.
func (n *memNode) grow(size int64) {
	n.size = size
	for nb := blockCount(size); len(n.blocks) < nb; {
		n.blocks = append(n.blocks, nil)
	}
}

// truncate resizes the node. Shrinking drops whole blocks past the new end
// and trims the new tail block — copying it when sealed, since a shared
// block's bytes (including its slice header) must never change; growing is
// the zero-materialization grow path. Caller holds n.mu for writing.
func (n *memNode) truncate(size int64) {
	switch {
	case size < n.size:
		n.blocks = n.blocks[:blockCount(size)]
		n.size = size
		if len(n.blocks) == 0 {
			return
		}
		bi := len(n.blocks) - 1
		b := n.blocks[bi]
		bl := n.blockLen(bi)
		if b == nil || len(b.data) <= bl {
			return
		}
		if b.sealed.Load() {
			data := make([]byte, bl)
			copy(data, b.data)
			n.blocks[bi] = &memBlock{data: data}
		} else {
			b.data = b.data[:bl]
		}
	case size > n.size:
		n.grow(size)
	}
}

// MemFS is a thread-safe, in-memory file system. It stands in for the
// "underline file system + SSD" below FFIS: bytes written here are what the
// application later reads back, so corrupting a write corrupts the durable
// state exactly once, with no caching layer to mask it.
//
// The zero value is not usable; call NewMemFS.
type MemFS struct {
	mu    sync.RWMutex
	nodes map[string]*memNode
}

// NewMemFS returns an empty file system containing only the root directory.
func NewMemFS() *MemFS {
	return &MemFS{nodes: map[string]*memNode{
		"/": {isDir: true, mode: 0o755},
	}}
}

func (m *MemFS) lookup(name string) (*memNode, bool) {
	n, ok := m.nodes[Clean(name)]
	return n, ok
}

// parentOK reports whether the parent of name exists and is a directory.
func (m *MemFS) parentOK(name string) error {
	dir := path.Dir(Clean(name))
	n, ok := m.nodes[dir]
	if !ok {
		return &PathError{Op: "open", Path: name, Err: ErrNotExist}
	}
	if !n.isDir {
		return &PathError{Op: "open", Path: name, Err: ErrNotDir}
	}
	return nil
}

// PathError mirrors os.PathError for this virtual layer.
type PathError struct {
	Op   string
	Path string
	Err  error
}

func (e *PathError) Error() string { return "vfs " + e.Op + " " + e.Path + ": " + e.Err.Error() }
func (e *PathError) Unwrap() error { return e.Err }

// Create opens name for writing, creating or truncating it.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = Clean(name)
	if err := m.parentOK(name); err != nil {
		return nil, err
	}
	if n, ok := m.nodes[name]; ok {
		if n.isDir {
			return nil, &PathError{Op: "create", Path: name, Err: ErrIsDir}
		}
		n.mu.Lock()
		// Truncating to zero never needs the old bytes: drop the block
		// table outright (sealed blocks are simply dereferenced).
		n.size, n.blocks = 0, nil
		n.mu.Unlock()
		return &memFile{name: name, node: n, writable: true}, nil
	}
	n := &memNode{mode: 0o644}
	m.nodes[name] = n
	return &memFile{name: name, node: n, writable: true}, nil
}

// Open opens name read-only.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	name = Clean(name)
	n, ok := m.nodes[name]
	if !ok {
		return nil, &PathError{Op: "open", Path: name, Err: ErrNotExist}
	}
	if n.isDir {
		return nil, &PathError{Op: "open", Path: name, Err: ErrIsDir}
	}
	return &memFile{name: name, node: n, writable: false}, nil
}

// Append opens name for writing with the offset at end-of-file, creating the
// file if needed.
func (m *MemFS) Append(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = Clean(name)
	if err := m.parentOK(name); err != nil {
		return nil, err
	}
	n, ok := m.nodes[name]
	if !ok {
		n = &memNode{mode: 0o644}
		m.nodes[name] = n
	} else if n.isDir {
		return nil, &PathError{Op: "append", Path: name, Err: ErrIsDir}
	}
	n.mu.RLock()
	off := n.size
	n.mu.RUnlock()
	return &memFile{name: name, node: n, writable: true, off: off}, nil
}

// Mkdir creates a single directory level.
func (m *MemFS) Mkdir(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = Clean(name)
	if _, ok := m.nodes[name]; ok {
		return &PathError{Op: "mkdir", Path: name, Err: ErrExist}
	}
	if err := m.parentOK(name); err != nil {
		return err
	}
	m.nodes[name] = &memNode{isDir: true, mode: 0o755}
	return nil
}

// MkdirAll creates name and any missing parents.
func (m *MemFS) MkdirAll(name string) error {
	name = Clean(name)
	if name == "/" {
		return nil
	}
	var build strings.Builder
	for _, part := range strings.Split(strings.TrimPrefix(name, "/"), "/") {
		build.WriteString("/")
		build.WriteString(part)
		p := build.String()
		m.mu.Lock()
		if n, ok := m.nodes[p]; ok {
			isDir := n.isDir
			m.mu.Unlock()
			if !isDir {
				return &PathError{Op: "mkdir", Path: p, Err: ErrNotDir}
			}
			continue
		}
		m.nodes[p] = &memNode{isDir: true, mode: 0o755}
		m.mu.Unlock()
	}
	return nil
}

// Remove unlinks a file or an empty directory.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = Clean(name)
	n, ok := m.nodes[name]
	if !ok {
		return &PathError{Op: "remove", Path: name, Err: ErrNotExist}
	}
	if n.isDir {
		prefix := name + "/"
		if name == "/" {
			prefix = "/"
		}
		for p := range m.nodes {
			if p != name && strings.HasPrefix(p, prefix) {
				return &PathError{Op: "remove", Path: name, Err: ErrDirNotEmpty}
			}
		}
	}
	delete(m.nodes, name)
	return nil
}

// RemoveAll removes name and everything under it; absent names are not an
// error, matching os.RemoveAll.
func (m *MemFS) RemoveAll(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = Clean(name)
	if name == "/" {
		m.nodes = map[string]*memNode{"/": {isDir: true, mode: 0o755}}
		return nil
	}
	prefix := name + "/"
	for p := range m.nodes {
		if p == name || strings.HasPrefix(p, prefix) {
			delete(m.nodes, p)
		}
	}
	return nil
}

// Rename atomically moves oldName to newName (and any children when renaming
// a directory).
func (m *MemFS) Rename(oldName, newName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldName, newName = Clean(oldName), Clean(newName)
	n, ok := m.nodes[oldName]
	if !ok {
		return &PathError{Op: "rename", Path: oldName, Err: ErrNotExist}
	}
	if err := m.parentOK(newName); err != nil {
		return err
	}
	if dst, ok := m.nodes[newName]; ok && dst.isDir {
		return &PathError{Op: "rename", Path: newName, Err: ErrIsDir}
	}
	if n.isDir {
		oldPrefix := oldName + "/"
		moves := map[string]string{}
		for p := range m.nodes {
			if strings.HasPrefix(p, oldPrefix) {
				moves[p] = newName + "/" + strings.TrimPrefix(p, oldPrefix)
			}
		}
		for from, to := range moves {
			m.nodes[to] = m.nodes[from]
			delete(m.nodes, from)
		}
	}
	m.nodes[newName] = n
	delete(m.nodes, oldName)
	return nil
}

// Stat returns metadata for name.
func (m *MemFS) Stat(name string) (FileInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	name = Clean(name)
	n, ok := m.nodes[name]
	if !ok {
		return FileInfo{}, &PathError{Op: "stat", Path: name, Err: ErrNotExist}
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return FileInfo{
		Name:  path.Base(name),
		Size:  n.size,
		Mode:  n.mode,
		IsDir: n.isDir,
	}, nil
}

// ReadDir lists the immediate children of name in sorted order.
func (m *MemFS) ReadDir(name string) ([]FileInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	name = Clean(name)
	n, ok := m.nodes[name]
	if !ok {
		return nil, &PathError{Op: "readdir", Path: name, Err: ErrNotExist}
	}
	if !n.isDir {
		return nil, &PathError{Op: "readdir", Path: name, Err: ErrNotDir}
	}
	prefix := name + "/"
	if name == "/" {
		prefix = "/"
	}
	var out []FileInfo
	for p, child := range m.nodes {
		if p == name || !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := strings.TrimPrefix(p, prefix)
		if strings.Contains(rest, "/") {
			continue // not an immediate child
		}
		child.mu.RLock()
		out = append(out, FileInfo{
			Name:  rest,
			Size:  child.size,
			Mode:  child.mode,
			IsDir: child.isDir,
		})
		child.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Mknod creates a special node. MemFS records the mode and device number so
// that fault models targeting FFIS_mknod (Table I) have real state to hit.
func (m *MemFS) Mknod(name string, mode uint32, dev uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = Clean(name)
	if _, ok := m.nodes[name]; ok {
		return &PathError{Op: "mknod", Path: name, Err: ErrExist}
	}
	if err := m.parentOK(name); err != nil {
		return err
	}
	m.nodes[name] = &memNode{mode: mode, dev: dev}
	return nil
}

// Chmod changes the permission bits of name.
func (m *MemFS) Chmod(name string, mode uint32) error {
	m.mu.RLock()
	n, ok := m.lookup(name)
	m.mu.RUnlock()
	if !ok {
		return &PathError{Op: "chmod", Path: name, Err: ErrNotExist}
	}
	n.mu.Lock()
	n.mode = mode
	n.mu.Unlock()
	return nil
}

// Truncate resizes name to size bytes, zero-filling when growing.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.RLock()
	n, ok := m.lookup(name)
	m.mu.RUnlock()
	if !ok {
		return &PathError{Op: "truncate", Path: name, Err: ErrNotExist}
	}
	if n.isDir {
		return &PathError{Op: "truncate", Path: name, Err: ErrIsDir}
	}
	return truncateNode(n, size)
}

func truncateNode(n *memNode, size int64) error {
	if size < 0 {
		return errors.New("vfs: negative truncate size")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.truncate(size)
	return nil
}

// memFile is an open handle onto a memNode.
//
// The handle lock is an RWMutex so the closed check and the I/O it guards
// are one critical section: positional operations (ReadAt/WriteAt/Size/
// Truncate/Sync) hold the read side across the whole call — they can still
// run concurrently with each other, as pread/pwrite allow — while Close
// takes the write side, so it cannot slip between a handle's closed check
// and the node access (the old check-release-then-touch sequence let I/O
// on a closed handle succeed). Once Close returns, no in-flight operation
// on the handle is still touching the node and every later one fails with
// ErrClosed. Sequential Read/Write/Seek take the write side because they
// move off.
type memFile struct {
	name     string
	node     *memNode
	writable bool

	mu     sync.RWMutex // guards off and closed; see type comment
	off    int64
	closed bool
}

func (f *memFile) Name() string { return f.name }

func (f *memFile) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	n, err := f.readAt(p, f.off)
	f.off += int64(n)
	return n, err
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return 0, ErrClosed
	}
	return f.readAt(p, off)
}

func (f *memFile) readAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("vfs: negative read offset")
	}
	f.node.mu.RLock()
	defer f.node.mu.RUnlock()
	return f.node.readAt(p, off)
}

func (f *memFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	n, err := f.writeAt(p, f.off)
	f.off += int64(n)
	return n, err
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return 0, ErrClosed
	}
	return f.writeAt(p, off)
}

func (f *memFile) writeAt(p []byte, off int64) (int, error) {
	if !f.writable {
		return 0, ErrReadOnly
	}
	if off < 0 {
		return 0, errors.New("vfs: negative write offset")
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	f.node.write(p, off)
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		f.node.mu.RLock()
		base = f.node.size
		f.node.mu.RUnlock()
	default:
		return 0, errors.New("vfs: bad seek whence")
	}
	pos := base + offset
	if pos < 0 {
		return 0, errors.New("vfs: negative seek position")
	}
	f.off = pos
	return pos, nil
}

func (f *memFile) Truncate(size int64) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	if !f.writable {
		return ErrReadOnly
	}
	return truncateNode(f.node, size)
}

func (f *memFile) Size() (int64, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return 0, ErrClosed
	}
	f.node.mu.RLock()
	defer f.node.mu.RUnlock()
	return f.node.size, nil
}

func (f *memFile) Sync() error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	return nil
}

func (f *memFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	return nil
}

// Capabilities declares MemFS's backend profile: copy-on-write clonable
// and byte-addressable (extent-granular writes).
func (m *MemFS) Capabilities() Capability { return CapClone | CapByteAddressable }

// interface conformance checks
var (
	_ FS                 = (*MemFS)(nil)
	_ File               = (*memFile)(nil)
	_ CapabilityReporter = (*MemFS)(nil)
)
