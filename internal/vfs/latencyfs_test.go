package vfs

import (
	"errors"
	"testing"
	"time"
)

// TestLatencyFSDeterministicCharges: the simulated clock advances by an
// exactly computable amount — per-class latency plus bytes moved over the
// tier's bandwidth — so two identical operation sequences always price
// identically.
func TestLatencyFSDeterministicCharges(t *testing.T) {
	cost := CostModel{
		ReadLatency:      10 * time.Microsecond,
		WriteLatency:     20 * time.Microsecond,
		MetaLatency:      5 * time.Microsecond,
		ReadBytesPerSec:  1 << 20,
		WriteBytesPerSec: 1 << 20,
	}
	run := func() time.Duration {
		fs := NewLatencyFS(NewMemFS(), cost)
		f, err := fs.Create("/f") // meta
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 1<<19) // half the bandwidth budget: 0.5s
		if _, err := f.Write(payload); err != nil {
			t.Fatal(err)
		}
		f.Close()
		g, err := fs.Open("/f") // meta
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1<<19)
		if _, err := g.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		g.Close()
		return fs.SimElapsed()
	}
	want := 2*cost.MetaLatency + cost.WriteLatency + cost.ReadLatency + time.Second
	if got := run(); got != want {
		t.Fatalf("charged %v; want %v", got, want)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical sequences priced differently: %v vs %v", a, b)
	}
}

// TestLatencyFSBillsBytesMoved: a short read is billed for the bytes that
// actually transferred, not the buffer size.
func TestLatencyFSBillsBytesMoved(t *testing.T) {
	cost := CostModel{ReadBytesPerSec: 1000} // 1ms per byte, no fixed latency
	fs := NewLatencyFS(NewMemFS(), cost)
	if err := WriteFile(fs, "/f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	fs.ResetSim()
	f, _ := fs.Open("/f")
	defer f.Close()
	buf := make([]byte, 100)
	f.ReadAt(buf, 1) // only 2 bytes exist past offset 1
	if got, want := fs.SimElapsed(), 2*time.Millisecond; got != want {
		t.Fatalf("short read billed %v; want %v", got, want)
	}
}

// TestLatencyFSResetAndCloneClock: ResetSim zeroes the clock, and CloneFS
// snapshots the inner world but starts the clone's clock at zero — the
// protocol the campaign driver relies on to exclude Setup I/O and make COW
// clones measure like fresh rebuilds.
func TestLatencyFSResetAndCloneClock(t *testing.T) {
	fs := NewLatencyFS(NewMemFS(), BurstBufferModel)
	if err := WriteFile(fs, "/f", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if fs.SimElapsed() == 0 {
		t.Fatal("setup I/O charged nothing")
	}
	cloned, err := fs.CloneFS()
	if err != nil {
		t.Fatal(err)
	}
	clone := cloned.(*LatencyFS)
	if clone.SimElapsed() != 0 {
		t.Fatalf("clone inherited %v of clock", clone.SimElapsed())
	}
	if got, _ := ReadFile(clone, "/f"); len(got) != 4096 {
		t.Fatal("clone lost the inner snapshot")
	}
	fs.ResetSim()
	if fs.SimElapsed() != 0 {
		t.Fatal("ResetSim did not zero the clock")
	}
}

// TestLatencyFSRequiresClonableInner: wrapping a non-clonable backend is
// fine for plain use but CloneFS must refuse with the sentinel.
func TestLatencyFSRequiresClonableInner(t *testing.T) {
	fs := NewLatencyFS(NewOSFS(t.TempDir()), ParallelFSModel)
	if _, err := fs.CloneFS(); !errors.Is(err, ErrNotClonable) {
		t.Fatalf("CloneFS over OSFS err = %v, want ErrNotClonable", err)
	}
}

// TestMountFSSimAggregation: a mount table sums simulated time across its
// latency-modeled mounts, ignores unmodeled ones, and ResetSim zeroes every
// clocked mount. A world with no clocked mounts still implements SimClocked
// and reports zero — which is what keeps sim_ns omitempty on default
// worlds.
func TestMountFSSimAggregation(t *testing.T) {
	cost := CostModel{MetaLatency: time.Millisecond}
	bb := NewLatencyFS(NewMemFS(), cost)
	pfs := NewLatencyFS(NewMemFS(), cost)
	m := NewMountFS(NewMemFS())
	if err := m.Mount("/bb", bb); err != nil {
		t.Fatal(err)
	}
	if err := m.Mount("/pfs", pfs); err != nil {
		t.Fatal(err)
	}
	// One meta op routed into each mount plus unbilled root traffic.
	if err := m.Mkdir("/bb/d"); err != nil {
		t.Fatal(err)
	}
	if err := m.Mkdir("/pfs/d"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(m, "/rootfile", []byte("free")); err != nil {
		t.Fatal(err)
	}
	if got, want := m.SimElapsed(), 2*time.Millisecond; got != want {
		t.Fatalf("aggregated %v; want %v", got, want)
	}
	m.ResetSim()
	if m.SimElapsed() != 0 || bb.SimElapsed() != 0 || pfs.SimElapsed() != 0 {
		t.Fatal("ResetSim left a mount's clock running")
	}

	plain := NewMountFS(NewMemFS())
	if elapsed, ok := SimElapsed(plain); !ok || elapsed != 0 {
		t.Fatalf("unclocked mount table: SimElapsed = %v, %v; want 0, true", elapsed, ok)
	}
}

// TestSimElapsedHelpers: the package-level helpers answer (0, false) for
// unclocked backends and pass through for clocked ones; ResetSim on an
// unclocked backend is a no-op rather than a panic.
func TestSimElapsedHelpers(t *testing.T) {
	mem := NewMemFS()
	if elapsed, ok := SimElapsed(mem); ok || elapsed != 0 {
		t.Fatalf("MemFS SimElapsed = %v, %v; want 0, false", elapsed, ok)
	}
	ResetSim(mem) // must not panic

	l := NewLatencyFS(NewMemFS(), CostModel{MetaLatency: time.Microsecond})
	l.Mkdir("/d")
	if elapsed, ok := SimElapsed(l); !ok || elapsed != time.Microsecond {
		t.Fatalf("LatencyFS SimElapsed = %v, %v", elapsed, ok)
	}
	ResetSim(l)
	if l.SimElapsed() != 0 {
		t.Fatal("ResetSim helper did not reset")
	}
}
