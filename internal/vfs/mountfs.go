package vfs

import (
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// Mount-table sentinel errors. ErrCrossMount is the EXDEV of this layer:
// rename cannot move data between backends atomically, so MountFS rejects it
// and leaves the copy-and-delete decision to the caller — exactly the
// failure mode tiered HPC storage exposes when an application renames a
// burst-buffer file onto the parallel file system. ErrMountBusy guards the
// mount table itself (EBUSY): a mount point cannot be unlinked, renamed
// over, or swept away by RemoveAll while a backend is attached beneath it.
var (
	ErrCrossMount = &crossMountError{}
	ErrMountBusy  = &mountBusyError{}
)

type crossMountError struct{}

func (*crossMountError) Error() string { return "vfs: cross-mount operation" }

type mountBusyError struct{}

func (*mountBusyError) Error() string { return "vfs: mount point busy" }

// MountPoint describes one entry of a MountFS table: the absolute path the
// backend is attached at and the backend itself.
type MountPoint struct {
	Path string
	FS   FS
}

// MountFS is a Unix-style mount table implementing FS: a set of backends
// attached at directory paths, with every operation routed to the backend
// owning the longest matching path prefix (on whole path segments, so a
// mount at /scratch never captures /scratchpad).
//
// This is the storage-tier model the paper's methodology implies but its
// flat FFISFS mount point cannot express: an HPC application sees one
// namespace, yet /scratch may be a burst buffer and /project a parallel
// file system, and a storage fault lives in ONE of those devices. By
// mounting a separate backend per tier and interposing the fault injector
// on a single mount (see WithInterposed and core's CampaignConfig.ArmMounts),
// a campaign corrupts exactly the I/O routed to the faulty tier while every
// other tier stays clean — transparency (R1) holds because MountFS is just
// another FS to the application.
//
// Semantics, in Unix terms:
//
//   - Mount materializes the mount-point directory in the covering backend
//     (like mounting over an existing directory), so parent ReadDir listings
//     naturally include it and Stat on the mount point reports a directory.
//   - Nested mounts shadow their ancestors: with backends at /a and /a/b,
//     paths under /a/b route to the inner backend.
//   - Rename across two backends fails with ErrCrossMount (EXDEV).
//   - Remove/RemoveAll/Rename refuse to disturb a live mount point
//     (ErrMountBusy), and the root mount cannot be unmounted.
//
// MountFS is safe for concurrent use; the table itself is guarded by an
// RWMutex and all per-file state lives in the backends.
type MountFS struct {
	mu     sync.RWMutex
	mounts []mountEntry // resolution scans for the longest segment-prefix
}

// mountEntry is the table's internal form of a MountPoint. abs marks an
// interposed entry whose FS expects table-absolute paths (see
// WithInterposed): the interposition stack then observes the same namespace
// the application uses, so fault-mutation records name the tier they hit.
type mountEntry struct {
	path string
	fs   FS
	abs  bool
}

// NewMountFS returns a mount table with root attached at "/". The result is
// behaviourally identical to using root directly until further backends are
// mounted.
func NewMountFS(root FS) *MountFS {
	return &MountFS{mounts: []mountEntry{{path: "/", fs: root}}}
}

// Mount attaches backend at dir. The mount-point directory is created in the
// covering mount (MkdirAll through the table as it stands), mirroring the
// Unix requirement that a mount point be an existing directory; mounting
// over a regular file fails with ErrNotDir. Mounting at a path that already
// hosts a backend fails with ErrMountBusy, and mounting at "/" fails with
// ErrMountBusy too (the root backend is fixed at construction).
func (m *MountFS) Mount(dir string, backend FS) error {
	dir = Clean(dir)
	if dir == "/" {
		return &PathError{Op: "mount", Path: dir, Err: ErrMountBusy}
	}
	m.mu.RLock()
	exists := m.indexOf(dir) >= 0
	m.mu.RUnlock()
	if exists {
		return &PathError{Op: "mount", Path: dir, Err: ErrMountBusy}
	}
	// Materialize the mount point in the covering backend before taking the
	// write lock: MkdirAll re-enters the table through the public API.
	if err := m.MkdirAll(dir); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.indexOf(dir) >= 0 {
		return &PathError{Op: "mount", Path: dir, Err: ErrMountBusy}
	}
	m.mounts = append(m.mounts, mountEntry{path: dir, fs: backend})
	return nil
}

// Unmount detaches the backend at dir. The materialized mount-point
// directory stays behind in the covering backend, as after umount(8).
// Unmounting "/" or a path with no backend attached is an error; a mount
// that still shadows a nested mount cannot be detached (ErrMountBusy).
func (m *MountFS) Unmount(dir string) error {
	dir = Clean(dir)
	if dir == "/" {
		return &PathError{Op: "unmount", Path: dir, Err: ErrMountBusy}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := m.indexOf(dir)
	if idx < 0 {
		return &PathError{Op: "unmount", Path: dir, Err: ErrNotExist}
	}
	for _, mp := range m.mounts {
		if mp.path != dir && underneath(mp.path, dir) {
			return &PathError{Op: "unmount", Path: dir, Err: ErrMountBusy}
		}
	}
	m.mounts = append(m.mounts[:idx], m.mounts[idx+1:]...)
	return nil
}

// Mounts returns a snapshot of the mount table sorted by path.
func (m *MountFS) Mounts() []MountPoint {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]MountPoint, 0, len(m.mounts))
	for _, mp := range m.mounts {
		out = append(out, MountPoint{Path: mp.path, FS: mp.fs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// MountFor resolves name to the owning mount, returning its path and
// backend. This is the introspection face of the routing every file
// operation performs.
func (m *MountFS) MountFor(name string) (mountPath string, backend FS) {
	mp, _ := m.resolve(name)
	return mp.path, mp.fs
}

// WithInterposed returns a copy of the mount table in which the backend at
// dir is replaced by wrap over a prefix-translating view of that backend.
// Backends are shared with the receiver, not copied: both tables route to
// the same storage, only the wrapping differs. This is how core arms a
// fault injector (or the I/O profiler's CountingFS) on a single storage
// tier while the original table remains a clean view for golden comparison
// and outcome classification.
//
// The interposed stack observes table-absolute paths — wrap's FS receives
// "/scratch/run/out.h5", not "/run/out.h5" — so injector mutation records
// and profiler traces name the tier they belong to; the translation back to
// backend-relative paths happens below the wrapper.
func (m *MountFS) WithInterposed(dir string, wrap func(FS) FS) (*MountFS, error) {
	dir = Clean(dir)
	m.mu.RLock()
	defer m.mu.RUnlock()
	idx := m.indexOf(dir)
	if idx < 0 {
		return nil, &PathError{Op: "interpose", Path: dir, Err: ErrNotExist}
	}
	mounts := append([]mountEntry(nil), m.mounts...)
	inner := mounts[idx].fs
	if dir != "/" && !mounts[idx].abs {
		inner = &prefixFS{inner: inner, prefix: dir}
	}
	mounts[idx] = mountEntry{path: dir, fs: wrap(inner), abs: true}
	return &MountFS{mounts: mounts}, nil
}

// indexOf returns the table index of the mount at exactly dir, or -1.
// Callers hold m.mu.
func (m *MountFS) indexOf(dir string) int {
	for i, mp := range m.mounts {
		if mp.path == dir {
			return i
		}
	}
	return -1
}

// underneath reports whether name lies at or below dir on whole path
// segments: /scratch/f is underneath /scratch, /scratchpad is not.
func underneath(name, dir string) bool {
	if dir == "/" {
		return true
	}
	return name == dir || strings.HasPrefix(name, dir+"/")
}

// resolve routes name to the mount owning the longest matching segment
// prefix and returns the path to hand that mount: backend-relative (rooted,
// so the mount point itself maps to "/") for plain entries, table-absolute
// for interposed entries. Equal-length candidates cannot both match one
// name — two distinct paths of the same length differ in some segment — so
// the longest match is unique.
func (m *MountFS) resolve(name string) (mountEntry, string) {
	name = Clean(name)
	m.mu.RLock()
	defer m.mu.RUnlock()
	best := -1
	for i, mp := range m.mounts {
		if underneath(name, mp.path) && (best < 0 || len(mp.path) > len(m.mounts[best].path)) {
			best = i
		}
	}
	mp := m.mounts[best] // the root mount matches everything; best >= 0
	if mp.abs || mp.path == "/" {
		return mp, name
	}
	rel := "/"
	if name != mp.path {
		rel = strings.TrimPrefix(name, mp.path)
	}
	return mp, rel
}

// guardMountPoints returns ErrMountBusy when any mount point other than the
// one owning name sits at or below name — the table-structure guard for
// Remove, RemoveAll, and rename targets.
func (m *MountFS) guardMountPoints(op, name string) error {
	name = Clean(name)
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, mp := range m.mounts {
		if mp.path != "/" && underneath(mp.path, name) {
			return &PathError{Op: op, Path: name, Err: ErrMountBusy}
		}
	}
	return nil
}

// prefixFS exposes a backend mounted at prefix under table-absolute paths:
// incoming names are stripped of the prefix before reaching the backend,
// and returned handles are relabelled with the absolute name. It is the
// translation layer beneath an interposed wrapper stack (WithInterposed),
// letting injectors and profilers see the application's namespace while the
// backend keeps its own.
type prefixFS struct {
	inner  FS
	prefix string
}

func (p *prefixFS) rel(name string) string {
	name = Clean(name)
	if name == p.prefix {
		return "/"
	}
	return strings.TrimPrefix(name, p.prefix)
}

func (p *prefixFS) Create(name string) (File, error) {
	f, err := p.inner.Create(p.rel(name))
	return relabel(name, f, err)
}

func (p *prefixFS) Open(name string) (File, error) {
	f, err := p.inner.Open(p.rel(name))
	return relabel(name, f, err)
}

func (p *prefixFS) Append(name string) (File, error) {
	f, err := p.inner.Append(p.rel(name))
	return relabel(name, f, err)
}

func (p *prefixFS) Mkdir(name string) error     { return p.inner.Mkdir(p.rel(name)) }
func (p *prefixFS) MkdirAll(name string) error  { return p.inner.MkdirAll(p.rel(name)) }
func (p *prefixFS) Remove(name string) error    { return p.inner.Remove(p.rel(name)) }
func (p *prefixFS) RemoveAll(name string) error { return p.inner.RemoveAll(p.rel(name)) }

func (p *prefixFS) Rename(oldName, newName string) error {
	return p.inner.Rename(p.rel(oldName), p.rel(newName))
}

func (p *prefixFS) Stat(name string) (FileInfo, error) {
	rel := p.rel(name)
	info, err := p.inner.Stat(rel)
	if err == nil && rel == "/" {
		info.Name = path.Base(p.prefix)
	}
	return info, err
}
func (p *prefixFS) ReadDir(name string) ([]FileInfo, error) { return p.inner.ReadDir(p.rel(name)) }

func (p *prefixFS) Mknod(name string, mode uint32, dev uint64) error {
	return p.inner.Mknod(p.rel(name), mode, dev)
}

func (p *prefixFS) Chmod(name string, mode uint32) error {
	return p.inner.Chmod(p.rel(name), mode)
}

func (p *prefixFS) Truncate(name string, size int64) error {
	return p.inner.Truncate(p.rel(name), size)
}

// mountFile re-labels a backend handle with the table-absolute path, so that
// injector mutation records and application-visible Name() calls speak the
// namespace the application used, not the backend-relative one (part of the
// transparency requirement R1).
type mountFile struct {
	File
	outer string
}

func (f *mountFile) Name() string { return f.outer }

func relabel(outer string, file File, err error) (File, error) {
	if err != nil {
		return nil, err
	}
	return &mountFile{File: file, outer: Clean(outer)}, nil
}

// Create routes to the owning mount.
func (m *MountFS) Create(name string) (File, error) {
	mp, rel := m.resolve(name)
	f, err := mp.fs.Create(rel)
	return relabel(name, f, err)
}

// Open routes to the owning mount.
func (m *MountFS) Open(name string) (File, error) {
	mp, rel := m.resolve(name)
	f, err := mp.fs.Open(rel)
	return relabel(name, f, err)
}

// Append routes to the owning mount.
func (m *MountFS) Append(name string) (File, error) {
	mp, rel := m.resolve(name)
	f, err := mp.fs.Append(rel)
	return relabel(name, f, err)
}

// Mkdir routes to the owning mount.
func (m *MountFS) Mkdir(name string) error {
	mp, rel := m.resolve(name)
	return mp.fs.Mkdir(rel)
}

// MkdirAll routes to the owning mount. A path that crosses a mount boundary
// resolves entirely to the innermost mount; the segments above the boundary
// already exist as materialized mount-point directories.
func (m *MountFS) MkdirAll(name string) error {
	mp, rel := m.resolve(name)
	return mp.fs.MkdirAll(rel)
}

// Remove routes to the owning mount; removing a live mount point (or a
// directory hosting one) fails with ErrMountBusy.
func (m *MountFS) Remove(name string) error {
	if err := m.guardMountPoints("remove", name); err != nil {
		return err
	}
	mp, rel := m.resolve(name)
	return mp.fs.Remove(rel)
}

// RemoveAll routes to the owning mount; a subtree that covers a live mount
// point cannot be removed atomically across backends, so it fails with
// ErrMountBusy.
func (m *MountFS) RemoveAll(name string) error {
	if err := m.guardMountPoints("removeall", name); err != nil {
		return err
	}
	mp, rel := m.resolve(name)
	return mp.fs.RemoveAll(rel)
}

// Rename routes to the owning mount when both names resolve to the same
// backend and fails with ErrCrossMount (EXDEV) otherwise: two backends
// cannot exchange data atomically, which is precisely the semantic tiered
// storage exposes to HPC applications renaming scratch output into place.
func (m *MountFS) Rename(oldName, newName string) error {
	if err := m.guardMountPoints("rename", oldName); err != nil {
		return err
	}
	if err := m.guardMountPoints("rename", newName); err != nil {
		return err
	}
	oldMp, oldRel := m.resolve(oldName)
	newMp, newRel := m.resolve(newName)
	if oldMp.path != newMp.path {
		return &PathError{Op: "rename", Path: Clean(oldName) + " -> " + Clean(newName), Err: ErrCrossMount}
	}
	return oldMp.fs.Rename(oldRel, newRel)
}

// Stat routes to the owning mount; a mount point resolves to the root
// directory of its own backend.
func (m *MountFS) Stat(name string) (FileInfo, error) {
	mp, rel := m.resolve(name)
	info, err := mp.fs.Stat(rel)
	if err != nil {
		return FileInfo{}, err
	}
	if rel == "/" && mp.path != "/" {
		// The backend reports its root as "/"; surface the mount-point name
		// the caller used, as stat(2) has no name anyway but ours does.
		info.Name = path.Base(mp.path)
	}
	return info, nil
}

// ReadDir routes to the owning mount. Listings remain consistent at mount
// boundaries without merging because Mount materialized every mount-point
// directory in its covering backend: listing /​ shows scratch/ even though
// scratch's content lives in another backend, and listing /scratch shows
// that backend's root.
func (m *MountFS) ReadDir(name string) ([]FileInfo, error) {
	mp, rel := m.resolve(name)
	return mp.fs.ReadDir(rel)
}

// Mknod routes to the owning mount.
func (m *MountFS) Mknod(name string, mode uint32, dev uint64) error {
	mp, rel := m.resolve(name)
	return mp.fs.Mknod(rel, mode, dev)
}

// Chmod routes to the owning mount.
func (m *MountFS) Chmod(name string, mode uint32) error {
	mp, rel := m.resolve(name)
	return mp.fs.Chmod(rel, mode)
}

// Truncate routes to the owning mount.
func (m *MountFS) Truncate(name string, size int64) error {
	mp, rel := m.resolve(name)
	return mp.fs.Truncate(rel, size)
}

// Capabilities declares the capability profile of the mounted world:
// CapClone and CapByteAddressable hold only when every backend in the
// table has them (the world clones iff all its tiers clone; one
// whole-object tier makes the world partially whole-object), while
// CapLatencyModeled holds when any tier charges a simulated clock (the
// world then has meaningful simulated time).
func (m *MountFS) Capabilities() Capability {
	m.mu.RLock()
	defer m.mu.RUnlock()
	caps := CapClone | CapByteAddressable
	var modeled Capability
	for _, mp := range m.mounts {
		c := CapabilitiesOf(mp.fs)
		caps &= c
		modeled |= c & CapLatencyModeled
	}
	return caps | modeled
}

// SimElapsed implements SimClocked by summing the simulated clocks of
// every latency-modeled backend in the table. Unclocked tiers contribute
// zero, so a world with no latency-modeled mount reports zero.
func (m *MountFS) SimElapsed() time.Duration {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var total time.Duration
	for _, mp := range m.mounts {
		if c, ok := mp.fs.(SimClocked); ok {
			total += c.SimElapsed()
		}
	}
	return total
}

// ResetSim implements SimClocked by resetting every clocked backend.
func (m *MountFS) ResetSim() {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, mp := range m.mounts {
		if c, ok := mp.fs.(SimClocked); ok {
			c.ResetSim()
		}
	}
}

var (
	_ FS                 = (*MountFS)(nil)
	_ File               = (*mountFile)(nil)
	_ CapabilityReporter = (*MountFS)(nil)
	_ SimClocked         = (*MountFS)(nil)
)
