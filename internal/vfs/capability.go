package vfs

import (
	"strings"
	"time"
)

// Capability is a bitmask describing what a backend can do. Backends declare
// their capabilities by implementing CapabilityReporter; consumers ask
// through CapabilitiesOf instead of duck-typing the concrete FS. The three
// bits mirror the axes the campaign machinery actually branches on:
//
//   - CapClone: the backend implements Cloner and CloneFS succeeds — the
//     COW snapshot engine can clone worlds instead of rebuilding them.
//     A backend may implement Cloner *without* this bit (OSFS does, so
//     MountFS.Clone reports a real ErrNotClonable instead of a failed
//     type assertion), but never the reverse.
//   - CapByteAddressable: writes land at byte granularity. Backends
//     without this bit (ObjectFS) commit whole objects on every write —
//     read-modify-write semantics with the amplification that implies.
//   - CapLatencyModeled: the backend charges I/O against a deterministic
//     simulated clock readable through SimElapsed.
type Capability uint32

const (
	// CapClone marks a backend whose CloneFS returns a COW snapshot.
	CapClone Capability = 1 << iota
	// CapByteAddressable marks a backend that persists writes at byte
	// (or block) granularity rather than whole-object replacement.
	CapByteAddressable
	// CapLatencyModeled marks a backend that accumulates simulated I/O
	// time on a SimClocked clock.
	CapLatencyModeled
)

// Has reports whether every bit in q is set in c.
func (c Capability) Has(q Capability) bool { return c&q == q }

// String renders the set bits as a stable "+"-joined list, "none" when empty.
func (c Capability) String() string {
	var parts []string
	for _, b := range []struct {
		bit  Capability
		name string
	}{
		{CapClone, "clone"},
		{CapByteAddressable, "byte-addressable"},
		{CapLatencyModeled, "latency-modeled"},
	} {
		if c.Has(b.bit) {
			parts = append(parts, b.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// CapabilityReporter is implemented by backends that declare their
// capability set. All backends in this package implement it.
type CapabilityReporter interface {
	Capabilities() Capability
}

// CapabilitiesOf returns the declared capability set of fs. A backend that
// does not report capabilities is assumed byte-addressable (the FS
// interface's native shape), with CapClone inferred from a Cloner
// implementation — the legacy duck-typed contract, kept so third-party
// backends behave as they did before the capability model existed.
func CapabilitiesOf(fs FS) Capability {
	if r, ok := fs.(CapabilityReporter); ok {
		return r.Capabilities()
	}
	caps := CapByteAddressable
	if _, ok := fs.(Cloner); ok {
		caps |= CapClone
	}
	return caps
}

// SimClocked is implemented by backends that model I/O latency against a
// deterministic simulated clock. The clock is monotone within a run and
// charged by commutative atomic additions, so the accumulated total is
// independent of goroutine interleaving — workers 1 and workers 8 campaigns
// report identical simulated times.
type SimClocked interface {
	// SimElapsed returns the simulated I/O time accumulated since the
	// backend was created, cloned, or last reset.
	SimElapsed() time.Duration
	// ResetSim zeroes the simulated clock. The campaign driver resets
	// immediately before each run so setup and profiling I/O is excluded
	// and COW-cloned and rebuilt worlds measure identically.
	ResetSim()
}

// SimElapsed reads fs's simulated clock. The second return is false when fs
// does not model latency (the elapsed time is then zero by definition).
func SimElapsed(fs FS) (time.Duration, bool) {
	if c, ok := fs.(SimClocked); ok {
		return c.SimElapsed(), true
	}
	return 0, false
}

// ResetSim zeroes fs's simulated clock; a no-op for unclocked backends.
func ResetSim(fs FS) {
	if c, ok := fs.(SimClocked); ok {
		c.ResetSim()
	}
}
