package vfs

import (
	"sort"
	"sync/atomic"
)

// Primitive names the FUSE-level operations FFIS can target. These mirror
// the "FFIS_write, FFIS_mknod, FFIS_chmod ..." callbacks of Table I.
type Primitive string

// The primitive vocabulary. PrimWrite covers both sequential Write and
// positional WriteAt calls, matching the paper where every data write funnels
// into the single FFIS_write → pwrite path.
const (
	PrimWrite    Primitive = "write"
	PrimRead     Primitive = "read"
	PrimCreate   Primitive = "create"
	PrimOpen     Primitive = "open"
	PrimMknod    Primitive = "mknod"
	PrimChmod    Primitive = "chmod"
	PrimMkdir    Primitive = "mkdir"
	PrimRemove   Primitive = "remove"
	PrimRename   Primitive = "rename"
	PrimTruncate Primitive = "truncate"
	PrimStat     Primitive = "stat"
	PrimReadDir  Primitive = "readdir"
)

// numPrimitives is the size of the closed primitive vocabulary; it indexes
// the CountingFS counter array.
const numPrimitives = 12

// primIndex maps a primitive to its dense index in Primitives() order, or
// -1 for a name outside the vocabulary. The switch compiles to a cheap
// length-then-compare dispatch, so the profiler's hot path never touches a
// map or a lock.
func primIndex(p Primitive) int {
	switch p {
	case PrimWrite:
		return 0
	case PrimRead:
		return 1
	case PrimCreate:
		return 2
	case PrimOpen:
		return 3
	case PrimMknod:
		return 4
	case PrimChmod:
		return 5
	case PrimMkdir:
		return 6
	case PrimRemove:
		return 7
	case PrimRename:
		return 8
	case PrimTruncate:
		return 9
	case PrimStat:
		return 10
	case PrimReadDir:
		return 11
	}
	return -1
}

// Primitives lists every primitive name in a stable order (the primIndex
// order).
func Primitives() []Primitive {
	return []Primitive{
		PrimWrite, PrimRead, PrimCreate, PrimOpen, PrimMknod, PrimChmod,
		PrimMkdir, PrimRemove, PrimRename, PrimTruncate, PrimStat, PrimReadDir,
	}
}

// CountingFS wraps an FS and counts dynamic executions of each primitive.
// It implements the paper's I/O profiler: "the I/O profiler instruments the
// primitive inside the FUSE and executes the application fault-free to
// obtain the total count".
//
// The counters live in a fixed array indexed by primitive — the vocabulary
// is closed, so there is nothing to register dynamically — and every
// operation on them is a plain atomic: the profiler adds one uncontended
// atomic add per primitive execution and no locks, allocations, or map
// lookups to the hot path.
type CountingFS struct {
	inner  FS
	counts [numPrimitives]atomic.Int64
}

// NewCountingFS wraps inner with per-primitive counters.
func NewCountingFS(inner FS) *CountingFS {
	return &CountingFS{inner: inner}
}

func (c *CountingFS) bump(p Primitive) {
	if i := primIndex(p); i >= 0 {
		c.counts[i].Add(1)
	}
}

// Count returns how many times primitive p executed so far.
func (c *CountingFS) Count(p Primitive) int64 {
	if i := primIndex(p); i >= 0 {
		return c.counts[i].Load()
	}
	return 0
}

// Census returns a snapshot of all counters, sorted by primitive name.
func (c *CountingFS) Census() []struct {
	Primitive Primitive
	Count     int64
} {
	prims := Primitives()
	out := make([]struct {
		Primitive Primitive
		Count     int64
	}, len(prims))
	for i, p := range prims {
		out[i] = struct {
			Primitive Primitive
			Count     int64
		}{p, c.counts[i].Load()}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Primitive < out[j].Primitive })
	return out
}

// Reset zeroes every counter.
func (c *CountingFS) Reset() {
	for i := range c.counts {
		c.counts[i].Store(0)
	}
}

func (c *CountingFS) Create(name string) (File, error) {
	c.bump(PrimCreate)
	f, err := c.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

func (c *CountingFS) Open(name string) (File, error) {
	c.bump(PrimOpen)
	f, err := c.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

func (c *CountingFS) Append(name string) (File, error) {
	c.bump(PrimOpen)
	f, err := c.inner.Append(name)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

func (c *CountingFS) Mkdir(name string) error {
	c.bump(PrimMkdir)
	return c.inner.Mkdir(name)
}

func (c *CountingFS) MkdirAll(name string) error {
	c.bump(PrimMkdir)
	return c.inner.MkdirAll(name)
}

func (c *CountingFS) Remove(name string) error {
	c.bump(PrimRemove)
	return c.inner.Remove(name)
}

func (c *CountingFS) RemoveAll(name string) error {
	c.bump(PrimRemove)
	return c.inner.RemoveAll(name)
}

func (c *CountingFS) Rename(oldName, newName string) error {
	c.bump(PrimRename)
	return c.inner.Rename(oldName, newName)
}

func (c *CountingFS) Stat(name string) (FileInfo, error) {
	c.bump(PrimStat)
	return c.inner.Stat(name)
}

func (c *CountingFS) ReadDir(name string) ([]FileInfo, error) {
	c.bump(PrimReadDir)
	return c.inner.ReadDir(name)
}

func (c *CountingFS) Mknod(name string, mode uint32, dev uint64) error {
	c.bump(PrimMknod)
	return c.inner.Mknod(name, mode, dev)
}

func (c *CountingFS) Chmod(name string, mode uint32) error {
	c.bump(PrimChmod)
	return c.inner.Chmod(name, mode)
}

func (c *CountingFS) Truncate(name string, size int64) error {
	c.bump(PrimTruncate)
	return c.inner.Truncate(name, size)
}

type countingFile struct {
	File
	fs *CountingFS
}

// Zero-length buffers are not counted as write/read instances: the
// injector never claims them (an empty transfer has nothing to corrupt),
// and the profiled count defines the injection target space, so the two
// must agree on the instance index space.

func (f *countingFile) Write(p []byte) (int, error) {
	if len(p) > 0 {
		f.fs.bump(PrimWrite)
	}
	return f.File.Write(p)
}

func (f *countingFile) WriteAt(p []byte, off int64) (int, error) {
	if len(p) > 0 {
		f.fs.bump(PrimWrite)
	}
	return f.File.WriteAt(p, off)
}

func (f *countingFile) Read(p []byte) (int, error) {
	if len(p) > 0 {
		f.fs.bump(PrimRead)
	}
	return f.File.Read(p)
}

func (f *countingFile) ReadAt(p []byte, off int64) (int, error) {
	if len(p) > 0 {
		f.fs.bump(PrimRead)
	}
	return f.File.ReadAt(p, off)
}

func (f *countingFile) Truncate(size int64) error {
	f.fs.bump(PrimTruncate)
	return f.File.Truncate(size)
}

var (
	_ FS   = (*CountingFS)(nil)
	_ File = (*countingFile)(nil)
)
