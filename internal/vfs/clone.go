package vfs

import "errors"

// ErrNotClonable reports a backend that cannot produce a copy-on-write
// snapshot of itself (e.g. OSFS, whose state lives outside the process).
// Callers that want a clone-or-rebuild policy test for it with errors.Is.
var ErrNotClonable = errors.New("vfs: backend does not support cloning")

// Cloner is implemented by file systems that can snapshot themselves as a
// cheap copy-on-write clone: the clone and the receiver observe identical
// state at clone time, and from then on mutations on either side are
// invisible to the other. This is the world-duplication primitive of
// campaign engines: Setup runs once, and every injection run receives a
// clone instead of re-executing the workload's world construction.
type Cloner interface {
	CloneFS() (FS, error)
}

// Clone returns a copy-on-write snapshot of the file system. The namespace
// (the node table) is copied eagerly — O(number of entries) — while file
// contents are shared structurally: both trees reference the same data
// slices until one of them writes, at which point the writer copies the
// node's bytes (see memNode.ensureOwned). Open handles on the receiver keep
// addressing the receiver's nodes; the clone starts with no open handles.
func (m *MemFS) Clone() *MemFS {
	m.mu.RLock()
	defer m.mu.RUnlock()
	nodes := make(map[string]*memNode, len(m.nodes))
	for p, n := range m.nodes {
		n.mu.Lock()
		n.shared = true
		nodes[p] = &memNode{data: n.data, mode: n.mode, isDir: n.isDir, dev: n.dev, shared: true}
		n.mu.Unlock()
	}
	return &MemFS{nodes: nodes}
}

// CloneFS implements Cloner.
func (m *MemFS) CloneFS() (FS, error) { return m.Clone(), nil }

// Clone returns a copy-on-write snapshot of the mounted world: the mount
// table is preserved entry for entry, with every backend replaced by its own
// clone. All backends must implement Cloner (ErrNotClonable otherwise), and
// an interposed view (WithInterposed) cannot be cloned — snapshots are taken
// of pristine worlds, before any injector or profiler is layered on.
func (m *MountFS) Clone() (*MountFS, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	mounts := make([]mountEntry, len(m.mounts))
	for i, mp := range m.mounts {
		if mp.abs {
			return nil, &PathError{Op: "clone", Path: mp.path, Err: errors.New("vfs: cannot clone an interposed view")}
		}
		c, ok := mp.fs.(Cloner)
		if !ok {
			return nil, &PathError{Op: "clone", Path: mp.path, Err: ErrNotClonable}
		}
		fs, err := c.CloneFS()
		if err != nil {
			return nil, &PathError{Op: "clone", Path: mp.path, Err: err}
		}
		mounts[i] = mountEntry{path: mp.path, fs: fs}
	}
	return &MountFS{mounts: mounts}, nil
}

// CloneFS implements Cloner.
func (m *MountFS) CloneFS() (FS, error) { return m.Clone() }

var (
	_ Cloner = (*MemFS)(nil)
	_ Cloner = (*MountFS)(nil)
)
