package vfs

import "errors"

// ErrNotClonable reports a backend that cannot produce a copy-on-write
// snapshot of itself (e.g. OSFS, whose state lives outside the process).
// Callers that want a clone-or-rebuild policy test for it with errors.Is.
var ErrNotClonable = errors.New("vfs: backend does not support cloning")

// Cloner is implemented by file systems that can snapshot themselves as a
// cheap copy-on-write clone: the clone and the receiver observe identical
// state at clone time, and from then on mutations on either side are
// invisible to the other. This is the world-duplication primitive of
// campaign engines: Setup runs once, and every injection run receives a
// clone instead of re-executing the workload's world construction.
type Cloner interface {
	CloneFS() (FS, error)
}

// Clone returns a copy-on-write snapshot of the file system. The namespace
// (the node table) and each node's block table are copied eagerly — O(node
// count + total extent count) pointer work, no content bytes — while the
// extents themselves are shared structurally: every block of every
// snapshotted node is sealed (made immutable), and from then on a write in
// either tree copies just the sealed blocks it touches into private
// replacements (memNode.ownBlock), leaving every untouched extent shared.
// Divergence therefore costs O(changed data), not O(file size).
//
// Each node is sealed and copied under its own lock, so a clone taken
// while another goroutine writes through an open handle observes each node
// either entirely before or entirely after that write — never a torn
// state — and post-clone writes on either side stay invisible to the
// other. Open handles on the receiver keep addressing the receiver's
// nodes; the clone starts with no open handles.
func (m *MemFS) Clone() *MemFS {
	m.mu.RLock()
	defer m.mu.RUnlock()
	nodes := make(map[string]*memNode, len(m.nodes))
	for p, n := range m.nodes {
		n.mu.Lock()
		for _, b := range n.blocks {
			if b != nil {
				b.sealed.Store(true)
			}
		}
		nodes[p] = &memNode{
			size:   n.size,
			blocks: append([]*memBlock(nil), n.blocks...),
			mode:   n.mode,
			isDir:  n.isDir,
			dev:    n.dev,
		}
		n.mu.Unlock()
	}
	return &MemFS{nodes: nodes}
}

// CloneFS implements Cloner.
func (m *MemFS) CloneFS() (FS, error) { return m.Clone(), nil }

// cloneBackend snapshots one backend through the Cloner contract. A
// backend that implements Cloner answers for itself — OSFS implements the
// interface precisely to return ErrNotClonable explicitly, so callers see
// the real refusal rather than a failed type assertion — while a backend
// that doesn't is refused here with the same sentinel. Either way the
// declared capability set tells the story up front: a backend without
// CapClone never produces a snapshot.
func cloneBackend(fs FS) (FS, error) {
	c, ok := fs.(Cloner)
	if !ok {
		return nil, ErrNotClonable
	}
	return c.CloneFS()
}

// Clone returns a copy-on-write snapshot of the mounted world: the mount
// table is preserved entry for entry, with every backend replaced by its own
// clone. Every backend must support cloning (see CapClone; the error wraps
// ErrNotClonable otherwise), and an interposed view (WithInterposed) cannot
// be cloned — snapshots are taken of pristine worlds, before any injector
// or profiler is layered on.
func (m *MountFS) Clone() (*MountFS, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	mounts := make([]mountEntry, len(m.mounts))
	for i, mp := range m.mounts {
		if mp.abs {
			return nil, &PathError{Op: "clone", Path: mp.path, Err: errors.New("vfs: cannot clone an interposed view")}
		}
		fs, err := cloneBackend(mp.fs)
		if err != nil {
			return nil, &PathError{Op: "clone", Path: mp.path, Err: err}
		}
		mounts[i] = mountEntry{path: mp.path, fs: fs}
	}
	return &MountFS{mounts: mounts}, nil
}

// CloneFS implements Cloner.
func (m *MountFS) CloneFS() (FS, error) { return m.Clone() }

var (
	_ Cloner = (*MemFS)(nil)
	_ Cloner = (*MountFS)(nil)
)
