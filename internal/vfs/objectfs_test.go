package vfs

import (
	"bytes"
	"errors"
	"testing"
)

// TestObjectFSConsistencyLag pins the deterministic eventual-consistency
// window: after an object is overwritten via Create, the next lag opens
// observe the previous version read-only, then the store converges. Stat
// and ReadDir always answer from the current generation (LIST/HEAD vs GET
// divergence).
func TestObjectFSConsistencyLag(t *testing.T) {
	fs := NewObjectFS()
	fs.SetConsistencyLag(2)
	if err := WriteFile(fs, "/k", []byte("version-one")); err != nil {
		t.Fatal(err)
	}
	// The first write of a key is not an overwrite: reads converge at once.
	if got, _ := ReadFile(fs, "/k"); string(got) != "version-one" {
		t.Fatalf("fresh key read %q", got)
	}
	if err := WriteFile(fs, "/k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// The next two opens serve the stale version...
	for i := 0; i < 2; i++ {
		got, err := ReadFile(fs, "/k")
		if err != nil || string(got) != "version-one" {
			t.Fatalf("stale open %d: %q, %v (want version-one)", i, got, err)
		}
	}
	// ...and the third converges.
	if got, _ := ReadFile(fs, "/k"); string(got) != "v2" {
		t.Fatalf("converged read %q, want v2", got)
	}
	if got, _ := ReadFile(fs, "/k"); string(got) != "v2" {
		t.Fatal("store regressed after convergence")
	}
	// Metadata always answers from the current generation.
	fs.SetConsistencyLag(1)
	if err := WriteFile(fs, "/k", []byte("longer-third-version")); err != nil {
		t.Fatal(err)
	}
	if info, err := fs.Stat("/k"); err != nil || info.Size != int64(len("longer-third-version")) {
		t.Fatalf("Stat during lag window: %+v, %v (want current size)", info, err)
	}
	if got, _ := ReadFile(fs, "/k"); string(got) != "v2" {
		t.Fatal("lag window did not serve the pre-overwrite version")
	}
	if got, _ := ReadFile(fs, "/k"); string(got) != "longer-third-version" {
		t.Fatal("store did not converge after the lag window")
	}
}

// TestObjectFSStaleVersionIsReadOnly: a handle served from the
// eventual-consistency window is detached and read-only — writing through
// it must fail rather than resurrect the old object.
func TestObjectFSStaleVersionIsReadOnly(t *testing.T) {
	fs := NewObjectFS()
	fs.SetConsistencyLag(1)
	WriteFile(fs, "/k", []byte("old"))
	WriteFile(fs, "/k", []byte("new"))
	f, err := fs.Open("/k")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 3)
	if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != "old" {
		t.Fatalf("stale handle read %q, %v", buf, err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("stale handle write err = %v, want ErrReadOnly", err)
	}
}

// TestObjectFSRemoveClearsStale: deleting or renaming a key also drops its
// pending stale version — a removed object must not reappear through the
// consistency window.
func TestObjectFSRemoveClearsStale(t *testing.T) {
	fs := NewObjectFS()
	fs.SetConsistencyLag(3)
	WriteFile(fs, "/k", []byte("old"))
	WriteFile(fs, "/k", []byte("new"))
	if err := fs.Remove("/k"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/k"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open after remove = %v, want ErrNotExist", err)
	}
	if err := WriteFile(fs, "/k", []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadFile(fs, "/k"); string(got) != "reborn" {
		t.Fatalf("recreated key served ghost version: %q", got)
	}
}

// TestObjectFSWriteAmplification pins the whole-object read-modify-write
// accounting: every mutating operation commits the full resulting object,
// so a small WriteAt into a large object bills the entire object size —
// the amplification an object store actually suffers.
func TestObjectFSWriteAmplification(t *testing.T) {
	fs := NewObjectFS()
	const size = 1 << 16
	if err := WriteFile(fs, "/big", make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	base := fs.RewrittenBytes()
	if base < size {
		t.Fatalf("initial upload billed %d bytes; want >= %d", base, size)
	}
	f, err := fs.Append("/big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 17); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := fs.RewrittenBytes() - base; got != size {
		t.Fatalf("1-byte RMW billed %d bytes; want the whole %d-byte object", got, size)
	}
}

// TestObjectFSCloneCOW: clones share sealed versions until either side
// writes, writes after the clone bill (and copy) whole objects, and the
// consistency window carries over so a cloned world replays the same
// anomaly schedule — the property that makes COW snapshots
// tally-equivalent to fresh rebuilds.
func TestObjectFSCloneCOW(t *testing.T) {
	fs := NewObjectFS()
	fs.SetConsistencyLag(1)
	WriteFile(fs, "/k", []byte("old"))
	WriteFile(fs, "/k", []byte("new"))
	WriteFile(fs, "/other", bytes.Repeat([]byte{7}, 128))

	clone := fs.Clone()
	// Divergence: writes on the clone stay off the original.
	if err := WriteFile(clone, "/other", []byte("clone-side")); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadFile(fs, "/other"); !bytes.Equal(got, bytes.Repeat([]byte{7}, 128)) {
		t.Fatal("clone write leaked into the original")
	}
	// The stale window was copied: both sides serve the old version exactly
	// once more, independently.
	if got, _ := ReadFile(clone, "/k"); string(got) != "old" {
		t.Fatalf("clone lost the pending stale version: %q", got)
	}
	if got, _ := ReadFile(fs, "/k"); string(got) != "old" {
		t.Fatalf("original lost the pending stale version: %q", got)
	}
	if got, _ := ReadFile(clone, "/k"); string(got) != "new" {
		t.Fatalf("clone did not converge: %q", got)
	}
	if got, _ := ReadFile(fs, "/k"); string(got) != "new" {
		t.Fatalf("original did not converge: %q", got)
	}
}

// TestObjectFSCloneIsolationUnderMutation drives a partial overwrite
// through a sealed shared version and checks the other side's bytes stay
// frozen byte-for-byte.
func TestObjectFSCloneIsolationUnderMutation(t *testing.T) {
	fs := NewObjectFS()
	content := bytes.Repeat([]byte{0xAB}, 4096)
	WriteFile(fs, "/obj", content)
	clone := fs.Clone()
	f, err := clone.Append("/obj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xCD}, 2048); err != nil {
		t.Fatal(err)
	}
	f.Close()
	orig, _ := ReadFile(fs, "/obj")
	if !bytes.Equal(orig, content) {
		t.Fatal("mutating a sealed version through the clone changed the original")
	}
	mutated, _ := ReadFile(clone, "/obj")
	if mutated[2048] != 0xCD || mutated[0] != 0xAB || len(mutated) != 4096 {
		t.Fatal("clone-side RMW produced the wrong object")
	}
}
