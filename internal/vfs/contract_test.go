package vfs

// The FS behavioral contract suite. Every backend that can sit behind the
// mount table — byte-addressable or whole-object, latency-modeled or not —
// must agree on namespace semantics, handle lifecycle, error sentinels, and
// concurrent access; these tests are the executable form of that contract.
// They started life as MemFS unit tests and were extracted when the backend
// capability model landed: a new backend passes the suite or it does not go
// behind MountFS. The CI race gate runs exactly this suite under -race.

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
)

// contractFS names one backend under contract; build constructs a fresh
// world per subtest.
type contractFS struct {
	name  string
	build func(t *testing.T) FS
}

// contractBackends enumerates every FS implementation the suite runs
// against. MountFS carries an extra empty mount so routing stays exercised;
// OSFS runs over a per-test host directory; LatencyFS wraps MemFS with the
// parallel-file-system cost model, proving the wrapper is semantically
// transparent.
func contractBackends() []contractFS {
	return []contractFS{
		{"MemFS", func(t *testing.T) FS { return NewMemFS() }},
		{"MountFS", func(t *testing.T) FS {
			m := NewMountFS(NewMemFS())
			if err := m.Mount("/contract-extra", NewMemFS()); err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"OSFS", func(t *testing.T) FS { return NewOSFS(t.TempDir()) }},
		{"ObjectFS", func(t *testing.T) FS { return NewObjectFS() }},
		{"LatencyFS", func(t *testing.T) FS { return NewLatencyFS(NewMemFS(), ParallelFSModel) }},
	}
}

func TestFSContract(t *testing.T) {
	tests := []struct {
		name string
		fn   func(t *testing.T, fs FS)
	}{
		{"CreateWriteReadBack", testCreateWriteReadBack},
		{"CreateTruncatesExisting", testCreateTruncatesExisting},
		{"OpenMissingFile", testOpenMissingFile},
		{"CreateInMissingDir", testCreateInMissingDir},
		{"MkdirAndNesting", testMkdirAndNesting},
		{"WriteAtSparseGrowth", testWriteAtSparseGrowth},
		{"WriteAtDoesNotMoveSequentialOffset", testWriteAtDoesNotMoveSequentialOffset},
		{"SeekSemantics", testSeekSemantics},
		{"ReadOnlyHandleRejectsWrites", testReadOnlyHandleRejectsWrites},
		{"ClosedHandleFails", testClosedHandleFails},
		{"AppendMode", testAppendMode},
		{"RemoveSemantics", testRemoveSemantics},
		{"RemoveAll", testRemoveAll},
		{"RenameFileAndDir", testRenameFileAndDir},
		{"ReadDirSortedAndShallow", testReadDirSortedAndShallow},
		{"MknodAndChmod", testMknodAndChmod},
		{"TruncatePath", testTruncatePath},
		{"WalkVisitsAllFiles", testWalkVisitsAllFiles},
		{"ConcurrentWriters", testConcurrentWriters},
		{"ConcurrentHandlesSameFile", testConcurrentHandlesSameFile},
		{"ReadAtPastEOF", testReadAtPastEOF},
	}
	for _, backend := range contractBackends() {
		t.Run(backend.name, func(t *testing.T) {
			for _, tc := range tests {
				t.Run(tc.name, func(t *testing.T) {
					tc.fn(t, backend.build(t))
				})
			}
		})
	}
}

func testCreateWriteReadBack(t *testing.T, fs FS) {
	if err := WriteFile(fs, "/hello.txt", []byte("storage faults")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fs, "/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "storage faults" {
		t.Fatalf("read %q", got)
	}
}

func testCreateTruncatesExisting(t *testing.T, fs FS) {
	if err := WriteFile(fs, "/f", []byte("long old content")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(fs, "/f", []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _ := ReadFile(fs, "/f")
	if string(got) != "new" {
		t.Fatalf("got %q", got)
	}
}

func testOpenMissingFile(t *testing.T, fs FS) {
	_, err := fs.Open("/nope")
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func testCreateInMissingDir(t *testing.T, fs FS) {
	_, err := fs.Create("/no/such/dir/file")
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func testMkdirAndNesting(t *testing.T, fs FS) {
	if err := fs.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a"); !errors.Is(err, ErrExist) {
		t.Fatalf("second mkdir err = %v", err)
	}
	if err := fs.Mkdir("/a/b/c"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("deep mkdir err = %v", err)
	}
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/a/b/c")
	if err != nil || !info.IsDir {
		t.Fatalf("stat: %v %+v", err, info)
	}
	// MkdirAll through an existing file must fail.
	if err := WriteFile(fs, "/a/file", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/a/file/sub"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("MkdirAll through file err = %v", err)
	}
}

func testWriteAtSparseGrowth(t *testing.T, fs FS) {
	f, err := fs.Create("/sparse")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("tail"), 100); err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	if size != 104 {
		t.Fatalf("size = %d, want 104", size)
	}
	buf := make([]byte, 104)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:100], make([]byte, 100)) {
		t.Fatal("hole was not zero-filled")
	}
	if string(buf[100:]) != "tail" {
		t.Fatalf("tail = %q", buf[100:])
	}
}

func testWriteAtDoesNotMoveSequentialOffset(t *testing.T, fs FS) {
	f, _ := fs.Create("/f")
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("ZZZ"), 10); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("def")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, _ := ReadFile(fs, "/f")
	// sequential writes produce abcdef at 0..5; ZZZ at 10..12
	if !bytes.Equal(got[:6], []byte("abcdef")) || string(got[10:13]) != "ZZZ" {
		t.Fatalf("content = %q (want abcdef....ZZZ)", got)
	}
}

func testSeekSemantics(t *testing.T, fs FS) {
	f, _ := fs.Create("/f")
	f.Write([]byte("0123456789"))
	if pos, err := f.Seek(2, io.SeekStart); err != nil || pos != 2 {
		t.Fatalf("seek start: %v %d", err, pos)
	}
	b := make([]byte, 3)
	f.Read(b)
	if string(b) != "234" {
		t.Fatalf("read after seek = %q", b)
	}
	if pos, _ := f.Seek(-1, io.SeekEnd); pos != 9 {
		t.Fatalf("seek end pos = %d", pos)
	}
	if pos, _ := f.Seek(1, io.SeekCurrent); pos != 10 {
		t.Fatalf("seek current pos = %d", pos)
	}
	if _, err := f.Seek(-100, io.SeekStart); err == nil {
		t.Fatal("negative seek should fail")
	}
	if _, err := f.Seek(0, 42); err == nil {
		t.Fatal("bad whence should fail")
	}
}

func testReadOnlyHandleRejectsWrites(t *testing.T, fs FS) {
	WriteFile(fs, "/f", []byte("data"))
	f, _ := fs.Open("/f")
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write err = %v", err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("writeat err = %v", err)
	}
	if err := f.Truncate(0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("truncate err = %v", err)
	}
}

func testClosedHandleFails(t *testing.T, fs FS) {
	f, _ := fs.Create("/f")
	f.Close()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write err = %v", err)
	}
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("read err = %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close err = %v", err)
	}
}

func testAppendMode(t *testing.T, fs FS) {
	WriteFile(fs, "/log", []byte("line1\n"))
	f, err := fs.Append("/log")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("line2\n"))
	f.Close()
	got, _ := ReadFile(fs, "/log")
	if string(got) != "line1\nline2\n" {
		t.Fatalf("got %q", got)
	}
	// Append creates missing files.
	f2, err := fs.Append("/fresh")
	if err != nil {
		t.Fatal(err)
	}
	f2.Write([]byte("x"))
	f2.Close()
	if !Exists(fs, "/fresh") {
		t.Fatal("append did not create file")
	}
}

func testRemoveSemantics(t *testing.T, fs FS) {
	fs.MkdirAll("/d/sub")
	WriteFile(fs, "/d/sub/f", []byte("x"))
	if err := fs.Remove("/d"); !errors.Is(err, ErrDirNotEmpty) {
		t.Fatalf("remove non-empty err = %v", err)
	}
	if err := fs.Remove("/d/sub/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("remove missing err = %v", err)
	}
}

func testRemoveAll(t *testing.T, fs FS) {
	fs.MkdirAll("/d/a/b")
	WriteFile(fs, "/d/a/b/f1", []byte("1"))
	WriteFile(fs, "/d/f2", []byte("2"))
	WriteFile(fs, "/dz", []byte("sibling, must survive"))
	if err := fs.RemoveAll("/d"); err != nil {
		t.Fatal(err)
	}
	if Exists(fs, "/d") || Exists(fs, "/d/f2") {
		t.Fatal("RemoveAll left entries")
	}
	if !Exists(fs, "/dz") {
		t.Fatal("RemoveAll deleted prefix-sharing sibling /dz")
	}
	if err := fs.RemoveAll("/never-existed"); err != nil {
		t.Fatalf("RemoveAll of absent path: %v", err)
	}
}

func testRenameFileAndDir(t *testing.T, fs FS) {
	WriteFile(fs, "/old", []byte("content"))
	if err := fs.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if Exists(fs, "/old") {
		t.Fatal("old name still exists")
	}
	got, _ := ReadFile(fs, "/new")
	if string(got) != "content" {
		t.Fatalf("content = %q", got)
	}

	fs.MkdirAll("/dir/sub")
	WriteFile(fs, "/dir/sub/f", []byte("deep"))
	if err := fs.Rename("/dir", "/moved"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fs, "/moved/sub/f")
	if err != nil || string(got) != "deep" {
		t.Fatalf("deep rename: %v %q", err, got)
	}
	if err := fs.Rename("/missing", "/x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("rename missing err = %v", err)
	}
}

func testReadDirSortedAndShallow(t *testing.T, fs FS) {
	fs.MkdirAll("/p/deep")
	WriteFile(fs, "/p/b", []byte("1"))
	WriteFile(fs, "/p/a", []byte("22"))
	WriteFile(fs, "/p/deep/hidden", []byte("x"))
	infos, err := fs.ReadDir("/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("got %d entries", len(infos))
	}
	if infos[0].Name != "a" || infos[1].Name != "b" || infos[2].Name != "deep" {
		t.Fatalf("order: %+v", infos)
	}
	if infos[1].Size != 1 || infos[0].Size != 2 {
		t.Fatalf("sizes: %+v", infos)
	}
	if !infos[2].IsDir {
		t.Fatal("deep should be a dir")
	}
}

func testMknodAndChmod(t *testing.T, fs FS) {
	if err := fs.Mknod("/dev0", 0o600, 42); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mknod("/dev0", 0o600, 42); !errors.Is(err, ErrExist) {
		t.Fatalf("dup mknod err = %v", err)
	}
	info, _ := fs.Stat("/dev0")
	if info.Mode != 0o600 {
		t.Fatalf("mode = %o", info.Mode)
	}
	if err := fs.Chmod("/dev0", 0o444); err != nil {
		t.Fatal(err)
	}
	info, _ = fs.Stat("/dev0")
	if info.Mode != 0o444 {
		t.Fatalf("mode after chmod = %o", info.Mode)
	}
	if err := fs.Chmod("/missing", 0o444); !errors.Is(err, ErrNotExist) {
		t.Fatalf("chmod missing err = %v", err)
	}
}

func testTruncatePath(t *testing.T, fs FS) {
	WriteFile(fs, "/f", []byte("0123456789"))
	if err := fs.Truncate("/f", 4); err != nil {
		t.Fatal(err)
	}
	got, _ := ReadFile(fs, "/f")
	if string(got) != "0123" {
		t.Fatalf("got %q", got)
	}
	if err := fs.Truncate("/f", 8); err != nil {
		t.Fatal(err)
	}
	got, _ = ReadFile(fs, "/f")
	if !bytes.Equal(got, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
		t.Fatalf("grow: %q", got)
	}
	if err := fs.Truncate("/f", -1); err == nil {
		t.Fatal("negative truncate should fail")
	}
}

func testWalkVisitsAllFiles(t *testing.T, fs FS) {
	fs.MkdirAll("/a/b")
	WriteFile(fs, "/a/1", []byte("x"))
	WriteFile(fs, "/a/b/2", []byte("y"))
	WriteFile(fs, "/top", []byte("z"))
	var seen []string
	err := Walk(fs, "/", func(p string, info FileInfo) error {
		seen = append(seen, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("walk saw %v", seen)
	}
}

func testConcurrentWriters(t *testing.T, fs FS) {
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := "/file" + string(rune('a'+id))
			for i := 0; i < 100; i++ {
				if err := WriteFile(fs, name, bytes.Repeat([]byte{byte(id)}, 128)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		got, err := ReadFile(fs, "/file"+string(rune('a'+w)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 128 || got[0] != byte(w) {
			t.Fatalf("worker %d content corrupted", w)
		}
	}
}

func testConcurrentHandlesSameFile(t *testing.T, fs FS) {
	WriteFile(fs, "/shared", make([]byte, 4096))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			f, err := fs.Append("/shared")
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			for i := 0; i < 50; i++ {
				chunk := bytes.Repeat([]byte{byte(id + 1)}, 512)
				if _, err := f.WriteAt(chunk, int64(id)*512); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, _ := ReadFile(fs, "/shared")
	for w := 0; w < 8; w++ {
		seg := got[w*512 : (w+1)*512]
		for _, b := range seg {
			if b != byte(w+1) {
				t.Fatalf("segment %d corrupted: %d", w, b)
			}
		}
	}
}

func testReadAtPastEOF(t *testing.T, fs FS) {
	WriteFile(fs, "/f", []byte("abc"))
	f, _ := fs.Open("/f")
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 1)
	if n != 2 || err != io.EOF {
		t.Fatalf("short read n=%d err=%v", n, err)
	}
	if _, err := f.ReadAt(buf, 99); err != io.EOF {
		t.Fatalf("past-eof err = %v", err)
	}
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset should fail")
	}
}
