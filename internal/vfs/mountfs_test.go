package vfs

import (
	"errors"
	"testing"
)

func newWorld(t *testing.T) (*MountFS, *MemFS, *MemFS, *MemFS) {
	t.Helper()
	root, scratch, out := NewMemFS(), NewMemFS(), NewMemFS()
	m := NewMountFS(root)
	if err := m.Mount("/scratch", scratch); err != nil {
		t.Fatalf("mount /scratch: %v", err)
	}
	if err := m.Mount("/out", out); err != nil {
		t.Fatalf("mount /out: %v", err)
	}
	return m, root, scratch, out
}

func TestMountRouting(t *testing.T) {
	m, root, scratch, _ := newWorld(t)
	if err := WriteFile(m, "/scratch/f", []byte("tier")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The bytes live in the scratch backend under the mount-relative path.
	got, err := ReadFile(scratch, "/f")
	if err != nil || string(got) != "tier" {
		t.Fatalf("scratch backend content = %q, %v; want \"tier\"", got, err)
	}
	if Exists(root, "/scratch/f") {
		t.Fatalf("root backend must not see the routed file")
	}
	// And reading back through the table round-trips.
	got, err = ReadFile(m, "/scratch/f")
	if err != nil || string(got) != "tier" {
		t.Fatalf("mounted read = %q, %v; want \"tier\"", got, err)
	}
	// Root-owned paths stay in the root backend.
	if err := WriteFile(m, "/home.txt", []byte("x")); err != nil {
		t.Fatalf("root write: %v", err)
	}
	if !Exists(root, "/home.txt") {
		t.Fatalf("root backend must own /home.txt")
	}
}

func TestMountNestedShadowing(t *testing.T) {
	m, _, scratch, _ := newWorld(t)
	tmp := NewMemFS()
	if err := m.Mount("/scratch/tmp", tmp); err != nil {
		t.Fatalf("nested mount: %v", err)
	}
	if err := WriteFile(m, "/scratch/tmp/f", []byte("inner")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !Exists(tmp, "/f") {
		t.Fatalf("nested mount must shadow its ancestor")
	}
	if Exists(scratch, "/tmp/f") {
		t.Fatalf("shadowed ancestor must not receive the write")
	}
	// A sibling path on the outer mount still routes to the outer backend.
	if err := WriteFile(m, "/scratch/other", []byte("outer")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !Exists(scratch, "/other") {
		t.Fatalf("outer mount must keep non-shadowed paths")
	}
	// Unmounting the outer mount while the nested one is alive is EBUSY.
	if err := m.Unmount("/scratch"); !errors.Is(err, ErrMountBusy) {
		t.Fatalf("unmount of shadowing mount = %v; want ErrMountBusy", err)
	}
	if err := m.Unmount("/scratch/tmp"); err != nil {
		t.Fatalf("unmount nested: %v", err)
	}
	// With the shadow gone, the path routes to the outer mount again.
	if err := WriteFile(m, "/scratch/tmp/g", []byte("re-exposed")); err != nil {
		t.Fatalf("write after unmount: %v", err)
	}
	if !Exists(scratch, "/tmp/g") {
		t.Fatalf("unmount must re-expose the outer backend")
	}
}

func TestMountSegmentBoundaryTies(t *testing.T) {
	m, root, scratch, _ := newWorld(t)
	// /scratchpad shares a string prefix with the /scratch mount but not a
	// path-segment prefix: it must route to the root backend.
	if err := m.MkdirAll("/scratchpad"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := WriteFile(m, "/scratchpad/x", []byte("pad")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !Exists(root, "/scratchpad/x") || Exists(scratch, "pad/x") {
		t.Fatalf("/scratchpad must route to root, not the /scratch mount")
	}
	// Same-length sibling mounts resolve unambiguously.
	a, b := NewMemFS(), NewMemFS()
	if err := m.Mount("/ta", a); err != nil {
		t.Fatalf("mount: %v", err)
	}
	if err := m.Mount("/tb", b); err != nil {
		t.Fatalf("mount: %v", err)
	}
	if err := WriteFile(m, "/tb/x", []byte("b")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if Exists(a, "/x") || !Exists(b, "/x") {
		t.Fatalf("sibling mounts of equal path length must not alias")
	}
	if mp, _ := m.MountFor("/ta/whatever"); mp != "/ta" {
		t.Fatalf("MountFor(/ta/whatever) = %q; want /ta", mp)
	}
}

func TestMountCrossMountRename(t *testing.T) {
	m, _, _, _ := newWorld(t)
	if err := WriteFile(m, "/scratch/result", []byte("data")); err != nil {
		t.Fatalf("write: %v", err)
	}
	err := m.Rename("/scratch/result", "/out/result")
	if !errors.Is(err, ErrCrossMount) {
		t.Fatalf("cross-mount rename = %v; want ErrCrossMount", err)
	}
	// Same-mount rename still works, including on the root mount.
	if err := m.Rename("/scratch/result", "/scratch/final"); err != nil {
		t.Fatalf("same-mount rename: %v", err)
	}
	if !Exists(m, "/scratch/final") || Exists(m, "/scratch/result") {
		t.Fatalf("same-mount rename did not move the file")
	}
}

func TestMountReadDirBoundary(t *testing.T) {
	m, _, _, _ := newWorld(t)
	if err := WriteFile(m, "/scratch/a.dat", []byte("a")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := WriteFile(m, "/top.txt", []byte("t")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The parent listing shows the materialized mount points as directories.
	infos, err := m.ReadDir("/")
	if err != nil {
		t.Fatalf("readdir /: %v", err)
	}
	byName := map[string]FileInfo{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	for _, want := range []string{"scratch", "out", "top.txt"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("readdir / missing %q (got %v)", want, infos)
		}
	}
	if !byName["scratch"].IsDir || !byName["out"].IsDir {
		t.Fatalf("mount points must list as directories")
	}
	// Listing the mount point itself lists the mounted backend's root.
	infos, err = m.ReadDir("/scratch")
	if err != nil {
		t.Fatalf("readdir /scratch: %v", err)
	}
	if len(infos) != 1 || infos[0].Name != "a.dat" {
		t.Fatalf("readdir /scratch = %v; want [a.dat]", infos)
	}
	// Stat at the boundary reports a directory named after the mount point.
	info, err := m.Stat("/scratch")
	if err != nil || !info.IsDir || info.Name != "scratch" {
		t.Fatalf("stat /scratch = %+v, %v; want dir named scratch", info, err)
	}
	// Walk crosses the boundary transparently.
	var walked []string
	if err := Walk(m, "/", func(p string, _ FileInfo) error {
		walked = append(walked, p)
		return nil
	}); err != nil {
		t.Fatalf("walk: %v", err)
	}
	want := map[string]bool{"/scratch/a.dat": true, "/top.txt": true}
	for _, p := range walked {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("walk missed %v (walked %v)", want, walked)
	}
}

func TestMountTableGuards(t *testing.T) {
	m, root, _, _ := newWorld(t)
	// Mount point paths are busy for unlink-style operations.
	if err := m.Remove("/scratch"); !errors.Is(err, ErrMountBusy) {
		t.Fatalf("remove mount point = %v; want ErrMountBusy", err)
	}
	if err := m.RemoveAll("/"); !errors.Is(err, ErrMountBusy) {
		t.Fatalf("removeall over mount point = %v; want ErrMountBusy", err)
	}
	if err := WriteFile(m, "/f", []byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := m.Rename("/f", "/scratch"); !errors.Is(err, ErrMountBusy) {
		t.Fatalf("rename onto mount point = %v; want ErrMountBusy", err)
	}
	// Duplicate and root mounts are rejected.
	if err := m.Mount("/scratch", NewMemFS()); !errors.Is(err, ErrMountBusy) {
		t.Fatalf("duplicate mount = %v; want ErrMountBusy", err)
	}
	if err := m.Mount("/", NewMemFS()); !errors.Is(err, ErrMountBusy) {
		t.Fatalf("mount over / = %v; want ErrMountBusy", err)
	}
	// Mounting over an existing regular file cannot materialize a directory.
	if err := WriteFile(m, "/plainfile", []byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := m.Mount("/plainfile", NewMemFS()); !errors.Is(err, ErrNotDir) {
		t.Fatalf("mount over file = %v; want ErrNotDir", err)
	}
	// After unmount, the materialized directory remains in the cover.
	if err := m.Unmount("/out"); err != nil {
		t.Fatalf("unmount: %v", err)
	}
	if info, err := root.Stat("/out"); err != nil || !info.IsDir {
		t.Fatalf("materialized mount dir should persist in root: %+v, %v", info, err)
	}
	if err := m.Unmount("/out"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double unmount = %v; want ErrNotExist", err)
	}
}

func TestMountWithInterposed(t *testing.T) {
	m, _, _, _ := newWorld(t)
	counting := NewCountingFS(nil) // replaced below; declared for type only
	armed, err := m.WithInterposed("/scratch", func(inner FS) FS {
		counting = NewCountingFS(inner)
		return counting
	})
	if err != nil {
		t.Fatalf("interpose: %v", err)
	}
	// Writes through the armed view hit the wrapper and the shared backend.
	if err := WriteFile(armed, "/scratch/f", []byte("shared")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := counting.Count(PrimWrite); got != 1 {
		t.Fatalf("interposed wrapper counted %d writes; want 1", got)
	}
	// I/O outside the interposed mount bypasses the wrapper entirely.
	if err := WriteFile(armed, "/out/g", []byte("clean")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := counting.Count(PrimWrite); got != 1 {
		t.Fatalf("other-mount I/O leaked into the wrapper (count %d)", got)
	}
	// The original table shares storage but not the wrapper.
	if data, err := ReadFile(m, "/scratch/f"); err != nil || string(data) != "shared" {
		t.Fatalf("original view = %q, %v; want shared backend content", data, err)
	}
	if got := counting.Count(PrimRead); got != 0 {
		t.Fatalf("reads through the original table must not count (got %d)", got)
	}
	if _, err := m.WithInterposed("/nope", func(inner FS) FS { return inner }); !errors.Is(err, ErrNotExist) {
		t.Fatalf("interpose on unknown mount = %v; want ErrNotExist", err)
	}
}

func TestMountFileNameIsTableAbsolute(t *testing.T) {
	m, _, _, _ := newWorld(t)
	f, err := m.Create("/scratch/deep.bin")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer f.Close()
	if got := f.Name(); got != "/scratch/deep.bin" {
		t.Fatalf("handle name = %q; want the table-absolute path", got)
	}
}
