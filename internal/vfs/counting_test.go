package vfs

import (
	"sync"
	"testing"
)

func TestCountingFSTracksWrites(t *testing.T) {
	fs := NewCountingFS(NewMemFS())
	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("a"))
	f.Write([]byte("b"))
	f.WriteAt([]byte("c"), 0)
	f.Close()
	if got := fs.Count(PrimWrite); got != 3 {
		t.Fatalf("write count = %d, want 3", got)
	}
	if got := fs.Count(PrimCreate); got != 1 {
		t.Fatalf("create count = %d, want 1", got)
	}
}

func TestCountingFSAllPrimitives(t *testing.T) {
	fs := NewCountingFS(NewMemFS())
	fs.MkdirAll("/d")
	WriteFile(fs, "/d/f", []byte("x"))
	ReadFile(fs, "/d/f")
	fs.Stat("/d/f")
	fs.ReadDir("/d")
	fs.Chmod("/d/f", 0o600)
	fs.Mknod("/node", 0o600, 1)
	fs.Truncate("/d/f", 0)
	fs.Rename("/d/f", "/d/g")
	fs.Remove("/d/g")

	for _, p := range []Primitive{
		PrimMkdir, PrimCreate, PrimWrite, PrimOpen, PrimRead, PrimStat,
		PrimReadDir, PrimChmod, PrimMknod, PrimTruncate, PrimRename, PrimRemove,
	} {
		if fs.Count(p) == 0 {
			t.Errorf("primitive %s never counted", p)
		}
	}
}

func TestCountingFSReset(t *testing.T) {
	fs := NewCountingFS(NewMemFS())
	WriteFile(fs, "/f", []byte("x"))
	fs.Reset()
	for _, c := range fs.Census() {
		if c.Count != 0 {
			t.Fatalf("%s = %d after reset", c.Primitive, c.Count)
		}
	}
}

func TestCountingFSCensusSorted(t *testing.T) {
	fs := NewCountingFS(NewMemFS())
	WriteFile(fs, "/f", []byte("x"))
	census := fs.Census()
	if len(census) < 12 {
		t.Fatalf("census has %d entries", len(census))
	}
	for i := 1; i < len(census); i++ {
		if census[i-1].Primitive >= census[i].Primitive {
			t.Fatal("census not sorted")
		}
	}
}

func TestCountingFSConcurrent(t *testing.T) {
	fs := NewCountingFS(NewMemFS())
	var wg sync.WaitGroup
	const workers, writesPer = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			f, err := fs.Create("/f" + string(rune('0'+id)))
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			for i := 0; i < writesPer; i++ {
				f.Write([]byte("x"))
			}
		}(w)
	}
	wg.Wait()
	if got := fs.Count(PrimWrite); got != workers*writesPer {
		t.Fatalf("write count = %d, want %d", got, workers*writesPer)
	}
}

func TestCountingFSDelegatesContent(t *testing.T) {
	// Profiling must be transparent (requirement R1): content through the
	// counting layer is byte-identical to content through the bare FS.
	inner := NewMemFS()
	fs := NewCountingFS(inner)
	WriteFile(fs, "/f", []byte("payload"))
	got, err := ReadFile(inner, "/f")
	if err != nil || string(got) != "payload" {
		t.Fatalf("inner content: %v %q", err, got)
	}
}

func TestPrimitivesStable(t *testing.T) {
	a := Primitives()
	b := Primitives()
	if len(a) != len(b) {
		t.Fatal("unstable primitive list")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("unstable primitive order")
		}
	}
}

// BenchmarkCountingFSWriteAt measures the full profiled hot path: one
// counted 4 KiB pwrite through CountingFS onto MemFS. The profiling pass
// runs every workload op through bump(), so this is the per-op overhead
// the campaign engine pays once per primitive execution.
func BenchmarkCountingFSWriteAt(b *testing.B) {
	fs := NewCountingFS(NewMemFS())
	f, err := fs.Create("/bench")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(buf, int64(i%1024)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCountingBump isolates the counter increment itself, without the
// backing write: the cost added to every primitive beyond what the bare FS
// charges.
func BenchmarkCountingBump(b *testing.B) {
	fs := NewCountingFS(NewMemFS())
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			fs.bump(PrimWrite)
		}
	})
}

// TestCountingSkipsZeroLengthTransfers pins the profiler/injector contract:
// the profiled count defines the injection target space, and the injector
// never claims an empty transfer, so zero-length writes and reads must not
// be counted as primitive instances.
func TestCountingSkipsZeroLengthTransfers(t *testing.T) {
	fs := NewCountingFS(NewMemFS())
	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	f.Write(nil)             // not an instance
	f.WriteAt([]byte{}, 0)   // not an instance
	f.Write([]byte("abc"))   // instance 0
	f.WriteAt([]byte{1}, 10) // instance 1
	buf := make([]byte, 4)
	f.ReadAt(buf, 0) // instance 0
	f.ReadAt(nil, 0) // not an instance
	f.Read(buf[:0])  // not an instance
	f.Read(buf)      // instance 1
	f.Close()
	if got := fs.Count(PrimWrite); got != 2 {
		t.Fatalf("write count = %d, want 2 (zero-length writes counted)", got)
	}
	if got := fs.Count(PrimRead); got != 2 {
		t.Fatalf("read count = %d, want 2 (zero-length reads counted)", got)
	}
}
