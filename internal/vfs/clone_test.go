package vfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// snapshotAll walks every file under "/" into a path→content map.
func snapshotAll(t *testing.T, fsys FS) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := Walk(fsys, "/", func(p string, info FileInfo) error {
		data, err := ReadFile(fsys, p)
		if err != nil {
			return err
		}
		out[p] = data
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
	return out
}

func sameSnapshot(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for p, data := range a {
		if other, ok := b[p]; !ok || !bytes.Equal(data, other) {
			return false
		}
	}
	return true
}

func buildTree(t *testing.T, fsys FS) {
	t.Helper()
	if err := fsys.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(fsys, "/a/b/one", []byte("one content")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(fsys, "/a/two", bytes.Repeat([]byte("x"), 4096)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(fsys, "/top", []byte("top")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Mknod("/dev0", 0o600, 42); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSCloneEquality(t *testing.T) {
	m := NewMemFS()
	buildTree(t, m)
	c := m.Clone()
	if !sameSnapshot(snapshotAll(t, m), snapshotAll(t, c)) {
		t.Fatal("clone differs from original at clone time")
	}
	// Metadata comes along too.
	for _, p := range []string{"/a", "/a/b/one", "/dev0"} {
		oi, err := m.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		ci, err := c.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if oi != ci {
			t.Fatalf("stat %s: original %+v clone %+v", p, oi, ci)
		}
	}
}

// TestMemFSCloneIsolation mutates a clone every way the FS interface allows
// and asserts neither the pristine original nor a sibling clone observes any
// of it — and symmetrically, that post-clone writes to the original stay out
// of the clones.
func TestMemFSCloneIsolation(t *testing.T) {
	m := NewMemFS()
	buildTree(t, m)
	pristine := snapshotAll(t, m)

	mutations := []struct {
		name string
		mut  func(fs FS) error
	}{
		{"overwrite", func(fs FS) error { return WriteFile(fs, "/a/b/one", []byte("CLOBBERED")) }},
		{"write-at", func(fs FS) error {
			f, err := fs.Append("/a/two")
			if err != nil {
				return err
			}
			defer f.Close()
			_, err = f.WriteAt([]byte("mid"), 100)
			return err
		}},
		{"append", func(fs FS) error {
			f, err := fs.Append("/top")
			if err != nil {
				return err
			}
			defer f.Close()
			_, err = f.Write([]byte(" more"))
			return err
		}},
		{"truncate-shrink", func(fs FS) error { return fs.Truncate("/a/two", 10) }},
		{"truncate-grow", func(fs FS) error { return fs.Truncate("/top", 1000) }},
		{"remove", func(fs FS) error { return fs.Remove("/a/b/one") }},
		{"rename", func(fs FS) error { return fs.Rename("/top", "/moved") }},
		{"create-new", func(fs FS) error { return WriteFile(fs, "/fresh", []byte("new")) }},
		{"create-truncating", func(fs FS) error {
			f, err := fs.Create("/a/two")
			if err != nil {
				return err
			}
			defer f.Close()
			_, err = f.Write([]byte("short"))
			return err
		}},
		{"removeall", func(fs FS) error { return fs.RemoveAll("/a") }},
		{"chmod", func(fs FS) error { return fs.Chmod("/a/b/one", 0o400) }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			victim := m.Clone()
			sibling := m.Clone()
			if err := tc.mut(victim); err != nil {
				t.Fatalf("mutation: %v", err)
			}
			if !sameSnapshot(snapshotAll(t, m), pristine) {
				t.Fatal("mutation in clone leaked into the original")
			}
			if !sameSnapshot(snapshotAll(t, sibling), pristine) {
				t.Fatal("mutation in clone leaked into a sibling clone")
			}
		})
	}

	// The reverse direction: the original mutates after cloning.
	clone := m.Clone()
	if err := WriteFile(m, "/a/b/one", []byte("original moved on")); err != nil {
		t.Fatal(err)
	}
	if err := m.Truncate("/a/two", 1); err != nil {
		t.Fatal(err)
	}
	if !sameSnapshot(snapshotAll(t, clone), pristine) {
		t.Fatal("mutation in original leaked into the clone")
	}
}

// TestMemFSCloneAppendWithinCapacity covers the subtle shared-backing case:
// a shrink leaves spare capacity in the shared slice, and a later grow on one
// side must not scribble into backing bytes the other side could reuse.
func TestMemFSCloneAppendWithinCapacity(t *testing.T) {
	m := NewMemFS()
	if err := WriteFile(m, "/f", bytes.Repeat([]byte("A"), 8192)); err != nil {
		t.Fatal(err)
	}
	if err := m.Truncate("/f", 16); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	// Grow the original back into what was spare capacity.
	f, err := m.Append("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte("B"), 100)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ReadFile(c, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if want := bytes.Repeat([]byte("A"), 16); !bytes.Equal(got, want) {
		t.Fatalf("clone sees %q, want %q", got, want)
	}
}

func TestMountFSClone(t *testing.T) {
	root := NewMemFS()
	m := NewMountFS(root)
	if err := m.Mount("/scratch", NewMemFS()); err != nil {
		t.Fatal(err)
	}
	if err := m.Mount("/out", NewMemFS()); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(m, "/scratch/data", []byte("scratch bytes")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(m, "/out/result", []byte("out bytes")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(m, "/rootfile", []byte("root bytes")); err != nil {
		t.Fatal(err)
	}
	pristine := snapshotAll(t, m)

	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if !sameSnapshot(snapshotAll(t, c), pristine) {
		t.Fatal("mount clone differs from original")
	}
	// Same table, distinct backends.
	om, cm := m.Mounts(), c.Mounts()
	if len(om) != len(cm) {
		t.Fatalf("mount table size changed: %d vs %d", len(om), len(cm))
	}
	for i := range om {
		if om[i].Path != cm[i].Path {
			t.Fatalf("mount %d path %q vs %q", i, om[i].Path, cm[i].Path)
		}
		if om[i].FS == cm[i].FS {
			t.Fatalf("mount %q shares its backend with the clone", om[i].Path)
		}
	}
	// Mutations on each side of every tier stay private.
	if err := WriteFile(c, "/scratch/data", []byte("CLONE")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(c, "/out/extra", []byte("EXTRA")); err != nil {
		t.Fatal(err)
	}
	if !sameSnapshot(snapshotAll(t, m), pristine) {
		t.Fatal("clone mutation leaked into the original mounted world")
	}
	// Cross-mount semantics survive the clone.
	if err := c.Rename("/scratch/data", "/out/data"); !errors.Is(err, ErrCrossMount) {
		t.Fatalf("cross-mount rename on clone: %v, want ErrCrossMount", err)
	}
}

type unclonableFS struct{ FS }

func TestMountFSCloneUnclonableBackend(t *testing.T) {
	m := NewMountFS(NewMemFS())
	if err := m.Mount("/osdir", unclonableFS{NewMemFS()}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Clone(); !errors.Is(err, ErrNotClonable) {
		t.Fatalf("clone with unclonable backend: %v, want ErrNotClonable", err)
	}
}

func TestMountFSCloneRejectsInterposedView(t *testing.T) {
	m := NewMountFS(NewMemFS())
	if err := m.Mount("/scratch", NewMemFS()); err != nil {
		t.Fatal(err)
	}
	armed, err := m.WithInterposed("/scratch", func(inner FS) FS { return inner })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := armed.Clone(); err == nil {
		t.Fatal("cloning an interposed view should fail")
	}
}

// TestMemFSCloneConcurrent hammers clones from multiple goroutines while the
// original keeps writing; run under -race this is the campaign engine's
// world-fan-out in miniature.
func TestMemFSCloneConcurrent(t *testing.T) {
	m := NewMemFS()
	buildTree(t, m)
	pristine := snapshotAll(t, m)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				c := m.Clone()
				p := fmt.Sprintf("/g%d-%d", g, i)
				if err := WriteFile(c, p, []byte(p)); err != nil {
					t.Error(err)
					return
				}
				if err := WriteFile(c, "/a/b/one", []byte(p)); err != nil {
					t.Error(err)
					return
				}
				got, err := ReadFile(c, "/a/b/one")
				if err != nil || string(got) != p {
					t.Errorf("clone readback %q: %q, %v", p, got, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if !sameSnapshot(snapshotAll(t, m), pristine) {
		t.Fatal("concurrent clone traffic mutated the original")
	}
}

// TestMemFSCloneSharesUntouchedBlocks asserts the O(changed data) COW
// contract structurally: after a clone, both trees reference the same
// extent objects; a write in the clone replaces only the touched block
// there, leaving every other extent — and all of the parent's — shared.
func TestMemFSCloneSharesUntouchedBlocks(t *testing.T) {
	m := NewMemFS()
	const nblocks = 16
	if err := WriteFile(m, "/big", bytes.Repeat([]byte{7}, nblocks*BlockSize)); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	pn, cn := m.nodes["/big"], c.nodes["/big"]
	for i := 0; i < nblocks; i++ {
		if pn.blocks[i] != cn.blocks[i] {
			t.Fatalf("block %d not shared right after clone", i)
		}
		if !pn.blocks[i].sealed.Load() {
			t.Fatalf("block %d not sealed by clone", i)
		}
	}
	// One 4 KiB write into block 5 of the clone.
	f, err := c.Append("/big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 4096), int64(5*BlockSize+100)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for i := 0; i < nblocks; i++ {
		shared := pn.blocks[i] == cn.blocks[i]
		if i == 5 && shared {
			t.Fatal("written block still shared: the write mutated a sealed extent")
		}
		if i != 5 && !shared {
			t.Fatalf("untouched block %d was copied: COW is not O(changed data)", i)
		}
	}
	if cn.blocks[5].sealed.Load() {
		t.Fatal("clone's private replacement block is sealed")
	}
	if !pn.blocks[5].sealed.Load() {
		t.Fatal("parent's block lost its seal")
	}
}

// TestMemFSCloneWhileWriting clones a tree while a writer goroutine keeps
// mutating the lower half of a file through an open handle, and proves
// neither tree ever observes the other's writes: each clone is frozen (two
// reads of it agree even as the parent keeps changing), clone-side writes
// to the upper half never reach the parent, and the parent's upper half
// stays pristine throughout. Run under -race this doubles as the data-race
// proof for the per-block seal protocol.
func TestMemFSCloneWhileWriting(t *testing.T) {
	const (
		blocks = 8
		half   = blocks / 2 * BlockSize
	)
	m := NewMemFS()
	if err := WriteFile(m, "/f", make([]byte, blocks*BlockSize)); err != nil {
		t.Fatal(err)
	}
	w, err := m.Append("/f")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for j := range buf {
				buf[j] = byte(i + j)
			}
			off := int64((i * 8191) % (half - len(buf)))
			if _, err := w.WriteAt(buf, off); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	mark := bytes.Repeat([]byte{0xFF}, 4096)
	for i := 0; i < 40; i++ {
		c := m.Clone()
		a, err := ReadFile(c, "/f")
		if err != nil {
			t.Fatal(err)
		}
		b, err := ReadFile(c, "/f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatal("clone content changed after the snapshot was taken")
		}
		// Divergent write into the clone's upper half; the parent writer
		// never touches that region, so any leak is detectable below.
		f, err := c.Append("/f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(mark, int64(half+i*4096)); err != nil {
			t.Fatal(err)
		}
		f.Close()
		got, err := ReadFile(c, "/f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[half+i*4096:half+(i+1)*4096], mark) {
			t.Fatal("clone write not visible in the clone")
		}
	}
	close(stop)
	<-done
	w.Close()

	got, err := ReadFile(m, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[half:], make([]byte, half)) {
		t.Fatal("a clone's write leaked into the parent")
	}
}
