package vfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func newOSFS(t *testing.T) *OSFS {
	t.Helper()
	return NewOSFS(t.TempDir())
}

func TestOSFSWriteReadRoundTrip(t *testing.T) {
	fs := newOSFS(t)
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(fs, "/a/b/f.bin", []byte("real storage")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fs, "/a/b/f.bin")
	if err != nil || string(got) != "real storage" {
		t.Fatalf("%v %q", err, got)
	}
}

func TestOSFSPositionalIO(t *testing.T) {
	fs := newOSFS(t)
	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("tail"), 100); err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	if size != 104 {
		t.Fatalf("size = %d", size)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 100); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "tail" {
		t.Fatalf("buf = %q", buf)
	}
}

func TestOSFSAppend(t *testing.T) {
	fs := newOSFS(t)
	WriteFile(fs, "/log", []byte("one\n"))
	f, err := fs.Append("/log")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("two\n"))
	f.Close()
	got, _ := ReadFile(fs, "/log")
	if string(got) != "one\ntwo\n" {
		t.Fatalf("got %q", got)
	}
}

func TestOSFSReadOnlyHandle(t *testing.T) {
	fs := newOSFS(t)
	WriteFile(fs, "/f", []byte("x"))
	f, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
	if err := f.Truncate(0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("truncate err = %v", err)
	}
}

func TestOSFSConfinement(t *testing.T) {
	fs := newOSFS(t)
	// Attempts to escape the root are squashed to the root.
	if err := WriteFile(fs, "/../../escape", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !Exists(fs, "/escape") {
		t.Fatal("escape path was not confined to the root")
	}
}

func TestOSFSDirectoryOps(t *testing.T) {
	fs := newOSFS(t)
	fs.MkdirAll("/d")
	WriteFile(fs, "/d/b", []byte("2"))
	WriteFile(fs, "/d/a", []byte("1"))
	infos, err := fs.ReadDir("/d")
	if err != nil || len(infos) != 2 || infos[0].Name != "a" {
		t.Fatalf("%v %+v", err, infos)
	}
	if err := fs.Rename("/d/a", "/d/c"); err != nil {
		t.Fatal(err)
	}
	if Exists(fs, "/d/a") || !Exists(fs, "/d/c") {
		t.Fatal("rename failed")
	}
	if err := fs.Remove("/d/c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveAll("/d"); err != nil {
		t.Fatal(err)
	}
	if Exists(fs, "/d") {
		t.Fatal("removeall failed")
	}
}

func TestOSFSMknodChmodTruncate(t *testing.T) {
	fs := newOSFS(t)
	if err := fs.Mknod("/node", 0o600, 1); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mknod("/node", 0o600, 1); err == nil {
		t.Fatal("duplicate mknod accepted")
	}
	if err := fs.Chmod("/node", 0o400); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/node")
	if info.Mode != 0o400 {
		t.Fatalf("mode = %o", info.Mode)
	}
	fs.Chmod("/node", 0o600)
	WriteFile(fs, "/t", bytes.Repeat([]byte{1}, 10))
	if err := fs.Truncate("/t", 4); err != nil {
		t.Fatal(err)
	}
	info, _ = fs.Stat("/t")
	if info.Size != 4 {
		t.Fatalf("size = %d", info.Size)
	}
}

// TestOSFSBehavesLikeMemFS cross-validates the two backends with the same
// operation sequence — the substitution argument for using MemFS in
// campaigns requires they agree.
func TestOSFSBehavesLikeMemFS(t *testing.T) {
	run := func(fs FS) string {
		fs.MkdirAll("/x/y")
		WriteFile(fs, "/x/y/f", []byte("hello"))
		f, _ := fs.Append("/x/y/f")
		f.Write([]byte(" world"))
		f.WriteAt([]byte("H"), 0)
		f.Close()
		fs.Rename("/x/y/f", "/x/g")
		got, _ := ReadFile(fs, "/x/g")
		info, _ := fs.Stat("/x/g")
		return string(got) + "|" + infoString(info)
	}
	a := run(NewMemFS())
	b := run(newOSFS(t))
	if a != b {
		t.Fatalf("backends disagree:\nmem: %s\nos:  %s", a, b)
	}
}

func infoString(i FileInfo) string {
	return i.Name + string(rune('0'+i.Size%10))
}
