package vfs

import (
	"errors"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ObjectFS is an S3-style object store behind the FS interface: every file
// is one flat-keyed, immutable-once-committed object, and every mutation —
// a 4-byte WriteAt included — commits a complete replacement object. That
// is the read-modify-write semantics of real object stores, where there is
// no partial PUT: the writer fetches the object, patches it in memory, and
// uploads the whole thing again. RewrittenBytes accumulates the committed
// object sizes so experiments can report the write amplification a
// byte-addressable backend (MemFS) never pays.
//
// The POSIX face the applications need (directories, Rename, ReadDir) is
// emulated over the flat key namespace the same way s3fs-style adapters do:
// directory entries are zero-byte markers in the key table, listings are
// prefix scans. Campaign machinery carries over unchanged because ObjectFS
// implements Cloner — Clone seals every object version and shares it
// structurally, and the first write to a sealed object pays a whole-object
// copy (the per-object analogue of MemFS's per-extent seal-and-copy).
//
// ConsistencyLag models eventual consistency on overwrite, the classic
// read-after-overwrite anomaly of eventually-consistent stores: when an
// existing key is replaced via Create, the next lag Opens of that key are
// served the superseded object. Lag zero (the default) is strong
// read-after-write, which is what the behavioral contract suite runs
// against. The anomaly is deterministic — it depends only on the sequence
// of Creates and Opens — so campaigns over ObjectFS stay reproducible.
//
// The zero value is not usable; call NewObjectFS.
type ObjectFS struct {
	mu    sync.RWMutex
	nodes map[string]*objNode
	lag   int
	stale map[string]*staleObject

	rewritten atomic.Int64
}

// objVersion is one committed object generation. sealed marks it immutable
// and possibly shared across clones; a writer landing on a sealed version
// replaces it wholesale (objNode.own). Sealing is monotonic, as for
// memBlock.
type objVersion struct {
	sealed atomic.Bool
	data   []byte
}

// objNode is a key-table entry: an object (file) or a directory marker.
type objNode struct {
	mu    sync.RWMutex
	ver   *objVersion // file content; nil for directories
	mode  uint32
	isDir bool
	dev   uint64
}

// staleObject is a superseded object generation still visible to readers:
// the next remaining Opens of the key observe data instead of the current
// version.
type staleObject struct {
	data      []byte
	mode      uint32
	remaining int
}

// NewObjectFS returns an empty object store with strong read-after-write
// consistency (ConsistencyLag 0).
func NewObjectFS() *ObjectFS {
	return &ObjectFS{
		nodes: map[string]*objNode{
			"/": {isDir: true, mode: 0o755},
		},
		stale: map[string]*staleObject{},
	}
}

// SetConsistencyLag sets the eventual-consistency window: after an existing
// key is overwritten via Create, the next lag Opens of that key serve the
// superseded object. Zero restores strong consistency. The knob applies to
// overwrites issued after the call.
func (o *ObjectFS) SetConsistencyLag(lag int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if lag < 0 {
		lag = 0
	}
	o.lag = lag
}

// RewrittenBytes reports the total bytes committed by whole-object writes
// since construction (clones start at zero). Every mutating data operation
// commits the full resulting object, so the ratio of RewrittenBytes to the
// bytes the application logically wrote is the object store's write
// amplification.
func (o *ObjectFS) RewrittenBytes() int64 { return o.rewritten.Load() }

// Capabilities declares the backend profile: clonable, but whole-object
// rather than byte-addressable.
func (o *ObjectFS) Capabilities() Capability { return CapClone }

func (o *ObjectFS) parentOK(name string) error {
	dir := path.Dir(name)
	n, ok := o.nodes[dir]
	if !ok {
		return &PathError{Op: "open", Path: name, Err: ErrNotExist}
	}
	if !n.isDir {
		return &PathError{Op: "open", Path: name, Err: ErrNotDir}
	}
	return nil
}

// Create opens name for writing, committing a fresh empty object over any
// existing one. With a nonzero consistency lag the superseded object is
// kept visible to the next lag Opens.
func (o *ObjectFS) Create(name string) (File, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	name = Clean(name)
	if err := o.parentOK(name); err != nil {
		return nil, err
	}
	if n, ok := o.nodes[name]; ok {
		if n.isDir {
			return nil, &PathError{Op: "create", Path: name, Err: ErrIsDir}
		}
		n.mu.Lock()
		if o.lag > 0 && len(n.ver.data) > 0 {
			n.ver.sealed.Store(true)
			o.stale[name] = &staleObject{data: n.ver.data, mode: n.mode, remaining: o.lag}
		}
		n.ver = &objVersion{}
		n.mu.Unlock()
		return &objFile{name: name, fs: o, node: n, writable: true}, nil
	}
	n := &objNode{mode: 0o644, ver: &objVersion{}}
	o.nodes[name] = n
	return &objFile{name: name, fs: o, node: n, writable: true}, nil
}

// Open opens name read-only. When the key sits inside an eventual-
// consistency window, the superseded object is served and the window
// shrinks by one.
func (o *ObjectFS) Open(name string) (File, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	name = Clean(name)
	if s, ok := o.stale[name]; ok {
		s.remaining--
		if s.remaining <= 0 {
			delete(o.stale, name)
		}
		n := &objNode{mode: s.mode, ver: &objVersion{data: s.data}}
		n.ver.sealed.Store(true)
		return &objFile{name: name, fs: o, node: n, writable: false}, nil
	}
	n, ok := o.nodes[name]
	if !ok {
		return nil, &PathError{Op: "open", Path: name, Err: ErrNotExist}
	}
	if n.isDir {
		return nil, &PathError{Op: "open", Path: name, Err: ErrIsDir}
	}
	return &objFile{name: name, fs: o, node: n, writable: false}, nil
}

// Append opens name for writing with the offset at end-of-object, creating
// it if needed. Every subsequent write still commits the whole object.
func (o *ObjectFS) Append(name string) (File, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	name = Clean(name)
	if err := o.parentOK(name); err != nil {
		return nil, err
	}
	n, ok := o.nodes[name]
	if !ok {
		n = &objNode{mode: 0o644, ver: &objVersion{}}
		o.nodes[name] = n
	} else if n.isDir {
		return nil, &PathError{Op: "append", Path: name, Err: ErrIsDir}
	}
	n.mu.RLock()
	off := int64(len(n.ver.data))
	n.mu.RUnlock()
	return &objFile{name: name, fs: o, node: n, writable: true, off: off}, nil
}

// Mkdir creates a single directory marker.
func (o *ObjectFS) Mkdir(name string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	name = Clean(name)
	if _, ok := o.nodes[name]; ok {
		return &PathError{Op: "mkdir", Path: name, Err: ErrExist}
	}
	if err := o.parentOK(name); err != nil {
		return err
	}
	o.nodes[name] = &objNode{isDir: true, mode: 0o755}
	return nil
}

// MkdirAll creates name and any missing parent markers.
func (o *ObjectFS) MkdirAll(name string) error {
	name = Clean(name)
	if name == "/" {
		return nil
	}
	var build strings.Builder
	for _, part := range strings.Split(strings.TrimPrefix(name, "/"), "/") {
		build.WriteString("/")
		build.WriteString(part)
		p := build.String()
		o.mu.Lock()
		if n, ok := o.nodes[p]; ok {
			isDir := n.isDir
			o.mu.Unlock()
			if !isDir {
				return &PathError{Op: "mkdir", Path: p, Err: ErrNotDir}
			}
			continue
		}
		o.nodes[p] = &objNode{isDir: true, mode: 0o755}
		o.mu.Unlock()
	}
	return nil
}

// Remove deletes an object or an empty directory marker. A pending stale
// window for the key is dropped with it.
func (o *ObjectFS) Remove(name string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	name = Clean(name)
	n, ok := o.nodes[name]
	if !ok {
		return &PathError{Op: "remove", Path: name, Err: ErrNotExist}
	}
	if n.isDir {
		prefix := name + "/"
		if name == "/" {
			prefix = "/"
		}
		for p := range o.nodes {
			if p != name && strings.HasPrefix(p, prefix) {
				return &PathError{Op: "remove", Path: name, Err: ErrDirNotEmpty}
			}
		}
	}
	delete(o.nodes, name)
	delete(o.stale, name)
	return nil
}

// RemoveAll deletes name and every key under it; absent names are not an
// error.
func (o *ObjectFS) RemoveAll(name string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	name = Clean(name)
	if name == "/" {
		o.nodes = map[string]*objNode{"/": {isDir: true, mode: 0o755}}
		o.stale = map[string]*staleObject{}
		return nil
	}
	prefix := name + "/"
	for p := range o.nodes {
		if p == name || strings.HasPrefix(p, prefix) {
			delete(o.nodes, p)
			delete(o.stale, p)
		}
	}
	return nil
}

// Rename rekeys oldName to newName (a prefix rewrite for directories —
// object stores have no rename, so this is the emulated copy-free variant).
func (o *ObjectFS) Rename(oldName, newName string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	oldName, newName = Clean(oldName), Clean(newName)
	n, ok := o.nodes[oldName]
	if !ok {
		return &PathError{Op: "rename", Path: oldName, Err: ErrNotExist}
	}
	if err := o.parentOK(newName); err != nil {
		return err
	}
	if dst, ok := o.nodes[newName]; ok && dst.isDir {
		return &PathError{Op: "rename", Path: newName, Err: ErrIsDir}
	}
	if n.isDir {
		oldPrefix := oldName + "/"
		moves := map[string]string{}
		for p := range o.nodes {
			if strings.HasPrefix(p, oldPrefix) {
				moves[p] = newName + "/" + strings.TrimPrefix(p, oldPrefix)
			}
		}
		for from, to := range moves {
			o.nodes[to] = o.nodes[from]
			delete(o.nodes, from)
		}
	}
	o.nodes[newName] = n
	delete(o.nodes, oldName)
	delete(o.stale, oldName)
	return nil
}

// Stat returns metadata for name (always the current generation; the
// eventual-consistency window applies to Open only, matching stores whose
// LIST/HEAD and GET planes converge at different times).
func (o *ObjectFS) Stat(name string) (FileInfo, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	name = Clean(name)
	n, ok := o.nodes[name]
	if !ok {
		return FileInfo{}, &PathError{Op: "stat", Path: name, Err: ErrNotExist}
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	info := FileInfo{Name: path.Base(name), Mode: n.mode, IsDir: n.isDir}
	if n.ver != nil {
		info.Size = int64(len(n.ver.data))
	}
	return info, nil
}

// ReadDir lists the immediate children of name in sorted order — a prefix
// scan over the key table, delimiter-style.
func (o *ObjectFS) ReadDir(name string) ([]FileInfo, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	name = Clean(name)
	n, ok := o.nodes[name]
	if !ok {
		return nil, &PathError{Op: "readdir", Path: name, Err: ErrNotExist}
	}
	if !n.isDir {
		return nil, &PathError{Op: "readdir", Path: name, Err: ErrNotDir}
	}
	prefix := name + "/"
	if name == "/" {
		prefix = "/"
	}
	var out []FileInfo
	for p, child := range o.nodes {
		if p == name || !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := strings.TrimPrefix(p, prefix)
		if strings.Contains(rest, "/") {
			continue
		}
		child.mu.RLock()
		info := FileInfo{Name: rest, Mode: child.mode, IsDir: child.isDir}
		if child.ver != nil {
			info.Size = int64(len(child.ver.data))
		}
		child.mu.RUnlock()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Mknod creates an empty object recording the mode and device number.
func (o *ObjectFS) Mknod(name string, mode uint32, dev uint64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	name = Clean(name)
	if _, ok := o.nodes[name]; ok {
		return &PathError{Op: "mknod", Path: name, Err: ErrExist}
	}
	if err := o.parentOK(name); err != nil {
		return err
	}
	o.nodes[name] = &objNode{mode: mode, dev: dev, ver: &objVersion{}}
	return nil
}

// Chmod changes the recorded permission bits of name.
func (o *ObjectFS) Chmod(name string, mode uint32) error {
	o.mu.RLock()
	n, ok := o.nodes[Clean(name)]
	o.mu.RUnlock()
	if !ok {
		return &PathError{Op: "chmod", Path: name, Err: ErrNotExist}
	}
	n.mu.Lock()
	n.mode = mode
	n.mu.Unlock()
	return nil
}

// Truncate resizes name — a whole-object rewrite like any other mutation.
func (o *ObjectFS) Truncate(name string, size int64) error {
	o.mu.RLock()
	n, ok := o.nodes[Clean(name)]
	o.mu.RUnlock()
	if !ok {
		return &PathError{Op: "truncate", Path: name, Err: ErrNotExist}
	}
	if n.isDir {
		return &PathError{Op: "truncate", Path: name, Err: ErrIsDir}
	}
	if size < 0 {
		return errors.New("vfs: negative truncate size")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.resize(size)
	o.rewritten.Add(size)
	return nil
}

// own gives the node a private, mutable version, paying the whole-object
// copy when the current one is sealed (shared with a clone or a stale
// reader). Caller holds n.mu for writing.
func (n *objNode) own() *objVersion {
	if n.ver.sealed.Load() {
		n.ver = &objVersion{data: append([]byte(nil), n.ver.data...)}
	}
	return n.ver
}

// resize grows (zero-filling) or shrinks the object to size. Caller holds
// n.mu for writing.
func (n *objNode) resize(size int64) {
	v := n.own()
	switch cur := int64(len(v.data)); {
	case size < cur:
		v.data = v.data[:size]
	case size > cur:
		if int64(cap(v.data)) >= size {
			old := len(v.data)
			v.data = v.data[:size]
			clear(v.data[old:])
		} else {
			grown := make([]byte, size)
			copy(grown, v.data)
			v.data = grown
		}
	}
}

// write patches p into the object at off and commits the result as the new
// whole-object generation. Caller holds n.mu for writing; the caller's fs
// pointer takes the amplification charge.
func (n *objNode) write(fs *ObjectFS, p []byte, off int64) {
	if end := off + int64(len(p)); end > int64(len(n.ver.data)) {
		n.resize(end)
	} else {
		n.own()
	}
	copy(n.ver.data[off:], p)
	fs.rewritten.Add(int64(len(n.ver.data)))
}

// readAt copies object content at off into p. Caller holds n.mu for
// reading.
func (n *objNode) readAt(p []byte, off int64) (int, error) {
	size := int64(len(n.ver.data))
	if off >= size {
		return 0, io.EOF
	}
	nc := copy(p, n.ver.data[off:])
	if nc < len(p) {
		return nc, io.EOF
	}
	return nc, nil
}

// Clone returns a copy-on-write snapshot: the key table is copied, every
// object version is sealed and shared, and the first write on either side
// replaces the touched object wholesale. Divergence therefore costs
// O(objects written) full objects — the amplification that distinguishes
// this backend from MemFS's O(extents written). Pending eventual-
// consistency windows are carried over (counters copied, superseded data
// shared) so a cloned world replays the same anomaly sequence a rebuilt
// one would.
func (o *ObjectFS) Clone() *ObjectFS {
	o.mu.RLock()
	defer o.mu.RUnlock()
	nodes := make(map[string]*objNode, len(o.nodes))
	for p, n := range o.nodes {
		n.mu.Lock()
		cp := &objNode{mode: n.mode, isDir: n.isDir, dev: n.dev}
		if n.ver != nil {
			n.ver.sealed.Store(true)
			cp.ver = n.ver
		}
		nodes[p] = cp
		n.mu.Unlock()
	}
	stale := make(map[string]*staleObject, len(o.stale))
	for p, s := range o.stale {
		cp := *s
		stale[p] = &cp
	}
	return &ObjectFS{nodes: nodes, lag: o.lag, stale: stale}
}

// CloneFS implements Cloner.
func (o *ObjectFS) CloneFS() (FS, error) { return o.Clone(), nil }

// objFile is an open handle onto an object. The locking protocol mirrors
// memFile: Close takes the handle's write lock so no in-flight operation
// still touches the node once it returns, positional operations share the
// read side, and sequential operations take the write side because they
// move off.
type objFile struct {
	name     string
	fs       *ObjectFS
	node     *objNode
	writable bool

	mu     sync.RWMutex
	off    int64
	closed bool
}

func (f *objFile) Name() string { return f.name }

func (f *objFile) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	n, err := f.readAt(p, f.off)
	f.off += int64(n)
	return n, err
}

func (f *objFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return 0, ErrClosed
	}
	return f.readAt(p, off)
}

func (f *objFile) readAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("vfs: negative read offset")
	}
	f.node.mu.RLock()
	defer f.node.mu.RUnlock()
	return f.node.readAt(p, off)
}

func (f *objFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	n, err := f.writeAt(p, f.off)
	f.off += int64(n)
	return n, err
}

func (f *objFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return 0, ErrClosed
	}
	return f.writeAt(p, off)
}

func (f *objFile) writeAt(p []byte, off int64) (int, error) {
	if !f.writable {
		return 0, ErrReadOnly
	}
	if off < 0 {
		return 0, errors.New("vfs: negative write offset")
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	f.node.write(f.fs, p, off)
	return len(p), nil
}

func (f *objFile) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		f.node.mu.RLock()
		base = int64(len(f.node.ver.data))
		f.node.mu.RUnlock()
	default:
		return 0, errors.New("vfs: bad seek whence")
	}
	pos := base + offset
	if pos < 0 {
		return 0, errors.New("vfs: negative seek position")
	}
	f.off = pos
	return pos, nil
}

func (f *objFile) Truncate(size int64) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	if !f.writable {
		return ErrReadOnly
	}
	if size < 0 {
		return errors.New("vfs: negative truncate size")
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	f.node.resize(size)
	f.fs.rewritten.Add(size)
	return nil
}

func (f *objFile) Size() (int64, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return 0, ErrClosed
	}
	f.node.mu.RLock()
	defer f.node.mu.RUnlock()
	return int64(len(f.node.ver.data)), nil
}

func (f *objFile) Sync() error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	return nil
}

func (f *objFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	return nil
}

var (
	_ FS                 = (*ObjectFS)(nil)
	_ File               = (*objFile)(nil)
	_ Cloner             = (*ObjectFS)(nil)
	_ CapabilityReporter = (*ObjectFS)(nil)
)
