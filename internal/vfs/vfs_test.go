package vfs

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"

	"ffis/internal/stats"
)

func TestCleanNormalizes(t *testing.T) {
	cases := map[string]string{
		"":           "/",
		"/":          "/",
		"a":          "/a",
		"/a/b/../c":  "/a/c",
		"//a///b":    "/a/b",
		"a/b/./c":    "/a/b/c",
		"/trailing/": "/trailing",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCreateWriteReadBack(t *testing.T) {
	fs := NewMemFS()
	if err := WriteFile(fs, "/hello.txt", []byte("storage faults")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fs, "/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "storage faults" {
		t.Fatalf("read %q", got)
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	fs := NewMemFS()
	if err := WriteFile(fs, "/f", []byte("long old content")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(fs, "/f", []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _ := ReadFile(fs, "/f")
	if string(got) != "new" {
		t.Fatalf("got %q", got)
	}
}

func TestOpenMissingFile(t *testing.T) {
	fs := NewMemFS()
	_, err := fs.Open("/nope")
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestCreateInMissingDir(t *testing.T) {
	fs := NewMemFS()
	_, err := fs.Create("/no/such/dir/file")
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestMkdirAndNesting(t *testing.T) {
	fs := NewMemFS()
	if err := fs.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a"); !errors.Is(err, ErrExist) {
		t.Fatalf("second mkdir err = %v", err)
	}
	if err := fs.Mkdir("/a/b/c"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("deep mkdir err = %v", err)
	}
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/a/b/c")
	if err != nil || !info.IsDir {
		t.Fatalf("stat: %v %+v", err, info)
	}
	// MkdirAll through an existing file must fail.
	if err := WriteFile(fs, "/a/file", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/a/file/sub"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("MkdirAll through file err = %v", err)
	}
}

func TestWriteAtSparseGrowth(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("/sparse")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("tail"), 100); err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	if size != 104 {
		t.Fatalf("size = %d, want 104", size)
	}
	buf := make([]byte, 104)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:100], make([]byte, 100)) {
		t.Fatal("hole was not zero-filled")
	}
	if string(buf[100:]) != "tail" {
		t.Fatalf("tail = %q", buf[100:])
	}
}

func TestWriteAtDoesNotMoveSequentialOffset(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("/f")
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("ZZZ"), 10); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("def")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, _ := ReadFile(fs, "/f")
	want := append([]byte("abcdef"), 0, 0, 0, 0)
	want = append(want, []byte("ZZZ")...)
	// sequential writes produce abcdef at 0..5; ZZZ at 10..12
	if !bytes.Equal(got[:6], []byte("abcdef")) || string(got[10:13]) != "ZZZ" {
		t.Fatalf("content = %q (want abcdef....ZZZ)", got)
	}
	_ = want
}

func TestSeekSemantics(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("/f")
	f.Write([]byte("0123456789"))
	if pos, err := f.Seek(2, io.SeekStart); err != nil || pos != 2 {
		t.Fatalf("seek start: %v %d", err, pos)
	}
	b := make([]byte, 3)
	f.Read(b)
	if string(b) != "234" {
		t.Fatalf("read after seek = %q", b)
	}
	if pos, _ := f.Seek(-1, io.SeekEnd); pos != 9 {
		t.Fatalf("seek end pos = %d", pos)
	}
	if pos, _ := f.Seek(1, io.SeekCurrent); pos != 10 {
		t.Fatalf("seek current pos = %d", pos)
	}
	if _, err := f.Seek(-100, io.SeekStart); err == nil {
		t.Fatal("negative seek should fail")
	}
	if _, err := f.Seek(0, 42); err == nil {
		t.Fatal("bad whence should fail")
	}
}

func TestReadOnlyHandleRejectsWrites(t *testing.T) {
	fs := NewMemFS()
	WriteFile(fs, "/f", []byte("data"))
	f, _ := fs.Open("/f")
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write err = %v", err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("writeat err = %v", err)
	}
	if err := f.Truncate(0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("truncate err = %v", err)
	}
}

func TestClosedHandleFails(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("/f")
	f.Close()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write err = %v", err)
	}
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("read err = %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close err = %v", err)
	}
}

func TestAppendMode(t *testing.T) {
	fs := NewMemFS()
	WriteFile(fs, "/log", []byte("line1\n"))
	f, err := fs.Append("/log")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("line2\n"))
	f.Close()
	got, _ := ReadFile(fs, "/log")
	if string(got) != "line1\nline2\n" {
		t.Fatalf("got %q", got)
	}
	// Append creates missing files.
	f2, err := fs.Append("/fresh")
	if err != nil {
		t.Fatal(err)
	}
	f2.Write([]byte("x"))
	f2.Close()
	if !Exists(fs, "/fresh") {
		t.Fatal("append did not create file")
	}
}

func TestRemoveSemantics(t *testing.T) {
	fs := NewMemFS()
	fs.MkdirAll("/d/sub")
	WriteFile(fs, "/d/sub/f", []byte("x"))
	if err := fs.Remove("/d"); !errors.Is(err, ErrDirNotEmpty) {
		t.Fatalf("remove non-empty err = %v", err)
	}
	if err := fs.Remove("/d/sub/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("remove missing err = %v", err)
	}
}

func TestRemoveAll(t *testing.T) {
	fs := NewMemFS()
	fs.MkdirAll("/d/a/b")
	WriteFile(fs, "/d/a/b/f1", []byte("1"))
	WriteFile(fs, "/d/f2", []byte("2"))
	WriteFile(fs, "/dz", []byte("sibling, must survive"))
	if err := fs.RemoveAll("/d"); err != nil {
		t.Fatal(err)
	}
	if Exists(fs, "/d") || Exists(fs, "/d/f2") {
		t.Fatal("RemoveAll left entries")
	}
	if !Exists(fs, "/dz") {
		t.Fatal("RemoveAll deleted prefix-sharing sibling /dz")
	}
	if err := fs.RemoveAll("/never-existed"); err != nil {
		t.Fatalf("RemoveAll of absent path: %v", err)
	}
}

func TestRenameFileAndDir(t *testing.T) {
	fs := NewMemFS()
	WriteFile(fs, "/old", []byte("content"))
	if err := fs.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if Exists(fs, "/old") {
		t.Fatal("old name still exists")
	}
	got, _ := ReadFile(fs, "/new")
	if string(got) != "content" {
		t.Fatalf("content = %q", got)
	}

	fs.MkdirAll("/dir/sub")
	WriteFile(fs, "/dir/sub/f", []byte("deep"))
	if err := fs.Rename("/dir", "/moved"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fs, "/moved/sub/f")
	if err != nil || string(got) != "deep" {
		t.Fatalf("deep rename: %v %q", err, got)
	}
	if err := fs.Rename("/missing", "/x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("rename missing err = %v", err)
	}
}

func TestReadDirSortedAndShallow(t *testing.T) {
	fs := NewMemFS()
	fs.MkdirAll("/p/deep")
	WriteFile(fs, "/p/b", []byte("1"))
	WriteFile(fs, "/p/a", []byte("22"))
	WriteFile(fs, "/p/deep/hidden", []byte("x"))
	infos, err := fs.ReadDir("/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("got %d entries", len(infos))
	}
	if infos[0].Name != "a" || infos[1].Name != "b" || infos[2].Name != "deep" {
		t.Fatalf("order: %+v", infos)
	}
	if infos[1].Size != 1 || infos[0].Size != 2 {
		t.Fatalf("sizes: %+v", infos)
	}
	if !infos[2].IsDir {
		t.Fatal("deep should be a dir")
	}
}

func TestMknodAndChmod(t *testing.T) {
	fs := NewMemFS()
	if err := fs.Mknod("/dev0", 0o600, 42); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mknod("/dev0", 0o600, 42); !errors.Is(err, ErrExist) {
		t.Fatalf("dup mknod err = %v", err)
	}
	info, _ := fs.Stat("/dev0")
	if info.Mode != 0o600 {
		t.Fatalf("mode = %o", info.Mode)
	}
	if err := fs.Chmod("/dev0", 0o444); err != nil {
		t.Fatal(err)
	}
	info, _ = fs.Stat("/dev0")
	if info.Mode != 0o444 {
		t.Fatalf("mode after chmod = %o", info.Mode)
	}
	if err := fs.Chmod("/missing", 0o444); !errors.Is(err, ErrNotExist) {
		t.Fatalf("chmod missing err = %v", err)
	}
}

func TestTruncatePath(t *testing.T) {
	fs := NewMemFS()
	WriteFile(fs, "/f", []byte("0123456789"))
	if err := fs.Truncate("/f", 4); err != nil {
		t.Fatal(err)
	}
	got, _ := ReadFile(fs, "/f")
	if string(got) != "0123" {
		t.Fatalf("got %q", got)
	}
	if err := fs.Truncate("/f", 8); err != nil {
		t.Fatal(err)
	}
	got, _ = ReadFile(fs, "/f")
	if !bytes.Equal(got, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
		t.Fatalf("grow: %q", got)
	}
	if err := fs.Truncate("/f", -1); err == nil {
		t.Fatal("negative truncate should fail")
	}
}

func TestWalkVisitsAllFiles(t *testing.T) {
	fs := NewMemFS()
	fs.MkdirAll("/a/b")
	WriteFile(fs, "/a/1", []byte("x"))
	WriteFile(fs, "/a/b/2", []byte("y"))
	WriteFile(fs, "/top", []byte("z"))
	var seen []string
	err := Walk(fs, "/", func(p string, info FileInfo) error {
		seen = append(seen, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("walk saw %v", seen)
	}
}

func TestConcurrentWriters(t *testing.T) {
	fs := NewMemFS()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := "/file" + string(rune('a'+id))
			for i := 0; i < 100; i++ {
				if err := WriteFile(fs, name, bytes.Repeat([]byte{byte(id)}, 128)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		got, err := ReadFile(fs, "/file"+string(rune('a'+w)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 128 || got[0] != byte(w) {
			t.Fatalf("worker %d content corrupted", w)
		}
	}
}

func TestConcurrentHandlesSameFile(t *testing.T) {
	fs := NewMemFS()
	WriteFile(fs, "/shared", make([]byte, 4096))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			f, err := fs.Append("/shared")
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			for i := 0; i < 50; i++ {
				chunk := bytes.Repeat([]byte{byte(id + 1)}, 512)
				if _, err := f.WriteAt(chunk, int64(id)*512); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, _ := ReadFile(fs, "/shared")
	for w := 0; w < 8; w++ {
		seg := got[w*512 : (w+1)*512]
		for _, b := range seg {
			if b != byte(w+1) {
				t.Fatalf("segment %d corrupted: %d", w, b)
			}
		}
	}
}

// Property: read-after-write returns exactly what was written, for random
// offsets and payloads.
func TestQuickReadAfterWrite(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		fs := NewMemFS()
		h, err := fs.Create("/q")
		if err != nil {
			return false
		}
		type write struct {
			off  int64
			data []byte
		}
		var writes []write
		for i := 0; i < 10; i++ {
			n := r.Intn(256) + 1
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(r.Uint64())
			}
			off := int64(r.Intn(1024))
			if _, err := h.WriteAt(data, off); err != nil {
				return false
			}
			writes = append(writes, write{off, data})
		}
		// Replay writes onto a plain buffer and compare.
		var model []byte
		for _, w := range writes {
			if grow := w.off + int64(len(w.data)) - int64(len(model)); grow > 0 {
				model = append(model, make([]byte, grow)...)
			}
			copy(model[w.off:], w.data)
		}
		got, err := ReadFile(fs, "/q")
		return err == nil && bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReadAtPastEOF(t *testing.T) {
	fs := NewMemFS()
	WriteFile(fs, "/f", []byte("abc"))
	f, _ := fs.Open("/f")
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 1)
	if n != 2 || err != io.EOF {
		t.Fatalf("short read n=%d err=%v", n, err)
	}
	if _, err := f.ReadAt(buf, 99); err != io.EOF {
		t.Fatalf("past-eof err = %v", err)
	}
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset should fail")
	}
}

// TestMemFileCloseExcludesInFlightIO pins the close barrier: Close holds
// the handle's write lock, so once it returns no operation that started
// before it is still touching the node and no later one can succeed. The
// old implementation checked closed, released the handle lock, and then
// performed the I/O — a straggler WriteAt could land on the node after
// Close returned. The test closes mid-hammer and then asserts the file
// stays in the state the closer left it in.
func TestMemFileCloseExcludesInFlightIO(t *testing.T) {
	fs := NewMemFS()
	for iter := 0; iter < 300; iter++ {
		f, err := fs.Create("/f")
		if err != nil {
			t.Fatal(err)
		}
		started := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			first := true
			for {
				if _, err := f.WriteAt([]byte{'x'}, 0); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("writer error: %v", err)
					}
					return
				}
				if first {
					close(started)
					first = false
				}
			}
		}()
		<-started
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		// After Close returns, no write through f may land anymore: reset
		// the content through the FS and it must stay reset.
		if err := fs.Truncate("/f", 0); err != nil {
			t.Fatal(err)
		}
		if err := fs.Truncate("/f", 1); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(fs, "/f")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != 0 {
			t.Fatalf("iter %d: write landed after Close returned: %q", iter, got)
		}
		<-done
		// Operations started after Close fail.
		if _, err := f.WriteAt([]byte{'x'}, 0); !errors.Is(err, ErrClosed) {
			t.Fatalf("WriteAt after close: %v", err)
		}
		if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
			t.Fatalf("ReadAt after close: %v", err)
		}
		if _, err := f.Size(); !errors.Is(err, ErrClosed) {
			t.Fatalf("Size after close: %v", err)
		}
		if err := f.Truncate(0); !errors.Is(err, ErrClosed) {
			t.Fatalf("Truncate after close: %v", err)
		}
	}
}

// refFile mirrors a MemFS file as one flat byte slice; the extent-backed
// node must agree with it after any operation sequence.
type refFile struct{ data []byte }

func (r *refFile) writeAt(p []byte, off int64) {
	if end := off + int64(len(p)); end > int64(len(r.data)) {
		r.data = append(r.data, make([]byte, end-int64(len(r.data)))...)
	}
	copy(r.data[off:], p)
}

func (r *refFile) truncate(size int64) {
	if size <= int64(len(r.data)) {
		r.data = r.data[:size]
		return
	}
	r.data = append(r.data, make([]byte, size-int64(len(r.data)))...)
}

// TestMemFSExtentModel drives the block-table storage through a long
// deterministic random sequence of writes, truncates, and clones, checking
// full content equality against a flat-slice reference model after every
// step. Offsets and lengths are drawn around the BlockSize boundaries so
// partial blocks, spanning writes, sparse holes, and shrink-then-grow
// sequences (where stale block bytes must read back as zeros) all occur.
func TestMemFSExtentModel(t *testing.T) {
	rng := stats.NewRNG(7)
	fs := NewMemFS()
	ref := &refFile{}
	if _, err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	var clones []*MemFS
	var cloneWant [][]byte

	check := func(step int, fsys FS, want []byte, who string) {
		got, err := ReadFile(fsys, "/f")
		if err != nil {
			t.Fatalf("step %d: read %s: %v", step, who, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("step %d: %s diverged from model: len %d vs %d", step, who, len(got), len(want))
		}
	}

	maxOff := int64(3*BlockSize + BlockSize/2)
	for step := 0; step < 400; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // write
			off := int64(rng.Intn(int(maxOff)))
			n := rng.Intn(BlockSize + 17)
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(step + i)
			}
			f, err := fs.Append("/f")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(buf, off); err != nil {
				t.Fatal(err)
			}
			f.Close()
			ref.writeAt(buf, off)
		case 6, 7: // truncate (both directions)
			size := int64(rng.Intn(int(maxOff)))
			if err := fs.Truncate("/f", size); err != nil {
				t.Fatal(err)
			}
			ref.truncate(size)
		case 8: // clone; the snapshot must stay frozen from here on
			clones = append(clones, fs.Clone())
			cloneWant = append(cloneWant, append([]byte(nil), ref.data...))
		case 9: // write through a clone; the original must not see it
			if len(clones) == 0 {
				continue
			}
			i := rng.Intn(len(clones))
			c := clones[i]
			off := int64(rng.Intn(int(maxOff)))
			buf := []byte{byte(step), byte(step + 1)}
			f, err := c.Append("/f")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(buf, off); err != nil {
				t.Fatal(err)
			}
			f.Close()
			// The clone diverged; retire it from the frozen set.
			clones[i] = clones[len(clones)-1]
			clones = clones[:len(clones)-1]
			cloneWant[i] = cloneWant[len(cloneWant)-1]
			cloneWant = cloneWant[:len(cloneWant)-1]
		}
		check(step, fs, ref.data, "original")
		sz, err := fs.Stat("/f")
		if err != nil {
			t.Fatal(err)
		}
		if sz.Size != int64(len(ref.data)) {
			t.Fatalf("step %d: Stat size %d, model %d", step, sz.Size, len(ref.data))
		}
		for i, c := range clones {
			check(step, c, cloneWant[i], "clone")
		}
	}
}

// TestMemFSTruncateStaleBlockBytes pins the shrink-then-grow contract per
// extent: bytes between the old and new EOF must read as zeros, both when
// the tail block is privately owned and when it is sealed by a clone.
func TestMemFSTruncateStaleBlockBytes(t *testing.T) {
	for _, sealed := range []bool{false, true} {
		name := map[bool]string{false: "owned", true: "sealed"}[sealed]
		t.Run(name, func(t *testing.T) {
			fs := NewMemFS()
			full := bytes.Repeat([]byte{0xAA}, 2*BlockSize+100)
			if err := WriteFile(fs, "/f", full); err != nil {
				t.Fatal(err)
			}
			if sealed {
				fs.Clone() // seal every block of /f
			}
			if err := fs.Truncate("/f", int64(BlockSize+10)); err != nil {
				t.Fatal(err)
			}
			if err := fs.Truncate("/f", int64(2*BlockSize)); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFile(fs, "/f")
			if err != nil {
				t.Fatal(err)
			}
			want := append(bytes.Repeat([]byte{0xAA}, BlockSize+10), make([]byte, BlockSize-10)...)
			if !bytes.Equal(got, want) {
				t.Fatal("stale block bytes resurfaced after shrink-then-grow")
			}
		})
	}
}

// TestMemFSSparseHoleReadsZero: writing far past EOF materializes nothing
// in between, and the hole reads back as zeros.
func TestMemFSSparseHoleReadsZero(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := int64(5*BlockSize + 3)
	if _, err := f.WriteAt([]byte("tail"), off); err != nil {
		t.Fatal(err)
	}
	sz, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if want := off + 4; sz != want {
		t.Fatalf("size %d, want %d", sz, want)
	}
	got, err := ReadFile(fs, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:off], make([]byte, off)) {
		t.Fatal("hole is not zero")
	}
	if string(got[off:]) != "tail" {
		t.Fatalf("tail content %q", got[off:])
	}
	// The hole blocks really are unmaterialized nil extents.
	n := fs.nodes["/f"]
	for i := 0; i < 5; i++ {
		if n.blocks[i] != nil {
			t.Fatalf("hole block %d materialized", i)
		}
	}
}
