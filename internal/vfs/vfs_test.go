package vfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"ffis/internal/stats"
)

func TestCleanNormalizes(t *testing.T) {
	cases := map[string]string{
		"":           "/",
		"/":          "/",
		"a":          "/a",
		"/a/b/../c":  "/a/c",
		"//a///b":    "/a/b",
		"a/b/./c":    "/a/b/c",
		"/trailing/": "/trailing",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: read-after-write returns exactly what was written, for random
// offsets and payloads.
func TestQuickReadAfterWrite(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		fs := NewMemFS()
		h, err := fs.Create("/q")
		if err != nil {
			return false
		}
		type write struct {
			off  int64
			data []byte
		}
		var writes []write
		for i := 0; i < 10; i++ {
			n := r.Intn(256) + 1
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(r.Uint64())
			}
			off := int64(r.Intn(1024))
			if _, err := h.WriteAt(data, off); err != nil {
				return false
			}
			writes = append(writes, write{off, data})
		}
		// Replay writes onto a plain buffer and compare.
		var model []byte
		for _, w := range writes {
			if grow := w.off + int64(len(w.data)) - int64(len(model)); grow > 0 {
				model = append(model, make([]byte, grow)...)
			}
			copy(model[w.off:], w.data)
		}
		got, err := ReadFile(fs, "/q")
		return err == nil && bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMemFileCloseExcludesInFlightIO pins the close barrier: Close holds
// the handle's write lock, so once it returns no operation that started
// before it is still touching the node and no later one can succeed. The
// old implementation checked closed, released the handle lock, and then
// performed the I/O — a straggler WriteAt could land on the node after
// Close returned. The test closes mid-hammer and then asserts the file
// stays in the state the closer left it in.
func TestMemFileCloseExcludesInFlightIO(t *testing.T) {
	fs := NewMemFS()
	for iter := 0; iter < 300; iter++ {
		f, err := fs.Create("/f")
		if err != nil {
			t.Fatal(err)
		}
		started := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			first := true
			for {
				if _, err := f.WriteAt([]byte{'x'}, 0); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("writer error: %v", err)
					}
					return
				}
				if first {
					close(started)
					first = false
				}
			}
		}()
		<-started
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		// After Close returns, no write through f may land anymore: reset
		// the content through the FS and it must stay reset.
		if err := fs.Truncate("/f", 0); err != nil {
			t.Fatal(err)
		}
		if err := fs.Truncate("/f", 1); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(fs, "/f")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != 0 {
			t.Fatalf("iter %d: write landed after Close returned: %q", iter, got)
		}
		<-done
		// Operations started after Close fail.
		if _, err := f.WriteAt([]byte{'x'}, 0); !errors.Is(err, ErrClosed) {
			t.Fatalf("WriteAt after close: %v", err)
		}
		if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
			t.Fatalf("ReadAt after close: %v", err)
		}
		if _, err := f.Size(); !errors.Is(err, ErrClosed) {
			t.Fatalf("Size after close: %v", err)
		}
		if err := f.Truncate(0); !errors.Is(err, ErrClosed) {
			t.Fatalf("Truncate after close: %v", err)
		}
	}
}

// refFile mirrors a MemFS file as one flat byte slice; the extent-backed
// node must agree with it after any operation sequence.
type refFile struct{ data []byte }

func (r *refFile) writeAt(p []byte, off int64) {
	if end := off + int64(len(p)); end > int64(len(r.data)) {
		r.data = append(r.data, make([]byte, end-int64(len(r.data)))...)
	}
	copy(r.data[off:], p)
}

func (r *refFile) truncate(size int64) {
	if size <= int64(len(r.data)) {
		r.data = r.data[:size]
		return
	}
	r.data = append(r.data, make([]byte, size-int64(len(r.data)))...)
}

// TestMemFSExtentModel drives the block-table storage through a long
// deterministic random sequence of writes, truncates, and clones, checking
// full content equality against a flat-slice reference model after every
// step. Offsets and lengths are drawn around the BlockSize boundaries so
// partial blocks, spanning writes, sparse holes, and shrink-then-grow
// sequences (where stale block bytes must read back as zeros) all occur.
func TestMemFSExtentModel(t *testing.T) {
	rng := stats.NewRNG(7)
	fs := NewMemFS()
	ref := &refFile{}
	if _, err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	var clones []*MemFS
	var cloneWant [][]byte

	check := func(step int, fsys FS, want []byte, who string) {
		got, err := ReadFile(fsys, "/f")
		if err != nil {
			t.Fatalf("step %d: read %s: %v", step, who, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("step %d: %s diverged from model: len %d vs %d", step, who, len(got), len(want))
		}
	}

	maxOff := int64(3*BlockSize + BlockSize/2)
	for step := 0; step < 400; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // write
			off := int64(rng.Intn(int(maxOff)))
			n := rng.Intn(BlockSize + 17)
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(step + i)
			}
			f, err := fs.Append("/f")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(buf, off); err != nil {
				t.Fatal(err)
			}
			f.Close()
			ref.writeAt(buf, off)
		case 6, 7: // truncate (both directions)
			size := int64(rng.Intn(int(maxOff)))
			if err := fs.Truncate("/f", size); err != nil {
				t.Fatal(err)
			}
			ref.truncate(size)
		case 8: // clone; the snapshot must stay frozen from here on
			clones = append(clones, fs.Clone())
			cloneWant = append(cloneWant, append([]byte(nil), ref.data...))
		case 9: // write through a clone; the original must not see it
			if len(clones) == 0 {
				continue
			}
			i := rng.Intn(len(clones))
			c := clones[i]
			off := int64(rng.Intn(int(maxOff)))
			buf := []byte{byte(step), byte(step + 1)}
			f, err := c.Append("/f")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(buf, off); err != nil {
				t.Fatal(err)
			}
			f.Close()
			// The clone diverged; retire it from the frozen set.
			clones[i] = clones[len(clones)-1]
			clones = clones[:len(clones)-1]
			cloneWant[i] = cloneWant[len(cloneWant)-1]
			cloneWant = cloneWant[:len(cloneWant)-1]
		}
		check(step, fs, ref.data, "original")
		sz, err := fs.Stat("/f")
		if err != nil {
			t.Fatal(err)
		}
		if sz.Size != int64(len(ref.data)) {
			t.Fatalf("step %d: Stat size %d, model %d", step, sz.Size, len(ref.data))
		}
		for i, c := range clones {
			check(step, c, cloneWant[i], "clone")
		}
	}
}

// TestMemFSTruncateStaleBlockBytes pins the shrink-then-grow contract per
// extent: bytes between the old and new EOF must read as zeros, both when
// the tail block is privately owned and when it is sealed by a clone.
func TestMemFSTruncateStaleBlockBytes(t *testing.T) {
	for _, sealed := range []bool{false, true} {
		name := map[bool]string{false: "owned", true: "sealed"}[sealed]
		t.Run(name, func(t *testing.T) {
			fs := NewMemFS()
			full := bytes.Repeat([]byte{0xAA}, 2*BlockSize+100)
			if err := WriteFile(fs, "/f", full); err != nil {
				t.Fatal(err)
			}
			if sealed {
				fs.Clone() // seal every block of /f
			}
			if err := fs.Truncate("/f", int64(BlockSize+10)); err != nil {
				t.Fatal(err)
			}
			if err := fs.Truncate("/f", int64(2*BlockSize)); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFile(fs, "/f")
			if err != nil {
				t.Fatal(err)
			}
			want := append(bytes.Repeat([]byte{0xAA}, BlockSize+10), make([]byte, BlockSize-10)...)
			if !bytes.Equal(got, want) {
				t.Fatal("stale block bytes resurfaced after shrink-then-grow")
			}
		})
	}
}

// TestMemFSSparseHoleReadsZero: writing far past EOF materializes nothing
// in between, and the hole reads back as zeros.
func TestMemFSSparseHoleReadsZero(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := int64(5*BlockSize + 3)
	if _, err := f.WriteAt([]byte("tail"), off); err != nil {
		t.Fatal(err)
	}
	sz, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if want := off + 4; sz != want {
		t.Fatalf("size %d, want %d", sz, want)
	}
	got, err := ReadFile(fs, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:off], make([]byte, off)) {
		t.Fatal("hole is not zero")
	}
	if string(got[off:]) != "tail" {
		t.Fatalf("tail content %q", got[off:])
	}
	// The hole blocks really are unmaterialized nil extents.
	n := fs.nodes["/f"]
	for i := 0; i < 5; i++ {
		if n.blocks[i] != nil {
			t.Fatalf("hole block %d materialized", i)
		}
	}
}
