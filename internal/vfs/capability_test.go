package vfs

import (
	"errors"
	"testing"
)

// TestBackendCapabilities pins the declared capability profile of every
// backend behind the mount table — the replacement for duck-typed interface
// probing. OSFS is the case that motivates declaration over inference: it
// implements Cloner (to refuse explicitly) yet must not advertise CapClone.
func TestBackendCapabilities(t *testing.T) {
	osfs := NewOSFS(t.TempDir())
	cases := []struct {
		name string
		fs   FS
		want Capability
	}{
		{"MemFS", NewMemFS(), CapClone | CapByteAddressable},
		{"OSFS", osfs, CapByteAddressable},
		{"ObjectFS", NewObjectFS(), CapClone},
		{"LatencyFS(MemFS)", NewLatencyFS(NewMemFS(), BurstBufferModel),
			CapClone | CapByteAddressable | CapLatencyModeled},
		{"LatencyFS(OSFS)", NewLatencyFS(osfs, ParallelFSModel),
			CapByteAddressable | CapLatencyModeled},
	}
	for _, tc := range cases {
		if got := CapabilitiesOf(tc.fs); got != tc.want {
			t.Errorf("%s capabilities = %v; want %v", tc.name, got, tc.want)
		}
	}
}

// TestMountFSCapabilities: the mount table's profile is the intersection of
// its mounts' clone/byte-addressable bits (the world only has a capability
// if every backend does) and the union of the latency bit (one modeled
// mount makes the world's clock meaningful).
func TestMountFSCapabilities(t *testing.T) {
	m := NewMountFS(NewMemFS())
	if got, want := m.Capabilities(), CapClone|CapByteAddressable; got != want {
		t.Fatalf("mem-only table = %v; want %v", got, want)
	}
	if err := m.Mount("/lat", NewLatencyFS(NewMemFS(), BurstBufferModel)); err != nil {
		t.Fatal(err)
	}
	if got, want := m.Capabilities(), CapClone|CapByteAddressable|CapLatencyModeled; got != want {
		t.Fatalf("with latency mount = %v; want %v", got, want)
	}
	if err := m.Mount("/obj", NewObjectFS()); err != nil {
		t.Fatal(err)
	}
	// ObjectFS is not byte-addressable, so the world no longer is.
	if got, want := m.Capabilities(), CapClone|CapLatencyModeled; got != want {
		t.Fatalf("with object mount = %v; want %v", got, want)
	}
	if err := m.Mount("/host", NewOSFS(t.TempDir())); err != nil {
		t.Fatal(err)
	}
	// OSFS cannot clone, so neither can the world.
	if got, want := m.Capabilities(), CapLatencyModeled; got != want {
		t.Fatalf("with os mount = %v; want %v", got, want)
	}
}

// TestCapabilitiesOfInfersLegacyContract: a backend that predates the
// capability model (no CapabilityReporter) gets the historical duck-typed
// reading — byte-addressable, clonable iff it implements Cloner.
func TestCapabilitiesOfInfersLegacyContract(t *testing.T) {
	if got, want := CapabilitiesOf(legacyFS{}), CapByteAddressable; got != want {
		t.Fatalf("legacy non-cloner = %v; want %v", got, want)
	}
	if got, want := CapabilitiesOf(legacyClonerFS{}), CapByteAddressable|CapClone; got != want {
		t.Fatalf("legacy cloner = %v; want %v", got, want)
	}
}

// legacyFS is a minimal FS with no capability declaration.
type legacyFS struct{ FS }

// legacyClonerFS additionally implements Cloner.
type legacyClonerFS struct{ FS }

func (legacyClonerFS) CloneFS() (FS, error) { return legacyClonerFS{}, nil }

func TestCapabilityString(t *testing.T) {
	cases := map[Capability]string{
		0:                                      "none",
		CapClone:                               "clone",
		CapClone | CapByteAddressable:          "clone+byte-addressable",
		CapByteAddressable | CapLatencyModeled: "byte-addressable+latency-modeled",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q; want %q", uint32(c), got, want)
		}
	}
}

// TestOSFSCloneRefusesExplicitly: OSFS implements Cloner only to return the
// sentinel — callers probing for snapshot support get a typed refusal
// instead of a failed type assertion.
func TestOSFSCloneRefusesExplicitly(t *testing.T) {
	fs := NewOSFS(t.TempDir())
	cloned, err := fs.CloneFS()
	if cloned != nil || !errors.Is(err, ErrNotClonable) {
		t.Fatalf("CloneFS = %v, %v; want nil, ErrNotClonable", cloned, err)
	}
}

// TestMountFSCloneErrorPath: cloning a world with a non-clonable mount
// fails with ErrNotClonable wrapped in a PathError naming the offending
// mount point — the error path the snapshot engine's fresh-world fallback
// keys on.
func TestMountFSCloneErrorPath(t *testing.T) {
	m := NewMountFS(NewMemFS())
	if err := m.Mount("/ok", NewMemFS()); err != nil {
		t.Fatal(err)
	}
	if err := m.Mount("/host", NewOSFS(t.TempDir())); err != nil {
		t.Fatal(err)
	}
	_, err := m.Clone()
	if !errors.Is(err, ErrNotClonable) {
		t.Fatalf("Clone err = %v; want ErrNotClonable", err)
	}
	var pe *PathError
	if !errors.As(err, &pe) || pe.Path != "/host" {
		t.Fatalf("Clone err = %v; want PathError naming /host", err)
	}
}
