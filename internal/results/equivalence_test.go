package results

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/vfs"
)

// The seed-pinned equivalence suite: an interrupted-then-resumed grid and a
// sharded-then-merged grid must both produce record files byte-identical to
// an uninterrupted single-process run — at worker widths 1 and 8 — because
// every run's RNG stream derives purely from (seed, run index).

const (
	eqSeed = 42
	eqRuns = 30
)

// eqWorkload is a small deterministic workload with a spread of outcomes:
// it writes a known pattern block by block and classifies by comparing
// against the golden bytes, detecting truncation explicitly.
func eqWorkload() core.Workload {
	golden := make([]byte, 4096)
	for i := range golden {
		golden[i] = byte(i * 31)
	}
	return core.Workload{
		Name:  "eq",
		Setup: func(fs vfs.FS) error { return fs.MkdirAll("/out") },
		Run: func(fs vfs.FS) error {
			f, err := fs.Create("/out/data.bin")
			if err != nil {
				return err
			}
			defer f.Close()
			for off := 0; off < len(golden); off += 512 {
				if _, err := f.Write(golden[off : off+512]); err != nil {
					return err
				}
			}
			return nil
		},
		Classify: func(fs vfs.FS, runErr error) classify.Outcome {
			if runErr != nil {
				return classify.Crash
			}
			got, err := vfs.ReadFile(fs, "/out/data.bin")
			if err != nil {
				return classify.Crash
			}
			if bytes.Equal(got, golden) {
				return classify.Benign
			}
			if len(got) != len(golden) {
				return classify.Detected
			}
			return classify.SDC
		},
	}
}

func eqSpecs() []core.CampaignSpec {
	var specs []core.CampaignSpec
	for _, model := range []string{"bit-flip", "dropped-write"} {
		m := core.MustModel(model)
		specs = append(specs, core.CampaignSpec{
			Key:      "eq/" + m.Short(),
			Workload: eqWorkload(),
			Config: core.CampaignConfig{
				Fault: core.Config{Model: m},
				Runs:  eqRuns,
				Seed:  eqSeed,
			},
		})
	}
	return specs
}

// runGridInto executes the eq grid into a fresh store at dir.
func runGridInto(t *testing.T, dir string, workers int, shard Shard) []core.GridResult {
	t.Helper()
	st, err := Create(dir, Manifest{Seed: eqSeed, Runs: eqRuns, Shard: shard.String()})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := RunGrid(&core.Engine{Jobs: workers}, st, shard, eqSpecs())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range grid {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Spec.Key, r.Err)
		}
	}
	return grid
}

// recordBytes reads the finalized record file of a spec key.
func recordBytes(t *testing.T, dir, key string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, recordsDir, encodeKey(key)+finalExt))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func assertStoresIdentical(t *testing.T, label, wantDir, gotDir string) {
	t.Helper()
	for _, spec := range eqSpecs() {
		want := recordBytes(t, wantDir, spec.Key)
		got := recordBytes(t, gotDir, spec.Key)
		if !bytes.Equal(want, got) {
			t.Fatalf("%s: spec %s: record files differ (%d vs %d bytes)", label, spec.Key, len(want), len(got))
		}
	}
}

func assertTalliesMatch(t *testing.T, label string, want, got []core.GridResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d grid results", label, len(want), len(got))
	}
	for i := range want {
		if want[i].Result.Tally != got[i].Result.Tally {
			t.Fatalf("%s: spec %s tally %v, want %v", label, got[i].Spec.Key,
				got[i].Result.Tally, want[i].Result.Tally)
		}
		if want[i].Result.ProfileCount != got[i].Result.ProfileCount {
			t.Fatalf("%s: spec %s profile count diverged", label, got[i].Spec.Key)
		}
	}
}

// TestUninterruptedStoreIsWorkerIndependent proves the store's in-order
// writer makes the persisted bytes independent of scheduling: the same grid
// at pool widths 1 and 8 writes byte-identical files.
func TestUninterruptedStoreIsWorkerIndependent(t *testing.T) {
	d1, d8 := t.TempDir(), t.TempDir()
	g1 := runGridInto(t, d1, 1, Shard{})
	g8 := runGridInto(t, d8, 8, Shard{})
	assertStoresIdentical(t, "workers 1 vs 8", d1, d8)
	assertTalliesMatch(t, "workers 1 vs 8", g1, g8)
}

// TestInterruptedThenResumedGridIsBitIdentical kills a grid roughly halfway
// (the first spec fully unstarted, the second half-persisted with a torn
// final line — the honest crash artifact) and resumes it; the resumed store
// must be byte-identical to an uninterrupted run, at workers 1 and 8.
func TestInterruptedThenResumedGridIsBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 8} {
		ref := t.TempDir()
		refGrid := runGridInto(t, ref, workers, Shard{})

		// Interrupted store: run only the first ~half of each spec's
		// indices through a real engine+sink pass, then abandon without
		// finalizing — exactly what a mid-grid kill leaves behind.
		dir := t.TempDir()
		st, err := Create(dir, Manifest{Seed: eqSeed, Runs: eqRuns})
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range eqSpecs() {
			sink, err := st.SpecSink(spec.Key, eqRuns, Shard{})
			if err != nil {
				t.Fatal(err)
			}
			cfg := spec.Config
			cfg.Workers = workers
			cfg.Sink = sink
			cfg.DiscardRecords = true
			cfg.RunFilter = func(idx int) bool { return idx < eqRuns/2 }
			if _, err := core.Campaign(cfg, spec.Workload); err != nil {
				t.Fatal(err)
			}
			if err := sink.Close(); err != nil { // no Finalize: the "kill"
				t.Fatal(err)
			}
		}
		// Torn final line on one spec: the kill landed mid-write.
		torn := filepath.Join(dir, recordsDir, encodeKey("eq/BF")+partialExt)
		f, err := os.OpenFile(torn, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"index":15,"target":9,"outc`); err != nil {
			t.Fatal(err)
		}
		f.Close()

		// Resume and compare.
		st2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		grid, err := RunGrid(&core.Engine{Jobs: workers}, st2, Shard{}, eqSpecs())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range grid {
			if r.Err != nil {
				t.Fatalf("workers %d: resume %s: %v", workers, r.Spec.Key, r.Err)
			}
		}
		assertStoresIdentical(t, "resumed", ref, dir)
		assertTalliesMatch(t, "resumed", refGrid, grid)
	}
}

// TestShardedThenMergedGridIsBitIdentical splits the grid into -shard 0/2
// and -shard 1/2 stores and merges them; the merged store must be
// byte-identical to the uninterrupted single-process run, at workers 1
// and 8.
func TestShardedThenMergedGridIsBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 8} {
		ref := t.TempDir()
		refGrid := runGridInto(t, ref, workers, Shard{})

		s0, s1 := t.TempDir(), t.TempDir()
		runGridInto(t, s0, workers, Shard{Index: 0, Count: 2})
		runGridInto(t, s1, workers, Shard{Index: 1, Count: 2})

		merged := filepath.Join(t.TempDir(), "merged")
		if err := Merge(merged, s0, s1); err != nil {
			t.Fatal(err)
		}
		assertStoresIdentical(t, "merged", ref, merged)

		// The merged store reconstructs the same tallies the
		// uninterrupted grid reported.
		mst, err := Open(merged)
		if err != nil {
			t.Fatal(err)
		}
		for i, spec := range eqSpecs() {
			res, err := mst.Result(spec.Key)
			if err != nil {
				t.Fatal(err)
			}
			if res.Tally != refGrid[i].Result.Tally {
				t.Fatalf("workers %d: merged %s tally %v, want %v", workers, spec.Key,
					res.Tally, refGrid[i].Result.Tally)
			}
			if got := len(res.Records); got != eqRuns {
				t.Fatalf("merged %s holds %d records, want %d", spec.Key, got, eqRuns)
			}
		}
	}
}

// TestResumeOfCompleteStoreRunsNothing proves finalized specs load from
// disk: resuming a finished grid must not execute a single application run.
func TestResumeOfCompleteStoreRunsNothing(t *testing.T) {
	dir := t.TempDir()
	first := runGridInto(t, dir, 4, Shard{})

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	specs := eqSpecs()
	for i := range specs {
		specs[i].Workload.Run = func(vfs.FS) error {
			t.Fatal("resume of a finalized spec re-ran the workload")
			return nil
		}
	}
	grid, err := RunGrid(&core.Engine{Jobs: 4}, st, Shard{}, specs)
	if err != nil {
		t.Fatal(err)
	}
	assertTalliesMatch(t, "finalized reload", first, grid)
	for _, r := range grid {
		if len(r.Result.Records) != eqRuns {
			t.Fatalf("%s reloaded %d records, want %d", r.Spec.Key, len(r.Result.Records), eqRuns)
		}
	}
}

// TestResumeRejectsShardDrift: a store written under one shard assignment
// must refuse to resume under another — the persisted indices would no
// longer be a prefix of the new execution sequence.
func TestResumeRejectsShardDrift(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Manifest{Seed: eqSeed, Runs: eqRuns, Shard: "1/2"})
	if err != nil {
		t.Fatal(err)
	}
	spec := eqSpecs()[0]
	sink, err := st.SpecSink(spec.Key, eqRuns, Shard{Index: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.Config
	cfg.Sink = sink
	cfg.RunFilter = sink.Include
	if _, err := core.Campaign(cfg, spec.Workload); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.SpecSink(spec.Key, eqRuns, Shard{}); err == nil {
		t.Fatal("resuming a 1/2-shard store as the whole grid must be rejected")
	}
}
