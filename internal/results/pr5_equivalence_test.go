package results

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ffis/internal/core"
	"ffis/internal/experiments"
)

// The PR 5 store format is pinned byte for byte: with adaptive stopping
// disabled, a campaign grid must produce record files identical to the ones
// the pre-adaptive, single-shot-injector era wrote. The goldens below were
// captured on the tree before Signature.Shots, CampaignConfig.Stop, and the
// correlated model family existed, so any drift here means the multi-shot
// or adaptive machinery leaked into the legacy path — a serialization field
// that no longer omits its zero value, a claim-order change, an extra RNG
// draw. Regenerate only after an intentional format change:
//
//	UPDATE_GOLDEN=1 go test -run TestLegacyStoreBytesPinned ./internal/results/
const (
	pr5Runs = 20
	pr5Seed = 20260808
)

// pr5Models is the legacy vocabulary the goldens cover: the Table I write
// trio plus the PR 3 read family.
var pr5Models = []string{
	"bit-flip", "shorn-write", "dropped-write",
	"read-bit-flip", "unreadable-sector", "latent-corruption",
}

func pr5Grid(t *testing.T, st *Store, workers int) {
	t.Helper()
	o := experiments.Options{Runs: pr5Runs, Seed: pr5Seed}
	var specs []core.CampaignSpec
	for _, name := range pr5Models {
		w, err := experiments.NewPipelineWorkload("MT2", o)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, core.CampaignSpec{
			Key:      "MT2/" + core.MustModel(name).Short(),
			WorldKey: "MT2",
			Workload: w,
			Config: core.CampaignConfig{
				Fault: core.Config{Model: core.MustModel(name)},
				Runs:  pr5Runs,
				Seed:  pr5Seed,
			},
		})
	}
	e := &core.Engine{Jobs: workers}
	grid, err := RunGrid(e, st, Shard{}, specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range grid {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Spec.Key, r.Err)
		}
	}
}

func TestLegacyStoreBytesPinned(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Manifest{Seed: pr5Seed, Runs: pr5Runs})
	if err != nil {
		t.Fatal(err)
	}
	pr5Grid(t, st, 4)

	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, name := range pr5Models {
		short := core.MustModel(name).Short()
		key := "MT2/" + short
		got, err := os.ReadFile(st.finalPath(key))
		if err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join("testdata", "pr5_mt2_"+short+".jsonl.golden")
		if update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("spec %s: record file drifted from the PR 5 byte format (%d vs %d bytes)",
				key, len(got), len(want))
		}
	}
}
