//go:build !unix

package results

// lock is a no-op where advisory file locks are unavailable; keeping
// writers off the same store is the operator's responsibility there.
func (st *Store) lock() (func(), error) {
	return func() {}, nil
}
