package results

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"ffis/internal/core"
	"ffis/internal/experiments"
	"ffis/internal/stats"
)

const (
	adaptiveKey    = "MT2/BF"
	adaptiveBudget = 60
	adaptiveSeed   = 11
)

// adaptiveSpec builds the MT2 bit-flip cell under a stopping rule generous
// enough that it must halt before the budget (the Wilson half-width at the
// n=50 barrier is below 0.2 for every possible rate), keeping the early-stop
// assertions deterministic without pinning the exact stop barrier.
func adaptiveSpec(t *testing.T) core.CampaignSpec {
	t.Helper()
	w, err := experiments.NewPipelineWorkload("MT2", experiments.Options{
		Runs: adaptiveBudget, Seed: adaptiveSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return core.CampaignSpec{
		Key:      adaptiveKey,
		WorldKey: "MT2",
		Workload: w,
		Config: core.CampaignConfig{
			Fault: core.Config{Model: core.MustModel("bit-flip")},
			Runs:  adaptiveBudget,
			Seed:  adaptiveSeed,
			Stop:  &stats.StopRule{TargetHalfWidth: 0.2, MinRuns: 20, CheckEvery: 10},
		},
	}
}

func runAdaptiveCell(t *testing.T, st *Store) core.GridResult {
	t.Helper()
	grid, err := RunGrid(&core.Engine{Jobs: 4}, st, Shard{}, []core.CampaignSpec{adaptiveSpec(t)})
	if err != nil {
		t.Fatal(err)
	}
	if grid[0].Err != nil {
		t.Fatal(grid[0].Err)
	}
	return grid[0]
}

// TestAdaptiveStoreResume is the durability half of the adaptive-stopping
// determinism contract: an adaptive campaign killed mid-stream and resumed
// must reach the same stop index as the uninterrupted run and finalize a
// byte-identical record file, with the stop decision persisted in the
// header where a later process (or a report) can read it back.
func TestAdaptiveStoreResume(t *testing.T) {
	// Uninterrupted reference run.
	refStore, err := Create(t.TempDir(), Manifest{Seed: adaptiveSeed, Runs: adaptiveBudget})
	if err != nil {
		t.Fatal(err)
	}
	ref := runAdaptiveCell(t, refStore)
	stop := ref.Result.StopIndex
	if stop < 20 || stop > 50 {
		t.Fatalf("stop index %d outside the rule's possible range [20, 50]", stop)
	}
	refBytes, err := os.ReadFile(refStore.finalPath(adaptiveKey))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(refBytes), `"stop_index":`) {
		t.Fatal("finalized header does not carry the stop index")
	}

	// The persisted header must restore the full campaign identity: rule,
	// stop index, and exactly StopIndex records.
	data, ok, err := refStore.LoadSpec(adaptiveKey)
	if err != nil || !ok {
		t.Fatalf("LoadSpec: ok=%v err=%v", ok, err)
	}
	if data.Header.StopIndex != stop {
		t.Fatalf("header stop index %d, campaign reported %d", data.Header.StopIndex, stop)
	}
	if data.Header.StopRule == nil || data.Header.StopRule.TargetHalfWidth != 0.2 {
		t.Fatalf("header stop rule %+v, want the campaign's normalized rule", data.Header.StopRule)
	}
	if len(data.Records) != stop {
		t.Fatalf("%d records persisted for stop index %d", len(data.Records), stop)
	}
	res, err := data.CampaignResult()
	if err != nil {
		t.Fatal(err)
	}
	if res.StopIndex != stop {
		t.Fatalf("reconstructed result stop index %d, want %d", res.StopIndex, stop)
	}

	// Interrupted store: header (as the crash left it — no stop index yet)
	// plus a short record prefix and a torn tail.
	dir := t.TempDir()
	st, err := Create(dir, Manifest{Seed: adaptiveSeed, Runs: adaptiveBudget})
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(refBytes, []byte("\n"))
	var h Header
	if err := json.Unmarshal(lines[0], &h); err != nil {
		t.Fatal(err)
	}
	h.StopIndex = 0 // finalize wrote it; the mid-flight partial never has it
	headerLine, err := marshalLine(h)
	if err != nil {
		t.Fatal(err)
	}
	partial := append(headerLine, bytes.Join(lines[1:11], nil)...) // 10 records
	partial = append(partial, []byte(`{"index":10,"target":9,"outc`)...)
	if err := os.WriteFile(st.partialPath(adaptiveKey), partial, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := runAdaptiveCell(t, resumed)
	if got.Result.StopIndex != stop {
		t.Fatalf("resumed stop index %d, uninterrupted run stopped at %d", got.Result.StopIndex, stop)
	}
	gotBytes, err := os.ReadFile(resumed.finalPath(adaptiveKey))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, refBytes) {
		t.Fatalf("resumed adaptive record file differs from the uninterrupted run (%d vs %d bytes)",
			len(gotBytes), len(refBytes))
	}

	// Re-running the grid over the finalized store must take the load-only
	// fast path — which exercises HeaderMatchesSpec on an adaptive header —
	// and reproduce the stop index and tally from disk alone.
	again := runAdaptiveCell(t, resumed)
	if again.Result.StopIndex != stop || again.Result.Tally != ref.Result.Tally {
		t.Fatalf("finalized reload drifted: stop %d tally %v, want stop %d tally %v",
			again.Result.StopIndex, again.Result.Tally, stop, ref.Result.Tally)
	}
}

// TestAdaptiveRejectsShard: a shard never owns a complete run prefix, so an
// adaptive spec under a non-trivial shard must be refused before any cell
// executes.
func TestAdaptiveRejectsShard(t *testing.T) {
	st, err := Create(t.TempDir(), Manifest{Seed: adaptiveSeed, Runs: adaptiveBudget, Shard: "1/2"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunGrid(&core.Engine{Jobs: 2}, st, Shard{Index: 0, Count: 2}, []core.CampaignSpec{adaptiveSpec(t)})
	if err == nil || !strings.Contains(err.Error(), "adaptive") {
		t.Fatalf("err = %v, want adaptive-under-shard refusal", err)
	}
}
