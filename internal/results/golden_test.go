package results

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ffis/internal/core"
	"ffis/internal/experiments"
)

// TestReportGoldenAfterResume is the CI smoke gate for the whole durability
// stack on a real application: a short MT2 bit-flip campaign streams its
// records to a store through the experiments wiring (Options.RunGrid,
// exactly what the CLIs' -out flag installs), the store is "killed" halfway
// (in-order prefix plus a torn final line — the honest crash artifact),
// resumed to completion, and the re-rendered report must match the
// checked-in golden byte for byte — as must the resumed record file against
// the uninterrupted run's.
//
// Regenerate the golden after an intentional behavior change with:
//
//	UPDATE_GOLDEN=1 go test -run TestReportGoldenAfterResume ./internal/results/
func TestReportGoldenAfterResume(t *testing.T) {
	const (
		cell   = "MT2"
		key    = "MT2/BF"
		runs   = 30
		seed   = 7
		golden = "testdata/report_mt2_resume.golden"
	)
	runCell := func(st *Store) core.CampaignResult {
		t.Helper()
		o := experiments.Options{
			Runs: runs, Seed: seed, Jobs: 2,
			RunGrid: func(e *core.Engine, specs []core.CampaignSpec) ([]core.GridResult, error) {
				return RunGrid(e, st, Shard{}, specs)
			},
		}
		res, err := experiments.Fig7Cell(cell, core.MustModel("bit-flip"), o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Uninterrupted reference run.
	ref := t.TempDir()
	refStore, err := Create(ref, Manifest{Seed: seed, Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	runCell(refStore)
	refBytes, err := os.ReadFile(refStore.finalPath(key))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted store: the reference file cut to a prefix of its record
	// lines plus a torn tail, exactly what a kill mid-append leaves.
	dir := t.TempDir()
	st, err := Create(dir, Manifest{Seed: seed, Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(refBytes, []byte("\n"))
	prefix := bytes.Join(lines[:1+runs/2], nil) // header + half the records
	prefix = append(prefix, []byte(`{"index":15,"target":3,"outc`)...)
	if err := os.WriteFile(st.partialPath(key), prefix, 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume to completion and compare everything.
	resumed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	runCell(resumed)
	gotBytes, err := os.ReadFile(resumed.finalPath(key))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, refBytes) {
		t.Fatalf("resumed record file differs from the uninterrupted run (%d vs %d bytes)",
			len(gotBytes), len(refBytes))
	}

	report, err := Report(resumed, "text")
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(report), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated:\n%s", report)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if report != string(want) {
		t.Fatalf("report drifted from golden.\n--- got ---\n%s--- want ---\n%s", report, want)
	}
}
