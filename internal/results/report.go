package results

import (
	"fmt"
	"sort"
	"strings"

	"ffis/internal/classify"
	"ffis/internal/core"
)

// ReportFormats lists the renderings Report understands, in the order the
// CLI help advertises them.
var ReportFormats = []string{"text", "csv", "json", "markdown"}

// Report re-renders a store's persisted results into the paper's Figure 7 /
// Table III presentation without re-running anything: the whole point of
// durable records is that the tables can be regenerated — in a different
// format, after a crash, on another machine — from disk alone. Cells are
// labelled by spec key and appear in manifest (submission) order; format is
// one of ReportFormats ("md" is accepted for "markdown"). Specs with no
// stored records (starved placements, cells a crash caught before their
// first run) are called out in the text and markdown footers rather than
// silently dropped.
func Report(st *Store, format string) (string, error) {
	data, skipped, err := st.Load()
	if err != nil {
		return "", err
	}
	cells := make([]classify.Cell, 0, len(data))
	results := make([]core.CampaignResult, 0, len(data))
	for _, d := range data {
		res, err := d.CampaignResult()
		if err != nil {
			return "", err
		}
		cells = append(cells, classify.Cell{Label: d.Key, Tally: res.Tally})
		// The JSON rows carry the spec key as the workload label, matching
		// the cell labels of every other format (the bare workload name is
		// ambiguous once a grid runs one application under many models and
		// placements).
		res.Workload = d.Key
		results = append(results, res)
	}
	man := st.Manifest()
	title := fmt.Sprintf("Stored campaign results (%d specs, %d runs per cell, seed %d)",
		len(cells), man.Runs, man.Seed)
	if man.Shard != "" {
		title += fmt.Sprintf(", shard %s", man.Shard)
	}

	var b strings.Builder
	switch strings.ToLower(format) {
	case "", "text":
		b.WriteString(classify.TableCI(title, cells))
		simFooter(&b, "", results)
		reportFooter(&b, "", skipped)
	case "csv":
		b.WriteString(classify.CSVCI(cells))
	case "json":
		if err := core.WriteResultsJSON(&b, results); err != nil {
			return "", err
		}
	case "markdown", "md":
		b.WriteString(classify.MarkdownCI(title, cells))
		simFooter(&b, "> ", results)
		reportFooter(&b, "> ", skipped)
	default:
		return "", fmt.Errorf("results: unknown report format %q (want %s)",
			format, strings.Join(ReportFormats, ", "))
	}
	return b.String(), nil
}

// simFooter appends per-spec simulated I/O times to human-readable formats
// when any spec ran on a latency-modeled world. Unmodeled stores (the
// default) emit nothing, keeping legacy report goldens byte-identical.
func simFooter(b *strings.Builder, prefix string, results []core.CampaignResult) {
	var lines []string
	for _, r := range results {
		if r.SimNanos > 0 {
			lines = append(lines, fmt.Sprintf("%s %.3fms", r.Workload,
				float64(r.SimNanos)/1e6))
		}
	}
	if len(lines) == 0 {
		return
	}
	fmt.Fprintf(b, "%ssimulated I/O time: %s\n", prefix, strings.Join(lines, ", "))
}

// reportFooter appends the missing-spec note to human-readable formats.
func reportFooter(b *strings.Builder, prefix string, skipped []string) {
	if len(skipped) == 0 {
		return
	}
	sorted := append([]string(nil), skipped...)
	sort.Strings(sorted)
	fmt.Fprintf(b, "%s(%d specs with no stored records: %s)\n",
		prefix, len(sorted), strings.Join(sorted, ", "))
}
