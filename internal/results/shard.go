package results

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard names one slice of a campaign's run indices: shard i of n owns
// every index with index % n == i. Because each run's RNG stream derives
// purely from (seed, index), a shard's records are bit-identical to the
// same indices of an unsharded run — n processes (or machines) can each
// take one shard into its own store and Merge reassembles the exact file a
// single process would have written. The zero value owns every index.
type Shard struct {
	Index int
	Count int
}

// ParseShard parses the CLI "-shard i/n" syntax; the empty string is the
// whole-grid zero value.
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("results: bad shard %q (want i/n, e.g. 0/4)", s)
	}
	i, err1 := strconv.Atoi(idx)
	n, err2 := strconv.Atoi(cnt)
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("results: bad shard %q (want i/n, e.g. 0/4)", s)
	}
	sh := Shard{Index: i, Count: n}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// Validate rejects impossible shard assignments.
func (s Shard) Validate() error {
	if s == (Shard{}) {
		return nil
	}
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("results: bad shard %d/%d (want 0 <= i < n)", s.Index, s.Count)
	}
	return nil
}

// Owns reports whether this shard executes run index idx.
func (s Shard) Owns(idx int) bool {
	if s.Count <= 1 {
		return true
	}
	return idx%s.Count == s.Index
}

// String renders the shard in the "i/n" CLI and manifest form, "" for the
// whole grid.
func (s Shard) String() string {
	if s.Count <= 1 {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}
