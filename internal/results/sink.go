package results

import (
	"bytes"
	"fmt"
	"os"
	"reflect"

	"ffis/internal/classify"
	"ffis/internal/core"
)

// SpecSink streams one campaign's run records into the store. It implements
// core.RecordSink: the engine hands it records in completion order and the
// sink reorders them into strict run-index order before appending, so the
// on-disk file is always a valid in-order prefix — the invariant resume
// relies on. The reorder buffer holds only runs that finished ahead of a
// still-executing predecessor, which the engine's bounded worker pool caps
// at roughly the pool width.
//
// Lifecycle: the sink opens (and crash-recovers) the spec's partial file at
// creation; BeginCampaign writes or re-validates the header; Record appends
// runs; Finalize atomically renames the partial into its final form on
// campaign success; Close abandons an in-flight stream, keeping the partial
// on disk for a later resume.
type SpecSink struct {
	store *Store
	key   string
	runs  int
	shard Shard

	f         *os.File
	header    *Header      // recovered from an existing partial, nil when fresh
	persisted map[int]bool // run indices already on disk from a prior process
	// outcomes retains the persisted records' classifications, so a resumed
	// adaptive campaign can re-evaluate its stopping rule over the complete
	// prefix (executed runs plus these) via PriorOutcome.
	outcomes map[int]classify.Outcome
	next     int // lowest run index not yet skipped or written
	pending  map[int][]byte
	stop     int // adaptive stop index reported by the campaign, 0 otherwise
	err      error
}

// SpecSink opens a record stream for one spec: runs is the campaign's run
// count, shard the slice of run indices this process owns. An existing
// partial file is recovered — its torn tail (if any) truncated away, its
// persisted indices marked so Include skips them — making the sink equally
// the fresh-start and the resume entry point. A finalized spec refuses a
// sink: it has nothing left to run.
func (st *Store) SpecSink(key string, runs int, shard Shard) (*SpecSink, error) {
	if st.Finalized(key) {
		return nil, fmt.Errorf("results: spec %q already finalized", key)
	}
	if err := shard.Validate(); err != nil {
		return nil, err
	}
	s := &SpecSink{
		store:     st,
		key:       key,
		runs:      runs,
		shard:     shard,
		persisted: map[int]bool{},
		outcomes:  map[int]classify.Outcome{},
		pending:   map[int][]byte{},
	}
	sf, ok, err := st.readSpec(key, false)
	if err != nil {
		return nil, err
	}
	path := st.partialPath(key)
	if ok {
		// Crash recovery: drop the torn tail so the file ends on a record
		// boundary, then append after it.
		if err := os.Truncate(path, sf.validLen); err != nil {
			return nil, fmt.Errorf("results: recover %s: %w", path, err)
		}
		if sf.headerLine != nil {
			h := sf.header
			s.header = &h
		}
		// The persisted records must be exactly the leading prefix of this
		// shard's index sequence: resuming under a different shard than the
		// store was written with would append the new indices after the old
		// ones out of order, silently breaking the byte-identity contract.
		k := 0
		for idx := 0; idx < runs && k < len(sf.records); idx++ {
			if !shard.Owns(idx) {
				if sf.records[k].Index == idx {
					return nil, fmt.Errorf("results: spec %q holds record %d, which shard %s does not own (was the store written under a different -shard?)",
						key, idx, shard)
				}
				continue
			}
			if sf.records[k].Index != idx {
				return nil, fmt.Errorf("results: spec %q records are not a resumable prefix of shard %s (stored %d where index %d is next); was the store written under a different -shard?",
					key, shard, sf.records[k].Index, idx)
			}
			o, err := classify.ParseOutcome(sf.records[k].Outcome)
			if err != nil {
				return nil, fmt.Errorf("results: spec %q record %d: %w", key, idx, err)
			}
			s.persisted[idx] = true
			s.outcomes[idx] = o
			k++
		}
		if k < len(sf.records) {
			return nil, fmt.Errorf("results: spec %q holds record %d beyond the campaign's %d runs",
				key, sf.records[k].Index, runs)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("results: open %s: %w", path, err)
	}
	s.f = f
	return s, nil
}

// Include reports whether run idx still needs to execute in this process:
// it is the CampaignConfig.RunFilter pairing of the sink, false for indices
// another shard owns and for indices already persisted by a prior run.
func (s *SpecSink) Include(idx int) bool {
	return s.shard.Owns(idx) && !s.persisted[idx]
}

// Persisted returns how many of this spec's runs are already on disk.
func (s *SpecSink) Persisted() int { return len(s.persisted) }

// PriorOutcome reports the persisted outcome of a run index a prior process
// executed: the CampaignConfig.PriorOutcome pairing of the sink, which lets
// a resumed adaptive campaign evaluate its stopping rule over the complete
// prefix even though Include skips the already-persisted indices.
func (s *SpecSink) PriorOutcome(idx int) (classify.Outcome, bool) {
	o, ok := s.outcomes[idx]
	return o, ok
}

// RecordStop implements core.StopRecorder: the campaign reports where its
// adaptive rule stopped, and Finalize persists the decision by rewriting the
// header line with the stop index.
func (s *SpecSink) RecordStop(stopIndex int) error {
	s.stop = stopIndex
	return nil
}

// BeginCampaign implements core.RecordSink. On a fresh stream it writes the
// header line; on a resumed one it validates that the campaign about to run
// is the campaign the stored records came from — any drift (profile count,
// seed, model, run count) means the deterministic (seed, index) → record
// mapping no longer holds and the resume must abort before mixing records.
func (s *SpecSink) BeginCampaign(meta core.CampaignMeta) error {
	return s.BeginHeader(NewHeader(meta))
}

// BeginHeader is the already-serialized form of BeginCampaign: the remote
// ingest path, where the campaign ran on another machine and only its
// Header crossed the wire. The same drift check applies — a worker whose
// world profiled differently (or that was handed a stale spec) is refused
// before any of its records can mix with the stored prefix.
func (s *SpecSink) BeginHeader(h Header) error {
	if h.Schema != schemaVersion {
		return fmt.Errorf("results: spec %q: header schema %d, this store speaks %d", s.key, h.Schema, schemaVersion)
	}
	if s.header != nil {
		if !reflect.DeepEqual(*s.header, h) {
			return fmt.Errorf("results: spec %q: stored header %+v does not match resumed campaign %+v", s.key, *s.header, h)
		}
		return nil
	}
	line, err := marshalLine(h)
	if err != nil {
		return err
	}
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("results: spec %q: write header: %w", s.key, err)
	}
	s.header = &h
	return nil
}

// Header returns the header the stream was begun (or recovered) with, nil
// before BeginCampaign/BeginHeader on a fresh stream.
func (s *SpecSink) Header() *Header {
	if s.header == nil {
		return nil
	}
	h := *s.header
	return &h
}

// Record implements core.RecordSink: it buffers the record and flushes the
// longest contiguous in-order run of owned indices to disk. Each line is
// written with its trailing newline in one call, so a kill between records
// never tears the file mid-line (a kill during a write can, which recovery
// handles).
func (s *SpecSink) Record(rec core.RunRecord) error {
	return s.Append(NewRecord(rec))
}

// Append is the already-serialized form of Record, the entry point for
// ingesting records produced on another machine. It re-marshals the record
// through the same canonical encoder local runs use, so stored bytes never
// depend on how a client happened to format its JSON. Indices outside the
// campaign, outside this sink's shard, or already persisted are refused —
// the coordinator's defense against a confused or duplicate worker.
func (s *SpecSink) Append(rec Record) error {
	if s.err != nil {
		return s.err
	}
	if rec.Index < 0 || rec.Index >= s.runs {
		return fmt.Errorf("results: spec %q: record index %d outside campaign of %d runs", s.key, rec.Index, s.runs)
	}
	if !s.shard.Owns(rec.Index) {
		return fmt.Errorf("results: spec %q: record index %d not owned by shard %s", s.key, rec.Index, s.shard)
	}
	if _, dup := s.pending[rec.Index]; dup || s.persisted[rec.Index] || rec.Index < s.next {
		return fmt.Errorf("results: spec %q: record index %d already delivered", s.key, rec.Index)
	}
	line, err := marshalLine(rec)
	if err != nil {
		s.err = err
		return err
	}
	s.pending[rec.Index] = line
	for s.next < s.runs {
		if !s.Include(s.next) {
			s.next++
			continue
		}
		line, ok := s.pending[s.next]
		if !ok {
			break
		}
		if _, err := s.f.Write(line); err != nil {
			s.err = fmt.Errorf("results: spec %q: append record %d: %w", s.key, s.next, err)
			return s.err
		}
		delete(s.pending, s.next)
		s.next++
	}
	return nil
}

// Finalize marks the spec complete: the partial file is synced and
// atomically renamed to its final name, the durable signal that every one
// of the spec's runs is persisted. Pending (out-of-order) records at this
// point mean a predecessor run never delivered — the campaign did not
// actually complete — and finalizing would persist a gap, so it refuses.
func (s *SpecSink) Finalize() error {
	if s.err != nil {
		return s.err
	}
	if len(s.pending) > 0 {
		return fmt.Errorf("results: spec %q: %d records still waiting on unfinished predecessors; not finalizing", s.key, len(s.pending))
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("results: spec %q: sync: %w", s.key, err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("results: spec %q: close: %w", s.key, err)
	}
	s.f = nil
	if s.stop != 0 {
		return s.finalizeWithStop()
	}
	if err := os.Rename(s.store.partialPath(s.key), s.store.finalPath(s.key)); err != nil {
		return fmt.Errorf("results: finalize spec %q: %w", s.key, err)
	}
	return nil
}

// finalizeWithStop lands an adaptive campaign's stop index in the persisted
// header: the partial's header line is re-marshalled with StopIndex set and
// the whole stream written to a temp file that is synced and atomically
// renamed into the final form, so the stop decision and the "complete"
// marker become durable together. The header line is rewritten rather than
// appended-to because the stop index is campaign identity, and identity
// lives on line one.
func (s *SpecSink) finalizeWithStop() error {
	if s.header == nil {
		return fmt.Errorf("results: spec %q: stop index %d recorded before any header", s.key, s.stop)
	}
	raw, err := os.ReadFile(s.store.partialPath(s.key))
	if err != nil {
		return fmt.Errorf("results: finalize spec %q: %w", s.key, err)
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return fmt.Errorf("results: finalize spec %q: partial holds no complete header line", s.key)
	}
	h := *s.header
	h.StopIndex = s.stop
	line, err := marshalLine(h)
	if err != nil {
		return err
	}
	tmp := s.store.finalPath(s.key) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("results: finalize spec %q: %w", s.key, err)
	}
	if _, err := f.Write(append(line, raw[nl+1:]...)); err != nil {
		f.Close()
		return fmt.Errorf("results: finalize spec %q: %w", s.key, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("results: finalize spec %q: sync: %w", s.key, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("results: finalize spec %q: close: %w", s.key, err)
	}
	if err := os.Rename(tmp, s.store.finalPath(s.key)); err != nil {
		return fmt.Errorf("results: finalize spec %q: %w", s.key, err)
	}
	// Best-effort: the final file is authoritative from here; a crash that
	// leaves the partial behind is harmless because loads prefer the final
	// form and a finalized spec never opens a new sink.
	os.Remove(s.store.partialPath(s.key))
	return nil
}

// Close abandons the stream without finalizing: the partial file stays on
// disk holding its in-order prefix, ready for a later resume. Safe to call
// after Finalize.
func (s *SpecSink) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

var (
	_ core.RecordSink   = (*SpecSink)(nil)
	_ core.StopRecorder = (*SpecSink)(nil)
)
