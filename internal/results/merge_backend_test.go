package results

import (
	"path/filepath"
	"strings"
	"testing"

	"ffis/internal/core"
)

// shardWithBackend runs the eq grid for one shard into dir with the given
// backend string stamped in the manifest.
func shardWithBackend(t *testing.T, dir, backend string, shard Shard) {
	t.Helper()
	st, err := Create(dir, Manifest{Seed: eqSeed, Runs: eqRuns, Shard: shard.String(), Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := RunGrid(&core.Engine{Jobs: 2}, st, shard, eqSpecs())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range grid {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Spec.Key, r.Err)
		}
	}
}

// The backend string is part of a campaign's identity: records produced
// against different storage backends are different experiments even at the
// same seed, so shards disagreeing on it must never merge, and a resume
// must never continue a store produced against a different backend.
func TestMergeRejectsMixedBackends(t *testing.T) {
	s0, s1 := t.TempDir(), t.TempDir()
	shardWithBackend(t, s0, "object", Shard{Index: 0, Count: 2})
	shardWithBackend(t, s1, "latency:bb", Shard{Index: 1, Count: 2})

	err := Merge(filepath.Join(t.TempDir(), "m"), s0, s1)
	if err == nil || !strings.Contains(err.Error(), "backend") {
		t.Fatalf("shards with different backends must refuse to merge, got %v", err)
	}
}

func TestMergeCarriesBackendIntoMergedManifest(t *testing.T) {
	s0, s1 := t.TempDir(), t.TempDir()
	shardWithBackend(t, s0, "object", Shard{Index: 0, Count: 2})
	shardWithBackend(t, s1, "object", Shard{Index: 1, Count: 2})

	dst := filepath.Join(t.TempDir(), "m")
	if err := Merge(dst, s0, s1); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Manifest().Backend; got != "object" {
		t.Fatalf("merged manifest backend = %q, want %q", got, "object")
	}
}

func TestResumeRejectsBackendMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, Manifest{Seed: eqSeed, Runs: eqRuns, Backend: "object"}); err != nil {
		t.Fatal(err)
	}
	_, err := CreateOrResume(dir, true, Manifest{Seed: eqSeed, Runs: eqRuns, Backend: "latency:bb"})
	if err == nil || !strings.Contains(err.Error(), "backend") {
		t.Fatalf("resume across backends must be refused, got %v", err)
	}
}
