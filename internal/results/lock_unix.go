//go:build unix

package results

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lock takes an exclusive advisory flock on the store, so two processes can
// never stream into the same directory at once — a double-fired -resume
// would otherwise truncate and interleave each other's partial files. The
// lock is non-blocking (the second writer fails fast with a pointed error)
// and kernel-held, so it vanishes with the process: a kill -9 leaves no
// stale lock to clean up. Readers (-report) take no lock; they see a valid
// in-order prefix by construction.
func (st *Store) lock() (func(), error) {
	f, err := os.OpenFile(filepath.Join(st.dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("results: lock store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("results: store %s is being written by another process (concurrent -resume?): %w", st.dir, err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
