package results

import (
	"sync/atomic"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/vfs"
)

// memoSpec wraps eqWorkload with a Setup that counts how many times the
// engine actually built a world, so the grid-level snapshot memoization is
// observable from outside the engine.
func memoSpec(key, worldKey, model string, setups *atomic.Int32) core.CampaignSpec {
	base := eqWorkload()
	w := core.Workload{
		Name: base.Name,
		Setup: func(fs vfs.FS) error {
			setups.Add(1)
			return base.Setup(fs)
		},
		Run: base.Run,
		Classify: func(fs vfs.FS, runErr error) classify.Outcome {
			return base.Classify(fs, runErr)
		},
	}
	return core.CampaignSpec{
		Key:      key,
		WorldKey: worldKey,
		Workload: w,
		Config: core.CampaignConfig{
			Fault: core.Config{Model: core.MustModel(model)},
			Runs:  8,
			Seed:  eqSeed,
		},
	}
}

// TestRunGridMemoizesWorldsByWorldKey pins the snapshot-sharing contract:
// within one RunGrid invocation, Setup runs once per distinct WorldKey —
// not once per spec — and an engine reused across invocations keeps its
// prepared worlds, so a CLI running several sweeps through one engine
// never rebuilds a world it has already profiled.
func TestRunGridMemoizesWorldsByWorldKey(t *testing.T) {
	var setups atomic.Int32
	specs := []core.CampaignSpec{
		memoSpec("memo/BF", "memo", "bit-flip", &setups),
		memoSpec("memo/DW", "memo", "dropped-write", &setups),
		memoSpec("other/BF", "other", "bit-flip", &setups),
	}
	eng := &core.Engine{Jobs: 4}

	runOnce := func(dir string) {
		t.Helper()
		st, err := Create(dir, Manifest{Seed: eqSeed, Runs: 8})
		if err != nil {
			t.Fatal(err)
		}
		grid, err := RunGrid(eng, st, Shard{}, specs)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range grid {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Spec.Key, r.Err)
			}
		}
	}

	runOnce(t.TempDir())
	if got := setups.Load(); got != 2 {
		t.Fatalf("one grid over 2 distinct world keys ran Setup %d times, want 2", got)
	}

	// A second sweep on the same engine reuses every prepared world.
	runOnce(t.TempDir())
	if got := setups.Load(); got != 2 {
		t.Fatalf("re-running the grid on the same engine rebuilt worlds: %d setups, want 2", got)
	}

	// A fresh engine has no memo and must rebuild both worlds.
	eng = &core.Engine{Jobs: 4}
	runOnce(t.TempDir())
	if got := setups.Load(); got != 4 {
		t.Fatalf("fresh engine should rebuild each world once: %d setups, want 4", got)
	}
}
