package results

import (
	"fmt"
	"reflect"

	"ffis/internal/core"
)

// RunGrid is Engine.Run with durability: every spec streams its records
// into the store as runs finish, specs already finalized on disk are loaded
// instead of re-executed, partially persisted specs resume from exactly the
// first missing run index, and a non-trivial shard executes only its slice
// of each spec's indices. On success each spec's file is atomically
// finalized and the returned results are reconstructed from disk — so what
// the caller renders is provably what a later Report invocation will see.
//
// Campaign errors stay per-cell in GridResult.Err, exactly like Engine.Run:
// a failed or starved cell keeps its partial file for the next resume while
// the rest of the grid completes and finalizes. RunGrid itself returns an
// error only for store-level failures.
func RunGrid(e *core.Engine, st *Store, shard Shard, specs []core.CampaignSpec) ([]core.GridResult, error) {
	if err := shard.Validate(); err != nil {
		return nil, err
	}
	keys := make([]string, len(specs))
	for i, spec := range specs {
		// Adaptive stopping and sharding are statistically incoherent: the
		// rule needs complete index prefixes to evaluate, and a shard by
		// construction owns only every k-th index. Refuse up front rather
		// than let the campaign's own guard fail every cell.
		if spec.Config.Stop != nil && shard.String() != "" {
			return nil, fmt.Errorf("results: spec %q uses adaptive stopping, which cannot run under shard %s (a shard never holds a complete run prefix)",
				spec.Key, shard)
		}
		keys[i] = spec.Key
	}
	if err := st.EnsureSpecs(keys); err != nil {
		return nil, err
	}

	unlock, err := st.lock()
	if err != nil {
		return nil, err
	}
	defer unlock()

	out := make([]core.GridResult, len(specs))
	var pending []core.CampaignSpec
	var pendingAt []int
	sinks := map[string]*SpecSink{}
	// fail closes every sink opened so far before an early return, so a
	// store-level error never leaks open partial-file handles.
	fail := func(err error) ([]core.GridResult, error) {
		for _, s := range sinks {
			s.Close()
		}
		return nil, err
	}
	for i, spec := range specs {
		if st.Finalized(spec.Key) {
			data, ok, err := st.LoadSpec(spec.Key)
			if err != nil {
				return fail(err)
			}
			if !ok {
				return fail(fmt.Errorf("results: spec %q finalized but unreadable", spec.Key))
			}
			// The finalized fast path skips the campaign entirely, so it
			// must apply the same drift guard BeginCampaign enforces on
			// partials: the stored header has to describe the spec being
			// requested, or the store would silently answer a different
			// campaign's question. (World-shape drift that only changes
			// the profile count is the one thing a static check cannot
			// see; everything nameable — workload, model, primitive,
			// feature, runs, seed — is compared.)
			if err := HeaderMatchesSpec(data.Header, spec); err != nil {
				return fail(err)
			}
			res, err := data.CampaignResult()
			out[i] = core.GridResult{Spec: spec, Result: res, Err: err}
			continue
		}
		if sinks[spec.Key] != nil {
			return fail(fmt.Errorf("results: duplicate spec key %q in grid", spec.Key))
		}
		sink, err := st.SpecSink(spec.Key, spec.Config.Runs, shard)
		if err != nil {
			return fail(err)
		}
		sinks[spec.Key] = sink
		// The sink is the single source of truth for what still runs:
		// records stream to it, already-persisted and out-of-shard indices
		// are skipped, and the in-memory Records slice is dropped — the
		// campaign tallies online and the authoritative records live on
		// disk, bounding memory at the worker-pool width.
		spec.Config.Sink = sink
		spec.Config.RunFilter = sink.Include
		spec.Config.DiscardRecords = true
		// The sink retained the persisted records' outcomes during recovery,
		// so a resumed adaptive campaign can evaluate its stopping rule over
		// the complete prefix despite the RunFilter skipping those indices.
		spec.Config.PriorOutcome = sink.PriorOutcome
		pending = append(pending, spec)
		pendingAt = append(pendingAt, i)
	}

	grid := e.Run(pending)
	var firstErr error
	for j, r := range grid {
		sink := sinks[r.Spec.Key]
		if r.Err != nil {
			// Keep the partial for resume; the in-order prefix already on
			// disk is untouched by the failure.
			if cerr := sink.Close(); cerr != nil && firstErr == nil {
				firstErr = cerr
			}
			out[pendingAt[j]] = r
			continue
		}
		if err := sink.Finalize(); err != nil {
			r.Err = err
			if firstErr == nil {
				firstErr = err
			}
			out[pendingAt[j]] = r
			continue
		}
		// Reconstruct from disk: the full record set and tally, including
		// runs persisted by earlier interrupted invocations and other
		// already-merged state — not just the slice this process executed.
		r.Result, r.Err = st.Result(r.Spec.Key)
		out[pendingAt[j]] = r
	}
	return out, firstErr
}

// HeaderMatchesSpec verifies a stored header describes the spec a caller is
// asking for: everything statically knowable about the campaign must match.
// The profile count is copied from the stored header — it is a property of
// the built world, observable only by re-profiling, which the fast path
// exists to skip. Exported for the distributed coordinator, which applies
// the same guard to headers arriving over the wire before ingesting a
// worker's records.
func HeaderMatchesSpec(h Header, spec core.CampaignSpec) error {
	stop, err := spec.Config.NormalizedStop()
	if err != nil {
		return fmt.Errorf("results: spec %q: %w", spec.Key, err)
	}
	want := NewHeader(core.CampaignMeta{
		Workload:     spec.Workload.Name,
		Signature:    spec.Config.Fault.Signature(),
		ProfileCount: h.ProfileCount,
		Runs:         spec.Config.Runs,
		Seed:         spec.Config.Seed,
		Stop:         stop,
	})
	// The stop index is the stored campaign's runtime decision, not a spec
	// property a caller could know statically; like the profile count it is
	// copied from the header. The rule itself still has to match, so a fixed-
	// budget spec can never silently adopt an adaptive store or vice versa.
	want.StopIndex = h.StopIndex
	if !reflect.DeepEqual(h, want) {
		return fmt.Errorf("results: spec %q: stored records are from a different campaign (stored %+v, requested %+v); use a fresh -out",
			spec.Key, h, want)
	}
	return nil
}

// Result loads a spec's stored records and reconstructs the
// core.CampaignResult an uninterrupted in-memory campaign would have
// returned: signature resolved through the model registry, run records
// rebuilt (with StoredError standing in for live error chains), and the
// classify.Tally re-accumulated from the persisted outcomes.
func (st *Store) Result(key string) (core.CampaignResult, error) {
	data, ok, err := st.LoadSpec(key)
	if err != nil {
		return core.CampaignResult{}, err
	}
	if !ok {
		return core.CampaignResult{}, fmt.Errorf("results: spec %q has no stored records", key)
	}
	return data.CampaignResult()
}

// CampaignResult reconstructs the in-memory campaign result from loaded
// spec data.
func (d SpecData) CampaignResult() (core.CampaignResult, error) {
	sig, err := d.Header.SignatureValue()
	if err != nil {
		return core.CampaignResult{}, fmt.Errorf("results: spec %q: %w", d.Key, err)
	}
	res := core.CampaignResult{
		Workload:     d.Header.Workload,
		Signature:    sig,
		ProfileCount: d.Header.ProfileCount,
		StopIndex:    d.Header.StopIndex,
	}
	for _, rec := range d.Records {
		rr, err := rec.RunRecord()
		if err != nil {
			return core.CampaignResult{}, fmt.Errorf("results: spec %q: %w", d.Key, err)
		}
		res.Records = append(res.Records, rr)
		res.Tally.Add(rr.Outcome)
		res.SimNanos += rr.SimNanos
	}
	return res, nil
}
