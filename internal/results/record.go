package results

import (
	"encoding/json"
	"fmt"

	"ffis/internal/classify"
	"ffis/internal/core"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// schemaVersion tags every header line and manifest so future layout
// changes can be detected instead of misread.
const schemaVersion = 1

// Header is the first JSONL line of every spec record file: it identifies
// the campaign the records belong to, making the file self-describing and
// giving resume a determinism guard — a resumed campaign whose profile
// count, seed, or signature differs from the persisted header cannot
// produce records compatible with the stored ones, so the mismatch is an
// error instead of a silently mixed file.
type Header struct {
	Schema       int           `json:"ffis_records"`
	Workload     string        `json:"workload"`
	Model        string        `json:"model"`
	Primitive    string        `json:"primitive"`
	Feature      FeatureRecord `json:"feature"`
	ProfileCount int64         `json:"profile_count"`
	Runs         int           `json:"runs"`
	Seed         uint64        `json:"seed"`
	// Shots is the raw Signature.Shots override (0 = model default); part of
	// the stream identity because it changes every multi-shot record.
	Shots int `json:"shots,omitempty"`
	// StopRule is the adaptive stopping rule the campaign ran under, nil for
	// fixed-budget campaigns. Appended with omitempty so legacy fixed-budget
	// headers keep their exact bytes.
	StopRule *StopRuleRecord `json:"stop_rule,omitempty"`
	// StopIndex is where the rule stopped the campaign: run indices [0,
	// StopIndex) exist and nothing after them ever will. 0 for fixed-budget
	// streams; an adaptive campaign that ran to its cap records StopIndex ==
	// Runs. Written by the finalize-time header rewrite, so a resumed grid
	// can tell a complete adaptive spec from one that still needs runs.
	StopIndex int `json:"stop_index,omitempty"`
}

// StopRuleRecord is the serializable form of stats.StopRule (normalized, so
// every field is explicit and two processes resolve identical barriers).
type StopRuleRecord struct {
	TargetHalfWidth float64 `json:"target_half_width"`
	MinRuns         int     `json:"min_runs"`
	MaxRuns         int     `json:"max_runs"`
	CheckEvery      int     `json:"check_every"`
}

// newStopRuleRecord renders a normalized stopping rule, nil in, nil out.
func newStopRuleRecord(rule *stats.StopRule) *StopRuleRecord {
	if rule == nil {
		return nil
	}
	return &StopRuleRecord{
		TargetHalfWidth: rule.TargetHalfWidth,
		MinRuns:         rule.MinRuns,
		MaxRuns:         rule.MaxRuns,
		CheckEvery:      rule.CheckEvery,
	}
}

// FeatureRecord is the serializable form of core.Feature. The correlated-
// model tunables are appended with omitempty: legacy signatures leave them
// zero, so headers written before they existed keep their exact bytes.
type FeatureRecord struct {
	FlipBits       int `json:"flip_bits"`
	ShornKeepNum   int `json:"shorn_keep_num"`
	ShornKeepDen   int `json:"shorn_keep_den"`
	SectorSize     int `json:"sector_size"`
	BlockSize      int `json:"block_size"`
	BurstSectors   int `json:"burst_sectors,omitempty"`
	MisdirectEvery int `json:"misdirect_every,omitempty"`
}

// NewHeader renders campaign metadata into the persisted header form. It
// is exported for the distributed path: a campaign worker serializes its
// header here and streams it to the coordinator, whose ingest validates it
// against the spec before persisting (HeaderMatchesSpec, SpecSink.BeginHeader).
func NewHeader(meta core.CampaignMeta) Header {
	sig := meta.Signature
	return Header{
		Schema:    schemaVersion,
		Workload:  meta.Workload,
		Model:     sig.Model.Name(),
		Primitive: string(sig.Primitive),
		Feature: FeatureRecord{
			FlipBits:       sig.Feature.FlipBits,
			ShornKeepNum:   sig.Feature.ShornKeepNum,
			ShornKeepDen:   sig.Feature.ShornKeepDen,
			SectorSize:     sig.Feature.SectorSize,
			BlockSize:      sig.Feature.BlockSize,
			BurstSectors:   sig.Feature.BurstSectors,
			MisdirectEvery: sig.Feature.MisdirectEvery,
		},
		ProfileCount: meta.ProfileCount,
		Runs:         meta.Runs,
		Seed:         meta.Seed,
		Shots:        sig.Shots,
		StopRule:     newStopRuleRecord(meta.Stop),
	}
}

// Signature reconstructs the fault signature the header describes,
// resolving the model through the registry. Loading records for a model
// this binary has never registered is an error — the tally could still be
// rebuilt, but every downstream renderer needs the model's identity.
func (h Header) SignatureValue() (core.Signature, error) {
	m, ok := core.Lookup(h.Model)
	if !ok {
		return core.Signature{}, fmt.Errorf("results: stored records use unregistered fault model %q", h.Model)
	}
	return core.Signature{
		Model:     m,
		Primitive: vfs.Primitive(h.Primitive),
		Shots:     h.Shots,
		Feature: core.Feature{
			FlipBits:       h.Feature.FlipBits,
			ShornKeepNum:   h.Feature.ShornKeepNum,
			ShornKeepDen:   h.Feature.ShornKeepDen,
			SectorSize:     h.Feature.SectorSize,
			BlockSize:      h.Feature.BlockSize,
			BurstSectors:   h.Feature.BurstSectors,
			MisdirectEvery: h.Feature.MisdirectEvery,
		},
	}, nil
}

// Record is the serializable form of one core.RunRecord: one JSONL line of
// a spec record file. Encoding is deterministic (fixed field order, no
// maps, no timestamps), which is what makes resumed and sharded campaigns
// byte-comparable to uninterrupted ones.
type Record struct {
	Index   int    `json:"index"`
	Target  int64  `json:"target"`
	Outcome string `json:"outcome"`
	Fired   bool   `json:"fired,omitempty"`
	// Shots is serialized only when more than one shot fired: the single-
	// shot family's records (Shots == 1 whenever Fired) keep their exact
	// legacy bytes.
	Shots    int             `json:"shots,omitempty"`
	RunErr   string          `json:"run_err,omitempty"`
	Mutation *MutationRecord `json:"mutation,omitempty"`
	// SimNanos is the run's simulated I/O time on latency-modeled worlds.
	// Appended with omitempty: the default MemFS worlds charge nothing, so
	// every record stream written before latency modeling existed — and
	// every stream from an unmodeled world — keeps its exact legacy bytes.
	SimNanos int64 `json:"sim_ns,omitempty"`
}

// MutationRecord is the serializable form of core.Mutation. The model is
// rendered by name; Rendered carries the model's own human-readable line so
// the record stays legible even to tools without the model registered.
type MutationRecord struct {
	Model      string `json:"model"`
	Path       string `json:"path,omitempty"`
	Offset     int64  `json:"offset"`
	Length     int    `json:"length,omitempty"`
	BitPos     int    `json:"bit_pos"`
	Kept       int    `json:"kept,omitempty"`
	Dropped    bool   `json:"dropped,omitempty"`
	Sectors    int    `json:"sectors,omitempty"`
	NewSize    int64  `json:"new_size,omitempty"`
	Unreadable bool   `json:"unreadable,omitempty"`
	Latent     bool   `json:"latent,omitempty"`
	Detail     string `json:"detail,omitempty"`
	Rendered   string `json:"rendered,omitempty"`
}

// NewRecord renders a finished run into its persisted form. The run error
// and the mutation's model are flattened to strings: error chains and model
// instances do not survive serialization, only their identities do. The
// rendering is a pure function of the run record, and Record round-trips
// losslessly through JSON, so a worker-serialized record re-marshalled by
// a remote coordinator lands byte-identical to a locally written one.
func NewRecord(rec core.RunRecord) Record {
	out := Record{
		Index:    rec.Index,
		Target:   rec.Target,
		Outcome:  rec.Outcome.String(),
		Fired:    rec.Fired,
		SimNanos: rec.SimNanos,
	}
	if rec.Shots > 1 {
		out.Shots = rec.Shots
	}
	if rec.RunErr != nil {
		out.RunErr = rec.RunErr.Error()
	}
	if rec.Fired {
		m := rec.Mutation
		mr := &MutationRecord{
			Path:       m.Path,
			Offset:     m.Offset,
			Length:     m.Length,
			BitPos:     m.BitPos,
			Kept:       m.Kept,
			Dropped:    m.Dropped,
			Sectors:    m.Sectors,
			NewSize:    m.NewSize,
			Unreadable: m.Unreadable,
			Latent:     m.Latent,
			Detail:     m.Detail,
		}
		if m.Model != nil {
			mr.Model = m.Model.Name()
			mr.Rendered = m.String()
		}
		out.Mutation = mr
	}
	return out
}

// marshalLine renders a record as its canonical JSONL line (newline
// included). encoding/json emits struct fields in declaration order, so the
// bytes are a pure function of the record.
func marshalLine(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// StoredError is the reconstituted form of a persisted run error: only the
// rendering of the original error survives serialization, not its chain, so
// errors.Is against application sentinels does not work on loaded records.
type StoredError struct{ Msg string }

func (e StoredError) Error() string { return e.Msg }

// RunRecord reconstructs the in-memory form of a loaded record. Mutation
// model lookup is best-effort: records from an unregistered model keep
// their flat fields with a nil Model.
func (r Record) RunRecord() (core.RunRecord, error) {
	outcome, err := classify.ParseOutcome(r.Outcome)
	if err != nil {
		return core.RunRecord{}, fmt.Errorf("results: record %d: %w", r.Index, err)
	}
	out := core.RunRecord{
		Index:    r.Index,
		Target:   r.Target,
		Outcome:  outcome,
		Fired:    r.Fired,
		Shots:    r.Shots,
		SimNanos: r.SimNanos,
	}
	if out.Shots == 0 && r.Fired {
		out.Shots = 1 // single-shot records omit the count
	}
	if r.RunErr != "" {
		out.RunErr = StoredError{Msg: r.RunErr}
	}
	if r.Mutation != nil {
		m := r.Mutation
		out.Mutation = core.Mutation{
			Path:       m.Path,
			Offset:     m.Offset,
			Length:     m.Length,
			BitPos:     m.BitPos,
			Kept:       m.Kept,
			Dropped:    m.Dropped,
			Sectors:    m.Sectors,
			NewSize:    m.NewSize,
			Unreadable: m.Unreadable,
			Latent:     m.Latent,
			Detail:     m.Detail,
		}
		if model, ok := core.Lookup(m.Model); ok {
			out.Mutation.Model = model
		}
	}
	return out, nil
}
