package results

import (
	"bytes"
	"fmt"
	"os"
	"sort"
)

// Merge reassembles shard stores into one whole-grid store at dst, which
// must not already exist. Every source must have been produced from the
// same campaign (equal seed, runs, and backend — validated against the
// manifests) and
// have finalized the specs it contributes; the merged record file
// interleaves each shard's lines by run index, byte for byte, so merging
// the shards of a deterministic grid reproduces exactly the file an
// unsharded single-process run writes. Specs no source holds data for are
// carried in the manifest but get no record file, mirroring how a live grid
// treats starved placements.
func Merge(dst string, srcs ...string) error {
	if len(srcs) == 0 {
		return fmt.Errorf("results: merge needs at least one source store")
	}
	stores := make([]*Store, len(srcs))
	for i, dir := range srcs {
		st, err := Open(dir)
		if err != nil {
			return err
		}
		stores[i] = st
	}
	ref := stores[0].Manifest()
	var specs []string
	seen := map[string]bool{}
	for _, st := range stores {
		man := st.Manifest()
		if man.Seed != ref.Seed || man.Runs != ref.Runs {
			return fmt.Errorf("results: merge: %s holds seed=%d runs=%d, %s holds seed=%d runs=%d",
				srcs[0], ref.Seed, ref.Runs, st.Dir(), man.Seed, man.Runs)
		}
		// Same-seed same-runs shards over different backends are different
		// experiments wearing the same record format: the worlds the faults
		// landed in differ, so interleaving their lines would fabricate a
		// grid no single machine ever ran.
		if man.Backend != ref.Backend {
			return fmt.Errorf("results: merge: %s holds backend=%q, %s holds backend=%q; shards of one campaign must share a backend",
				srcs[0], ref.Backend, st.Dir(), man.Backend)
		}
		for _, key := range man.Specs {
			if !seen[key] {
				seen[key] = true
				specs = append(specs, key)
			}
		}
	}

	out, err := Create(dst, Manifest{Seed: ref.Seed, Runs: ref.Runs, Backend: ref.Backend, Specs: specs})
	if err != nil {
		return err
	}
	for _, key := range specs {
		if err := mergeSpec(out, stores, key); err != nil {
			return err
		}
	}
	return nil
}

// mergeSpec interleaves one spec's record lines from every contributing
// store into dst, in strict run-index order, and finalizes the result
// atomically.
func mergeSpec(dst *Store, stores []*Store, key string) error {
	type indexed struct {
		idx  int
		line []byte
	}
	var headerLine []byte
	var lines []indexed
	runs := 0
	contributed := false
	for _, st := range stores {
		sf, ok, err := st.readSpec(key, true)
		if err != nil {
			return err
		}
		if !ok {
			// No finalized data here; a live partial means the shard never
			// completed this spec, and merging it would bake in a gap.
			if _, live, err := st.readSpec(key, false); err != nil {
				return err
			} else if live {
				return fmt.Errorf("results: merge: %s holds unfinalized records for spec %q; finish or resume that shard first", st.Dir(), key)
			}
			continue
		}
		contributed = true
		if headerLine == nil {
			headerLine = sf.headerLine
			runs = sf.header.Runs
		} else if !bytes.Equal(headerLine, sf.headerLine) {
			return fmt.Errorf("results: merge: spec %q headers disagree between stores (different profile counts or campaign parameters)", key)
		}
		for i, rec := range sf.records {
			lines = append(lines, indexed{idx: rec.Index, line: sf.lines[i]})
		}
	}
	if !contributed {
		return nil
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].idx < lines[j].idx })
	for i := 1; i < len(lines); i++ {
		if lines[i].idx == lines[i-1].idx {
			return fmt.Errorf("results: merge: spec %q: run %d present in more than one source (overlapping shards?)", key, lines[i].idx)
		}
	}
	// A finalized file is the durable promise that EVERY run is persisted,
	// so the merged set must cover exactly [0, runs) — a missing shard (or
	// a spec one shard finished and another never started) must fail loudly
	// instead of renaming a gapped file into the completion marker.
	if len(lines) != runs {
		return fmt.Errorf("results: merge: spec %q covers %d of %d runs (missing shard? resume the incomplete shards first)",
			key, len(lines), runs)
	}
	for i, l := range lines {
		if l.idx != i {
			return fmt.Errorf("results: merge: spec %q: run %d missing from every source", key, i)
		}
	}

	var buf bytes.Buffer
	buf.Write(headerLine)
	for _, l := range lines {
		buf.Write(l.line)
	}
	partial := dst.partialPath(key)
	if err := os.WriteFile(partial, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("results: merge spec %q: %w", key, err)
	}
	if err := os.Rename(partial, dst.finalPath(key)); err != nil {
		return fmt.Errorf("results: merge spec %q: %w", key, err)
	}
	return nil
}
