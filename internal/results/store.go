// Package results is the durable half of the campaign engine: a streaming
// JSONL store for fault-injection run records, the resume/shard logic that
// lets one logical grid be interrupted, split across processes, and merged
// back bit-identically, and the report generator that re-renders stored
// results into the paper's table layouts after the fact.
//
// On disk a store is one directory:
//
//	out/
//	  manifest.json              campaign-level metadata (seed, runs, shard, spec keys)
//	  records/
//	    <key>.jsonl              finalized spec: header line + one record line per run
//	    <key>.jsonl.partial      in-flight spec: same layout, atomically renamed on finalize
//
// Every line is a self-contained JSON document. The first line of each
// record file is a Header identifying the campaign (workload, model,
// profile count, seed); each following line is one Record in run-index
// order. Records are appended strictly in index order — out-of-order
// completions from a parallel worker pool are buffered in memory by
// SpecSink until their predecessors land — so the persisted set is always a
// prefix of the executed index sequence and a killed process leaves a file
// that is a valid prefix (possibly plus one torn final line, which recovery
// truncates). Nothing in a record file depends on wall-clock time, map
// iteration, or worker interleaving: a resumed or sharded campaign
// reproduces the uninterrupted file byte for byte.
package results

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

const (
	manifestName = "manifest.json"
	recordsDir   = "records"
	finalExt     = ".jsonl"
	partialExt   = ".jsonl.partial"
)

// Manifest is the campaign-level metadata of a store, persisted as
// manifest.json. Seed and Runs pin the grid parameters every spec ran
// under; Shard records which slice of the run indices this store holds
// ("" = the whole grid); Specs lists the spec keys in submission order,
// which is also report order.
type Manifest struct {
	Schema int    `json:"ffis_store"`
	Seed   uint64 `json:"seed"`
	Runs   int    `json:"runs"`
	Shard  string `json:"shard,omitempty"`
	// Backend is the storage-backend grammar string the grid's worlds were
	// built over ("" = the default mem backend). Part of campaign identity:
	// two shards run over different backends can hold identical-looking
	// record streams (same seed, same runs) whose outcomes came from
	// different worlds, so resume and merge refuse to mix them.
	Backend string   `json:"backend,omitempty"`
	Specs   []string `json:"specs,omitempty"`
}

// Store is an open results directory. All methods are safe for concurrent
// use; per-spec record streams are serialized by the campaign engine
// already (core.RecordSink delivery never overlaps).
type Store struct {
	dir string

	mu  sync.Mutex
	man Manifest
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// Manifest returns a copy of the store's manifest.
func (st *Store) Manifest() Manifest {
	st.mu.Lock()
	defer st.mu.Unlock()
	man := st.man
	man.Specs = append([]string(nil), st.man.Specs...)
	return man
}

// Create initializes a new store at dir. It refuses to reuse a directory
// that already holds a store — resuming must be an explicit choice (Open),
// not an accident that silently mixes two campaigns' records.
func Create(dir string, man Manifest) (*Store, error) {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("results: %s already holds a results store (use resume to continue it)", dir)
	}
	if err := os.MkdirAll(filepath.Join(dir, recordsDir), 0o755); err != nil {
		return nil, fmt.Errorf("results: create store: %w", err)
	}
	man.Schema = schemaVersion
	st := &Store{dir: dir, man: man}
	if err := st.writeManifest(); err != nil {
		return nil, err
	}
	return st, nil
}

// Open loads an existing store at dir.
func Open(dir string) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("results: open store: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("results: %s: corrupt manifest: %w", dir, err)
	}
	if man.Schema != schemaVersion {
		return nil, fmt.Errorf("results: %s: store schema %d, this binary speaks %d", dir, man.Schema, schemaVersion)
	}
	return &Store{dir: dir, man: man}, nil
}

// CreateOrResume is the CLI entry point: it creates a fresh store, or — when
// resume is set — opens the existing one and validates that the campaign
// parameters match, since records produced under a different seed, run
// count, or shard assignment can never extend the stored ones.
func CreateOrResume(dir string, resume bool, man Manifest) (*Store, error) {
	if !resume {
		return Create(dir, man)
	}
	st, err := Open(dir)
	if err != nil {
		return nil, err
	}
	if st.man.Seed != man.Seed || st.man.Runs != man.Runs || st.man.Shard != man.Shard || st.man.Backend != man.Backend {
		return nil, fmt.Errorf(
			"results: resume mismatch: store %s holds seed=%d runs=%d shard=%q backend=%q, this invocation wants seed=%d runs=%d shard=%q backend=%q",
			dir, st.man.Seed, st.man.Runs, st.man.Shard, st.man.Backend, man.Seed, man.Runs, man.Shard, man.Backend)
	}
	return st, nil
}

// writeManifest persists the manifest atomically (write-then-rename), so a
// kill mid-update leaves either the old or the new manifest, never a torn
// one. Caller holds st.mu or has exclusive access.
func (st *Store) writeManifest() error {
	b, err := json.MarshalIndent(st.man, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	tmp := filepath.Join(st.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("results: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, manifestName)); err != nil {
		return fmt.Errorf("results: write manifest: %w", err)
	}
	return nil
}

// EnsureSpecs registers spec keys in the manifest (preserving first-seen
// order), rewriting it if anything new appeared. Grids that run several
// sweeps into one store (-all) accumulate their spec lists here, as does
// the distributed coordinator when it adopts a spec grid into its store.
func (st *Store) EnsureSpecs(keys []string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	have := make(map[string]bool, len(st.man.Specs))
	for _, k := range st.man.Specs {
		have[k] = true
	}
	added := false
	for _, k := range keys {
		if !have[k] {
			st.man.Specs = append(st.man.Specs, k)
			have[k] = true
			added = true
		}
	}
	if !added {
		return nil
	}
	return st.writeManifest()
}

// Lock takes the store's exclusive inter-process lock — the same lock
// RunGrid holds for its duration — returning the release function.
// Exported for long-lived writers (the campaign coordinator daemon) that
// stream records into the store outside any RunGrid invocation and need
// the same one-writer-per-store guarantee.
func (st *Store) Lock() (func(), error) { return st.lock() }

// encodeKey renders a spec key ("nyx/BF", "MT2.tiered/SW") as a collision-
// free file name: letters, digits, dot, underscore, and dash pass through;
// every other byte becomes %XX. The encoding is injective, so two distinct
// spec keys can never share a record file.
func encodeKey(key string) string {
	var b strings.Builder
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

func (st *Store) finalPath(key string) string {
	return filepath.Join(st.dir, recordsDir, encodeKey(key)+finalExt)
}

func (st *Store) partialPath(key string) string {
	return filepath.Join(st.dir, recordsDir, encodeKey(key)+partialExt)
}

// Finalized reports whether the spec's record file has been atomically
// renamed into its final form — the marker that every one of its runs is
// persisted and the spec need not execute again on resume.
func (st *Store) Finalized(key string) bool {
	_, err := os.Stat(st.finalPath(key))
	return err == nil
}

// specFile is a parsed record file: the raw header line and record lines
// (for byte-exact merging) plus their decoded forms.
type specFile struct {
	headerLine []byte
	header     Header
	lines      [][]byte
	records    []Record
	// validLen is the byte length of the well-formed prefix; anything
	// beyond it is a torn tail from a killed writer.
	validLen int64
}

// parseSpecFile decodes a record file, tolerating exactly one torn tail: a
// final chunk that is incomplete (no newline) or fails to decode is treated
// as the debris of a kill and excluded from validLen. Malformed lines with
// well-formed successors are corruption and fail the parse.
func parseSpecFile(raw []byte) (*specFile, error) {
	sf := &specFile{}
	off := int64(0)
	lineNo := 0
	for len(raw) > 0 {
		nl := bytes.IndexByte(raw, '\n')
		if nl < 0 {
			break // torn tail: no newline
		}
		line := raw[:nl+1]
		var decodeErr error
		if lineNo == 0 {
			decodeErr = json.Unmarshal(line, &sf.header)
			if decodeErr == nil && sf.header.Schema != schemaVersion {
				return nil, fmt.Errorf("results: record file schema %d, this binary speaks %d", sf.header.Schema, schemaVersion)
			}
		} else {
			var rec Record
			decodeErr = json.Unmarshal(line, &rec)
			if decodeErr == nil {
				if n := len(sf.records); n > 0 && rec.Index <= sf.records[n-1].Index {
					return nil, fmt.Errorf("results: record file out of order: index %d after %d",
						rec.Index, sf.records[n-1].Index)
				}
				sf.records = append(sf.records, rec)
				sf.lines = append(sf.lines, append([]byte(nil), line...))
			}
		}
		if decodeErr != nil {
			if bytes.IndexByte(raw[nl+1:], '\n') >= 0 {
				return nil, fmt.Errorf("results: corrupt record line %d: %w", lineNo, decodeErr)
			}
			break // torn tail: last complete-looking line is garbage
		}
		if lineNo == 0 {
			sf.headerLine = append([]byte(nil), line...)
		}
		off += int64(len(line))
		raw = raw[nl+1:]
		lineNo++
	}
	sf.validLen = off
	return sf, nil
}

// readSpec loads and parses the spec's record file. final selects which
// form to read; ok is false when the file does not exist.
func (st *Store) readSpec(key string, final bool) (sf *specFile, ok bool, err error) {
	p := st.partialPath(key)
	if final {
		p = st.finalPath(key)
	}
	raw, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("results: read %s: %w", p, err)
	}
	sf, err = parseSpecFile(raw)
	if err != nil {
		return nil, false, fmt.Errorf("results: %s: %w", p, err)
	}
	return sf, true, nil
}

// SpecData is the loaded content of one spec's record stream.
type SpecData struct {
	Key     string
	Header  Header
	Records []Record
	// Final reports whether the stream was finalized (every run persisted)
	// or read from an in-flight partial file.
	Final bool
}

// LoadSpec reads a spec's records, preferring the finalized file and
// falling back to the partial one. ok is false when the spec has no stored
// header yet (no file, or a file whose torn tail swallowed the header).
func (st *Store) LoadSpec(key string) (data SpecData, ok bool, err error) {
	final := true
	sf, ok, err := st.readSpec(key, true)
	if err != nil {
		return SpecData{}, false, err
	}
	if !ok {
		final = false
		sf, ok, err = st.readSpec(key, false)
		if err != nil || !ok {
			return SpecData{}, false, err
		}
	}
	if sf.headerLine == nil {
		return SpecData{}, false, nil
	}
	return SpecData{Key: key, Header: sf.header, Records: sf.records, Final: final}, true, nil
}

// Load reads every spec registered in the manifest, in manifest order,
// skipping specs with no stored data (e.g. starved placements that never
// began). Skipped keys are returned so reports can say what is missing
// instead of silently narrowing the table.
func (st *Store) Load() (data []SpecData, skipped []string, err error) {
	for _, key := range st.Manifest().Specs {
		d, ok, err := st.LoadSpec(key)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			skipped = append(skipped, key)
			continue
		}
		data = append(data, d)
	}
	return data, skipped, nil
}
