package results

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/core"
)

func TestEncodeKeyInjectiveAndFilesystemSafe(t *testing.T) {
	keys := []string{"nyx/BF", "nyx%2FBF", "MT2.tiered/SW", "a b", "a/b/c", "a_b-c.d"}
	seen := map[string]string{}
	for _, k := range keys {
		enc := encodeKey(k)
		if strings.ContainsAny(enc, "/\\ ") {
			t.Errorf("encodeKey(%q) = %q contains unsafe bytes", k, enc)
		}
		if prev, dup := seen[enc]; dup {
			t.Errorf("collision: %q and %q both encode to %q", prev, k, enc)
		}
		seen[enc] = k
	}
}

func TestParseSpecFileTornTailRecovery(t *testing.T) {
	header := `{"ffis_records":1,"workload":"w","model":"bit-flip","primitive":"write","feature":{"flip_bits":2,"shorn_keep_num":7,"shorn_keep_den":8,"sector_size":512,"block_size":4096},"profile_count":8,"runs":4,"seed":1}` + "\n"
	rec0 := `{"index":0,"target":3,"outcome":"benign"}` + "\n"
	rec1 := `{"index":1,"target":5,"outcome":"SDC"}` + "\n"

	cases := []struct {
		name     string
		raw      string
		records  int
		validLen int
	}{
		{"complete", header + rec0 + rec1, 2, len(header) + len(rec0) + len(rec1)},
		{"torn no newline", header + rec0 + `{"index":1,"tar`, 1, len(header) + len(rec0)},
		{"torn garbage line", header + rec0 + "garbage}\n", 1, len(header) + len(rec0)},
		{"torn header", `{"ffis_rec`, 0, 0},
		{"empty", "", 0, 0},
	}
	for _, c := range cases {
		sf, err := parseSpecFile([]byte(c.raw))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(sf.records) != c.records {
			t.Errorf("%s: %d records, want %d", c.name, len(sf.records), c.records)
		}
		if sf.validLen != int64(c.validLen) {
			t.Errorf("%s: validLen %d, want %d", c.name, sf.validLen, c.validLen)
		}
	}

	// A malformed line with well-formed successors is corruption, not a
	// torn tail.
	if _, err := parseSpecFile([]byte(header + "garbage}\n" + rec1)); err == nil {
		t.Fatal("mid-file corruption must fail the parse")
	}
	// Out-of-order records can only come from a buggy writer.
	if _, err := parseSpecFile([]byte(header + rec1 + rec0)); err == nil {
		t.Fatal("out-of-order records must fail the parse")
	}
}

func TestCreateRefusesExistingStore(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, Manifest{Seed: 1, Runs: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, Manifest{Seed: 1, Runs: 2}); err == nil {
		t.Fatal("Create must refuse a directory that already holds a store")
	}
}

func TestCreateOrResumeValidatesParameters(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, Manifest{Seed: 7, Runs: 50, Shard: "0/2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateOrResume(dir, true, Manifest{Seed: 7, Runs: 50, Shard: "0/2"}); err != nil {
		t.Fatalf("matching resume rejected: %v", err)
	}
	for _, bad := range []Manifest{
		{Seed: 8, Runs: 50, Shard: "0/2"},
		{Seed: 7, Runs: 51, Shard: "0/2"},
		{Seed: 7, Runs: 50, Shard: "1/2"},
		{Seed: 7, Runs: 50},
	} {
		if _, err := CreateOrResume(dir, true, bad); err == nil {
			t.Fatalf("resume with drifted parameters %+v must be rejected", bad)
		}
	}
}

func TestParseShard(t *testing.T) {
	if s, err := ParseShard(""); err != nil || s != (Shard{}) {
		t.Fatalf("empty shard: %v %v", s, err)
	}
	s, err := ParseShard("1/4")
	if err != nil || s.Index != 1 || s.Count != 4 {
		t.Fatalf("1/4: %+v %v", s, err)
	}
	if s.Owns(0) || !s.Owns(1) || !s.Owns(5) {
		t.Fatal("shard 1/4 ownership wrong")
	}
	for _, bad := range []string{"x", "2/2", "-1/2", "1/0", "1", "1/2/3"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) must fail", bad)
		}
	}
}

func TestBeginCampaignValidatesResumeHeader(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Manifest{Seed: eqSeed, Runs: eqRuns})
	if err != nil {
		t.Fatal(err)
	}
	meta := core.CampaignMeta{
		Workload:     "eq",
		Signature:    core.Config{Model: core.MustModel("bit-flip")}.Signature(),
		ProfileCount: 8,
		Runs:         eqRuns,
		Seed:         eqSeed,
	}
	sink, err := st.SpecSink("eq/BF", eqRuns, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.BeginCampaign(meta); err != nil {
		t.Fatal(err)
	}
	if err := sink.Record(core.RunRecord{Index: 0, Target: 1, Outcome: classify.Benign}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, err := st.SpecSink("eq/BF", eqRuns, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.BeginCampaign(meta); err != nil {
		t.Fatalf("identical campaign must resume: %v", err)
	}
	resumed.Close()

	drifted, err := st.SpecSink("eq/BF", eqRuns, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	bad := meta
	bad.ProfileCount = 9 // a different world: stored targets are meaningless
	if err := drifted.BeginCampaign(bad); err == nil {
		t.Fatal("resume with a drifted profile count must be rejected")
	}
	drifted.Close()
}

func TestMergeRejectsOverlapAndUnfinishedShards(t *testing.T) {
	s0, s1 := t.TempDir(), t.TempDir()
	runGridInto(t, s0, 2, Shard{Index: 0, Count: 2})
	runGridInto(t, s1, 2, Shard{Index: 0, Count: 2}) // same shard twice: overlap

	if err := Merge(filepath.Join(t.TempDir(), "m"), s0, s1); err == nil ||
		!strings.Contains(err.Error(), "more than one source") {
		t.Fatalf("overlapping shards must fail the merge, got %v", err)
	}

	// An unfinalized partial in a source must abort the merge rather than
	// bake a gap into the merged file.
	s2 := t.TempDir()
	st, err := Create(s2, Manifest{Seed: eqSeed, Runs: eqRuns, Shard: "1/2"})
	if err != nil {
		t.Fatal(err)
	}
	spec := eqSpecs()[0]
	sink, err := st.SpecSink(spec.Key, eqRuns, Shard{Index: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.Config
	cfg.Sink = sink
	cfg.RunFilter = func(idx int) bool { return sink.Include(idx) && idx < eqRuns/2 }
	if _, err := core.Campaign(cfg, spec.Workload); err != nil {
		t.Fatal(err)
	}
	sink.Close() // partial, never finalized
	if err := Merge(filepath.Join(t.TempDir(), "m2"), s0, s2); err == nil ||
		!strings.Contains(err.Error(), "unfinalized") {
		t.Fatalf("merge over an unfinished shard must fail, got %v", err)
	}
}

func TestReportFormats(t *testing.T) {
	dir := t.TempDir()
	runGridInto(t, dir, 4, Shard{})
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	text, err := Report(st, "text")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "eq/BF") || !strings.Contains(text, "eq/DW") ||
		!strings.Contains(text, "Stored campaign results (2 specs, 30 runs per cell, seed 42)") {
		t.Fatalf("text report:\n%s", text)
	}

	csv, err := Report(st, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv, "label,runs,") || !strings.Contains(csv, "eq/BF,30,") {
		t.Fatalf("csv report:\n%s", csv)
	}

	md, err := Report(st, "md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "| eq/BF | 30 |") {
		t.Fatalf("markdown report:\n%s", md)
	}

	js, err := Report(st, "json")
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal([]byte(js), &rows); err != nil {
		t.Fatalf("json report does not parse: %v\n%s", err, js)
	}
	if len(rows) != 2 || rows[0]["workload"] != "eq/BF" || rows[0]["fault_model"] != "bit-flip" {
		t.Fatalf("json rows: %v", rows)
	}

	if _, err := Report(st, "yaml"); err == nil {
		t.Fatal("unknown format must error")
	}
}

// TestReportCallsOutMissingSpecs: specs registered in the manifest but with
// no stored data (starved placements, pre-first-run crashes) appear in the
// human-readable footers instead of vanishing.
func TestReportCallsOutMissingSpecs(t *testing.T) {
	dir := t.TempDir()
	runGridInto(t, dir, 2, Shard{})
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.EnsureSpecs([]string{"eq/ghost"}); err != nil {
		t.Fatal(err)
	}
	text, err := Report(st, "text")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "no stored records") || !strings.Contains(text, "eq/ghost") {
		t.Fatalf("missing specs not called out:\n%s", text)
	}
}

// TestStoredRecordsRoundTrip: the loader reconstructs exactly what the
// in-memory campaign produced — outcomes, targets, mutations, and the
// profile count — from disk alone.
func TestStoredRecordsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	grid := runGridInto(t, dir, 4, Shard{})
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := core.Campaign(core.CampaignConfig{
		Fault: core.Config{Model: core.MustModel("bit-flip")},
		Runs:  eqRuns, Seed: eqSeed, Workers: 1,
	}, eqWorkload())
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Result("eq/BF")
	if err != nil {
		t.Fatal(err)
	}
	if res.ProfileCount != mem.ProfileCount || res.Tally != mem.Tally {
		t.Fatalf("loaded %+v vs in-memory %+v", res.Tally, mem.Tally)
	}
	if len(res.Records) != len(mem.Records) {
		t.Fatalf("%d loaded records vs %d", len(res.Records), len(mem.Records))
	}
	for i, got := range res.Records {
		want := mem.Records[i]
		if got.Index != want.Index || got.Target != want.Target ||
			got.Outcome != want.Outcome || got.Fired != want.Fired {
			t.Fatalf("record %d: loaded %+v, want %+v", i, got, want)
		}
		if got.Fired {
			if got.Mutation.Model == nil || got.Mutation.Model.Name() != want.Mutation.Model.Name() {
				t.Fatalf("record %d: model not reconstructed: %+v", i, got.Mutation)
			}
			if got.Mutation.BitPos != want.Mutation.BitPos || got.Mutation.Offset != want.Mutation.Offset {
				t.Fatalf("record %d: mutation drifted: %+v vs %+v", i, got.Mutation, want.Mutation)
			}
		}
	}
	// And the grid's own returned results came from this same disk state.
	if grid[0].Result.Tally != res.Tally {
		t.Fatal("grid result and loaded result disagree")
	}
}

// TestMergeRejectsIncompleteCoverage: finalizing is the promise that every
// run is persisted, so a merge missing a whole shard (or a spec one shard
// never started) must fail instead of renaming a gapped file.
func TestMergeRejectsIncompleteCoverage(t *testing.T) {
	s0 := t.TempDir()
	runGridInto(t, s0, 2, Shard{Index: 0, Count: 2})
	if err := Merge(filepath.Join(t.TempDir(), "m"), s0); err == nil ||
		!strings.Contains(err.Error(), "covers 15 of 30 runs") {
		t.Fatalf("merging half the shards must fail with a coverage error, got %v", err)
	}
}

// TestRunGridRejectsFinalizedSpecDrift: the finalized fast path must apply
// the same campaign-identity guard the partial-resume path enforces — a
// store answering for a different seed (or model, runs, ...) is an error,
// not a silently stale result.
func TestRunGridRejectsFinalizedSpecDrift(t *testing.T) {
	dir := t.TempDir()
	runGridInto(t, dir, 2, Shard{})
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	specs := eqSpecs()
	for i := range specs {
		specs[i].Config.Seed = eqSeed + 1
	}
	if _, err := RunGrid(&core.Engine{Jobs: 2}, st, Shard{}, specs); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("finalized specs from a drifted campaign must be rejected, got %v", err)
	}
}

// TestStoreLockExcludesConcurrentWriters: a second writer on the same store
// must fail fast instead of truncating and interleaving the first writer's
// partial files.
func TestStoreLockExcludesConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Manifest{Seed: eqSeed, Runs: eqRuns})
	if err != nil {
		t.Fatal(err)
	}
	unlock, err := st.lock()
	if err != nil {
		t.Skipf("no advisory locks on this platform: %v", err)
	}
	defer unlock()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunGrid(&core.Engine{Jobs: 2}, st2, Shard{}, eqSpecs()); err == nil ||
		!strings.Contains(err.Error(), "another process") {
		t.Fatalf("second writer must be excluded, got %v", err)
	}
}
