package metainject

import (
	"fmt"
	"math"

	"ffis/internal/hdf5"
)

// Diagnosis names the metadata fault category identified by the
// average-value detection methodology of Section V-A.
type Diagnosis int

// Diagnosis values.
const (
	// DiagHealthy: the average is 1 and the ARD matches the metadata
	// size; no correctable fault is present.
	DiagHealthy Diagnosis = iota
	// DiagExponentBias: the average scaled by a power of two.
	DiagExponentBias
	// DiagGeometry: the floating-point field layout violates the
	// IEEE-style constraints (Exponent/Mantissa Location/Size faults;
	// average typically lands between 1 and 2).
	DiagGeometry
	// DiagNormalization: the mantissa normalization lost its implied
	// bit (average collapses toward ~0.55).
	DiagNormalization
	// DiagARD: the average is 1 yet the Address of Raw Data disagrees
	// with the metadata size — the fault the average value cannot see.
	DiagARD
	// DiagUnknown: corrupted in a way this methodology cannot attribute.
	DiagUnknown
)

func (d Diagnosis) String() string {
	switch d {
	case DiagHealthy:
		return "healthy"
	case DiagExponentBias:
		return "exponent-bias"
	case DiagGeometry:
		return "float-geometry"
	case DiagNormalization:
		return "mantissa-normalization"
	case DiagARD:
		return "address-of-raw-data"
	case DiagUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("diagnosis(%d)", int(d))
	}
}

// AvgTol is the tolerance for "the average value of the input data is 1".
const AvgTol = 1e-3

// Diagnose applies the paper's detection rules to a (possibly corrupted)
// HDF5 file image containing the named dataset:
//
//  1. average ≈ 1 → check the ARD against the metadata size (ARD faults are
//     invisible to the average);
//  2. average a power of two → Exponent Bias fault;
//  3. float-geometry constraints violated → Exponent/Mantissa
//     Location/Size fault;
//  4. normalization no longer implied-MSB → Mantissa Normalization fault.
func Diagnose(raw []byte, dataset string) (Diagnosis, error) {
	f, err := hdf5.Parse(raw)
	if err != nil {
		return DiagUnknown, err
	}
	ds, err := f.Dataset(dataset)
	if err != nil {
		return DiagUnknown, err
	}
	values, err := f.ReadValues(ds)
	if err != nil {
		// The data window fell outside the file: an extreme ARD fault.
		if ds.DataOffset != f.MetadataEnd {
			return DiagARD, nil
		}
		return DiagUnknown, err
	}
	avg := mean(values)
	switch {
	case math.Abs(avg-1) <= AvgTol:
		if ds.DataOffset != f.MetadataEnd {
			return DiagARD, nil
		}
		return DiagHealthy, nil
	case ScaleIsPowerOfTwo(avg):
		return DiagExponentBias, nil
	case !ds.Spec.ConstraintsOK():
		return DiagGeometry, nil
	case ds.Spec.Norm != hdf5.NormImplied:
		return DiagNormalization, nil
	default:
		return DiagUnknown, nil
	}
}

func putU32(raw []byte, off int, v uint32) {
	raw[off] = byte(v)
	raw[off+1] = byte(v >> 8)
	raw[off+2] = byte(v >> 16)
	raw[off+3] = byte(v >> 24)
}

func putU64(raw []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		raw[off+i] = byte(v >> (8 * uint(i)))
	}
}

// Correct diagnoses raw and, when the fault is one of the correctable
// categories, patches the metadata in place (on a copy) using the paper's
// correction methodology:
//
//   - Exponent Bias: re-scale the bias by log₂ of the observed average
//     (the paper's 0x7F→0x73 example, corrected by adding 12);
//   - Geometry: enforce Mantissa Location = 0, Exponent Location =
//     Mantissa Size = precision − 1 − Exponent Size;
//   - Normalization: restore the implied-MSB mode;
//   - ARD: set the Address of Raw Data back to the metadata size.
//
// It returns the repaired image and the diagnosis. The repair is verified:
// if the corrected file still fails the average test, an error is returned.
func Correct(raw []byte, dataset string) ([]byte, Diagnosis, error) {
	diag, err := Diagnose(raw, dataset)
	if err != nil {
		return nil, diag, err
	}
	if diag == DiagHealthy {
		return raw, diag, nil
	}
	if diag == DiagUnknown {
		return nil, diag, fmt.Errorf("metainject: fault not correctable by this methodology")
	}

	f, err := hdf5.Parse(raw)
	if err != nil {
		return nil, diag, err
	}
	ds, err := f.Dataset(dataset)
	if err != nil {
		return nil, diag, err
	}
	fixed := append([]byte(nil), raw...)

	switch diag {
	case DiagExponentBias:
		values, err := f.ReadValues(ds)
		if err != nil {
			return nil, diag, err
		}
		delta := int32(math.Round(math.Log2(mean(values))))
		putU32(fixed, ds.Offsets.ExpBias, uint32(int32(ds.Spec.ExpBias)+delta))

	case DiagGeometry:
		prec := ds.Spec.BitPrecision
		expSize := ds.Spec.ExpSize
		mantSize := uint8(prec - 1 - uint16(expSize))
		fixed[ds.Offsets.MantLocation] = 0
		fixed[ds.Offsets.MantSize] = mantSize
		fixed[ds.Offsets.ExpLocation] = mantSize

	case DiagNormalization:
		fixed[ds.Offsets.ClassBitField0] = uint8(hdf5.NormImplied) << 4

	case DiagARD:
		putU64(fixed, ds.Offsets.ARD, f.MetadataEnd)
	}

	// Verify the repair.
	after, err := Diagnose(fixed, dataset)
	if err != nil {
		return nil, diag, fmt.Errorf("metainject: repair verification failed: %w", err)
	}
	if after != DiagHealthy {
		return nil, diag, fmt.Errorf("metainject: repair left diagnosis %s", after)
	}
	return fixed, diag, nil
}
