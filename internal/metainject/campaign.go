// Package metainject implements the paper's HDF5 metadata fault-injection
// study (Section IV-D): byte-by-byte corruption of the metadata block that
// the HDF5 library writes in its penultimate write call, outcome
// classification through the Nyx halo-finder post-analysis, per-field
// attribution (Table III), the directed per-field study of the six
// SDC-prone fields (Table IV), and the detection + auto-correction
// methodology of Section V-A.
package metainject

import (
	"fmt"
	"sort"
	"strings"

	"ffis/internal/apps/nyx"
	"ffis/internal/classify"
	"ffis/internal/hdf5"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// CampaignConfig controls the byte-by-byte metadata campaign.
type CampaignConfig struct {
	// Sim/Halo configure the Nyx dataset and its post-analysis.
	Sim  nyx.SimConfig
	Halo nyx.HaloConfig
	// Stride > 1 samples every Stride-th byte (for cheap test runs);
	// 1 reproduces the exhaustive per-byte study.
	Stride int
	// AllBits runs all 8 single-bit flips per byte instead of one
	// deterministic bit per byte.
	AllBits bool
	// Seed selects the per-byte bit when AllBits is false.
	Seed uint64
}

// DefaultCampaign returns the Table III configuration.
func DefaultCampaign() CampaignConfig {
	return CampaignConfig{
		Sim:    nyx.DefaultSim(),
		Halo:   nyx.DefaultHalo(),
		Stride: 1,
		Seed:   2021,
	}
}

// Case is one metadata fault-injection case.
type Case struct {
	Offset  int
	Bit     int
	Field   hdf5.FieldRange
	Outcome classify.Outcome
}

// Result aggregates a metadata campaign.
type Result struct {
	MetaSize int
	Tally    classify.Tally
	Cases    []Case
	// PerField tallies outcomes per format field name.
	PerField map[string]*classify.Tally
}

// FieldsWithOutcome lists the field names that produced the given outcome,
// sorted, as in the "Example Metadata Fields" column of Table III.
func (r *Result) FieldsWithOutcome(o classify.Outcome) []string {
	var out []string
	for name, t := range r.PerField {
		if t.Count(o) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Run executes the metadata campaign: it builds the Nyx HDF5 image once,
// then for every targeted metadata byte writes a corrupted copy of the file
// and classifies the halo-finder outcome against the golden catalog.
func Run(cfg CampaignConfig) (*Result, error) {
	if cfg.Stride <= 0 {
		cfg.Stride = 1
	}
	field := cfg.Sim.Generate()
	img, err := nyx.BuildImage(field, cfg.Sim.N)
	if err != nil {
		return nil, err
	}
	golden := nyx.FindHalos(field, cfg.Sim.N, cfg.Halo)
	if len(golden.Halos) == 0 {
		return nil, fmt.Errorf("metainject: golden run found no halos")
	}
	goldenOut := golden.Render()

	res := &Result{MetaSize: len(img.Meta), PerField: map[string]*classify.Tally{}}
	pristine := img.Bytes()
	rng := stats.NewRNG(cfg.Seed)

	for off := 0; off < len(img.Meta); off += cfg.Stride {
		bits := []int{rng.Intn(8)}
		if cfg.AllBits {
			bits = []int{0, 1, 2, 3, 4, 5, 6, 7}
		}
		fr, _ := img.Fields.At(off)
		for _, bit := range bits {
			raw := append([]byte(nil), pristine...)
			raw[off] ^= 1 << uint(bit)
			outcome := classifyImage(raw, goldenOut, cfg.Sim.N, cfg.Halo)
			res.Tally.Add(outcome)
			res.Cases = append(res.Cases, Case{Offset: off, Bit: bit, Field: fr, Outcome: outcome})
			t := res.PerField[fr.Name]
			if t == nil {
				t = &classify.Tally{}
				res.PerField[fr.Name] = t
			}
			t.Add(outcome)
		}
	}
	return res, nil
}

// classifyImage applies the paper's Nyx outcome rules to a corrupted file
// image.
func classifyImage(raw []byte, goldenOut string, n int, halo nyx.HaloConfig) classify.Outcome {
	fs := vfs.NewMemFS()
	fs.MkdirAll("/plt00000")
	if err := vfs.WriteFile(fs, nyx.OutputPath, raw); err != nil {
		return classify.Crash
	}
	cat, err := nyx.RunHaloFinder(fs, nyx.OutputPath, halo)
	if err != nil {
		return classify.Crash
	}
	out := cat.Render()
	if out == goldenOut {
		return classify.Benign
	}
	if len(cat.Halos) == 0 {
		return classify.Detected
	}
	return classify.SDC
}

// RenderTable3 renders the campaign result in the layout of Table III.
func RenderTable3(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: output classification of faulty metadata (%d cases over %d metadata bytes)\n",
		r.Tally.Total(), r.MetaSize)
	fmt.Fprintf(&b, "%-10s %10s %8s   %s\n", "fault type", "cases", "rate", "example metadata fields and bytes")
	rows := []struct {
		name string
		o    classify.Outcome
	}{
		{"SDC", classify.SDC},
		{"Benign", classify.Benign},
		{"Detected", classify.Detected},
		{"Crash", classify.Crash},
	}
	for _, row := range rows {
		fields := r.FieldsWithOutcome(row.o)
		const maxShown = 6
		if len(fields) > maxShown {
			fields = append(fields[:maxShown], "...")
		}
		fmt.Fprintf(&b, "%-10s %10d %7.1f%%   %s\n", row.name,
			r.Tally.Count(row.o), 100*r.Tally.Rate(row.o).P(), strings.Join(fields, ", "))
	}
	return b.String()
}
