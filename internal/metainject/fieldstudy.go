package metainject

import (
	"fmt"
	"math"
	"strings"

	"ffis/internal/apps/nyx"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// FieldCase is one directed corruption of a Table IV SDC-prone field.
type FieldCase struct {
	// Field is the paper's field name.
	Field string
	// Locator matches the FieldMap entry to corrupt.
	Locator string
	// ByteOffset is the byte within the field to flip.
	ByteOffset int
	// Bit is the bit to flip within that byte.
	Bit int
}

// Table4Cases returns the directed injections for the six fields the paper
// identifies as SDC-prone.
func Table4Cases() []FieldCase {
	return []FieldCase{
		// Bit 5 of the class bit field holds the high bit of the
		// mantissa normalization: implied(2) -> none(0).
		{Field: "Mantissa Normalization (bit 5)", Locator: "mantissaNormalization", ByteOffset: 0, Bit: 5},
		// Exponent location 52 -> 54: the exponent is extracted from the
		// wrong bit position.
		{Field: "Exponent Location", Locator: "exponentLocation", ByteOffset: 0, Bit: 1},
		// Mantissa location 0 -> 4.
		{Field: "Mantissa Location", Locator: "float.mantissaLocation", ByteOffset: 0, Bit: 2},
		// Mantissa size 52 -> 60: mantissa swallows exponent bits.
		{Field: "Mantissa Size", Locator: "float.mantissaSize", ByteOffset: 0, Bit: 3},
		// Exponent bias 1023 -> 1019: every value scales by 2^4.
		{Field: "Exponent Bias", Locator: "exponentBias", ByteOffset: 0, Bit: 2},
		// ARD +16 bytes: the data window shifts by two float64 elements.
		{Field: "Address of Raw Data (ARD)", Locator: "addressOfRawData", ByteOffset: 0, Bit: 4},
	}
}

// FieldEffect summarizes how a directed field corruption changed the
// post-analysis result — the metrics of Table IV.
type FieldEffect struct {
	Case FieldCase
	// Crashed reports that the corrupted file no longer parses (not an
	// SDC then).
	Crashed bool

	GoldenHalos int
	FaultyHalos int

	// MassChangedFrac is the fraction of matched halos whose mass
	// changed.
	MassChangedFrac float64
	// MassScaled is true when every matched halo's mass changed by the
	// same multiplicative factor (the Exponent Bias phenomenology).
	MassScaled bool
	MassScale  float64
	// LocChangedFrac is the fraction of matched halos whose center
	// moved by more than 10⁻⁶ cells.
	LocChangedFrac float64
	// LocUniformShift is true when all matched halos moved by the same
	// vector (the ARD phenomenology).
	LocUniformShift bool

	// AverageValue is the dataset mean read through the corrupted
	// metadata (golden value: 1).
	AverageValue float64
}

// FieldStudy performs the directed Table IV injections on a Nyx dataset.
func FieldStudy(sim nyx.SimConfig, halo nyx.HaloConfig) ([]FieldEffect, error) {
	field := sim.Generate()
	img, err := nyx.BuildImage(field, sim.N)
	if err != nil {
		return nil, err
	}
	golden := nyx.FindHalos(field, sim.N, halo)
	if len(golden.Halos) == 0 {
		return nil, fmt.Errorf("metainject: golden run found no halos")
	}
	pristine := img.Bytes()

	var out []FieldEffect
	for _, fc := range Table4Cases() {
		ranges := img.Fields.Find(fc.Locator)
		if len(ranges) != 1 {
			return nil, fmt.Errorf("metainject: locator %q matched %d fields", fc.Locator, len(ranges))
		}
		raw := append([]byte(nil), pristine...)
		raw[ranges[0].Offset+fc.ByteOffset] ^= 1 << uint(fc.Bit)

		eff := FieldEffect{Case: fc, GoldenHalos: len(golden.Halos)}
		fs := vfs.NewMemFS()
		fs.MkdirAll("/plt00000")
		if err := vfs.WriteFile(fs, nyx.OutputPath, raw); err != nil {
			return nil, err
		}
		faulty, err := nyx.RunHaloFinder(fs, nyx.OutputPath, halo)
		if err != nil {
			eff.Crashed = true
			out = append(out, eff)
			continue
		}
		eff.FaultyHalos = len(faulty.Halos)
		eff.AverageValue = faulty.Mean
		compareHalos(&eff, golden, faulty)
		out = append(out, eff)
	}
	return out, nil
}

// compareHalos matches halos by mass rank and computes the change metrics.
func compareHalos(eff *FieldEffect, golden, faulty nyx.Catalog) {
	n := len(golden.Halos)
	if len(faulty.Halos) < n {
		n = len(faulty.Halos)
	}
	if n == 0 {
		return
	}
	massChanged, locChanged := 0, 0
	scaleRef := 0.0
	scaled := true
	var shiftRef [3]float64
	uniform := true
	for i := 0; i < n; i++ {
		g, f := golden.Halos[i], faulty.Halos[i]
		if math.Abs(f.Mass-g.Mass) > 1e-9*math.Abs(g.Mass) {
			massChanged++
		}
		ratio := f.Mass / g.Mass
		if i == 0 {
			scaleRef = ratio
		} else if math.Abs(ratio-scaleRef) > 1e-6*math.Abs(scaleRef) {
			scaled = false
		}
		var shift [3]float64
		moved := false
		for k := 0; k < 3; k++ {
			shift[k] = f.Center[k] - g.Center[k]
			if math.Abs(shift[k]) > 1e-6 {
				moved = true
			}
		}
		if moved {
			locChanged++
		}
		if i == 0 {
			shiftRef = shift
		} else {
			for k := 0; k < 3; k++ {
				if math.Abs(shift[k]-shiftRef[k]) > 0.05 {
					uniform = false
				}
			}
		}
	}
	eff.MassChangedFrac = float64(massChanged) / float64(n)
	eff.MassScaled = scaled && massChanged == n
	eff.MassScale = scaleRef
	eff.LocChangedFrac = float64(locChanged) / float64(n)
	eff.LocUniformShift = uniform && locChanged == n
}

// RenderTable4 renders the field study in the layout of Table IV.
func RenderTable4(effects []FieldEffect) string {
	var b strings.Builder
	b.WriteString("Table IV: erroneous post-analysis results with faulty metadata fields causing SDC\n")
	fmt.Fprintf(&b, "%-30s %-26s %-26s %-18s %s\n",
		"field", "halo mass", "halo location", "halo number", "average value")
	for _, e := range effects {
		if e.Crashed {
			fmt.Fprintf(&b, "%-30s %s\n", e.Case.Field, "(file rejected by library: crash, not SDC)")
			continue
		}
		mass := "unchanged"
		switch {
		case e.MassScaled && e.MassChangedFrac == 1:
			mass = fmt.Sprintf("all scaled by %.4g", e.MassScale)
		case e.MassChangedFrac > 0:
			mass = fmt.Sprintf("%.0f%% changed", 100*e.MassChangedFrac)
		}
		loc := "unchanged"
		switch {
		case e.LocUniformShift && e.LocChangedFrac == 1:
			loc = "all shifted uniformly"
		case e.LocChangedFrac > 0:
			loc = fmt.Sprintf("%.0f%% changed", 100*e.LocChangedFrac)
		}
		num := fmt.Sprintf("%d -> %d", e.GoldenHalos, e.FaultyHalos)
		fmt.Fprintf(&b, "%-30s %-26s %-26s %-18s %.4g\n",
			e.Case.Field, mass, loc, num, e.AverageValue)
	}
	return b.String()
}

// ScaleIsPowerOfTwo reports whether x is 2^k for integer k ≠ 0 (within
// floating-point tolerance) — the Exponent Bias detection signature.
func ScaleIsPowerOfTwo(x float64) bool {
	if x <= 0 || math.IsInf(x, 0) || math.IsNaN(x) {
		return false
	}
	l := math.Log2(x)
	r := math.Round(l)
	return r != 0 && math.Abs(l-r) < 1e-6
}

// mean is a local convenience over stats.Mean for clarity in this package.
func mean(xs []float64) float64 { return stats.Mean(xs) }
