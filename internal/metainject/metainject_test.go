package metainject

import (
	"math"
	"strings"
	"testing"

	"ffis/internal/apps/nyx"
	"ffis/internal/classify"
	"ffis/internal/hdf5"
)

func testSim() nyx.SimConfig {
	c := nyx.DefaultSim()
	c.N = 24
	c.NumHalos = 4
	return c
}

func testCampaign() CampaignConfig {
	return CampaignConfig{
		Sim:    testSim(),
		Halo:   nyx.DefaultHalo(),
		Stride: 7, // sample the metadata cheaply in tests
		Seed:   11,
	}
}

func TestCampaignShapeMatchesTable3(t *testing.T) {
	res, err := Run(testCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Total() == 0 {
		t.Fatal("no cases ran")
	}
	benign := res.Tally.Rate(classify.Benign).P()
	crash := res.Tally.Rate(classify.Crash).P()
	sdc := res.Tally.Rate(classify.SDC).P()
	// Table III shape: benign dominates (85.7% in the paper), crash is a
	// modest minority (14.1%), SDC is rare (0.2%).
	if benign < 0.6 {
		t.Errorf("benign rate %.2f, want dominant", benign)
	}
	if crash > 0.35 {
		t.Errorf("crash rate %.2f, want minority", crash)
	}
	if sdc > 0.05 {
		t.Errorf("SDC rate %.2f, want rare", sdc)
	}
	t.Logf("metadata campaign: %s", res.Tally.String())
}

func TestCampaignCasesAttributed(t *testing.T) {
	res, err := Run(testCampaign())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cases {
		if c.Field.Name == "" {
			t.Fatalf("case at offset %d has no field attribution", c.Offset)
		}
	}
	if len(res.PerField) < 10 {
		t.Fatalf("only %d fields touched", len(res.PerField))
	}
}

func TestSignatureBytesAlwaysCrash(t *testing.T) {
	cfg := testCampaign()
	cfg.Stride = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cases {
		if c.Field.Class == hdf5.ClassSignature && c.Outcome != classify.Crash {
			t.Errorf("signature byte %d (%s) gave %s", c.Offset, c.Field.Name, c.Outcome)
		}
		if c.Field.Class == hdf5.ClassSlack && c.Outcome != classify.Benign {
			t.Errorf("slack byte %d (%s) gave %s", c.Offset, c.Field.Name, c.Outcome)
		}
	}
}

func TestRenderTable3(t *testing.T) {
	res, err := Run(testCampaign())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable3(res)
	for _, want := range []string{"Table III", "SDC", "Benign", "Crash"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFieldStudyTable4(t *testing.T) {
	effects, err := FieldStudy(testSim(), nyx.DefaultHalo())
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) != 6 {
		t.Fatalf("got %d effects, want 6", len(effects))
	}
	byField := map[string]FieldEffect{}
	for _, e := range effects {
		byField[e.Case.Field] = e
	}

	// Exponent Bias: mass of all halos scaled, locations unchanged,
	// average a power of two (Table IV column 5).
	eb := byField["Exponent Bias"]
	if eb.Crashed {
		t.Fatal("exponent bias fault crashed")
	}
	if !eb.MassScaled {
		t.Errorf("exponent bias: masses not uniformly scaled: %+v", eb)
	}
	if eb.LocChangedFrac != 0 {
		t.Errorf("exponent bias: locations changed: %+v", eb)
	}
	if !ScaleIsPowerOfTwo(eb.AverageValue) {
		t.Errorf("exponent bias: average %v not a power of two", eb.AverageValue)
	}

	// ARD: average unchanged, locations shifted.
	ard := byField["Address of Raw Data (ARD)"]
	if ard.Crashed {
		t.Skip("ARD shift fell outside the file in this geometry")
	}
	if math.Abs(ard.AverageValue-1) > 0.01 {
		t.Errorf("ARD: average %v, want ~1 (invisible to the detector)", ard.AverageValue)
	}
	if ard.LocChangedFrac == 0 {
		t.Errorf("ARD: locations unchanged: %+v", ard)
	}

	// Mantissa Normalization: average collapses below 1.
	mn := byField["Mantissa Normalization (bit 5)"]
	if mn.Crashed {
		t.Fatal("normalization fault crashed")
	}
	if mn.AverageValue >= 0.9 || mn.AverageValue <= 0.2 {
		t.Errorf("normalization: average %v, want ~0.5", mn.AverageValue)
	}
}

func TestRenderTable4(t *testing.T) {
	effects, err := FieldStudy(testSim(), nyx.DefaultHalo())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable4(effects)
	for _, want := range []string{"Table IV", "Exponent Bias", "ARD"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func buildRaw(t *testing.T) ([]byte, *hdf5.FileImage) {
	t.Helper()
	sim := testSim()
	field := sim.Generate()
	img, err := nyx.BuildImage(field, sim.N)
	if err != nil {
		t.Fatal(err)
	}
	return img.Bytes(), img
}

func corruptField(t *testing.T, raw []byte, img *hdf5.FileImage, locator string, byteOff int, bit int) []byte {
	t.Helper()
	rs := img.Fields.Find(locator)
	if len(rs) != 1 {
		t.Fatalf("locator %q matched %d", locator, len(rs))
	}
	out := append([]byte(nil), raw...)
	out[rs[0].Offset+byteOff] ^= 1 << uint(bit)
	return out
}

func TestDiagnoseHealthy(t *testing.T) {
	raw, _ := buildRaw(t)
	diag, err := Diagnose(raw, nyx.DatasetName)
	if err != nil || diag != DiagHealthy {
		t.Fatalf("diag = %s err = %v", diag, err)
	}
}

func TestDiagnoseAndCorrectExponentBias(t *testing.T) {
	raw, img := buildRaw(t)
	bad := corruptField(t, raw, img, "exponentBias", 0, 2)
	diag, err := Diagnose(bad, nyx.DatasetName)
	if err != nil || diag != DiagExponentBias {
		t.Fatalf("diag = %s err = %v", diag, err)
	}
	fixed, diag2, err := Correct(bad, nyx.DatasetName)
	if err != nil {
		t.Fatal(err)
	}
	if diag2 != DiagExponentBias {
		t.Fatalf("correct diag = %s", diag2)
	}
	if after, _ := Diagnose(fixed, nyx.DatasetName); after != DiagHealthy {
		t.Fatalf("post-repair diagnosis %s", after)
	}
}

func TestDiagnoseAndCorrectGeometry(t *testing.T) {
	raw, img := buildRaw(t)
	for _, locator := range []string{"float.mantissaSize", "float.mantissaLocation", "exponentLocation"} {
		bad := corruptField(t, raw, img, locator, 0, 2)
		diag, err := Diagnose(bad, nyx.DatasetName)
		if err != nil {
			t.Fatalf("%s: %v", locator, err)
		}
		if diag != DiagGeometry {
			t.Errorf("%s: diag = %s, want geometry", locator, diag)
			continue
		}
		fixed, _, err := Correct(bad, nyx.DatasetName)
		if err != nil {
			t.Errorf("%s: correct: %v", locator, err)
			continue
		}
		if after, _ := Diagnose(fixed, nyx.DatasetName); after != DiagHealthy {
			t.Errorf("%s: post-repair %s", locator, after)
		}
	}
}

func TestDiagnoseAndCorrectNormalization(t *testing.T) {
	raw, img := buildRaw(t)
	bad := corruptField(t, raw, img, "mantissaNormalization", 0, 5)
	diag, err := Diagnose(bad, nyx.DatasetName)
	if err != nil || diag != DiagNormalization {
		t.Fatalf("diag = %s err = %v", diag, err)
	}
	fixed, _, err := Correct(bad, nyx.DatasetName)
	if err != nil {
		t.Fatal(err)
	}
	if after, _ := Diagnose(fixed, nyx.DatasetName); after != DiagHealthy {
		t.Fatalf("post-repair diagnosis %s", after)
	}
}

func TestDiagnoseAndCorrectARD(t *testing.T) {
	raw, img := buildRaw(t)
	bad := corruptField(t, raw, img, "addressOfRawData", 0, 6) // ±64 bytes
	diag, err := Diagnose(bad, nyx.DatasetName)
	if err != nil || diag != DiagARD {
		t.Fatalf("diag = %s err = %v", diag, err)
	}
	fixed, _, err := Correct(bad, nyx.DatasetName)
	if err != nil {
		t.Fatal(err)
	}
	// The repair must restore bit-exact reads.
	f, err := hdf5.Parse(fixed)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := f.Dataset(nyx.DatasetName)
	if ds.DataOffset != f.MetadataEnd {
		t.Fatalf("ARD %d != metadata end %d after repair", ds.DataOffset, f.MetadataEnd)
	}
}

func TestCorrectRejectsUnknown(t *testing.T) {
	raw, _ := buildRaw(t)
	// Corrupt actual data (not metadata): average shifts arbitrarily,
	// no constraint violated — uncorrectable by this methodology.
	bad := append([]byte(nil), raw...)
	f, _ := hdf5.Parse(raw)
	start := int(f.Datasets[0].DataOffset)
	for i := 0; i < 2048; i++ {
		bad[start+i] = 0x41
	}
	if _, _, err := Correct(bad, nyx.DatasetName); err == nil {
		t.Fatal("uncorrectable corruption corrected")
	}
}

func TestScaleIsPowerOfTwo(t *testing.T) {
	for _, x := range []float64{2, 4, 0.5, 4096, 1.0 / 4096} {
		if !ScaleIsPowerOfTwo(x) {
			t.Errorf("%v should be a power of two", x)
		}
	}
	for _, x := range []float64{1, 3, 0.55, 1.04, -2, 0, math.NaN(), math.Inf(1)} {
		if ScaleIsPowerOfTwo(x) {
			t.Errorf("%v should not be a detectable power of two", x)
		}
	}
}

func TestDiagnosisStrings(t *testing.T) {
	for _, d := range []Diagnosis{DiagHealthy, DiagExponentBias, DiagGeometry, DiagNormalization, DiagARD, DiagUnknown} {
		if d.String() == "" || strings.HasPrefix(d.String(), "diagnosis(") {
			t.Errorf("diagnosis %d has bad string", int(d))
		}
	}
}
