// Package stats provides the deterministic random-number generation,
// descriptive statistics, confidence intervals, and histogram utilities used
// throughout the FFIS reproduction.
//
// Everything in this package is seedable and allocation-light so that fault
// injection campaigns are exactly reproducible: the same seed yields the same
// fault targets, the same synthetic datasets, and therefore the same outcome
// classification, run after run.
package stats

import "math"

// RNG is a small, fast, seedable pseudo-random generator
// (xoshiro256** seeded via SplitMix64). It is NOT safe for concurrent use;
// campaigns hand each worker its own RNG derived with Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given value. Any seed, including
// zero, produces a well-mixed state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 expansion of the seed into the xoshiro state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from the current one. It is used to
// give each campaign run its own stream so that runs can execute in parallel
// yet remain individually reproducible.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Same stream, same draws as Int64n for any shared bound; the result
	// fits back into int because the bound did.
	return int(r.Int64n(int64(n)))
}

// Int64n returns a uniform int64 in [0, n). It panics if n <= 0. Unlike
// Intn, the bound is never squeezed through the platform int — campaign
// target draws over dynamic-instance counts beyond math.MaxInt32 stay
// exact on 32-bit platforms.
func (r *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int64n called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int64(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
