package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGZeroSeedIsUsable(t *testing.T) {
	r := NewRNG(0)
	zeroes := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeroes++
		}
	}
	if zeroes > 1 {
		t.Fatalf("zero seed generator emitted %d zero words", zeroes)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(99)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d has %d hits, want about %d", i, c, want)
		}
	}
}

func TestInt64nBounds(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int64{1, 2, 3, 10, 1000, 1 << 30, 1 << 40, math.MaxInt64} {
		for i := 0; i < 200; i++ {
			v := r.Int64n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int64n(%d) = %d out of range", n, v)
			}
		}
	}
}

// TestInt64nMatchesIntn pins the campaign-reproducibility contract: for any
// bound both methods accept, the same stream yields the same draws, so
// switching the target-selection path from Intn to Int64n cannot perturb a
// single historical campaign.
func TestInt64nMatchesIntn(t *testing.T) {
	for _, n := range []int{1, 2, 7, 4096, 1<<31 - 1} {
		a, b := NewRNG(123), NewRNG(123)
		for i := 0; i < 500; i++ {
			x, y := a.Intn(n), b.Int64n(int64(n))
			if int64(x) != y {
				t.Fatalf("n=%d step %d: Intn=%d Int64n=%d", n, i, x, y)
			}
		}
	}
}

// TestInt64nBeyondMaxInt32 is the regression test for the campaign target
// draw: profile counts above math.MaxInt32 must reach the full range instead
// of being truncated through a 32-bit int (the old rng.Intn(int(count))
// path). The bound is chosen so roughly half the draws exceed MaxInt32.
func TestInt64nBeyondMaxInt32(t *testing.T) {
	r := NewRNG(17)
	n := int64(math.MaxInt32) * 2
	above := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		v := r.Int64n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int64n(%d) = %d out of range", n, v)
		}
		if v > math.MaxInt32 {
			above++
		}
	}
	if above < trials/4 || above > trials*3/4 {
		t.Fatalf("only %d/%d draws above MaxInt32; high half unreachable?", above, trials)
	}
}

func TestInt64nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int64n(0) did not panic")
		}
	}()
	NewRNG(1).Int64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want about 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("exponential variate %v < 0", x)
		}
		sum += x
	}
	if m := sum / n; math.Abs(m-1) > 0.02 {
		t.Errorf("exponential mean = %v, want about 1", m)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed uint64) bool {
		n := int(seed%64) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	_ = r
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(21)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children produced %d/100 identical outputs", same)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := NewRNG(31)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, x := range xs {
		sum += x
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: sum=%d", sum)
	}
}
