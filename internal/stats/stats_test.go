package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasics(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestMeanKahanStability(t *testing.T) {
	// 1e6 copies of 1.0 plus alternating +/- noise should average to 1
	// within tight tolerance; naive summation would already drift.
	xs := make([]float64, 1_000_000)
	for i := range xs {
		xs[i] = 1.0
		if i%2 == 0 {
			xs[i] += 1e-9
		} else {
			xs[i] -= 1e-9
		}
	}
	if m := Mean(xs); !almostEq(m, 1, 1e-12) {
		t.Fatalf("mean drifted: %v", m)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if s := StdDev(xs); !almostEq(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
	if Variance([]float64{1}) != 0 {
		t.Error("variance of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
}

func TestMinMaxPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MinMax(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q25 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("quantile of empty should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestProportionPointEstimate(t *testing.T) {
	p := Proportion{Successes: 37, Trials: 1000}
	if !almostEq(p.P(), 0.037, 1e-12) {
		t.Fatalf("P = %v", p.P())
	}
	if (Proportion{}).P() != 0 {
		t.Fatal("empty proportion should be 0")
	}
}

func TestWilson95Contains(t *testing.T) {
	p := Proportion{Successes: 500, Trials: 1000}
	lo, hi := p.Wilson95()
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%v,%v] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.07 {
		t.Fatalf("interval too wide for n=1000: %v", hi-lo)
	}
}

func TestWilson95Extremes(t *testing.T) {
	// All-benign cells (e.g. Nyx shorn write) must still give a sane CI.
	p := Proportion{Successes: 0, Trials: 1000}
	lo, hi := p.Wilson95()
	if lo > 1e-15 {
		t.Errorf("lo = %v, want ~0", lo)
	}
	if hi <= 0 || hi > 0.01 {
		t.Errorf("hi = %v, want small positive", hi)
	}
	p = Proportion{Successes: 1000, Trials: 1000}
	lo, hi = p.Wilson95()
	if hi != 1 {
		t.Errorf("hi = %v, want 1", hi)
	}
	if lo >= 1 || lo < 0.99 {
		t.Errorf("lo = %v, want slightly below 1", lo)
	}
}

func TestErrorBarMatchesPaperScale(t *testing.T) {
	// The paper: 1000 runs leaves a 1%~2% error bar on average for 95% CI.
	// Worst case (p=0.5) should be ~3.1%, typical rates land in 1-2%.
	p := Proportion{Successes: 100, Trials: 1000}
	if eb := p.ErrorBar95(); eb < 0.015 || eb > 0.025 {
		t.Fatalf("error bar at 10%% rate, n=1000: %v, want ~1.9%%", eb)
	}
}

func TestProportionQuickProperties(t *testing.T) {
	f := func(s, n uint16) bool {
		trials := int(n%2000) + 1
		succ := int(s) % (trials + 1)
		p := Proportion{Successes: succ, Trials: trials}
		lo, hi := p.Wilson95()
		return lo >= 0 && hi <= 1 && lo <= hi && p.P() >= lo-1e-12 && p.P() <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStdErrShrinksWithN(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := append(append([]float64{}, a...), a...)
	if StdErr(b) >= StdErr(a) {
		t.Fatal("standard error should shrink as n grows")
	}
}
