package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddAll([]float64{0, 0.5, 1, 5, 9.99})
	if h.Counts[0] != 2 {
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-0.1)
	h.Add(1.0) // hi is exclusive
	h.Add(2)
	h.Add(math.NaN())
	if h.Under != 1 {
		t.Errorf("under = %d", h.Under)
	}
	if h.Over != 3 {
		t.Errorf("over = %d", h.Over)
	}
	if h.Total() != 4 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramNeverLosesSamples(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		h := NewHistogram(-1, 1, 8)
		count := int(n)
		for i := 0; i < count; i++ {
			h.Add(r.NormFloat64() * 3)
		}
		inBins := h.Under + h.Over
		for _, c := range h.Counts {
			inBins += c
		}
		return inBins == count && h.Total() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramEdgeRounding(t *testing.T) {
	// A value infinitesimally below Hi must land in the last bin, never
	// index out of range.
	h := NewHistogram(0, 1, 3)
	h.Add(math.Nextafter(1, 0))
	if h.Counts[2] != 1 {
		t.Fatalf("edge value landed in %v", h.Counts)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(2, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestL1Distance(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	a.AddAll([]float64{1, 1, 5})
	b.AddAll([]float64{1, 5, 5})
	if d := a.L1Distance(b); d != 2 {
		t.Fatalf("L1 = %d, want 2", d)
	}
	if d := a.L1Distance(a); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

func TestL1DistanceGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 1, 2).L1Distance(NewHistogram(0, 1, 3))
}

func TestBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if c := h.BinCenter(0); !almostEq(c, 0.5, 1e-12) {
		t.Errorf("center0 = %v", c)
	}
	if c := h.BinCenter(9); !almostEq(c, 9.5, 1e-12) {
		t.Errorf("center9 = %v", c)
	}
}

func TestRenderShowsBars(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.AddAll([]float64{0.1, 0.2, 0.3, 1.5})
	h.Add(-5)
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Fatal("render produced no bars")
	}
	if !strings.Contains(out, "below range") {
		t.Fatal("render did not mention underflow")
	}
}
