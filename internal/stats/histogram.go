package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width binned histogram over [Lo, Hi). Values outside
// the range are accumulated in the Under/Over counters so that no sample is
// silently lost — important when diffing halo-mass distributions between a
// golden run and a corrupted run (Figure 8), where corruption can push
// masses far outside the golden range.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram returns a histogram with bins equal-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case math.IsNaN(x):
		h.Over++ // NaNs count as out-of-range high; they must not vanish.
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // guard against float rounding at the edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// L1Distance returns the sum of absolute per-bin count differences between
// two histograms with identical geometry; it panics on mismatched geometry.
// Used to quantify how far a faulty mass distribution drifted (Figure 8).
func (h *Histogram) L1Distance(o *Histogram) int {
	if len(h.Counts) != len(o.Counts) || h.Lo != o.Lo || h.Hi != o.Hi {
		panic("stats: L1Distance on histograms with different geometry")
	}
	d := abs(h.Under-o.Under) + abs(h.Over-o.Over)
	for i := range h.Counts {
		d += abs(h.Counts[i] - o.Counts[i])
	}
	return d
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Render draws a textual bar chart of the histogram, one row per bin,
// scaled so the largest bin spans width characters. It is used by
// cmd/experiments to reproduce the figures as terminal art.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	max := 1
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/max)
		fmt.Fprintf(&b, "%12.4g | %-*s %d\n", h.BinCenter(i), width, bar, c)
	}
	if h.Under > 0 {
		fmt.Fprintf(&b, "%12s | %d below range\n", "<", h.Under)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "%12s | %d above range\n", ">", h.Over)
	}
	return b.String()
}
