package stats

import "fmt"

// StopRule is a sequential stopping rule for statistical fault-injection
// campaigns: keep running until every outcome class's 95% interval is tight
// enough, then stop spending runs. The paper fixes 1,000 runs per cell to
// reach its "1%~2% error bars at 95% confidence"; a rule with
// TargetHalfWidth in that range reproduces the paper's precision while
// letting low-variance cells (all-benign Nyx shorn writes, say) stop after
// MinRuns instead of burning the full budget.
//
// Determinism contract: the rule is evaluated only at fixed index barriers
// (MinRuns, MinRuns+CheckEvery, ...), and each evaluation sees the complete
// outcome tally of the run-index prefix [0, barrier). Because run outcomes
// derive purely from (seed, index), the stopping index is a function of the
// campaign parameters alone — independent of worker count, pool scheduling,
// and completion order — so resumed and re-executed campaigns agree on
// exactly which runs exist.
type StopRule struct {
	// MaxRuns caps the campaign; 0 means "the campaign's fixed budget".
	MaxRuns int
	// TargetHalfWidth is the Wilson 95% half-width every outcome class must
	// reach before the rule stops the campaign. Required (> 0).
	TargetHalfWidth float64
	// MinRuns is the first barrier: no decision is made before this many
	// runs. 0 selects min(100, MaxRuns) — below ~100 runs the intervals are
	// dominated by the prior, not the data.
	MinRuns int
	// CheckEvery is the barrier spacing after MinRuns. 0 selects 50.
	CheckEvery int
}

// Default barrier parameters, chosen so a paper-scale 1,000-run budget is
// probed at 100, 150, 200, ... — cheap relative to run cost, fine-grained
// relative to how fast Wilson half-widths shrink (~1/sqrt(n)).
const (
	defaultMinRuns    = 100
	defaultCheckEvery = 50
)

// Normalize validates the rule and fills defaults against the campaign's
// fixed run budget. The returned rule has every field concrete, which is
// the form persisted in record headers so resumed campaigns re-evaluate
// identical barriers.
func (r StopRule) Normalize(budget int) (StopRule, error) {
	if r.TargetHalfWidth <= 0 || r.TargetHalfWidth >= 1 {
		return StopRule{}, fmt.Errorf("stats: stop rule needs 0 < TargetHalfWidth < 1, got %v", r.TargetHalfWidth)
	}
	if r.MaxRuns <= 0 {
		r.MaxRuns = budget
	}
	if r.MaxRuns <= 0 || r.MaxRuns > budget {
		return StopRule{}, fmt.Errorf("stats: stop rule MaxRuns %d outside campaign budget %d", r.MaxRuns, budget)
	}
	if r.MinRuns < 0 || r.CheckEvery < 0 {
		return StopRule{}, fmt.Errorf("stats: stop rule has negative MinRuns or CheckEvery")
	}
	if r.MinRuns == 0 {
		r.MinRuns = defaultMinRuns
	}
	if r.MinRuns > r.MaxRuns {
		r.MinRuns = r.MaxRuns
	}
	if r.CheckEvery == 0 {
		r.CheckEvery = defaultCheckEvery
	}
	return r, nil
}

// NextBarrier returns the first decision barrier strictly greater than n:
// MinRuns, then MinRuns+CheckEvery, ..., capped at MaxRuns. Once n has
// reached MaxRuns there are no further barriers and MaxRuns is returned.
// The rule must be normalized.
func (r StopRule) NextBarrier(n int) int {
	if n < r.MinRuns {
		return r.MinRuns
	}
	if n >= r.MaxRuns {
		return r.MaxRuns
	}
	// First multiple of CheckEvery past n, anchored at MinRuns.
	steps := (n-r.MinRuns)/r.CheckEvery + 1
	b := r.MinRuns + steps*r.CheckEvery
	if b > r.MaxRuns {
		b = r.MaxRuns
	}
	return b
}

// Satisfied reports whether a complete prefix tally meets the rule: trials
// have reached MinRuns and every outcome class's Wilson 95% half-width is at
// or under TargetHalfWidth. counts holds the per-class successes; trials is
// their total (the prefix length). The rule must be normalized.
func (r StopRule) Satisfied(counts []int, trials int) bool {
	if trials < r.MinRuns {
		return false
	}
	for _, c := range counts {
		p := Proportion{Successes: c, Trials: trials}
		if p.WilsonHalfWidth95() > r.TargetHalfWidth {
			return false
		}
	}
	return true
}

// String renders the rule for logs and report titles.
func (r StopRule) String() string {
	return fmt.Sprintf("hw<=%.3g min=%d max=%d every=%d",
		r.TargetHalfWidth, r.MinRuns, r.MaxRuns, r.CheckEvery)
}
