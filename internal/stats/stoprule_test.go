package stats

import (
	"math"
	"testing"
)

func TestStopRuleNormalizeDefaults(t *testing.T) {
	r, err := StopRule{TargetHalfWidth: 0.02}.Normalize(1000)
	if err != nil {
		t.Fatal(err)
	}
	want := StopRule{MaxRuns: 1000, TargetHalfWidth: 0.02, MinRuns: 100, CheckEvery: 50}
	if r != want {
		t.Fatalf("normalized = %+v, want %+v", r, want)
	}
	// A tiny budget clamps MinRuns down to the budget itself.
	r, err = StopRule{TargetHalfWidth: 0.1}.Normalize(30)
	if err != nil {
		t.Fatal(err)
	}
	if r.MinRuns != 30 || r.MaxRuns != 30 {
		t.Fatalf("tiny budget: %+v", r)
	}
}

func TestStopRuleNormalizeRejects(t *testing.T) {
	cases := []struct {
		rule   StopRule
		budget int
	}{
		{StopRule{}, 1000},                                    // no target
		{StopRule{TargetHalfWidth: 1.5}, 1000},                // target >= 1
		{StopRule{TargetHalfWidth: 0.02, MaxRuns: 2000}, 100}, // cap above budget
		{StopRule{TargetHalfWidth: 0.02, MinRuns: -1}, 1000},
		{StopRule{TargetHalfWidth: 0.02}, 0}, // no budget at all
	}
	for i, c := range cases {
		if _, err := c.rule.Normalize(c.budget); err == nil {
			t.Errorf("case %d: %+v budget %d: want error", i, c.rule, c.budget)
		}
	}
}

func TestStopRuleBarriers(t *testing.T) {
	r, err := StopRule{TargetHalfWidth: 0.02, MinRuns: 100, CheckEvery: 50}.Normalize(1000)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for n := 0; n < r.MaxRuns; {
		n = r.NextBarrier(n)
		got = append(got, n)
		if len(got) > 100 {
			t.Fatal("barrier sequence does not reach MaxRuns")
		}
	}
	if got[0] != 100 || got[1] != 150 || got[len(got)-1] != 1000 {
		t.Fatalf("barriers = %v", got)
	}
	// A budget that is not a multiple of the spacing still ends exactly at
	// MaxRuns, never beyond.
	r, _ = StopRule{TargetHalfWidth: 0.05, MinRuns: 10, CheckEvery: 40}.Normalize(75)
	seq := []int{}
	for n := 0; n < r.MaxRuns; {
		n = r.NextBarrier(n)
		seq = append(seq, n)
	}
	if want := []int{10, 50, 75}; len(seq) != 3 || seq[0] != want[0] || seq[1] != want[1] || seq[2] != want[2] {
		t.Fatalf("barriers = %v, want %v", seq, want)
	}
	if r.NextBarrier(75) != 75 {
		t.Fatal("NextBarrier past MaxRuns must stay at MaxRuns")
	}
}

// simulateStop plays a Bernoulli outcome stream against the rule exactly the
// way the campaign runner does: evaluate the complete prefix tally at each
// barrier, stop at the first satisfied one or at MaxRuns.
func simulateStop(r StopRule, rng *RNG, p float64) int {
	var hits, n int
	for {
		b := r.NextBarrier(n)
		for ; n < b; n++ {
			if rng.Float64() < p {
				hits++
			}
		}
		if r.Satisfied([]int{hits, n - hits}, n) || b >= r.MaxRuns {
			return n
		}
	}
}

// TestStopRuleBounds is the satellite's guardrail: over seeded simulated
// cells the rule never halts before MinRuns or after MaxRuns, and every
// stopping point is one of the rule's barriers.
func TestStopRuleBounds(t *testing.T) {
	rule, err := StopRule{TargetHalfWidth: 0.04, MinRuns: 60, CheckEvery: 30}.Normalize(600)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(20260808)
	for _, p := range []float64{0.001, 0.01, 0.1, 0.5} {
		for trial := 0; trial < 200; trial++ {
			stop := simulateStop(rule, rng, p)
			if stop < rule.MinRuns {
				t.Fatalf("p=%v: stopped at %d, before MinRuns %d", p, stop, rule.MinRuns)
			}
			if stop > rule.MaxRuns {
				t.Fatalf("p=%v: stopped at %d, after MaxRuns %d", p, stop, rule.MaxRuns)
			}
			if stop != rule.MaxRuns && (stop-rule.MinRuns)%rule.CheckEvery != 0 {
				t.Fatalf("p=%v: stop %d is not a barrier", p, stop)
			}
		}
	}
	// Sanity: an easy cell (p=0.001 against a 4% target) stops at the first
	// barrier, a hard one (p=0.5) runs to the cap.
	if stop := simulateStop(rule, NewRNG(1), 0.001); stop != rule.MinRuns {
		t.Errorf("easy cell stopped at %d, want MinRuns %d", stop, rule.MinRuns)
	}
	if stop := simulateStop(rule, NewRNG(2), 0.5); stop != rule.MaxRuns {
		t.Errorf("hard cell stopped at %d, want MaxRuns %d", stop, rule.MaxRuns)
	}
}

// TestWilson95Coverage checks empirical coverage on seeded Bernoulli cells:
// the Wilson 95% interval must contain the true p in at least 93% of
// simulated campaigns, including the rare-event rates where the normal
// approximation falls apart. n=2000 sits on a good tooth of the coverage
// oscillation for the p=0.001 cell (exact coverage 94.7%; the paper's
// n=1000 is a bad tooth at 92.0% — Wilson coverage is not monotone in n).
func TestWilson95Coverage(t *testing.T) {
	const (
		n      = 2000
		cells  = 1500
		minCov = 0.93
	)
	rng := NewRNG(42)
	for _, p := range []float64{0.001, 0.01, 0.1, 0.5} {
		covered := 0
		for c := 0; c < cells; c++ {
			k := 0
			for i := 0; i < n; i++ {
				if rng.Float64() < p {
					k++
				}
			}
			lo, hi := (Proportion{Successes: k, Trials: n}).Wilson95()
			if lo <= p && p <= hi {
				covered++
			}
		}
		if cov := float64(covered) / cells; cov < minCov {
			t.Errorf("p=%v: Wilson95 coverage %.3f < %.2f", p, cov, minCov)
		}
	}
}

func TestClopperPearsonProperties(t *testing.T) {
	// Exactness check against the closed forms at the extremes:
	// k=0: hi = 1 - (alpha/2)^(1/n); k=n: lo = (alpha/2)^(1/n).
	n := 1000
	_, hi := (Proportion{Successes: 0, Trials: n}).ClopperPearson95()
	wantHi := 1 - math.Pow(0.025, 1/float64(n))
	if math.Abs(hi-wantHi) > 1e-9 {
		t.Errorf("k=0 hi = %v, want %v", hi, wantHi)
	}
	lo, hiFull := (Proportion{Successes: n, Trials: n}).ClopperPearson95()
	if hiFull != 1 {
		t.Errorf("k=n hi = %v, want 1", hiFull)
	}
	wantLo := math.Pow(0.025, 1/float64(n))
	if math.Abs(lo-wantLo) > 1e-9 {
		t.Errorf("k=n lo = %v, want %v", lo, wantLo)
	}
	// Clopper-Pearson always contains the point estimate, and away from the
	// boundary (where Wilson's [0,1] clamp can make it the shorter one) it
	// is the wider, conservative interval.
	for _, k := range []int{0, 1, 37, 500, 999, 1000} {
		pr := Proportion{Successes: k, Trials: n}
		cpLo, cpHi := pr.ClopperPearson95()
		wLo, wHi := pr.Wilson95()
		if cpLo > pr.P()+1e-12 || cpHi < pr.P()-1e-12 {
			t.Errorf("k=%d: CP [%v,%v] excludes point %v", k, cpLo, cpHi, pr.P())
		}
		if k > 0 && k < n && (cpHi-cpLo)+1e-9 < (wHi-wLo) {
			t.Errorf("k=%d: CP narrower than Wilson: %v < %v", k, cpHi-cpLo, wHi-wLo)
		}
	}
	if lo, hi := (Proportion{}).ClopperPearson95(); lo != 0 || hi != 1 {
		t.Errorf("empty proportion: [%v,%v], want [0,1]", lo, hi)
	}
}

func TestProportionStringRendersWilson(t *testing.T) {
	// The all-benign cell: the normal bar would read "0.0% ±0.0%", claiming
	// impossible certainty; the Wilson rendering keeps a visible upper edge.
	s := Proportion{Successes: 0, Trials: 1000}.String()
	if s != "0.0% [0.0%, 0.4%]" {
		t.Fatalf("String() = %q", s)
	}
	if got := (Proportion{Successes: 500, Trials: 1000}).String(); got != "50.0% [46.9%, 53.1%]" {
		t.Fatalf("String() = %q", got)
	}
}

func TestWilsonHalfWidthShrinks(t *testing.T) {
	a := Proportion{Successes: 10, Trials: 100}.WilsonHalfWidth95()
	b := Proportion{Successes: 100, Trials: 1000}.WilsonHalfWidth95()
	if b >= a {
		t.Fatalf("half-width should shrink with n: %v -> %v", a, b)
	}
	if (Proportion{}).WilsonHalfWidth95() != 1 {
		t.Fatal("empty proportion should report maximal half-width")
	}
}
