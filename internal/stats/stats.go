package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Kahan summation: campaign datasets can mix magnitudes wildly after
	// fault injection, and the average-value detector needs ~1e-3 relative
	// accuracy on grids of 10^6 cells.
	var sum, c float64
	for _, x := range xs {
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 when len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean of xs.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// MinMax returns the minimum and maximum of xs. It panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// Proportion is an observed binomial proportion with its sample size,
// e.g. "37 SDCs out of 1000 injection runs".
type Proportion struct {
	Successes int
	Trials    int
}

// P returns the point estimate of the proportion (0 when Trials == 0).
func (p Proportion) P() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// const z95 is the two-sided 95% normal quantile used by the paper's
// "1%~2% error bar ... for 95% confidence interval" statement.
const z95 = 1.959963984540054

// Wilson95 returns the Wilson score 95% confidence interval for the
// proportion. Unlike the normal approximation it behaves sensibly at the
// extremes (0% and 100% observed rates occur routinely in Figure 7 cells,
// e.g. Nyx shorn writes are all benign).
func (p Proportion) Wilson95() (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 0
	}
	n := float64(p.Trials)
	phat := p.P()
	z := z95
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// WilsonHalfWidth95 returns half the width of the Wilson 95% interval: the
// "±" figure adaptive stopping compares against StopRule.TargetHalfWidth.
// Unlike ErrorBar95 it never collapses to zero at 0%/100% observed rates,
// so an all-benign cell cannot satisfy a stopping rule spuriously early.
func (p Proportion) WilsonHalfWidth95() float64 {
	if p.Trials == 0 {
		return 1
	}
	lo, hi := p.Wilson95()
	return (hi - lo) / 2
}

// ErrorBar95 returns the half-width of the normal-approximation 95% CI,
// the quantity the paper quotes as the "error bar" of a campaign.
func (p Proportion) ErrorBar95() float64 {
	if p.Trials == 0 {
		return 0
	}
	phat := p.P()
	return z95 * math.Sqrt(phat*(1-phat)/float64(p.Trials))
}

// ClopperPearson95 returns the exact (conservative) 95% confidence interval
// for the proportion, from the beta-distribution inversion. It is the
// no-surprises companion to Wilson95 for the extreme cells: guaranteed
// >= 95% coverage at every p and n, at the cost of being wider.
func (p Proportion) ClopperPearson95() (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	const alpha = 0.05
	k, n := float64(p.Successes), float64(p.Trials)
	lo, hi = 0, 1
	if p.Successes > 0 {
		lo = betaQuantile(alpha/2, k, n-k+1)
	}
	if p.Successes < p.Trials {
		hi = betaQuantile(1-alpha/2, k+1, n-k)
	}
	return lo, hi
}

// betaQuantile inverts the regularized incomplete beta function I_x(a, b)
// by bisection: the smallest x with I_x(a, b) >= q. Fifty halvings pin x to
// ~1e-15, far below any campaign-relevant precision.
func betaQuantile(q, a, b float64) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if regIncBeta(a, b, mid) < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// with the standard continued-fraction expansion (Numerical Recipes 6.4),
// using the symmetry relation to keep the fraction in its fast-converging
// region.
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction of the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// String renders the proportion as a percentage with its Wilson 95%
// interval. The normal-approximation bar that used to render here is
// misleading at the 0%/100% cells the Wilson docs call out (it collapses to
// ±0.0%); ErrorBar95 stays available for the paper-parity report column.
func (p Proportion) String() string {
	lo, hi := p.Wilson95()
	return fmt.Sprintf("%.1f%% [%.1f%%, %.1f%%]", 100*p.P(), 100*lo, 100*hi)
}
