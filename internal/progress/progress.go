// Package progress renders the core run-lifecycle event stream for
// humans and machines: a line renderer shared by every CLI (cmd/ffis,
// cmd/experiments, cmd/ffis-worker -progress) and a JSONL trace writer
// (-trace out.jsonl). Both are EventBus subscribers, so a slow terminal
// or a stalled trace file can never stall the run pool — the bus drops
// excess RunDone events for the slow subscriber and counts them.
package progress

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ffis/internal/classify"
	"ffis/internal/core"
)

// Wire builds the standard CLI event wiring: the shared line renderer to
// progressTo (nil disables, cmd flag -progress) and a JSONL event trace
// to the file at tracePath ("" disables, cmd flag -trace). The returned
// bus is nil when both are disabled — event emission stays off entirely.
// Call finish once the campaigns are done: it flushes the subscribers,
// reports the trace's dropped-event count to errTo, and closes the file.
func Wire(progressTo io.Writer, tracePath string, errTo io.Writer) (bus *core.EventBus, finish func() error, err error) {
	if progressTo == nil && tracePath == "" {
		return nil, func() error { return nil }, nil
	}
	bus = core.NewEventBus()
	if progressTo != nil {
		bus.Subscribe(0, Renderer(progressTo))
	}
	var f *os.File
	var traceSub *core.Subscription
	if tracePath != "" {
		f, err = os.Create(tracePath)
		if err != nil {
			return nil, nil, err
		}
		traceSub = bus.Subscribe(4096, WriteTrace(f))
	}
	finish = func() error {
		bus.Close()
		if f == nil {
			return nil
		}
		if n := traceSub.Dropped(); n > 0 && errTo != nil {
			fmt.Fprintf(errTo, "trace: dropped %d run_done events (writer fell behind; lifecycle events are complete)\n", n)
		}
		return f.Close()
	}
	return bus, finish, nil
}

// Renderer returns the shared per-campaign progress renderer: roughly
// every tenth of a campaign's runs, an adaptive stop line when a rule
// fires, plus a terminal line carrying the outcome tally — or the error,
// with the starved-placement ErrNoTargets spelled out the way the tiered
// table renders it. Subscribe it on an EventBus; the bus serializes
// delivery, so w needs no locking of its own.
func Renderer(w io.Writer) func(core.Event) {
	return func(ev core.Event) {
		switch ev.Kind {
		case core.EventRunDone:
			step := ev.Total / 10
			if step < 1 {
				step = 1
			}
			// The terminal SpecDone line reports the final count; skip the
			// last RunDone so completion prints once.
			if ev.Done%step == 0 && ev.Done < ev.Total {
				fmt.Fprintf(w, "[%s] %d/%d\n", ev.Key, ev.Done, ev.Total)
			}
		case core.EventStopDecision:
			if ev.Stopped {
				fmt.Fprintf(w, "[%s] adaptive stop at run %d\n", ev.Key, ev.StopIndex)
			}
		case core.EventSpecDone:
			if ev.Err != nil {
				fmt.Fprintf(w, "[%s] error: %v\n", ev.Key, ev.Err)
			} else {
				fmt.Fprintf(w, "[%s] %d/%d done: %s\n", ev.Key, ev.Done, ev.Total, ev.Result.Tally.String())
			}
		}
	}
}

// traceLine is the JSONL wire form of one event: only the fields the
// event's kind populates, with errors flattened to strings and the
// terminal tally inlined so a trace is self-contained.
type traceLine struct {
	Event string `json:"event"`
	Key   string `json:"key"`

	Done         *int  `json:"done,omitempty"`
	Total        *int  `json:"total,omitempty"`
	Runs         int   `json:"runs,omitempty"`
	ProfileCount int64 `json:"profile_count,omitempty"`

	Index   *int   `json:"index,omitempty"`
	Target  *int64 `json:"target,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	Fired   *bool  `json:"fired,omitempty"`
	CloneUS *int64 `json:"clone_us,omitempty"`
	WorkNS  *int64 `json:"workload_ns,omitempty"`
	ClassUS *int64 `json:"classify_us,omitempty"`
	SimNS   *int64 `json:"sim_ns,omitempty"`

	Barrier   *int  `json:"barrier,omitempty"`
	StopIndex *int  `json:"stop_index,omitempty"`
	Stopped   *bool `json:"stopped,omitempty"`

	Tally map[string]int `json:"tally,omitempty"`
	Error string         `json:"error,omitempty"`
}

// WriteTrace returns a subscriber that streams every event as one JSON
// line to w. Give it a generous bus buffer: under pressure the bus drops
// RunDone lines (counted on the Subscription) rather than stalling runs,
// so a trace is a faithful sample, while its lifecycle lines
// (spec_start, barrier, stop_decision, spec_done) are always complete.
func WriteTrace(w io.Writer) func(core.Event) {
	enc := json.NewEncoder(w)
	return func(ev core.Event) {
		l := traceLine{Event: string(ev.Kind), Key: ev.Key}
		switch ev.Kind {
		case core.EventSpecStart:
			l.Total = &ev.Total
			l.Runs = ev.Runs
			l.ProfileCount = ev.ProfileCount
		case core.EventRunDone:
			l.Index, l.Done, l.Total = &ev.Index, &ev.Done, &ev.Total
			l.Target = &ev.Target
			l.Outcome = ev.Outcome.String()
			l.Fired = &ev.Fired
			l.CloneUS, l.WorkNS, l.ClassUS, l.SimNS = &ev.CloneMicros, &ev.WorkloadNanos, &ev.ClassifyMicros, &ev.SimNanos
		case core.EventBarrier:
			l.Barrier, l.Done = &ev.Barrier, &ev.Done
		case core.EventStopDecision:
			l.StopIndex, l.Stopped, l.Done = &ev.StopIndex, &ev.Stopped, &ev.Done
		case core.EventSpecDone:
			l.Done, l.Total = &ev.Done, &ev.Total
			if ev.Err != nil {
				l.Error = ev.Err.Error()
			} else if ev.Result != nil {
				l.Tally = tallyMap(ev.Result)
				if ev.Result.StopIndex > 0 {
					l.StopIndex = &ev.Result.StopIndex
				}
			}
		}
		// Encoding to a CLI-owned file cannot meaningfully fail mid-stream;
		// a full disk surfaces on the file's Close.
		_ = enc.Encode(l)
	}
}

func tallyMap(res *core.CampaignResult) map[string]int {
	out := map[string]int{}
	for _, o := range classify.Outcomes() {
		if n := res.Tally.Count(o); n > 0 {
			out[o.String()] = n
		}
	}
	return out
}
