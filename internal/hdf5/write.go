package hdf5

import (
	"errors"
	"fmt"

	"ffis/internal/vfs"
)

// Format constants shared by writer and reader.
const (
	superblockSize = 96
	symEntrySize   = 40 // symbol table entry: name off + header addr + cache + scratch
	ohdrPrefixSize = 16 // v1 object header prefix (12 bytes + 4 alignment)
	msgHeaderSize  = 8  // message type + size + flags + reserved
	undefAddr      = ^uint64(0)

	msgNil         = 0x0000
	msgDataspace   = 0x0001
	msgDatatype    = 0x0003
	msgFillValue   = 0x0005
	msgLayout      = 0x0008
	msgSymbolTable = 0x0011

	layoutClassContiguous = 1
	datatypeClassFloat    = 1
)

// signature is the 8-byte HDF5 file magic.
var signature = [8]byte{0x89, 'H', 'D', 'F', '\r', '\n', 0x1a, '\n'}

var (
	btreeSig = [4]byte{'T', 'R', 'E', 'E'}
	snodSig  = [4]byte{'S', 'N', 'O', 'D'}
	heapSig  = [4]byte{'H', 'E', 'A', 'P'}
)

func align8(n int) int { return (n + 7) &^ 7 }

// DatasetSpec describes one dataset to be written.
type DatasetSpec struct {
	Name   string
	Dims   []uint64
	Values []float64
	// Spec is the on-disk float layout; zero value selects IEEE binary64.
	Spec FloatSpec
}

func (d DatasetSpec) elemCount() (uint64, error) {
	if len(d.Dims) == 0 || len(d.Dims) > 8 {
		return 0, fmt.Errorf("hdf5: dataset %q has %d dimensions (1..8 supported)", d.Name, len(d.Dims))
	}
	n := uint64(1)
	for _, dim := range d.Dims {
		if dim == 0 {
			return 0, fmt.Errorf("hdf5: dataset %q has zero-length dimension", d.Name)
		}
		n *= dim
	}
	return n, nil
}

// Builder assembles an HDF5 file image. The tunables control how much slack
// the metadata carries; their defaults size the metadata block at ~2.5 KiB
// with the B-tree dominating, matching the composition the paper reports
// (B-tree nodes ≈ 72% of metadata, mostly empty).
type Builder struct {
	// BTreeK is the group B-tree rank: the node allocates 2K children.
	BTreeK int
	// LeafK is the symbol-table leaf rank: the SNOD allocates 2K entries.
	LeafK int
	// NilPad is the size of the NIL message reserving space for future
	// metadata in each dataset header.
	NilPad int
	// HeapSlack is the free space kept at the end of the local heap.
	HeapSlack int

	datasets []DatasetSpec
}

// NewBuilder returns a builder with the default geometry.
func NewBuilder() *Builder {
	return &Builder{BTreeK: 52, LeafK: 4, NilPad: 160, HeapSlack: 24}
}

// AddDataset schedules a dataset for writing. Passing a zero-valued Spec
// selects IEEE binary64.
func (b *Builder) AddDataset(ds DatasetSpec) *Builder {
	if ds.Spec == (FloatSpec{}) {
		ds.Spec = IEEE754Double()
	}
	b.datasets = append(b.datasets, ds)
	return b
}

// DatasetInfo records where a dataset landed inside a built image.
type DatasetInfo struct {
	Name       string
	Dims       []uint64
	Spec       FloatSpec
	HeaderOff  int    // object header offset within the metadata block
	DataOffset uint64 // absolute file offset of the raw data (the ARD)
	DataSize   uint64 // raw data size in bytes
}

// FileImage is a fully built HDF5 file: the metadata block (file offset 0),
// the raw data region that follows it, and the per-byte field attribution.
type FileImage struct {
	Meta     []byte
	Data     []byte
	Fields   FieldMap
	Datasets []DatasetInfo
}

// Bytes returns the complete file content.
func (img *FileImage) Bytes() []byte {
	out := make([]byte, 0, len(img.Meta)+len(img.Data))
	out = append(out, img.Meta...)
	out = append(out, img.Data...)
	return out
}

// MetaSize returns the metadata block size. By construction the first
// dataset's Address of Raw Data equals this value — the invariant the
// paper's ARD auto-correction relies on.
func (img *FileImage) MetaSize() int { return len(img.Meta) }

// metaWriter appends bytes to the metadata block while recording field
// attributions.
type metaWriter struct {
	buf []byte
	fm  *FieldMap
}

func (w *metaWriter) off() int { return len(w.buf) }

func (w *metaWriter) bytes(p []byte, name string, class FieldClass) {
	w.fm.Add(w.off(), len(p), name, class)
	w.buf = append(w.buf, p...)
}

func (w *metaWriter) u8(v uint8, name string, class FieldClass) {
	w.bytes([]byte{v}, name, class)
}

func (w *metaWriter) u16(v uint16, name string, class FieldClass) {
	w.bytes([]byte{byte(v), byte(v >> 8)}, name, class)
}

func (w *metaWriter) u32(v uint32, name string, class FieldClass) {
	w.bytes([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}, name, class)
}

func (w *metaWriter) u64(v uint64, name string, class FieldClass) {
	var p [8]byte
	for i := range p {
		p[i] = byte(v >> (8 * uint(i)))
	}
	w.bytes(p[:], name, class)
}

func (w *metaWriter) zeros(n int, name string, class FieldClass) {
	w.bytes(make([]byte, n), name, class)
}

// sectionSizes precomputes every metadata section offset so that forward
// references (addresses) can be written in a single pass.
type sectionSizes struct {
	rootHdrOff int
	btreeOff   int
	btreeSize  int
	heapOff    int
	heapHdr    int
	heapData   int
	snodOff    int
	snodSize   int
	dsHdrOff   []int
	metaSize   int
	nameOffs   []int // heap-relative offset of each dataset name
}

func (b *Builder) layout() (sectionSizes, error) {
	var s sectionSizes
	s.rootHdrOff = superblockSize
	// Root header: prefix + symbol table message.
	rootHdrSize := ohdrPrefixSize + msgHeaderSize + 16
	s.btreeOff = s.rootHdrOff + rootHdrSize
	s.btreeSize = 24 + (2*b.BTreeK+1)*8 + (2*b.BTreeK)*8
	s.heapOff = s.btreeOff + s.btreeSize
	s.heapHdr = 32
	// Heap data: 8 reserved bytes (offset 0 = empty root link name), one
	// NUL-terminated name per dataset padded to 8, then slack.
	heapData := 8
	for _, ds := range b.datasets {
		if ds.Name == "" {
			return s, errors.New("hdf5: dataset name must not be empty")
		}
		s.nameOffs = append(s.nameOffs, heapData)
		heapData += align8(len(ds.Name) + 1)
	}
	heapData += align8(b.HeapSlack)
	s.heapData = heapData
	s.snodOff = s.heapOff + s.heapHdr + s.heapData
	s.snodSize = 8 + 2*b.LeafK*symEntrySize
	cursor := s.snodOff + s.snodSize
	for _, ds := range b.datasets {
		s.dsHdrOff = append(s.dsHdrOff, cursor)
		cursor += b.dsHeaderSize(ds)
	}
	s.metaSize = cursor
	return s, nil
}

func (b *Builder) dsHeaderSize(ds DatasetSpec) int {
	dataspaceBody := align8(8 + len(ds.Dims)*8)
	datatypeBody := align8(8 + 12)
	fillBody := 8
	layoutBody := 24
	return ohdrPrefixSize +
		msgHeaderSize + dataspaceBody +
		msgHeaderSize + datatypeBody +
		msgHeaderSize + fillBody +
		msgHeaderSize + layoutBody +
		msgHeaderSize + b.NilPad
}

// Build assembles the file image.
func (b *Builder) Build() (*FileImage, error) {
	if len(b.datasets) == 0 {
		return nil, errors.New("hdf5: no datasets to write")
	}
	if 2*b.LeafK < len(b.datasets) {
		return nil, fmt.Errorf("hdf5: %d datasets exceed SNOD capacity %d", len(b.datasets), 2*b.LeafK)
	}
	sec, err := b.layout()
	if err != nil {
		return nil, err
	}

	// Raw data region: datasets in order, 8-aligned.
	var data []byte
	infos := make([]DatasetInfo, len(b.datasets))
	for i, ds := range b.datasets {
		n, err := ds.elemCount()
		if err != nil {
			return nil, err
		}
		if uint64(len(ds.Values)) != n {
			return nil, fmt.Errorf("hdf5: dataset %q: %d values for %d-element dataspace",
				ds.Name, len(ds.Values), n)
		}
		if err := ds.Spec.Validate(); err != nil {
			return nil, err
		}
		for len(data)%8 != 0 {
			data = append(data, 0)
		}
		infos[i] = DatasetInfo{
			Name:       ds.Name,
			Dims:       append([]uint64(nil), ds.Dims...),
			Spec:       ds.Spec,
			HeaderOff:  sec.dsHdrOff[i],
			DataOffset: uint64(sec.metaSize + len(data)),
			DataSize:   n * uint64(ds.Spec.Size),
		}
		data = append(data, ds.Spec.EncodeSlice(ds.Values)...)
	}
	eof := uint64(sec.metaSize + len(data))

	var fm FieldMap
	w := &metaWriter{fm: &fm}
	b.writeSuperblock(w, sec, eof)
	b.writeRootHeader(w, sec)
	b.writeBTree(w, sec)
	b.writeHeap(w, sec)
	b.writeSNOD(w, sec)
	for i, ds := range b.datasets {
		b.writeDatasetHeader(w, ds, infos[i])
	}

	if len(w.buf) != sec.metaSize {
		return nil, fmt.Errorf("hdf5: internal: wrote %d metadata bytes, planned %d", len(w.buf), sec.metaSize)
	}
	if err := fm.Validate(sec.metaSize); err != nil {
		return nil, fmt.Errorf("hdf5: internal: %w", err)
	}
	return &FileImage{Meta: w.buf, Data: data, Fields: fm, Datasets: infos}, nil
}

func (b *Builder) writeSuperblock(w *metaWriter, sec sectionSizes, eof uint64) {
	w.bytes(signature[:], "superblock.signature", ClassSignature)
	w.u8(0, "superblock.versionSuperblock", ClassVersion)
	w.u8(0, "superblock.versionFreeSpace", ClassVersion)
	w.u8(0, "superblock.versionRootSymbolTable", ClassVersion)
	w.u8(0, "superblock.reserved0", ClassSlack)
	w.u8(0, "superblock.versionSharedHeaderMessage", ClassVersion)
	w.u8(8, "superblock.sizeOfOffsets", ClassValue)
	w.u8(8, "superblock.sizeOfLengths", ClassValue)
	w.u8(0, "superblock.reserved1", ClassSlack)
	w.u16(uint16(b.LeafK), "superblock.groupLeafNodeK", ClassValue)
	w.u16(uint16(b.BTreeK), "superblock.groupInternalNodeK", ClassValue)
	// Consistency flags double as the writer's lock marker; the reader
	// rejects a non-zero value, so corrupting them is fatal.
	w.u32(0, "superblock.fileConsistencyFlags", ClassValue)
	w.u64(0, "superblock.baseAddress", ClassValue)
	w.u64(undefAddr, "superblock.freeSpaceAddress", ClassSlack)
	w.u64(eof, "superblock.endOfFileAddress", ClassValue)
	w.u64(undefAddr, "superblock.driverInfoAddress", ClassSlack)
	// Root group symbol table entry.
	w.u64(0, "rootEntry.linkNameOffset", ClassResilient)
	w.u64(uint64(sec.rootHdrOff), "rootEntry.objectHeaderAddress", ClassValue)
	w.u32(1, "rootEntry.cacheType", ClassResilient)
	w.u32(0, "rootEntry.reserved", ClassSlack)
	w.u64(uint64(sec.btreeOff), "rootEntry.scratch.btreeAddress", ClassResilient)
	w.u64(uint64(sec.heapOff), "rootEntry.scratch.heapAddress", ClassResilient)
}

func (b *Builder) writeRootHeader(w *metaWriter, sec sectionSizes) {
	w.u8(1, "rootHeader.version", ClassVersion)
	w.u8(0, "rootHeader.reserved", ClassSlack)
	w.u16(1, "rootHeader.numMessages", ClassValue)
	w.u32(1, "rootHeader.referenceCount", ClassResilient)
	w.u32(uint32(msgHeaderSize+16), "rootHeader.headerSize", ClassValue)
	w.u32(0, "rootHeader.pad", ClassSlack)
	// Symbol table message.
	w.u16(msgSymbolTable, "rootHeader.symbolTable.msgType", ClassValue)
	w.u16(16, "rootHeader.symbolTable.msgSize", ClassValue)
	w.u8(0, "rootHeader.symbolTable.msgFlags", ClassSlack)
	w.zeros(3, "rootHeader.symbolTable.msgReserved", ClassSlack)
	w.u64(uint64(sec.btreeOff), "rootHeader.symbolTable.btreeAddress", ClassValue)
	w.u64(uint64(sec.heapOff), "rootHeader.symbolTable.heapAddress", ClassValue)
}

func (b *Builder) writeBTree(w *metaWriter, sec sectionSizes) {
	w.bytes(btreeSig[:], "btree.signature", ClassSignature)
	w.u8(0, "btree.nodeType", ClassVersion)
	w.u8(0, "btree.nodeLevel", ClassValue)
	w.u16(1, "btree.entriesUsed", ClassValue)
	w.u64(undefAddr, "btree.leftSibling", ClassSlack)
	w.u64(undefAddr, "btree.rightSibling", ClassSlack)
	// One used entry: key0, child0 (SNOD), key1.
	w.u64(0, "btree.key0", ClassResilient)
	w.u64(uint64(sec.snodOff), "btree.child0.snodAddress", ClassValue)
	w.u64(uint64(sec.nameOffs[len(sec.nameOffs)-1]), "btree.key1", ClassResilient)
	// Remaining capacity: (2K+1)-2 keys and 2K-1 children, all unused.
	// This is the partially-full B-tree space the paper identifies as the
	// dominant benign region (≈72% of metadata, ≈10% full).
	slack := sec.btreeSize - (24 + 3*8)
	w.zeros(slack, "btree.unusedEntries", ClassSlack)
}

func (b *Builder) writeHeap(w *metaWriter, sec sectionSizes) {
	w.bytes(heapSig[:], "heap.signature", ClassSignature)
	w.u8(0, "heap.version", ClassVersion)
	w.zeros(3, "heap.reserved", ClassSlack)
	w.u64(uint64(sec.heapData), "heap.dataSegmentSize", ClassValue)
	w.u64(undefAddr, "heap.freeListHead", ClassSlack)
	w.u64(uint64(sec.heapOff+sec.heapHdr), "heap.dataSegmentAddress", ClassValue)
	// Data segment.
	w.zeros(8, "heap.data.rootNameSlot", ClassSlack)
	for i, ds := range b.datasets {
		name := make([]byte, align8(len(ds.Name)+1))
		copy(name, ds.Name)
		w.bytes(name, fmt.Sprintf("heap.data.linkName[%d]=%q", i, ds.Name), ClassValue)
	}
	w.zeros(align8(b.HeapSlack), "heap.data.freeSpace", ClassSlack)
}

func (b *Builder) writeSNOD(w *metaWriter, sec sectionSizes) {
	w.bytes(snodSig[:], "snod.signature", ClassSignature)
	w.u8(1, "snod.version", ClassVersion)
	w.u8(0, "snod.reserved", ClassSlack)
	w.u16(uint16(len(b.datasets)), "snod.numSymbols", ClassValue)
	for i := range b.datasets {
		w.u64(uint64(sec.nameOffs[i]), fmt.Sprintf("snod.entry[%d].linkNameOffset", i), ClassValue)
		w.u64(uint64(sec.dsHdrOff[i]), fmt.Sprintf("snod.entry[%d].objectHeaderAddress", i), ClassValue)
		w.u32(0, fmt.Sprintf("snod.entry[%d].cacheType", i), ClassResilient)
		w.u32(0, fmt.Sprintf("snod.entry[%d].reserved", i), ClassSlack)
		w.zeros(16, fmt.Sprintf("snod.entry[%d].scratch", i), ClassSlack)
	}
	// Unused SNOD capacity (2*LeafK entries allocated).
	w.zeros((2*b.LeafK-len(b.datasets))*symEntrySize, "snod.unusedEntries", ClassSlack)
}

func (b *Builder) writeDatasetHeader(w *metaWriter, ds DatasetSpec, info DatasetInfo) {
	p := "dataset[" + ds.Name + "]"
	msgsSize := b.dsHeaderSize(ds) - ohdrPrefixSize
	w.u8(1, p+".objHeader.version", ClassVersion)
	w.u8(0, p+".objHeader.reserved", ClassSlack)
	w.u16(5, p+".objHeader.numMessages", ClassValue)
	w.u32(1, p+".objHeader.referenceCount", ClassResilient)
	w.u32(uint32(msgsSize), p+".objHeader.headerSize", ClassValue)
	w.u32(0, p+".objHeader.pad", ClassSlack)

	// Dataspace message.
	spaceBody := align8(8 + len(ds.Dims)*8)
	w.u16(msgDataspace, p+".dataspace.msgType", ClassValue)
	w.u16(uint16(spaceBody), p+".dataspace.msgSize", ClassValue)
	w.u8(0, p+".dataspace.msgFlags", ClassSlack)
	w.zeros(3, p+".dataspace.msgReserved", ClassSlack)
	w.u8(1, p+".dataspace.version", ClassVersion)
	w.u8(uint8(len(ds.Dims)), p+".dataspace.dimensionality", ClassValue)
	w.u8(0, p+".dataspace.flags", ClassSlack)
	w.zeros(5, p+".dataspace.reserved", ClassSlack)
	for i, d := range ds.Dims {
		w.u64(d, fmt.Sprintf("%s.dataspace.dim[%d]", p, i), ClassValue)
	}
	w.zeros(spaceBody-8-len(ds.Dims)*8, p+".dataspace.pad", ClassSlack)

	// Datatype message: the floating-point property block of Figure 1.
	typeBody := align8(8 + 12)
	w.u16(msgDatatype, p+".datatype.msgType", ClassValue)
	w.u16(uint16(typeBody), p+".datatype.msgSize", ClassValue)
	w.u8(0, p+".datatype.msgFlags", ClassSlack)
	w.zeros(3, p+".datatype.msgReserved", ClassSlack)
	w.u8(1<<4|datatypeClassFloat, p+".datatype.classAndVersion", ClassVersion)
	// Class bit field byte 0: bit 0 byte order (0 = LE), bits 1-3 padding
	// type, bits 4-5 mantissa normalization. Bit 5 is the high bit of the
	// normalization value — the "Bit-5 of Mantissa Normalization" SDC
	// field of Table IV.
	w.u8(uint8(ds.Spec.Norm)<<4, p+".datatype.bitField0.mantissaNormalization", ClassSDCProne)
	w.u8(ds.Spec.SignLocation, p+".datatype.bitField1.signLocation", ClassValue)
	w.u8(0, p+".datatype.bitField2", ClassSlack)
	w.u32(ds.Spec.Size, p+".datatype.size", ClassValue)
	w.u16(ds.Spec.BitOffset, p+".datatype.float.bitOffset", ClassResilient)
	w.u16(ds.Spec.BitPrecision, p+".datatype.float.bitPrecision", ClassResilient)
	w.u8(ds.Spec.ExpLocation, p+".datatype.float.exponentLocation", ClassSDCProne)
	w.u8(ds.Spec.ExpSize, p+".datatype.float.exponentSize", ClassValue)
	w.u8(ds.Spec.MantLocation, p+".datatype.float.mantissaLocation", ClassSDCProne)
	w.u8(ds.Spec.MantSize, p+".datatype.float.mantissaSize", ClassSDCProne)
	w.u32(ds.Spec.ExpBias, p+".datatype.float.exponentBias", ClassSDCProne)
	w.zeros(typeBody-20, p+".datatype.pad", ClassSlack)

	// Fill value message (v2, undefined value).
	w.u16(msgFillValue, p+".fillValue.msgType", ClassValue)
	w.u16(8, p+".fillValue.msgSize", ClassValue)
	w.u8(0, p+".fillValue.msgFlags", ClassSlack)
	w.zeros(3, p+".fillValue.msgReserved", ClassSlack)
	w.u8(2, p+".fillValue.version", ClassVersion)
	w.u8(1, p+".fillValue.spaceAllocTime", ClassResilient)
	w.u8(0, p+".fillValue.writeTime", ClassResilient)
	w.u8(0, p+".fillValue.defined", ClassResilient)
	w.zeros(4, p+".fillValue.pad", ClassSlack)

	// Data layout message (v3, contiguous storage property: Figure 1's
	// SIZE plus the Address of Raw Data).
	w.u16(msgLayout, p+".layout.msgType", ClassValue)
	w.u16(24, p+".layout.msgSize", ClassValue)
	w.u8(0, p+".layout.msgFlags", ClassSlack)
	w.zeros(3, p+".layout.msgReserved", ClassSlack)
	w.u8(3, p+".layout.version", ClassVersion)
	w.u8(layoutClassContiguous, p+".layout.class", ClassVersion)
	w.zeros(6, p+".layout.reserved", ClassSlack)
	w.u64(info.DataOffset, p+".layout.addressOfRawData", ClassSDCProne)
	w.u64(info.DataSize, p+".layout.contiguousStorage.size", ClassResilient)

	// NIL message: space reserved for future metadata (benign).
	w.u16(msgNil, p+".nil.msgType", ClassValue)
	w.u16(uint16(b.NilPad), p+".nil.msgSize", ClassValue)
	w.u8(0, p+".nil.msgFlags", ClassSlack)
	w.zeros(3, p+".nil.msgReserved", ClassSlack)
	w.zeros(b.NilPad, p+".nil.reservedSpace", ClassSlack)
}

// consistencyFlagsOff is the superblock offset of the file consistency
// flags, used as the write-lock marker during WriteTo.
const consistencyFlagsOff = 20

// WriteTo persists the image through the vfs layer using the I/O sequence
// the paper describes for the HDF5 library (Section IV-D): "the HDF5
// library first locks the file ..., then performs multiple writes to store
// the raw data; after that, it packs all metadata and writes them to the
// file and unlocks the file for later access". Concretely: the raw data is
// flushed in device-block-sized writes, the packed metadata block follows
// as the penultimate write (with the consistency flags still marking the
// file locked), and the final small write clears the lock flag. Dropping
// that last write therefore leaves a file the library refuses to open —
// and fault campaigns rely on this ordering to target the metadata write.
func (img *FileImage) WriteTo(fs vfs.FS, path string) error {
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	const chunk = 4096
	base := int64(len(img.Meta))
	for off := 0; off < len(img.Data); off += chunk {
		end := off + chunk
		if end > len(img.Data) {
			end = len(img.Data)
		}
		if _, err := f.WriteAt(img.Data[off:end], base+int64(off)); err != nil {
			return fmt.Errorf("hdf5: data write: %w", err)
		}
	}
	// Penultimate write: the packed metadata block, still carrying the
	// "locked" consistency flag.
	locked := append([]byte(nil), img.Meta...)
	locked[consistencyFlagsOff] = 1
	if _, err := f.WriteAt(locked, 0); err != nil {
		return fmt.Errorf("hdf5: metadata write: %w", err)
	}
	// Final write: clear the lock flag.
	if _, err := f.WriteAt(img.Meta[consistencyFlagsOff:consistencyFlagsOff+4], consistencyFlagsOff); err != nil {
		return fmt.Errorf("hdf5: unlock write: %w", err)
	}
	return f.Sync()
}

// MetadataWriteIndex returns the dynamic write-primitive index of the
// metadata write within WriteTo's I/O sequence, so campaigns can aim an
// injector exactly at it.
func (img *FileImage) MetadataWriteIndex() int64 {
	chunks := (len(img.Data) + 4095) / 4096
	return int64(chunks) // data chunk writes occupy indices [0, chunks)
}
