package hdf5

import (
	"fmt"
	"sort"
	"strings"
)

// FieldClass groups format fields by the outcome class the paper associates
// with corrupting them (Table III's three buckets, plus finer distinctions
// used in the analysis).
type FieldClass int

// Field classes, ordered roughly by severity of corrupting them.
const (
	// ClassSlack: reserved bytes, alignment padding, unused B-tree/SNOD
	// capacity, and space reserved for future metadata. Faults here are
	// benign — the dominant case in Table III.
	ClassSlack FieldClass = iota
	// ClassResilient: value fields whose corruption the format or the
	// post-analysis masks (Bit Offset, Bit Precision, oversized Size...).
	ClassResilient
	// ClassValue: general value-carrying fields (addresses, sizes, dims,
	// heap name bytes) whose corruption usually surfaces as crash or
	// detected, occasionally SDC.
	ClassValue
	// ClassSDCProne: the six fields Table IV identifies as able to cause
	// silent data corruption.
	ClassSDCProne
	// ClassSignature: magic signatures; any corruption is rejected.
	ClassSignature
	// ClassVersion: format version numbers; corruption is rejected.
	ClassVersion
)

func (c FieldClass) String() string {
	switch c {
	case ClassSlack:
		return "slack"
	case ClassResilient:
		return "resilient"
	case ClassValue:
		return "value"
	case ClassSDCProne:
		return "sdc-prone"
	case ClassSignature:
		return "signature"
	case ClassVersion:
		return "version"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// FieldRange attributes a contiguous byte range of the metadata block to a
// named format field.
type FieldRange struct {
	Offset int
	Length int
	Name   string
	Class  FieldClass
}

func (r FieldRange) String() string {
	return fmt.Sprintf("[%4d,%4d) %-9s %s", r.Offset, r.Offset+r.Length, r.Class, r.Name)
}

// FieldMap is the byte-offset → field attribution for a metadata block.
// Writers append ranges in layout order.
type FieldMap struct {
	ranges []FieldRange
}

// Add appends a field range. Ranges must be appended in increasing offset
// order with no gaps — Validate enforces this.
func (m *FieldMap) Add(offset, length int, name string, class FieldClass) {
	if length == 0 {
		return
	}
	m.ranges = append(m.ranges, FieldRange{Offset: offset, Length: length, Name: name, Class: class})
}

// Ranges returns the attribution list in offset order.
func (m *FieldMap) Ranges() []FieldRange {
	out := append([]FieldRange(nil), m.ranges...)
	sort.Slice(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}

// At returns the field containing byte offset off. The boolean is false for
// offsets outside the mapped region.
func (m *FieldMap) At(off int) (FieldRange, bool) {
	rs := m.Ranges()
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Offset+rs[i].Length > off })
	if i == len(rs) || off < rs[i].Offset {
		return FieldRange{}, false
	}
	return rs[i], true
}

// Validate checks that the map covers [0, total) exactly once: no gaps, no
// overlaps. The Table III campaign depends on every metadata byte having an
// attribution.
func (m *FieldMap) Validate(total int) error {
	rs := m.Ranges()
	cursor := 0
	for _, r := range rs {
		if r.Offset != cursor {
			if r.Offset > cursor {
				return fmt.Errorf("hdf5: field map gap at [%d,%d)", cursor, r.Offset)
			}
			return fmt.Errorf("hdf5: field map overlap at %d (%s)", r.Offset, r.Name)
		}
		cursor += r.Length
	}
	if cursor != total {
		return fmt.Errorf("hdf5: field map covers %d of %d bytes", cursor, total)
	}
	return nil
}

// ByClass sums the byte counts per field class; the Table III analysis uses
// it to report e.g. what fraction of metadata is B-tree slack.
func (m *FieldMap) ByClass() map[FieldClass]int {
	out := map[FieldClass]int{}
	for _, r := range m.ranges {
		out[r.Class] += r.Length
	}
	return out
}

// Find returns every range whose name contains substr (case-insensitive),
// used by directed per-field injection (Table IV).
func (m *FieldMap) Find(substr string) []FieldRange {
	var out []FieldRange
	needle := strings.ToLower(substr)
	for _, r := range m.Ranges() {
		if strings.Contains(strings.ToLower(r.Name), needle) {
			out = append(out, r)
		}
	}
	return out
}

// Total returns the number of mapped bytes.
func (m *FieldMap) Total() int {
	n := 0
	for _, r := range m.ranges {
		n += r.Length
	}
	return n
}
