package hdf5

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ffis/internal/stats"
	"ffis/internal/vfs"
)

func buildSmall(t *testing.T, values []float64, dims []uint64) *FileImage {
	t.Helper()
	img, err := NewBuilder().AddDataset(DatasetSpec{
		Name:   "baryon_density",
		Dims:   dims,
		Values: values,
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func seqValues(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) + 0.25
	}
	return out
}

func TestBuildParseRoundTrip(t *testing.T) {
	values := seqValues(64)
	img := buildSmall(t, values, []uint64{4, 4, 4})
	f, err := Parse(img.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Datasets) != 1 {
		t.Fatalf("datasets = %d", len(f.Datasets))
	}
	d := f.Datasets[0]
	if d.Name != "baryon_density" {
		t.Fatalf("name = %q", d.Name)
	}
	if len(d.Dims) != 3 || d.Dims[0] != 4 {
		t.Fatalf("dims = %v", d.Dims)
	}
	got, err := f.ReadValues(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if got[i] != values[i] {
			t.Fatalf("value[%d] = %v, want %v", i, got[i], values[i])
		}
	}
}

func TestARDEqualsMetadataSize(t *testing.T) {
	// The paper's ARD correction depends on this invariant: "the metadata
	// is saved followed by data ... the ARD is exactly equal to the size
	// of metadata".
	img := buildSmall(t, seqValues(8), []uint64{8})
	if img.Datasets[0].DataOffset != uint64(img.MetaSize()) {
		t.Fatalf("ARD = %d, metadata size = %d", img.Datasets[0].DataOffset, img.MetaSize())
	}
}

func TestFieldMapCoversMetadata(t *testing.T) {
	img := buildSmall(t, seqValues(27), []uint64{3, 3, 3})
	if err := img.Fields.Validate(len(img.Meta)); err != nil {
		t.Fatal(err)
	}
}

func TestFieldMapQuickCoverage(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := r.Intn(20) + 1
		dims := []uint64{uint64(n)}
		img, err := NewBuilder().AddDataset(DatasetSpec{
			Name:   "d",
			Dims:   dims,
			Values: seqValues(n),
		}).Build()
		if err != nil {
			return false
		}
		return img.Fields.Validate(len(img.Meta)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFieldMapComposition(t *testing.T) {
	// B-tree slack must dominate the metadata block, per the paper's
	// observation that B-tree nodes account for ~72% of metadata and are
	// mostly empty.
	img := buildSmall(t, seqValues(8), []uint64{8})
	byClass := img.Fields.ByClass()
	slackFrac := float64(byClass[ClassSlack]) / float64(len(img.Meta))
	if slackFrac < 0.6 {
		t.Fatalf("slack fraction = %.2f, want >= 0.6", slackFrac)
	}
	sdcFrac := float64(byClass[ClassSDCProne]) / float64(len(img.Meta))
	if sdcFrac > 0.02 {
		t.Fatalf("SDC-prone fraction = %.3f, want tiny", sdcFrac)
	}
	if byClass[ClassSignature] < 20 {
		t.Fatalf("signature bytes = %d, want >= 20", byClass[ClassSignature])
	}
}

func TestFieldMapFindSDCFields(t *testing.T) {
	img := buildSmall(t, seqValues(8), []uint64{8})
	for _, name := range []string{
		"mantissaNormalization", "exponentLocation", "mantissaLocation",
		"mantissaSize", "exponentBias", "addressOfRawData",
	} {
		rs := img.Fields.Find(name)
		if len(rs) != 1 {
			t.Errorf("field %q: %d ranges", name, len(rs))
			continue
		}
		if rs[0].Class != ClassSDCProne {
			t.Errorf("field %q class = %s, want sdc-prone", name, rs[0].Class)
		}
	}
}

func TestMultipleDatasets(t *testing.T) {
	img, err := NewBuilder().
		AddDataset(DatasetSpec{Name: "density", Dims: []uint64{10}, Values: seqValues(10)}).
		AddDataset(DatasetSpec{Name: "velocity_x", Dims: []uint64{2, 5}, Values: seqValues(10)}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(img.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Datasets) != 2 {
		t.Fatalf("datasets = %d", len(f.Datasets))
	}
	for _, name := range []string{"density", "velocity_x"} {
		d, err := f.Dataset(name)
		if err != nil {
			t.Fatal(err)
		}
		vals, err := f.ReadValues(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 10 {
			t.Fatalf("%s: %d values", name, len(vals))
		}
	}
	if _, err := f.Dataset("missing"); err == nil {
		t.Fatal("missing dataset found")
	}
}

func TestWriteToAndOpenViaVFS(t *testing.T) {
	fs := vfs.NewMemFS()
	fs.MkdirAll("/plt0")
	img := buildSmall(t, seqValues(64), []uint64{64})
	if err := img.WriteTo(fs, "/plt0/data.h5"); err != nil {
		t.Fatal(err)
	}
	vals, dims, err := ReadDataset(fs, "/plt0/data.h5", "baryon_density")
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 1 || dims[0] != 64 || vals[63] != 63.25 {
		t.Fatalf("dims=%v vals[63]=%v", dims, vals[63])
	}
}

func TestWriteToIOPattern(t *testing.T) {
	// WriteTo must produce data-chunk writes, then the metadata write
	// (penultimate), then the EOF stamp (final) — the sequence the
	// metadata injection campaign targets.
	fs := vfs.NewCountingFS(vfs.NewMemFS())
	img := buildSmall(t, seqValues(1024), []uint64{1024}) // 8 KiB data
	if err := img.WriteTo(fs, "/d.h5"); err != nil {
		t.Fatal(err)
	}
	wantWrites := int64((len(img.Data)+4095)/4096) + 2
	if got := fs.Count(vfs.PrimWrite); got != wantWrites {
		t.Fatalf("writes = %d, want %d", got, wantWrites)
	}
	if img.MetadataWriteIndex() != wantWrites-2 {
		t.Fatalf("metadata write index = %d, want %d", img.MetadataWriteIndex(), wantWrites-2)
	}
}

func TestBuilderRejectsBadInput(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Error("empty builder accepted")
	}
	if _, err := NewBuilder().AddDataset(DatasetSpec{Name: "", Dims: []uint64{1}, Values: []float64{1}}).Build(); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewBuilder().AddDataset(DatasetSpec{Name: "d", Dims: []uint64{3}, Values: []float64{1}}).Build(); err == nil {
		t.Error("mismatched value count accepted")
	}
	if _, err := NewBuilder().AddDataset(DatasetSpec{Name: "d", Dims: []uint64{0}, Values: nil}).Build(); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := NewBuilder().AddDataset(DatasetSpec{Name: "d", Dims: nil, Values: nil}).Build(); err == nil {
		t.Error("no dims accepted")
	}
}

func corrupt(img *FileImage, off int, xor byte) []byte {
	raw := img.Bytes()
	raw[off] ^= xor
	return raw
}

func TestCorruptSignatureCrashes(t *testing.T) {
	img := buildSmall(t, seqValues(8), []uint64{8})
	for _, name := range []string{"superblock.signature", "btree.signature", "snod.signature", "heap.signature"} {
		rs := img.Fields.Find(name)
		if len(rs) != 1 {
			t.Fatalf("%s: %d ranges", name, len(rs))
		}
		_, err := Parse(corrupt(img, rs[0].Offset, 0x01))
		if err == nil || !IsFormatError(err) {
			t.Errorf("%s corruption: err = %v, want format error", name, err)
		}
	}
}

func TestCorruptVersionCrashes(t *testing.T) {
	img := buildSmall(t, seqValues(8), []uint64{8})
	for _, name := range []string{
		"superblock.versionSuperblock",
		"rootHeader.version",
		"dataset[baryon_density].objHeader.version",
		"dataset[baryon_density].datatype.classAndVersion",
		"dataset[baryon_density].layout.version",
		"snod.version",
	} {
		rs := img.Fields.Find(name)
		if len(rs) == 0 {
			t.Fatalf("field %q not found", name)
		}
		_, err := Parse(corrupt(img, rs[0].Offset, 0x04))
		if err == nil {
			t.Errorf("%s corruption accepted", name)
		}
	}
}

func TestCorruptSlackIsBenign(t *testing.T) {
	img := buildSmall(t, seqValues(27), []uint64{3, 3, 3})
	want := seqValues(27)
	checked := 0
	for _, r := range img.Fields.Ranges() {
		if r.Class != ClassSlack {
			continue
		}
		// Corrupt the middle byte of each slack range.
		raw := corrupt(img, r.Offset+r.Length/2, 0xFF)
		f, err := Parse(raw)
		if err != nil {
			t.Errorf("slack %s corruption crashed: %v", r.Name, err)
			continue
		}
		vals, err := f.ReadValues(f.Datasets[0])
		if err != nil {
			t.Errorf("slack %s corruption read failed: %v", r.Name, err)
			continue
		}
		for i := range want {
			if vals[i] != want[i] {
				t.Errorf("slack %s corruption altered data", r.Name)
				break
			}
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d slack ranges exercised", checked)
	}
}

func TestCorruptExponentBiasScalesData(t *testing.T) {
	img := buildSmall(t, seqValues(16), []uint64{16})
	rs := img.Fields.Find("exponentBias")
	// Flip bit 2 of the low bias byte: 1023 -> 1019, scale by 2^4.
	raw := corrupt(img, rs[0].Offset, 0x04)
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := f.ReadValues(f.Datasets[0])
	if err != nil {
		t.Fatal(err)
	}
	want := seqValues(16)
	for i := range want {
		if want[i] == 0 {
			continue
		}
		ratio := vals[i] / want[i]
		if math.Abs(ratio-16) > 1e-9 {
			t.Fatalf("value[%d] ratio = %v, want 16 (scaled by power of two)", i, ratio)
		}
	}
}

func TestCorruptARDShiftsData(t *testing.T) {
	// Two datasets so that shifting the first dataset's ARD forward still
	// lands inside the file — the Figure 5c scenario: locations shift,
	// values stay aligned because single-bit ARD corruption moves the
	// address by a power of two (here 8 bytes = one float64).
	img, err := NewBuilder().
		AddDataset(DatasetSpec{Name: "a", Dims: []uint64{16}, Values: seqValues(16)}).
		AddDataset(DatasetSpec{Name: "b", Dims: []uint64{16}, Values: seqValues(16)}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	rs := img.Fields.Find("dataset[a].layout.addressOfRawData")
	if len(rs) != 1 {
		t.Fatalf("ARD ranges: %d", len(rs))
	}
	raw := img.Bytes()
	// Directed corruption: ARD += 8 (a flip of a clear bit 3).
	old := img.Datasets[0].DataOffset
	if raw[rs[0].Offset]&0x08 != 0 {
		t.Skip("bit 3 already set at this layout; directed patch below still applies")
	}
	raw[rs[0].Offset] ^= 0x08
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Dataset("a")
	if err != nil {
		t.Fatal(err)
	}
	if d.DataOffset != old+8 {
		t.Fatalf("ARD = %d, want %d", d.DataOffset, old+8)
	}
	vals, err := f.ReadValues(d)
	if err != nil {
		t.Fatal(err)
	}
	want := seqValues(16)
	// Shift by +8 bytes: element i now reads original element i+1.
	for i := 0; i < 15; i++ {
		if vals[i] != want[i+1] {
			t.Fatalf("shifted value[%d] = %v, want %v", i, vals[i], want[i+1])
		}
	}
}

func TestCorruptARDFarOutCrashes(t *testing.T) {
	img := buildSmall(t, seqValues(16), []uint64{16})
	rs := img.Fields.Find("addressOfRawData")
	// Flip a high byte of the address: points far outside the file.
	raw := corrupt(img, rs[0].Offset+6, 0x10)
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadValues(f.Datasets[0]); err == nil {
		t.Fatal("far-out ARD read succeeded")
	}
}

func TestCorruptLayoutSizeBiggerIsBenignSmallerCrashes(t *testing.T) {
	// Paper: "if a fault modifies the size to a bigger value, the
	// application would still produce the correct output, otherwise a
	// crash would occur."
	img := buildSmall(t, seqValues(16), []uint64{16})
	rs := img.Fields.Find("contiguousStorage.size")

	bigger := corrupt(img, rs[0].Offset+2, 0x01) // +65536 bytes
	f, err := Parse(bigger)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := f.ReadValues(f.Datasets[0])
	if err != nil {
		t.Fatalf("bigger size should read fine: %v", err)
	}
	if vals[3] != seqValues(16)[3] {
		t.Fatal("bigger size altered data")
	}

	smaller := corrupt(img, rs[0].Offset, 0x80) // 128 -> 0 bytes
	f, err = Parse(smaller)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadValues(f.Datasets[0]); err == nil {
		t.Fatal("smaller size should be rejected")
	}
}

func TestCorruptBitPrecisionIsBenign(t *testing.T) {
	// BIT PRECISION and BIT OFFSET are resilient fields (Section V-A):
	// the decode path does not consult them.
	img := buildSmall(t, seqValues(16), []uint64{16})
	for _, field := range []string{"bitPrecision", "bitOffset"} {
		rs := img.Fields.Find(field)
		raw := corrupt(img, rs[0].Offset, 0xFF)
		f, err := Parse(raw)
		if err != nil {
			t.Fatalf("%s corruption crashed: %v", field, err)
		}
		vals, err := f.ReadValues(f.Datasets[0])
		if err != nil {
			t.Fatalf("%s corruption read failed: %v", field, err)
		}
		if vals[5] != seqValues(16)[5] {
			t.Fatalf("%s corruption altered data", field)
		}
	}
}

func TestCorruptMantissaNormalizationBit5(t *testing.T) {
	// Bit 5 of the class bit field holds the high bit of the mantissa
	// normalization (NormImplied = 2 = bits 10). Flipping it yields
	// NormNone and silently shrinks every value — the Table IV SDC.
	img := buildSmall(t, []float64{1.5, 1.25, 1.75, 1.0}, []uint64{4})
	rs := img.Fields.Find("mantissaNormalization")
	raw := corrupt(img, rs[0].Offset, 0x20)
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Datasets[0].Spec.Norm != NormNone {
		t.Fatalf("norm = %d, want NormNone", f.Datasets[0].Spec.Norm)
	}
	vals, err := f.ReadValues(f.Datasets[0])
	if err != nil {
		t.Fatal(err)
	}
	// 1.5 = (1 + 0.5) * 2^0; without the implied bit it decodes to 0.5.
	if vals[0] != 0.5 {
		t.Fatalf("vals[0] = %v, want 0.5", vals[0])
	}
}

func TestCorruptEOFAddressCrashes(t *testing.T) {
	img := buildSmall(t, seqValues(8), []uint64{8})
	rs := img.Fields.Find("endOfFileAddress")
	if _, err := Parse(corrupt(img, rs[0].Offset, 0x01)); err == nil {
		t.Fatal("corrupted EOF address accepted")
	}
}

func TestCorruptHeapNameDetaches(t *testing.T) {
	img := buildSmall(t, seqValues(8), []uint64{8})
	rs := img.Fields.Find("linkName[0]")
	raw := corrupt(img, rs[0].Offset, 0x01) // "baryon_density" -> "caryon_density"
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Dataset("baryon_density"); err == nil {
		t.Fatal("dataset still found under original name")
	}
}

func TestParseTruncatedFile(t *testing.T) {
	img := buildSmall(t, seqValues(8), []uint64{8})
	raw := img.Bytes()
	for _, n := range []int{0, 7, 50, 96, len(raw) - 1} {
		if _, err := Parse(raw[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestInspectOutput(t *testing.T) {
	img := buildSmall(t, seqValues(8), []uint64{8})
	f, err := Parse(img.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	out := Inspect(f)
	if !strings.Contains(out, "baryon_density") || !strings.Contains(out, "bias=0x3ff") {
		t.Fatalf("inspect output:\n%s", out)
	}
	dump := DumpFields(img, nil)
	if !strings.Contains(dump, "sdc-prone") {
		t.Fatalf("dump output:\n%s", dump)
	}
}

func TestSNODCapacityLimit(t *testing.T) {
	b := NewBuilder()
	b.LeafK = 1 // capacity 2 entries
	for i := 0; i < 3; i++ {
		b.AddDataset(DatasetSpec{Name: string(rune('a' + i)), Dims: []uint64{1}, Values: []float64{1}})
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("over-capacity SNOD accepted")
	}
}

func TestFieldMapAt(t *testing.T) {
	img := buildSmall(t, seqValues(8), []uint64{8})
	r, ok := img.Fields.At(0)
	if !ok || r.Name != "superblock.signature" {
		t.Fatalf("At(0) = %+v %v", r, ok)
	}
	if _, ok := img.Fields.At(len(img.Meta)); ok {
		t.Fatal("At(end) should be out of range")
	}
	if _, ok := img.Fields.At(-1); ok {
		t.Fatal("At(-1) should be out of range")
	}
}

func TestSingleSpecDataset(t *testing.T) {
	vals := []float64{0.25, 1.5, -2, 8}
	img, err := NewBuilder().AddDataset(DatasetSpec{
		Name: "f32", Dims: []uint64{4}, Values: vals, Spec: IEEE754Single(),
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(img.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadValues(f.Datasets[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("f32[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
	if f.Datasets[0].Spec.ExpBias != 0x7F {
		t.Fatalf("parsed bias = %#x", f.Datasets[0].Spec.ExpBias)
	}
}
