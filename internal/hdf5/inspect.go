package hdf5

import (
	"fmt"
	"strings"
)

// Inspect renders a human-readable dump of a parsed file: the cmd/h5inspect
// tool prints it, and examples use it to show what a corruption changed.
func Inspect(f *File) string {
	var b strings.Builder
	fmt.Fprintf(&b, "HDF5 file: EOF address %d, %d dataset(s)\n", f.EOFAddress, len(f.Datasets))
	for _, d := range f.Datasets {
		fmt.Fprintf(&b, "  dataset %q dims=%v\n", d.Name, d.Dims)
		s := d.Spec
		fmt.Fprintf(&b, "    datatype: size=%dB bitOffset=%d bitPrecision=%d\n",
			s.Size, s.BitOffset, s.BitPrecision)
		fmt.Fprintf(&b, "    float: expLoc=%d expSize=%d mantLoc=%d mantSize=%d bias=%#x sign=%d norm=%d\n",
			s.ExpLocation, s.ExpSize, s.MantLocation, s.MantSize, s.ExpBias, s.SignLocation, s.Norm)
		fmt.Fprintf(&b, "    layout: addressOfRawData=%d size=%d\n", d.DataOffset, d.LayoutSize)
		if !s.ConstraintsOK() {
			fmt.Fprintf(&b, "    WARNING: floating-point geometry violates IEEE-style constraints\n")
		}
	}
	return b.String()
}

// DumpFields renders the field attribution of a built image, optionally
// filtering to a class. Offsets are absolute file offsets (the metadata
// block starts at 0).
func DumpFields(img *FileImage, only *FieldClass) string {
	var b strings.Builder
	fmt.Fprintf(&b, "metadata block: %d bytes, %d field ranges\n", len(img.Meta), len(img.Fields.Ranges()))
	byClass := img.Fields.ByClass()
	for _, c := range []FieldClass{ClassSlack, ClassResilient, ClassValue, ClassSDCProne, ClassSignature, ClassVersion} {
		fmt.Fprintf(&b, "  %-10s %5d bytes (%.1f%%)\n", c, byClass[c],
			100*float64(byClass[c])/float64(len(img.Meta)))
	}
	for _, r := range img.Fields.Ranges() {
		if only != nil && r.Class != *only {
			continue
		}
		fmt.Fprintf(&b, "%s\n", r)
	}
	return b.String()
}
