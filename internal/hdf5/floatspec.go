// Package hdf5 is a from-scratch, pure-Go implementation of the subset of
// the HDF5 binary file format that the paper's Nyx workload exercises:
// version-0 superblock, version-1 object headers with dataspace / datatype /
// fill-value / data-layout messages, and the version-1 B-tree + symbol-table
// node + local-heap machinery that implements groups.
//
// Two properties matter for reproducing the paper's HDF5 metadata study:
//
//  1. The reader derives its floating-point decoding entirely from the
//     datatype message fields (bit offset/precision, exponent location /
//     size / bias, mantissa location / size / normalization, sign
//     location). Corrupting any of those on-disk fields therefore changes
//     how raw data is interpreted exactly as the real library's would —
//     a faulty Exponent Bias rescales every value by a power of two, a
//     faulty Mantissa Size garbles value extraction, and so on (Table IV).
//
//  2. The writer records a FieldMap attributing every metadata byte to the
//     format field it encodes, which is what lets the byte-by-byte
//     injection campaign of Table III report per-field outcomes.
package hdf5

import (
	"fmt"
	"math"
)

// Normalization enumerates the mantissa normalization modes of the HDF5
// floating-point datatype bit field (bits 4-5 of the class bit field).
type Normalization uint8

// Mantissa normalization values from the HDF5 specification.
const (
	// NormNone: no normalization; the mantissa is a plain fraction.
	NormNone Normalization = 0
	// NormAlwaysSet: the most significant bit of the mantissa is stored
	// and always set.
	NormAlwaysSet Normalization = 1
	// NormImplied: the most significant mantissa bit is not stored but
	// implied to be 1 (IEEE 754 behaviour).
	NormImplied Normalization = 2
)

// FloatSpec is the floating-point property layout of an HDF5 datatype
// message (Figure 1 of the paper, bottom panel). All bit positions are
// relative to the least significant bit of the little-endian element word.
type FloatSpec struct {
	// Size is the element width in bytes (max 8).
	Size uint32
	// BitOffset is the bit offset of the first significant bit. Stored
	// and validated but not applied during decoding — mirroring the
	// library behaviour the paper observed (faults in this field are
	// benign).
	BitOffset uint16
	// BitPrecision is the number of significant bits (also benign).
	BitPrecision uint16
	// ExpLocation is the bit position of the exponent field.
	ExpLocation uint8
	// ExpSize is the exponent width in bits.
	ExpSize uint8
	// MantLocation is the bit position of the mantissa field.
	MantLocation uint8
	// MantSize is the mantissa width in bits.
	MantSize uint8
	// ExpBias is subtracted from the stored exponent.
	ExpBias uint32
	// SignLocation is the bit position of the sign bit.
	SignLocation uint8
	// Norm is the mantissa normalization mode.
	Norm Normalization
}

// IEEE754Double returns the spec describing the standard little-endian
// IEEE 754 binary64 layout, the datatype Nyx datasets use.
func IEEE754Double() FloatSpec {
	return FloatSpec{
		Size:         8,
		BitOffset:    0,
		BitPrecision: 64,
		ExpLocation:  52,
		ExpSize:      11,
		MantLocation: 0,
		MantSize:     52,
		ExpBias:      1023,
		SignLocation: 63,
		Norm:         NormImplied,
	}
}

// IEEE754Single returns the spec for little-endian IEEE 754 binary32.
// Its exponent bias 0x7F is the one the paper's correction example uses
// (0x7F corrupted to 0x73 scales data by 2^12).
func IEEE754Single() FloatSpec {
	return FloatSpec{
		Size:         4,
		BitOffset:    0,
		BitPrecision: 32,
		ExpLocation:  23,
		ExpSize:      8,
		MantLocation: 0,
		MantSize:     23,
		ExpBias:      127,
		SignLocation: 31,
		Norm:         NormImplied,
	}
}

// IsIEEEDouble reports whether the spec is bit-for-bit IEEE binary64, in
// which case codec fast paths apply.
func (s FloatSpec) IsIEEEDouble() bool { return s == IEEE754Double() }

// Validate checks the structural constraints the HDF5 library enforces at
// datatype decode time. Geometry that merely produces strange values (the
// SDC cases of Table IV) passes; only impossible layouts fail.
func (s FloatSpec) Validate() error {
	if s.Size == 0 || s.Size > 8 {
		return fmt.Errorf("hdf5: unsupported float size %d", s.Size)
	}
	if s.Norm > NormImplied {
		return fmt.Errorf("hdf5: invalid mantissa normalization %d", s.Norm)
	}
	return nil
}

// ConstraintsOK reports whether the floating-point geometry satisfies the
// IEEE-style invariants the paper's correction methodology exploits
// (Section V-A): the exponent sits immediately above the mantissa
// (ExpLocation == MantSize with MantLocation == 0) and mantissa + exponent
// + sign fill the precision (MantSize + ExpSize == BitPrecision - 1).
func (s FloatSpec) ConstraintsOK() bool {
	return s.MantLocation == 0 &&
		uint16(s.ExpLocation) == uint16(s.MantSize) &&
		uint16(s.MantSize)+uint16(s.ExpSize) == s.BitPrecision-1 &&
		uint16(s.SignLocation) == s.BitPrecision-1
}

func mask64(width uint8) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// word assembles the little-endian element bytes into a uint64.
func (s FloatSpec) word(raw []byte) uint64 {
	var w uint64
	n := int(s.Size)
	if n > len(raw) {
		n = len(raw)
	}
	for i := 0; i < n; i++ {
		w |= uint64(raw[i]) << (8 * uint(i))
	}
	return w
}

// Decode interprets one raw element according to the spec. It is total: no
// input panics, and geometry corrupted into nonsense yields ±Inf, NaN, or
// denormal-style values rather than errors — silent misinterpretation is
// precisely the mechanism behind the paper's metadata SDCs.
func (s FloatSpec) Decode(raw []byte) float64 {
	w := s.word(raw)
	sign := 1.0
	if s.SignLocation < 64 && (w>>s.SignLocation)&1 == 1 {
		sign = -1
	}
	var exp uint64
	if s.ExpLocation < 64 {
		exp = (w >> s.ExpLocation) & mask64(s.ExpSize)
	}
	var mant uint64
	if s.MantLocation < 64 {
		mant = (w >> s.MantLocation) & mask64(s.MantSize)
	}

	expAllOnes := s.ExpSize > 0 && s.ExpSize < 64 && exp == mask64(s.ExpSize)
	if expAllOnes && s.Norm == NormImplied {
		if mant == 0 {
			return sign * math.Inf(1)
		}
		return math.NaN()
	}

	mantScale := math.Ldexp(1, int(s.MantSize)) // 2^MantSize
	var m float64
	var e int
	switch s.Norm {
	case NormImplied:
		if exp == 0 {
			// Denormal: implied bit absent, exponent pinned.
			m = float64(mant) / mantScale
			e = 1 - int(s.ExpBias)
		} else {
			m = 1 + float64(mant)/mantScale
			e = int(exp) - int(s.ExpBias)
		}
	case NormAlwaysSet:
		// MSB stored: mantissa is m/2^(MantSize-1), nominally in [1,2).
		if s.MantSize == 0 {
			m = 0
		} else {
			m = float64(mant) / math.Ldexp(1, int(s.MantSize)-1)
		}
		e = int(exp) - int(s.ExpBias)
	default: // NormNone — also what a corrupted normalization field decodes as
		m = float64(mant) / mantScale
		e = int(exp) - int(s.ExpBias)
	}
	if m == 0 {
		return sign * 0
	}
	// Ldexp saturates to ±Inf / 0 for extreme exponents, which is what a
	// wildly corrupted bias produces.
	return sign * math.Ldexp(m, e)
}

// Encode renders v according to the spec. For the IEEE binary64 spec the
// encoding is bit-exact (it round-trips Decode for every finite float64).
// For other geometries it performs a round-to-nearest generic encoding;
// values outside the representable range saturate.
func (s FloatSpec) Encode(v float64) []byte {
	out := make([]byte, s.Size)
	if s.IsIEEEDouble() {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			out[i] = byte(bits >> (8 * uint(i)))
		}
		return out
	}
	var w uint64
	sign := uint64(0)
	if math.Signbit(v) {
		sign = 1
		v = -v
	}
	switch {
	case math.IsInf(v, 0):
		w = mask64(s.ExpSize) << s.ExpLocation
	case math.IsNaN(v):
		w = mask64(s.ExpSize)<<s.ExpLocation | 1<<s.MantLocation
	case v == 0:
		w = 0
	default:
		frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
		m := frac * 2              // [1, 2)
		e := exp - 1
		stored := int64(e) + int64(s.ExpBias)
		switch {
		case stored <= 0: // underflow to zero (denormals not emitted)
			w = 0
		case uint64(stored) >= mask64(s.ExpSize): // overflow to inf
			w = mask64(s.ExpSize) << s.ExpLocation
		default:
			var mantBits uint64
			switch s.Norm {
			case NormImplied:
				mantBits = uint64(math.Round((m - 1) * math.Ldexp(1, int(s.MantSize))))
				if mantBits > mask64(s.MantSize) { // rounding carried out
					mantBits = 0
					stored++
				}
			case NormAlwaysSet:
				mantBits = uint64(math.Round(m * math.Ldexp(1, int(s.MantSize)-1)))
				if mantBits > mask64(s.MantSize) {
					mantBits = mask64(s.MantSize)
				}
			default:
				mantBits = uint64(math.Round(m*math.Ldexp(1, int(s.MantSize)))) >> 1
				if mantBits > mask64(s.MantSize) {
					mantBits = mask64(s.MantSize)
				}
			}
			w = mantBits<<s.MantLocation | uint64(stored)<<s.ExpLocation
		}
	}
	if s.SignLocation < 64 {
		w |= sign << s.SignLocation
	}
	for i := 0; i < int(s.Size); i++ {
		out[i] = byte(w >> (8 * uint(i)))
	}
	return out
}

// DecodeSlice decodes count consecutive elements from raw. Short input
// yields an error — the condition the reader hits when a corrupted layout
// address points past end-of-file.
func (s FloatSpec) DecodeSlice(raw []byte, count int) ([]float64, error) {
	need := count * int(s.Size)
	if len(raw) < need {
		return nil, fmt.Errorf("hdf5: raw data truncated: need %d bytes, have %d", need, len(raw))
	}
	out := make([]float64, count)
	if s.IsIEEEDouble() {
		for i := range out {
			var bits uint64
			base := i * 8
			for b := 0; b < 8; b++ {
				bits |= uint64(raw[base+b]) << (8 * uint(b))
			}
			out[i] = math.Float64frombits(bits)
		}
		return out, nil
	}
	for i := range out {
		out[i] = s.Decode(raw[i*int(s.Size) : (i+1)*int(s.Size)])
	}
	return out, nil
}

// EncodeSlice encodes values into a contiguous raw buffer.
func (s FloatSpec) EncodeSlice(values []float64) []byte {
	out := make([]byte, len(values)*int(s.Size))
	if s.IsIEEEDouble() {
		for i, v := range values {
			bits := math.Float64bits(v)
			base := i * 8
			for b := 0; b < 8; b++ {
				out[base+b] = byte(bits >> (8 * uint(b)))
			}
		}
		return out
	}
	for i, v := range values {
		copy(out[i*int(s.Size):], s.Encode(v))
	}
	return out
}
