package hdf5

import (
	"bytes"
	"errors"
	"fmt"

	"ffis/internal/vfs"
)

// FormatError is returned when the reader rejects a file; it corresponds to
// the "exceptions thrown by the HDF5 library" that classify as crash in the
// paper's campaigns.
type FormatError struct {
	Field string // which structure failed validation
	Msg   string
}

func (e *FormatError) Error() string {
	return "hdf5: invalid " + e.Field + ": " + e.Msg
}

func formatErrf(field, format string, args ...any) error {
	return &FormatError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// FieldOffsets records the absolute file offsets of the correctable
// metadata fields of a dataset, enabling the in-place repair methodology of
// Section V-A.
type FieldOffsets struct {
	ClassBitField0 int // mantissa normalization byte
	ExpLocation    int
	ExpSize        int
	MantLocation   int
	MantSize       int
	ExpBias        int // 4 bytes
	ARD            int // 8 bytes (layout message address)
}

// Dataset is the parsed view of one dataset.
type Dataset struct {
	Name       string
	Dims       []uint64
	Spec       FloatSpec
	DataOffset uint64 // Address of Raw Data
	LayoutSize uint64 // contiguous storage size from the layout message
	// Offsets locates the repairable fields inside the file image.
	Offsets FieldOffsets
}

// ElemCount returns the number of elements implied by the dataspace.
func (d *Dataset) ElemCount() (uint64, error) {
	if len(d.Dims) == 0 {
		return 0, formatErrf("dataspace", "dataset %q has no dimensions", d.Name)
	}
	n := uint64(1)
	for _, dim := range d.Dims {
		if dim == 0 {
			return 0, formatErrf("dataspace", "zero-length dimension in %q", d.Name)
		}
		// Reject counts that cannot possibly fit in memory — the library
		// raises an allocation failure here.
		if dim > 1<<40 || n > (1<<40)/dim {
			return 0, formatErrf("dataspace", "implausible element count in %q", d.Name)
		}
		n *= dim
	}
	return n, nil
}

// File is a parsed HDF5 file.
type File struct {
	EOFAddress uint64
	Datasets   []*Dataset
	// MetadataEnd is the end of the highest parsed metadata structure.
	// Files written by this library place raw data immediately after the
	// metadata, so the first dataset's Address of Raw Data must equal
	// this value — the invariant behind the ARD auto-correction.
	MetadataEnd uint64

	raw []byte
}

// Dataset returns the dataset with the given link name.
func (f *File) Dataset(name string) (*Dataset, error) {
	for _, d := range f.Datasets {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, formatErrf("group", "dataset %q not found", name)
}

// ReadValues decodes the dataset's raw data according to its datatype.
//
// Tolerance follows the library behaviour the paper documents: a layout
// size LARGER than the dataspace requires is accepted (benign), a smaller
// one is rejected (crash), and a corrupted Address of Raw Data is honoured
// as long as it stays inside the file — silently shifting the data
// (the Table IV ARD SDC).
func (f *File) ReadValues(d *Dataset) ([]float64, error) {
	n, err := d.ElemCount()
	if err != nil {
		return nil, err
	}
	need := n * uint64(d.Spec.Size)
	if d.LayoutSize < need {
		return nil, formatErrf("layout.size",
			"storage size %d smaller than dataspace requires (%d)", d.LayoutSize, need)
	}
	if d.DataOffset > uint64(len(f.raw)) || d.DataOffset+need > uint64(len(f.raw)) {
		return nil, formatErrf("layout.addressOfRawData",
			"raw data [%d,%d) outside file of %d bytes", d.DataOffset, d.DataOffset+need, len(f.raw))
	}
	return d.Spec.DecodeSlice(f.raw[d.DataOffset:d.DataOffset+need], int(n))
}

// Open reads and parses path from the file system.
func Open(fs vfs.FS, path string) (*File, error) {
	raw, err := vfs.ReadFile(fs, path)
	if err != nil {
		return nil, err
	}
	return Parse(raw)
}

// ReadDataset is the one-call convenience: open path, locate name, decode.
func ReadDataset(fs vfs.FS, path, name string) ([]float64, []uint64, error) {
	f, err := Open(fs, path)
	if err != nil {
		return nil, nil, err
	}
	d, err := f.Dataset(name)
	if err != nil {
		return nil, nil, err
	}
	vals, err := f.ReadValues(d)
	if err != nil {
		return nil, nil, err
	}
	return vals, d.Dims, nil
}

// parser walks the metadata with bounds checking; every violation becomes a
// FormatError (crash class).
type parser struct {
	raw       []byte
	maxExtent uint64 // highest metadata byte touched
}

func (p *parser) slice(off, n uint64, what string) ([]byte, error) {
	if off > uint64(len(p.raw)) || off+n > uint64(len(p.raw)) {
		return nil, formatErrf(what, "range [%d,%d) outside file of %d bytes", off, off+n, len(p.raw))
	}
	if off+n > p.maxExtent {
		p.maxExtent = off + n
	}
	return p.raw[off : off+n], nil
}

func u16le(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func u32le(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func u64le(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * uint(i))
	}
	return v
}

// Parse validates and decodes a complete HDF5 file image.
func Parse(raw []byte) (*File, error) {
	p := &parser{raw: raw}
	sb, err := p.slice(0, superblockSize, "superblock")
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(sb[:8], signature[:]) {
		return nil, formatErrf("superblock.signature", "bad magic % x", sb[:8])
	}
	if sb[8] != 0 {
		return nil, formatErrf("superblock.versionSuperblock", "unsupported version %d", sb[8])
	}
	if sb[9] != 0 || sb[10] != 0 || sb[12] != 0 {
		return nil, formatErrf("superblock.version", "unsupported sub-version %d/%d/%d", sb[9], sb[10], sb[12])
	}
	if sb[13] != 8 || sb[14] != 8 {
		return nil, formatErrf("superblock.sizes", "offsets/lengths must be 8 bytes, got %d/%d", sb[13], sb[14])
	}
	leafK := u16le(sb[16:18])
	internalK := u16le(sb[18:20])
	if leafK == 0 || internalK == 0 {
		return nil, formatErrf("superblock.k", "zero B-tree rank")
	}
	if flags := u32le(sb[20:24]); flags != 0 {
		return nil, formatErrf("superblock.fileConsistencyFlags",
			"file marked in-write (flags %#x): writer never unlocked it", flags)
	}
	if base := u64le(sb[24:32]); base != 0 {
		return nil, formatErrf("superblock.baseAddress", "non-zero base address %d", base)
	}
	eof := u64le(sb[40:48])
	if eof != uint64(len(raw)) {
		return nil, formatErrf("superblock.endOfFileAddress",
			"EOF address %d does not match file size %d (truncated or corrupt file)", eof, len(raw))
	}

	// Root symbol table entry at offset 56.
	rootHdrAddr := u64le(sb[64:72])
	btreeAddr, heapAddr, err := p.parseSymbolTableHeader(rootHdrAddr)
	if err != nil {
		return nil, err
	}

	heapDataAddr, heapDataSize, err := p.parseHeap(heapAddr)
	if err != nil {
		return nil, err
	}

	snodAddrs, err := p.parseBTree(btreeAddr, internalK)
	if err != nil {
		return nil, err
	}

	f := &File{EOFAddress: eof, raw: raw}
	defer func() { f.MetadataEnd = p.maxExtent }()
	for _, snodAddr := range snodAddrs {
		entries, err := p.parseSNOD(snodAddr, leafK)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			name, err := p.heapString(heapDataAddr, heapDataSize, e.nameOff)
			if err != nil {
				return nil, err
			}
			ds, err := p.parseDatasetHeader(e.headerAddr, name)
			if err != nil {
				return nil, err
			}
			f.Datasets = append(f.Datasets, ds)
		}
	}
	return f, nil
}

// parseSymbolTableHeader parses a group object header and returns the
// B-tree and heap addresses from its symbol table message.
func (p *parser) parseSymbolTableHeader(addr uint64) (btree, heap uint64, err error) {
	hdr, err := p.slice(addr, ohdrPrefixSize, "rootHeader")
	if err != nil {
		return 0, 0, err
	}
	if hdr[0] != 1 {
		return 0, 0, formatErrf("rootHeader.version", "unsupported object header version %d", hdr[0])
	}
	numMsgs := u16le(hdr[2:4])
	hdrSize := u32le(hdr[8:12])
	msgs, err := p.parseMessages(addr+ohdrPrefixSize, uint64(hdrSize), numMsgs, "rootHeader")
	if err != nil {
		return 0, 0, err
	}
	for _, m := range msgs {
		if m.typ == msgSymbolTable {
			if len(m.body) < 16 {
				return 0, 0, formatErrf("rootHeader.symbolTable", "short message (%d bytes)", len(m.body))
			}
			return u64le(m.body[0:8]), u64le(m.body[8:16]), nil
		}
	}
	return 0, 0, formatErrf("rootHeader", "no symbol table message in group header")
}

type message struct {
	typ     uint16
	body    []byte
	bodyOff uint64 // absolute file offset of the message body
}

// parseMessages walks a v1 object header message block.
func (p *parser) parseMessages(addr, size uint64, count uint16, what string) ([]message, error) {
	block, err := p.slice(addr, size, what+".messages")
	if err != nil {
		return nil, err
	}
	var out []message
	off := 0
	for i := 0; i < int(count); i++ {
		if off+msgHeaderSize > len(block) {
			return nil, formatErrf(what+".numMessages", "message %d exceeds header block", i)
		}
		typ := u16le(block[off : off+2])
		sz := int(u16le(block[off+2 : off+4]))
		off += msgHeaderSize
		if off+sz > len(block) {
			return nil, formatErrf(what+".msgSize", "message %d body (%d bytes) exceeds header block", i, sz)
		}
		switch typ {
		case msgNil, msgDataspace, msgDatatype, msgFillValue, msgLayout, msgSymbolTable:
			out = append(out, message{typ: typ, body: block[off : off+sz], bodyOff: addr + uint64(off)})
		default:
			// The library rejects unknown message types that are not
			// flagged shareable/ignorable — corrupting a msgType byte
			// crashes the read.
			return nil, formatErrf(what+".msgType", "unknown header message type %#04x", typ)
		}
		off += sz
	}
	return out, nil
}

// parseHeap validates a local heap and returns its data segment location.
func (p *parser) parseHeap(addr uint64) (dataAddr, dataSize uint64, err error) {
	h, err := p.slice(addr, 32, "heap")
	if err != nil {
		return 0, 0, err
	}
	if !bytes.Equal(h[:4], heapSig[:]) {
		return 0, 0, formatErrf("heap.signature", "bad magic % x", h[:4])
	}
	if h[4] != 0 {
		return 0, 0, formatErrf("heap.version", "unsupported version %d", h[4])
	}
	dataSize = u64le(h[8:16])
	dataAddr = u64le(h[24:32])
	if _, err := p.slice(dataAddr, dataSize, "heap.dataSegment"); err != nil {
		return 0, 0, err
	}
	return dataAddr, dataSize, nil
}

// heapString extracts the NUL-terminated string at heap offset off.
func (p *parser) heapString(dataAddr, dataSize, off uint64) (string, error) {
	if off >= dataSize {
		return "", formatErrf("heap.linkNameOffset", "offset %d outside data segment of %d", off, dataSize)
	}
	seg, err := p.slice(dataAddr+off, dataSize-off, "heap.linkName")
	if err != nil {
		return "", err
	}
	i := bytes.IndexByte(seg, 0)
	if i < 0 {
		return "", formatErrf("heap.linkName", "unterminated string at offset %d", off)
	}
	return string(seg[:i]), nil
}

// parseBTree walks a v1 group B-tree node and returns the child SNOD
// addresses. Only leaf-level (level 0) nodes are produced by the writer.
func (p *parser) parseBTree(addr uint64, k uint16) ([]uint64, error) {
	nodeSize := uint64(24 + (2*int(k)+1)*8 + 2*int(k)*8)
	n, err := p.slice(addr, nodeSize, "btree")
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(n[:4], btreeSig[:]) {
		return nil, formatErrf("btree.signature", "bad magic % x", n[:4])
	}
	if n[4] != 0 {
		return nil, formatErrf("btree.nodeType", "node type %d is not a group node", n[4])
	}
	if n[5] != 0 {
		return nil, formatErrf("btree.nodeLevel", "internal nodes unsupported (level %d)", n[5])
	}
	used := u16le(n[6:8])
	if int(used) > 2*int(k) {
		return nil, formatErrf("btree.entriesUsed", "%d entries exceed capacity %d", used, 2*k)
	}
	var out []uint64
	// Entries alternate key/child starting at offset 24.
	for i := 0; i < int(used); i++ {
		childOff := 24 + 8 + i*16 // skip key_i
		out = append(out, u64le(n[childOff:childOff+8]))
	}
	return out, nil
}

type snodEntry struct {
	nameOff    uint64
	headerAddr uint64
}

// parseSNOD validates a symbol table node and returns its entries.
func (p *parser) parseSNOD(addr uint64, leafK uint16) ([]snodEntry, error) {
	size := uint64(8 + 2*int(leafK)*symEntrySize)
	n, err := p.slice(addr, size, "snod")
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(n[:4], snodSig[:]) {
		return nil, formatErrf("snod.signature", "bad magic % x", n[:4])
	}
	if n[4] != 1 {
		return nil, formatErrf("snod.version", "unsupported version %d", n[4])
	}
	numSyms := u16le(n[6:8])
	if int(numSyms) > 2*int(leafK) {
		return nil, formatErrf("snod.numSymbols", "%d symbols exceed capacity %d", numSyms, 2*leafK)
	}
	var out []snodEntry
	for i := 0; i < int(numSyms); i++ {
		base := 8 + i*symEntrySize
		out = append(out, snodEntry{
			nameOff:    u64le(n[base : base+8]),
			headerAddr: u64le(n[base+8 : base+16]),
		})
	}
	return out, nil
}

// parseDatasetHeader decodes a dataset object header into a Dataset.
func (p *parser) parseDatasetHeader(addr uint64, name string) (*Dataset, error) {
	what := "dataset[" + name + "]"
	hdr, err := p.slice(addr, ohdrPrefixSize, what+".objHeader")
	if err != nil {
		return nil, err
	}
	if hdr[0] != 1 {
		return nil, formatErrf(what+".objHeader.version", "unsupported version %d", hdr[0])
	}
	numMsgs := u16le(hdr[2:4])
	hdrSize := u32le(hdr[8:12])
	msgs, err := p.parseMessages(addr+ohdrPrefixSize, uint64(hdrSize), numMsgs, what)
	if err != nil {
		return nil, err
	}

	ds := &Dataset{Name: name}
	var haveSpace, haveType, haveLayout bool
	for _, m := range msgs {
		switch m.typ {
		case msgDataspace:
			if err := parseDataspace(m.body, ds, what); err != nil {
				return nil, err
			}
			haveSpace = true
		case msgDatatype:
			if err := parseDatatype(m.body, ds, what); err != nil {
				return nil, err
			}
			base := int(m.bodyOff)
			ds.Offsets.ClassBitField0 = base + 1
			ds.Offsets.ExpLocation = base + 12
			ds.Offsets.ExpSize = base + 13
			ds.Offsets.MantLocation = base + 14
			ds.Offsets.MantSize = base + 15
			ds.Offsets.ExpBias = base + 16
			haveType = true
		case msgLayout:
			if err := parseLayout(m.body, ds, what); err != nil {
				return nil, err
			}
			ds.Offsets.ARD = int(m.bodyOff) + 8
			haveLayout = true
		case msgFillValue:
			if len(m.body) < 1 || m.body[0] == 0 || m.body[0] > 3 {
				return nil, formatErrf(what+".fillValue.version", "unsupported fill value message")
			}
		}
	}
	if !haveSpace || !haveType || !haveLayout {
		return nil, formatErrf(what, "incomplete dataset header (space=%v type=%v layout=%v)",
			haveSpace, haveType, haveLayout)
	}
	return ds, nil
}

func parseDataspace(body []byte, ds *Dataset, what string) error {
	if len(body) < 8 {
		return formatErrf(what+".dataspace", "short message")
	}
	if body[0] != 1 {
		return formatErrf(what+".dataspace.version", "unsupported version %d", body[0])
	}
	ndims := int(body[1])
	if ndims == 0 || ndims > 8 {
		return formatErrf(what+".dataspace.dimensionality", "%d dimensions unsupported", ndims)
	}
	if len(body) < 8+ndims*8 {
		return formatErrf(what+".dataspace", "message too short for %d dimensions", ndims)
	}
	for i := 0; i < ndims; i++ {
		ds.Dims = append(ds.Dims, u64le(body[8+i*8:16+i*8]))
	}
	return nil
}

func parseDatatype(body []byte, ds *Dataset, what string) error {
	if len(body) < 20 {
		return formatErrf(what+".datatype", "short message")
	}
	classAndVersion := body[0]
	version := classAndVersion >> 4
	class := classAndVersion & 0x0F
	if version == 0 || version > 3 {
		return formatErrf(what+".datatype.version", "unsupported datatype version %d", version)
	}
	if class != datatypeClassFloat {
		return formatErrf(what+".datatype.class", "class %d is not floating-point", class)
	}
	norm := Normalization(body[1] >> 4 & 0x3)
	spec := FloatSpec{
		Size:         u32le(body[4:8]),
		BitOffset:    u16le(body[8:10]),
		BitPrecision: u16le(body[10:12]),
		ExpLocation:  body[12],
		ExpSize:      body[13],
		MantLocation: body[14],
		MantSize:     body[15],
		ExpBias:      u32le(body[16:20]),
		SignLocation: body[2], // class bit field byte 1: sign location
		Norm:         norm,
	}
	if err := spec.Validate(); err != nil {
		return formatErrf(what+".datatype", "%v", err)
	}
	ds.Spec = spec
	return nil
}

func parseLayout(body []byte, ds *Dataset, what string) error {
	if len(body) < 24 {
		return formatErrf(what+".layout", "short message")
	}
	if body[0] != 3 {
		return formatErrf(what+".layout.version", "unsupported layout version %d", body[0])
	}
	if body[1] != layoutClassContiguous {
		return formatErrf(what+".layout.class", "layout class %d unsupported", body[1])
	}
	ds.DataOffset = u64le(body[8:16])
	ds.LayoutSize = u64le(body[16:24])
	return nil
}

// IsFormatError reports whether err (or anything it wraps) is a FormatError,
// i.e. whether the library itself rejected the file.
func IsFormatError(err error) bool {
	var fe *FormatError
	return errors.As(err, &fe)
}
