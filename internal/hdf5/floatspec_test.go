package hdf5

import (
	"math"
	"testing"
	"testing/quick"

	"ffis/internal/stats"
)

func TestIEEEDoubleRoundTrip(t *testing.T) {
	spec := IEEE754Double()
	for _, v := range []float64{
		0, 1, -1, 0.5, 2, 1e-300, 1e300, math.Pi, -math.E,
		math.SmallestNonzeroFloat64, math.MaxFloat64,
	} {
		raw := spec.Encode(v)
		if got := spec.Decode(raw); got != v {
			t.Errorf("roundtrip(%g) = %g", v, got)
		}
	}
}

func TestIEEEDoubleDecodeMatchesHardware(t *testing.T) {
	// The generic field-driven decoder must agree bit-for-bit with the
	// hardware interpretation for the IEEE spec — this is what makes an
	// uncorrupted metadata read return exactly the written data.
	spec := IEEE754Double()
	f := func(bits uint64) bool {
		want := math.Float64frombits(bits)
		raw := make([]byte, 8)
		for i := range raw {
			raw[i] = byte(bits >> (8 * uint(i)))
		}
		got := spec.Decode(raw)
		if math.IsNaN(want) {
			return math.IsNaN(got)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIEEESingleDecode(t *testing.T) {
	spec := IEEE754Single()
	for _, v := range []float64{0, 1, -2.5, 1024, 0.015625} {
		raw := spec.Encode(v)
		if got := spec.Decode(raw); got != v {
			t.Errorf("single roundtrip(%g) = %g", v, got)
		}
	}
	if spec.ExpBias != 0x7F {
		t.Fatalf("single bias = %#x, want 0x7f (paper's correction example)", spec.ExpBias)
	}
}

func TestDecodeSpecials(t *testing.T) {
	spec := IEEE754Double()
	if got := spec.Decode(spec.Encode(math.Inf(1))); !math.IsInf(got, 1) {
		t.Errorf("+inf = %v", got)
	}
	if got := spec.Decode(spec.Encode(math.Inf(-1))); !math.IsInf(got, -1) {
		t.Errorf("-inf = %v", got)
	}
	if got := spec.Decode(spec.Encode(math.NaN())); !math.IsNaN(got) {
		t.Errorf("nan = %v", got)
	}
	// Negative zero keeps its sign.
	negZero := spec.Decode(spec.Encode(math.Copysign(0, -1)))
	if negZero != 0 || !math.Signbit(negZero) {
		t.Errorf("-0 = %v (signbit %v)", negZero, math.Signbit(negZero))
	}
}

func TestDecodeDenormal(t *testing.T) {
	spec := IEEE754Double()
	v := math.SmallestNonzeroFloat64
	if got := spec.Decode(spec.Encode(v)); got != v {
		t.Errorf("denormal = %g, want %g", got, v)
	}
}

// TestBiasFaultScalesByPowerOfTwo reproduces the Exponent Bias phenomenology
// of Table IV / Figure 5b: decreasing the bias by k scales every decoded
// value by 2^k, leaving relative structure intact.
func TestBiasFaultScalesByPowerOfTwo(t *testing.T) {
	good := IEEE754Double()
	faulty := good
	faulty.ExpBias -= 12 // the paper's example: 0x7f -> 0x73 scales by 2^12
	rng := stats.NewRNG(5)
	for i := 0; i < 200; i++ {
		v := rng.Float64()*3 + 0.1
		raw := good.Encode(v)
		got := faulty.Decode(raw)
		want := v * 4096
		if math.Abs(got-want)/want > 1e-12 {
			t.Fatalf("bias fault: decode(%g) = %g, want %g", v, got, want)
		}
	}
}

// TestNormalizationFaultShrinksValues reproduces the Mantissa Normalization
// bit-5 SDC: implied-MSB (2) corrupted to none (0) subtracts the leading 1,
// driving the dataset average from 1 toward ~0.5.
func TestNormalizationFaultShrinksValues(t *testing.T) {
	good := IEEE754Double()
	faulty := good
	faulty.Norm = NormNone
	rng := stats.NewRNG(7)
	var sumGood, sumBad float64
	const n = 2000
	for i := 0; i < n; i++ {
		v := 0.5 + rng.Float64() // mean 1.0
		raw := good.Encode(v)
		sumGood += v
		sumBad += faulty.Decode(raw)
	}
	meanGood, meanBad := sumGood/n, sumBad/n
	if math.Abs(meanGood-1) > 0.02 {
		t.Fatalf("setup: golden mean = %v", meanGood)
	}
	if meanBad >= meanGood || meanBad < 0.2 {
		t.Fatalf("normalization fault mean = %v, want substantially below 1", meanBad)
	}
}

// TestMantissaSizeFaultChangesValues reproduces the Mantissa Size SDC:
// geometry corruption garbles decoded values without erroring.
func TestMantissaSizeFaultChangesValues(t *testing.T) {
	good := IEEE754Double()
	faulty := good
	faulty.MantSize = 44 // one flipped bit: 52 ^ 0x18... pick a plausible corruption
	v := 1.7
	raw := good.Encode(v)
	got := faulty.Decode(raw)
	if math.IsNaN(got) {
		t.Fatal("mantissa-size corruption should still decode to a value")
	}
	if got == v {
		t.Fatal("mantissa-size corruption silently produced the original value")
	}
}

func TestNormAlwaysSetDecode(t *testing.T) {
	// Same field geometry as IEEE binary64 but with the mantissa MSB
	// stored explicitly (one bit less precision).
	spec := IEEE754Double()
	spec.Norm = NormAlwaysSet
	// Encode/decode consistency for the always-set path.
	for _, v := range []float64{1.0, 1.5, 3.25, 0.75} {
		raw := spec.Encode(v)
		got := spec.Decode(raw)
		if math.Abs(got-v)/v > 1e-9 {
			t.Errorf("always-set roundtrip(%g) = %g", v, got)
		}
	}
}

func TestDecodeToleratesInsaneGeometry(t *testing.T) {
	// Decode must be total: corrupted geometry yields values (possibly
	// Inf/NaN/0) but never panics — silent misinterpretation, not crash.
	rng := stats.NewRNG(11)
	for i := 0; i < 5000; i++ {
		spec := FloatSpec{
			Size:         uint32(rng.Intn(8) + 1),
			BitOffset:    uint16(rng.Uint64()),
			BitPrecision: uint16(rng.Uint64()),
			ExpLocation:  uint8(rng.Uint64()),
			ExpSize:      uint8(rng.Uint64()),
			MantLocation: uint8(rng.Uint64()),
			MantSize:     uint8(rng.Uint64()),
			ExpBias:      uint32(rng.Uint64()),
			SignLocation: uint8(rng.Uint64()),
			Norm:         Normalization(rng.Intn(3)),
		}
		raw := make([]byte, 8)
		for j := range raw {
			raw[j] = byte(rng.Uint64())
		}
		_ = spec.Decode(raw) // must not panic
	}
}

func TestValidateRejectsImpossible(t *testing.T) {
	s := IEEE754Double()
	s.Size = 0
	if s.Validate() == nil {
		t.Error("size 0 accepted")
	}
	s = IEEE754Double()
	s.Size = 16
	if s.Validate() == nil {
		t.Error("size 16 accepted")
	}
	s = IEEE754Double()
	s.Norm = 3
	if s.Validate() == nil {
		t.Error("normalization 3 accepted")
	}
	if err := IEEE754Double().Validate(); err != nil {
		t.Errorf("IEEE double rejected: %v", err)
	}
}

func TestConstraintsOK(t *testing.T) {
	if !IEEE754Double().ConstraintsOK() {
		t.Error("IEEE double should satisfy constraints")
	}
	if !IEEE754Single().ConstraintsOK() {
		t.Error("IEEE single should satisfy constraints")
	}
	s := IEEE754Double()
	s.MantSize = 50 // violates ExpLocation == MantSize
	if s.ConstraintsOK() {
		t.Error("corrupted mantissa size should violate constraints")
	}
	s = IEEE754Double()
	s.ExpLocation = 40
	if s.ConstraintsOK() {
		t.Error("corrupted exponent location should violate constraints")
	}
}

func TestDecodeSliceAndEncodeSlice(t *testing.T) {
	spec := IEEE754Double()
	vals := []float64{1, 2.5, -3, 0, 1e10}
	raw := spec.EncodeSlice(vals)
	if len(raw) != 40 {
		t.Fatalf("raw len = %d", len(raw))
	}
	got, err := spec.DecodeSlice(raw, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("slice[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
	if _, err := spec.DecodeSlice(raw, 6); err == nil {
		t.Fatal("short raw accepted")
	}
}

func TestDecodeSliceNonIEEE(t *testing.T) {
	spec := IEEE754Single()
	vals := []float64{1, 0.5, -4}
	raw := spec.EncodeSlice(vals)
	if len(raw) != 12 {
		t.Fatalf("raw len = %d", len(raw))
	}
	got, err := spec.DecodeSlice(raw, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("slice[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
}

func TestGenericEncodeRoundTripQuick(t *testing.T) {
	// Generic (non-fast-path) encode/decode round-trips within float32
	// precision for the IEEE single spec.
	spec := IEEE754Single()
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		v := (r.Float64() - 0.5) * 2000
		got := spec.Decode(spec.Encode(v))
		if v == 0 {
			return got == 0
		}
		return math.Abs(got-v)/math.Abs(v) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodeSaturation(t *testing.T) {
	spec := IEEE754Single()
	raw := spec.Encode(1e100) // beyond float32 range
	if got := spec.Decode(raw); !math.IsInf(got, 1) {
		t.Errorf("overflow encode = %v, want +inf", got)
	}
	raw = spec.Encode(1e-100) // below float32 denormal range
	if got := spec.Decode(raw); got != 0 {
		t.Errorf("underflow encode = %v, want 0", got)
	}
}
