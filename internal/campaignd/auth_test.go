package campaignd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ffis/internal/results"
)

// TestBearerTokenGatesEveryRoute proves the shared-secret middleware:
// with AuthToken set, every route answers 401 to missing or wrong
// credentials, a token-carrying worker completes the grid, and /metrics
// reflects the heartbeat-reported stage aggregates afterwards.
func TestBearerTokenGatesEveryRoute(t *testing.T) {
	t.Parallel()
	specs := testGrid([]string{"MT1"}, 4, 99)
	man, err := ManifestFor(specs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := results.Create(t.TempDir(), man)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(st, specs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.AuthToken = "hunter2"
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		name, header string
	}{
		{"missing", ""},
		{"wrong token", "Bearer hunter3"},
		{"wrong scheme", "Basic hunter2"},
		{"wrong length", "Bearer hunter2extra"},
	} {
		for _, route := range []string{"/lease", "/heartbeat", "/records", "/complete", "/progress", "/metrics", "/report"} {
			req, err := http.NewRequest(http.MethodPost, srv.URL+route, strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			if tc.header != "" {
				req.Header.Set("Authorization", tc.header)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnauthorized {
				t.Fatalf("%s %s: want 401, got %d", tc.name, route, resp.StatusCode)
			}
		}
	}

	// A worker without the secret is locked out with a clean error...
	bad := &Worker{ID: "intruder", Coordinator: srv.URL, Poll: 10 * time.Millisecond}
	if err := bad.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("tokenless worker should fail its first lease with a 401, got %v", err)
	}

	// ...and one carrying it runs the grid to completion, prefetch and all.
	w := &Worker{ID: "insider", Coordinator: srv.URL, Poll: 10 * time.Millisecond,
		Heartbeat: 50 * time.Millisecond, Token: "hunter2", Prefetch: true}
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !coord.Done() {
		t.Fatalf("grid not done: %+v", coord.Progress())
	}

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer hunter2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.SpecsDone != len(specs) || m.LeasesCompleted != len(specs) {
		t.Fatalf("metrics after a finished grid: %+v", m)
	}
	if m.RunsIngested != int64(len(specs)*4) {
		t.Fatalf("want %d runs ingested, got %d", len(specs)*4, m.RunsIngested)
	}
}

// TestMetricsCountsWorkersAndExpiries exercises the coordinator-side
// aggregation directly: heartbeats with stage aggregates show up as
// per-worker averages, and a lapsed lease increments the expiry counter.
func TestMetricsCountsWorkersAndExpiries(t *testing.T) {
	t.Parallel()
	coord, _, clock := coordForOneSpec(t, 8, 7, time.Minute)
	g, ok, _, err := coord.Lease("w1")
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}
	if !coord.Heartbeat(HeartbeatRequest{
		LeaseID: g.LeaseID, Worker: "w1",
		Done: 4, CloneMicros: 400, WorkloadNanos: 8_000_000, ClassifyMicros: 40, SimNanos: 4_000_000,
	}) {
		t.Fatal("heartbeat on a live lease refused")
	}
	m := coord.Metrics()
	if m.Workers != 1 || m.LeasesGranted != 1 {
		t.Fatalf("want 1 worker and 1 lease granted, got %+v", m)
	}
	if m.AvgCloneMicros != 100 || m.AvgWorkloadMillis != 2 {
		t.Fatalf("stage averages: want clone 100us, workload 2ms, got %+v", m)
	}

	// TTL lapses without a renewal: the next lease attempt expires it.
	*clock = clock.Add(2 * time.Minute)
	if _, _, _, err := coord.Lease("w2"); err != nil {
		t.Fatal(err)
	}
	if m := coord.Metrics(); m.LeasesExpired != 1 {
		t.Fatalf("want 1 expired lease, got %+v", m)
	}
}
