package campaignd

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"ffis/internal/experiments"
	"ffis/internal/results"
)

// Wire types of the coordinator protocol. Everything is JSON over HTTP —
// net/http and encoding/json only, matching the repository's no-new-deps
// rule — and every request that mutates state names its lease, which is
// the protocol's only fencing token: a revoked lease gets 410 Gone and
// the worker abandons the spec.

// LeaseRequest asks for the next pending spec.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseGrant is a granted work lease: run indices [Start, Spec.Runs) of
// Spec, valid while heartbeats arrive within the TTL.
type LeaseGrant struct {
	LeaseID   string               `json:"lease_id"`
	Spec      experiments.WireSpec `json:"spec"`
	Start     int                  `json:"start"`
	TTLMillis int64                `json:"ttl_ms"`
}

// LeaseResponse wraps a grant with the two no-work cases: Done (grid
// finished, worker should exit) and Retry (everything leased out or
// awaiting expiry, poll again).
type LeaseResponse struct {
	Done  bool        `json:"done,omitempty"`
	Retry bool        `json:"retry,omitempty"`
	Grant *LeaseGrant `json:"grant,omitempty"`
}

// HeartbeatRequest extends a lease. The optional Worker name plus
// cumulative stage aggregates — summed worker-side from its run-event
// stream — feed the coordinator's /metrics view; a bare lease renewal
// leaves them zero.
type HeartbeatRequest struct {
	LeaseID        string `json:"lease_id"`
	Worker         string `json:"worker,omitempty"`
	Done           int64  `json:"done,omitempty"`
	CloneMicros    int64  `json:"clone_us,omitempty"`
	WorkloadNanos  int64  `json:"workload_ns,omitempty"`
	ClassifyMicros int64  `json:"classify_us,omitempty"`
	SimNanos       int64  `json:"sim_ns,omitempty"`
}

// RecordsRequest streams a batch of finished records. Header rides along
// on the lease's first batch only.
type RecordsRequest struct {
	LeaseID string           `json:"lease_id"`
	Header  *results.Header  `json:"header,omitempty"`
	Records []results.Record `json:"records,omitempty"`
}

// CompleteRequest finalizes a fully delivered spec.
type CompleteRequest struct {
	LeaseID string `json:"lease_id"`
}

// ProgressResponse is the live grid view.
type ProgressResponse struct {
	Done  bool           `json:"done"`
	Specs []SpecProgress `json:"specs"`
}

// Handler exposes the coordinator over HTTP:
//
//	POST /lease      LeaseRequest     -> LeaseResponse
//	POST /heartbeat  HeartbeatRequest -> 204 | 410
//	POST /records    RecordsRequest   -> 204 | 409 | 410
//	POST /complete   CompleteRequest  -> 204 | 409 | 410
//	GET  /progress                    -> ProgressResponse
//	GET  /metrics                     -> Metrics
//	GET  /report?format=text|csv|json|markdown -> rendered report
//
// With AuthToken set, every route requires "Authorization: Bearer
// <token>" and answers 401 otherwise.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decode(w, r, &req) {
			return
		}
		grant, ok, done, err := c.Lease(req.Worker)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp := LeaseResponse{Done: done}
		if ok {
			resp.Grant = &grant
		} else if !done {
			resp.Retry = true
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decode(w, r, &req) {
			return
		}
		if !c.Heartbeat(req) {
			http.Error(w, errLeaseGone.Error(), http.StatusGone)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/records", func(w http.ResponseWriter, r *http.Request) {
		var req RecordsRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.Ingest(req.LeaseID, req.Header, req.Records); err != nil {
			http.Error(w, err.Error(), ingestStatus(err))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.Complete(req.LeaseID); err != nil {
			http.Error(w, err.Error(), ingestStatus(err))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ProgressResponse{Done: c.Done(), Specs: c.Progress()})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Metrics())
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		out, err := c.Report(r.URL.Query().Get("format"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		io.WriteString(w, out)
	})
	if c.AuthToken != "" {
		return requireBearer(c.AuthToken, mux)
	}
	return mux
}

// requireBearer gates next behind a shared-secret bearer token, compared
// in constant time.
func requireBearer(token string, next http.Handler) http.Handler {
	want := []byte("Bearer " + token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got := []byte(r.Header.Get("Authorization"))
		if len(got) != len(want) || subtle.ConstantTimeCompare(got, want) != 1 {
			http.Error(w, "campaignd: missing or invalid bearer token", http.StatusUnauthorized)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// ingestStatus maps coordinator errors to HTTP: a dead lease is Gone (the
// worker should walk away quietly), everything else about a live lease —
// out-of-order records, header drift, store refusals — is a Conflict the
// worker must treat as fatal for the spec.
func ingestStatus(err error) int {
	if errors.Is(err, errLeaseGone) {
		return http.StatusGone
	}
	return http.StatusConflict
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("campaignd: bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
