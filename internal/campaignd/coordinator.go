// Package campaignd is the distributed campaign service: a coordinator
// that decomposes a grid of campaign specs into per-spec work leases and a
// worker that executes leases against the local engine, streaming records
// back over HTTP. The coordinator owns the results store; workers own
// compute and nothing else.
//
// The protocol leans entirely on the determinism the store already
// guarantees: a run's record is a pure function of (spec, seed, index), a
// spec's record file is always an in-order prefix, and resume starts at
// the first missing index. A lease is therefore just "run indices [start,
// runs) of spec K"; a worker that dies mid-lease leaves the coordinator
// holding a valid prefix, and the re-issued lease starts where the prefix
// ends. No replicated state, no fencing tokens beyond the lease id, no
// reconciliation: byte-identity of the final store with a single-machine
// run is the correctness criterion, and CI asserts it with a worker
// killed mid-spec.
package campaignd

import (
	"fmt"
	"sync"
	"time"

	"ffis/internal/core"
	"ffis/internal/experiments"
	"ffis/internal/results"
)

// DefaultLeaseTTL is how long a lease stays valid without a heartbeat.
const DefaultLeaseTTL = time.Minute

// Lease state machine per spec: pending -> leased -> (complete | expired
// -> pending again). A spec whose record file finalizes is done forever.
type specState struct {
	ws   experiments.WireSpec
	sink *results.SpecSink // open while leased; nil between leases
	// spec caches the rebuilt campaign spec for header validation; built
	// lazily on the first record batch so startup stays cheap.
	spec  *core.CampaignSpec
	lease *lease
	done  bool
	// resumeAt remembers how much of the spec was persisted when its last
	// lease lapsed, so Progress can report it while no sink is open.
	resumeAt int
}

type lease struct {
	id      string
	worker  string
	expires time.Time
	// next is the run index the coordinator expects to ingest next:
	// records must arrive in strict index order so the on-disk partial is
	// always the resumable prefix the re-queue discipline depends on.
	next int
	// header reports whether the worker's campaign header has been
	// validated and written/confirmed for this lease.
	header bool
}

// Coordinator decomposes a spec grid into leases and ingests the record
// streams workers send back. All methods are safe for concurrent use; the
// HTTP layer in server.go is a thin JSON shim over them.
type Coordinator struct {
	store  *results.Store
	unlock func()
	ttl    time.Duration
	now    func() time.Time

	// AuthToken, when non-empty, makes Handler refuse any request that
	// does not carry "Authorization: Bearer <token>" with 401 — the
	// shared-secret first slice of endpoint hardening. Set it before the
	// handler serves.
	AuthToken string

	mu     sync.Mutex
	order  []string
	states map[string]*specState
	nLease int

	// Operational counters behind GET /metrics. runsIngested counts
	// records accepted into the store; workerStats holds each worker's
	// latest cumulative per-stage report from its heartbeats.
	started         time.Time
	runsIngested    int64
	leasesExpired   int
	leasesCompleted int
	workerStats     map[string]workerStat
}

// workerStat is one worker's cumulative event-stream aggregate, as
// reported on its heartbeats.
type workerStat struct {
	done                               int64
	cloneUS, workNS, classifyUS, simNS int64
}

// ManifestFor derives the store manifest a spec grid requires: one seed
// and one run budget (mixed grids are refused, mirroring the single
// -seed/-runs flags of a local grid), and the shared backend string when
// every spec runs the same non-default backend — which is what arms the
// Merge/resume backend guard for distributed shards.
func ManifestFor(specs []experiments.WireSpec) (results.Manifest, error) {
	if len(specs) == 0 {
		return results.Manifest{}, fmt.Errorf("campaignd: no specs")
	}
	man := results.Manifest{Seed: specs[0].Seed, Runs: specs[0].Runs}
	backend, uniform := specs[0].Backend, true
	for _, ws := range specs {
		if ws.Seed != man.Seed || ws.Runs != man.Runs {
			return results.Manifest{}, fmt.Errorf("campaignd: specs disagree on campaign parameters (seed %d vs %d, runs %d vs %d); one coordinator serves one campaign",
				man.Seed, ws.Seed, man.Runs, ws.Runs)
		}
		if ws.Backend != backend {
			uniform = false
		}
	}
	if uniform && backend != "" && backend != "mem" {
		man.Backend = backend
	}
	return man, nil
}

// NewCoordinator adopts a spec grid into the store and prepares to lease
// it out. Every spec must share the store's seed and run budget — the
// manifest records one of each, exactly as a single-machine grid would.
// The store's inter-process lock is held until Close: one coordinator per
// store, and no local RunGrid can race it.
func NewCoordinator(st *results.Store, specs []experiments.WireSpec, ttl time.Duration) (*Coordinator, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("campaignd: no specs to serve")
	}
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	man := st.Manifest()
	keys := make([]string, 0, len(specs))
	states := make(map[string]*specState, len(specs))
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
		ws := specs[i].Normalized()
		if ws.Seed != man.Seed || ws.Runs != man.Runs {
			return nil, fmt.Errorf("campaignd: spec %q wants seed=%d runs=%d, store %s holds seed=%d runs=%d",
				ws.Key, ws.Seed, ws.Runs, st.Dir(), man.Seed, man.Runs)
		}
		if states[ws.Key] != nil {
			return nil, fmt.Errorf("campaignd: duplicate spec key %q", ws.Key)
		}
		states[ws.Key] = &specState{ws: ws, done: st.Finalized(ws.Key)}
		keys = append(keys, ws.Key)
	}
	if err := st.EnsureSpecs(keys); err != nil {
		return nil, err
	}
	unlock, err := st.Lock()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		store:       st,
		unlock:      unlock,
		ttl:         ttl,
		now:         time.Now,
		order:       keys,
		states:      states,
		workerStats: map[string]workerStat{},
	}
	c.started = c.now()
	return c, nil
}

// Close releases the store lock and abandons open leases; partial record
// files stay on disk, resumable by the next coordinator over this store.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, st := range c.states {
		if st.sink != nil {
			if err := st.sink.Close(); err != nil && first == nil {
				first = err
			}
			st.sink = nil
			st.lease = nil
		}
	}
	if c.unlock != nil {
		c.unlock()
		c.unlock = nil
	}
	return first
}

// expireLocked lazily revokes lapsed leases: the sink closes (keeping the
// in-order partial prefix), and the spec returns to the pending pool with
// its resume point advanced to everything the dead worker delivered.
// Called under c.mu at the head of every state-changing entry point, so
// expiry needs no background goroutine and tests need no clock control.
func (c *Coordinator) expireLocked() {
	now := c.now()
	for _, st := range c.states {
		if st.lease != nil && now.After(st.lease.expires) {
			st.resumeAt = st.lease.next
			st.lease = nil
			c.leasesExpired++
			if st.sink != nil {
				st.sink.Close()
				st.sink = nil
			}
		}
	}
}

// Lease hands the caller the next pending spec, opening (or recovering)
// its record stream to find the resume index. ok is false when nothing is
// leasable right now; done reports whether the whole grid has finalized —
// the worker's signal to exit rather than poll again.
func (c *Coordinator) Lease(worker string) (l LeaseGrant, ok, done bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	done = true
	for _, key := range c.order {
		st := c.states[key]
		if st.done {
			continue
		}
		done = false
		if st.lease != nil {
			continue
		}
		if st.sink == nil {
			sink, err := c.store.SpecSink(key, st.ws.Runs, results.Shard{})
			if err != nil {
				return LeaseGrant{}, false, false, err
			}
			st.sink = sink
		}
		c.nLease++
		st.lease = &lease{
			id:      fmt.Sprintf("lease-%d", c.nLease),
			worker:  worker,
			expires: c.now().Add(c.ttl),
			next:    st.sink.Persisted(),
			header:  st.sink.Header() != nil,
		}
		return LeaseGrant{
			LeaseID:   st.lease.id,
			Spec:      st.ws,
			Start:     st.lease.next,
			TTLMillis: c.ttl.Milliseconds(),
		}, true, false, nil
	}
	return LeaseGrant{}, false, done, nil
}

// findLease resolves a lease id to its spec state, under c.mu. A revoked
// or unknown lease returns nil: the caller translates that to "gone", the
// worker's cue to abandon the spec (someone else owns it now).
func (c *Coordinator) findLease(id string) *specState {
	for _, st := range c.states {
		if st.lease != nil && st.lease.id == id {
			return st
		}
	}
	return nil
}

// Heartbeat extends a lease; the request's optional cumulative stage
// aggregates (derived worker-side from the run-event stream) refresh that
// worker's row of the /metrics view. false means the lease has been
// revoked (or never existed): the worker must stop computing the spec.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	if req.Worker != "" {
		c.workerStats[req.Worker] = workerStat{
			done:       req.Done,
			cloneUS:    req.CloneMicros,
			workNS:     req.WorkloadNanos,
			classifyUS: req.ClassifyMicros,
			simNS:      req.SimNanos,
		}
	}
	st := c.findLease(req.LeaseID)
	if st == nil {
		return false
	}
	st.lease.expires = c.now().Add(c.ttl)
	return true
}

// Ingest validates and persists a batch of records from a live lease.
// The first batch must carry the campaign header, which is checked both
// against the spec (HeaderMatchesSpec — the worker built the world we
// asked for) and against any recovered header from a previous worker's
// prefix (SpecSink.BeginHeader — profile drift across workers is refused).
// Records must arrive in strict index order starting at the lease's
// resume point; any gap or repeat is an error, not a buffer.
func (c *Coordinator) Ingest(leaseID string, header *results.Header, recs []results.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	st := c.findLease(leaseID)
	if st == nil {
		return errLeaseGone
	}
	if header != nil {
		if st.spec == nil {
			spec, err := st.ws.CampaignSpec()
			if err != nil {
				return err
			}
			st.spec = &spec
		}
		if err := results.HeaderMatchesSpec(*header, *st.spec); err != nil {
			return err
		}
		// On a re-leased spec the sink recovered the previous worker's
		// header; BeginHeader compares against it, so a successor whose
		// world profiled differently is refused here.
		if err := st.sink.BeginHeader(*header); err != nil {
			return err
		}
		st.lease.header = true
	} else if !st.lease.header {
		return fmt.Errorf("campaignd: spec %q: first record batch must carry the campaign header", st.ws.Key)
	}
	for _, rec := range recs {
		if rec.Index != st.lease.next {
			return fmt.Errorf("campaignd: spec %q: record %d out of order (expected %d): workers must stream in strict index order",
				st.ws.Key, rec.Index, st.lease.next)
		}
		if err := st.sink.Append(rec); err != nil {
			return err
		}
		st.lease.next++
		c.runsIngested++
	}
	st.lease.expires = c.now().Add(c.ttl)
	return nil
}

// Complete finalizes a spec whose lease delivered every remaining run:
// the partial renames atomically into its final form, the same durable
// completion marker a local RunGrid writes.
func (c *Coordinator) Complete(leaseID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	st := c.findLease(leaseID)
	if st == nil {
		return errLeaseGone
	}
	if st.lease.next != st.ws.Runs {
		return fmt.Errorf("campaignd: spec %q: complete with %d of %d runs ingested",
			st.ws.Key, st.lease.next, st.ws.Runs)
	}
	if err := st.sink.Finalize(); err != nil {
		return err
	}
	st.sink = nil
	st.lease = nil
	st.done = true
	c.leasesCompleted++
	return nil
}

// errLeaseGone marks requests against a lease the coordinator no longer
// honors; the HTTP layer renders it as 410 Gone.
var errLeaseGone = fmt.Errorf("campaignd: lease expired or unknown")

// SpecProgress is one row of the live grid view.
type SpecProgress struct {
	Key       string `json:"key"`
	Runs      int    `json:"runs"`
	Persisted int    `json:"persisted"`
	State     string `json:"state"` // pending | leased | done
	Worker    string `json:"worker,omitempty"`
}

// Progress reports the grid's live state, in submission order.
func (c *Coordinator) Progress() []SpecProgress {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	out := make([]SpecProgress, 0, len(c.order))
	for _, key := range c.order {
		st := c.states[key]
		p := SpecProgress{Key: key, Runs: st.ws.Runs}
		switch {
		case st.done:
			p.State, p.Persisted = "done", st.ws.Runs
		case st.lease != nil:
			p.State, p.Persisted, p.Worker = "leased", st.lease.next, st.lease.worker
		default:
			p.State, p.Persisted = "pending", st.resumeAt
		}
		out = append(out, p)
	}
	return out
}

// Metrics is the coordinator's operational snapshot (GET /metrics):
// ingest throughput, grid state, lease churn, and the per-run stage
// latency averages aggregated from every worker's event-stream reports.
type Metrics struct {
	UptimeMillis int64   `json:"uptime_ms"`
	RunsIngested int64   `json:"runs_ingested"`
	RunsPerSec   float64 `json:"runs_per_sec"`

	SpecsDone    int `json:"specs_done"`
	SpecsLeased  int `json:"specs_leased"`
	SpecsPending int `json:"specs_pending"`

	LeasesGranted   int `json:"leases_granted"`
	LeasesExpired   int `json:"leases_expired"`
	LeasesCompleted int `json:"leases_completed"`

	// Workers counts the workers that have reported stats on a heartbeat;
	// the averages below are per completed run across all of them.
	Workers           int     `json:"workers"`
	AvgCloneMicros    float64 `json:"avg_clone_us,omitempty"`
	AvgWorkloadMillis float64 `json:"avg_workload_ms,omitempty"`
	AvgClassifyMicros float64 `json:"avg_classify_us,omitempty"`
	AvgSimMillis      float64 `json:"avg_sim_ms,omitempty"`
}

// Metrics renders the live operational view.
func (c *Coordinator) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	m := Metrics{
		RunsIngested:    c.runsIngested,
		LeasesGranted:   c.nLease,
		LeasesExpired:   c.leasesExpired,
		LeasesCompleted: c.leasesCompleted,
		Workers:         len(c.workerStats),
	}
	for _, st := range c.states {
		switch {
		case st.done:
			m.SpecsDone++
		case st.lease != nil:
			m.SpecsLeased++
		default:
			m.SpecsPending++
		}
	}
	if elapsed := c.now().Sub(c.started); elapsed > 0 {
		m.UptimeMillis = elapsed.Milliseconds()
		m.RunsPerSec = float64(c.runsIngested) / elapsed.Seconds()
	}
	var total workerStat
	for _, ws := range c.workerStats {
		total.done += ws.done
		total.cloneUS += ws.cloneUS
		total.workNS += ws.workNS
		total.classifyUS += ws.classifyUS
		total.simNS += ws.simNS
	}
	if total.done > 0 {
		n := float64(total.done)
		m.AvgCloneMicros = float64(total.cloneUS) / n
		m.AvgWorkloadMillis = float64(total.workNS) / n / 1e6
		m.AvgClassifyMicros = float64(total.classifyUS) / n
		m.AvgSimMillis = float64(total.simNS) / n / 1e6
	}
	return m
}

// Done reports whether every spec has finalized.
func (c *Coordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.states {
		if !st.done {
			return false
		}
	}
	return true
}

// Report renders the store's current contents through results.Report —
// the live submit-and-watch view; partially complete specs render from
// their in-order prefixes.
func (c *Coordinator) Report(format string) (string, error) {
	return results.Report(c.store, format)
}
