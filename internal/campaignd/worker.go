package campaignd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ffis/internal/core"
	"ffis/internal/results"
)

// Worker executes leases against the local campaign engine and streams
// finished records back to the coordinator. One worker process serves
// many leases in sequence; the engine persists across them, so two leases
// over the same world (same cell, different fault models) share one Setup
// and one profile pass exactly like cells of a local grid.
type Worker struct {
	// ID names the worker in leases and progress views.
	ID string
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// Client is the HTTP client; nil uses http.DefaultClient.
	Client *http.Client
	// Engine runs the campaigns; nil builds a private one from Jobs.
	Engine *core.Engine
	// Jobs bounds engine parallelism when Engine is nil (0 = GOMAXPROCS).
	Jobs int
	// Poll is how long to wait when the coordinator has nothing leasable
	// (default 500ms).
	Poll time.Duration
	// Heartbeat is the lease-renewal interval; 0 derives TTL/3 from each
	// grant.
	Heartbeat time.Duration
	// Batch caps records per POST /records (default 64).
	Batch int
	// FailAfterRecords, when positive, makes the worker die (Run returns
	// an error) once it has streamed that many records on its current
	// lease — the fault the end-to-end test injects to prove a killed
	// worker's prefix is reused byte-identically.
	FailAfterRecords int
	// Token is the coordinator's shared bearer secret; requests carry it
	// as "Authorization: Bearer <token>" when set.
	Token string
	// Prefetch fetches lease N+1 while spec N is still executing, hiding
	// lease latency on short specs. The prefetched lease is heartbeated
	// until adopted; if the worker dies first, it simply expires and
	// re-queues — record bytes are unaffected either way.
	Prefetch bool
	// Events, when non-nil, is the bus the worker's engine publishes the
	// run-lifecycle stream to (the CLI subscribes its renderer and trace
	// writer there). Nil builds a private bus: the worker always consumes
	// the stream itself to derive heartbeat progress and barrier-aligned
	// batch flushes.
	Events *core.EventBus
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)

	// stats accumulates this worker's RunDone aggregates from its event
	// subscription; heartbeats report them cumulatively to /metrics.
	stats struct {
		done, cloneUS, workNS, classifyUS, simNS atomic.Int64
	}
	// curSink is the remote sink of the lease currently executing; the
	// event subscription flushes it at adaptive barriers so the durable
	// prefix on the coordinator tracks every stopping decision.
	sinkMu  sync.Mutex
	curSink *remoteSink
}

// errWorkerKilled is the simulated mid-lease death of FailAfterRecords.
var errWorkerKilled = errors.New("campaignd: worker killed by FailAfterRecords test hook")

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(format, args...)
	}
}

func (w *Worker) engine() *core.Engine {
	if w.Engine == nil {
		w.Engine = &core.Engine{Jobs: w.Jobs}
	}
	return w.Engine
}

// consumeEvent is the worker's own subscription to the run-event stream:
// RunDone aggregates feed the heartbeat's /metrics report, and Barrier
// events flush the current lease's buffered records so the coordinator's
// durable prefix aligns with every adaptive stopping decision.
func (w *Worker) consumeEvent(ev core.Event) {
	switch ev.Kind {
	case core.EventRunDone:
		w.stats.done.Add(1)
		w.stats.cloneUS.Add(ev.CloneMicros)
		w.stats.workNS.Add(ev.WorkloadNanos)
		w.stats.classifyUS.Add(ev.ClassifyMicros)
		w.stats.simNS.Add(ev.SimNanos)
	case core.EventBarrier:
		w.sinkMu.Lock()
		s := w.curSink
		w.sinkMu.Unlock()
		if s != nil {
			s.flush()
		}
	}
}

// heartbeatReq builds a lease renewal carrying the worker's cumulative
// event-stream aggregates.
func (w *Worker) heartbeatReq(leaseID string) HeartbeatRequest {
	return HeartbeatRequest{
		LeaseID:        leaseID,
		Worker:         w.ID,
		Done:           w.stats.done.Load(),
		CloneMicros:    w.stats.cloneUS.Load(),
		WorkloadNanos:  w.stats.workNS.Load(),
		ClassifyMicros: w.stats.classifyUS.Load(),
		SimNanos:       w.stats.simNS.Load(),
	}
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 500 * time.Millisecond
}

// Run leases and executes specs until the coordinator reports the grid
// done (returns nil), the context cancels, or the worker hits a fatal
// error. A lease lost to expiry (heartbeat lapse, slow network) is not
// fatal: the worker abandons it and asks for the next one, trusting the
// coordinator to have re-queued the remainder.
func (w *Worker) Run(ctx context.Context) error {
	// The worker always consumes the run-event stream itself (heartbeat
	// progress, barrier flushes); a CLI-provided bus just adds its own
	// subscribers alongside.
	bus := w.Events
	if bus == nil {
		bus = core.NewEventBus()
		defer bus.Close()
	}
	bus.Subscribe(4096, w.consumeEvent)
	if e := w.engine(); e.Events == nil {
		e.Events = bus
	}
	var pending *prefetchedLease
	defer func() {
		// A prefetched lease the worker never got to: stop its keep-alive
		// so the coordinator re-queues the spec after one TTL.
		if pending != nil {
			pending.take()
		}
	}()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var grant *LeaseGrant
		var done bool
		if pending != nil {
			grant = pending.take()
			pending = nil
		}
		if grant == nil {
			var resp LeaseResponse
			status, err := w.post("/lease", LeaseRequest{Worker: w.ID}, &resp)
			if err != nil {
				return fmt.Errorf("campaignd: worker %s: lease: %w", w.ID, err)
			}
			if status != http.StatusOK {
				return fmt.Errorf("campaignd: worker %s: lease: HTTP %d", w.ID, status)
			}
			done, grant = resp.Done, resp.Grant
		}
		switch {
		case done:
			w.logf("worker %s: grid complete", w.ID)
			return nil
		case grant == nil:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.poll()):
			}
		default:
			if w.Prefetch {
				pending = w.startPrefetch(ctx)
			}
			err := w.execute(ctx, *grant)
			switch {
			case err == nil:
			case errors.Is(err, core.ErrAborted), errors.Is(err, errLeaseLost):
				w.logf("worker %s: lost lease %s on %q, moving on", w.ID, grant.LeaseID, grant.Spec.Key)
			default:
				return err
			}
		}
	}
}

// prefetchedLease is a lease fetched ahead of need: while spec N still
// computes, a goroutine asks the coordinator for spec N+1 and keeps the
// grant alive with heartbeats until the main loop adopts or abandons it.
// Correctness never depends on it: an abandoned prefetch simply expires
// and re-queues, and the records of the next spec are the same bytes
// whether its lease was prefetched or polled for.
type prefetchedLease struct {
	w     *Worker
	mu    sync.Mutex
	grant *LeaseGrant
	stop  chan struct{}
	done  chan struct{}
}

func (w *Worker) startPrefetch(ctx context.Context) *prefetchedLease {
	p := &prefetchedLease{w: w, stop: make(chan struct{}), done: make(chan struct{})}
	go p.run(ctx)
	return p
}

func (p *prefetchedLease) run(ctx context.Context) {
	defer close(p.done)
	var resp LeaseResponse
	status, err := p.w.post("/lease", LeaseRequest{Worker: p.w.ID}, &resp)
	if err != nil || status != http.StatusOK || resp.Grant == nil {
		// Nothing to prefetch (all leased out, grid done, coordinator
		// unreachable): the main loop proceeds exactly as without prefetch.
		return
	}
	p.mu.Lock()
	p.grant = resp.Grant
	p.mu.Unlock()
	interval := p.w.Heartbeat
	if interval <= 0 {
		interval = time.Duration(resp.Grant.TTLMillis) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			status, err := p.w.post("/heartbeat", p.w.heartbeatReq(resp.Grant.LeaseID), nil)
			if err != nil || status != http.StatusNoContent {
				// Lease lost; the coordinator has re-queued the spec.
				p.mu.Lock()
				p.grant = nil
				p.mu.Unlock()
				return
			}
		}
	}
}

// take stops the keep-alive and hands over the grant — nil when the
// prefetch came back empty or the lease lapsed in the meantime.
func (p *prefetchedLease) take() *LeaseGrant {
	close(p.stop)
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.grant
}

// errLeaseLost reports a 410 from the coordinator mid-lease: the spec has
// been re-queued and belongs to someone else now.
var errLeaseLost = errors.New("campaignd: lease revoked by coordinator")

// execute runs one lease: rebuild the spec's world from its wire form,
// run indices [Start, Runs) with records streaming to the coordinator,
// then finalize. A background heartbeat keeps the lease alive; if it ever
// fails, the campaign's Abort hook stops dispatching new runs — compute
// halts as soon as the work stops being ours.
func (w *Worker) execute(ctx context.Context, grant LeaseGrant) error {
	spec, err := grant.Spec.CampaignSpec()
	if err != nil {
		return fmt.Errorf("campaignd: worker %s: %w", w.ID, err)
	}
	w.logf("worker %s: leased %q runs [%d,%d)", w.ID, grant.Spec.Key, grant.Start, grant.Spec.Runs)

	var revoked atomic.Bool
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx, grant, &revoked)

	sink := &remoteSink{w: w, leaseID: grant.LeaseID, next: grant.Start, pending: map[int]results.Record{}}
	w.sinkMu.Lock()
	w.curSink = sink
	w.sinkMu.Unlock()
	defer func() {
		w.sinkMu.Lock()
		w.curSink = nil
		w.sinkMu.Unlock()
	}()
	spec.Config.Sink = sink
	spec.Config.RunFilter = core.LeaseFilter(grant.Start)
	spec.Config.DiscardRecords = true
	spec.Config.Abort = func() bool { return revoked.Load() || ctx.Err() != nil }

	res := w.engine().Run([]core.CampaignSpec{spec})[0]
	stopHB()
	if res.Err != nil {
		if revoked.Load() && errors.Is(res.Err, core.ErrAborted) {
			return errLeaseLost
		}
		return fmt.Errorf("campaignd: worker %s: spec %q: %w", w.ID, grant.Spec.Key, res.Err)
	}
	if err := sink.flush(); err != nil {
		return fmt.Errorf("campaignd: worker %s: spec %q: %w", w.ID, grant.Spec.Key, err)
	}
	status, err := w.post("/complete", CompleteRequest{LeaseID: grant.LeaseID}, nil)
	if err != nil {
		return fmt.Errorf("campaignd: worker %s: complete %q: %w", w.ID, grant.Spec.Key, err)
	}
	if status == http.StatusGone {
		return errLeaseLost
	}
	if status != http.StatusNoContent {
		return fmt.Errorf("campaignd: worker %s: complete %q: HTTP %d", w.ID, grant.Spec.Key, status)
	}
	w.logf("worker %s: finalized %q", w.ID, grant.Spec.Key)
	return nil
}

// heartbeatLoop renews the lease until cancelled; any refusal or
// transport failure marks the lease revoked, which the campaign's Abort
// hook observes before each further run dispatch.
func (w *Worker) heartbeatLoop(ctx context.Context, grant LeaseGrant, revoked *atomic.Bool) {
	interval := w.Heartbeat
	if interval <= 0 {
		interval = time.Duration(grant.TTLMillis) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			status, err := w.post("/heartbeat", w.heartbeatReq(grant.LeaseID), nil)
			if err != nil || status != http.StatusNoContent {
				revoked.Store(true)
				return
			}
		}
	}
}

// post sends one JSON request; out (when non-nil) decodes a 200 body.
// Non-2xx statuses are returned, not errors — callers map them.
func (w *Worker) post(path string, body, out any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPost, w.Coordinator+path, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.Token)
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	msg, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(msg, out); err != nil {
			return resp.StatusCode, err
		}
	}
	if resp.StatusCode >= 400 && resp.StatusCode != http.StatusGone {
		return resp.StatusCode, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return resp.StatusCode, nil
}

// remoteSink is the worker-side core.RecordSink: it reorders completion-
// order records into strict index order (the same pending-map discipline
// results.SpecSink uses) and streams contiguous batches to the
// coordinator, so the wire only ever carries the next piece of the
// resumable prefix. The engine serializes Record/BeginCampaign calls, but
// the worker's event subscription flushes from its drain goroutine at
// adaptive barriers, so a mutex guards all state.
type remoteSink struct {
	w       *Worker
	leaseID string
	mu      sync.Mutex
	next    int
	pending map[int]results.Record
	batch   []results.Record
	posted  int
	begun   bool
	err     error
}

// BeginCampaign posts the campaign header alone as the lease's first
// batch: validation failures (world drift, wrong spec) surface before any
// compute-heavy record streaming starts.
func (s *remoteSink) BeginCampaign(meta core.CampaignMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.begun {
		return nil
	}
	h := results.NewHeader(meta)
	if err := s.send(RecordsRequest{LeaseID: s.leaseID, Header: &h}); err != nil {
		s.err = err
		return err
	}
	s.begun = true
	return nil
}

// Record buffers one finished run and ships every contiguous batch of
// batchSize records.
func (s *remoteSink) Record(rec core.RunRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	r := results.NewRecord(rec)
	s.pending[r.Index] = r
	for {
		next, ok := s.pending[s.next]
		if !ok {
			break
		}
		delete(s.pending, s.next)
		s.batch = append(s.batch, next)
		s.next++
	}
	if len(s.batch) >= s.batchSize() {
		return s.flushLocked()
	}
	return nil
}

func (s *remoteSink) batchSize() int {
	if s.w.Batch > 0 {
		return s.w.Batch
	}
	return 64
}

// flush posts the buffered contiguous records, then applies the simulated
// -death test hook: the records it counts are already durable on the
// coordinator, so the "kill" lands exactly between two batches — the same
// place a real SIGKILL between HTTP posts would.
func (s *remoteSink) flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *remoteSink) flushLocked() error {
	if s.err != nil {
		return s.err
	}
	if len(s.batch) == 0 {
		return nil
	}
	req := RecordsRequest{LeaseID: s.leaseID, Records: s.batch}
	if err := s.send(req); err != nil {
		s.err = err
		return err
	}
	s.posted += len(s.batch)
	s.batch = s.batch[:0]
	if s.w.FailAfterRecords > 0 && s.posted >= s.w.FailAfterRecords {
		s.err = errWorkerKilled
		return s.err
	}
	return nil
}

func (s *remoteSink) send(req RecordsRequest) error {
	status, err := s.w.post("/records", req, nil)
	if err != nil {
		return err
	}
	switch status {
	case http.StatusNoContent:
		return nil
	case http.StatusGone:
		return errLeaseLost
	default:
		return fmt.Errorf("records rejected: HTTP %d", status)
	}
}

var _ core.RecordSink = (*remoteSink)(nil)
