package campaignd

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ffis/internal/core"
	"ffis/internal/experiments"
	"ffis/internal/results"
)

// testGrid builds a small Montage grid: the MT cells are the cheapest
// worlds in the registry, so the end-to-end test stays fast under -race.
func testGrid(cells []string, runs int, seed uint64) []experiments.WireSpec {
	var specs []experiments.WireSpec
	for _, cell := range cells {
		for _, model := range []string{"bit-flip", "shorn-write", "dropped-write"} {
			specs = append(specs, experiments.WireSpec{Cell: cell, Model: model, Runs: runs, Seed: seed})
		}
	}
	return specs
}

// storeBytes reads every persisted file of a results store keyed by its
// store-relative path.
func storeBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, rel := range []string{"manifest.json"} {
		b, err := os.ReadFile(filepath.Join(dir, rel))
		if err != nil {
			t.Fatalf("read %s: %v", rel, err)
		}
		out[rel] = b
	}
	entries, err := os.ReadDir(filepath.Join(dir, "records"))
	if err != nil {
		t.Fatalf("read records dir: %v", err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, "records", e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		out["records/"+e.Name()] = b
	}
	return out
}

// TestDistributedKillWorkerByteIdentity is the acceptance test of the
// distributed service: a coordinator plus three in-process workers — one
// of which dies mid-spec after streaming a partial prefix — must converge
// to a results store byte-identical to a single-machine RunGrid of the
// same grid at the same seed. Every mechanism is on the line at once:
// lease re-queue after heartbeat lapse, resume-at-first-missing-index,
// strict-order ingest, header validation across successive workers, and
// the canonical record encoding shared by both paths.
func TestDistributedKillWorkerByteIdentity(t *testing.T) {
	const runs, seed = 12, uint64(7)
	specs := testGrid([]string{"MT1"}, runs, seed)
	man, err := ManifestFor(specs)
	if err != nil {
		t.Fatal(err)
	}

	// Single-machine reference, through the same canonical spec builder
	// the workers use.
	refDir := t.TempDir()
	refStore, err := results.Create(refDir, man)
	if err != nil {
		t.Fatal(err)
	}
	cspecs := make([]core.CampaignSpec, len(specs))
	for i, ws := range specs {
		if cspecs[i], err = ws.CampaignSpec(); err != nil {
			t.Fatal(err)
		}
	}
	grid, err := results.RunGrid(&core.Engine{}, refStore, results.Shard{}, cspecs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range grid {
		if r.Err != nil {
			t.Fatalf("reference spec %q: %v", r.Spec.Key, r.Err)
		}
	}

	// Distributed run. The lease TTL balances two pressures: short enough
	// that the killed worker's spec re-queues promptly, long enough that
	// race-mode scheduler stalls cannot starve a live worker's 50ms
	// heartbeats into a spurious expiry.
	outDir := t.TempDir()
	st, err := results.CreateOrResume(outDir, false, man)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(st, specs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// Prefetch is on for every worker: the byte-identity assertion below
	// is also the proof that lease prefetching never changes stored bytes
	// — including across w1's mid-spec death while holding a prefetched
	// lease, which must expire and re-queue cleanly.
	workers := []*Worker{
		{ID: "w1", Coordinator: srv.URL, Poll: 25 * time.Millisecond, Heartbeat: 50 * time.Millisecond, Batch: 3, FailAfterRecords: 3, Prefetch: true},
		{ID: "w2", Coordinator: srv.URL, Poll: 25 * time.Millisecond, Heartbeat: 50 * time.Millisecond, Batch: 3, Prefetch: true},
		{ID: "w3", Coordinator: srv.URL, Poll: 25 * time.Millisecond, Heartbeat: 50 * time.Millisecond, Batch: 3, Prefetch: true},
	}
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			errs[i] = w.Run(context.Background())
		}(i, w)
	}
	wg.Wait()

	if !errors.Is(errs[0], errWorkerKilled) {
		t.Fatalf("w1 should have died to the kill hook mid-spec, got %v", errs[0])
	}
	for i := 1; i < len(errs); i++ {
		if errs[i] != nil {
			t.Fatalf("worker %s: %v", workers[i].ID, errs[i])
		}
	}
	if !coord.Done() {
		t.Fatalf("surviving workers exited but the grid is not done: %+v", coord.Progress())
	}

	want, got := storeBytes(t, refDir), storeBytes(t, outDir)
	if len(want) != len(got) {
		t.Fatalf("store file sets differ: reference %d files, distributed %d", len(want), len(got))
	}
	for rel, wb := range want {
		gb, ok := got[rel]
		if !ok {
			t.Fatalf("distributed store missing %s", rel)
		}
		if string(wb) != string(gb) {
			t.Errorf("%s differs between single-machine and distributed runs:\n--- reference ---\n%s\n--- distributed ---\n%s", rel, wb, gb)
		}
	}
}

// coordForOneSpec builds a coordinator over a single cheap spec with a
// controllable clock.
func coordForOneSpec(t *testing.T, runs int, seed uint64, ttl time.Duration) (*Coordinator, experiments.WireSpec, *time.Time) {
	t.Helper()
	ws := experiments.WireSpec{Cell: "MT1", Model: "bit-flip", Runs: runs, Seed: seed}
	man, err := ManifestFor([]experiments.WireSpec{ws})
	if err != nil {
		t.Fatal(err)
	}
	st, err := results.Create(t.TempDir(), man)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(st, []experiments.WireSpec{ws}, ttl)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	clock := time.Unix(1700000000, 0)
	coord.now = func() time.Time { return clock }
	return coord, ws.Normalized(), &clock
}

// header builds a wire header consistent with the spec, the way a worker
// would after profiling.
func wireHeader(t *testing.T, ws experiments.WireSpec, profileCount int64) results.Header {
	t.Helper()
	spec, err := ws.CampaignSpec()
	if err != nil {
		t.Fatal(err)
	}
	return results.NewHeader(core.CampaignMeta{
		Workload:     spec.Workload.Name,
		Signature:    spec.Config.Fault.Signature(),
		ProfileCount: profileCount,
		Runs:         spec.Config.Runs,
		Seed:         spec.Config.Seed,
	})
}

func TestLeaseExpiryRequeuesFromDeliveredPrefix(t *testing.T) {
	coord, ws, clock := coordForOneSpec(t, 10, 3, time.Minute)

	g1, ok, done, err := coord.Lease("a")
	if err != nil || !ok || done {
		t.Fatalf("first lease: ok=%v done=%v err=%v", ok, done, err)
	}
	if g1.Start != 0 {
		t.Fatalf("fresh spec should lease from 0, got %d", g1.Start)
	}
	// The spec is leased out: nothing else to hand a second worker.
	if _, ok, done, _ := coord.Lease("b"); ok || done {
		t.Fatalf("spec should be exclusively leased (ok=%v done=%v)", ok, done)
	}

	h := wireHeader(t, ws, 11)
	recs := []results.Record{
		{Index: 0, Outcome: "benign"},
		{Index: 1, Outcome: "SDC", Fired: true},
		{Index: 2, Outcome: "benign"},
		{Index: 3, Outcome: "crash", Fired: true, RunErr: "boom"},
	}
	if err := coord.Ingest(g1.LeaseID, &h, recs); err != nil {
		t.Fatal(err)
	}

	// Heartbeats stop; the TTL lapses; the lease is revoked.
	*clock = clock.Add(2 * time.Minute)
	if coord.Heartbeat(HeartbeatRequest{LeaseID: g1.LeaseID}) {
		t.Fatal("heartbeat on a lapsed lease should be refused")
	}
	if err := coord.Ingest(g1.LeaseID, nil, recs); !errors.Is(err, errLeaseGone) {
		t.Fatalf("ingest on a lapsed lease: want errLeaseGone, got %v", err)
	}

	// The re-issued lease resumes exactly after the dead worker's
	// delivered prefix.
	g2, ok, _, err := coord.Lease("b")
	if err != nil || !ok {
		t.Fatalf("re-lease after expiry: ok=%v err=%v", ok, err)
	}
	if g2.Start != len(recs) {
		t.Fatalf("re-lease should resume at %d (the delivered prefix), got %d", len(recs), g2.Start)
	}
	// The successor's header must agree with the recovered one: a worker
	// whose world profiled differently is refused.
	drifted := wireHeader(t, ws, 99)
	if err := coord.Ingest(g2.LeaseID, &drifted, nil); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("drifted profile count across workers: want header mismatch, got %v", err)
	}
}

func TestIngestRejectsOutOfOrderAndDriftedHeaders(t *testing.T) {
	coord, ws, _ := coordForOneSpec(t, 10, 3, time.Minute)
	g, ok, _, err := coord.Lease("a")
	if err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}

	// Records before any header are refused.
	if err := coord.Ingest(g.LeaseID, nil, []results.Record{{Index: 0, Outcome: "benign"}}); err == nil ||
		!strings.Contains(err.Error(), "header") {
		t.Fatalf("want header-required error, got %v", err)
	}

	// A header whose campaign identity drifted from the spec is refused
	// before anything persists.
	bad := wireHeader(t, ws, 11)
	bad.Seed = 999
	if err := coord.Ingest(g.LeaseID, &bad, nil); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("want HeaderMatchesSpec rejection, got %v", err)
	}

	h := wireHeader(t, ws, 11)
	if err := coord.Ingest(g.LeaseID, &h, nil); err != nil {
		t.Fatal(err)
	}
	// Strict index order: a gap is an error, not a buffer.
	if err := coord.Ingest(g.LeaseID, nil, []results.Record{{Index: 1, Outcome: "benign"}}); err == nil ||
		!strings.Contains(err.Error(), "out of order") {
		t.Fatalf("want out-of-order rejection, got %v", err)
	}
	// Completing with runs missing is refused.
	if err := coord.Complete(g.LeaseID); err == nil || !strings.Contains(err.Error(), "of 10 runs") {
		t.Fatalf("want incomplete-complete rejection, got %v", err)
	}
}

func TestManifestForRejectsMixedCampaigns(t *testing.T) {
	specs := []experiments.WireSpec{
		{Cell: "MT1", Model: "bit-flip", Runs: 10, Seed: 3},
		{Cell: "MT2", Model: "bit-flip", Runs: 20, Seed: 3},
	}
	if _, err := ManifestFor(specs); err == nil {
		t.Fatal("mixed run budgets should refuse a shared store")
	}
	specs[1].Runs = 10
	specs[0].Backend = "object"
	specs[1].Backend = "object"
	man, err := ManifestFor(specs)
	if err != nil {
		t.Fatal(err)
	}
	if man.Backend != "object" {
		t.Fatalf("uniform non-default backend should land in the manifest, got %q", man.Backend)
	}
	specs[1].Backend = "mem"
	if man, err = ManifestFor(specs); err != nil || man.Backend != "" {
		t.Fatalf("mixed backends should leave the manifest backend empty, got %q (%v)", man.Backend, err)
	}
}
