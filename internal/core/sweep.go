package core

import (
	"encoding/json"
	"fmt"
	"io"

	"ffis/internal/classify"
)

// SweepPoint is one cell of a feature sweep: a fault configuration plus a
// label for reports.
type SweepPoint struct {
	Label string
	Fault Config
}

// Sweep runs the same workload under a series of fault configurations —
// the mechanism behind the ablation studies (2-bit vs 4-bit flips,
// 3/8 vs 7/8 shorn fraction) the paper touches in footnote 3 and Table I.
// Every field of base except Fault is honored per point — in particular
// ArmMounts, so a sweep over a tiered world keeps its fault placement
// instead of silently degrading to the flat whole-world arming.
func Sweep(points []SweepPoint, base CampaignConfig, w Workload) ([]CampaignResult, error) {
	out := make([]CampaignResult, 0, len(points))
	for _, pt := range points {
		cfg := base
		cfg.Fault = pt.Fault
		res, err := Campaign(cfg, w)
		if err != nil {
			return nil, fmt.Errorf("core: sweep point %q: %w", pt.Label, err)
		}
		res.Workload = w.Name + "/" + pt.Label
		out = append(out, res)
	}
	return out, nil
}

// FlipWidthSweep returns the bit-flip width ablation points (the paper's
// default 2 bits and the 4-bit variant of footnote 3, plus 1 and 8 for
// context).
func FlipWidthSweep() []SweepPoint {
	var pts []SweepPoint
	for _, w := range []int{1, 2, 4, 8} {
		pts = append(pts, SweepPoint{
			Label: fmt.Sprintf("flip%d", w),
			Fault: Config{Model: BitFlip, Feature: Feature{FlipBits: w}},
		})
	}
	return pts
}

// ShornFractionSweep returns the shorn-write keep-fraction ablation points
// (Table I's 3/8 and 7/8 plus intermediate fractions).
func ShornFractionSweep() []SweepPoint {
	var pts []SweepPoint
	for _, keep := range []int{1, 3, 5, 7} {
		pts = append(pts, SweepPoint{
			Label: fmt.Sprintf("keep%dof8", keep),
			Fault: Config{Model: ShornWrite, Feature: Feature{ShornKeepNum: keep, ShornKeepDen: 8}},
		})
	}
	return pts
}

// resultJSON is the export form of a campaign result.
type resultJSON struct {
	Workload     string         `json:"workload"`
	Model        string         `json:"fault_model"`
	Primitive    string         `json:"primitive"`
	Runs         int            `json:"runs"`
	ProfileCount int64          `json:"profile_count"`
	Outcomes     map[string]int `json:"outcomes"`
	// Rates carries, per outcome, the observed rate with its Wilson 95%
	// half-width — the quantity an adaptive stopping rule bounds, so the
	// export is directly comparable against a StopRule target.
	Rates       map[string]rateJSON `json:"rates"`
	SDCRate     float64             `json:"sdc_rate"`
	SDCErrBar95 float64             `json:"sdc_err_bar_95"`
	// StopIndex is where the adaptive rule stopped the campaign; omitted
	// for fixed-budget runs.
	StopIndex int `json:"stop_index,omitempty"`
	// SimNanos is the total simulated I/O time over all runs; omitted for
	// worlds with no latency-modeled backend.
	SimNanos int64 `json:"sim_ns,omitempty"`
}

// rateJSON is one outcome's interval summary in the JSON export.
type rateJSON struct {
	Count       int     `json:"count"`
	Rate        float64 `json:"rate"`
	HalfWidth95 float64 `json:"half_width_95"`
}

func toJSON(r CampaignResult) resultJSON {
	out := resultJSON{
		Workload:     r.Workload,
		Model:        r.Signature.Model.Name(),
		Primitive:    string(r.Signature.Primitive),
		Runs:         r.Tally.Total(),
		ProfileCount: r.ProfileCount,
		Outcomes:     map[string]int{},
		Rates:        map[string]rateJSON{},
		SDCRate:      r.Tally.Rate(classify.SDC).P(),
		SDCErrBar95:  r.Tally.Rate(classify.SDC).ErrorBar95(),
		StopIndex:    r.StopIndex,
		SimNanos:     r.SimNanos,
	}
	for _, o := range classify.Outcomes() {
		p := r.Tally.Rate(o)
		out.Outcomes[o.String()] = r.Tally.Count(o)
		out.Rates[o.String()] = rateJSON{
			Count:       p.Successes,
			Rate:        p.P(),
			HalfWidth95: p.WilsonHalfWidth95(),
		}
	}
	return out
}

// WriteResultsJSON serializes campaign results as an indented JSON array,
// the machine-readable artifact the experiment harness archives alongside
// the text tables.
func WriteResultsJSON(w io.Writer, results []CampaignResult) error {
	rows := make([]resultJSON, len(results))
	for i, r := range results {
		rows[i] = toJSON(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
