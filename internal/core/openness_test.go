package core

import (
	"bytes"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/vfs"
)

// The open-vocabulary proof: a fault model defined entirely in this test
// file — no edits to the injector, campaign runner, engine, or any parser —
// registers itself and is then driven through a full statistical campaign
// by name. It also rides AllModels(), so the conformance suite in this
// package exercises it like any built-in, which is exactly the guarantee a
// third-party registration gets.

// stuckBitsModel pins one random byte of the write buffer to 0xFF, as a
// worn cell whose bits stick high would.
var stuckBits = Register(stuckBitsModel{}, "stuck")

type stuckBitsModel struct{ BaseModel }

func (stuckBitsModel) Name() string  { return "stuck-bits" }
func (stuckBitsModel) Short() string { return "SB" }

func (stuckBitsModel) Hosts() []vfs.Primitive { return []vfs.Primitive{vfs.PrimWrite} }

func (stuckBitsModel) Describe() string {
	return "one byte of the buffer is pinned to 0xFF (test-only registration)"
}

func (sb stuckBitsModel) MutateWrite(env Env, op WriteOp) WriteAction {
	out := append([]byte(nil), op.Buf...)
	victim := env.Intn(len(out))
	out[victim] = 0xFF
	env.Record(Mutation{
		Model: sb, Path: op.Path, Offset: op.Off, Length: len(op.Buf),
		BitPos: victim * 8,
	})
	return WriteAction{Buf: out}
}

func TestRegisteredTestModelRunsFullCampaign(t *testing.T) {
	m, err := ParseModel("stuck-bits")
	if err != nil || m != Model(stuckBits) {
		t.Fatalf("registry lookup: %v, %v", m, err)
	}
	golden := bytes.Repeat([]byte{0x20}, 4096)
	w := Workload{
		Name: "openness",
		Run: func(fs vfs.FS) error {
			return vfs.WriteFile(fs, "/out", golden)
		},
		Classify: func(fs vfs.FS, runErr error) classify.Outcome {
			if runErr != nil {
				return classify.Crash
			}
			got, err := vfs.ReadFile(fs, "/out")
			if err != nil || !bytes.Equal(got, golden) {
				return classify.SDC
			}
			return classify.Benign
		},
	}
	res, err := Campaign(CampaignConfig{
		Fault: Config{Model: m},
		Runs:  12,
		Seed:  99,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	// Every run pins a 0x20 byte to 0xFF inside the only written file:
	// every outcome must be SDC, and every record must carry the model's
	// own mutation stamp.
	if res.Tally.Count(classify.SDC) != 12 {
		t.Fatalf("tally = %+v, want 12 SDC", res.Tally)
	}
	for _, rec := range res.Records {
		if !rec.Fired || rec.Mutation.Model != Model(stuckBits) {
			t.Fatalf("record %d: %+v", rec.Index, rec.Mutation)
		}
	}
}
