package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ffis/internal/stats"
)

// eventGrid is the determinism fixture: the heterogeneous engine grid plus
// one adaptive campaign whose wide confidence target guarantees an early
// stop at the first barrier, so the stream exercises Barrier, StopDecision,
// and an early-stopped SpecDone too.
func eventGrid() []CampaignSpec {
	specs := gridSpecs(8)
	specs = append(specs, CampaignSpec{
		Key:      "adaptive/" + BitFlip.Short(),
		Workload: toyWorkload(),
		Config: CampaignConfig{
			Fault: Config{Model: BitFlip},
			Runs:  64,
			Seed:  11,
			Stop:  &stats.StopRule{TargetHalfWidth: 0.9, MinRuns: 8, CheckEvery: 8},
		},
	})
	return specs
}

// eventView runs the fixture grid at the given pool width and renders each
// campaign's event stream into a canonical summary: SpecStart fields,
// the RunDone set ordered by index (wall-clock timings excluded — they are
// the one legitimately nondeterministic payload), the Barrier/StopDecision
// sequence in arrival order, and the terminal counts and tally.
func eventView(t *testing.T, jobs int) map[string]string {
	t.Helper()
	bus := NewEventBus()
	var mu sync.Mutex
	perKey := map[string][]Event{}
	bus.Subscribe(1<<16, func(ev Event) {
		mu.Lock()
		perKey[ev.Key] = append(perKey[ev.Key], ev)
		mu.Unlock()
	})
	for _, r := range (&Engine{Jobs: jobs, Events: bus}).Run(eventGrid()) {
		if r.Err != nil {
			t.Fatalf("jobs=%d %s: %v", jobs, r.Spec.Key, r.Err)
		}
	}
	bus.Close()

	out := map[string]string{}
	for key, evs := range perKey {
		var b strings.Builder
		var runs []Event
		for _, ev := range evs {
			switch ev.Kind {
			case EventSpecStart:
				fmt.Fprintf(&b, "start total=%d runs=%d profile=%d\n", ev.Total, ev.Runs, ev.ProfileCount)
			case EventRunDone:
				runs = append(runs, ev)
			case EventBarrier:
				fmt.Fprintf(&b, "barrier %d\n", ev.Barrier)
			case EventStopDecision:
				fmt.Fprintf(&b, "decision at=%d stopped=%v\n", ev.StopIndex, ev.Stopped)
			case EventSpecDone:
				if ev.Err != nil {
					fmt.Fprintf(&b, "done err=%v\n", ev.Err)
					break
				}
				fmt.Fprintf(&b, "done %d/%d tally=%s\n", ev.Done, ev.Total, ev.Result.Tally.String())
			}
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].Index < runs[j].Index })
		for _, ev := range runs {
			fmt.Fprintf(&b, "run %d target=%d outcome=%s fired=%v\n", ev.Index, ev.Target, ev.Outcome, ev.Fired)
		}
		out[key] = b.String()
	}
	return out
}

// TestEventStreamDeterministicAcrossJobs pins the stream to the same
// determinism contract as the records themselves: modulo wall-clock
// timings and RunDone arrival order, a grid emits the identical event set
// whether it runs serially or on an eight-wide pool — including the
// adaptive campaign's barrier and stopping-decision trail.
func TestEventStreamDeterministicAcrossJobs(t *testing.T) {
	serial := eventView(t, 1)
	wide := eventView(t, 8)
	if len(serial) != len(wide) {
		t.Fatalf("campaign key sets differ: %d vs %d", len(serial), len(wide))
	}
	for key, want := range serial {
		got, ok := wide[key]
		if !ok {
			t.Fatalf("%s: stream missing at jobs=8", key)
		}
		if got != want {
			t.Errorf("%s: event stream diverged between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s--- jobs=8 ---\n%s", key, want, got)
		}
	}
	// The adaptive fixture must actually have stopped early, or this test
	// never exercised barriers and stop decisions at all.
	adaptive := serial["adaptive/"+BitFlip.Short()]
	if !strings.Contains(adaptive, "decision at=8 stopped=true") || !strings.Contains(adaptive, "done 8/8") {
		t.Fatalf("adaptive campaign did not stop at the first barrier:\n%s", adaptive)
	}
}

// TestStalledSubscriberNeverBlocksRuns is the regression test for the drop
// policy: a subscriber that consumes nothing while the campaign executes
// must not stall the run pool; it loses RunDone telemetry (counted), never
// lifecycle events.
func TestStalledSubscriberNeverBlocksRuns(t *testing.T) {
	bus := NewEventBus()
	release := make(chan struct{})
	var mu sync.Mutex
	kinds := map[EventKind]int{}
	sub := bus.Subscribe(2, func(ev Event) {
		<-release // stalled until the campaign is long over
		mu.Lock()
		kinds[ev.Kind]++
		mu.Unlock()
	})

	done := make(chan []GridResult, 1)
	go func() {
		done <- (&Engine{Jobs: 4, Events: bus}).Run([]CampaignSpec{{
			Key:      "stalled",
			Workload: toyWorkload(),
			Config:   CampaignConfig{Fault: Config{Model: BitFlip}, Runs: 64, Seed: 5},
		}})
	}()
	var results []GridResult
	select {
	case results = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("engine run blocked on a stalled event subscriber")
	}
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if results[0].Result.Tally.Total() != 64 {
		t.Fatalf("tally %d, want 64", results[0].Result.Tally.Total())
	}

	close(release)
	bus.Close()
	mu.Lock()
	defer mu.Unlock()
	if kinds[EventSpecStart] != 1 || kinds[EventSpecDone] != 1 {
		t.Fatalf("lifecycle events must survive a stalled subscriber, got %v", kinds)
	}
	if sub.Dropped() == 0 {
		t.Fatal("a 2-slot queue over 64 runs should have dropped RunDone events")
	}
	if got := int64(kinds[EventRunDone]) + sub.Dropped(); got != 64 {
		t.Fatalf("delivered(%d) + dropped(%d) RunDone = %d, want 64", kinds[EventRunDone], sub.Dropped(), got)
	}
}

// TestEventBusDropPolicy exercises the bus directly: only RunDone is ever
// droppable, lifecycle events always queue past a full buffer, and Close
// flushes everything published before it.
func TestEventBusDropPolicy(t *testing.T) {
	bus := NewEventBus()
	release := make(chan struct{})
	var mu sync.Mutex
	var got []EventKind
	sub := bus.Subscribe(2, func(ev Event) {
		<-release
		mu.Lock()
		got = append(got, ev.Kind)
		mu.Unlock()
	})

	bus.Publish(Event{Kind: EventSpecStart, Key: "k"})
	for i := 0; i < 50; i++ {
		bus.Publish(Event{Kind: EventRunDone, Key: "k", Index: i})
	}
	bus.Publish(Event{Kind: EventBarrier, Key: "k", Barrier: 50})
	bus.Publish(Event{Kind: EventStopDecision, Key: "k", StopIndex: 50})
	bus.Publish(Event{Kind: EventSpecDone, Key: "k"})
	close(release)
	bus.Close()

	mu.Lock()
	defer mu.Unlock()
	counts := map[EventKind]int{}
	for _, k := range got {
		counts[k]++
	}
	for _, kind := range []EventKind{EventSpecStart, EventBarrier, EventStopDecision, EventSpecDone} {
		if counts[kind] != 1 {
			t.Fatalf("lifecycle kind %s delivered %d times, want 1 (got %v)", kind, counts[kind], counts)
		}
	}
	if sub.Dropped() == 0 {
		t.Fatal("50 RunDone events through a 2-slot stalled queue should drop")
	}
	if total := int64(counts[EventRunDone]) + sub.Dropped(); total != 50 {
		t.Fatalf("delivered(%d) + dropped(%d) = %d RunDone, want 50", counts[EventRunDone], sub.Dropped(), total)
	}
}
