package core

import (
	"fmt"

	"ffis/internal/vfs"
)

// DroppedWrite discards the write entirely yet reports full success,
// modelling a write acknowledged by the device but never persisted. It
// hosts on every write-side primitive plus truncate (a dropped truncate is
// acknowledged but never applied).
var DroppedWrite = Register(droppedWriteModel{}, "dropped")

type droppedWriteModel struct{ BaseModel }

func (droppedWriteModel) Name() string  { return "dropped-write" }
func (droppedWriteModel) Short() string { return "DW" }

func (droppedWriteModel) Hosts() []vfs.Primitive {
	return []vfs.Primitive{vfs.PrimWrite, vfs.PrimMknod, vfs.PrimChmod, vfs.PrimTruncate}
}

func (droppedWriteModel) Describe() string {
	return "the write operation is ignored; success with the full size is returned"
}

func (dw droppedWriteModel) MutateWrite(env Env, op WriteOp) WriteAction {
	env.Record(Mutation{
		Model: dw, Path: op.Path, Offset: op.Off,
		Length: len(op.Buf), Dropped: true,
	})
	return WriteAction{Skip: true}
}

func (dw droppedWriteModel) MutateTruncate(env Env, op TruncateOp) TruncateAction {
	env.Record(Mutation{Model: dw, Path: op.Path, Offset: op.Size, Dropped: true})
	return TruncateAction{Drop: true}
}

// MutateMeta drops the metadata call: the node is silently never created,
// the mode change silently never applied.
func (dw droppedWriteModel) MutateMeta(env Env, op MetaOp) MetaAction {
	env.Record(Mutation{Model: dw, Path: op.Path, Dropped: true})
	return MetaAction{Drop: true}
}

func (droppedWriteModel) RenderMutation(m Mutation) string {
	return fmt.Sprintf("dropped-write %s off=%d len=%d", m.Path, m.Offset, m.Length)
}
