package core

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// The registry conformance suite: every registered model — built-in or
// added later — must satisfy the contract the campaign machinery assumes.
// A new model that registers but breaks identity uniqueness, claims shots
// it never records, fires on primitives outside Hosts(), burns its shot on
// zero-length I/O, or mutates non-deterministically under a fixed RNG
// stream fails here, before any campaign tallies nonsense.

// conformancePrims is the set of primitives the injector can intercept at
// all; Hosts() entries outside it could never fire.
var conformancePrims = []vfs.Primitive{
	vfs.PrimWrite, vfs.PrimRead, vfs.PrimTruncate, vfs.PrimMknod, vfs.PrimChmod,
}

// conformanceWorld builds a base world with a seeded victim file for the
// read/truncate/chmod exercises.
func conformanceWorld(t *testing.T) vfs.FS {
	t.Helper()
	base := vfs.NewMemFS()
	payload := bytes.Repeat([]byte{0xC3, 0x5A, 0x0F, 0x99}, 2048) // 8 KiB
	if err := vfs.WriteFile(base, "/victim", payload); err != nil {
		t.Fatal(err)
	}
	return base
}

// exercisePrimitive performs one dynamic instance of prim through fs,
// against path. Errors from the primitive itself are returned (some models
// fail the op by design — unreadable sectors); setup errors are fatal.
func exercisePrimitive(t *testing.T, fs vfs.FS, prim vfs.Primitive, path string) error {
	t.Helper()
	switch prim {
	case vfs.PrimWrite:
		f, err := fs.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		_, werr := f.Write(bytes.Repeat([]byte{0xAB}, 4096))
		return werr
	case vfs.PrimRead:
		f, err := fs.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		_, rerr := f.Read(make([]byte, 1024))
		return rerr
	case vfs.PrimTruncate:
		return fs.Truncate(path, 100)
	case vfs.PrimMknod:
		return fs.Mknod(path+".node", 0o600, 7)
	case vfs.PrimChmod:
		return fs.Chmod(path, 0o640)
	default:
		t.Fatalf("conformance: no exercise for primitive %s", prim)
		return nil
	}
}

// primTarget returns the path exercisePrimitive operates on for prim: the
// write path creates its own file, everything else hits the seeded victim.
func primTarget(prim vfs.Primitive) string {
	if prim == vfs.PrimWrite {
		return "/fresh"
	}
	return "/victim"
}

func TestConformanceUniqueIdentity(t *testing.T) {
	names := map[string]string{}
	shorts := map[string]string{}
	for _, m := range AllModels() {
		name, short := m.Name(), m.Short()
		if name == "" || short == "" {
			t.Errorf("%T has empty identity", m)
		}
		if prev, dup := names[strings.ToLower(name)]; dup {
			t.Errorf("duplicate model name %q (%s)", name, prev)
		}
		if prev, dup := shorts[strings.ToLower(short)]; dup {
			t.Errorf("duplicate short code %q (%s vs %s)", short, prev, name)
		}
		names[strings.ToLower(name)] = name
		shorts[strings.ToLower(short)] = name
		// Both identities must round-trip through the shared parser,
		// case-insensitively.
		for _, key := range []string{name, short, strings.ToUpper(name), strings.ToLower(short)} {
			got, err := ParseModel(key)
			if err != nil || got != m {
				t.Errorf("ParseModel(%q) = %v, %v; want %s", key, got, err, name)
			}
		}
	}
}

func TestConformanceHostsWithinInjectorSurface(t *testing.T) {
	for _, m := range AllModels() {
		if len(m.Hosts()) == 0 {
			t.Errorf("%s hosts nothing", m.Name())
			continue
		}
		for _, h := range m.Hosts() {
			ok := false
			for _, p := range conformancePrims {
				if p == h {
					ok = true
				}
			}
			if !ok {
				t.Errorf("%s hosts %s, which the injector never intercepts", m.Name(), h)
			}
		}
	}
}

// TestConformanceHostsFire asserts the positive half of the Hosts()
// contract: arming any hosted primitive at target 0 and executing one
// instance must fire and record a mutation stamped with the model.
func TestConformanceHostsFire(t *testing.T) {
	for _, m := range AllModels() {
		for _, prim := range m.Hosts() {
			t.Run(m.Name()+"/"+string(prim), func(t *testing.T) {
				base := conformanceWorld(t)
				sig := Config{Model: m, Primitive: prim}.Signature()
				if err := sig.Validate(); err != nil {
					t.Fatalf("signature for hosted primitive rejected: %v", err)
				}
				inj := NewInjector(sig, 0, stats.NewRNG(99))
				exercisePrimitive(t, inj.Wrap(base), prim, primTarget(prim))
				if inj.Count() == 0 {
					t.Fatalf("injector never saw the %s instance", prim)
				}
				mut, fired := inj.Fired()
				if !fired {
					t.Fatalf("%s claims to host %s but the claimed shot recorded nothing", m.Name(), prim)
				}
				if mut.Model != m {
					t.Fatalf("mutation stamped with %v, want %s", mut.Model, m.Name())
				}
				if mut.String() == "" {
					t.Fatal("mutation renders empty")
				}
			})
		}
	}
}

// TestConformanceUnhostedPassThrough asserts the negative half: arming a
// primitive outside Hosts() must never record a fault, and the primitive's
// effect must be transparent.
func TestConformanceUnhostedPassThrough(t *testing.T) {
	for _, m := range AllModels() {
		hosted := map[vfs.Primitive]bool{}
		for _, h := range m.Hosts() {
			hosted[h] = true
		}
		for _, prim := range conformancePrims {
			if hosted[prim] {
				continue
			}
			t.Run(m.Name()+"/"+string(prim), func(t *testing.T) {
				sig := Config{Model: m, Primitive: prim}.Signature()
				if err := sig.Validate(); err == nil {
					t.Errorf("Validate accepted unhosted %s@%s", m.Name(), prim)
				}
				base := conformanceWorld(t)
				inj := NewInjector(sig, 0, stats.NewRNG(99))
				if err := exercisePrimitive(t, inj.Wrap(base), prim, primTarget(prim)); err != nil {
					t.Fatalf("pass-through %s failed: %v", prim, err)
				}
				if mut, fired := inj.Fired(); fired {
					t.Fatalf("unhosted primitive recorded a mutation: %s", mut)
				}
				if prim == vfs.PrimWrite {
					got, err := vfs.ReadFile(base, "/fresh")
					if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0xAB}, 4096)) {
						t.Fatal("pass-through write altered data")
					}
				}
			})
		}
	}
}

// TestConformanceSingleShot asserts primary-claim semantics: the target
// index selects the first struck dynamic instance, instances before it pass
// through, and the dynamic count keeps advancing afterwards. For MultiShot
// models this pins the event's primary shot; TestConformanceShotBudget
// covers the rest of their budget.
func TestConformanceSingleShot(t *testing.T) {
	for _, m := range AllModels() {
		prim := m.Hosts()[0]
		t.Run(m.Name(), func(t *testing.T) {
			paths := []string{"/victim", "/victim2"}
			for target, wantPath := range paths {
				base := conformanceWorld(t)
				payload := bytes.Repeat([]byte{0x11}, 8192)
				if err := vfs.WriteFile(base, "/victim2", payload); err != nil {
					t.Fatal(err)
				}
				if prim == vfs.PrimWrite {
					// The write exercise creates its target; give each
					// instance its own destination file.
					paths = []string{"/fresh", "/fresh2"}
					wantPath = paths[target]
				}
				inj := NewInjector(Config{Model: m, Primitive: prim}.Signature(), int64(target), stats.NewRNG(5))
				fs := inj.Wrap(base)
				for _, p := range paths {
					exercisePrimitive(t, fs, prim, p)
				}
				mut, fired := inj.Fired()
				if !fired {
					t.Fatalf("target %d never fired", target)
				}
				want := wantPath
				if prim == vfs.PrimMknod {
					want += ".node"
				}
				if mut.Path != want {
					t.Fatalf("target %d struck %s, want %s", target, mut.Path, want)
				}
				if got := inj.Count(); got != int64(len(paths)) {
					t.Fatalf("count = %d, want %d (later instances must still be counted)", got, len(paths))
				}
			}
		})
	}
}

// TestConformanceZeroLengthIO asserts that zero-length reads and writes
// never consume the single shot: the fault must land on I/O that actually
// moves bytes.
func TestConformanceZeroLengthIO(t *testing.T) {
	for _, m := range AllModels() {
		for _, prim := range m.Hosts() {
			if prim != vfs.PrimWrite && prim != vfs.PrimRead {
				continue
			}
			t.Run(m.Name()+"/"+string(prim), func(t *testing.T) {
				base := conformanceWorld(t)
				inj := NewInjector(Config{Model: m, Primitive: prim}.Signature(), 0, stats.NewRNG(5))
				fs := inj.Wrap(base)
				if prim == vfs.PrimWrite {
					f, err := fs.Create("/z")
					if err != nil {
						t.Fatal(err)
					}
					if _, err := f.Write(nil); err != nil {
						t.Fatal(err)
					}
					f.Close()
				} else {
					f, err := fs.Open("/victim")
					if err != nil {
						t.Fatal(err)
					}
					if _, err := f.Read([]byte{}); err != nil {
						t.Fatal(err)
					}
					f.Close()
				}
				if inj.Count() != 0 {
					t.Fatal("zero-length I/O consumed the claim counter")
				}
				if _, fired := inj.Fired(); fired {
					t.Fatal("zero-length I/O fired the shot")
				}
				if inj.FiredShots() != 0 {
					t.Fatal("zero-length I/O consumed shot budget")
				}
				// The next real instance must still be corruptible.
				exercisePrimitive(t, fs, prim, primTarget(prim))
				if _, fired := inj.Fired(); !fired {
					t.Fatal("shot was not preserved for the first real instance")
				}
			})
		}
	}
}

// exerciseInstances performs n dynamic instances of the model's default
// primitive through fs (write: n Write calls on one handle; read: n Read
// calls), ignoring per-op errors — some models fail ops by design.
func exerciseInstances(t *testing.T, fs vfs.FS, prim vfs.Primitive, n int) {
	t.Helper()
	switch prim {
	case vfs.PrimWrite:
		f, err := fs.Create("/burstfile")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		buf := bytes.Repeat([]byte{0x5C}, 4096)
		for i := 0; i < n; i++ {
			f.Write(buf)
		}
	case vfs.PrimRead:
		f, err := fs.Open("/victim")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		buf := make([]byte, 1024)
		for i := 0; i < n; i++ {
			f.Read(buf)
		}
	default:
		t.Fatalf("conformance: no instance loop for primitive %s", prim)
	}
}

// expectedClaims replays the injector's claim algebra in the open: given
// the model's shot plan and a budget, how many of n instances from the
// target on must fire.
func expectedClaims(m Model, f Feature, budget, n int) int {
	plan, multi := m.(MultiShot)
	fired := 0
	for rel := int64(0); rel < int64(n); rel++ {
		if fired >= budget {
			break
		}
		if multi {
			if plan.Claims(f, rel) {
				fired++
			}
		} else if rel == 0 {
			fired++
		}
	}
	return fired
}

// TestConformanceShotBudget asserts the multi-shot accounting contract over
// every registered model: exactly the shots the model's plan selects fire —
// never more than the budget — and every fired shot leaves a mutation
// record. Single-manifestation models must fire exactly once regardless of
// any budget override: a budget is capacity, not a claim plan.
func TestConformanceShotBudget(t *testing.T) {
	const instances = 24
	for _, m := range AllModels() {
		prim := m.Hosts()[0]
		for _, shots := range []int{0, 1, 2} { // 0 = model default
			t.Run(fmt.Sprintf("%s/shots=%d", m.Name(), shots), func(t *testing.T) {
				base := conformanceWorld(t)
				sig := Config{Model: m, Primitive: prim, Shots: shots}.Signature()
				inj := NewInjector(sig, 0, stats.NewRNG(7))
				exerciseInstances(t, inj.Wrap(base), prim, instances)
				want := expectedClaims(m, sig.Feature, sig.ShotBudget(), instances)
				if got := inj.FiredShots(); got != want {
					t.Fatalf("fired %d shots, want %d (budget %d over %d instances)",
						got, want, sig.ShotBudget(), instances)
				}
				if muts := inj.Mutations(); len(muts) != want {
					t.Fatalf("recorded %d mutations for %d fired shots — every shot must Record",
						len(muts), want)
				}
				if got := inj.Count(); got != instances {
					t.Fatalf("count = %d, want %d (instances past the budget must still be counted)",
						got, instances)
				}
			})
		}
	}
}

// TestConformanceBudgetExhaustionRestoresTransparency asserts that once the
// budget is spent the injector is a pure pass-through again: a DeviceFailure
// capped at 2 shots refuses exactly two writes, then the device "recovers"
// and later writes both succeed and persist intact.
func TestConformanceBudgetExhaustionRestoresTransparency(t *testing.T) {
	base := conformanceWorld(t)
	sig := Config{Model: MustModel("device-failure"), Shots: 2}.Signature()
	inj := NewInjector(sig, 0, stats.NewRNG(7))
	f, err := inj.Wrap(base).Create("/cap")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := bytes.Repeat([]byte{0xEE}, 512)
	for i := 0; i < 2; i++ {
		if _, err := f.Write(buf); err == nil {
			t.Fatalf("write %d succeeded inside the failure window", i)
		}
	}
	if _, err := f.Write(buf); err != nil {
		t.Fatalf("write after budget exhaustion failed: %v", err)
	}
	if got, err := vfs.ReadFile(base, "/cap"); err != nil || !bytes.Equal(got, buf) {
		t.Fatalf("post-budget write did not persist intact: %v", err)
	}
	if inj.FiredShots() != 2 {
		t.Fatalf("fired %d shots, want exactly the budget of 2", inj.FiredShots())
	}
}

// TestConformanceDeterministicMutation asserts that a model's corruption is
// a pure function of the RNG stream: identical seeds must give identical
// mutation records and identical post-fault file bytes.
func TestConformanceDeterministicMutation(t *testing.T) {
	for _, m := range AllModels() {
		for _, prim := range m.Hosts() {
			t.Run(m.Name()+"/"+string(prim), func(t *testing.T) {
				run := func() (Mutation, []byte) {
					base := conformanceWorld(t)
					inj := NewInjector(Config{Model: m, Primitive: prim}.Signature(), 0, stats.NewRNG(12345))
					exercisePrimitive(t, inj.Wrap(base), prim, primTarget(prim))
					mut, fired := inj.Fired()
					if !fired {
						t.Fatal("shot never fired")
					}
					data, err := vfs.ReadFile(base, mut.Path)
					if err != nil {
						data = nil // mknod nodes and dropped creations have no bytes
					}
					return mut, data
				}
				m1, d1 := run()
				m2, d2 := run()
				// DeepEqual, not ==: a registered model whose struct type
				// has uncomparable fields must fail this suite with a diff,
				// not a comparison panic.
				if !reflect.DeepEqual(m1, m2) {
					t.Fatalf("mutation not deterministic:\n  %+v\n  %+v", m1, m2)
				}
				if !bytes.Equal(d1, d2) {
					t.Fatal("post-fault bytes not deterministic")
				}
			})
		}
	}
}

// TestConformanceAllocFreePassThrough pins the hot-path allocation
// discipline the campaign engine's throughput rests on: an armed-but-not-
// yet-fired injector op and a profiled (CountingFS) op must not allocate.
// The injector's miss path is a single atomic add on the dynamic count;
// the profiler's bump is a single atomic add into a fixed counter array.
// Any model or wrapper change that puts an allocation (or a lock-induced
// escape) on these paths fails here rather than showing up as a campaign
// slowdown.
func TestConformanceAllocFreePassThrough(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	buf := make([]byte, 4096)
	rd := make([]byte, 4096)

	openHandles := func(fs vfs.FS) (vfs.File, vfs.File) {
		t.Helper()
		w, err := fs.Create("/f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.WriteAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		r, err := fs.Open("/f")
		if err != nil {
			t.Fatal(err)
		}
		return w, r
	}

	assertZero := func(name string, fn func()) {
		t.Helper()
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}

	// Armed injector, target far beyond the op count: every op is a miss
	// and must stay a pure pass-through.
	for _, m := range AllModels() {
		sig := Signature{Model: m, Primitive: m.Hosts()[0]}
		inj := NewInjector(sig, 1<<40, stats.NewRNG(1))
		fs := inj.Wrap(vfs.NewMemFS())
		w, r := openHandles(fs)
		assertZero(m.Name()+"/armed WriteAt", func() {
			if _, err := w.WriteAt(buf, 0); err != nil {
				t.Fatal(err)
			}
		})
		assertZero(m.Name()+"/armed ReadAt", func() {
			if _, err := r.ReadAt(rd, 0); err != nil {
				t.Fatal(err)
			}
		})
		w.Close()
		r.Close()
	}

	// Profiled ops: the counting layer adds one atomic add, nothing else.
	cfs := vfs.NewCountingFS(vfs.NewMemFS())
	w, r := openHandles(cfs)
	defer w.Close()
	defer r.Close()
	assertZero("counting WriteAt", func() {
		if _, err := w.WriteAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	})
	assertZero("counting ReadAt", func() {
		if _, err := r.ReadAt(rd, 0); err != nil {
			t.Fatal(err)
		}
	})
	assertZero("counting Stat", func() {
		if _, err := cfs.Stat("/f"); err != nil {
			t.Fatal(err)
		}
	})
}
