package core

import (
	"errors"
	"fmt"
	"sync"

	"ffis/internal/vfs"
)

// WorldSnapshot captures a workload's storage world once — NewFS plus a
// single Setup execution — and hands out per-run worlds from it. When the
// world supports copy-on-write cloning (vfs.Cloner: MemFS, and MountFS over
// clonable backends), every World() call is a cheap structural-sharing clone
// of the post-Setup state; otherwise the snapshot degrades to rebuilding the
// world (NewFS + Setup) per call, the paper's original remount-per-run
// procedure. Either way each run observes a bit-identical pristine world, so
// campaign statistics are unaffected by the mode — only the per-run cost is.
type WorldSnapshot struct {
	w        Workload
	pristine vfs.Cloner // non-nil in COW mode

	mu    sync.Mutex
	spare vfs.FS // the probe's build or clone, served to the first World()
}

// buildWorld constructs the workload's world and runs Setup on it.
func buildWorld(w Workload) (vfs.FS, error) {
	base, err := newWorld(w)
	if err != nil {
		return nil, fmt.Errorf("core: world: %w", err)
	}
	if w.Setup != nil {
		if err := w.Setup(base); err != nil {
			return nil, fmt.Errorf("core: setup: %w", err)
		}
	}
	return base, nil
}

// NewWorldSnapshot builds the workload's world, runs Setup once, and returns
// a snapshot serving COW clones of the result. Worlds that cannot be cloned
// (an OSFS-backed mount, a custom NewFS) fall back to rebuild-per-run
// transparently.
func NewWorldSnapshot(w Workload) (*WorldSnapshot, error) {
	return newSnapshot(w, false)
}

// newSnapshot is NewWorldSnapshot with an explicit rebuild-per-run override
// (CampaignConfig.FreshWorlds).
func newSnapshot(w Workload, fresh bool) (*WorldSnapshot, error) {
	if fresh {
		return &WorldSnapshot{w: w}, nil
	}
	base, err := buildWorld(w)
	if err != nil {
		return nil, err
	}
	c, ok := base.(vfs.Cloner)
	if !ok {
		// Not a wasted build: the first World() call serves it.
		return &WorldSnapshot{w: w, spare: base}, nil
	}
	// Probe clonability end to end: a MountFS is a Cloner statically but may
	// hold backends that are not. A successful probe clone is kept and
	// served to the first World() call (usually the profiling pass).
	probe, err := c.CloneFS()
	if err != nil {
		if errors.Is(err, vfs.ErrNotClonable) {
			return &WorldSnapshot{w: w, spare: base}, nil
		}
		return nil, fmt.Errorf("core: snapshot world: %w", err)
	}
	return &WorldSnapshot{w: w, pristine: c, spare: probe}, nil
}

// COW reports whether per-run worlds are copy-on-write clones (true) or full
// per-run rebuilds (false).
func (s *WorldSnapshot) COW() bool { return s.pristine != nil }

// Pristine returns the post-Setup snapshot world itself in COW mode, nil in
// rebuild mode. It is the reference state clones diverge from; treat it as
// read-only — mutating it would silently re-baseline every later clone.
func (s *WorldSnapshot) Pristine() vfs.FS {
	if s.pristine == nil {
		return nil
	}
	return s.pristine.(vfs.FS)
}

// World returns a fresh pristine world for one run: a COW clone of the
// snapshot, or a full rebuild (NewFS + Setup) when the world is not
// clonable. Safe for concurrent use.
func (s *WorldSnapshot) World() (vfs.FS, error) {
	s.mu.Lock()
	if s.spare != nil {
		fs := s.spare
		s.spare = nil
		s.mu.Unlock()
		return fs, nil
	}
	s.mu.Unlock()
	if s.pristine != nil {
		fs, err := s.pristine.CloneFS()
		if err != nil {
			return nil, fmt.Errorf("core: clone world: %w", err)
		}
		return fs, nil
	}
	return buildWorld(s.w)
}
