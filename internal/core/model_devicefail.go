package core

import (
	"fmt"

	"ffis/internal/vfs"
)

// DeviceFailure models a device dropping off the bus mid-run: at a drawn op
// index the armed primitive starts failing with EIO and never recovers —
// the whole-device counterpart of the sector-scoped faults, and the
// maximally correlated member of the MultiShot family (its shot plan claims
// every instance from the target on, with an effectively unbounded budget).
// Armed on write it kills data production from the failure point; armed on
// read, data consumption. Classification tells the stories apart: an
// application that survives on already-persisted data is benign, one that
// errors out is a detected failure or crash.
var DeviceFailure = Register(deviceFailureModel{}, "devfail")

type deviceFailureModel struct{ BaseModel }

func (deviceFailureModel) Name() string  { return "device-failure" }
func (deviceFailureModel) Short() string { return "DF" }

func (deviceFailureModel) Hosts() []vfs.Primitive {
	return []vfs.Primitive{vfs.PrimWrite, vfs.PrimRead}
}

func (deviceFailureModel) Describe() string {
	return "the device drops off the bus at the drawn op index: the armed primitive fails with EIO from then on"
}

// Claims takes every instance from the target on: a failed device does not
// come back.
func (deviceFailureModel) Claims(Feature, int64) bool { return true }

// DefaultShots is effectively unbounded; the run ends long before 2^30
// primitive instances.
func (deviceFailureModel) DefaultShots(Feature) int { return 1 << 30 }

// MutateWrite fails the write with EIO; nothing reaches the device.
func (df deviceFailureModel) MutateWrite(env Env, op WriteOp) WriteAction {
	env.Record(Mutation{
		Model: df, Path: op.Path, Offset: op.Off, Length: len(op.Buf),
		Detail: fmt.Sprintf("shot %d: write refused", env.Shot()),
	})
	return WriteAction{Err: &vfs.PathError{Op: "write", Path: op.Path, Err: vfs.ErrDeviceFailed}}
}

// MutateRead fails the read with EIO; the underlying device read never
// executes and no data is delivered.
func (df deviceFailureModel) MutateRead(env Env, op ReadOp) (int, error) {
	env.Record(Mutation{
		Model: df, Path: op.Path, Offset: op.Off, Length: len(op.Buf),
		Detail: fmt.Sprintf("shot %d: read refused", env.Shot()),
	})
	return 0, &vfs.PathError{Op: "read", Path: op.Path, Err: vfs.ErrDeviceFailed}
}

func (deviceFailureModel) RenderMutation(m Mutation) string {
	return fmt.Sprintf("device-failure %s off=%d len=%d %s (EIO)", m.Path, m.Offset, m.Length, m.Detail)
}
