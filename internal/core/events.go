package core

import (
	"sync"
	"sync/atomic"

	"ffis/internal/classify"
)

// EventKind names one variant of the runner's structured event stream.
type EventKind string

const (
	// EventSpecStart opens a campaign's stream: the world is snapshotted,
	// profiling succeeded, and injection runs are about to dispatch.
	EventSpecStart EventKind = "spec_start"
	// EventRunDone reports one successfully finished injection run with
	// its per-stage wall-clock costs. High-volume (one per run) and the
	// only kind a saturated subscriber queue is allowed to drop.
	EventRunDone EventKind = "run_done"
	// EventBarrier marks an adaptive dispatch barrier: the prefix
	// [0, Barrier) has drained completely and its tally is about to be
	// evaluated.
	EventBarrier EventKind = "barrier"
	// EventStopDecision reports the stopping rule's verdict at a barrier.
	EventStopDecision EventKind = "stop_decision"
	// EventSpecDone closes a campaign's stream, carrying its result or
	// terminal error. Exactly one per campaign.
	EventSpecDone EventKind = "spec_done"
)

// Event is one item of the unified run-lifecycle stream every execution
// path (Campaign, Engine grids, persisted grids, distributed workers)
// emits through the Runner. Fields beyond Kind and Key are populated per
// kind; per-stage timings live here and only here — RunRecord stays a
// pure function of (spec, seed, index) so persisted record bytes never
// depend on wall-clock noise.
type Event struct {
	Kind EventKind
	// Key names the campaign: CampaignSpec.Key under the engine, the
	// workload name under bare Campaign.
	Key string

	// Done and Total count completed vs scheduled executed runs (the
	// RunFilter-selected subset). SpecStart carries Total; RunDone carries
	// both; SpecDone reports the final counts (equal at completion, and
	// both equal to the executed-run count after an adaptive early stop).
	Done, Total int
	// Runs is the configured run budget (SpecStart).
	Runs int
	// ProfileCount is the fault-free dynamic count of the target
	// primitive (SpecStart).
	ProfileCount int64

	// RunDone payload: the deterministic run identity (Index, Target,
	// Outcome, Fired — functions of seed and index alone) plus the
	// per-stage wall-clock costs of this particular execution.
	Index          int
	Target         int64
	Outcome        classify.Outcome
	Fired          bool
	CloneMicros    int64 // world clone-or-rebuild
	WorkloadNanos  int64 // armed application run
	ClassifyMicros int64 // artifact classification
	SimNanos       int64 // simulated I/O clock charge (0 without latency-modeled backends)

	// Barrier is the adaptive chunk boundary just drained (Barrier kind);
	// StopIndex and Stopped report the rule's verdict there
	// (StopDecision kind).
	Barrier   int
	StopIndex int
	Stopped   bool

	// SpecDone payload: exactly one of Result (success) or Err.
	Result *CampaignResult
	Err    error
}

// DefaultEventBuffer bounds a subscriber's queue when Subscribe is handed
// a non-positive buffer size.
const DefaultEventBuffer = 1024

// EventBus fans the runner's event stream out to subscribers without ever
// blocking emission. Each subscriber owns a bounded queue drained by a
// dedicated goroutine, so a slow consumer (a stalled -trace writer, a
// terminal behind a slow ssh link) can never stall the run pool.
//
// Drop policy: when a subscriber's queue is full, further RunDone events
// are dropped for that subscriber and counted on its Dropped tally —
// they are per-run telemetry, and the terminal SpecDone event carries the
// complete tally regardless. Lifecycle events (SpecStart, Barrier,
// StopDecision, SpecDone) always queue: their volume is bounded by the
// grid size, not the run count, so they cannot grow the queue without
// bound. Durable record delivery never rides the bus — that is the
// synchronous RecordSink path, which is lossless by construction.
type EventBus struct {
	mu   sync.Mutex
	subs []*Subscription
}

// NewEventBus returns an empty bus. The zero value is NOT usable; buses
// are created where the CLI or worker wires its subscribers.
func NewEventBus() *EventBus { return &EventBus{} }

// Subscription is one subscriber's handle: its drop counter and the
// lifecycle of its drain goroutine.
type Subscription struct {
	fn    func(Event)
	limit int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Event
	closed bool
	done   chan struct{}

	dropped atomic.Int64
}

// Subscribe registers fn to receive every subsequent event, delivered in
// publish order on a dedicated goroutine; fn never runs concurrently with
// itself. buffer bounds the pending-event queue (<= 0 selects
// DefaultEventBuffer); see EventBus for what happens when it fills.
func (b *EventBus) Subscribe(buffer int, fn func(Event)) *Subscription {
	if buffer <= 0 {
		buffer = DefaultEventBuffer
	}
	s := &Subscription{fn: fn, limit: buffer, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.drain()
	b.mu.Lock()
	b.subs = append(b.subs, s)
	b.mu.Unlock()
	return s
}

// Publish offers ev to every subscriber queue and returns immediately; it
// never blocks on a consumer.
func (b *EventBus) Publish(ev Event) {
	b.mu.Lock()
	subs := b.subs
	b.mu.Unlock()
	for _, s := range subs {
		s.offer(ev)
	}
}

// Close flushes and stops every subscriber, returning once each has
// consumed all events published before the call. A subscriber callback
// that is blocked delays Close, never Publish — close the bus after the
// campaigns finish, before reading Dropped counts or trusting a trace
// file to be complete.
func (b *EventBus) Close() {
	b.mu.Lock()
	subs := b.subs
	b.subs = nil
	b.mu.Unlock()
	for _, s := range subs {
		s.mu.Lock()
		s.closed = true
		s.cond.Signal()
		s.mu.Unlock()
	}
	for _, s := range subs {
		<-s.done
	}
}

// Dropped reports how many RunDone events this subscriber has lost to a
// full queue. Lifecycle events are never dropped.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

func (s *Subscription) offer(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if ev.Kind == EventRunDone && len(s.queue) >= s.limit {
		s.dropped.Add(1)
		return
	}
	s.queue = append(s.queue, ev)
	s.cond.Signal()
}

// drain delivers queued events in order until the subscription closes and
// the queue is empty. It swaps the whole queue out per wakeup so offer
// holds the lock for an append, never a delivery.
func (s *Subscription) drain() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		batch := s.queue
		s.queue = nil
		closed := s.closed
		s.mu.Unlock()
		for _, ev := range batch {
			s.fn(ev)
		}
		if closed && len(batch) == 0 {
			close(s.done)
			return
		}
	}
}
