package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// tieredWorkload is a synthetic application on a three-tier world: inputs
// prepared under /input, intermediate state written to /scratch, results to
// /out. Each tier is its own backend behind a MountFS, the storage layout a
// mount-scoped campaign targets.
func tieredWorkload() Workload {
	return Workload{
		Name: "tiered-toy",
		NewFS: func() (vfs.FS, error) {
			m := vfs.NewMountFS(vfs.NewMemFS())
			for _, dir := range []string{"/input", "/scratch", "/out"} {
				if err := m.Mount(dir, vfs.NewMemFS()); err != nil {
					return nil, err
				}
			}
			return m, nil
		},
		Setup: func(fs vfs.FS) error {
			return vfs.WriteFile(fs, "/input/config.dat", bytes.Repeat([]byte{0x11}, 512))
		},
		Run: func(fs vfs.FS) error {
			in, err := vfs.ReadFile(fs, "/input/config.dat")
			if err != nil {
				return err
			}
			mid := bytes.Repeat(in[:1], 2048)
			if err := vfs.WriteFile(fs, "/scratch/mid.dat", mid); err != nil {
				return err
			}
			return vfs.WriteFile(fs, "/out/result.dat", bytes.Repeat([]byte{0x77}, 1024))
		},
	}
}

// TestArmMountsIsolation is the acceptance test for mount-scoped arming: a
// campaign armed on the scratch mount corrupts only I/O routed to that
// mount, and files on every other mount stay bit-identical to the golden
// run — in every single injection run, across every possible target.
func TestArmMountsIsolation(t *testing.T) {
	w := tieredWorkload()
	golden, err := GoldenSnapshot(w, "/")
	if err != nil {
		t.Fatalf("golden: %v", err)
	}
	if len(golden) != 3 {
		t.Fatalf("golden run produced %d files; want 3 (%v)", len(golden), golden)
	}

	// Classify compares the clean tiers byte-for-byte against golden and
	// the scratch tier for evidence of the fault.
	cleanViolations := 0
	w.Classify = func(fs vfs.FS, runErr error) classify.Outcome {
		if runErr != nil {
			return classify.Crash
		}
		for _, p := range []string{"/input/config.dat", "/out/result.dat"} {
			data, err := vfs.ReadFile(fs, p)
			if err != nil || !bytes.Equal(data, golden[p]) {
				cleanViolations++
				return classify.Detected
			}
		}
		mid, err := vfs.ReadFile(fs, "/scratch/mid.dat")
		if err != nil {
			return classify.Crash
		}
		if bytes.Equal(mid, golden["/scratch/mid.dat"]) {
			return classify.Benign
		}
		return classify.SDC
	}

	sig := Config{Model: BitFlip}.Signature()
	count, err := ProfileMounts(w, sig, []string{"/scratch"})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	// The run phase issues exactly one write per tier; only the scratch
	// one may be counted as an injection target.
	if count != 1 {
		t.Fatalf("armed profile counted %d writes; want 1 (scratch only)", count)
	}
	// Exhaust every reachable target rather than sampling.
	fired := 0
	for target := int64(0); target < count; target++ {
		rec, err := RunOnceMounts(w, sig, target, stats.NewRNG(7), []string{"/scratch"})
		if err != nil {
			t.Fatalf("run target %d: %v", target, err)
		}
		if !rec.Fired {
			t.Fatalf("target %d never fired", target)
		}
		fired++
		if rec.Outcome != classify.SDC {
			t.Fatalf("target %d outcome = %v; want SDC on the scratch tier", target, rec.Outcome)
		}
		if !strings.HasPrefix(rec.Mutation.Path, "/scratch/") {
			t.Fatalf("mutation landed on %q; must stay inside the armed mount", rec.Mutation.Path)
		}
	}
	if cleanViolations != 0 {
		t.Fatalf("%d runs corrupted a clean tier", cleanViolations)
	}
	if fired == 0 {
		t.Fatalf("no injection ever fired")
	}
}

// TestArmMountsCampaign runs the full campaign loop with mount-scoped
// arming and checks that a clean-tier classifier never trips.
func TestArmMountsCampaign(t *testing.T) {
	w := tieredWorkload()
	golden, err := GoldenSnapshot(w, "/")
	if err != nil {
		t.Fatalf("golden: %v", err)
	}
	w.Classify = func(fs vfs.FS, runErr error) classify.Outcome {
		if runErr != nil {
			return classify.Crash
		}
		for _, p := range []string{"/input/config.dat", "/out/result.dat"} {
			if data, err := vfs.ReadFile(fs, p); err != nil || !bytes.Equal(data, golden[p]) {
				return classify.Detected // clean tier corrupted: must not happen
			}
		}
		return classify.SDC
	}
	res, err := Campaign(CampaignConfig{
		Fault:     Config{Model: DroppedWrite},
		Runs:      16,
		Seed:      99,
		ArmMounts: []string{"/scratch"},
	}, w)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if got := res.Tally.Count(classify.Detected); got != 0 {
		t.Fatalf("%d runs corrupted a tier outside the armed mount", got)
	}
	if got := res.Tally.Count(classify.SDC); got != 16 {
		t.Fatalf("SDC count = %d; want all 16 dropped scratch writes", got)
	}
}

// TestDisarmedInjectorOnMountR1 checks transparency (R1) through the whole
// mount stack: a Disarmed injector interposed on a mounted tier leaves the
// application's output byte-identical to the same run on a bare MemFS.
func TestDisarmedInjectorOnMountR1(t *testing.T) {
	w := tieredWorkload()

	// Reference: the same application run on a flat, bare MemFS.
	flat := vfs.NewMemFS()
	for _, dir := range []string{"/input", "/scratch", "/out"} {
		if err := flat.MkdirAll(dir); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
	}
	if err := w.Setup(flat); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if err := w.Run(flat); err != nil {
		t.Fatalf("run: %v", err)
	}
	want, err := Snapshot(flat, "/")
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	// Under test: mounted world with a disarmed injector on the scratch
	// tier.
	world, err := w.NewFS()
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	armed, err := world.(*vfs.MountFS).WithInterposed("/scratch",
		Disarmed(Config{Model: BitFlip}.Signature()).Wrap)
	if err != nil {
		t.Fatalf("interpose: %v", err)
	}
	if err := w.Setup(armed); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if err := w.Run(armed); err != nil {
		t.Fatalf("run: %v", err)
	}
	got, err := Snapshot(armed, "/")
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	if len(got) != len(want) {
		t.Fatalf("file sets differ: got %d files, want %d", len(got), len(want))
	}
	for p, data := range want {
		if !bytes.Equal(got[p], data) {
			t.Fatalf("R1 violated: %s differs between bare MemFS and disarmed mounted tier", p)
		}
	}
}

// TestArmMountsRequiresMountFS documents the contract error: mount-scoped
// arming on a flat world is a configuration mistake, not a silent no-op.
func TestArmMountsRequiresMountFS(t *testing.T) {
	w := toyWorkload() // default NewFS: bare MemFS
	_, err := Campaign(CampaignConfig{
		Fault:     Config{Model: BitFlip},
		Runs:      1,
		ArmMounts: []string{"/scratch"},
	}, w)
	if err == nil || !strings.Contains(err.Error(), "MountFS") {
		t.Fatalf("campaign on flat world with ArmMounts = %v; want MountFS contract error", err)
	}
}

// TestProfileMountsRoutedCountOnly pins the profiling contract down with a
// workload whose per-tier write counts differ: the armed count must be the
// per-tier count, not the global one.
func TestProfileMountsRoutedCountOnly(t *testing.T) {
	w := Workload{
		Name: "skew",
		NewFS: func() (vfs.FS, error) {
			m := vfs.NewMountFS(vfs.NewMemFS())
			if err := m.Mount("/scratch", vfs.NewMemFS()); err != nil {
				return nil, err
			}
			return m, nil
		},
		Run: func(fs vfs.FS) error {
			for i := 0; i < 5; i++ {
				if err := vfs.WriteFile(fs, fmt.Sprintf("/scratch/s%d", i), []byte("x")); err != nil {
					return err
				}
			}
			for i := 0; i < 3; i++ {
				if err := vfs.WriteFile(fs, fmt.Sprintf("/r%d", i), []byte("y")); err != nil {
					return err
				}
			}
			return nil
		},
	}
	sig := Config{Model: BitFlip}.Signature()
	all, err := Profile(w, sig)
	if err != nil {
		t.Fatalf("profile all: %v", err)
	}
	scratchOnly, err := ProfileMounts(w, sig, []string{"/scratch"})
	if err != nil {
		t.Fatalf("profile scratch: %v", err)
	}
	rootOnly, err := ProfileMounts(w, sig, []string{"/"})
	if err != nil {
		t.Fatalf("profile root: %v", err)
	}
	if all != 8 || scratchOnly != 5 || rootOnly != 3 {
		t.Fatalf("profile counts all=%d scratch=%d root=%d; want 8/5/3", all, scratchOnly, rootOnly)
	}
}
