package core

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"ffis/internal/stats"
	"ffis/internal/vfs"
)

func TestModelStrings(t *testing.T) {
	for name, short := range map[string]string{
		"bit-flip":          "BF",
		"shorn-write":       "SW",
		"dropped-write":     "DW",
		"read-bit-flip":     "RB",
		"unreadable-sector": "UR",
		"latent-corruption": "LC",
		"misdirected-write": "MD",
		"short-read":        "SR",
	} {
		m, ok := Lookup(name)
		if !ok {
			t.Errorf("model %s not registered", name)
			continue
		}
		if m.Name() != name || m.Short() != short {
			t.Errorf("%s naming: %s/%s", name, m.Name(), m.Short())
		}
	}
}

func TestWriteModelsContainTableI(t *testing.T) {
	have := map[Model]bool{}
	for _, m := range WriteModels() {
		have[m] = true
	}
	for _, m := range []Model{BitFlip, ShornWrite, DroppedWrite, MisdirectedWrite} {
		if !have[m] {
			t.Errorf("WriteModels() missing %s", m.Name())
		}
	}
	if have[ReadBitFlip] || have[UnreadableSector] || have[LatentCorruption] || have[ShortRead] {
		t.Error("WriteModels() contains a read-path model")
	}
}

func TestAllModelsPartition(t *testing.T) {
	all := AllModels()
	if len(all) != len(WriteModels())+len(ReadModels()) {
		t.Fatalf("AllModels() = %v", all)
	}
	for i, m := range all {
		if got, want := IsRead(m), i >= len(WriteModels()); got != want {
			t.Errorf("%s IsRead = %v, want %v (write family must come first)", m.Name(), got, want)
		}
		if len(m.Hosts()) == 0 || m.Describe() == "" {
			t.Errorf("%s has empty hosts or feature", m.Name())
		}
		if IsRead(m) && m.Hosts()[0] != vfs.PrimRead {
			t.Errorf("%s hosts = %v, want read first", m.Name(), m.Hosts())
		}
	}
}

func TestWriteModelsHostWriteFirst(t *testing.T) {
	for _, m := range WriteModels() {
		if prims := m.Hosts(); len(prims) == 0 || prims[0] != vfs.PrimWrite {
			t.Errorf("%s hosts = %v", m.Name(), m.Hosts())
		}
	}
}

func TestParseModel(t *testing.T) {
	for _, s := range []string{"bit-flip", "BF", "bf", "BitFlip", "Bit-Flip"} {
		m, err := ParseModel(s)
		if err != nil || m != BitFlip {
			t.Errorf("ParseModel(%q) = %v, %v", s, m, err)
		}
	}
	for spelled, want := range map[string]Model{
		"dropped":     DroppedWrite,
		"shorn":       ShornWrite,
		"unreadable":  UnreadableSector,
		"latent":      LatentCorruption,
		"misdirected": MisdirectedWrite,
		"short":       ShortRead,
		"md":          MisdirectedWrite,
		"sr":          ShortRead,
	} {
		if m, err := ParseModel(spelled); err != nil || m != want {
			t.Errorf("ParseModel(%q) = %v, %v; want %s", spelled, m, err, want.Name())
		}
	}
	if _, err := ParseModel("torn-page"); err == nil {
		t.Error("ParseModel accepted an unregistered model")
	} else if !strings.Contains(err.Error(), "bit-flip") {
		t.Errorf("ParseModel error does not list the vocabulary: %v", err)
	}
}

func TestModelTableListsEveryModel(t *testing.T) {
	table := ModelTable()
	for _, m := range AllModels() {
		if !strings.Contains(table, m.Name()) || !strings.Contains(table, m.Short()) {
			t.Errorf("ModelTable() missing %s", m.Name())
		}
	}
}

func TestFeatureDefaults(t *testing.T) {
	f := Feature{}.normalize()
	if f.FlipBits != 2 {
		t.Errorf("FlipBits = %d, want paper default 2", f.FlipBits)
	}
	if f.ShornKeepNum != 7 || f.ShornKeepDen != 8 {
		t.Errorf("shorn keep = %d/%d, want 7/8", f.ShornKeepNum, f.ShornKeepDen)
	}
	if f.SectorSize != 512 || f.BlockSize != 4096 {
		t.Errorf("geometry = %d/%d, want 512/4096", f.SectorSize, f.BlockSize)
	}
}

func TestFeatureKeepClamped(t *testing.T) {
	f := Feature{ShornKeepNum: 9, ShornKeepDen: 8}.normalize()
	if f.ShornKeepNum >= f.ShornKeepDen {
		t.Fatalf("keep fraction not clamped: %d/%d", f.ShornKeepNum, f.ShornKeepDen)
	}
}

func TestConfigSignatureDefaults(t *testing.T) {
	sig := Config{Model: BitFlip}.Signature()
	if sig.Primitive != vfs.PrimWrite {
		t.Errorf("default primitive = %s, want write", sig.Primitive)
	}
	if sig.Feature.FlipBits != 2 {
		t.Errorf("feature not normalized")
	}
	if sig.String() != "bit-flip@write" {
		t.Errorf("signature string = %q", sig.String())
	}
}

func TestMutateBitFlipFlipsExactlyN(t *testing.T) {
	rng := stats.NewRNG(1)
	orig := make([]byte, 64)
	for i := range orig {
		orig[i] = byte(i)
	}
	for trial := 0; trial < 200; trial++ {
		mut, m := mutateBitFlip(orig, Feature{FlipBits: 2}.normalize(), rng)
		if bytes.Equal(mut, orig) {
			t.Fatal("no bits flipped")
		}
		diffBits := 0
		for i := range orig {
			diffBits += popcount(mut[i] ^ orig[i])
		}
		if diffBits != 2 {
			t.Fatalf("flipped %d bits, want 2", diffBits)
		}
		// Flipped bits must be consecutive.
		first := m.BitPos
		if mut[first/8]&(1<<uint(first%8)) == orig[first/8]&(1<<uint(first%8)) {
			t.Fatal("recorded BitPos not actually flipped")
		}
		second := first + 1
		if mut[second/8]&(1<<uint(second%8)) == orig[second/8]&(1<<uint(second%8)) {
			t.Fatal("second consecutive bit not flipped")
		}
	}
}

func popcount(b byte) int {
	n := 0
	for b != 0 {
		n += int(b & 1)
		b >>= 1
	}
	return n
}

func TestMutateBitFlipIsInvolution(t *testing.T) {
	// Applying the same flip twice restores the buffer: flipping is XOR.
	f := func(seed uint64, n uint8) bool {
		size := int(n)%128 + 1
		rng := stats.NewRNG(seed)
		orig := make([]byte, size)
		for i := range orig {
			orig[i] = byte(rng.Uint64())
		}
		mut, m := mutateBitFlip(orig, Feature{FlipBits: 2}.normalize(), rng)
		// Re-flip the same bits manually.
		for i := 0; i < 2 && m.BitPos+i < size*8; i++ {
			bit := m.BitPos + i
			mut[bit/8] ^= 1 << uint(bit%8)
		}
		return bytes.Equal(mut, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMutateBitFlipDoesNotAliasInput(t *testing.T) {
	rng := stats.NewRNG(2)
	orig := []byte{0xAA, 0xBB}
	snapshot := append([]byte(nil), orig...)
	mutateBitFlip(orig, Feature{}.normalize(), rng)
	if !bytes.Equal(orig, snapshot) {
		t.Fatal("mutateBitFlip modified the caller's buffer")
	}
}

func TestMutateBitFlipEmptyBuffer(t *testing.T) {
	rng := stats.NewRNG(3)
	mut, m := mutateBitFlip(nil, Feature{}.normalize(), rng)
	if len(mut) != 0 || m.BitPos != -1 {
		t.Fatalf("empty buffer mutation: %v %+v", mut, m)
	}
}

func TestMutateBitFlipWidthWiderThanBuffer(t *testing.T) {
	rng := stats.NewRNG(4)
	orig := []byte{0x00}
	mut, _ := mutateBitFlip(orig, Feature{FlipBits: 64}.normalize(), rng)
	if popcount(mut[0]) != 8 {
		t.Fatalf("expected all 8 bits flipped, got %08b", mut[0])
	}
}

func TestShornPlanAlignedBlock(t *testing.T) {
	f := Feature{}.normalize() // keep 7/8 of 4096 = 3584 bytes
	keep, dropped := shornPlan(0, 4096, f)
	if len(keep) != 1 || keep[0].Start != 0 || keep[0].End != 3584 {
		t.Fatalf("keep = %+v", keep)
	}
	if dropped != 1 { // 512 bytes = 1 sector
		t.Fatalf("dropped sectors = %d, want 1", dropped)
	}
}

func TestShornPlanThreeEighths(t *testing.T) {
	f := Feature{ShornKeepNum: 3, ShornKeepDen: 8}.normalize()
	keep, dropped := shornPlan(0, 4096, f)
	if len(keep) != 1 || keep[0].End != 1536 {
		t.Fatalf("keep = %+v", keep)
	}
	if dropped != 5 { // 2560 bytes lost = 5 sectors
		t.Fatalf("dropped = %d, want 5", dropped)
	}
}

func TestShornPlanMultiBlock(t *testing.T) {
	f := Feature{}.normalize()
	keep, dropped := shornPlan(0, 8192, f)
	if len(keep) != 2 {
		t.Fatalf("keep segments = %+v", keep)
	}
	if keep[1].Start != 4096 || keep[1].End != 4096+3584 {
		t.Fatalf("second block keep = %+v", keep[1])
	}
	if dropped != 2 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestShornPlanUnalignedOffset(t *testing.T) {
	f := Feature{}.normalize()
	// Write of 1024 bytes starting at 3072: bytes 3072..3583 are inside
	// the kept fraction, 3584..4095 are lost.
	keep, dropped := shornPlan(3072, 1024, f)
	if len(keep) != 1 || keep[0].Start != 0 || keep[0].End != 512 {
		t.Fatalf("keep = %+v", keep)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestShornPlanEntirelyInLostRegion(t *testing.T) {
	f := Feature{}.normalize()
	keep, dropped := shornPlan(3584, 512, f)
	if len(keep) != 0 {
		t.Fatalf("keep = %+v, want none", keep)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestShornPlanEmptyWrite(t *testing.T) {
	keep, dropped := shornPlan(0, 0, Feature{}.normalize())
	if keep != nil || dropped != 0 {
		t.Fatalf("empty write plan: %+v %d", keep, dropped)
	}
}

// Property: plan segments are disjoint, sorted, within bounds, and the kept
// byte count never exceeds the write length.
func TestShornPlanQuick(t *testing.T) {
	f := func(offRaw uint32, lenRaw uint16, threeEighths bool) bool {
		feat := Feature{}.normalize()
		if threeEighths {
			feat = Feature{ShornKeepNum: 3, ShornKeepDen: 8}.normalize()
		}
		off := int64(offRaw % 65536)
		length := int(lenRaw)
		keep, _ := shornPlan(off, length, feat)
		var prevEnd, total int64
		for _, s := range keep {
			if s.Start < prevEnd || s.End <= s.Start || s.End > int64(length) {
				return false
			}
			total += s.End - s.Start
			prevEnd = s.End
		}
		return total <= int64(length)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
