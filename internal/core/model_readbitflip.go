package core

import (
	"fmt"

	"ffis/internal/vfs"
)

// ReadBitFlip flips consecutive bits in the buffer returned by the target
// read instance — bit rot surfaced at read time. The fault is transient:
// the media is unchanged and only this one read observes the corruption (a
// re-read delivers clean data).
var ReadBitFlip = Register(readBitFlipModel{}, "read-bitflip")

type readBitFlipModel struct{ BaseModel }

func (readBitFlipModel) Name() string  { return "read-bit-flip" }
func (readBitFlipModel) Short() string { return "RB" }

func (readBitFlipModel) Hosts() []vfs.Primitive {
	return []vfs.Primitive{vfs.PrimRead}
}

func (readBitFlipModel) Describe() string {
	return "flip consecutive multiple bits in the returned read buffer; media unchanged (transient)"
}

// MutateRead applies the transient bit rot to the bytes the device
// delivered. A shot landing on a read that delivered nothing (the EOF
// probe ending every read-until-EOF loop — profiled, hence claimable)
// burns harmlessly, recorded with BitPos -1 like a latent shot at EOF.
func (rb readBitFlipModel) MutateRead(env Env, op ReadOp) (int, error) {
	n, err := op.Do(op.Buf)
	mutated, m := env.Flip(op.Buf[:n])
	copy(op.Buf, mutated)
	m.Model = rb
	m.Path = op.Path
	m.Offset = op.Off
	m.Length = n
	env.Record(m)
	return n, err
}

func (readBitFlipModel) RenderMutation(m Mutation) string {
	return fmt.Sprintf("read-bit-flip %s off=%d len=%d bit=%d (transient)", m.Path, m.Offset, m.Length, m.BitPos)
}
