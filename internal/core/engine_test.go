package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ffis/internal/vfs"
)

// writeTrio is the paper's Table I write vocabulary, the model axis the
// engine determinism tests sweep.
func writeTrio() []Model { return []Model{BitFlip, ShornWrite, DroppedWrite} }

// requireSameResult asserts two campaign results are bit-for-bit the same
// observation: identical profile counts, tallies, and per-run records
// (target draw, outcome, fired flag, and the full Mutation).
func requireSameResult(t *testing.T, label string, a, b CampaignResult) {
	t.Helper()
	if a.ProfileCount != b.ProfileCount {
		t.Fatalf("%s: profile count %d vs %d", label, a.ProfileCount, b.ProfileCount)
	}
	if a.Tally != b.Tally {
		t.Fatalf("%s: tally %s vs %s", label, a.Tally.String(), b.Tally.String())
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("%s: %d vs %d records", label, len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.Index != rb.Index || ra.Target != rb.Target || ra.Outcome != rb.Outcome || ra.Fired != rb.Fired {
			t.Fatalf("%s: run %d diverged: %+v vs %+v", label, i, ra, rb)
		}
		if ra.Mutation != rb.Mutation {
			t.Fatalf("%s: run %d mutation diverged:\n  %s\n  %s", label, i, ra.Mutation, rb.Mutation)
		}
	}
}

// TestCampaignDeterminismHarness is the table-driven determinism contract:
// for every fault model, on both a flat and a tiered (mount-armed) world,
// the same seed must produce identical tallies and identical per-run
// Mutation records whether runs execute serially or on eight workers — and
// whether worlds are COW clones or full per-run rebuilds.
func TestCampaignDeterminismHarness(t *testing.T) {
	type tc struct {
		name      string
		workload  func() Workload
		armMounts []string
	}
	cases := []tc{
		{name: "flat", workload: toyWorkload},
		{name: "tiered-scratch", workload: tieredWorkload, armMounts: []string{"/scratch"}},
	}
	for _, c := range cases {
		for _, model := range writeTrio() {
			c, model := c, model
			t.Run(fmt.Sprintf("%s/%s", c.name, model.Short()), func(t *testing.T) {
				run := func(workers int, fresh bool) CampaignResult {
					res, err := Campaign(CampaignConfig{
						Fault:       Config{Model: model},
						Runs:        24,
						Seed:        4242,
						Workers:     workers,
						ArmMounts:   c.armMounts,
						FreshWorlds: fresh,
					}, c.workload())
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				serial := run(1, false)
				parallel := run(8, false)
				requireSameResult(t, "workers 1 vs 8", serial, parallel)
				rebuilt := run(8, true)
				requireSameResult(t, "COW vs fresh worlds", serial, rebuilt)
			})
		}
	}
}

// gridSpecs builds a small heterogeneous grid: two worlds × three models.
func gridSpecs(runs int) []CampaignSpec {
	var specs []CampaignSpec
	for _, w := range []Workload{toyWorkload(), tieredWorkload()} {
		for _, model := range writeTrio() {
			var arm []string
			if w.NewFS != nil {
				arm = []string{"/scratch"}
			}
			specs = append(specs, CampaignSpec{
				Key:      w.Name + "/" + model.Short(),
				Workload: w,
				Config: CampaignConfig{
					Fault:     Config{Model: model},
					Runs:      runs,
					Seed:      7,
					ArmMounts: arm,
				},
			})
		}
	}
	return specs
}

// TestEngineOrderIndependence asserts grid results depend only on the specs
// themselves: reversing submission order and changing the pool width must
// reproduce every cell bit-for-bit.
func TestEngineOrderIndependence(t *testing.T) {
	specs := gridSpecs(16)
	byKey := func(results []GridResult) map[string]CampaignResult {
		out := map[string]CampaignResult{}
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Spec.Key, r.Err)
			}
			out[r.Spec.Key] = r.Result
		}
		return out
	}
	base := byKey((&Engine{Jobs: 4}).Run(specs))

	reversed := make([]CampaignSpec, len(specs))
	for i, s := range specs {
		reversed[len(specs)-1-i] = s
	}
	for _, jobs := range []int{1, 3, 8} {
		got := byKey((&Engine{Jobs: jobs}).Run(reversed))
		if len(got) != len(base) {
			t.Fatalf("jobs=%d: %d cells, want %d", jobs, len(got), len(base))
		}
		for key, want := range base {
			requireSameResult(t, fmt.Sprintf("jobs=%d %s", jobs, key), want, got[key])
		}
	}
}

// TestEngineMatchesCampaign pins the engine to the standalone Campaign
// path: one spec through the grid scheduler equals a direct Campaign call
// under the same seed.
func TestEngineMatchesCampaign(t *testing.T) {
	cfg := CampaignConfig{Fault: Config{Model: BitFlip}, Runs: 20, Seed: 99}
	direct, err := Campaign(cfg, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	grid := (&Engine{Jobs: 2}).Run([]CampaignSpec{{Key: "solo", Workload: toyWorkload(), Config: cfg}})
	if grid[0].Err != nil {
		t.Fatal(grid[0].Err)
	}
	requireSameResult(t, "engine vs campaign", direct, grid[0].Result)
}

// TestEngineMixedWorldModes pins the memoization boundary: specs sharing a
// WorldKey but differing in FreshWorlds each get their own world mode (the
// reference spec really rebuilds per run, the other really clones) and
// still produce identical results under the same seed.
func TestEngineMixedWorldModes(t *testing.T) {
	cfg := CampaignConfig{Fault: Config{Model: BitFlip}, Runs: 12, Seed: 3}
	fresh := cfg
	fresh.FreshWorlds = true
	grid := (&Engine{Jobs: 2}).Run([]CampaignSpec{
		{Key: "cow", WorldKey: "shared", Workload: toyWorkload(), Config: cfg},
		{Key: "fresh", WorldKey: "shared", Workload: toyWorkload(), Config: fresh},
	})
	for _, r := range grid {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Spec.Key, r.Err)
		}
	}
	requireSameResult(t, "cow vs fresh under one WorldKey", grid[0].Result, grid[1].Result)
}

// TestEngineMemoizesWorldAndProfile counts Setup and Run executions: three
// fault models sharing a WorldKey must trigger exactly one Setup (the COW
// snapshot) and one profiling Run — the rest of the Run calls are the
// injection runs themselves.
func TestEngineMemoizesWorldAndProfile(t *testing.T) {
	var setups, runs atomic.Int64
	golden := []byte("engine memoization probe")
	w := Workload{
		Name: "memo",
		Setup: func(fs vfs.FS) error {
			setups.Add(1)
			return fs.MkdirAll("/out")
		},
		Run: func(fs vfs.FS) error {
			runs.Add(1)
			return vfs.WriteFile(fs, "/out/data", golden)
		},
	}
	const runsPerSpec = 10
	var specs []CampaignSpec
	for _, model := range writeTrio() {
		specs = append(specs, CampaignSpec{
			Key:      "memo/" + model.Short(),
			WorldKey: "memo-world",
			Workload: w,
			Config:   CampaignConfig{Fault: Config{Model: model}, Runs: runsPerSpec, Seed: 1},
		})
	}
	for _, r := range (&Engine{Jobs: 4}).Run(specs) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Spec.Key, r.Err)
		}
		if r.Result.Tally.Total() != runsPerSpec {
			t.Fatalf("%s: tally %d", r.Spec.Key, r.Result.Tally.Total())
		}
	}
	if got := setups.Load(); got != 1 {
		t.Fatalf("Setup executed %d times, want 1 (COW snapshot not shared)", got)
	}
	// One shared profiling pass (all three models target the write
	// primitive) plus the injection runs.
	if got, want := runs.Load(), int64(1+len(specs)*runsPerSpec); got != want {
		t.Fatalf("Run executed %d times, want %d (profile not memoized)", got, want)
	}
}

// TestEngineGoldenSnapshotMemoized asserts the golden run executes once per
// (world, root) and matches the standalone GoldenSnapshot helper.
func TestEngineGoldenSnapshotMemoized(t *testing.T) {
	var runs atomic.Int64
	w := toyWorkload()
	inner := w.Run
	w.Run = func(fs vfs.FS) error { runs.Add(1); return inner(fs) }
	want, err := GoldenSnapshot(toyWorkload(), "/")
	if err != nil {
		t.Fatal(err)
	}

	e := &Engine{Jobs: 2}
	spec := CampaignSpec{Key: "toy/golden", WorldKey: "toy-golden", Workload: w}
	var snaps []map[string][]byte
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := e.GoldenSnapshot(spec, "/")
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			snaps = append(snaps, got)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("golden run executed %d times, want 1", got)
	}
	for _, got := range snaps {
		if len(got) != len(want) {
			t.Fatalf("golden snapshot size %d, want %d", len(got), len(want))
		}
		for p, data := range want {
			if string(got[p]) != string(data) {
				t.Fatalf("golden mismatch at %s", p)
			}
		}
	}
}

// TestEngineNoTargetsDoesNotAbortGrid mirrors the tiered sweep's starved
// placement: a cell armed on an idle tier reports ErrNoTargets while its
// siblings complete normally.
func TestEngineNoTargetsDoesNotAbortGrid(t *testing.T) {
	w := tieredWorkload()
	specs := []CampaignSpec{
		{Key: "live", WorldKey: "tt", Workload: w,
			Config: CampaignConfig{Fault: Config{Model: BitFlip}, Runs: 6, Seed: 5, ArmMounts: []string{"/scratch"}}},
		{Key: "starved", WorldKey: "tt", Workload: w,
			Config: CampaignConfig{Fault: Config{Model: BitFlip}, Runs: 6, Seed: 5, ArmMounts: []string{"/input"}}},
	}
	results := (&Engine{Jobs: 2}).Run(specs)
	if results[0].Err != nil {
		t.Fatalf("live cell: %v", results[0].Err)
	}
	if results[0].Result.Tally.Total() != 6 {
		t.Fatalf("live cell tally %d", results[0].Result.Tally.Total())
	}
	if !errors.Is(results[1].Err, ErrNoTargets) {
		t.Fatalf("starved cell err = %v, want ErrNoTargets", results[1].Err)
	}
}

// TestEngineEventStream checks the structured event stream: every campaign
// is bracketed by one SpecStart and one terminal SpecDone carrying the
// result, RunDone Done counts are per-campaign monotone, and totals match
// Runs.
func TestEngineEventStream(t *testing.T) {
	bus := NewEventBus()
	var mu sync.Mutex
	var events []Event
	bus.Subscribe(0, func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	e := &Engine{Jobs: 3, Events: bus}
	specs := gridSpecs(8)
	results := e.Run(specs)
	bus.Close()
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Spec.Key, r.Err)
		}
	}
	starts := map[string]int{}
	lastDone := map[string]int{}
	finals := map[string]*CampaignResult{}
	for _, ev := range events {
		switch ev.Kind {
		case EventSpecStart:
			starts[ev.Key]++
			if ev.Total != 8 || ev.Runs != 8 {
				t.Fatalf("%s: SpecStart total/runs %d/%d, want 8/8", ev.Key, ev.Total, ev.Runs)
			}
			if ev.ProfileCount <= 0 {
				t.Fatalf("%s: SpecStart profile count %d", ev.Key, ev.ProfileCount)
			}
		case EventRunDone:
			if ev.Total != 8 {
				t.Fatalf("%s: RunDone total %d, want 8", ev.Key, ev.Total)
			}
			if ev.Done <= lastDone[ev.Key] {
				t.Fatalf("%s: Done not monotone (%d after %d)", ev.Key, ev.Done, lastDone[ev.Key])
			}
			lastDone[ev.Key] = ev.Done
			if ev.Index < 0 || ev.Index >= 8 {
				t.Fatalf("%s: RunDone index %d", ev.Key, ev.Index)
			}
		case EventSpecDone:
			if ev.Err != nil {
				t.Fatalf("%s: terminal error %v", ev.Key, ev.Err)
			}
			if finals[ev.Key] != nil {
				t.Fatalf("%s: two terminal events", ev.Key)
			}
			finals[ev.Key] = ev.Result
		}
	}
	for _, s := range specs {
		if starts[s.Key] != 1 {
			t.Fatalf("%s: %d SpecStart events, want 1", s.Key, starts[s.Key])
		}
		res := finals[s.Key]
		if res == nil {
			t.Fatalf("%s: no terminal event", s.Key)
		}
		if res.Tally.Total() != 8 {
			t.Fatalf("%s: terminal tally %d", s.Key, res.Tally.Total())
		}
	}
}

// TestWorldSnapshotModes pins the snapshot fallback logic: clonable worlds
// report COW and serve clones; a world with an unclonable backend degrades
// to rebuild-per-run without error.
func TestWorldSnapshotModes(t *testing.T) {
	snap, err := NewWorldSnapshot(toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if !snap.COW() {
		t.Fatal("MemFS world should snapshot as COW")
	}
	if snap.Pristine() == nil {
		t.Fatal("COW snapshot should expose its pristine world")
	}

	var setups atomic.Int64
	unclonable := Workload{
		Name: "os-backed",
		NewFS: func() (vfs.FS, error) {
			m := vfs.NewMountFS(vfs.NewMemFS())
			if err := m.Mount("/host", plainFS{vfs.NewMemFS()}); err != nil {
				return nil, err
			}
			return m, nil
		},
		Setup: func(fs vfs.FS) error { setups.Add(1); return nil },
		Run:   func(fs vfs.FS) error { return vfs.WriteFile(fs, "/f", []byte("x")) },
	}
	snap, err = NewWorldSnapshot(unclonable)
	if err != nil {
		t.Fatal(err)
	}
	if snap.COW() {
		t.Fatal("unclonable backend should force rebuild mode")
	}
	if snap.Pristine() != nil {
		t.Fatal("rebuild mode has no pristine world")
	}
	worlds := map[vfs.FS]bool{}
	for i := 0; i < 3; i++ {
		w, err := snap.World()
		if err != nil {
			t.Fatal(err)
		}
		if worlds[w] {
			t.Fatal("rebuild mode handed out the same world twice")
		}
		worlds[w] = true
	}
	// One Setup per world, including the clonability-probe build the first
	// World() call recycles — no wasted rebuilds.
	if got := setups.Load(); got != 3 {
		t.Fatalf("Setup ran %d times for 3 worlds, want 3", got)
	}
}

// plainFS hides MemFS's Cloner implementation, standing in for an OSFS-like
// backend.
type plainFS struct{ vfs.FS }

// TestSweepPlumbsArmMounts is the regression test for the tiered-ablation
// fix: a sweep over a mounted world must profile (and inject) only the I/O
// routed to the armed tier, not the whole flat world.
func TestSweepPlumbsArmMounts(t *testing.T) {
	w := tieredWorkload()
	sig := Config{Model: BitFlip}.Signature()
	armed, err := ProfileMounts(w, sig, []string{"/scratch"})
	if err != nil {
		t.Fatal(err)
	}
	whole, err := ProfileMounts(w, sig, nil)
	if err != nil {
		t.Fatal(err)
	}
	if armed == 0 || armed >= whole {
		t.Fatalf("scratch tier profile %d should be a proper nonzero subset of the whole world's %d", armed, whole)
	}

	results, err := Sweep(FlipWidthSweep(), CampaignConfig{
		Runs:      6,
		Seed:      2,
		ArmMounts: []string{"/scratch"},
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.ProfileCount != armed {
			t.Fatalf("%s: profile count %d — sweep dropped ArmMounts (whole world would be %d)",
				r.Workload, r.ProfileCount, whole)
		}
		for _, rec := range r.Records {
			if rec.Fired && rec.Mutation.Path != "/scratch/mid.dat" {
				t.Fatalf("%s: fault fired outside the armed tier: %s", r.Workload, rec.Mutation)
			}
		}
	}
}
