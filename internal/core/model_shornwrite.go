package core

import (
	"fmt"

	"ffis/internal/vfs"
)

// ShornWrite persists only the leading fraction of each 4 KiB block at
// 512-byte sector granularity while still reporting full success,
// modelling a write torn by a power fault.
var ShornWrite = Register(shornWriteModel{}, "shorn")

type shornWriteModel struct{ BaseModel }

func (shornWriteModel) Name() string  { return "shorn-write" }
func (shornWriteModel) Short() string { return "SW" }

func (shornWriteModel) Hosts() []vfs.Primitive {
	return []vfs.Primitive{vfs.PrimWrite, vfs.PrimMknod, vfs.PrimChmod}
}

func (shornWriteModel) Describe() string {
	return "completely write the first 3/8th or 7/8th of each 4KB block at 512B granularity; reported size unchanged"
}

// MutateWrite builds the post-fault content of a shorn write. Sectors
// within the kept fraction of each 4 KiB block persist the new data; lost
// sectors retain whatever the device previously stored there. Where the
// file had no previous content (an append), the lost sectors surface stale
// data from the device's FTL — modelled as the new buffer shifted back one
// sector, which reproduces the paper's observation that shorn remnants are
// "within an order of magnitude difference from the original data".
func (sw shornWriteModel) MutateWrite(env Env, op WriteOp) WriteAction {
	f := env.Feature()
	keep, droppedSectors := shornPlan(op.Off, len(op.Buf), f)

	// Start from the stale view: previous file content where it exists...
	out := make([]byte, len(op.Buf))
	n, _ := op.File.ReadAt(out, op.Off) // best-effort; short read leaves zeros
	if n < len(out) {
		// ...and FTL remnants beyond old EOF: the buffer lagged by one
		// sector, so lost sectors hold plausible same-magnitude data.
		for i := n; i < len(out); i++ {
			src := i - f.SectorSize
			if src < 0 {
				src = 0
			}
			out[i] = op.Buf[src]
		}
	}
	kept := 0
	for _, seg := range keep {
		kept += copy(out[seg.Start:seg.End], op.Buf[seg.Start:seg.End])
	}
	env.Record(Mutation{
		Model: sw, Path: op.Path, Offset: op.Off,
		Length: len(op.Buf), Kept: kept, Sectors: droppedSectors,
	})
	return WriteAction{Buf: out}
}

// MutateMeta shears the metadata arguments: a shorn mknod persists the mode
// but loses the device number; a shorn chmod keeps only the low mode bits.
func (sw shornWriteModel) MutateMeta(env Env, op MetaOp) MetaAction {
	if op.Primitive == vfs.PrimMknod {
		env.Record(Mutation{Model: sw, Path: op.Path, Kept: 4})
		return MetaAction{Mode: op.Mode, Dev: 0}
	}
	env.Record(Mutation{Model: sw, Path: op.Path, Kept: 2})
	return MetaAction{Mode: op.Mode & 0xFFFF, Dev: op.Dev}
}

func (shornWriteModel) RenderMutation(m Mutation) string {
	return fmt.Sprintf("shorn-write %s off=%d len=%d kept=%d lost-sectors=%d",
		m.Path, m.Offset, m.Length, m.Kept, m.Sectors)
}

// shornPlan computes which byte ranges of a write survive a shorn write.
// The device persists only the first KeepNum/KeepDen of every BlockSize
// block, rounded to SectorSize sectors; everything else is lost. Block
// boundaries are device-absolute, so the plan depends on the file offset.
func shornPlan(off int64, length int, f Feature) (keep []segment, droppedSectors int) {
	if length == 0 {
		return nil, 0
	}
	keepBytesPerBlock := f.BlockSize * f.ShornKeepNum / f.ShornKeepDen
	keepBytesPerBlock -= keepBytesPerBlock % f.SectorSize
	end := off + int64(length)
	blockStart := off - off%int64(f.BlockSize)
	for bs := blockStart; bs < end; bs += int64(f.BlockSize) {
		keepEnd := bs + int64(keepBytesPerBlock)
		segStart, segEnd := maxI64(bs, off), minI64(keepEnd, end)
		if segEnd > segStart {
			keep = append(keep, segment{segStart - off, segEnd - off})
		}
		lostStart, lostEnd := maxI64(keepEnd, off), minI64(bs+int64(f.BlockSize), end)
		if lostEnd > lostStart {
			droppedSectors += int((lostEnd - lostStart + int64(f.SectorSize) - 1) / int64(f.SectorSize))
		}
	}
	return keep, droppedSectors
}

// segment is a [Start,End) byte range relative to the write buffer.
type segment struct{ Start, End int64 }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
