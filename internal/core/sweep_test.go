package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ffis/internal/classify"
)

func TestSweepRunsAllPoints(t *testing.T) {
	pts := FlipWidthSweep()
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	results, err := Sweep(pts, CampaignConfig{Runs: 8, Seed: 7}, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Tally.Total() != 8 {
			t.Fatalf("point %d total = %d", i, r.Tally.Total())
		}
		if !strings.HasPrefix(r.Workload, "toy/flip") {
			t.Fatalf("label = %q", r.Workload)
		}
		// Every flip in the toy workload corrupts live data.
		if r.Tally.Count(classify.SDC) != 8 {
			t.Fatalf("point %d tally: %s", i, r.Tally.String())
		}
	}
}

func TestShornFractionSweepMonotonicity(t *testing.T) {
	// Keeping less of each block can only lose more data; on the toy
	// workload (uniform pattern, stale remnant equals fresh data) all
	// fractions are benign — the point is that the sweep runs and labels
	// correctly.
	results, err := Sweep(ShornFractionSweep(), CampaignConfig{Runs: 6, Seed: 3}, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Tally.Total() != 6 {
			t.Fatalf("total = %d", r.Tally.Total())
		}
	}
	if !strings.Contains(results[0].Workload, "keep1of8") {
		t.Fatalf("label = %q", results[0].Workload)
	}
}

func TestWriteResultsJSON(t *testing.T) {
	res, err := Campaign(CampaignConfig{
		Fault: Config{Model: BitFlip},
		Runs:  5,
		Seed:  1,
	}, toyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResultsJSON(&buf, []CampaignResult{res}); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0]["fault_model"] != "bit-flip" {
		t.Fatalf("model = %v", rows[0]["fault_model"])
	}
	outcomes, ok := rows[0]["outcomes"].(map[string]any)
	if !ok || outcomes["SDC"].(float64) != 5 {
		t.Fatalf("outcomes = %v", rows[0]["outcomes"])
	}
	if rows[0]["sdc_rate"].(float64) != 1.0 {
		t.Fatalf("sdc_rate = %v", rows[0]["sdc_rate"])
	}
}
