package core

import (
	"fmt"

	"ffis/internal/vfs"
)

// BitFlip flips consecutive bits at a random position in the write buffer,
// modelling silent bit corruption that escaped the SSD's ECC. It hosts on
// every buffer-carrying write-side primitive of Table I, plus truncate
// (where the size argument is the buffer).
var BitFlip = Register(bitFlipModel{}, "bitflip")

type bitFlipModel struct{ BaseModel }

func (bitFlipModel) Name() string  { return "bit-flip" }
func (bitFlipModel) Short() string { return "BF" }

func (bitFlipModel) Hosts() []vfs.Primitive {
	return []vfs.Primitive{vfs.PrimWrite, vfs.PrimMknod, vfs.PrimChmod, vfs.PrimTruncate}
}

func (bitFlipModel) Describe() string {
	return "flip consecutive multiple bits (default 2)"
}

func (bf bitFlipModel) MutateWrite(env Env, op WriteOp) WriteAction {
	mutated, m := env.Flip(op.Buf)
	m.Model = bf
	m.Path = op.Path
	m.Offset = op.Off
	m.Length = len(op.Buf)
	env.Record(m)
	return WriteAction{Buf: mutated}
}

// MutateTruncate resizes to a corrupted size argument. The flip lands in
// the significant bytes of the size, so the corrupted size stays the same
// order of magnitude (a flip in the top bits of a 64-bit size would demand
// exabytes of backing store no device models).
func (bf bitFlipModel) MutateTruncate(env Env, op TruncateOp) TruncateAction {
	width := 1
	for s := op.Size >> 8; s > 0; s >>= 8 {
		width++
	}
	buf := make([]byte, width)
	for i := range buf {
		buf[i] = byte(op.Size >> (8 * i))
	}
	mut, m := env.Flip(buf)
	var newSize int64
	for i := width - 1; i >= 0; i-- {
		newSize = newSize<<8 | int64(mut[i])
	}
	m.Model = bf
	m.Path = op.Path
	m.Offset = op.Size
	m.NewSize = newSize
	env.Record(m)
	return TruncateAction{Size: newSize}
}

func (bf bitFlipModel) MutateMeta(env Env, op MetaOp) MetaAction {
	buf := []byte{byte(op.Mode), byte(op.Mode >> 8), byte(op.Mode >> 16), byte(op.Mode >> 24)}
	mut, m := env.Flip(buf)
	m.Model = bf
	m.Path = op.Path
	env.Record(m)
	mode := uint32(mut[0]) | uint32(mut[1])<<8 | uint32(mut[2])<<16 | uint32(mut[3])<<24
	return MetaAction{Mode: mode, Dev: op.Dev}
}

func (bitFlipModel) RenderMutation(m Mutation) string {
	if m.NewSize > 0 {
		return fmt.Sprintf("bit-flip %s truncate size %d -> %d bit=%d", m.Path, m.Offset, m.NewSize, m.BitPos)
	}
	return fmt.Sprintf("bit-flip %s off=%d len=%d bit=%d", m.Path, m.Offset, m.Length, m.BitPos)
}
