package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// Injector holds the armed fault state shared by every handle of an
// InjectorFS. It counts dynamic executions of the signature's primitive and
// corrupts the target-th instance (0-based), as the paper's fault injector
// does: "for each fault injection run, it first generates a random number
// from 0 to count-1 ... when the execution count of the target primitive
// hits that random number, the fault injector applies the fault".
//
// One injection run still models one physical fault event, but an event may
// manifest on more than one primitive instance: the injector carries a shot
// budget (Signature.ShotBudget — 1 unless the model implements MultiShot or
// Signature.Shots overrides it), and a MultiShot model selects which
// instances at or after the drawn target belong to the event. For the
// single-shot default the claim sequence is exactly the classic one: the
// target instance fires, everything else passes through.
//
// The injector knows nothing about individual fault models: once a shot is
// claimed on the armed primitive, it hands the instance to the signature's
// Model hook (MutateWrite/MutateRead/MutateTruncate/MutateMeta) and
// completes the primitive the way the returned action dictates. Models are
// therefore free to ship as self-contained registrations — no dispatch
// switch here grows when the vocabulary does.
type Injector struct {
	sig    Signature
	target int64
	rng    *stats.RNG
	shots  int       // resolved shot budget
	plan   MultiShot // nil: only rel 0 claims

	count atomic.Int64

	mu        sync.Mutex // guards fired and mutations
	fired     int
	mutations []Mutation

	// serialDraws marks the one case where RNG draws still need a mutex.
	// The RNG state is sharded per (seed, run-index) stream — every run
	// constructs its own Injector around its own runStream RNG, so 8+
	// worker campaigns never share a draw lock across runs. Within one
	// run, draws happen only inside model hooks, and a hook runs only
	// after claim() succeeded. For the single-shot family (no MultiShot
	// plan) at most one claim can ever succeed — the claim winner owns
	// the stream exclusively and draws lock-free. Only a MultiShot plan
	// can have two claimed hooks on concurrent handles drawing at once,
	// so only then do draws serialize on rngMu. Either way the draw
	// order, and hence every tally, is bit-identical to the locked era —
	// the seed-pinned equivalence suites pin it.
	serialDraws bool
	rngMu       sync.Mutex
}

// NewInjector arms an injector for the given signature at the given dynamic
// instance. rng supplies the intra-buffer randomness (bit position). After
// its shot budget is exhausted the injector passes everything through.
func NewInjector(sig Signature, target int64, rng *stats.RNG) *Injector {
	sig = Signature{
		Model:     sig.Model,
		Primitive: sig.Primitive,
		Feature:   sig.Feature.normalize(),
		Shots:     sig.Shots,
	}
	plan, _ := sig.Model.(MultiShot)
	return &Injector{
		sig: sig, target: target, rng: rng,
		shots: sig.ShotBudget(), plan: plan,
		serialDraws: plan != nil,
	}
}

// Disarmed returns an injector that never fires; wrapping with it yields a
// pure pass-through, used to validate transparency (R1) in tests.
func Disarmed(sig Signature) *Injector {
	return NewInjector(sig, -1, stats.NewRNG(0))
}

// Signature returns the armed fault signature.
func (inj *Injector) Signature() Signature { return inj.sig }

// Target returns the dynamic primitive instance that will be corrupted.
func (inj *Injector) Target() int64 { return inj.target }

// Count returns how many instances of the target primitive have executed.
func (inj *Injector) Count() int64 { return inj.count.Load() }

// Fired reports whether the fault has been planted, and the first recorded
// mutation if so — the event's primary record; FiredShots counts the rest.
func (inj *Injector) Fired() (Mutation, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if len(inj.mutations) == 0 {
		return Mutation{}, false
	}
	return inj.mutations[0], true
}

// FiredShots returns how many shots of the budget have been claimed.
func (inj *Injector) FiredShots() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fired
}

// Mutations returns a copy of every recorded mutation, in firing order.
func (inj *Injector) Mutations() []Mutation {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Mutation(nil), inj.mutations...)
}

// claim atomically checks whether this primitive execution is one of the
// event's shots. The dynamic count always advances; a disarmed injector
// (negative target) never fires; instances before the target never fire.
// At or past the target the model's shot plan (default: only the target
// itself) decides, bounded by the remaining budget.
func (inj *Injector) claim() bool {
	idx := inj.count.Add(1) - 1
	if inj.target < 0 || idx < inj.target {
		return false
	}
	rel := idx - inj.target
	if inj.plan == nil && rel != 0 {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.fired >= inj.shots {
		return false
	}
	if inj.plan != nil && !inj.plan.Claims(inj.sig.Feature, rel) {
		return false
	}
	inj.fired++
	return true
}

func (inj *Injector) record(m Mutation) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.mutations = append(inj.mutations, m)
}

// flip draws the bit position for every flipping caller (write, metadata,
// truncate, and read paths alike) from the injector's per-run stream.
// Single-shot signatures draw lock-free: the claim winner is the only
// goroutine that can ever reach a hook, so the stream is exclusively its
// own. MultiShot plans, whose claimed hooks can overlap on concurrent
// handles, serialize on rngMu — still never queuing behind the
// claim/record bookkeeping guarded by mu.
func (inj *Injector) flip(buf []byte) ([]byte, Mutation) {
	if inj.serialDraws {
		inj.rngMu.Lock()
		defer inj.rngMu.Unlock()
	}
	return mutateBitFlip(buf, inj.sig.Feature, inj.rng)
}

// env packages the injector state a model hook may touch.
func (inj *Injector) env() Env { return Env{inj: inj} }

// Env is the capability a fault-model hook receives from the injector: the
// normalized feature tunables, the run's private RNG stream, and the
// mutation recorder. Hooks draw all their randomness through Env so
// concurrent handles can never race on the RNG and campaign determinism
// is preserved no matter which model fires.
type Env struct {
	inj *Injector
}

// Feature returns the signature's normalized tunables.
func (e Env) Feature() Feature { return e.inj.sig.Feature }

// Flip returns a copy of buf with Feature().FlipBits consecutive bits
// flipped at a random position, drawing from the injector's RNG under its
// mutex. The returned mutation carries only BitPos and Length; the hook
// stamps Model, Path, and Offset before recording.
func (e Env) Flip(buf []byte) ([]byte, Mutation) { return e.inj.flip(buf) }

// Intn draws a uniform int in [0, n) from the injector's per-run RNG
// stream — lock-free for single-shot signatures (the claim winner owns
// the stream), under the dedicated draw mutex for MultiShot plans.
func (e Env) Intn(n int) int {
	if e.inj.serialDraws {
		e.inj.rngMu.Lock()
		defer e.inj.rngMu.Unlock()
	}
	return e.inj.rng.Intn(n)
}

// Record appends the mutation to the injector's fired record; Fired()
// reports the first one and the campaign runner logs it. Every hook must
// record exactly what it did — an unrecorded shot tallies the run as never
// injected.
func (e Env) Record(m Mutation) { e.inj.record(m) }

// Shot returns the 1-based ordinal of the shot being served: 1 for the
// drawn target instance, 2 for a MultiShot model's second manifestation,
// and so on. Hooks use it to label correlated mutations.
func (e Env) Shot() int {
	e.inj.mu.Lock()
	defer e.inj.mu.Unlock()
	return e.inj.fired
}

// Wrap returns a file system that behaves exactly like inner except for the
// single corrupted primitive instance.
func (inj *Injector) Wrap(inner vfs.FS) vfs.FS {
	return &InjectorFS{inner: inner, inj: inj}
}

// InjectorFS is the FFIS interposition layer (Figure 2): a drop-in vfs.FS
// whose primitives consult the injector before delegating.
type InjectorFS struct {
	inner vfs.FS
	inj   *Injector
}

func (f *InjectorFS) wrapFile(file vfs.File, err error) (vfs.File, error) {
	if err != nil {
		return nil, err
	}
	// fs is the uninstrumented view at the same path-translation layer:
	// models that need a side handle onto the file being read or written
	// (latent corruption's at-rest mutation) open it here without
	// re-entering the injector.
	return &injectorFile{File: file, inj: f.inj, fs: f.inner}, nil
}

// Create delegates and wraps the returned handle.
func (f *InjectorFS) Create(name string) (vfs.File, error) {
	return f.wrapFile(f.inner.Create(name))
}

// Open delegates and wraps the returned handle.
func (f *InjectorFS) Open(name string) (vfs.File, error) {
	return f.wrapFile(f.inner.Open(name))
}

// Append delegates and wraps the returned handle.
func (f *InjectorFS) Append(name string) (vfs.File, error) {
	return f.wrapFile(f.inner.Append(name))
}

// Mkdir delegates unchanged.
func (f *InjectorFS) Mkdir(name string) error { return f.inner.Mkdir(name) }

// MkdirAll delegates unchanged.
func (f *InjectorFS) MkdirAll(name string) error { return f.inner.MkdirAll(name) }

// Remove delegates unchanged.
func (f *InjectorFS) Remove(name string) error { return f.inner.Remove(name) }

// RemoveAll delegates unchanged.
func (f *InjectorFS) RemoveAll(name string) error { return f.inner.RemoveAll(name) }

// Rename delegates unchanged.
func (f *InjectorFS) Rename(oldName, newName string) error {
	return f.inner.Rename(oldName, newName)
}

// Stat delegates unchanged.
func (f *InjectorFS) Stat(name string) (vfs.FileInfo, error) { return f.inner.Stat(name) }

// ReadDir delegates unchanged.
func (f *InjectorFS) ReadDir(name string) ([]vfs.FileInfo, error) {
	return f.inner.ReadDir(name)
}

// Mknod hosts faults when the signature targets the mknod primitive
// (Table I lists FFIS_mknod as a host): the mode/dev arguments are treated
// as the write buffer and handed to the model's metadata hook.
func (f *InjectorFS) Mknod(name string, mode uint32, dev uint64) error {
	if f.inj.sig.Primitive == vfs.PrimMknod && f.inj.claim() {
		act := f.inj.sig.Model.MutateMeta(f.inj.env(),
			MetaOp{Primitive: vfs.PrimMknod, Path: name, Mode: mode, Dev: dev})
		if act.Drop {
			return nil // node silently never created
		}
		mode, dev = act.Mode, act.Dev
	}
	return f.inner.Mknod(name, mode, dev)
}

// Chmod hosts faults when the signature targets the chmod primitive.
func (f *InjectorFS) Chmod(name string, mode uint32) error {
	if f.inj.sig.Primitive == vfs.PrimChmod && f.inj.claim() {
		act := f.inj.sig.Model.MutateMeta(f.inj.env(),
			MetaOp{Primitive: vfs.PrimChmod, Path: name, Mode: mode})
		if act.Drop {
			return nil
		}
		mode = act.Mode
	}
	return f.inner.Chmod(name, mode)
}

// Truncate hosts faults when the signature targets the truncate primitive.
func (f *InjectorFS) Truncate(name string, size int64) error {
	size, drop := f.inj.interceptTruncate(name, size)
	if drop {
		return nil
	}
	return f.inner.Truncate(name, size)
}

// interceptTruncate claims a truncate-hosted fault and asks the model for
// the corrupted size; drop reports that the truncate must be suppressed
// entirely (while still acknowledged).
func (inj *Injector) interceptTruncate(name string, size int64) (newSize int64, drop bool) {
	if inj.sig.Primitive != vfs.PrimTruncate || !inj.claim() {
		return size, false
	}
	act := inj.sig.Model.MutateTruncate(inj.env(), TruncateOp{Path: name, Size: size})
	return act.Size, act.Drop
}

// injectorFile interposes on the data path of a single handle. This is the
// Go rendering of Figure 3a: the (buffer, size, offset) triple passed to
// FFIS_write (or returned by FFIS_read) is handed to the armed model's hook
// before reaching the other side. fs is the uninstrumented view of the same
// storage, exposed to read hooks for at-rest mutation.
type injectorFile struct {
	vfs.File
	inj *Injector
	fs  vfs.FS
}

// Write intercepts the sequential write primitive. Zero-length buffers pass
// through without claiming: an empty write mutates nothing, so burning the
// injector's single shot on it would tally a run as injected when no fault
// ever reached the device.
func (f *injectorFile) Write(p []byte) (int, error) {
	if f.inj.sig.Primitive != vfs.PrimWrite || len(p) == 0 || !f.inj.claim() {
		return f.File.Write(p)
	}
	off, err := f.File.Seek(0, io.SeekCurrent)
	if err != nil {
		// Without the real offset a block- or sector-aligned corruption
		// plan would be computed against a fabricated device position;
		// fail the write rather than corrupt the wrong bytes.
		return 0, fmt.Errorf("core: injector: device offset unknown for armed write: %w", err)
	}
	act := f.inj.sig.Model.MutateWrite(f.inj.env(),
		WriteOp{File: f.File, Path: f.File.Name(), Buf: p, Off: off})
	if act.Err != nil {
		// The device refused the write: nothing persisted, nothing
		// acknowledged, the sequential offset stays put.
		return 0, act.Err
	}
	if act.Skip {
		// The device dropped (or misdirected) the write but acknowledged
		// it: place the sequential offset at the absolute post-write
		// position so subsequent writes land where the application
		// believes they will. The seek must be absolute — the model hook
		// holds the live handle and may have moved it (a misdirected
		// write persisting the buffer elsewhere), so a relative
		// Seek(len(p), io.SeekCurrent) would advance from wherever the
		// hook parked the handle instead of from the intercepted offset.
		if _, err := f.File.Seek(off+int64(len(p)), io.SeekStart); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	n, err := f.File.Write(act.Buf)
	if n > len(p) {
		n = len(p)
	}
	return n, err
}

// WriteAt intercepts the positional write primitive (pwrite).
func (f *injectorFile) WriteAt(p []byte, off int64) (int, error) {
	if f.inj.sig.Primitive != vfs.PrimWrite || len(p) == 0 || !f.inj.claim() {
		return f.File.WriteAt(p, off)
	}
	act := f.inj.sig.Model.MutateWrite(f.inj.env(),
		WriteOp{File: f.File, Path: f.File.Name(), Buf: p, Off: off})
	if act.Err != nil {
		return 0, act.Err
	}
	if act.Skip {
		return len(p), nil
	}
	n, err := f.File.WriteAt(act.Buf, off)
	if n > len(p) {
		n = len(p)
	}
	return n, err
}

// Read intercepts the sequential read primitive: the mirror of FFIS_write
// for faults that surface when data is consumed. Zero-length buffers pass
// through without claiming, like the write path.
func (f *injectorFile) Read(p []byte) (int, error) {
	if f.inj.sig.Primitive != vfs.PrimRead || len(p) == 0 || !f.inj.claim() {
		return f.File.Read(p)
	}
	off, offErr := f.File.Seek(0, io.SeekCurrent)
	if offErr != nil {
		off = -1
	}
	return f.inj.sig.Model.MutateRead(f.inj.env(), ReadOp{
		File: f.File, FS: f.fs, Path: f.File.Name(),
		Buf: p, Off: off, OffErr: offErr,
		Do: func(q []byte) (int, error) { return f.File.Read(q) },
	})
}

// ReadAt intercepts the positional read primitive (pread).
func (f *injectorFile) ReadAt(p []byte, off int64) (int, error) {
	if f.inj.sig.Primitive != vfs.PrimRead || len(p) == 0 || !f.inj.claim() {
		return f.File.ReadAt(p, off)
	}
	return f.inj.sig.Model.MutateRead(f.inj.env(), ReadOp{
		File: f.File, FS: f.fs, Path: f.File.Name(),
		Buf: p, Off: off,
		Do: func(q []byte) (int, error) { return f.File.ReadAt(q, off) },
	})
}

// Truncate intercepts the handle-level truncate primitive, hosting the same
// faults as the FS-level call so the claim count matches the profiler's.
func (f *injectorFile) Truncate(size int64) error {
	size, drop := f.inj.interceptTruncate(f.File.Name(), size)
	if drop {
		return nil
	}
	return f.File.Truncate(size)
}

var (
	_ vfs.FS   = (*InjectorFS)(nil)
	_ vfs.File = (*injectorFile)(nil)
)
