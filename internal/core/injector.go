package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// Injector holds the armed fault state shared by every handle of an
// InjectorFS. It counts dynamic executions of the signature's primitive and
// corrupts exactly the target-th instance (0-based), as the paper's fault
// injector does: "for each fault injection run, it first generates a random
// number from 0 to count-1 ... when the execution count of the target
// primitive hits that random number, the fault injector applies the fault".
type Injector struct {
	sig    Signature
	target int64
	rng    *stats.RNG

	count atomic.Int64

	mu       sync.Mutex
	mutation *Mutation
}

// NewInjector arms an injector for the given signature at the given dynamic
// instance. rng supplies the intra-buffer randomness (bit position). The
// injector is single-shot: after firing it passes everything through.
func NewInjector(sig Signature, target int64, rng *stats.RNG) *Injector {
	return &Injector{sig: Signature{
		Model:     sig.Model,
		Primitive: sig.Primitive,
		Feature:   sig.Feature.normalize(),
	}, target: target, rng: rng}
}

// Disarmed returns an injector that never fires; wrapping with it yields a
// pure pass-through, used to validate transparency (R1) in tests.
func Disarmed(sig Signature) *Injector {
	return NewInjector(sig, -1, stats.NewRNG(0))
}

// Signature returns the armed fault signature.
func (inj *Injector) Signature() Signature { return inj.sig }

// Target returns the dynamic primitive instance that will be corrupted.
func (inj *Injector) Target() int64 { return inj.target }

// Count returns how many instances of the target primitive have executed.
func (inj *Injector) Count() int64 { return inj.count.Load() }

// Fired reports whether the fault has been planted, and the mutation record
// if so.
func (inj *Injector) Fired() (Mutation, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.mutation == nil {
		return Mutation{}, false
	}
	return *inj.mutation, true
}

// claim atomically checks whether this primitive execution is the target.
func (inj *Injector) claim() bool {
	idx := inj.count.Add(1) - 1
	return idx == inj.target
}

func (inj *Injector) record(m Mutation) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	cp := m
	inj.mutation = &cp
}

// flip is the single entry point to the injector's RNG for bit flipping:
// every caller (write, metadata, truncate, and read paths alike) draws the
// bit position under inj.mu, so concurrent handles can never race on the
// RNG state.
func (inj *Injector) flip(buf []byte) ([]byte, Mutation) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return mutateBitFlip(buf, inj.sig.Feature, inj.rng)
}

// Wrap returns a file system that behaves exactly like inner except for the
// single corrupted primitive instance.
func (inj *Injector) Wrap(inner vfs.FS) vfs.FS {
	return &InjectorFS{inner: inner, inj: inj}
}

// InjectorFS is the FFIS interposition layer (Figure 2): a drop-in vfs.FS
// whose write-side primitives consult the injector before delegating.
type InjectorFS struct {
	inner vfs.FS
	inj   *Injector
}

func (f *InjectorFS) wrapFile(file vfs.File, err error) (vfs.File, error) {
	if err != nil {
		return nil, err
	}
	// fs is the uninstrumented view at the same path-translation layer: the
	// latent-corruption model uses it to open a writable side handle onto
	// the file being read without re-entering the injector.
	return &injectorFile{File: file, inj: f.inj, fs: f.inner}, nil
}

// Create delegates and wraps the returned handle.
func (f *InjectorFS) Create(name string) (vfs.File, error) {
	return f.wrapFile(f.inner.Create(name))
}

// Open delegates and wraps the returned handle.
func (f *InjectorFS) Open(name string) (vfs.File, error) {
	return f.wrapFile(f.inner.Open(name))
}

// Append delegates and wraps the returned handle.
func (f *InjectorFS) Append(name string) (vfs.File, error) {
	return f.wrapFile(f.inner.Append(name))
}

// Mkdir delegates unchanged.
func (f *InjectorFS) Mkdir(name string) error { return f.inner.Mkdir(name) }

// MkdirAll delegates unchanged.
func (f *InjectorFS) MkdirAll(name string) error { return f.inner.MkdirAll(name) }

// Remove delegates unchanged.
func (f *InjectorFS) Remove(name string) error { return f.inner.Remove(name) }

// RemoveAll delegates unchanged.
func (f *InjectorFS) RemoveAll(name string) error { return f.inner.RemoveAll(name) }

// Rename delegates unchanged.
func (f *InjectorFS) Rename(oldName, newName string) error {
	return f.inner.Rename(oldName, newName)
}

// Stat delegates unchanged.
func (f *InjectorFS) Stat(name string) (vfs.FileInfo, error) { return f.inner.Stat(name) }

// ReadDir delegates unchanged.
func (f *InjectorFS) ReadDir(name string) ([]vfs.FileInfo, error) {
	return f.inner.ReadDir(name)
}

// Mknod hosts faults when the signature targets the mknod primitive
// (Table I lists FFIS_mknod as a host): the mode/dev arguments are treated
// as the write buffer.
func (f *InjectorFS) Mknod(name string, mode uint32, dev uint64) error {
	if f.inj.sig.Primitive == vfs.PrimMknod && f.inj.claim() {
		switch f.inj.sig.Model {
		case BitFlip:
			buf := []byte{byte(mode), byte(mode >> 8), byte(mode >> 16), byte(mode >> 24)}
			mut, m := f.inj.flip(buf)
			m.Path = name
			f.inj.record(m)
			mode = uint32(mut[0]) | uint32(mut[1])<<8 | uint32(mut[2])<<16 | uint32(mut[3])<<24
		case DroppedWrite:
			f.inj.record(Mutation{Model: DroppedWrite, Path: name, Dropped: true})
			return nil // node silently never created
		case ShornWrite:
			// A shorn mknod persists the mode but loses the device number.
			f.inj.record(Mutation{Model: ShornWrite, Path: name, Kept: 4})
			dev = 0
		}
	}
	return f.inner.Mknod(name, mode, dev)
}

// Chmod hosts faults when the signature targets the chmod primitive.
func (f *InjectorFS) Chmod(name string, mode uint32) error {
	if f.inj.sig.Primitive == vfs.PrimChmod && f.inj.claim() {
		switch f.inj.sig.Model {
		case BitFlip:
			buf := []byte{byte(mode), byte(mode >> 8), byte(mode >> 16), byte(mode >> 24)}
			mut, m := f.inj.flip(buf)
			m.Path = name
			f.inj.record(m)
			mode = uint32(mut[0]) | uint32(mut[1])<<8 | uint32(mut[2])<<16 | uint32(mut[3])<<24
		case DroppedWrite:
			f.inj.record(Mutation{Model: DroppedWrite, Path: name, Dropped: true})
			return nil
		case ShornWrite:
			f.inj.record(Mutation{Model: ShornWrite, Path: name, Kept: 2})
			mode &= 0xFFFF
		}
	}
	return f.inner.Chmod(name, mode)
}

// Truncate hosts faults when the signature targets the truncate primitive:
// a dropped truncate is acknowledged but never applied, and a bit-flipped
// truncate resizes to a corrupted size argument.
func (f *InjectorFS) Truncate(name string, size int64) error {
	if size2, drop, ok := f.inj.applyTruncateFault(name, size); ok {
		if drop {
			return nil
		}
		size = size2
	}
	return f.inner.Truncate(name, size)
}

// applyTruncateFault claims and applies a truncate-hosted fault. ok reports
// that the fault fired; drop that the truncate must be suppressed entirely.
func (inj *Injector) applyTruncateFault(name string, size int64) (newSize int64, drop, ok bool) {
	if inj.sig.Primitive != vfs.PrimTruncate || !inj.claim() {
		return size, false, false
	}
	switch inj.sig.Model {
	case DroppedWrite:
		inj.record(Mutation{Model: DroppedWrite, Path: name, Offset: size, Dropped: true})
		return size, true, true
	case BitFlip:
		// The flip lands in the significant bytes of the size argument, so
		// the corrupted size stays the same order of magnitude (a flip in
		// the top bits of a 64-bit size would demand exabytes of backing
		// store no device models).
		width := 1
		for s := size >> 8; s > 0; s >>= 8 {
			width++
		}
		buf := make([]byte, width)
		for i := range buf {
			buf[i] = byte(size >> (8 * i))
		}
		mut, m := inj.flip(buf)
		newSize = 0
		for i := width - 1; i >= 0; i-- {
			newSize = newSize<<8 | int64(mut[i])
		}
		m.Path = name
		m.Offset = size
		m.NewSize = newSize
		inj.record(m)
		return newSize, false, true
	default:
		// Unreachable under Signature.Validate; pass through untouched.
		return size, false, false
	}
}

// injectorFile interposes on the data path of a single handle. This is the
// Go rendering of Figure 3a: the (buffer, size, offset) triple passed to
// FFIS_write (or returned by FFIS_read) is modified according to the fault
// model before reaching the other side. fs is the uninstrumented view of
// the same storage, used by LatentCorruption to mutate at-rest bytes.
type injectorFile struct {
	vfs.File
	inj *Injector
	fs  vfs.FS
}

// Write intercepts the sequential write primitive. Zero-length buffers pass
// through without claiming: an empty write mutates nothing, so burning the
// injector's single shot on it would tally a run as injected when no fault
// ever reached the device.
func (f *injectorFile) Write(p []byte) (int, error) {
	if f.inj.sig.Primitive != vfs.PrimWrite || len(p) == 0 || !f.inj.claim() {
		return f.File.Write(p)
	}
	off, err := f.File.Seek(0, io.SeekCurrent)
	if err != nil {
		// Without the real offset the shorn-write block plan would be
		// computed against a fabricated device position; fail the write
		// rather than corrupt the wrong sectors.
		return 0, fmt.Errorf("core: injector: device offset unknown for armed write: %w", err)
	}
	mutated, skip, m := f.inj.applyWriteFault(f.File, p, off)
	m.Path = f.File.Name()
	m.Offset = off
	f.inj.record(m)
	if skip {
		// The device dropped the write but acknowledged it: advance the
		// sequential offset so subsequent writes land where the
		// application believes they will, leaving a hole of stale bytes.
		if _, err := f.File.Seek(int64(len(p)), io.SeekCurrent); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	n, err := f.File.Write(mutated)
	if n > len(p) {
		n = len(p)
	}
	return n, err
}

// WriteAt intercepts the positional write primitive (pwrite).
func (f *injectorFile) WriteAt(p []byte, off int64) (int, error) {
	if f.inj.sig.Primitive != vfs.PrimWrite || len(p) == 0 || !f.inj.claim() {
		return f.File.WriteAt(p, off)
	}
	mutated, skip, m := f.inj.applyWriteFault(f.File, p, off)
	m.Path = f.File.Name()
	m.Offset = off
	f.inj.record(m)
	if skip {
		return len(p), nil
	}
	n, err := f.File.WriteAt(mutated, off)
	if n > len(p) {
		n = len(p)
	}
	return n, err
}

// Read intercepts the sequential read primitive: the mirror of FFIS_write
// for faults that surface when data is consumed. Zero-length buffers pass
// through without claiming, like the write path.
func (f *injectorFile) Read(p []byte) (int, error) {
	if f.inj.sig.Primitive != vfs.PrimRead || len(p) == 0 || !f.inj.claim() {
		return f.File.Read(p)
	}
	switch f.inj.sig.Model {
	case UnreadableSector:
		// The device never delivers the data, so the underlying read must
		// not execute: the sequential offset stays where it was.
		off, err := f.File.Seek(0, io.SeekCurrent)
		if err != nil {
			off = -1 // offset is only logged for this model
		}
		return 0, f.inj.failUnreadable(f.File.Name(), len(p), off)
	case LatentCorruption:
		// The at-rest bytes under the read range must be corrupted before
		// the read executes, so this very read already observes the damage.
		off, err := f.File.Seek(0, io.SeekCurrent)
		if err != nil {
			return 0, fmt.Errorf("core: injector: device offset unknown for armed read: %w", err)
		}
		if err := f.corruptAtRest(off, len(p)); err != nil {
			return 0, err
		}
		return f.File.Read(p)
	default: // ReadBitFlip
		off, err := f.File.Seek(0, io.SeekCurrent)
		if err != nil {
			off = -1 // offset is only logged for this model
		}
		n, err := f.File.Read(p)
		f.inj.flipRead(f.File.Name(), p, n, off)
		return n, err
	}
}

// ReadAt intercepts the positional read primitive (pread).
func (f *injectorFile) ReadAt(p []byte, off int64) (int, error) {
	if f.inj.sig.Primitive != vfs.PrimRead || len(p) == 0 || !f.inj.claim() {
		return f.File.ReadAt(p, off)
	}
	switch f.inj.sig.Model {
	case UnreadableSector:
		return 0, f.inj.failUnreadable(f.File.Name(), len(p), off)
	case LatentCorruption:
		if err := f.corruptAtRest(off, len(p)); err != nil {
			return 0, err
		}
		return f.File.ReadAt(p, off)
	default: // ReadBitFlip
		n, err := f.File.ReadAt(p, off)
		f.inj.flipRead(f.File.Name(), p, n, off)
		return n, err
	}
}

// failUnreadable records the uncorrectable-ECC mutation and returns the
// EIO the application sees. The caller must not have executed the
// underlying read: the device delivers nothing.
func (inj *Injector) failUnreadable(name string, length int, off int64) error {
	inj.record(Mutation{Model: UnreadableSector, Path: name, Offset: off, Length: length, Unreadable: true})
	return &vfs.PathError{Op: "read", Path: name, Err: vfs.ErrUnreadable}
}

// flipRead applies the transient bit rot to the n bytes the device
// delivered into p. A shot landing on a read that delivered nothing (the
// EOF probe ending every read-until-EOF loop — profiled, hence claimable)
// burns harmlessly, recorded with BitPos -1 like a latent shot at EOF.
func (inj *Injector) flipRead(name string, p []byte, n int, off int64) {
	mutated, m := inj.flip(p[:n])
	copy(p, mutated)
	m.Model = ReadBitFlip
	m.Path = name
	m.Offset = off
	m.Length = n
	inj.record(m)
}

// corruptAtRest flips bits in the stored bytes under [off, off+length),
// clamped to the file's current size, through a writable side handle on the
// uninstrumented view — so the corruption is durable and every subsequent
// reader (the application and the outcome classifier alike) observes it.
func (f *injectorFile) corruptAtRest(off int64, length int) error {
	name := f.File.Name()
	// Append opens read-write without truncating and works on files opened
	// read-only by the application.
	wf, err := f.fs.Append(name)
	if err != nil {
		return fmt.Errorf("core: injector: latent corruption of %s: %w", name, err)
	}
	defer wf.Close()
	size, err := wf.Size()
	if err != nil {
		return err
	}
	if off >= size || off < 0 {
		// The target read starts at/after EOF: there are no at-rest bytes
		// under it. The shot is spent on a read that delivers no data —
		// record the no-op so the run still counts as injected.
		f.inj.record(Mutation{Model: LatentCorruption, Path: name, Offset: off, BitPos: -1, Latent: true})
		return nil
	}
	n := int64(length)
	if off+n > size {
		n = size - off
	}
	buf := make([]byte, n)
	if _, err := wf.ReadAt(buf, off); err != nil && err != io.EOF {
		return err
	}
	mutated, m := f.inj.flip(buf)
	if _, err := wf.WriteAt(mutated, off); err != nil {
		return err
	}
	m.Model = LatentCorruption
	m.Path = name
	m.Offset = off
	m.Latent = true
	f.inj.record(m)
	return nil
}

// Truncate intercepts the handle-level truncate primitive, hosting the same
// faults as the FS-level call so the claim count matches the profiler's.
func (f *injectorFile) Truncate(size int64) error {
	if size2, drop, ok := f.inj.applyTruncateFault(f.File.Name(), size); ok {
		if drop {
			return nil
		}
		size = size2
	}
	return f.File.Truncate(size)
}

// applyWriteFault produces the corrupted buffer for the armed model.
// skip reports that the write must be suppressed entirely (dropped write).
func (inj *Injector) applyWriteFault(file vfs.File, p []byte, off int64) (mutated []byte, skip bool, m Mutation) {
	switch inj.sig.Model {
	case BitFlip:
		mutated, m = inj.flip(p)
		m.Length = len(p)
		return mutated, false, m

	case DroppedWrite:
		return nil, true, Mutation{Model: DroppedWrite, Length: len(p), Dropped: true}

	case ShornWrite:
		return inj.applyShorn(file, p, off)

	default:
		return p, false, Mutation{Model: inj.sig.Model, Length: len(p)}
	}
}

// applyShorn builds the post-fault content of a shorn write. Sectors within
// the kept fraction of each 4 KiB block persist the new data; lost sectors
// retain whatever the device previously stored there. Where the file had no
// previous content (an append), the lost sectors surface stale data from the
// device's FTL — modelled as the new buffer shifted back one sector, which
// reproduces the paper's observation that shorn remnants are "within an
// order of magnitude difference from the original data".
func (inj *Injector) applyShorn(file vfs.File, p []byte, off int64) ([]byte, bool, Mutation) {
	f := inj.sig.Feature
	keep, droppedSectors := shornPlan(off, len(p), f)

	// Start from the stale view: previous file content where it exists...
	out := make([]byte, len(p))
	n, _ := file.ReadAt(out, off) // best-effort; short read leaves zeros
	if n < len(out) {
		// ...and FTL remnants beyond old EOF: the buffer lagged by one
		// sector, so lost sectors hold plausible same-magnitude data.
		for i := n; i < len(out); i++ {
			src := i - f.SectorSize
			if src < 0 {
				src = 0
			}
			out[i] = p[src]
		}
	}
	kept := 0
	for _, seg := range keep {
		kept += copy(out[seg.Start:seg.End], p[seg.Start:seg.End])
	}
	m := Mutation{Model: ShornWrite, Length: len(p), Kept: kept, Sectors: droppedSectors}
	return out, false, m
}

// String summarizes the mutation for logs.
func (m Mutation) String() string {
	switch m.Model {
	case BitFlip:
		if m.NewSize > 0 {
			return fmt.Sprintf("bit-flip %s truncate size %d -> %d bit=%d", m.Path, m.Offset, m.NewSize, m.BitPos)
		}
		return fmt.Sprintf("bit-flip %s off=%d len=%d bit=%d", m.Path, m.Offset, m.Length, m.BitPos)
	case ShornWrite:
		return fmt.Sprintf("shorn-write %s off=%d len=%d kept=%d lost-sectors=%d",
			m.Path, m.Offset, m.Length, m.Kept, m.Sectors)
	case DroppedWrite:
		return fmt.Sprintf("dropped-write %s off=%d len=%d", m.Path, m.Offset, m.Length)
	case ReadBitFlip:
		return fmt.Sprintf("read-bit-flip %s off=%d len=%d bit=%d (transient)", m.Path, m.Offset, m.Length, m.BitPos)
	case UnreadableSector:
		return fmt.Sprintf("unreadable-sector %s off=%d len=%d (EIO)", m.Path, m.Offset, m.Length)
	case LatentCorruption:
		return fmt.Sprintf("latent-corruption %s off=%d bit=%d (at rest)", m.Path, m.Offset, m.BitPos)
	default:
		return fmt.Sprintf("mutation(%d) %s", int(m.Model), m.Path)
	}
}

var (
	_ vfs.FS   = (*InjectorFS)(nil)
	_ vfs.File = (*injectorFile)(nil)
)
