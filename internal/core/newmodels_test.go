package core

import (
	"bytes"
	"strings"
	"testing"

	"ffis/internal/stats"
	"ffis/internal/vfs"
)

// Behavior tests for the two models that shipped as pure registrations:
// misdirected-write (MD) and short-read (SR).

func TestMisdirectedWriteLandsAtWrongSectorAlignedOffset(t *testing.T) {
	base := vfs.NewMemFS()
	inj := NewInjector(Config{Model: MisdirectedWrite}.Signature(), 0, stats.NewRNG(3))
	fs := inj.Wrap(base)

	payload := bytes.Repeat([]byte{0xEE}, 1024)
	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("misdirected write must report full success, got n=%d err=%v", n, err)
	}
	// The acknowledged offset advances past the requested range: the next
	// write lands where the application believes it will.
	tail := []byte("tail")
	if _, err := f.Write(tail); err != nil {
		t.Fatal(err)
	}
	f.Close()

	mut, fired := inj.Fired()
	if !fired || mut.Model != MisdirectedWrite {
		t.Fatalf("mutation = %+v fired=%v", mut, fired)
	}
	got, err := vfs.ReadFile(base, "/f")
	if err != nil {
		t.Fatal(err)
	}
	// The write began at offset 0, so the displacement must fall forward:
	// a sector-aligned hole of never-written zeros precedes the payload.
	idx := bytes.IndexByte(got, 0xEE)
	if idx <= 0 {
		t.Fatalf("payload not displaced (first 0xEE at %d)", idx)
	}
	if idx%512 != 0 {
		t.Fatalf("displacement %d is not sector-aligned", idx)
	}
	if !bytes.Equal(got[idx:idx+len(payload)], payload) {
		t.Fatal("payload corrupted at the misdirected location")
	}
	for i := 0; i < idx && i < len(payload); i++ {
		if got[i] != 0 && i >= len(tail) {
			t.Fatalf("requested range holds written data at %d; the device must not have honored the requested offset", i)
		}
	}
	// The follow-up write landed at the application's notion of offset
	// len(payload), proving the acknowledged offset advanced.
	if !bytes.Equal(got[len(payload):len(payload)+len(tail)], tail) {
		t.Fatalf("second write did not land at the acknowledged offset: %q", got[len(payload):len(payload)+len(tail)])
	}
	if !strings.Contains(mut.String(), "persisted at offset") {
		t.Fatalf("mutation line does not explain the misdirection: %s", mut)
	}
}

func TestMisdirectedWriteAtDisplacesBackward(t *testing.T) {
	base := vfs.NewMemFS()
	// Seed enough file for a backward displacement target to exist.
	if err := vfs.WriteFile(base, "/f", bytes.Repeat([]byte{0x01}, 16384)); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(Config{Model: MisdirectedWrite}.Signature(), 0, stats.NewRNG(3))
	fs := inj.Wrap(base)

	payload := bytes.Repeat([]byte{0xEE}, 512)
	const reqOff = 8192
	f, err := fs.Append("/f")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.WriteAt(payload, reqOff); err != nil || n != len(payload) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	f.Close()

	got, _ := vfs.ReadFile(base, "/f")
	if bytes.Contains(got[reqOff:reqOff+512], []byte{0xEE}) {
		t.Fatal("requested range was written; the fault must misdirect it")
	}
	idx := bytes.IndexByte(got, 0xEE)
	if idx < 0 {
		t.Fatal("payload vanished entirely")
	}
	if idx >= reqOff {
		t.Fatalf("displacement did not fall backward of the request: landed at %d", idx)
	}
	if (reqOff-int64(idx))%512 != 0 {
		t.Fatalf("misdirection distance %d not sector-aligned", reqOff-int64(idx))
	}
}

func TestShortReadDeliversStrictPrefixWithSuccess(t *testing.T) {
	base := vfs.NewMemFS()
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := vfs.WriteFile(base, "/f", payload); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(Config{Model: ShortRead}.Signature(), 0, stats.NewRNG(11))
	fs := inj.Wrap(base)

	f, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1024)
	n, err := f.Read(buf)
	if err != nil {
		t.Fatalf("short read must report success, got %v", err)
	}
	if n >= len(buf) {
		t.Fatalf("read delivered %d of %d bytes; must be strictly fewer", n, len(buf))
	}
	if !bytes.Equal(buf[:n], payload[:n]) {
		t.Fatal("delivered prefix corrupted; short-read must truncate, not mutate")
	}
	mut, fired := inj.Fired()
	if !fired || mut.Kept != n || mut.Length != len(buf) {
		t.Fatalf("mutation = %+v (n=%d)", mut, n)
	}
	// The handle advanced only past the delivered bytes, and the media is
	// unchanged: resuming the loop reads the remainder intact.
	rest := make([]byte, len(payload))
	m, _ := f.Read(rest)
	if !bytes.Equal(rest[:m], payload[n:n+m]) {
		t.Fatal("sequential offset did not account for the short delivery")
	}
	if got, _ := vfs.ReadFile(base, "/f"); !bytes.Equal(got, payload) {
		t.Fatal("short read altered the media")
	}
}

func TestShortReadAt(t *testing.T) {
	base := vfs.NewMemFS()
	payload := bytes.Repeat([]byte{0x42}, 2048)
	if err := vfs.WriteFile(base, "/f", payload); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(Config{Model: ShortRead}.Signature(), 0, stats.NewRNG(11))
	fs := inj.Wrap(base)
	f, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 512)
	n, err := f.ReadAt(buf, 1024)
	if err != nil || n >= len(buf) {
		t.Fatalf("ReadAt = %d, %v; want a successful strict prefix", n, err)
	}
	if !bytes.Equal(buf[:n], payload[1024:1024+n]) {
		t.Fatal("delivered bytes corrupted")
	}
}
