package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

func newReadInjector(model Model, target int64, seed uint64) *Injector {
	sig := Config{Model: model}.Signature()
	return NewInjector(sig, target, stats.NewRNG(seed))
}

// seedFile populates base with a known pattern and returns it.
func seedFile(t *testing.T, base vfs.FS, path string, pattern byte, size int) []byte {
	t.Helper()
	payload := bytes.Repeat([]byte{pattern}, size)
	if err := vfs.WriteFile(base, path, payload); err != nil {
		t.Fatal(err)
	}
	return payload
}

func TestReadModelDefaultsToReadPrimitive(t *testing.T) {
	for _, m := range ReadModels() {
		sig := Config{Model: m}.Signature()
		if sig.Primitive != vfs.PrimRead {
			t.Errorf("%s default primitive = %s, want read", m, sig.Primitive)
		}
		if err := sig.Validate(); err != nil {
			t.Errorf("%s default signature invalid: %v", m, err)
		}
	}
	// Write models still default to write.
	sig := Config{Model: BitFlip}.Signature()
	if sig.Primitive != vfs.PrimWrite {
		t.Errorf("BitFlip default primitive = %s", sig.Primitive)
	}
}

func TestReadBitFlipIsTransient(t *testing.T) {
	base := vfs.NewMemFS()
	payload := seedFile(t, base, "/f", 0xFF, 512)
	inj := newReadInjector(ReadBitFlip, 0, 3)
	fs := inj.Wrap(base)

	f, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	n, err := io.ReadFull(f, buf)
	if err != nil || n != 512 {
		t.Fatalf("read n=%d err=%v", n, err)
	}
	diffs := 0
	for i := range buf {
		diffs += popcount(buf[i] ^ 0xFF)
	}
	if diffs != 2 {
		t.Fatalf("flipped %d bits in the returned buffer, want 2", diffs)
	}
	mut, fired := inj.Fired()
	if !fired || mut.Model != ReadBitFlip || mut.Path != "/f" || mut.Length != 512 {
		t.Fatalf("mutation: %+v fired=%v", mut, fired)
	}
	f.Close()

	// Transience: the media is unchanged — a re-read through the armed
	// stack (injector is single-shot) and through base is byte-identical.
	for _, view := range []vfs.FS{fs, base} {
		got, err := vfs.ReadFile(view, "/f")
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("media changed by a transient read fault (err=%v)", err)
		}
	}
}

func TestReadBitFlipOnReadAt(t *testing.T) {
	base := vfs.NewMemFS()
	seedFile(t, base, "/f", 0x00, 256)
	inj := newReadInjector(ReadBitFlip, 0, 5)
	fs := inj.Wrap(base)
	f, _ := fs.Open("/f")
	buf := make([]byte, 128)
	if _, err := f.ReadAt(buf, 64); err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for _, b := range buf {
		diffs += popcount(b)
	}
	if diffs != 2 {
		t.Fatalf("ReadAt flip count = %d", diffs)
	}
	mut, _ := inj.Fired()
	if mut.Offset != 64 || mut.Length != 128 {
		t.Fatalf("mutation: %+v", mut)
	}
}

func TestUnreadableSectorFailsExactlyOneRead(t *testing.T) {
	base := vfs.NewMemFS()
	// Varied content, so a silently advanced offset delivers visibly wrong
	// bytes instead of more of the same pattern.
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i / 256) // per-chunk value 0,1,2,3
	}
	if err := vfs.WriteFile(base, "/f", payload); err != nil {
		t.Fatal(err)
	}
	inj := newReadInjector(UnreadableSector, 1, 7) // fail the 2nd read
	fs := inj.Wrap(base)

	f, _ := fs.Open("/f")
	buf := make([]byte, 256)
	if _, err := f.Read(buf); err != nil {
		t.Fatalf("1st read must pass: %v", err)
	}
	_, err := f.Read(buf)
	if !errors.Is(err, vfs.ErrUnreadable) {
		t.Fatalf("2nd read err = %v, want vfs.ErrUnreadable", err)
	}
	// The failed read must not advance the sequential offset: the device
	// delivered nothing.
	if _, err := f.Read(buf); err != nil {
		t.Fatalf("3rd read must pass (single-shot): %v", err)
	}
	if !bytes.Equal(buf, payload[256:512]) {
		t.Fatal("failed read advanced the offset or corrupted data")
	}
	mut, fired := inj.Fired()
	if !fired || !mut.Unreadable || mut.Model != UnreadableSector {
		t.Fatalf("mutation: %+v fired=%v", mut, fired)
	}
	f.Close()
	if got, _ := vfs.ReadFile(base, "/f"); !bytes.Equal(got, payload) {
		t.Fatal("unreadable sector altered the media")
	}
}

func TestLatentCorruptionPersistsAtRest(t *testing.T) {
	base := vfs.NewMemFS()
	payload := seedFile(t, base, "/f", 0xAA, 512)
	inj := newReadInjector(LatentCorruption, 0, 11)
	fs := inj.Wrap(base)

	f, _ := fs.Open("/f")
	buf := make([]byte, 512)
	if _, err := io.ReadFull(f, buf); err != nil {
		t.Fatal(err)
	}
	f.Close()
	diffs := func(got []byte) int {
		n := 0
		for i := range got {
			n += popcount(got[i] ^ payload[i])
		}
		return n
	}
	if diffs(buf) != 2 {
		t.Fatalf("target read saw %d flipped bits, want 2", diffs(buf))
	}
	// Durability: the same corruption is visible at rest, to every later
	// reader, through the clean view.
	atRest, err := vfs.ReadFile(base, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if diffs(atRest) != 2 {
		t.Fatalf("at-rest bytes have %d flipped bits, want 2", diffs(atRest))
	}
	if !bytes.Equal(atRest, buf) {
		t.Fatal("the target read and the at-rest state disagree")
	}
	mut, fired := inj.Fired()
	if !fired || !mut.Latent || mut.Model != LatentCorruption {
		t.Fatalf("mutation: %+v fired=%v", mut, fired)
	}
}

func TestLatentCorruptionThroughReadOnlyHandle(t *testing.T) {
	// The application's handle is read-only (Open); the injector must still
	// be able to mutate the at-rest bytes via its own side handle.
	base := vfs.NewMemFS()
	payload := seedFile(t, base, "/f", 0x33, 64)
	inj := newReadInjector(LatentCorruption, 0, 13)
	fs := inj.Wrap(base)
	f, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if bytes.Equal(buf, payload) {
		t.Fatal("latent corruption never landed")
	}
}

func TestLatentCorruptionAtEOFBurnsShotHarmlessly(t *testing.T) {
	base := vfs.NewMemFS()
	payload := seedFile(t, base, "/f", 0x11, 32)
	inj := newReadInjector(LatentCorruption, 0, 17)
	fs := inj.Wrap(base)
	f, _ := fs.Open("/f")
	buf := make([]byte, 16)
	if _, err := f.ReadAt(buf, 1000); err != io.EOF {
		t.Fatalf("EOF read err = %v", err)
	}
	f.Close()
	mut, fired := inj.Fired()
	if !fired || mut.BitPos != -1 {
		t.Fatalf("EOF latent shot: %+v fired=%v", mut, fired)
	}
	if got, _ := vfs.ReadFile(base, "/f"); !bytes.Equal(got, payload) {
		t.Fatal("EOF latent shot altered the media")
	}
}

func TestReadFaultsUntouchedWhenTargetingWrite(t *testing.T) {
	// A write-targeted signature must leave every read alone, and vice
	// versa: a read-targeted signature must leave writes alone.
	base := vfs.NewMemFS()
	payload := seedFile(t, base, "/f", 0x42, 256)
	inj := newWriteInjector(BitFlip, 0, 19)
	fs := inj.Wrap(base)
	got, err := vfs.ReadFile(fs, "/f")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatal("write-targeted injector corrupted a read")
	}

	inj2 := newReadInjector(ReadBitFlip, 0, 19)
	fs2 := inj2.Wrap(vfs.NewMemFS())
	if err := vfs.WriteFile(fs2, "/g", payload); err != nil {
		t.Fatal(err)
	}
	if _, fired := inj2.Fired(); fired {
		t.Fatal("read-targeted injector fired on a write")
	}
}

// TestDisarmedReadPathTransparency is the R1 check for the read path: a
// Disarmed injector must be byte-identical for Read, ReadAt, and Open on
// both a flat MemFS and a mounted MountFS world.
func TestDisarmedReadPathTransparency(t *testing.T) {
	worlds := map[string]func() vfs.FS{
		"memfs": func() vfs.FS { return vfs.NewMemFS() },
		"mountfs": func() vfs.FS {
			m := vfs.NewMountFS(vfs.NewMemFS())
			if err := m.Mount("/data", vfs.NewMemFS()); err != nil {
				t.Fatal(err)
			}
			return m
		},
	}
	for name, build := range worlds {
		for _, model := range ReadModels() {
			t.Run(name+"/"+model.Short(), func(t *testing.T) {
				base := build()
				if err := base.MkdirAll("/data"); err != nil {
					t.Fatal(err)
				}
				payload := seedFile(t, base, "/data/f", 0x99, 4096)
				fs := Disarmed(Config{Model: model}.Signature()).Wrap(base)

				// Open + sequential Read.
				f, err := fs.Open("/data/f")
				if err != nil {
					t.Fatal(err)
				}
				got := make([]byte, len(payload))
				if _, err := io.ReadFull(f, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatal("disarmed Read differs from the media")
				}
				// Positional ReadAt with an odd range.
				part := make([]byte, 777)
				if _, err := f.ReadAt(part, 1234); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(part, payload[1234:1234+777]) {
					t.Fatal("disarmed ReadAt differs from the media")
				}
				f.Close()
				// The media itself is untouched.
				if atRest, _ := vfs.ReadFile(base, "/data/f"); !bytes.Equal(atRest, payload) {
					t.Fatal("disarmed wrap altered the media")
				}
			})
		}
	}
}

// readWorkload is a producer→consumer toy: Run writes a record file and
// then reads it back, persisting a checksum — so read-targeted campaigns
// have instances to land on and a consumer artifact to classify.
func readWorkload() Workload {
	golden := bytes.Repeat([]byte{0xC3}, 2048)
	return Workload{
		Name:  "read-toy",
		Setup: func(fs vfs.FS) error { return fs.MkdirAll("/out") },
		Run: func(fs vfs.FS) error {
			if err := vfs.WriteFile(fs, "/out/data.bin", golden); err != nil {
				return err
			}
			f, err := fs.Open("/out/data.bin")
			if err != nil {
				return err
			}
			defer f.Close()
			sum := 0
			buf := make([]byte, 256)
			for {
				n, err := f.Read(buf)
				for _, b := range buf[:n] {
					sum += int(b)
				}
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
			}
			return vfs.WriteFile(fs, "/out/sum.txt", []byte(fmt.Sprintf("%d", sum)))
		},
		Classify: func(fs vfs.FS, runErr error) classify.Outcome {
			if runErr != nil {
				return classify.Crash
			}
			sum, err := vfs.ReadFile(fs, "/out/sum.txt")
			if err != nil {
				return classify.Crash
			}
			if string(sum) == fmt.Sprintf("%d", 2048*0xC3) {
				return classify.Benign
			}
			return classify.SDC
		},
	}
}

// TestReadModelCampaignDeterminism is the read-path determinism check: for
// every read model, workers 1 vs 8 and COW vs fresh worlds must produce
// identical tallies and per-run mutation records.
func TestReadModelCampaignDeterminism(t *testing.T) {
	for _, model := range ReadModels() {
		model := model
		t.Run(model.Short(), func(t *testing.T) {
			run := func(workers int, fresh bool) CampaignResult {
				res, err := Campaign(CampaignConfig{
					Fault:       Config{Model: model},
					Runs:        24,
					Seed:        777,
					Workers:     workers,
					FreshWorlds: fresh,
				}, readWorkload())
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial := run(1, false)
			parallel := run(8, false)
			requireSameResult(t, "workers 1 vs 8", serial, parallel)
			rebuilt := run(8, true)
			requireSameResult(t, "COW vs fresh worlds", serial, rebuilt)
			// A read campaign must actually reach the read path.
			firedOnRead := 0
			for _, rec := range serial.Records {
				if rec.Fired && rec.Mutation.Model == model {
					firedOnRead++
				}
			}
			if firedOnRead == 0 {
				t.Fatal("no run ever fired a read fault")
			}
		})
	}
}

// TestReadModelCampaignOutcomes sanity-checks the taxonomy end to end: an
// unreadable-sector campaign on the read toy must produce crashes (the
// consumer dies on EIO), and a latent campaign must produce SDC or benign
// (sum unchanged if the flips cancel — impossible here, so SDC).
func TestReadModelCampaignOutcomes(t *testing.T) {
	res, err := Campaign(CampaignConfig{
		Fault: Config{Model: UnreadableSector},
		Runs:  8,
		Seed:  5,
	}, readWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tally.Count(classify.Crash); got != 8 {
		t.Fatalf("unreadable campaign crashes = %d/8\n%+v", got, res.Tally)
	}
	res, err = Campaign(CampaignConfig{
		Fault: Config{Model: LatentCorruption},
		Runs:  8,
		Seed:  5,
	}, readWorkload())
	if err != nil {
		t.Fatal(err)
	}
	// A shot can land on the consumer's EOF-probe read (no at-rest bytes
	// under it) and stay benign; every shot that lands on data must be SDC.
	sdc, benign := res.Tally.Count(classify.SDC), res.Tally.Count(classify.Benign)
	if sdc+benign != 8 || sdc < 6 {
		t.Fatalf("latent campaign tally: %+v (want only SDC/benign, SDC majority)", res.Tally)
	}
}

// TestArmMountsReadIsolation mirrors TestArmMountsIsolation for the read
// path: a latent-corruption campaign armed on one mount must mutate at-rest
// state only inside that mount.
func TestArmMountsReadIsolation(t *testing.T) {
	w := Workload{
		Name: "tiered-read-toy",
		NewFS: func() (vfs.FS, error) {
			m := vfs.NewMountFS(vfs.NewMemFS())
			for _, dir := range []string{"/input", "/scratch"} {
				if err := m.Mount(dir, vfs.NewMemFS()); err != nil {
					return nil, err
				}
			}
			return m, nil
		},
		Setup: func(fs vfs.FS) error {
			if err := vfs.WriteFile(fs, "/input/a.dat", bytes.Repeat([]byte{1}, 128)); err != nil {
				return err
			}
			return vfs.WriteFile(fs, "/scratch/b.dat", bytes.Repeat([]byte{2}, 128))
		},
		Run: func(fs vfs.FS) error {
			if _, err := vfs.ReadFile(fs, "/input/a.dat"); err != nil {
				return err
			}
			_, err := vfs.ReadFile(fs, "/scratch/b.dat")
			return err
		},
	}
	sig := Config{Model: LatentCorruption}.Signature()
	count, err := ProfileMounts(w, sig, []string{"/scratch"})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("no reads routed to the armed mount")
	}
	for target := int64(0); target < count; target++ {
		rec, err := RunOnceMounts(w, sig, target, stats.NewRNG(23), []string{"/scratch"})
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Fired {
			t.Fatalf("target %d never fired", target)
		}
		if !strings.HasPrefix(rec.Mutation.Path, "/scratch/") {
			t.Fatalf("latent corruption landed on %q, outside the armed mount", rec.Mutation.Path)
		}
	}
}
