package core

import (
	"fmt"

	"ffis/internal/vfs"
)

// BurstCorruption mangles k adjacent sectors of one write in a single event
// — the spatially correlated corruption pattern device studies report from
// voltage droops and program disturbs, where damage clusters on
// neighbouring cells instead of striking one random bit. One event, one
// shot: the correlation is spatial (across sectors of the claimed buffer),
// not temporal, so the model stays single-shot and its claim sequence is
// identical to the classic injector's.
var BurstCorruption = Register(burstCorruptionModel{}, "burst")

type burstCorruptionModel struct{ BaseModel }

func (burstCorruptionModel) Name() string  { return "burst-corruption" }
func (burstCorruptionModel) Short() string { return "BC" }

func (burstCorruptionModel) Hosts() []vfs.Primitive {
	return []vfs.Primitive{vfs.PrimWrite}
}

func (burstCorruptionModel) Describe() string {
	return "one event flips bits in k adjacent sectors of the buffer (feature: burst sectors, default 4)"
}

// burstSectors resolves the feature tunable; the default lives here rather
// than in Feature.normalize so legacy signatures stay bit-identical.
func burstSectors(f Feature) int {
	if f.BurstSectors > 0 {
		return f.BurstSectors
	}
	return 4
}

// MutateWrite flips FlipBits consecutive bits in each of k adjacent sectors
// of the claimed buffer, starting at a uniformly drawn sector. The burst is
// clamped to the buffer: a write shorter than k sectors is corrupted to its
// end, matching a burst that runs off the victim's range.
func (bc burstCorruptionModel) MutateWrite(env Env, op WriteOp) WriteAction {
	f := env.Feature()
	sec := f.SectorSize
	out := append([]byte(nil), op.Buf...)
	nsec := (len(out) + sec - 1) / sec
	start := env.Intn(nsec)
	k := burstSectors(f)
	if start+k > nsec {
		k = nsec - start
	}
	firstBit := -1
	for i := 0; i < k; i++ {
		lo := (start + i) * sec
		hi := lo + sec
		if hi > len(out) {
			hi = len(out)
		}
		seg, m := env.Flip(out[lo:hi])
		copy(out[lo:hi], seg)
		if firstBit < 0 && m.BitPos >= 0 {
			firstBit = lo*8 + m.BitPos
		}
	}
	env.Record(Mutation{
		Model: bc, Path: op.Path, Offset: op.Off, Length: len(op.Buf),
		BitPos: firstBit, Sectors: k,
		Detail: fmt.Sprintf("burst over %d adjacent sectors from sector %d", k, start),
	})
	return WriteAction{Buf: out}
}

func (burstCorruptionModel) RenderMutation(m Mutation) string {
	return fmt.Sprintf("burst-corruption %s off=%d len=%d %s (first bit %d)",
		m.Path, m.Offset, m.Length, m.Detail, m.BitPos)
}
