package core

import (
	"bytes"
	"testing"

	"ffis/internal/stats"
	"ffis/internal/vfs"
)

func newWriteInjector(model FaultModel, target int64, seed uint64) *Injector {
	sig := Config{Model: model}.Signature()
	return NewInjector(sig, target, stats.NewRNG(seed))
}

func TestDisarmedInjectorIsTransparent(t *testing.T) {
	base := vfs.NewMemFS()
	fs := Disarmed(Config{Model: BitFlip}.Signature()).Wrap(base)
	payload := bytes.Repeat([]byte{0x5A}, 8192)
	if err := vfs.WriteFile(fs, "/f", payload); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(base, "/f")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatal("disarmed injector altered data")
	}
}

func TestBitFlipCorruptsExactlyOneWrite(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(BitFlip, 1, 7) // corrupt the 2nd write
	fs := inj.Wrap(base)

	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte{0xFF}, 256)
	for i := 0; i < 4; i++ {
		if _, err := f.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	got, _ := vfs.ReadFile(base, "/f")
	if len(got) != 1024 {
		t.Fatalf("size = %d", len(got))
	}
	diffs := 0
	region := -1
	for i, b := range got {
		if b != 0xFF {
			diffs += popcount(b ^ 0xFF)
			region = i / 256
		}
	}
	if diffs != 2 {
		t.Fatalf("flipped %d bits total, want 2", diffs)
	}
	if region != 1 {
		t.Fatalf("corruption landed in write %d, want write 1", region)
	}
	mut, fired := inj.Fired()
	if !fired || mut.Model != BitFlip || mut.Path != "/f" {
		t.Fatalf("mutation record: %+v fired=%v", mut, fired)
	}
	if inj.Count() != 4 {
		t.Fatalf("counted %d writes, want 4", inj.Count())
	}
}

func TestBitFlipOnWriteAt(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(BitFlip, 0, 3)
	fs := inj.Wrap(base)
	f, _ := fs.Create("/f")
	orig := bytes.Repeat([]byte{0x00}, 512)
	if _, err := f.WriteAt(orig, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, _ := vfs.ReadFile(base, "/f")
	diffs := 0
	for _, b := range got {
		diffs += popcount(b)
	}
	if diffs != 2 {
		t.Fatalf("WriteAt flip count = %d", diffs)
	}
	mut, _ := inj.Fired()
	if mut.Offset != 0 || mut.Length != 512 {
		t.Fatalf("mutation: %+v", mut)
	}
}

func TestDroppedWriteLeavesHole(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(DroppedWrite, 1, 5)
	fs := inj.Wrap(base)
	f, _ := fs.Create("/f")
	for i := 0; i < 3; i++ {
		chunk := bytes.Repeat([]byte{byte('A' + i)}, 100)
		n, err := f.Write(chunk)
		if err != nil || n != 100 {
			t.Fatalf("write %d: n=%d err=%v (dropped write must still report success)", i, n, err)
		}
	}
	f.Close()
	got, _ := vfs.ReadFile(base, "/f")
	if len(got) != 300 {
		t.Fatalf("file size = %d, want 300 (offset must advance)", len(got))
	}
	if got[0] != 'A' || got[250] != 'C' {
		t.Fatalf("neighbouring writes corrupted: %q %q", got[0], got[250])
	}
	for i := 100; i < 200; i++ {
		if got[i] != 0 {
			t.Fatalf("dropped region has data at %d: %v", i, got[i])
		}
	}
}

func TestDroppedWriteAtReportsSuccess(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(DroppedWrite, 0, 5)
	fs := inj.Wrap(base)
	f, _ := fs.Create("/f")
	n, err := f.WriteAt(bytes.Repeat([]byte{1}, 64), 0)
	if err != nil || n != 64 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	f.Close()
	if size, _ := base.Stat("/f"); size.Size != 0 {
		t.Fatalf("dropped WriteAt persisted %d bytes", size.Size)
	}
}

func TestShornWriteKeepsLeadingFraction(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(ShornWrite, 0, 11)
	fs := inj.Wrap(base)
	f, _ := fs.Create("/f")
	buf := bytes.Repeat([]byte{0xAB}, 4096)
	n, err := f.Write(buf)
	if err != nil || n != 4096 {
		t.Fatalf("n=%d err=%v (shorn write must report full size)", n, err)
	}
	f.Close()
	got, _ := vfs.ReadFile(base, "/f")
	if len(got) != 4096 {
		t.Fatalf("size = %d, want 4096", len(got))
	}
	for i := 0; i < 3584; i++ {
		if got[i] != 0xAB {
			t.Fatalf("kept region corrupted at %d", i)
		}
	}
	// Lost tail: stale FTL data, here the buffer lagged by one sector —
	// same value in this uniform buffer, but the mutation must be recorded.
	mut, fired := inj.Fired()
	if !fired || mut.Model != ShornWrite {
		t.Fatal("shorn mutation not recorded")
	}
	if mut.Kept != 3584 || mut.Sectors != 1 {
		t.Fatalf("mutation: %+v", mut)
	}
}

func TestShornWritePreservesOldContentInLostRegion(t *testing.T) {
	base := vfs.NewMemFS()
	// Prepopulate the file so the lost tail has stale content to retain.
	old := bytes.Repeat([]byte{0x11}, 4096)
	if err := vfs.WriteFile(base, "/f", old); err != nil {
		t.Fatal(err)
	}
	inj := newWriteInjector(ShornWrite, 0, 13)
	fs := inj.Wrap(base)
	f, err := fs.Append("/f")
	if err != nil {
		t.Fatal(err)
	}
	newData := bytes.Repeat([]byte{0x22}, 4096)
	if _, err := f.WriteAt(newData, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, _ := vfs.ReadFile(base, "/f")
	for i := 0; i < 3584; i++ {
		if got[i] != 0x22 {
			t.Fatalf("kept region wrong at %d: %x", i, got[i])
		}
	}
	for i := 3584; i < 4096; i++ {
		if got[i] != 0x11 {
			t.Fatalf("lost region should retain stale 0x11 at %d, got %x", i, got[i])
		}
	}
}

func TestShornWriteThreeEighthsFeature(t *testing.T) {
	base := vfs.NewMemFS()
	sig := Config{Model: ShornWrite, Feature: Feature{ShornKeepNum: 3, ShornKeepDen: 8}}.Signature()
	inj := NewInjector(sig, 0, stats.NewRNG(17))
	fs := inj.Wrap(base)
	f, _ := fs.Create("/f")
	f.Write(bytes.Repeat([]byte{0xCD}, 4096))
	f.Close()
	mut, _ := inj.Fired()
	if mut.Kept != 1536 {
		t.Fatalf("kept = %d, want 1536 (3/8 of 4096)", mut.Kept)
	}
	if mut.Sectors != 5 {
		t.Fatalf("sectors = %d, want 5", mut.Sectors)
	}
}

func TestInjectorFiresOnlyOnce(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(BitFlip, 0, 19)
	fs := inj.Wrap(base)
	f, _ := fs.Create("/f")
	f.Write(bytes.Repeat([]byte{0}, 64)) // target: corrupted
	f.Write(bytes.Repeat([]byte{0}, 64)) // must pass through clean
	f.Close()
	got, _ := vfs.ReadFile(base, "/f")
	diffs := 0
	for _, b := range got[64:] {
		diffs += popcount(b)
	}
	if diffs != 0 {
		t.Fatal("second write was corrupted; injector must be single-shot")
	}
}

func TestInjectorTargetBeyondCountNeverFires(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(BitFlip, 1000, 23)
	fs := inj.Wrap(base)
	vfs.WriteFile(fs, "/f", []byte("clean"))
	if _, fired := inj.Fired(); fired {
		t.Fatal("injector fired past its target")
	}
	got, _ := vfs.ReadFile(base, "/f")
	if string(got) != "clean" {
		t.Fatal("data corrupted without firing")
	}
}

func TestMknodFaultHosting(t *testing.T) {
	base := vfs.NewMemFS()
	sig := Config{Model: DroppedWrite, Primitive: vfs.PrimMknod}.Signature()
	inj := NewInjector(sig, 0, stats.NewRNG(29))
	fs := inj.Wrap(base)
	if err := fs.Mknod("/dev0", 0o600, 7); err != nil {
		t.Fatalf("dropped mknod must report success: %v", err)
	}
	if vfs.Exists(base, "/dev0") {
		t.Fatal("dropped mknod still created the node")
	}
	// Next mknod goes through.
	if err := fs.Mknod("/dev1", 0o600, 7); err != nil {
		t.Fatal(err)
	}
	if !vfs.Exists(base, "/dev1") {
		t.Fatal("subsequent mknod suppressed")
	}
}

func TestChmodFaultHosting(t *testing.T) {
	base := vfs.NewMemFS()
	vfs.WriteFile(base, "/f", []byte("x"))
	sig := Config{Model: BitFlip, Primitive: vfs.PrimChmod}.Signature()
	inj := NewInjector(sig, 0, stats.NewRNG(31))
	fs := inj.Wrap(base)
	if err := fs.Chmod("/f", 0o644); err != nil {
		t.Fatal(err)
	}
	info, _ := base.Stat("/f")
	if info.Mode == 0o644 {
		t.Fatal("chmod bit-flip did not alter the mode")
	}
	mut, fired := inj.Fired()
	if !fired || mut.Path != "/f" {
		t.Fatalf("mutation: %+v", mut)
	}
}

func TestWritePrimitiveUntouchedWhenTargetingMknod(t *testing.T) {
	base := vfs.NewMemFS()
	sig := Config{Model: BitFlip, Primitive: vfs.PrimMknod}.Signature()
	inj := NewInjector(sig, 0, stats.NewRNG(37))
	fs := inj.Wrap(base)
	payload := bytes.Repeat([]byte{0x77}, 1024)
	vfs.WriteFile(fs, "/f", payload)
	got, _ := vfs.ReadFile(base, "/f")
	if !bytes.Equal(got, payload) {
		t.Fatal("write corrupted although signature targets mknod")
	}
}

func TestMutationString(t *testing.T) {
	for _, m := range []Mutation{
		{Model: BitFlip, Path: "/f", BitPos: 3},
		{Model: ShornWrite, Path: "/f", Kept: 10},
		{Model: DroppedWrite, Path: "/f"},
	} {
		if m.String() == "" {
			t.Errorf("empty string for %+v", m)
		}
	}
}
