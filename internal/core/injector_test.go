package core

import (
	"bytes"
	"errors"
	"testing"

	"ffis/internal/classify"
	"ffis/internal/stats"
	"ffis/internal/vfs"
)

func newWriteInjector(model Model, target int64, seed uint64) *Injector {
	sig := Config{Model: model}.Signature()
	return NewInjector(sig, target, stats.NewRNG(seed))
}

func TestDisarmedInjectorIsTransparent(t *testing.T) {
	base := vfs.NewMemFS()
	fs := Disarmed(Config{Model: BitFlip}.Signature()).Wrap(base)
	payload := bytes.Repeat([]byte{0x5A}, 8192)
	if err := vfs.WriteFile(fs, "/f", payload); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(base, "/f")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatal("disarmed injector altered data")
	}
}

func TestBitFlipCorruptsExactlyOneWrite(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(BitFlip, 1, 7) // corrupt the 2nd write
	fs := inj.Wrap(base)

	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte{0xFF}, 256)
	for i := 0; i < 4; i++ {
		if _, err := f.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	got, _ := vfs.ReadFile(base, "/f")
	if len(got) != 1024 {
		t.Fatalf("size = %d", len(got))
	}
	diffs := 0
	region := -1
	for i, b := range got {
		if b != 0xFF {
			diffs += popcount(b ^ 0xFF)
			region = i / 256
		}
	}
	if diffs != 2 {
		t.Fatalf("flipped %d bits total, want 2", diffs)
	}
	if region != 1 {
		t.Fatalf("corruption landed in write %d, want write 1", region)
	}
	mut, fired := inj.Fired()
	if !fired || mut.Model != BitFlip || mut.Path != "/f" {
		t.Fatalf("mutation record: %+v fired=%v", mut, fired)
	}
	if inj.Count() != 4 {
		t.Fatalf("counted %d writes, want 4", inj.Count())
	}
}

func TestBitFlipOnWriteAt(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(BitFlip, 0, 3)
	fs := inj.Wrap(base)
	f, _ := fs.Create("/f")
	orig := bytes.Repeat([]byte{0x00}, 512)
	if _, err := f.WriteAt(orig, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, _ := vfs.ReadFile(base, "/f")
	diffs := 0
	for _, b := range got {
		diffs += popcount(b)
	}
	if diffs != 2 {
		t.Fatalf("WriteAt flip count = %d", diffs)
	}
	mut, _ := inj.Fired()
	if mut.Offset != 0 || mut.Length != 512 {
		t.Fatalf("mutation: %+v", mut)
	}
}

func TestDroppedWriteLeavesHole(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(DroppedWrite, 1, 5)
	fs := inj.Wrap(base)
	f, _ := fs.Create("/f")
	for i := 0; i < 3; i++ {
		chunk := bytes.Repeat([]byte{byte('A' + i)}, 100)
		n, err := f.Write(chunk)
		if err != nil || n != 100 {
			t.Fatalf("write %d: n=%d err=%v (dropped write must still report success)", i, n, err)
		}
	}
	f.Close()
	got, _ := vfs.ReadFile(base, "/f")
	if len(got) != 300 {
		t.Fatalf("file size = %d, want 300 (offset must advance)", len(got))
	}
	if got[0] != 'A' || got[250] != 'C' {
		t.Fatalf("neighbouring writes corrupted: %q %q", got[0], got[250])
	}
	for i := 100; i < 200; i++ {
		if got[i] != 0 {
			t.Fatalf("dropped region has data at %d: %v", i, got[i])
		}
	}
}

func TestDroppedWriteAtReportsSuccess(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(DroppedWrite, 0, 5)
	fs := inj.Wrap(base)
	f, _ := fs.Create("/f")
	n, err := f.WriteAt(bytes.Repeat([]byte{1}, 64), 0)
	if err != nil || n != 64 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	f.Close()
	if size, _ := base.Stat("/f"); size.Size != 0 {
		t.Fatalf("dropped WriteAt persisted %d bytes", size.Size)
	}
}

func TestShornWriteKeepsLeadingFraction(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(ShornWrite, 0, 11)
	fs := inj.Wrap(base)
	f, _ := fs.Create("/f")
	buf := bytes.Repeat([]byte{0xAB}, 4096)
	n, err := f.Write(buf)
	if err != nil || n != 4096 {
		t.Fatalf("n=%d err=%v (shorn write must report full size)", n, err)
	}
	f.Close()
	got, _ := vfs.ReadFile(base, "/f")
	if len(got) != 4096 {
		t.Fatalf("size = %d, want 4096", len(got))
	}
	for i := 0; i < 3584; i++ {
		if got[i] != 0xAB {
			t.Fatalf("kept region corrupted at %d", i)
		}
	}
	// Lost tail: stale FTL data, here the buffer lagged by one sector —
	// same value in this uniform buffer, but the mutation must be recorded.
	mut, fired := inj.Fired()
	if !fired || mut.Model != ShornWrite {
		t.Fatal("shorn mutation not recorded")
	}
	if mut.Kept != 3584 || mut.Sectors != 1 {
		t.Fatalf("mutation: %+v", mut)
	}
}

func TestShornWritePreservesOldContentInLostRegion(t *testing.T) {
	base := vfs.NewMemFS()
	// Prepopulate the file so the lost tail has stale content to retain.
	old := bytes.Repeat([]byte{0x11}, 4096)
	if err := vfs.WriteFile(base, "/f", old); err != nil {
		t.Fatal(err)
	}
	inj := newWriteInjector(ShornWrite, 0, 13)
	fs := inj.Wrap(base)
	f, err := fs.Append("/f")
	if err != nil {
		t.Fatal(err)
	}
	newData := bytes.Repeat([]byte{0x22}, 4096)
	if _, err := f.WriteAt(newData, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, _ := vfs.ReadFile(base, "/f")
	for i := 0; i < 3584; i++ {
		if got[i] != 0x22 {
			t.Fatalf("kept region wrong at %d: %x", i, got[i])
		}
	}
	for i := 3584; i < 4096; i++ {
		if got[i] != 0x11 {
			t.Fatalf("lost region should retain stale 0x11 at %d, got %x", i, got[i])
		}
	}
}

func TestShornWriteThreeEighthsFeature(t *testing.T) {
	base := vfs.NewMemFS()
	sig := Config{Model: ShornWrite, Feature: Feature{ShornKeepNum: 3, ShornKeepDen: 8}}.Signature()
	inj := NewInjector(sig, 0, stats.NewRNG(17))
	fs := inj.Wrap(base)
	f, _ := fs.Create("/f")
	f.Write(bytes.Repeat([]byte{0xCD}, 4096))
	f.Close()
	mut, _ := inj.Fired()
	if mut.Kept != 1536 {
		t.Fatalf("kept = %d, want 1536 (3/8 of 4096)", mut.Kept)
	}
	if mut.Sectors != 5 {
		t.Fatalf("sectors = %d, want 5", mut.Sectors)
	}
}

func TestInjectorFiresOnlyOnce(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(BitFlip, 0, 19)
	fs := inj.Wrap(base)
	f, _ := fs.Create("/f")
	f.Write(bytes.Repeat([]byte{0}, 64)) // target: corrupted
	f.Write(bytes.Repeat([]byte{0}, 64)) // must pass through clean
	f.Close()
	got, _ := vfs.ReadFile(base, "/f")
	diffs := 0
	for _, b := range got[64:] {
		diffs += popcount(b)
	}
	if diffs != 0 {
		t.Fatal("second write was corrupted; injector must be single-shot")
	}
}

func TestInjectorTargetBeyondCountNeverFires(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(BitFlip, 1000, 23)
	fs := inj.Wrap(base)
	vfs.WriteFile(fs, "/f", []byte("clean"))
	if _, fired := inj.Fired(); fired {
		t.Fatal("injector fired past its target")
	}
	got, _ := vfs.ReadFile(base, "/f")
	if string(got) != "clean" {
		t.Fatal("data corrupted without firing")
	}
}

func TestMknodFaultHosting(t *testing.T) {
	base := vfs.NewMemFS()
	sig := Config{Model: DroppedWrite, Primitive: vfs.PrimMknod}.Signature()
	inj := NewInjector(sig, 0, stats.NewRNG(29))
	fs := inj.Wrap(base)
	if err := fs.Mknod("/dev0", 0o600, 7); err != nil {
		t.Fatalf("dropped mknod must report success: %v", err)
	}
	if vfs.Exists(base, "/dev0") {
		t.Fatal("dropped mknod still created the node")
	}
	// Next mknod goes through.
	if err := fs.Mknod("/dev1", 0o600, 7); err != nil {
		t.Fatal(err)
	}
	if !vfs.Exists(base, "/dev1") {
		t.Fatal("subsequent mknod suppressed")
	}
}

func TestChmodFaultHosting(t *testing.T) {
	base := vfs.NewMemFS()
	vfs.WriteFile(base, "/f", []byte("x"))
	sig := Config{Model: BitFlip, Primitive: vfs.PrimChmod}.Signature()
	inj := NewInjector(sig, 0, stats.NewRNG(31))
	fs := inj.Wrap(base)
	if err := fs.Chmod("/f", 0o644); err != nil {
		t.Fatal(err)
	}
	info, _ := base.Stat("/f")
	if info.Mode == 0o644 {
		t.Fatal("chmod bit-flip did not alter the mode")
	}
	mut, fired := inj.Fired()
	if !fired || mut.Path != "/f" {
		t.Fatalf("mutation: %+v", mut)
	}
}

func TestWritePrimitiveUntouchedWhenTargetingMknod(t *testing.T) {
	base := vfs.NewMemFS()
	sig := Config{Model: BitFlip, Primitive: vfs.PrimMknod}.Signature()
	inj := NewInjector(sig, 0, stats.NewRNG(37))
	fs := inj.Wrap(base)
	payload := bytes.Repeat([]byte{0x77}, 1024)
	vfs.WriteFile(fs, "/f", payload)
	got, _ := vfs.ReadFile(base, "/f")
	if !bytes.Equal(got, payload) {
		t.Fatal("write corrupted although signature targets mknod")
	}
}

// TestTruncateFaultHosting is the regression test for the truncate
// dead-primitive hole: a truncate-targeted signature used to profile a
// nonzero count while the injector passed every truncate through, so whole
// campaigns silently tallied 100% benign.
func TestTruncateFaultHosting(t *testing.T) {
	t.Run("dropped-fs-level", func(t *testing.T) {
		base := vfs.NewMemFS()
		vfs.WriteFile(base, "/f", bytes.Repeat([]byte{1}, 1000))
		sig := Config{Model: DroppedWrite, Primitive: vfs.PrimTruncate}.Signature()
		inj := NewInjector(sig, 0, stats.NewRNG(41))
		fs := inj.Wrap(base)
		if err := fs.Truncate("/f", 100); err != nil {
			t.Fatalf("dropped truncate must report success: %v", err)
		}
		if info, _ := base.Stat("/f"); info.Size != 1000 {
			t.Fatalf("dropped truncate still resized to %d", info.Size)
		}
		mut, fired := inj.Fired()
		if !fired || !mut.Dropped || mut.Offset != 100 {
			t.Fatalf("mutation: %+v fired=%v", mut, fired)
		}
		// Single-shot: the next truncate goes through.
		if err := fs.Truncate("/f", 100); err != nil {
			t.Fatal(err)
		}
		if info, _ := base.Stat("/f"); info.Size != 100 {
			t.Fatalf("subsequent truncate suppressed (size %d)", info.Size)
		}
	})
	t.Run("bitflip-handle-level", func(t *testing.T) {
		base := vfs.NewMemFS()
		vfs.WriteFile(base, "/f", bytes.Repeat([]byte{1}, 1000))
		sig := Config{Model: BitFlip, Primitive: vfs.PrimTruncate}.Signature()
		inj := NewInjector(sig, 0, stats.NewRNG(43))
		fs := inj.Wrap(base)
		f, err := fs.Append("/f")
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(500); err != nil {
			t.Fatal(err)
		}
		f.Close()
		mut, fired := inj.Fired()
		if !fired || mut.NewSize == 500 || mut.Offset != 500 {
			t.Fatalf("mutation: %+v fired=%v", mut, fired)
		}
		info, _ := base.Stat("/f")
		if info.Size != mut.NewSize {
			t.Fatalf("file size %d, mutation recorded %d", info.Size, mut.NewSize)
		}
		// The flip stays within the significant bytes of the size argument:
		// no exabyte allocations.
		if mut.NewSize < 0 || mut.NewSize > 0xFFFF {
			t.Fatalf("corrupted size %d escaped the significant bytes of 500", mut.NewSize)
		}
	})
	t.Run("campaign-not-all-benign", func(t *testing.T) {
		w := Workload{
			Name:  "trunc-toy",
			Setup: func(fs vfs.FS) error { return fs.MkdirAll("/out") },
			Run: func(fs vfs.FS) error {
				if err := vfs.WriteFile(fs, "/out/d", bytes.Repeat([]byte{9}, 4096)); err != nil {
					return err
				}
				return fs.Truncate("/out/d", 2048)
			},
			Classify: func(fs vfs.FS, runErr error) classify.Outcome {
				if runErr != nil {
					return classify.Crash
				}
				if info, err := fs.Stat("/out/d"); err != nil || info.Size != 2048 {
					return classify.SDC
				}
				return classify.Benign
			},
		}
		res, err := Campaign(CampaignConfig{
			Fault: Config{Model: DroppedWrite, Primitive: vfs.PrimTruncate},
			Runs:  4,
			Seed:  1,
		}, w)
		if err != nil {
			t.Fatal(err)
		}
		if res.ProfileCount != 1 {
			t.Fatalf("profiled %d truncates, want 1", res.ProfileCount)
		}
		if got := res.Tally.Count(classify.SDC); got != 4 {
			t.Fatalf("dropped-truncate campaign SDC = %d/4 (dead primitive regressed)\n%+v", got, res.Tally)
		}
	})
}

// TestSignatureValidationRejectsUnhostable is the other half of the
// dead-primitive fix: combinations the injector cannot host are a
// configuration error, not a silently-benign campaign.
func TestSignatureValidationRejectsUnhostable(t *testing.T) {
	bad := []Config{
		{Model: ShornWrite, Primitive: vfs.PrimTruncate},
		{Model: BitFlip, Primitive: vfs.PrimStat},
		{Model: DroppedWrite, Primitive: vfs.PrimRead},
		{Model: ReadBitFlip, Primitive: vfs.PrimWrite},
		{Model: LatentCorruption, Primitive: vfs.PrimChmod},
	}
	for _, cfg := range bad {
		if err := cfg.Signature().Validate(); err == nil {
			t.Errorf("%s validated, want rejection", cfg.Signature())
		}
		if _, err := Campaign(CampaignConfig{Fault: cfg, Runs: 1}, toyWorkload()); err == nil {
			t.Errorf("%s: Campaign accepted an unhostable signature", cfg.Signature())
		}
		grid := (&Engine{Jobs: 1}).Run([]CampaignSpec{{
			Key: "bad", Workload: toyWorkload(),
			Config: CampaignConfig{Fault: cfg, Runs: 1},
		}})
		if grid[0].Err == nil {
			t.Errorf("%s: Engine accepted an unhostable signature", cfg.Signature())
		}
	}
	for _, m := range AllModels() {
		if err := (Config{Model: m}).Signature().Validate(); err != nil {
			t.Errorf("default signature for %s rejected: %v", m, err)
		}
	}
}

// TestZeroLengthWriteDoesNotConsumeShot is the regression test for the
// empty-buffer claim bug: a 0-byte write used to burn the injector's single
// shot (recording a BitPos:-1 no-op mutation), so the run tallied as
// injected with no fault on the device.
func TestZeroLengthWriteDoesNotConsumeShot(t *testing.T) {
	base := vfs.NewMemFS()
	inj := newWriteInjector(BitFlip, 0, 47)
	fs := inj.Wrap(base)
	f, _ := fs.Create("/f")
	if _, err := f.Write(nil); err != nil { // empty: must not claim
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{}, 0); err != nil { // empty: must not claim
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x00}, 128)
	if _, err := f.Write(payload); err != nil { // first real write: target 0
		t.Fatal(err)
	}
	f.Close()
	mut, fired := inj.Fired()
	if !fired {
		t.Fatal("injector never fired: the 0-byte write consumed the shot")
	}
	if mut.Length != 128 || mut.BitPos < 0 {
		t.Fatalf("fault landed on the empty write: %+v", mut)
	}
	got, _ := vfs.ReadFile(base, "/f")
	diffs := 0
	for _, b := range got {
		diffs += popcount(b)
	}
	if diffs != 2 {
		t.Fatalf("device saw %d flipped bits, want 2", diffs)
	}
}

// TestZeroLengthWriteProfileAlignment pins the profiler/injector index
// space: with an empty write mixed into the stream, every target drawn
// from [0, profile count) must still land on a real write and fire.
func TestZeroLengthWriteProfileAlignment(t *testing.T) {
	w := Workload{
		Name:  "zero-mix",
		Setup: func(fs vfs.FS) error { return fs.MkdirAll("/out") },
		Run: func(fs vfs.FS) error {
			f, err := fs.Create("/out/d")
			if err != nil {
				return err
			}
			defer f.Close()
			for i := 0; i < 4; i++ {
				if _, err := f.Write([]byte{byte(i), byte(i)}); err != nil {
					return err
				}
				if _, err := f.Write(nil); err != nil { // empty flush
					return err
				}
			}
			return nil
		},
	}
	sig := Config{Model: BitFlip}.Signature()
	count, err := Profile(w, sig)
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("profiled %d writes, want 4 (empty writes must not count)", count)
	}
	for target := int64(0); target < count; target++ {
		rec, err := RunOnce(w, sig, target, stats.NewRNG(61))
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Fired {
			t.Fatalf("target %d never fired: profile and claim index spaces disagree", target)
		}
		if rec.Mutation.Length != 2 {
			t.Fatalf("target %d landed on a %d-byte write", target, rec.Mutation.Length)
		}
	}
}

// seekBrokenFile wraps a File with a Seek that always fails, standing in
// for a handle whose device cannot report its position.
type seekBrokenFile struct {
	vfs.File
}

var errSeekBroken = errors.New("seek broken")

func (f seekBrokenFile) Seek(offset int64, whence int) (int64, error) {
	return 0, errSeekBroken
}

type seekBrokenFS struct {
	vfs.FS
}

func (s seekBrokenFS) Create(name string) (vfs.File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return seekBrokenFile{File: f}, nil
}

// TestArmedWriteSeekFailurePropagates is the regression test for the
// silent `off = 0` fallback: when the device offset is unknown, the armed
// write must fail instead of computing a shorn block plan against a
// fabricated offset.
func TestArmedWriteSeekFailurePropagates(t *testing.T) {
	base := seekBrokenFS{FS: vfs.NewMemFS()}
	inj := newWriteInjector(ShornWrite, 0, 53)
	fs := inj.Wrap(base)
	f, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Write(bytes.Repeat([]byte{7}, 4096))
	if !errors.Is(err, errSeekBroken) {
		t.Fatalf("armed write err = %v, want the seek error propagated", err)
	}
	// The fabricated-offset path must not have recorded a mutation.
	if mut, fired := inj.Fired(); fired {
		t.Fatalf("mutation recorded against an unknown offset: %+v", mut)
	}
	// Unarmed writes through the same stack are untouched by the seek
	// breakage (they never ask for the offset).
	f2, _ := fs.Create("/g")
	if _, err := f2.Write([]byte("ok")); err != nil {
		t.Fatalf("pass-through write failed: %v", err)
	}
}

func TestMutationString(t *testing.T) {
	for _, m := range []Mutation{
		{Model: BitFlip, Path: "/f", BitPos: 3},
		{Model: ShornWrite, Path: "/f", Kept: 10},
		{Model: DroppedWrite, Path: "/f"},
	} {
		if m.String() == "" {
			t.Errorf("empty string for %+v", m)
		}
	}
}

// Single-shot models claim their one manifestation with an atomic CAS and
// the winner then owns the RNG stream exclusively, so their draws need no
// mutex; only multi-shot plans — where several goroutines can keep drawing
// after the claim — fall back to serialized draws. The shard-level
// equivalence suites pin that the lock-free path changes no tallies.
func TestInjectorSerializesDrawsOnlyForMultiShotPlans(t *testing.T) {
	single := newWriteInjector(BitFlip, 0, 7)
	if single.serialDraws {
		t.Fatal("single-shot model should take the lock-free draw path")
	}
	multi := newWriteInjector(RepeatedMisdirection, 0, 7)
	if !multi.serialDraws {
		t.Fatal("multi-shot model must serialize RNG draws")
	}
}
